// The kernel as a task with multiple threads of control (§3.2): "The kernel
// task acts as a server which in turn implements tasks and threads. ...
// Messages sent to such a port result in operations being performed on the
// object it represents."
//
// KernelServer services the task and thread ports: it receives operation
// messages on them and performs the corresponding kernel call, replying on
// the message's reply port. This is what makes a task port a *capability*:
// holding a send right to it — even from another host, through a NetLink
// proxy — is the authority to suspend, resume, or operate on that task's
// memory ("a thread can suspend another thread by sending a suspend message
// ... even if the request is initiated on another node in a network").
//
// Wire format: u32 status replies; vm_read/vm_write carry data inline.

#ifndef SRC_KERNEL_KERNEL_SERVER_H_
#define SRC_KERNEL_KERNEL_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "src/kernel/kernel.h"
#include "src/kernel/task.h"

namespace mach {

// Operations on task ports.
inline constexpr MsgId kMsgTaskSuspend = 0x7A530001;
inline constexpr MsgId kMsgTaskResume = 0x7A530002;
inline constexpr MsgId kMsgTaskVmAllocate = 0x7A530003;   // u64 size -> status, u64 addr
inline constexpr MsgId kMsgTaskVmDeallocate = 0x7A530004; // u64 addr, u64 size -> status
inline constexpr MsgId kMsgTaskVmRead = 0x7A530005;       // u64 addr, u64 len -> status, bytes
inline constexpr MsgId kMsgTaskVmWrite = 0x7A530006;      // u64 addr, bytes -> status
inline constexpr MsgId kMsgTaskVmProtect = 0x7A530007;    // u64 addr, u64 size, u32 set_max,
                                                          // u32 prot -> status
inline constexpr MsgId kMsgTaskStatistics = 0x7A530008;   // -> status, u64 faults, u64 pageins,
                                                          //    u64 pageouts
// Operations on thread ports.
inline constexpr MsgId kMsgThreadSuspend = 0x7A530101;
inline constexpr MsgId kMsgThreadResume = 0x7A530102;
inline constexpr MsgId kMsgThreadTerminate = 0x7A530103;

class KernelServer {
 public:
  explicit KernelServer(Kernel* kernel);
  ~KernelServer();

  KernelServer(const KernelServer&) = delete;
  KernelServer& operator=(const KernelServer&) = delete;

  // Registers a task (or thread) so operations on its port are serviced.
  void ServeTask(const std::shared_ptr<Task>& task);
  void ServeThread(const std::shared_ptr<Thread>& thread);

  void Start();
  void Stop();

 private:
  void Loop();
  void HandleTaskMessage(const std::shared_ptr<Task>& task, Message&& msg);
  void HandleThreadMessage(const std::shared_ptr<Thread>& thread, Message&& msg);
  static void ReplyStatus(const Message& request, MsgId id, KernReturn status);

  Kernel* const kernel_;
  std::shared_ptr<PortSet> set_ = PortSet::Create();
  std::mutex mu_;
  std::unordered_map<uint64_t, std::shared_ptr<Task>> tasks_;      // by task port id
  std::unordered_map<uint64_t, std::shared_ptr<Thread>> threads_;  // by thread port id
  std::thread thread_;
  std::atomic<bool> running_{false};
};

// --- client-side convenience wrappers (usable through NetLink proxies) --------

KernReturn RpcTaskSuspend(const SendRight& task_port);
KernReturn RpcTaskResume(const SendRight& task_port);
Result<VmOffset> RpcVmAllocate(const SendRight& task_port, VmSize size);
KernReturn RpcVmDeallocate(const SendRight& task_port, VmOffset addr, VmSize size);
Result<std::vector<std::byte>> RpcVmRead(const SendRight& task_port, VmOffset addr, VmSize len);
KernReturn RpcVmWrite(const SendRight& task_port, VmOffset addr, const void* data, VmSize len);
KernReturn RpcVmProtect(const SendRight& task_port, VmOffset addr, VmSize size, bool set_max,
                        VmProt prot);
KernReturn RpcThreadSuspend(const SendRight& thread_port);
KernReturn RpcThreadResume(const SendRight& thread_port);
KernReturn RpcThreadTerminate(const SendRight& thread_port);

}  // namespace mach

#endif  // SRC_KERNEL_KERNEL_SERVER_H_
