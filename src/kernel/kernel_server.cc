#include "src/kernel/kernel_server.h"

#include "src/base/log.h"

namespace mach {

KernelServer::KernelServer(Kernel* kernel) : kernel_(kernel) {}

KernelServer::~KernelServer() { Stop(); }

void KernelServer::ServeTask(const std::shared_ptr<Task>& task) {
  std::lock_guard<std::mutex> g(mu_);
  tasks_.emplace(task->task_port().id(), task);
  set_->Add(task->task_port_receive());
}

void KernelServer::ServeThread(const std::shared_ptr<Thread>& thread) {
  std::lock_guard<std::mutex> g(mu_);
  threads_.emplace(thread->thread_port().id(), thread);
  set_->Add(thread->thread_port_receive());
}

void KernelServer::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) {
    return;
  }
  thread_ = std::thread([this] { Loop(); });
}

void KernelServer::Stop() {
  bool expected = true;
  if (!running_.compare_exchange_strong(expected, false)) {
    return;
  }
  if (thread_.joinable()) {
    thread_.join();
  }
}

void KernelServer::Loop() {
  while (running_.load(std::memory_order_relaxed)) {
    Result<PortSet::ReceivedMessage> got = set_->ReceiveFrom(std::chrono::milliseconds(20));
    if (!got.ok()) {
      continue;
    }
    std::shared_ptr<Task> task;
    std::shared_ptr<Thread> thread;
    {
      std::lock_guard<std::mutex> g(mu_);
      auto t = tasks_.find(got.value().port_id);
      if (t != tasks_.end()) {
        task = t->second;
      } else {
        auto th = threads_.find(got.value().port_id);
        if (th != threads_.end()) {
          thread = th->second;
        }
      }
    }
    if (task != nullptr) {
      HandleTaskMessage(task, std::move(got.value().message));
    } else if (thread != nullptr) {
      HandleThreadMessage(thread, std::move(got.value().message));
    }
  }
}

void KernelServer::ReplyStatus(const Message& request, MsgId id, KernReturn status) {
  if (!request.reply_port().valid()) {
    return;
  }
  Message reply(id);
  reply.PushU32(static_cast<uint32_t>(status));
  MsgSend(request.reply_port(), std::move(reply), std::chrono::milliseconds(2000));
}

void KernelServer::HandleTaskMessage(const std::shared_ptr<Task>& task, Message&& msg) {
  switch (msg.id()) {
    case kMsgTaskSuspend:
      task->Suspend();
      ReplyStatus(msg, msg.id(), KernReturn::kSuccess);
      break;
    case kMsgTaskResume:
      task->Resume();
      ReplyStatus(msg, msg.id(), KernReturn::kSuccess);
      break;
    case kMsgTaskVmAllocate: {
      Result<uint64_t> size = msg.TakeU64();
      if (!size.ok()) {
        ReplyStatus(msg, msg.id(), KernReturn::kInvalidArgument);
        break;
      }
      Result<VmOffset> addr = task->VmAllocate(size.value());
      Message reply(msg.id());
      reply.PushU32(static_cast<uint32_t>(addr.status()));
      reply.PushU64(addr.ok() ? addr.value() : 0);
      MsgSend(msg.reply_port(), std::move(reply), std::chrono::milliseconds(2000));
      break;
    }
    case kMsgTaskVmDeallocate: {
      Result<uint64_t> addr = msg.TakeU64();
      Result<uint64_t> size = msg.TakeU64();
      if (!addr.ok() || !size.ok()) {
        ReplyStatus(msg, msg.id(), KernReturn::kInvalidArgument);
        break;
      }
      ReplyStatus(msg, msg.id(), task->VmDeallocate(addr.value(), size.value()));
      break;
    }
    case kMsgTaskVmRead: {
      Result<uint64_t> addr = msg.TakeU64();
      Result<uint64_t> len = msg.TakeU64();
      if (!addr.ok() || !len.ok() || len.value() > (16u << 20)) {
        ReplyStatus(msg, msg.id(), KernReturn::kInvalidArgument);
        break;
      }
      std::vector<std::byte> data(len.value());
      KernReturn kr = task->VmRead(addr.value(), data.data(), data.size());
      Message reply(msg.id());
      reply.PushU32(static_cast<uint32_t>(kr));
      if (IsOk(kr)) {
        reply.PushBytes(std::move(data));
      }
      MsgSend(msg.reply_port(), std::move(reply), std::chrono::milliseconds(2000));
      break;
    }
    case kMsgTaskVmWrite: {
      Result<uint64_t> addr = msg.TakeU64();
      Result<std::vector<std::byte>> data = msg.TakeBytes();
      if (!addr.ok() || !data.ok()) {
        ReplyStatus(msg, msg.id(), KernReturn::kInvalidArgument);
        break;
      }
      ReplyStatus(msg, msg.id(),
                  task->VmWrite(addr.value(), data.value().data(), data.value().size()));
      break;
    }
    case kMsgTaskVmProtect: {
      Result<uint64_t> addr = msg.TakeU64();
      Result<uint64_t> size = msg.TakeU64();
      Result<uint32_t> set_max = msg.TakeU32();
      Result<uint32_t> prot = msg.TakeU32();
      if (!addr.ok() || !size.ok() || !set_max.ok() || !prot.ok()) {
        ReplyStatus(msg, msg.id(), KernReturn::kInvalidArgument);
        break;
      }
      ReplyStatus(msg, msg.id(),
                  task->VmProtect(addr.value(), size.value(), set_max.value() != 0,
                                  prot.value()));
      break;
    }
    case kMsgTaskStatistics: {
      VmStatistics st = task->VmStats();
      Message reply(msg.id());
      reply.PushU32(static_cast<uint32_t>(KernReturn::kSuccess));
      reply.PushU64(st.faults);
      reply.PushU64(st.pageins);
      reply.PushU64(st.pageouts);
      MsgSend(msg.reply_port(), std::move(reply), std::chrono::milliseconds(2000));
      break;
    }
    default:
      ReplyStatus(msg, msg.id(), KernReturn::kInvalidArgument);
      break;
  }
}

void KernelServer::HandleThreadMessage(const std::shared_ptr<Thread>& thread, Message&& msg) {
  switch (msg.id()) {
    case kMsgThreadSuspend:
      thread->Suspend();
      ReplyStatus(msg, msg.id(), KernReturn::kSuccess);
      break;
    case kMsgThreadResume:
      thread->Resume();
      ReplyStatus(msg, msg.id(), KernReturn::kSuccess);
      break;
    case kMsgThreadTerminate:
      thread->Terminate();
      ReplyStatus(msg, msg.id(), KernReturn::kSuccess);
      break;
    default:
      ReplyStatus(msg, msg.id(), KernReturn::kInvalidArgument);
      break;
  }
}

// --- client wrappers ---------------------------------------------------------

namespace {
KernReturn SimpleRpc(const SendRight& port, MsgId id) {
  Result<Message> reply = MsgRpc(port, Message(id), kWaitForever, std::chrono::seconds(5));
  if (!reply.ok()) {
    return reply.status();
  }
  Result<uint32_t> status = reply.value().TakeU32();
  return status.ok() ? static_cast<KernReturn>(status.value()) : KernReturn::kInvalidArgument;
}
}  // namespace

KernReturn RpcTaskSuspend(const SendRight& task_port) {
  return SimpleRpc(task_port, kMsgTaskSuspend);
}
KernReturn RpcTaskResume(const SendRight& task_port) {
  return SimpleRpc(task_port, kMsgTaskResume);
}

Result<VmOffset> RpcVmAllocate(const SendRight& task_port, VmSize size) {
  Message request(kMsgTaskVmAllocate);
  request.PushU64(size);
  Result<Message> reply = MsgRpc(task_port, std::move(request), kWaitForever,
                                 std::chrono::seconds(5));
  if (!reply.ok()) {
    return reply.status();
  }
  Result<uint32_t> status = reply.value().TakeU32();
  Result<uint64_t> addr = reply.value().TakeU64();
  if (!status.ok() || !addr.ok()) {
    return KernReturn::kInvalidArgument;
  }
  if (static_cast<KernReturn>(status.value()) != KernReturn::kSuccess) {
    return static_cast<KernReturn>(status.value());
  }
  return VmOffset{addr.value()};
}

KernReturn RpcVmDeallocate(const SendRight& task_port, VmOffset addr, VmSize size) {
  Message request(kMsgTaskVmDeallocate);
  request.PushU64(addr);
  request.PushU64(size);
  Result<Message> reply = MsgRpc(task_port, std::move(request), kWaitForever,
                                 std::chrono::seconds(5));
  if (!reply.ok()) {
    return reply.status();
  }
  Result<uint32_t> status = reply.value().TakeU32();
  return status.ok() ? static_cast<KernReturn>(status.value()) : KernReturn::kInvalidArgument;
}

Result<std::vector<std::byte>> RpcVmRead(const SendRight& task_port, VmOffset addr, VmSize len) {
  Message request(kMsgTaskVmRead);
  request.PushU64(addr);
  request.PushU64(len);
  Result<Message> reply = MsgRpc(task_port, std::move(request), kWaitForever,
                                 std::chrono::seconds(5));
  if (!reply.ok()) {
    return reply.status();
  }
  Result<uint32_t> status = reply.value().TakeU32();
  if (!status.ok()) {
    return KernReturn::kInvalidArgument;
  }
  if (static_cast<KernReturn>(status.value()) != KernReturn::kSuccess) {
    return static_cast<KernReturn>(status.value());
  }
  Result<std::vector<std::byte>> data = reply.value().TakeBytes();
  if (!data.ok()) {
    return KernReturn::kInvalidArgument;
  }
  return std::move(data).value();
}

KernReturn RpcVmWrite(const SendRight& task_port, VmOffset addr, const void* data, VmSize len) {
  Message request(kMsgTaskVmWrite);
  request.PushU64(addr);
  request.PushData(data, len);
  Result<Message> reply = MsgRpc(task_port, std::move(request), kWaitForever,
                                 std::chrono::seconds(5));
  if (!reply.ok()) {
    return reply.status();
  }
  Result<uint32_t> status = reply.value().TakeU32();
  return status.ok() ? static_cast<KernReturn>(status.value()) : KernReturn::kInvalidArgument;
}

KernReturn RpcVmProtect(const SendRight& task_port, VmOffset addr, VmSize size, bool set_max,
                        VmProt prot) {
  Message request(kMsgTaskVmProtect);
  request.PushU64(addr);
  request.PushU64(size);
  request.PushU32(set_max ? 1 : 0);
  request.PushU32(prot);
  Result<Message> reply = MsgRpc(task_port, std::move(request), kWaitForever,
                                 std::chrono::seconds(5));
  if (!reply.ok()) {
    return reply.status();
  }
  Result<uint32_t> status = reply.value().TakeU32();
  return status.ok() ? static_cast<KernReturn>(status.value()) : KernReturn::kInvalidArgument;
}

KernReturn RpcThreadSuspend(const SendRight& thread_port) {
  return SimpleRpc(thread_port, kMsgThreadSuspend);
}
KernReturn RpcThreadResume(const SendRight& thread_port) {
  return SimpleRpc(thread_port, kMsgThreadResume);
}
KernReturn RpcThreadTerminate(const SendRight& thread_port) {
  return SimpleRpc(thread_port, kMsgThreadTerminate);
}

}  // namespace mach
