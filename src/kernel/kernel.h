// Kernel: one booted instance of the Mach kernel — the unit the paper calls
// a "host" in multi-machine scenarios (§4.2: "independent Mach kernels").
//
// A Kernel owns the simulated hardware (physical memory, a paging disk, a
// virtual clock), the VM system, the trusted default pager task, and two
// service threads:
//   * the pager service thread, which receives the data manager → kernel
//     calls (Table 3-6) on the pager request ports and dispatches them into
//     the VM system;
//   * (inside VmSystem) the pageout daemon.
//
// Tasks are created against a kernel and must not outlive it.

#ifndef SRC_KERNEL_KERNEL_H_
#define SRC_KERNEL_KERNEL_H_

#include <atomic>
#include <memory>
#include <string>
#include <thread>

#include "src/base/sim_clock.h"
#include "src/hw/physical_memory.h"
#include "src/hw/sim_disk.h"
#include "src/pager/default_pager.h"
#include "src/vm/vm_system.h"

namespace mach {

class Task;

class Kernel {
 public:
  struct Config {
    std::string name = "host";
    uint32_t frames = 256;          // Physical memory size in pages.
    VmSize page_size = 4096;        // System page size (boot parameter, §3.3).
    uint32_t backing_blocks = 8192; // Default pager backing store size.
    DiskLatencyModel disk_latency;  // Paging disk latency model.
    VmSystem::Config vm;            // VM tunables.
    // Optional fault injector attached to the paging disk ("disk.read" /
    // "disk.write" points). Must outlive the kernel.
    FaultInjector* fault_injector = nullptr;
  };

  Kernel() : Kernel(Config{}) {}
  explicit Kernel(Config config);
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  const std::string& name() const { return config_.name; }
  VmSize page_size() const { return phys_->page_size(); }

  VmSystem& vm() { return *vm_; }
  PhysicalMemory& phys() { return *phys_; }
  SimClock& clock() { return clock_; }
  SimDisk& paging_disk() { return *paging_disk_; }
  DefaultPager& default_pager() { return *default_pager_; }

  // Creates a task. With a parent, the child's address space is populated
  // according to the parent's per-region inheritance attributes (§3.3).
  std::shared_ptr<Task> CreateTask(const std::shared_ptr<Task>& parent = nullptr,
                                   const std::string& name = "task");

 private:
  void PagerServiceLoop();

  Config config_;
  SimClock clock_;
  std::unique_ptr<PhysicalMemory> phys_;
  std::unique_ptr<SimDisk> paging_disk_;
  std::unique_ptr<VmSystem> vm_;
  std::unique_ptr<DefaultPager> default_pager_;

  std::thread pager_service_thread_;
  std::atomic<bool> running_{false};
};

}  // namespace mach

#endif  // SRC_KERNEL_KERNEL_H_
