// Tasks and threads (§3.1): the task is the basic unit of resource
// allocation — a paged virtual address space plus port rights; the thread is
// the basic unit of computation, sharing its task's address space.
//
// "User" code is a C++ callable run on a Thread; it touches task memory only
// through Task::Read/Write (simulated loads/stores through the pmap, taking
// real page faults) — that is what keeps every VM and pager code path honest.
//
// The Table 3-2 port operations that take a task argument are provided as
// methods operating on the task's default port group (a PortSet).

#ifndef SRC_KERNEL_TASK_H_
#define SRC_KERNEL_TASK_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/base/kern_return.h"
#include "src/ipc/port.h"
#include "src/vm/vm_system.h"

namespace mach {

class Kernel;
class Thread;

class Task : public std::enable_shared_from_this<Task> {
 public:
  ~Task();

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  Kernel& kernel() const { return *kernel_; }
  const std::string& name() const { return name_; }
  TaskVm& vm_context() { return vm_; }
  VmSize page_size() const;

  // A port representing this task (task_self). Messages sent to it perform
  // operations on the task when a KernelServer services it (§3.2).
  const SendRight& task_port() const { return task_port_; }

  // Kernel-internal: the receive side of the task port (the kernel holds
  // it; KernelServer enables it in its service set).
  const ReceiveRight& task_port_receive() const { return task_port_receive_; }

  // --- Table 3-3 / 3-4 virtual memory operations -------------------------

  Result<VmOffset> VmAllocate(VmSize size, bool anywhere = true, VmOffset addr = 0);
  Result<VmOffset> VmAllocateWithPager(VmSize size, SendRight memory_object, VmOffset offset,
                                       bool anywhere = true, VmOffset addr = 0);
  KernReturn VmDeallocate(VmOffset addr, VmSize size);
  KernReturn VmProtect(VmOffset addr, VmSize size, bool set_max, VmProt prot);
  KernReturn VmInherit(VmOffset addr, VmSize size, mach::VmInherit inheritance);
  KernReturn VmRead(VmOffset addr, void* buf, VmSize len);
  KernReturn VmWrite(VmOffset addr, const void* buf, VmSize len);
  KernReturn VmCopy(VmOffset src, VmSize size, VmOffset dst);
  std::vector<RegionInfo> VmRegions();
  VmStatistics VmStats();

  // --- simulated user memory access --------------------------------------

  // A user load/store: pmap fast path, kernel fault on miss.
  KernReturn Read(VmOffset addr, void* buf, VmSize len);
  KernReturn Write(VmOffset addr, const void* buf, VmSize len);

  template <typename T>
  Result<T> ReadValue(VmOffset addr) {
    T v;
    KernReturn kr = Read(addr, &v, sizeof(T));
    if (!IsOk(kr)) {
      return kr;
    }
    return v;
  }
  template <typename T>
  KernReturn WriteValue(VmOffset addr, const T& v) {
    return Write(addr, &v, sizeof(T));
  }

  // --- threads ------------------------------------------------------------

  std::shared_ptr<Thread> SpawnThread(std::function<void(Thread&)> body,
                                      const std::string& name = "thread");
  void JoinAllThreads();

  // --- Table 3-2 port operations -------------------------------------------

  // port_allocate / port_deallocate.
  PortPair PortAllocate(const std::string& label = "");

  // port_enable / port_disable: membership in the task's default group.
  KernReturn PortEnable(const ReceiveRight& right);
  KernReturn PortDisable(const ReceiveRight& right);

  // msg_receive from the default group of ports.
  Result<Message> ReceiveAny(Timeout timeout = kWaitForever);

  // port_messages.
  std::vector<uint64_t> PortsWithMessages() const;

  // --- suspension ----------------------------------------------------------

  void Suspend();  // Increments suspend count; threads pause at checkpoints.
  void Resume();
  bool suspended() const { return suspend_count_.load(std::memory_order_acquire) > 0; }

 private:
  friend class Kernel;
  friend class Thread;

  Task(Kernel* kernel, std::string name);

  Kernel* const kernel_;
  const std::string name_;
  TaskVm vm_;
  SendRight task_port_;
  ReceiveRight task_port_receive_;
  std::shared_ptr<PortSet> default_set_ = PortSet::Create();

  std::mutex threads_mu_;
  std::vector<std::shared_ptr<Thread>> threads_;

  std::atomic<int> suspend_count_{0};
  std::mutex suspend_mu_;
  std::condition_variable suspend_cv_;
};

// A thread of control within a task. The body runs on a std::thread and
// should call Checkpoint() at convenient points: that is where suspension
// and termination take effect (a cooperative stand-in for preemption).
class Thread : public std::enable_shared_from_this<Thread> {
 public:
  ~Thread();

  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;

  Task& task() const { return *task_; }
  const SendRight& thread_port() const { return thread_port_; }
  // Kernel-internal: the receive side of the thread port.
  const ReceiveRight& thread_port_receive() const { return thread_port_receive_; }

  // Returns false if the thread has been terminated (body should return).
  // Blocks while the thread or its task is suspended.
  bool Checkpoint();

  void Suspend();
  void Resume();
  void Terminate();  // Cooperative: takes effect at the next Checkpoint().
  void Join();
  bool finished() const { return finished_.load(std::memory_order_acquire); }

 private:
  friend class Task;
  Thread(Task* task, std::string name);
  void Run(std::function<void(Thread&)> body);

  Task* const task_;
  const std::string name_;
  SendRight thread_port_;
  ReceiveRight thread_port_receive_;

  std::thread os_thread_;
  std::atomic<int> suspend_count_{0};
  std::atomic<bool> terminated_{false};
  std::atomic<bool> finished_{false};
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace mach

#endif  // SRC_KERNEL_TASK_H_
