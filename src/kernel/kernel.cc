#include "src/kernel/kernel.h"

#include "src/base/log.h"
#include "src/kernel/task.h"

namespace mach {

Kernel::Kernel(Config config) : config_(std::move(config)) {
  phys_ = std::make_unique<PhysicalMemory>(config_.frames, config_.page_size);
  paging_disk_ = std::make_unique<SimDisk>(config_.backing_blocks, config_.page_size, &clock_,
                                           config_.disk_latency, config_.fault_injector);
  // The VM layer shares the kernel-wide injector (vm.collapse suppression).
  config_.vm.fault_injector = config_.fault_injector;
  vm_ = std::make_unique<VmSystem>(phys_.get(), config_.vm);
  // Boot the default pager: a trusted data manager known to the kernel at
  // system initialization time (§3.4.1).
  default_pager_ = std::make_unique<DefaultPager>(paging_disk_.get());
  default_pager_->Start();
  vm_->SetDefaultPager(default_pager_->service_port(), default_pager_.get());
  vm_->StartPageoutDaemon();
  running_.store(true, std::memory_order_release);
  pager_service_thread_ = std::thread([this] { PagerServiceLoop(); });
  MACH_LOG(kInfo) << "kernel '" << config_.name << "' booted: " << config_.frames
                  << " frames of " << config_.page_size << " bytes";
}

Kernel::~Kernel() {
  running_.store(false, std::memory_order_release);
  if (pager_service_thread_.joinable()) {
    pager_service_thread_.join();
  }
  vm_->StopPageoutDaemon();
  default_pager_->Stop();
  // VmSystem's destructor releases any remaining resident pages.
}

void Kernel::PagerServiceLoop() {
  // Receives data manager -> kernel calls (Table 3-6) on the pager request
  // ports, whose receive rights the kernel holds.
  const std::shared_ptr<PortSet>& set = vm_->pager_request_set();
  while (running_.load(std::memory_order_acquire)) {
    Result<PortSet::ReceivedMessage> got = set->ReceiveFrom(std::chrono::milliseconds(20));
    if (!got.ok()) {
      continue;
    }
    vm_->HandlePagerMessage(got.value().port_id, std::move(got.value().message));
  }
}

std::shared_ptr<Task> Kernel::CreateTask(const std::shared_ptr<Task>& parent,
                                         const std::string& name) {
  auto task = std::shared_ptr<Task>(new Task(this, name));
  if (parent != nullptr) {
    vm_->ForkMap(parent->vm_context(), task->vm_context());
  }
  return task;
}

}  // namespace mach
