#include "src/kernel/task.h"

#include "src/base/log.h"
#include "src/kernel/kernel.h"

namespace mach {

Task::Task(Kernel* kernel, std::string name) : kernel_(kernel), name_(std::move(name)) {
  vm_ = kernel_->vm().CreateTaskVm();
  PortPair pair = mach::PortAllocate(name_ + "-task");
  task_port_receive_ = std::move(pair.receive);
  task_port_ = pair.send;
}

Task::~Task() {
  JoinAllThreads();
  // Release the entire address space (drops object references; the kernel
  // may terminate or cache the backing objects).
  kernel_->vm().Deallocate(vm_, vm_.map->min_address(),
                           vm_.map->max_address() - vm_.map->min_address());
}

VmSize Task::page_size() const { return kernel_->page_size(); }

Result<VmOffset> Task::VmAllocate(VmSize size, bool anywhere, VmOffset addr) {
  return kernel_->vm().Allocate(vm_, addr, size, anywhere);
}

Result<VmOffset> Task::VmAllocateWithPager(VmSize size, SendRight memory_object, VmOffset offset,
                                           bool anywhere, VmOffset addr) {
  return kernel_->vm().AllocateWithPager(vm_, addr, size, anywhere, std::move(memory_object),
                                         offset);
}

KernReturn Task::VmDeallocate(VmOffset addr, VmSize size) {
  return kernel_->vm().Deallocate(vm_, addr, size);
}

KernReturn Task::VmProtect(VmOffset addr, VmSize size, bool set_max, VmProt prot) {
  return kernel_->vm().Protect(vm_, addr, size, set_max, prot);
}

KernReturn Task::VmInherit(VmOffset addr, VmSize size, mach::VmInherit inheritance) {
  return kernel_->vm().Inherit(vm_, addr, size, inheritance);
}

KernReturn Task::VmRead(VmOffset addr, void* buf, VmSize len) {
  return kernel_->vm().ReadMemory(vm_, addr, buf, len);
}

KernReturn Task::VmWrite(VmOffset addr, const void* buf, VmSize len) {
  return kernel_->vm().WriteMemory(vm_, addr, buf, len);
}

KernReturn Task::VmCopy(VmOffset src, VmSize size, VmOffset dst) {
  return kernel_->vm().Copy(vm_, src, size, dst);
}

std::vector<RegionInfo> Task::VmRegions() { return kernel_->vm().Regions(vm_); }

VmStatistics Task::VmStats() { return kernel_->vm().Statistics(); }

// User loads/stores are safe from any number of threads of any task:
// UserAccess takes the task's map lock shared on the fault path, so
// accesses to disjoint regions proceed in parallel (vm_system.h lock
// order, tier 1).
KernReturn Task::Read(VmOffset addr, void* buf, VmSize len) {
  return kernel_->vm().UserAccess(vm_, addr, buf, len, /*is_write=*/false);
}

KernReturn Task::Write(VmOffset addr, const void* buf, VmSize len) {
  return kernel_->vm().UserAccess(vm_, addr, const_cast<void*>(buf), len, /*is_write=*/true);
}

std::shared_ptr<Thread> Task::SpawnThread(std::function<void(Thread&)> body,
                                          const std::string& name) {
  auto thread = std::shared_ptr<Thread>(new Thread(this, name));
  {
    std::lock_guard<std::mutex> g(threads_mu_);
    threads_.push_back(thread);
  }
  thread->Run(std::move(body));
  return thread;
}

void Task::JoinAllThreads() {
  std::vector<std::shared_ptr<Thread>> threads;
  {
    std::lock_guard<std::mutex> g(threads_mu_);
    threads = threads_;
  }
  for (auto& t : threads) {
    t->Join();
  }
}

PortPair Task::PortAllocate(const std::string& label) {
  return mach::PortAllocate(label.empty() ? name_ + "-port" : label);
}

KernReturn Task::PortEnable(const ReceiveRight& right) { return default_set_->Add(right); }

KernReturn Task::PortDisable(const ReceiveRight& right) { return default_set_->Remove(right); }

Result<Message> Task::ReceiveAny(Timeout timeout) { return default_set_->Receive(timeout); }

std::vector<uint64_t> Task::PortsWithMessages() const { return default_set_->PortsWithMessages(); }

void Task::Suspend() {
  suspend_count_.fetch_add(1, std::memory_order_acq_rel);
}

void Task::Resume() {
  if (suspend_count_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> g(suspend_mu_);
    suspend_cv_.notify_all();
  }
}

// --- Thread ------------------------------------------------------------------

Thread::Thread(Task* task, std::string name) : task_(task), name_(std::move(name)) {
  PortPair pair = mach::PortAllocate(task_->name() + "-" + name_);
  thread_port_receive_ = std::move(pair.receive);
  thread_port_ = pair.send;
}

Thread::~Thread() { Join(); }

void Thread::Run(std::function<void(Thread&)> body) {
  os_thread_ = std::thread([this, body = std::move(body)] {
    body(*this);
    finished_.store(true, std::memory_order_release);
  });
}

bool Thread::Checkpoint() {
  if (terminated_.load(std::memory_order_acquire)) {
    return false;
  }
  // Pause while this thread or the whole task is suspended.
  // Poll-style wait: the suspender may be the task (whose Resume does not
  // know this thread's condition variable), so wake periodically to
  // re-evaluate.
  std::unique_lock<std::mutex> lock(mu_);
  while (!terminated_.load(std::memory_order_acquire) &&
         (suspend_count_.load(std::memory_order_acquire) > 0 || task_->suspended())) {
    cv_.wait_for(lock, std::chrono::milliseconds(5));
  }
  return !terminated_.load(std::memory_order_acquire);
}

void Thread::Suspend() { suspend_count_.fetch_add(1, std::memory_order_acq_rel); }

void Thread::Resume() {
  suspend_count_.fetch_sub(1, std::memory_order_acq_rel);
  std::lock_guard<std::mutex> g(mu_);
  cv_.notify_all();
}

void Thread::Terminate() {
  terminated_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> g(mu_);
  cv_.notify_all();
}

void Thread::Join() {
  if (os_thread_.joinable()) {
    os_thread_.join();
  }
}

}  // namespace mach
