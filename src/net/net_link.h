// Network message service between hosts (§7): a bidirectional link that
// proxies ports across a latency model, standing in for the Ethernets and
// token rings of the paper's NORMA configurations (and, with near-zero
// latency, the switch of a NUMA or the bus of a UMA).
//
// A proxy is a real port whose receive right the link holds; a forwarder
// thread relays each message to the target port on the other host, charging
// the latency model, rewriting port rights so replies come back through the
// link, and flattening out-of-line memory into bytes on the wire (rebuilt as
// fresh memory in the destination kernel — network copy-on-reference is
// built on top of this by the migration manager).
//
// §7 gives the regimes: remote access ≈ sub-microsecond on a MultiMax-class
// UMA, ≈5 µs through a Butterfly-class NUMA switch (≈10x local), and
// hundreds of microseconds on a HyperCube-class NORMA.

#ifndef SRC_NET_NET_LINK_H_
#define SRC_NET_NET_LINK_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/base/sim_clock.h"
#include "src/ipc/port.h"
#include "src/vm/vm_system.h"

namespace mach {

struct NetLatencyModel {
  uint64_t per_msg_ns = 0;   // Charged once per message.
  uint64_t per_byte_ns = 0;  // Charged per payload byte (inline + OOL).
};

// §7 regime presets.
inline constexpr NetLatencyModel kUmaLatency{500, 0};        // "considerably less than 1 µs"
inline constexpr NetLatencyModel kNumaLatency{5'000, 1};     // Butterfly: ≈5 µs
inline constexpr NetLatencyModel kNormaLatency{200'000, 80}; // HyperCube: 100s of µs, 10 Mb/s

class NetLink {
 public:
  // Host A and host B are identified by their VM systems (for OOL
  // rebuild). Latency is charged to `clock` per traversal.
  NetLink(VmSystem* vm_a, VmSystem* vm_b, SimClock* clock,
          NetLatencyModel latency = kNormaLatency);
  ~NetLink();

  NetLink(const NetLink&) = delete;
  NetLink& operator=(const NetLink&) = delete;

  // Returns a send right usable on host A that relays to `target_on_b`
  // (which lives on host B), and vice versa. Proxies are cached per target.
  SendRight ProxyForA(SendRight target_on_b);
  SendRight ProxyForB(SendRight target_on_a);

  uint64_t messages_forwarded() const { return messages_.load(std::memory_order_relaxed); }
  uint64_t bytes_forwarded() const { return bytes_.load(std::memory_order_relaxed); }

 private:
  // One direction of the link.
  struct Direction {
    VmSystem* dst_vm = nullptr;  // OOL is rebuilt into this kernel.
    std::shared_ptr<PortSet> set = PortSet::Create();
    std::mutex mu;
    // target port id -> proxy (cached so a port exports to one proxy).
    std::unordered_map<uint64_t, SendRight> proxies_by_target;
    // proxy port id -> target (for forwarding and reverse unwrapping).
    std::unordered_map<uint64_t, SendRight> target_by_proxy;
    std::vector<ReceiveRight> receives;
    std::thread forwarder;
  };

  SendRight MakeProxy(Direction& dir, SendRight target);
  // Rewrites a port right crossing the link in direction `dir` (whose
  // reverse is `reverse`): unwrap if it is already one of `dir`'s proxies,
  // otherwise wrap it in a reverse-direction proxy.
  SendRight RewriteRight(Direction& dir, Direction& reverse, SendRight right);
  void ForwarderLoop(Direction& dir, Direction& reverse);
  void Forward(Direction& dir, Direction& reverse, uint64_t proxy_id, Message&& msg);

  SimClock* const clock_;
  const NetLatencyModel latency_;
  Direction a_to_b_;  // Proxies that live on A and target ports on B.
  Direction b_to_a_;
  std::atomic<bool> running_{true};
  std::atomic<uint64_t> messages_{0};
  std::atomic<uint64_t> bytes_{0};
};

}  // namespace mach

#endif  // SRC_NET_NET_LINK_H_
