// Network message service between hosts (§7): a bidirectional link that
// proxies ports across a latency model, standing in for the Ethernets and
// token rings of the paper's NORMA configurations (and, with near-zero
// latency, the switch of a NUMA or the bus of a UMA).
//
// A proxy is a real port whose receive right the link holds; a forwarder
// thread relays each message to the target port on the other host, charging
// the latency model, rewriting port rights so replies come back through the
// link, and flattening out-of-line memory into bytes on the wire (rebuilt as
// fresh memory in the destination kernel — network copy-on-reference is
// built on top of this by the migration manager).
//
// §7 gives the regimes: remote access ≈ sub-microsecond on a MultiMax-class
// UMA, ≈5 µs through a Butterfly-class NUMA switch (≈10x local), and
// hundreds of microseconds on a HyperCube-class NORMA.
//
// Real interconnects lose, duplicate and delay packets. A FaultInjector
// (points "net.drop" / "net.duplicate" / "net.delay") plus SetPartitioned()
// model that; the optional reliable mode layers sequence numbers and an
// ack-and-retransmit scheme with bounded exponential backoff on top, so
// proxied pager traffic degrades to added (virtual) latency instead of loss.

#ifndef SRC_NET_NET_LINK_H_
#define SRC_NET_NET_LINK_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/base/fault_injector.h"
#include "src/base/sim_clock.h"
#include "src/ipc/port.h"
#include "src/vm/vm_system.h"

namespace mach {

struct NetLatencyModel {
  uint64_t per_msg_ns = 0;   // Charged once per message.
  uint64_t per_byte_ns = 0;  // Charged per payload byte (inline + OOL).
};

// §7 regime presets.
inline constexpr NetLatencyModel kUmaLatency{500, 0};        // "considerably less than 1 µs"
inline constexpr NetLatencyModel kNumaLatency{5'000, 1};     // Butterfly: ≈5 µs
inline constexpr NetLatencyModel kNormaLatency{200'000, 80}; // HyperCube: 100s of µs, 10 Mb/s

struct NetFaultConfig {
  // Consulted per transmission attempt (null = healthy link).
  FaultInjector* injector = nullptr;
  // Extra virtual-time delay charged when "net.delay" fires.
  uint64_t delay_jitter_ns = 1'000'000;  // 1 ms.
  // Sequence-numbered ack-and-retransmit: a dropped transmission is retried
  // with exponentially backed-off (virtual) delay instead of being lost,
  // and receiver-side sequence tracking suppresses duplicate deliveries.
  bool reliable = false;
  uint32_t max_retransmits = 6;
  uint64_t retransmit_base_ns = 5'000'000;  // 5 ms, doubled per attempt.
};

class NetLink {
 public:
  // Fault points consulted per transmission when an injector is attached.
  static constexpr const char* kFaultDrop = "net.drop";
  static constexpr const char* kFaultDuplicate = "net.duplicate";
  static constexpr const char* kFaultDelay = "net.delay";

  // Host A and host B are identified by their VM systems (for OOL
  // rebuild). Latency is charged to `clock` per traversal.
  NetLink(VmSystem* vm_a, VmSystem* vm_b, SimClock* clock,
          NetLatencyModel latency = kNormaLatency, NetFaultConfig faults = NetFaultConfig{});
  ~NetLink();

  NetLink(const NetLink&) = delete;
  NetLink& operator=(const NetLink&) = delete;

  // Returns a send right usable on host A that relays to `target_on_b`
  // (which lives on host B), and vice versa. Proxies are cached per target.
  SendRight ProxyForA(SendRight target_on_b);
  SendRight ProxyForB(SendRight target_on_a);

  // A partitioned link transmits nothing: unreliable messages are lost,
  // reliable ones burn their retransmit budget and are then lost too.
  // Heals (or breaks) both directions at once.
  void SetPartitioned(bool on) { partitioned_.store(on, std::memory_order_release); }
  bool partitioned() const { return partitioned_.load(std::memory_order_acquire); }

  uint64_t messages_forwarded() const { return messages_.load(std::memory_order_relaxed); }
  uint64_t bytes_forwarded() const { return bytes_.load(std::memory_order_relaxed); }
  // Transmission attempts dropped on the wire (includes retried ones).
  uint64_t messages_dropped() const { return dropped_.load(std::memory_order_relaxed); }
  // Retransmissions performed in reliable mode.
  uint64_t retransmits() const { return retransmits_.load(std::memory_order_relaxed); }
  // Messages lost for good (unreliable drop, or retransmit budget spent).
  uint64_t messages_lost() const { return lost_.load(std::memory_order_relaxed); }
  // Extra deliveries from duplication (unreliable mode).
  uint64_t messages_duplicated() const { return duplicated_.load(std::memory_order_relaxed); }
  // Duplicates suppressed by sequence numbers (reliable mode).
  uint64_t duplicates_suppressed() const {
    return dup_suppressed_.load(std::memory_order_relaxed);
  }

 private:
  // One direction of the link.
  struct Direction {
    VmSystem* dst_vm = nullptr;  // OOL is rebuilt into this kernel.
    std::shared_ptr<PortSet> set = PortSet::Create();
    std::mutex mu;
    // target port id -> proxy (cached so a port exports to one proxy).
    std::unordered_map<uint64_t, SendRight> proxies_by_target;
    // proxy port id -> target (for forwarding and reverse unwrapping).
    std::unordered_map<uint64_t, SendRight> target_by_proxy;
    std::vector<ReceiveRight> receives;
    std::thread forwarder;
    // Reliable mode (forwarder-thread-only): next sequence number stamped
    // on the wire, and the receiver's cumulative ack. Delivery is in-order
    // per direction, so "seq <= delivered_up_to" detects any duplicate.
    uint64_t next_seq = 1;
    uint64_t delivered_up_to = 0;
  };

  SendRight MakeProxy(Direction& dir, SendRight target);
  // Rewrites a port right crossing the link in direction `dir` (whose
  // reverse is `reverse`): unwrap if it is already one of `dir`'s proxies,
  // otherwise wrap it in a reverse-direction proxy.
  SendRight RewriteRight(Direction& dir, Direction& reverse, SendRight right);
  void ForwarderLoop(Direction& dir, Direction& reverse);
  void Forward(Direction& dir, Direction& reverse, uint64_t proxy_id, Message&& msg);
  // One wire traversal: charges latency and decides drop/delay. Returns
  // false if the transmission was dropped.
  bool Transmit(uint64_t payload_bytes);

  SimClock* const clock_;
  const NetLatencyModel latency_;
  const NetFaultConfig faults_;
  Direction a_to_b_;  // Proxies that live on A and target ports on B.
  Direction b_to_a_;
  std::atomic<bool> running_{true};
  std::atomic<bool> partitioned_{false};
  std::atomic<uint64_t> messages_{0};
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> retransmits_{0};
  std::atomic<uint64_t> lost_{0};
  std::atomic<uint64_t> duplicated_{0};
  std::atomic<uint64_t> dup_suppressed_{0};
};

}  // namespace mach

#endif  // SRC_NET_NET_LINK_H_
