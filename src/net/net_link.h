// Network message service between hosts (§7): a bidirectional link that
// proxies ports across a latency model, standing in for the Ethernets and
// token rings of the paper's NORMA configurations (and, with near-zero
// latency, the switch of a NUMA or the bus of a UMA).
//
// A proxy is a real port whose receive right the link holds; a forwarder
// thread relays each message to the target port on the other host, charging
// the latency model, rewriting port rights so replies come back through the
// link, and flattening out-of-line memory into bytes on the wire (rebuilt as
// fresh memory in the destination kernel — network copy-on-reference is
// built on top of this by the migration manager).
//
// §7 gives the regimes: remote access ≈ sub-microsecond on a MultiMax-class
// UMA, ≈5 µs through a Butterfly-class NUMA switch (≈10x local), and
// hundreds of microseconds on a HyperCube-class NORMA.
//
// Real interconnects lose, duplicate and delay packets. A FaultInjector
// (points "net.drop" / "net.duplicate" / "net.delay" plus the fragment-level
// "net.frag_drop" / "net.ack_drop" / "net.reorder") plus SetPartitioned()
// model that. The optional reliable mode is a fragmented, windowed
// transport: a message is split into fragment_bytes-sized fragments sent in
// window-sized bursts; the receiver answers each delivering burst with a
// selective ack (a bitmap of everything it has reassembled so far), and the
// sender retransmits only the fragments the SACK reports missing, pacing
// retries with an adaptive RTO (SRTT/RTTVAR over virtual time, exponentially
// backed off, bounded by max_retransmits passes). Proxied pager traffic thus
// degrades to added (virtual) latency instead of loss, and one dropped
// fragment of a 64-page transfer costs one fragment on the wire — not the
// whole message.
//
// An optional failure detector sits on top: consecutive transport timeouts
// and idle-time heartbeats drive a per-direction health state machine
// kUp → kDegraded → kPeerDead. Declaring the peer dead kills every proxy
// port in that direction, which flows through the ordinary port-death
// notification path — remote kernels resolve parked faulters per their
// OnPagerTimeout policy immediately, and data managers get OnPortDeath for
// their request ports — instead of every waiter burning the 5 s pager
// timeout. SetPartitioned(false) heals: the next successful heartbeat
// re-enters kUp and fresh proxies can be minted.

#ifndef SRC_NET_NET_LINK_H_
#define SRC_NET_NET_LINK_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/base/fault_injector.h"
#include "src/base/sim_clock.h"
#include "src/ipc/port.h"
#include "src/vm/vm_system.h"

namespace mach {

struct NetLatencyModel {
  uint64_t per_msg_ns = 0;   // Charged once per wire frame (fragment/SACK).
  uint64_t per_byte_ns = 0;  // Charged per payload byte (inline + OOL).
};

// §7 regime presets.
inline constexpr NetLatencyModel kUmaLatency{500, 0};        // "considerably less than 1 µs"
inline constexpr NetLatencyModel kNumaLatency{5'000, 1};     // Butterfly: ≈5 µs
inline constexpr NetLatencyModel kNormaLatency{200'000, 80}; // HyperCube: 100s of µs, 10 Mb/s

// Per-direction link health as seen by the failure detector.
enum class LinkHealth : uint8_t {
  kUp = 0,        // Recent traffic (or heartbeats) succeeded.
  kDegraded = 1,  // degraded_after_timeouts consecutive timeouts.
  kPeerDead = 2,  // dead_after_timeouts: proxies for the peer were killed.
};

const char* LinkHealthName(LinkHealth health);

struct NetFaultConfig {
  // Consulted per transmission attempt (null = healthy link).
  FaultInjector* injector = nullptr;
  // Extra virtual-time delay charged when "net.delay" fires.
  uint64_t delay_jitter_ns = 1'000'000;  // 1 ms.
  // Fragmented selective-repeat transport: fragments ride a sliding window,
  // the receiver SACKs what it has, and only missing fragments retransmit.
  bool reliable = false;
  // Retransmission passes per message before it is declared lost.
  uint32_t max_retransmits = 6;
  // Initial RTO before any RTT sample exists; doubled per timeout.
  uint64_t retransmit_base_ns = 5'000'000;  // 5 ms.
  // Reliable-mode wire format: payload is split into fragments of this many
  // bytes, sent in bursts of window_fragments.
  uint64_t fragment_bytes = 4096;
  uint32_t window_fragments = 8;
  // Clamp on the adaptive RTO (srtt + 4*rttvar, exponentially backed off).
  uint64_t min_rto_ns = 1'000'000;    // 1 ms.
  uint64_t max_rto_ns = 320'000'000;  // 320 ms.
  // Failure detector: when enabled, consecutive transport timeouts and idle
  // heartbeats drive the kUp -> kDegraded -> kPeerDead state machine, and
  // kPeerDead kills every proxy in the affected direction.
  bool failure_detector = false;
  uint32_t degraded_after_timeouts = 3;
  uint32_t dead_after_timeouts = 10;
};

class NetLink {
 public:
  // Fault points consulted when an injector is attached. Data fragments
  // consult net.drop then net.frag_drop (drop) and net.delay (jitter);
  // delivered fragments consult net.reorder (arrival deferred past the
  // SACK). SACK control frames consult only net.ack_drop — the control
  // plane can be faulted independently of the data plane — plus
  // net.duplicate for a duplicated (idempotently re-applied) SACK.
  // Heartbeats consult no points at all: their count depends on wall-clock
  // idle time, which would perturb the deterministic per-point sequences.
  static constexpr const char* kFaultDrop = "net.drop";
  static constexpr const char* kFaultDuplicate = "net.duplicate";
  static constexpr const char* kFaultDelay = "net.delay";
  static constexpr const char* kFaultFragDrop = "net.frag_drop";
  static constexpr const char* kFaultAckDrop = "net.ack_drop";
  static constexpr const char* kFaultReorder = "net.reorder";

  // Host A and host B are identified by their VM systems (for OOL
  // rebuild). Latency is charged to `clock` per traversal.
  NetLink(VmSystem* vm_a, VmSystem* vm_b, SimClock* clock,
          NetLatencyModel latency = kNormaLatency, NetFaultConfig faults = NetFaultConfig{});
  ~NetLink();

  NetLink(const NetLink&) = delete;
  NetLink& operator=(const NetLink&) = delete;

  // Returns a send right usable on host A that relays to `target_on_b`
  // (which lives on host B), and vice versa. Proxies are cached per target.
  SendRight ProxyForA(SendRight target_on_b);
  SendRight ProxyForB(SendRight target_on_a);

  // A partitioned link transmits nothing: unreliable messages are lost,
  // reliable ones burn their retransmit budget and are then lost too.
  // Heals (or breaks) both directions at once.
  void SetPartitioned(bool on) { partitioned_.store(on, std::memory_order_release); }
  bool partitioned() const { return partitioned_.load(std::memory_order_acquire); }

  // Failure-detector observability, per direction.
  struct LinkDirectionStatus {
    LinkHealth health = LinkHealth::kUp;
    uint64_t rto_ns = 0;  // Current adaptive RTO (0 until the first sample).
    uint32_t consecutive_timeouts = 0;
  };
  LinkDirectionStatus a_to_b_status() const { return StatusOf(a_to_b_); }
  LinkDirectionStatus b_to_a_status() const { return StatusOf(b_to_a_); }

  uint64_t messages_forwarded() const { return messages_.load(std::memory_order_relaxed); }
  uint64_t bytes_forwarded() const { return bytes_.load(std::memory_order_relaxed); }
  // Transmission attempts dropped on the wire (fragments, SACKs, and
  // unreliable whole messages; includes retried attempts).
  uint64_t messages_dropped() const { return dropped_.load(std::memory_order_relaxed); }
  // Retransmission passes (RTO expiries) performed in reliable mode.
  uint64_t retransmits() const { return retransmits_.load(std::memory_order_relaxed); }
  // Messages lost for good: an unreliable drop, or a reliable message whose
  // retransmit budget was exhausted. Each lost message counts exactly once,
  // however many of its transmission attempts were dropped.
  uint64_t messages_lost() const { return lost_.load(std::memory_order_relaxed); }
  // Extra deliveries from duplication (unreliable mode).
  uint64_t messages_duplicated() const { return duplicated_.load(std::memory_order_relaxed); }
  // Duplicates suppressed in reliable mode: replayed whole messages caught
  // by sequence numbers, plus re-received fragments already reassembled.
  uint64_t duplicates_suppressed() const {
    return dup_suppressed_.load(std::memory_order_relaxed);
  }

  // Fragment-transport counters (reliable mode).
  uint64_t fragments_sent() const { return fragments_sent_.load(std::memory_order_relaxed); }
  uint64_t fragments_retransmitted() const {
    return fragments_retransmitted_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_retransmitted() const {
    return bytes_retransmitted_.load(std::memory_order_relaxed);
  }
  uint64_t sacks_sent() const { return sacks_sent_.load(std::memory_order_relaxed); }
  uint64_t sacks_duplicated() const { return sacks_duplicated_.load(std::memory_order_relaxed); }
  uint64_t reorders_seen() const { return reorders_.load(std::memory_order_relaxed); }
  // Failure-detector counters.
  uint64_t peer_dead_events() const { return peer_dead_events_.load(std::memory_order_relaxed); }
  uint64_t heartbeats_sent() const { return heartbeats_sent_.load(std::memory_order_relaxed); }

 private:
  // One direction of the link.
  struct Direction {
    const char* name = "";
    VmSystem* dst_vm = nullptr;  // OOL is rebuilt into this kernel.
    std::shared_ptr<PortSet> set = PortSet::Create();
    std::mutex mu;
    // target port id -> proxy (cached so a port exports to one proxy).
    std::unordered_map<uint64_t, SendRight> proxies_by_target;
    // proxy port id -> target (for forwarding and reverse unwrapping).
    std::unordered_map<uint64_t, SendRight> target_by_proxy;
    std::vector<ReceiveRight> receives;
    std::thread forwarder;
    // Reliable mode (forwarder-thread-only): next sequence number stamped
    // on the wire, and the receiver's cumulative ack. Delivery is in-order
    // per direction, so "seq <= delivered_up_to" detects any duplicate.
    uint64_t next_seq = 1;
    uint64_t delivered_up_to = 0;
    // RTT estimator (forwarder-thread-only; RFC 6298 shape over virtual
    // time). rto_ns is mirrored atomically for cross-thread observability.
    uint64_t srtt_ns = 0;
    uint64_t rttvar_ns = 0;
    // Failure-detector state. Written only by this direction's forwarder
    // thread; read from anywhere.
    std::atomic<LinkHealth> health{LinkHealth::kUp};
    std::atomic<uint32_t> consecutive_timeouts{0};
    std::atomic<uint64_t> rto_ns{0};
  };

  // NetLink is not shared_ptr-managed, but proxy-target death actions can
  // outlive it; they hold this token and no-op once `link` is cleared.
  struct LifeToken {
    std::mutex mu;
    NetLink* link = nullptr;
  };

  SendRight MakeProxy(Direction& dir, SendRight target);
  // Rewrites a port right crossing the link in direction `dir` (whose
  // reverse is `reverse`): unwrap if it is already one of `dir`'s proxies,
  // otherwise wrap it in a reverse-direction proxy.
  SendRight RewriteRight(Direction& dir, Direction& reverse, SendRight right);
  void ForwarderLoop(Direction& dir, Direction& reverse);
  void Forward(Direction& dir, Direction& reverse, uint64_t proxy_id, Message&& msg);
  // One wire traversal of a whole (unreliable) message: charges latency and
  // decides drop/delay. Returns false if the transmission was dropped.
  bool Transmit(uint64_t payload_bytes);
  // Reliable fragmented transport for one message. Returns false when the
  // retransmit budget is exhausted with fragments still missing; the caller
  // counts the loss (exactly once).
  bool SendReliable(Direction& dir, uint64_t payload_bytes);
  // One fragment on the wire: latency + data-plane fault points.
  bool TransmitFragment(uint64_t fragment_bytes);
  // One SACK control frame back: latency + net.ack_drop only.
  bool TransmitSack();
  void UpdateRtt(Direction& dir, uint64_t sample_ns);
  uint64_t ClampRto(uint64_t rto) const;
  uint64_t CurrentRto(const Direction& dir) const;
  // Failure detector: called by `dir`'s forwarder for every transport round
  // (RTO expiry = false, completed message = true) and heartbeat probe.
  void NoteRoundOutcome(Direction& dir, bool ok);
  // Kills every proxy in `dir` (peer declared dead): their death
  // notifications fan out to kernels and data managers holding them.
  void KillProxies(Direction& dir);
  // Eager cross-link death propagation: the real target died, so its proxy
  // dies too (instead of waiting for the next forward to fail).
  void OnTargetDead(Direction& dir, uint64_t target_id);
  LinkDirectionStatus StatusOf(const Direction& dir) const;

  SimClock* const clock_;
  const NetLatencyModel latency_;
  const NetFaultConfig faults_;
  const std::shared_ptr<LifeToken> life_;
  Direction a_to_b_;  // Proxies that live on A and target ports on B.
  Direction b_to_a_;
  std::atomic<bool> running_{true};
  std::atomic<bool> partitioned_{false};
  std::atomic<uint64_t> messages_{0};
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> retransmits_{0};
  std::atomic<uint64_t> lost_{0};
  std::atomic<uint64_t> duplicated_{0};
  std::atomic<uint64_t> dup_suppressed_{0};
  std::atomic<uint64_t> fragments_sent_{0};
  std::atomic<uint64_t> fragments_retransmitted_{0};
  std::atomic<uint64_t> bytes_retransmitted_{0};
  std::atomic<uint64_t> sacks_sent_{0};
  std::atomic<uint64_t> sacks_duplicated_{0};
  std::atomic<uint64_t> reorders_{0};
  std::atomic<uint64_t> peer_dead_events_{0};
  std::atomic<uint64_t> heartbeats_sent_{0};
};

}  // namespace mach

#endif  // SRC_NET_NET_LINK_H_
