#include "src/net/net_link.h"

#include <optional>

#include "src/base/log.h"

namespace mach {

namespace {

// A best-effort copy for duplicate delivery. Receive rights cannot be
// duplicated (there is one receiver), so a message carrying one is never
// duplicated on the wire.
std::optional<Message> CloneMessage(const Message& msg) {
  Message copy(msg.id());
  copy.set_reply_port(msg.reply_port());
  for (const MsgItem& item : msg.items()) {
    if (const auto* data = std::get_if<DataItem>(&item)) {
      copy.PushBytes(data->bytes);
    } else if (const auto* port = std::get_if<PortItem>(&item)) {
      copy.PushPort(port->right);
    } else if (const auto* ool = std::get_if<OolItem>(&item)) {
      copy.PushOol(ool->copy, ool->size);
    } else {
      return std::nullopt;
    }
  }
  return copy;
}

}  // namespace

NetLink::NetLink(VmSystem* vm_a, VmSystem* vm_b, SimClock* clock, NetLatencyModel latency,
                 NetFaultConfig faults)
    : clock_(clock), latency_(latency), faults_(faults) {
  a_to_b_.dst_vm = vm_b;  // Messages entering on A are delivered into B.
  b_to_a_.dst_vm = vm_a;
  a_to_b_.forwarder = std::thread([this] { ForwarderLoop(a_to_b_, b_to_a_); });
  b_to_a_.forwarder = std::thread([this] { ForwarderLoop(b_to_a_, a_to_b_); });
}

NetLink::~NetLink() {
  running_.store(false, std::memory_order_release);
  a_to_b_.forwarder.join();
  b_to_a_.forwarder.join();
}

SendRight NetLink::ProxyForA(SendRight target_on_b) { return MakeProxy(a_to_b_, std::move(target_on_b)); }

SendRight NetLink::ProxyForB(SendRight target_on_a) { return MakeProxy(b_to_a_, std::move(target_on_a)); }

SendRight NetLink::MakeProxy(Direction& dir, SendRight target) {
  if (!target.valid()) {
    return SendRight();
  }
  std::lock_guard<std::mutex> g(dir.mu);
  auto it = dir.proxies_by_target.find(target.id());
  if (it != dir.proxies_by_target.end()) {
    return it->second;
  }
  PortPair pair = PortAllocate("netproxy:" + target.label());
  pair.receive.port()->SetBacklog(1024);
  dir.proxies_by_target.emplace(target.id(), pair.send);
  dir.target_by_proxy.emplace(pair.send.id(), target);
  dir.set->Add(pair.receive);
  dir.receives.push_back(std::move(pair.receive));
  return pair.send;
}

SendRight NetLink::RewriteRight(Direction& dir, Direction& reverse, SendRight right) {
  if (!right.valid()) {
    return right;
  }
  {
    // If the right is one of `dir`'s own proxies, the real port lives on
    // the destination side: unwrap it rather than proxying a proxy.
    std::lock_guard<std::mutex> g(dir.mu);
    auto it = dir.target_by_proxy.find(right.id());
    if (it != dir.target_by_proxy.end()) {
      return it->second;
    }
  }
  // Otherwise the port lives on the source side: give the destination a
  // reverse-direction proxy so its replies cross the link too.
  return MakeProxy(reverse, std::move(right));
}

void NetLink::ForwarderLoop(Direction& dir, Direction& reverse) {
  while (running_.load(std::memory_order_acquire)) {
    Result<PortSet::ReceivedMessage> got = dir.set->ReceiveFrom(std::chrono::milliseconds(20));
    if (!got.ok()) {
      continue;
    }
    Forward(dir, reverse, got.value().port_id, std::move(got.value().message));
  }
}

void NetLink::Forward(Direction& dir, Direction& reverse, uint64_t proxy_id, Message&& msg) {
  SendRight target;
  {
    std::lock_guard<std::mutex> g(dir.mu);
    auto it = dir.target_by_proxy.find(proxy_id);
    if (it == dir.target_by_proxy.end()) {
      return;
    }
    target = it->second;
  }
  uint64_t payload_bytes = msg.InlineSize();

  // Rewrite the reply port and all port rights in the body.
  msg.set_reply_port(RewriteRight(dir, reverse, msg.reply_port()));
  for (MsgItem& item : msg.items()) {
    if (auto* port_item = std::get_if<PortItem>(&item)) {
      port_item->right = RewriteRight(dir, reverse, std::move(port_item->right));
    } else if (auto* ool = std::get_if<OolItem>(&item)) {
      // Out-of-line memory crosses the wire as bytes and is rebuilt as
      // fresh memory in the destination kernel.
      auto copy = std::static_pointer_cast<VmMapCopy>(ool->copy);
      if (copy != nullptr && copy->system() != nullptr) {
        Result<std::vector<std::byte>> flat = copy->system()->CopyAsBytes(copy);
        if (flat.ok()) {
          payload_bytes += flat.value().size();
          Result<std::shared_ptr<VmMapCopy>> rebuilt =
              dir.dst_vm->CopyFromBytes(flat.value().data(), flat.value().size());
          if (rebuilt.ok()) {
            ool->copy = rebuilt.value();
          } else {
            ool->copy = nullptr;
          }
        } else {
          ool->copy = nullptr;
        }
      }
    }
  }

  // Wire transmission. In reliable mode a dropped attempt is retransmitted
  // with exponential backoff (virtual ack timeouts); otherwise it is lost.
  const uint64_t seq = dir.next_seq++;
  bool on_wire = Transmit(payload_bytes);
  for (uint32_t attempt = 0; !on_wire && faults_.reliable && attempt < faults_.max_retransmits;
       ++attempt) {
    if (clock_ != nullptr) {
      clock_->Charge(faults_.retransmit_base_ns << attempt);
    }
    retransmits_.fetch_add(1, std::memory_order_relaxed);
    on_wire = Transmit(payload_bytes);
  }
  if (!on_wire) {
    lost_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  // The wire may deliver the message twice; clone it before the original
  // is moved out for delivery.
  std::optional<Message> duplicate;
  if (faults_.injector != nullptr && faults_.injector->ShouldFail(kFaultDuplicate)) {
    duplicate = CloneMessage(msg);
  }

  messages_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(payload_bytes, std::memory_order_relaxed);

  KernReturn kr = MsgSend(target, std::move(msg), std::chrono::milliseconds(2000));
  if (IsOk(kr)) {
    // Receiver-side cumulative ack: advances only when a message is
    // actually delivered.
    dir.delivered_up_to = seq;
  }

  // The duplicate trails the original and has to survive the wire itself.
  if (duplicate.has_value() && kr != KernReturn::kPortDead && Transmit(payload_bytes)) {
    if (faults_.reliable && seq <= dir.delivered_up_to) {
      // The cumulative ack already covers this sequence number: the
      // reliable receiver suppresses the replay.
      dup_suppressed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      duplicated_.fetch_add(1, std::memory_order_relaxed);
      MsgSend(target, std::move(duplicate).value(), std::chrono::milliseconds(2000));
    }
  }

  if (kr == KernReturn::kPortDead) {
    // Target died: kill the proxy so senders see port death too.
    std::lock_guard<std::mutex> g(dir.mu);
    for (auto it = dir.receives.begin(); it != dir.receives.end(); ++it) {
      if (it->id() == proxy_id) {
        dir.set->Remove(*it);
        it->Destroy();
        dir.receives.erase(it);
        break;
      }
    }
    dir.target_by_proxy.erase(proxy_id);
    dir.proxies_by_target.erase(target.id());
  }
}

bool NetLink::Transmit(uint64_t payload_bytes) {
  if (clock_ != nullptr) {
    clock_->Charge(latency_.per_msg_ns + latency_.per_byte_ns * payload_bytes);
  }
  if (partitioned()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (faults_.injector != nullptr) {
    if (faults_.injector->ShouldFail(kFaultDrop)) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (faults_.injector->ShouldFail(kFaultDelay) && clock_ != nullptr) {
      clock_->Charge(faults_.delay_jitter_ns);
    }
  }
  return true;
}

}  // namespace mach
