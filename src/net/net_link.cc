#include "src/net/net_link.h"

#include <algorithm>
#include <optional>

#include "src/base/log.h"

namespace mach {

namespace {

// A SACK is a small control frame: sequence range + fragment bitmap.
constexpr uint64_t kSackFrameBytes = 16;

// A best-effort copy for duplicate delivery. Receive rights cannot be
// duplicated (there is one receiver), so a message carrying one is never
// duplicated on the wire.
std::optional<Message> CloneMessage(const Message& msg) {
  Message copy(msg.id());
  copy.set_reply_port(msg.reply_port());
  for (const MsgItem& item : msg.items()) {
    if (const auto* data = std::get_if<DataItem>(&item)) {
      copy.PushBytes(data->bytes);
    } else if (const auto* port = std::get_if<PortItem>(&item)) {
      copy.PushPort(port->right);
    } else if (const auto* ool = std::get_if<OolItem>(&item)) {
      copy.PushOol(ool->copy, ool->size);
    } else {
      return std::nullopt;
    }
  }
  return copy;
}

}  // namespace

const char* LinkHealthName(LinkHealth health) {
  switch (health) {
    case LinkHealth::kUp:
      return "up";
    case LinkHealth::kDegraded:
      return "degraded";
    case LinkHealth::kPeerDead:
      return "peer-dead";
  }
  return "?";
}

NetLink::NetLink(VmSystem* vm_a, VmSystem* vm_b, SimClock* clock, NetLatencyModel latency,
                 NetFaultConfig faults)
    : clock_(clock), latency_(latency), faults_(faults),
      life_(std::make_shared<LifeToken>()) {
  life_->link = this;
  a_to_b_.name = "a->b";
  b_to_a_.name = "b->a";
  a_to_b_.dst_vm = vm_b;  // Messages entering on A are delivered into B.
  b_to_a_.dst_vm = vm_a;
  a_to_b_.forwarder = std::thread([this] { ForwarderLoop(a_to_b_, b_to_a_); });
  b_to_a_.forwarder = std::thread([this] { ForwarderLoop(b_to_a_, a_to_b_); });
}

NetLink::~NetLink() {
  {
    // Disarm target-death actions first: one may already hold life_->mu and
    // be walking our maps, in which case this blocks until it finishes.
    std::lock_guard<std::mutex> g(life_->mu);
    life_->link = nullptr;
  }
  running_.store(false, std::memory_order_release);
  a_to_b_.forwarder.join();
  b_to_a_.forwarder.join();
}

SendRight NetLink::ProxyForA(SendRight target_on_b) { return MakeProxy(a_to_b_, std::move(target_on_b)); }

SendRight NetLink::ProxyForB(SendRight target_on_a) { return MakeProxy(b_to_a_, std::move(target_on_a)); }

SendRight NetLink::MakeProxy(Direction& dir, SendRight target) {
  if (!target.valid()) {
    return SendRight();
  }
  SendRight proxy;
  {
    std::lock_guard<std::mutex> g(dir.mu);
    auto it = dir.proxies_by_target.find(target.id());
    if (it != dir.proxies_by_target.end()) {
      return it->second;
    }
    PortPair pair = PortAllocate("netproxy:" + target.label());
    pair.receive.port()->SetBacklog(1024);
    proxy = pair.send;
    dir.proxies_by_target.emplace(target.id(), pair.send);
    dir.target_by_proxy.emplace(pair.send.id(), target);
    dir.set->Add(pair.receive);
    dir.receives.push_back(std::move(pair.receive));
  }
  // Propagate target death eagerly: remote senders observe port death the
  // moment the real port dies, not whenever the next forward fails.
  // Registered outside dir.mu — an already-dead target fires the action
  // synchronously, and OnTargetDead retakes dir.mu. The action captures no
  // port rights (PortGc cannot see into it); the token gates ~NetLink.
  Direction* dir_ptr = &dir;
  const uint64_t target_id = target.id();
  target.port()->AddDeathAction(
      [life = life_, dir_ptr, target_id](uint64_t) {
        std::lock_guard<std::mutex> g(life->mu);
        if (life->link != nullptr) {
          life->link->OnTargetDead(*dir_ptr, target_id);
        }
      });
  return proxy;
}

void NetLink::OnTargetDead(Direction& dir, uint64_t target_id) {
  std::lock_guard<std::mutex> g(dir.mu);
  auto it = dir.proxies_by_target.find(target_id);
  if (it == dir.proxies_by_target.end()) {
    return;  // Already cleaned up (forward failure or peer-dead sweep).
  }
  const uint64_t proxy_id = it->second.id();
  for (auto rit = dir.receives.begin(); rit != dir.receives.end(); ++rit) {
    if (rit->id() == proxy_id) {
      dir.set->Remove(*rit);
      rit->Destroy();
      dir.receives.erase(rit);
      break;
    }
  }
  dir.target_by_proxy.erase(proxy_id);
  dir.proxies_by_target.erase(it);
}

SendRight NetLink::RewriteRight(Direction& dir, Direction& reverse, SendRight right) {
  if (!right.valid()) {
    return right;
  }
  {
    // If the right is one of `dir`'s own proxies, the real port lives on
    // the destination side: unwrap it rather than proxying a proxy.
    std::lock_guard<std::mutex> g(dir.mu);
    auto it = dir.target_by_proxy.find(right.id());
    if (it != dir.target_by_proxy.end()) {
      return it->second;
    }
  }
  // Otherwise the port lives on the source side: give the destination a
  // reverse-direction proxy so its replies cross the link too.
  return MakeProxy(reverse, std::move(right));
}

void NetLink::ForwarderLoop(Direction& dir, Direction& reverse) {
  while (running_.load(std::memory_order_acquire)) {
    Result<PortSet::ReceivedMessage> got = dir.set->ReceiveFrom(std::chrono::milliseconds(20));
    if (!got.ok()) {
      if (faults_.failure_detector) {
        // Idle: probe the peer. Heartbeats are control-plane only — they
        // consult the partition switch but never the injector (their count
        // depends on wall-clock idle time, which would perturb the
        // deterministic per-point fault sequences) and charge no virtual
        // latency. They are what pushes a quiet partitioned direction over
        // the peer-dead threshold, and what heals it after SetPartitioned.
        heartbeats_sent_.fetch_add(1, std::memory_order_relaxed);
        NoteRoundOutcome(dir, !partitioned());
      }
      continue;
    }
    Forward(dir, reverse, got.value().port_id, std::move(got.value().message));
  }
}

void NetLink::Forward(Direction& dir, Direction& reverse, uint64_t proxy_id, Message&& msg) {
  SendRight target;
  {
    std::lock_guard<std::mutex> g(dir.mu);
    auto it = dir.target_by_proxy.find(proxy_id);
    if (it == dir.target_by_proxy.end()) {
      return;
    }
    target = it->second;
  }
  uint64_t payload_bytes = msg.InlineSize();

  // Rewrite the reply port and all port rights in the body.
  msg.set_reply_port(RewriteRight(dir, reverse, msg.reply_port()));
  for (MsgItem& item : msg.items()) {
    if (auto* port_item = std::get_if<PortItem>(&item)) {
      port_item->right = RewriteRight(dir, reverse, std::move(port_item->right));
    } else if (auto* ool = std::get_if<OolItem>(&item)) {
      // Out-of-line memory crosses the wire as bytes and is rebuilt as
      // fresh memory in the destination kernel.
      auto copy = std::static_pointer_cast<VmMapCopy>(ool->copy);
      if (copy != nullptr && copy->system() != nullptr) {
        Result<std::vector<std::byte>> flat = copy->system()->CopyAsBytes(copy);
        if (flat.ok()) {
          payload_bytes += flat.value().size();
          Result<std::shared_ptr<VmMapCopy>> rebuilt =
              dir.dst_vm->CopyFromBytes(flat.value().data(), flat.value().size());
          if (rebuilt.ok()) {
            ool->copy = rebuilt.value();
          } else {
            ool->copy = nullptr;
          }
        } else {
          ool->copy = nullptr;
        }
      }
    }
  }

  // Wire transmission: the fragmented selective-repeat transport in
  // reliable mode, a single all-or-nothing traversal otherwise. A message
  // that does not make it is counted lost exactly once, here and only here
  // — attempt-level drops accumulate separately in messages_dropped.
  const uint64_t seq = dir.next_seq++;
  const bool on_wire =
      faults_.reliable ? SendReliable(dir, payload_bytes) : Transmit(payload_bytes);
  if (!on_wire) {
    lost_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  // The wire may deliver the message twice; clone it before the original
  // is moved out for delivery.
  std::optional<Message> duplicate;
  if (faults_.injector != nullptr && faults_.injector->ShouldFail(kFaultDuplicate)) {
    duplicate = CloneMessage(msg);
  }

  messages_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(payload_bytes, std::memory_order_relaxed);

  KernReturn kr = MsgSend(target, std::move(msg), std::chrono::milliseconds(2000));
  if (IsOk(kr)) {
    // Receiver-side cumulative ack: advances only when a message is
    // actually delivered.
    dir.delivered_up_to = seq;
  }

  // The duplicate trails the original and has to survive the wire itself.
  if (duplicate.has_value() && kr != KernReturn::kPortDead && Transmit(payload_bytes)) {
    if (faults_.reliable && seq <= dir.delivered_up_to) {
      // The cumulative ack already covers this sequence number: the
      // reliable receiver suppresses the replay.
      dup_suppressed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      duplicated_.fetch_add(1, std::memory_order_relaxed);
      MsgSend(target, std::move(duplicate).value(), std::chrono::milliseconds(2000));
    }
  }

  if (kr == KernReturn::kPortDead) {
    // Target died: kill the proxy so senders see port death too.
    std::lock_guard<std::mutex> g(dir.mu);
    for (auto it = dir.receives.begin(); it != dir.receives.end(); ++it) {
      if (it->id() == proxy_id) {
        dir.set->Remove(*it);
        it->Destroy();
        dir.receives.erase(it);
        break;
      }
    }
    dir.target_by_proxy.erase(proxy_id);
    dir.proxies_by_target.erase(target.id());
  }
}

bool NetLink::SendReliable(Direction& dir, uint64_t payload_bytes) {
  const uint64_t frag_size = std::max<uint64_t>(1, faults_.fragment_bytes);
  const uint64_t frag_count = std::max<uint64_t>(1, (payload_bytes + frag_size - 1) / frag_size);
  const uint32_t window = std::max<uint32_t>(1, faults_.window_fragments);

  // Sender and (simulated) receiver state for this message. `arrived` is
  // the receiver's reassembly bitmap — out-of-order arrivals just set their
  // bit; `acked` is the sender's view of it, merged from SACKs.
  std::vector<bool> arrived(frag_count, false);
  std::vector<bool> acked(frag_count, false);
  std::vector<bool> transmitted(frag_count, false);  // First attempt done?
  uint64_t acked_count = 0;
  uint64_t arrived_count = 0;
  uint64_t rto = CurrentRto(dir);

  // Merging a SACK bitmap is idempotent: re-applying a duplicated (or
  // stale) SACK acks nothing twice.
  auto merge_sack = [&](const std::vector<bool>& sack) {
    for (uint64_t f = 0; f < frag_count; ++f) {
      if (sack[f] && !acked[f]) {
        acked[f] = true;
        ++acked_count;
      }
    }
  };
  auto receive_fragment = [&](uint64_t f) {
    if (arrived[f]) {
      // Already reassembled (a retransmit whose SACK was lost, or a
      // reordered straggler that crossed its own retransmission).
      dup_suppressed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      arrived[f] = true;
      ++arrived_count;
    }
  };

  for (uint32_t pass = 0;; ++pass) {
    // One pass over the fragments the SACKs still report missing, in
    // window-sized bursts. Each delivering burst is answered by one SACK,
    // so a retransmission round only ever resends what is actually missing.
    uint64_t next = 0;
    while (acked_count < frag_count && next < frag_count) {
      std::vector<uint64_t> burst;
      while (next < frag_count && burst.size() < window) {
        if (!acked[next]) {
          burst.push_back(next);
        }
        ++next;
      }
      if (burst.empty()) {
        break;
      }
      const uint64_t burst_started_ns = clock_ != nullptr ? clock_->NowNs() : 0;
      bool burst_delivered = false;
      std::vector<uint64_t> reordered;  // Arrive only after the SACK left.
      for (uint64_t f : burst) {
        const uint64_t frag_bytes =
            f + 1 == frag_count ? payload_bytes - f * frag_size : frag_size;
        fragments_sent_.fetch_add(1, std::memory_order_relaxed);
        if (transmitted[f]) {
          fragments_retransmitted_.fetch_add(1, std::memory_order_relaxed);
          bytes_retransmitted_.fetch_add(frag_bytes, std::memory_order_relaxed);
        }
        transmitted[f] = true;
        if (!TransmitFragment(frag_bytes)) {
          continue;  // Dropped on the wire; a later SACK flags it missing.
        }
        if (faults_.injector != nullptr && faults_.injector->ShouldFail(kFaultReorder)) {
          reorders_.fetch_add(1, std::memory_order_relaxed);
          reordered.push_back(f);
          continue;
        }
        receive_fragment(f);
        burst_delivered = true;
      }
      if (burst_delivered) {
        // The receiver answers a delivering burst with a selective ack: a
        // snapshot of its whole reassembly bitmap (so a SACK lost earlier
        // is repaired by any later one).
        sacks_sent_.fetch_add(1, std::memory_order_relaxed);
        const std::vector<bool> sack = arrived;
        const bool sack_arrived = TransmitSack();
        // Reordered fragments land now — real arrivals the SACK that just
        // left knows nothing about; the sender re-sends them and the
        // receiver suppresses the duplicates.
        for (uint64_t f : reordered) {
          receive_fragment(f);
        }
        if (sack_arrived) {
          merge_sack(sack);
          if (faults_.injector != nullptr && faults_.injector->ShouldFail(kFaultDuplicate)) {
            // A duplicated SACK: merged again, to no further effect.
            sacks_duplicated_.fetch_add(1, std::memory_order_relaxed);
            merge_sack(sack);
          }
          if (clock_ != nullptr) {
            UpdateRtt(dir, clock_->NowNs() - burst_started_ns);
          }
        }
      } else {
        // Nothing reached the receiver in-band; stragglers still land.
        for (uint64_t f : reordered) {
          receive_fragment(f);
        }
      }
    }

    if (acked_count == frag_count) {
      if (faults_.failure_detector) {
        NoteRoundOutcome(dir, true);
      }
      return true;
    }
    // Unacked fragments remain: the retransmission timer fires.
    if (faults_.failure_detector) {
      NoteRoundOutcome(dir, false);
    }
    if (pass >= faults_.max_retransmits) {
      return false;  // Budget exhausted; the caller counts the loss once.
    }
    if (clock_ != nullptr) {
      clock_->Charge(rto);
    }
    rto = ClampRto(rto * 2);  // Bounded exponential backoff.
    retransmits_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool NetLink::Transmit(uint64_t payload_bytes) {
  if (clock_ != nullptr) {
    clock_->Charge(latency_.per_msg_ns + latency_.per_byte_ns * payload_bytes);
  }
  if (partitioned()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (faults_.injector != nullptr) {
    if (faults_.injector->ShouldFail(kFaultDrop)) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (faults_.injector->ShouldFail(kFaultDelay) && clock_ != nullptr) {
      clock_->Charge(faults_.delay_jitter_ns);
    }
  }
  return true;
}

bool NetLink::TransmitFragment(uint64_t fragment_bytes) {
  if (clock_ != nullptr) {
    clock_->Charge(latency_.per_msg_ns + latency_.per_byte_ns * fragment_bytes);
  }
  if (partitioned()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (faults_.injector != nullptr) {
    if (faults_.injector->ShouldFail(kFaultDrop) ||
        faults_.injector->ShouldFail(kFaultFragDrop)) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (faults_.injector->ShouldFail(kFaultDelay) && clock_ != nullptr) {
      clock_->Charge(faults_.delay_jitter_ns);
    }
  }
  return true;
}

bool NetLink::TransmitSack() {
  if (clock_ != nullptr) {
    clock_->Charge(latency_.per_msg_ns + latency_.per_byte_ns * kSackFrameBytes);
  }
  if (partitioned()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Control frames fault independently of the data plane: only
  // net.ack_drop, so tests can target acks without touching fragments.
  if (faults_.injector != nullptr && faults_.injector->ShouldFail(kFaultAckDrop)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

uint64_t NetLink::ClampRto(uint64_t rto) const {
  const uint64_t lo = std::max<uint64_t>(1, faults_.min_rto_ns);
  const uint64_t hi = std::max<uint64_t>(lo, faults_.max_rto_ns);
  return std::clamp(rto, lo, hi);
}

uint64_t NetLink::CurrentRto(const Direction& dir) const {
  const uint64_t adaptive = dir.rto_ns.load(std::memory_order_relaxed);
  // Before the first RTT sample the configured base paces retries (the
  // clamp does not apply to it, so tests may pick an exact backoff series).
  return adaptive != 0 ? adaptive : faults_.retransmit_base_ns;
}

void NetLink::UpdateRtt(Direction& dir, uint64_t sample_ns) {
  // RFC 6298 over virtual time: srtt <- 7/8 srtt + 1/8 sample,
  // rttvar <- 3/4 rttvar + 1/4 |srtt - sample|, rto = srtt + 4 rttvar.
  if (dir.srtt_ns == 0) {
    dir.srtt_ns = sample_ns;
    dir.rttvar_ns = sample_ns / 2;
  } else {
    const uint64_t delta =
        sample_ns > dir.srtt_ns ? sample_ns - dir.srtt_ns : dir.srtt_ns - sample_ns;
    dir.rttvar_ns = (3 * dir.rttvar_ns + delta) / 4;
    dir.srtt_ns = (7 * dir.srtt_ns + sample_ns) / 8;
  }
  dir.rto_ns.store(ClampRto(dir.srtt_ns + 4 * dir.rttvar_ns), std::memory_order_relaxed);
}

void NetLink::NoteRoundOutcome(Direction& dir, bool ok) {
  if (ok) {
    dir.consecutive_timeouts.store(0, std::memory_order_relaxed);
    // Any successful round heals — including from kPeerDead after the
    // partition is lifted. (Proxies killed meanwhile stay dead; callers
    // mint fresh ones.)
    dir.health.store(LinkHealth::kUp, std::memory_order_release);
    return;
  }
  const uint32_t timeouts = dir.consecutive_timeouts.fetch_add(1, std::memory_order_relaxed) + 1;
  const LinkHealth health = dir.health.load(std::memory_order_acquire);
  if (timeouts >= faults_.dead_after_timeouts && health != LinkHealth::kPeerDead) {
    dir.health.store(LinkHealth::kPeerDead, std::memory_order_release);
    peer_dead_events_.fetch_add(1, std::memory_order_relaxed);
    MACH_LOG(kDebug) << "net link " << dir.name << ": peer declared dead after " << timeouts
                     << " consecutive timeouts";
    KillProxies(dir);
  } else if (timeouts >= faults_.degraded_after_timeouts && health == LinkHealth::kUp) {
    dir.health.store(LinkHealth::kDegraded, std::memory_order_release);
  }
}

void NetLink::KillProxies(Direction& dir) {
  // Destroying the receive rights marks every proxy port dead; their death
  // notifications fan out to whoever registered (kernels resolve parked
  // faulters per OnPagerTimeout policy, data managers get OnPortDeath).
  std::lock_guard<std::mutex> g(dir.mu);
  for (ReceiveRight& r : dir.receives) {
    dir.set->Remove(r);
    r.Destroy();
  }
  dir.receives.clear();
  dir.target_by_proxy.clear();
  dir.proxies_by_target.clear();
}

NetLink::LinkDirectionStatus NetLink::StatusOf(const Direction& dir) const {
  LinkDirectionStatus status;
  status.health = dir.health.load(std::memory_order_acquire);
  status.rto_ns = dir.rto_ns.load(std::memory_order_relaxed);
  status.consecutive_timeouts = dir.consecutive_timeouts.load(std::memory_order_relaxed);
  return status;
}

}  // namespace mach
