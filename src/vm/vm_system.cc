// VmSystem: construction, resident page management, object lifecycle, and
// the Table 3-3 / 3-4 operations. The fault handler lives in vm_fault.cc;
// the pageout daemon and the manager->kernel handlers in vm_pageout.cc.

#include "src/vm/vm_system.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <unordered_set>

#include "src/base/debug.h"
#include "src/base/fault_injector.h"
#include "src/base/lock_probe.h"
#include "src/base/log.h"
#include "src/pager/protocol.h"

namespace mach {

VmSystem::VmSystem(PhysicalMemory* phys, Config config) : phys_(phys), config_(config) {
  uint32_t frames = phys_->frame_count();
  free_target_ = config.free_target != 0 ? config.free_target : std::max<uint32_t>(frames / 8, 4);
  reserved_ = config.reserved != 0 ? config.reserved : std::max<uint32_t>(frames / 64, 2);
  // A PinBatch may hold this many frames pinned at once; keep it a small
  // fraction of physical memory so batching can never starve reclaim.
  pin_batch_cap_ = std::min<size_t>(QueueBatch::kCapacity,
                                    std::max<size_t>(1, frames / 8));
  // The wire decoder rejects runs beyond kPagerMaxRunPages, so never ask
  // for more than that.
  config_.fault_ahead_max =
      std::clamp<uint32_t>(config_.fault_ahead_max, 1, kPagerMaxRunPages);
  // Death notifications are delivered with non-blocking sends; a roomy
  // backlog keeps a burst of port deaths from dropping any.
  PortPair death = PortAllocate("pager-death-notify");
  death.receive.port()->SetBacklog(4096);
  death_notify_receive_ = std::move(death.receive);
  death_notify_send_ = std::move(death.send);
  pager_requests_->Add(death_notify_receive_);
}

VmSystem::~VmSystem() {
  StopPageoutDaemon();
  // Free any pages still resident (objects referenced by leaked handles).
  // Execution is single-threaded by now, but PageFreeLocked still wants the
  // owner's lock as its witness.
  std::vector<VmPage*> pages;
  for (PageHashShard& shard : page_shards_) {
    std::lock_guard<std::mutex> g(shard.mu);
    for (auto& [key, page] : shard.map) {
      pages.push_back(page);
    }
  }
  for (VmPage* page : pages) {
    ObjectLock olk(page->object->mu);
    PageFreeLocked(olk, page);
  }
}

void VmSystem::SetDefaultPager(SendRight service_port, TrustedParkingStore* parking) {
  ChainLock chain(chain_mu_);
  default_pager_service_ = std::move(service_port);
  parking_ = parking;
}

TaskVm VmSystem::CreateTaskVm() {
  TaskVm vm;
  // A full 32-bit address space starting above page 0 (so that address 0
  // stays invalid, catching null dereferences as real faults).
  vm.map = std::make_shared<AddressMap>(page_size(), uint64_t{1} << 32, page_size());
  vm.pmap = std::make_unique<Pmap>(phys_);
  return vm;
}

// --- resident page management ---------------------------------------------

VmSystem::PageHashShard& VmSystem::ShardFor(const VmObject* object, VmOffset offset) const {
  return page_shards_[PageKeyHash{}(PageKey{object, offset}) & (kPageHashShards - 1)];
}

VmPage* VmSystem::PageLookup(VmObject* object, VmOffset offset) {
  counters_.lookups.fetch_add(1, std::memory_order_relaxed);
  PageHashShard& shard = ShardFor(object, offset);
  lock_probe::Note();
  std::lock_guard<std::mutex> g(shard.mu);
  auto it = shard.map.find(PageKey{object, offset});
  if (it == shard.map.end()) {
    return nullptr;
  }
  counters_.hits.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

VmPage* VmSystem::PageLookupRaw(const VmObject* object, VmOffset offset) const {
  // The optimistic fault path's probe: identical to PageLookup minus the
  // lookups/hits counter traffic (two contended xadds the lock-free path
  // exists to avoid; the optimistic counters already tell the story).
  PageHashShard& shard = ShardFor(object, offset);
  lock_probe::Note();
  std::lock_guard<std::mutex> g(shard.mu);
  auto it = shard.map.find(PageKey{object, offset});
  return it == shard.map.end() ? nullptr : it->second;
}

bool VmSystem::PageResident(const VmObject* object, VmOffset offset) const {
  PageHashShard& shard = ShardFor(object, offset);
  lock_probe::Note();
  std::lock_guard<std::mutex> g(shard.mu);
  return shard.map.count(PageKey{object, offset}) != 0;
}

Result<VmPage*> VmSystem::PageAllocLocked(VmObject* object, VmOffset offset, bool allow_reserve) {
  assert(offset % page_size() == 0);
  // The caller may have dropped the object lock since it probed: emplacing
  // over an existing slot would leave two VmPages claiming it, so rescan.
  if (PageResident(object, offset)) {
    return KernReturn::kMemoryPresent;
  }
  std::optional<uint32_t> frame;
  if (allow_reserve || phys_->free_frames() > reserved_) {
    frame = phys_->AllocFrame();
  }
  if (!frame.has_value()) {
    // Below the reserved floor (§6.2.3). The caller must drop every lock
    // and WaitForFreeFrames; poke the daemon on its behalf.
    pageout_wake_.notify_all();
    return KernReturn::kResourceShortage;
  }
  auto* page = new VmPage();
  page->object = object;
  page->offset = offset;
  page->frame = *frame;
  {
    PageHashShard& shard = ShardFor(object, offset);
    lock_probe::Note();
    std::lock_guard<std::mutex> g(shard.mu);
    shard.map.emplace(PageKey{object, offset}, page);
  }
  object->pages.PushBack(page);
  ++object->resident_count;
  return page;
}

void VmSystem::PageFreeLocked(ObjectLock& olk, VmPage* page) {
  (void)olk;
  if (page->readahead) {
    // A speculative fault-ahead page is being reclaimed before any thread
    // touched it: wasted speculation (the honest-waste counter for E16).
    counters_.fault_ahead_unused.fetch_add(1, std::memory_order_relaxed);
  }
  Pmap::PageProtect(phys_, page->frame, kVmProtNone);
  PageRemoveFromQueue(page);
  {
    PageHashShard& shard = ShardFor(page->object, page->offset);
    lock_probe::Note();
    std::lock_guard<std::mutex> g(shard.mu);
    shard.map.erase(PageKey{page->object, page->offset});
  }
  page->object->pages.Remove(page);
  --page->object->resident_count;
  phys_->FreeFrame(page->frame);
  delete page;
  free_cv_.notify_all();
}

void VmSystem::PageActivate(VmPage* page) {
  // Lock-free fast-out: on the fault path nearly every activation finds the
  // page already active. The tag may be stale (a concurrent deactivation is
  // not yet visible), but that loses nothing — the page's reference bit
  // rescues it from the inactive queue exactly as if the orders had swapped.
  if (page->queue.load(std::memory_order_relaxed) == VmPage::Queue::kActive) {
    counters_.activations_skipped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  lock_probe::Note();
  std::lock_guard<std::mutex> g(queue_mu_);
  PageActivateLocked(page);
}

void VmSystem::PageActivateLocked(VmPage* page) {
  if (page->queue.load(std::memory_order_relaxed) == VmPage::Queue::kActive) {
    return;
  }
  PageRemoveFromQueueLocked(page);
  page->queue.store(VmPage::Queue::kActive, std::memory_order_relaxed);
  active_queue_.PushBack(page);
  ++active_count_;
}

void VmSystem::PageDeactivate(VmPage* page) {
  if (page->queue.load(std::memory_order_relaxed) == VmPage::Queue::kInactive) {
    return;  // Same fast-out rationale as PageActivate.
  }
  lock_probe::Note();
  std::lock_guard<std::mutex> g(queue_mu_);
  PageDeactivateLocked(page);
}

void VmSystem::PageDeactivateLocked(VmPage* page) {
  if (page->queue.load(std::memory_order_relaxed) == VmPage::Queue::kInactive) {
    return;
  }
  PageRemoveFromQueueLocked(page);
  page->queue.store(VmPage::Queue::kInactive, std::memory_order_relaxed);
  inactive_queue_.PushBack(page);
  ++inactive_count_;
  // Clear the hardware reference bit so a later scan can tell whether the
  // page was touched while inactive (second chance).
  phys_->ClearReference(page->frame);
}

void VmSystem::PageRemoveFromQueue(VmPage* page) {
  lock_probe::Note();
  std::lock_guard<std::mutex> g(queue_mu_);
  PageRemoveFromQueueLocked(page);
}

void VmSystem::PageRemoveFromQueueLocked(VmPage* page) {
  switch (page->queue.load(std::memory_order_relaxed)) {
    case VmPage::Queue::kActive:
      active_queue_.Remove(page);
      --active_count_;
      break;
    case VmPage::Queue::kInactive:
      inactive_queue_.Remove(page);
      --inactive_count_;
      break;
    case VmPage::Queue::kNone:
      break;
  }
  page->queue.store(VmPage::Queue::kNone, std::memory_order_relaxed);
}

VmSystem::QueueBatch& VmSystem::ThreadQueueBatch() {
  // Per-thread, but shared across VmSystem instances (a process can run two
  // kernels, e.g. the migration demo) — hence the drain-before-return
  // discipline asserted by QueueBatchDrainedCheck: a batch never survives
  // past the operation that filled it, so it can never flush pages into the
  // wrong kernel's queues.
  static thread_local QueueBatch batch;
  return batch;
}

void VmSystem::PageActivateDeferred(VmPage* page) {
  if (page->queue.load(std::memory_order_relaxed) == VmPage::Queue::kActive) {
    counters_.activations_skipped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  QueueBatch& batch = ThreadQueueBatch();
  batch.pages[batch.count++] = page;
  if (batch.count == QueueBatch::kCapacity) {
    FlushQueueBatch();
  }
}

void VmSystem::FlushQueueBatch() {
  QueueBatch& batch = ThreadQueueBatch();
  if (batch.empty()) {
    return;
  }
  lock_probe::Note();
  std::lock_guard<std::mutex> g(queue_mu_);
  for (size_t i = 0; i < batch.count; ++i) {
    PageActivateLocked(batch.pages[i]);
  }
  batch.count = 0;
  counters_.queue_batch_flushes.fetch_add(1, std::memory_order_relaxed);
}

VmSystem::QueueBatchDrainedCheck::QueueBatchDrainedCheck() {
  MACH_DEBUG_ASSERT(ThreadQueueBatch().empty());
}

VmSystem::QueueBatchDrainedCheck::~QueueBatchDrainedCheck() {
  MACH_DEBUG_ASSERT(ThreadQueueBatch().empty());
}

VmSystem::PinBatch::PinBatch(VmSystem* vm) : vm_(vm), cap_(vm->pin_batch_cap_) {
  MACH_DEBUG_ASSERT(ThreadQueueBatch().empty());
  pins_.reserve(cap_);
}

VmSystem::PinBatch::~PinBatch() { Drain(); }

void VmSystem::PinBatch::Add(PagePin&& pin) {
  vm_->PageActivateDeferred(pin.page);
  pins_.push_back(std::move(pin));
  if (pins_.size() >= cap_) {
    Drain();
  }
}

void VmSystem::PinBatch::Drain() {
  // Flush activations *before* unpinning: the pin is what keeps a deferred
  // page stable (unfreed, unrenamed) until its queue entry is applied.
  vm_->FlushQueueBatch();
  for (PagePin& pin : pins_) {
    vm_->UnpinPage(pin);
  }
  pins_.clear();
}

void VmSystem::PageRename(VmPage* page, VmObject* new_object, VmOffset new_offset) {
  // Caller holds both objects' locks. The pageout scan reads a queued
  // page's identity under queue_mu_ alone, so flip it under queue_mu_ too.
  {
    PageHashShard& shard = ShardFor(page->object, page->offset);
    lock_probe::Note();
    std::lock_guard<std::mutex> g(shard.mu);
    shard.map.erase(PageKey{page->object, page->offset});
  }
  page->object->pages.Remove(page);
  --page->object->resident_count;
  {
    lock_probe::Note();
    std::lock_guard<std::mutex> g(queue_mu_);
    page->object = new_object;
    page->offset = new_offset;
  }
  {
    PageHashShard& shard = ShardFor(new_object, new_offset);
    lock_probe::Note();
    std::lock_guard<std::mutex> g(shard.mu);
    shard.map.emplace(PageKey{new_object, new_offset}, page);
  }
  new_object->pages.PushBack(page);
  ++new_object->resident_count;
}

void VmSystem::WaitForFreeFrames() {
  pageout_wake_.notify_all();
  if (ReclaimPass(free_target_) > 0) {
    return;
  }
  // Nothing reclaimable right now (pages busy / queues empty): wait for the
  // daemon or a manager to release something. The slice bounds the cost of
  // a missed notify.
  std::unique_lock<std::mutex> lk(free_mu_);
  free_cv_.wait_for(lk, std::chrono::milliseconds(50));
}

// --- object lifecycle -------------------------------------------------------

std::shared_ptr<VmObject> VmSystem::CreateInternalObject(VmSize size) {
  auto object = std::make_shared<VmObject>(size);
  object->internal = true;
  return object;
}

void VmSystem::MakeShadow(ChainLock& chain, MapEntry* entry) {
  (void)chain;
  // The shadow is fresh and unpublished until the entry assignment (made
  // under the holder map's exclusive lock), so its own lock is not needed.
  std::shared_ptr<VmObject> shadow = CreateInternalObject(entry->size());
  shadow->shadow = entry->object;
  shadow->shadow_offset = entry->offset;
  shadow->shadow->AddShadowChild(shadow.get());
  // The backing object's reference moves from the entry to the shadow
  // pointer: net reference count unchanged.
  entry->object = shadow;
  entry->offset = 0;
  entry->needs_copy = false;
  ObjectRef(entry->object);
}

void VmSystem::ObjectRelease(ChainLock& chain, std::shared_ptr<VmObject> object) {
  if (object == nullptr) {
    return;
  }
  const uint32_t prev = object->map_refs.fetch_sub(1, std::memory_order_acq_rel);
  assert(prev > 0);
  if (prev > 1) {
    // A dropped reference can leave a child's shadow pointer as the only
    // one remaining — the collapse opportunity. Map removal, task death and
    // map-copy consumption (MaybeDrainDeferred) all funnel through here.
    if (prev == 2 && object->shadow_children.size() == 1) {
      TryCollapse(chain, object->shadow_children.front()->shared_from_this());
    }
    return;
  }
  // No address-map references remain (§3.4.1 termination / caching).
  if (object->can_persist && object->pager.valid() && !object->internal) {
    object->cached = true;
    return;
  }
  TerminateObject(chain, object);
}

void VmSystem::TerminateObject(ChainLock& chain, const std::shared_ptr<VmObject>& object) {
  std::shared_ptr<VmObject> shadow;
  {
    ObjectLock olk(object->mu);
    if (!object->alive) {
      return;
    }
    object->alive = false;
    object->cached = false;
    // "When no references to a memory object remain, and all modifications
    // have been written back to the memory object, the kernel deallocates
    // its rights" (§3.4.1): push dirty pages to the data manager first.
    // Busy or pinned pages are orphaned — removed from the queues and left
    // resident; the in-transit owner or last unpinner frees them on seeing
    // !alive.
    object->pages.ForEach([&](VmPage* page) {
      if (page->busy || page->pin_count > 0) {
        PageRemoveFromQueue(page);
        return;
      }
      if (object->pager.valid() && !object->pager.IsDead()) {
        Pmap::PageProtect(phys_, page->frame, kVmProtNone);
        if (page->dirty || phys_->IsModified(page->frame)) {
          PagerDataWriteArgs args;
          args.offset = page->offset;
          args.data.resize(page_size());
          phys_->ReadFrame(page->frame, 0, args.data.data(), page_size());
          if (IsOk(MsgSend(object->pager, EncodePagerDataWrite(args), kPoll))) {
            counters_.pageouts.fetch_add(1, std::memory_order_relaxed);
          } else if (config_.errant_manager_protection && parking_ != nullptr) {
            parking_->Park(object->id(), page->offset, std::move(args.data));
            counters_.parked_pageouts.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
      PageFreeLocked(olk, page);
    });
    // Deallocate the kernel's rights to the three ports; the data manager
    // receives death notifications for the request and name ports and can
    // perform its shutdown (§3.4.1). Order matters: dropping the pager send
    // right *first* makes the manager's no-senders notification for the
    // object port precede the request-port death on the manager's notify
    // queue — managers reclaim backing storage on no-senders and treat the
    // subsequent death as confirmation, never the reverse.
    if (object->pager.valid()) {
      objects_by_pager_.erase(object->pager.id());
    }
    if (object->request_receive.valid()) {
      objects_by_request_.erase(object->request_receive.id());
      pager_requests_->Remove(object->request_receive);
    }
    object->pager = SendRight();
    object->request_send = SendRight();
    object->name_send = SendRight();
    object->request_receive.Destroy();
    object->name_receive.Destroy();
    // Any data parked with the default pager under this object's id is
    // unreachable from now on; reclaim the store's blocks.
    if (parking_ != nullptr) {
      parking_->Discard(object->id());
    }
    // Wake faulters waiting on this object so they observe !alive.
    object->cv.notify_all();
    if (object->shadow != nullptr) {
      shadow = std::move(object->shadow);
      object->shadow = nullptr;
      shadow->RemoveShadowChild(object.get());
    }
  }
  // Releasing the shadow can recurse into terminates and collapse probes
  // that take other object locks; do it after dropping ours.
  if (shadow != nullptr) {
    ObjectRelease(chain, std::move(shadow));
  }
}

void VmSystem::ReleaseEntry(ChainLock& chain, MapEntry&& entry) {
  if (entry.is_share) {
    std::shared_ptr<AddressMap> share = std::move(entry.share_map);
    if (share != nullptr && share.use_count() == 1) {
      // Last top-level reference to the sharing map: release its objects.
      // No other map entry can reach the share map any more (use_count is
      // exact: faulters never retain the share_map pointer), so its lock is
      // not needed — and must not be taken here, where chain_mu_ is held.
      std::vector<MapEntry> subs = share->RemoveRange(share->min_address(), share->max_address());
      for (MapEntry& sub : subs) {
        ReleaseEntry(chain, std::move(sub));
      }
    }
    return;
  }
  if (entry.object != nullptr) {
    ObjectRelease(chain, std::move(entry.object));
  }
}

void VmSystem::WriteProtectResident(VmObject* object, VmOffset offset, VmSize size) {
  ObjectLock olk(object->mu);
  for (VmPage* page : object->pages) {
    if (page->offset >= offset && page->offset < offset + size) {
      Pmap::PageProtect(phys_, page->frame, kVmProtRead | kVmProtExecute);
    }
  }
}

// --- shadow-chain collapse (Mach's vm_object_collapse / bypass) -------------

namespace {
// Pages in transit (pagein, pageout, pending unlock, death-resolution) or
// pinned by an installing fault make residency unstable: another thread
// holds raw pointers into this object across a lock drop. Collapse must not
// touch such an object.
bool HasUnstablePage(const VmObject* object) {
  for (const VmPage* page : object->pages) {
    if (page->busy || page->absent || page->unavailable || page->error ||
        page->unlock_pending || page->pin_count > 0) {
      return true;
    }
  }
  return false;
}
}  // namespace

bool VmSystem::ObjectCoversOffset(const VmObject* object, VmOffset offset) const {
  // Raw probe — coverage checks should not skew the lookup/hit statistics.
  if (PageResident(object, offset)) {
    return true;
  }
  // Parked (§6.2.2) and pager-held copies count only while the pager
  // association is intact — the fault path consults both under the same
  // condition, and coverage must mirror exactly what a fault could read.
  return object->pager.valid() && (object->parked_offsets.count(offset) != 0 ||
                                   object->paged_offsets.count(offset) != 0);
}

VmSystem::Coverage VmSystem::FullyCoversSelf(const VmObject* object) const {
  const VmSize ps = page_size();
  const uint64_t total = (object->size() + ps - 1) / ps;
  if (!object->pager.valid()) {
    // Residency is the only possible coverage; offsets are distinct and
    // in-range, so the count is exact.
    return uint64_t{object->resident_count} >= total ? Coverage::kFull : Coverage::kPartial;
  }
  // Coverage is derived from metadata (resident pages + pager-held +
  // parked offsets), never an O(size) offset scan; the cap bounds the
  // metadata walk for degenerate objects.
  const size_t metadata = size_t{object->resident_count} + object->paged_offsets.size() +
                          object->parked_offsets.size();
  if (metadata > config_.collapse_scan_cap) {
    return Coverage::kCapExceeded;
  }
  // A pager may have provided unsolicited pages beyond size(); count
  // distinct in-range offsets only.
  std::unordered_set<VmOffset> covered;
  covered.reserve(metadata);
  for (const VmPage* page : object->pages) {
    if (page->offset < object->size()) {
      covered.insert(page->offset);
    }
  }
  for (VmOffset off : object->paged_offsets) {
    if (off < object->size()) {
      covered.insert(off);
    }
  }
  for (const auto& [off, parked] : object->parked_offsets) {
    (void)parked;
    if (off < object->size()) {
      covered.insert(off);
    }
  }
  return covered.size() >= total ? Coverage::kFull : Coverage::kPartial;
}

void VmSystem::MaybeCollapse(const std::shared_ptr<VmObject>& object) {
  if (!config_.shadow_collapse) {
    return;
  }
  bool opportunity = false;
  {
    lock_probe::Note();
    ObjectLock olk(object->mu);
    opportunity =
        object->alive && object->shadow != nullptr &&
        (object->shadow->map_refs.load(std::memory_order_acquire) == 1 ||
         (!object->pager.valid() &&
          uint64_t{object->resident_count} * page_size() >= object->size()));
  }
  if (!opportunity) {
    return;
  }
  lock_probe::Note();
  ChainLock chain(chain_mu_);
  TryCollapse(chain, object);
}

void VmSystem::TryCollapse(ChainLock& chain, const std::shared_ptr<VmObject>& object) {
  if (!config_.shadow_collapse) {
    return;
  }
  // Splice loop: absorb immediate shadows whose only reference is our
  // shadow pointer. Page migration is hash-table surgery on frames that
  // stay put — no copies and no blocking — under the child and parent
  // object locks (child first, the documented chain order).
  for (;;) {
    ObjectLock olk(object->mu);
    if (!object->alive || object->shadow == nullptr) {
      break;
    }
    std::shared_ptr<VmObject> sref = object->shadow;
    VmObject* s = sref.get();
    if (s->map_refs.load(std::memory_order_acquire) != 1 || s->shadow_children.size() != 1 ||
        !s->alive) {
      break;  // Someone else still reads through s.
    }
    // Mach never collapses pager-created objects: an external manager's
    // holdings can't be enumerated, and its dirty pages must flow back to
    // it at termination (which a bypass release still does), not be stolen
    // into the child.
    if (!s->internal && s->pager.valid()) {
      counters_.collapse_denied_external.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    ObjectLock slk(s->mu);
    if (HasUnstablePage(object.get()) || HasUnstablePage(s)) {
      counters_.collapse_denied.fetch_add(1, std::memory_order_relaxed);
      return;  // In-transit pages; retry on a later opportunity.
    }
    const VmOffset window_lo = object->shadow_offset;
    const VmOffset window_hi = window_lo + object->size();
    // Data s holds only on backing store (default pager / parking) cannot
    // be migrated without a blocking read-back; deny unless the child
    // covers those offsets (or a newer resident copy exists to migrate).
    bool backing_only_data = false;
    auto covered_or_resident = [&](VmOffset so) {
      return so < window_lo || so >= window_hi || PageResident(s, so) ||
             ObjectCoversOffset(object.get(), so - window_lo);
    };
    if (s->pager.valid()) {
      for (VmOffset so : s->paged_offsets) {
        if (!covered_or_resident(so)) {
          backing_only_data = true;
          break;
        }
      }
      for (const auto& [so, parked] : s->parked_offsets) {
        (void)parked;
        if (!covered_or_resident(so)) {
          backing_only_data = true;
          break;
        }
      }
    }
    if (backing_only_data) {
      counters_.collapse_denied.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (config_.fault_injector != nullptr &&
        config_.fault_injector->ShouldFail(kFaultCollapse)) {
      counters_.collapse_denied.fetch_add(1, std::memory_order_relaxed);
      return;  // Injected suppression (chaos coverage of long chains).
    }
    // Migrate: every page of s the child would still read through the
    // window moves into the child; pages the child already covers (its copy
    // supersedes the shadow's) and pages outside the window die with s.
    std::vector<VmPage*> source;
    for (VmPage* page : s->pages) {
      source.push_back(page);
    }
    for (VmPage* page : source) {
      if (page->offset < window_lo || page->offset >= window_hi) {
        PageFreeLocked(slk, page);
        continue;
      }
      const VmOffset co = page->offset - window_lo;
      if (ObjectCoversOffset(object.get(), co)) {
        PageFreeLocked(slk, page);
        continue;
      }
      // Any surviving hardware mappings of this frame are read-only
      // (from_backing resolutions never map a shadow's page writable), but
      // drop write access defensively before the identity change.
      Pmap::PageProtect(phys_, page->frame, kVmProtRead | kVmProtExecute);
      PageRename(page, object.get(), co);
      // The survivor's resident copy is now the only one — s's backing
      // store dies with it — so the page must not be dropped clean.
      page->dirty = true;
      counters_.pages_migrated.fetch_add(1, std::memory_order_relaxed);
    }
    // Splice s out: the child inherits s's shadow reference (net reference
    // count on the grandparent unchanged), and s's last reference — our
    // shadow pointer — is gone.
    std::shared_ptr<VmObject> doomed = std::move(object->shadow);
    doomed->RemoveShadowChild(object.get());
    object->shadow = std::move(doomed->shadow);
    object->shadow_offset += doomed->shadow_offset;
    doomed->shadow_offset = 0;
    if (object->shadow != nullptr) {
      object->shadow->RemoveShadowChild(doomed.get());
      object->shadow->AddShadowChild(object.get());
    }
    doomed->map_refs.store(0, std::memory_order_release);
    counters_.shadow_collapses.fetch_add(1, std::memory_order_relaxed);
    slk.unlock();
    olk.unlock();
    TerminateObject(chain, doomed);
  }
  // Bypass: if the child alone covers every page it can fault on, nothing
  // below it is reachable any more — release the whole remaining chain.
  std::shared_ptr<VmObject> released_chain;
  {
    ObjectLock olk(object->mu);
    if (object->alive && object->shadow != nullptr && !HasUnstablePage(object.get())) {
      switch (FullyCoversSelf(object.get())) {
        case Coverage::kPartial:
          break;
        case Coverage::kCapExceeded:
          counters_.collapse_denied.fetch_add(1, std::memory_order_relaxed);
          counters_.collapse_denied_scan_cap.fetch_add(1, std::memory_order_relaxed);
          break;
        case Coverage::kFull:
          if (config_.fault_injector != nullptr &&
              config_.fault_injector->ShouldFail(kFaultCollapse)) {
            counters_.collapse_denied.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          released_chain = std::move(object->shadow);
          object->shadow_offset = 0;
          released_chain->RemoveShadowChild(object.get());
          counters_.shadow_bypasses.fetch_add(1, std::memory_order_relaxed);
          break;
      }
    }
  }
  if (released_chain != nullptr) {
    ObjectRelease(chain, std::move(released_chain));
  }
}

size_t VmSystem::ShadowChainLength(TaskVm& task, VmOffset addr) {
  const VmOffset page_addr = TruncPage(addr, page_size());
  std::shared_ptr<VmObject> object;
  {
    std::shared_lock<std::shared_mutex> mlk(task.map->lock());
    MapEntry* top = task.map->Lookup(page_addr);
    if (top == nullptr) {
      return 0;
    }
    if (top->is_share) {
      std::shared_lock<std::shared_mutex> slk(top->share_map->lock());
      const MapEntry* holder = top->share_map->Lookup(top->offset + (page_addr - top->start));
      if (holder == nullptr) {
        return 0;
      }
      object = holder->object;
    } else {
      object = top->object;
    }
  }
  ChainLock chain(chain_mu_);
  size_t depth = 0;
  for (const VmObject* o = object.get(); o != nullptr; o = o->shadow.get()) {
    ++depth;
  }
  return depth;
}

void VmSystem::MaybeDrainDeferred() {
  // Nothing-pending is the common case on the fault path; answer it from
  // the flag without touching deferred_mu_.
  if (!deferred_pending_.load(std::memory_order_acquire)) {
    return;
  }
  std::vector<std::shared_ptr<VmObject>> pending;
  {
    std::lock_guard<std::mutex> g(deferred_mu_);
    deferred_pending_.store(false, std::memory_order_relaxed);
    if (deferred_releases_.empty()) {
      return;
    }
    pending.swap(deferred_releases_);
  }
  // ObjectRelease spots collapse opportunities, so map-copy consumption
  // (out-of-line message teardown) compacts chains just like map removal.
  ChainLock chain(chain_mu_);
  for (auto& object : pending) {
    ObjectRelease(chain, std::move(object));
  }
}

size_t VmSystem::object_count() const {
  ChainLock chain(chain_mu_);
  return objects_by_pager_.size();
}

std::shared_ptr<VmObject> VmSystem::ObjectForPager(const SendRight& pager) const {
  ChainLock chain(chain_mu_);
  auto it = objects_by_pager_.find(pager.id());
  return it == objects_by_pager_.end() ? nullptr : it->second;
}

void VmSystem::TrimObjectCache() {
  ChainLock chain(chain_mu_);
  std::vector<std::shared_ptr<VmObject>> victims;
  for (auto& [id, object] : objects_by_pager_) {
    bool idle;
    {
      ObjectLock olk(object->mu);
      idle = object->resident_count == 0;
    }
    if (object->cached && idle) {
      victims.push_back(object);
    }
  }
  for (auto& object : victims) {
    TerminateObject(chain, object);
  }
}

// --- Table 3-3 operations ---------------------------------------------------

Result<VmOffset> VmSystem::Allocate(TaskVm& task, VmOffset addr, VmSize size, bool anywhere) {
  if (size == 0) {
    return KernReturn::kInvalidArgument;
  }
  MaybeDrainDeferred();
  MapMutation mlk(*task.map);
  size = RoundPage(size, page_size());
  if (anywhere) {
    Result<VmOffset> found = task.map->FindSpace(size, addr);
    if (!found.ok()) {
      return found.status();
    }
    addr = found.value();
  } else {
    addr = TruncPage(addr, page_size());
    if (!task.map->RangeFree(addr, size)) {
      return KernReturn::kNoSpace;
    }
  }
  MapEntry entry;
  entry.start = addr;
  entry.end = addr + size;
  // Zero-filled on demand: the backing object is created at first fault.
  KernReturn kr = task.map->Insert(std::move(entry));
  if (!IsOk(kr)) {
    return kr;
  }
  return addr;
}

Result<VmOffset> VmSystem::AllocateWithPager(TaskVm& task, VmOffset addr, VmSize size,
                                             bool anywhere, SendRight memory_object,
                                             VmOffset offset) {
  if (size == 0 || !memory_object.valid()) {
    return KernReturn::kInvalidArgument;
  }
  if (offset % page_size() != 0) {
    // The paper permits unaligned offsets with alignment-consistency
    // caveats; this implementation requires page alignment (see DESIGN.md).
    return KernReturn::kInvalidArgument;
  }
  MaybeDrainDeferred();
  size = RoundPage(size, page_size());
  bool need_init = false;
  std::shared_ptr<VmObject> object;
  {
    ChainLock chain(chain_mu_);
    auto it = objects_by_pager_.find(memory_object.id());
    if (it != objects_by_pager_.end()) {
      object = it->second;
      object->cached = false;  // Revived from the object cache.
      ObjectLock olk(object->mu);
      object->set_size(std::max(object->size(), offset + size));
    } else {
      object = std::make_shared<VmObject>(offset + size);
      object->internal = false;
      object->pager = memory_object;
      PortPair request = PortAllocate("pager-request");
      PortPair name = PortAllocate("pager-name");
      object->request_receive = std::move(request.receive);
      object->request_send = request.send;
      object->name_receive = std::move(name.receive);
      object->name_send = name.send;
      object->pager_initialized = true;
      objects_by_pager_.emplace(memory_object.id(), object);
      objects_by_request_.emplace(object->request_send.id(), object);
      pager_requests_->Add(object->request_receive);
      // Watch the manager's memory-object port so its death resolves
      // waiting faulters immediately (§6.2.1). Fires at once if the port
      // is already dead.
      memory_object.port()->RequestDeathNotification(death_notify_send_);
      need_init = true;
    }
  }
  VmOffset result_addr = 0;
  {
    MapMutation mlk(*task.map);
    if (anywhere) {
      Result<VmOffset> found = task.map->FindSpace(size, addr);
      if (!found.ok()) {
        return found.status();
      }
      addr = found.value();
    } else {
      addr = TruncPage(addr, page_size());
      if (!task.map->RangeFree(addr, size)) {
        return KernReturn::kNoSpace;
      }
    }
    MapEntry entry;
    entry.start = addr;
    entry.end = addr + size;
    entry.object = object;
    entry.offset = offset;
    KernReturn kr = task.map->Insert(std::move(entry));
    if (!IsOk(kr)) {
      return kr;
    }
    ObjectRef(object);
    result_addr = addr;
  }
  if (need_init) {
    // pager_init is performed before the vm_allocate_with_pager call
    // completes (§4.2). Asynchronous: no reply is awaited.
    PagerInitArgs init;
    SendRight pager;
    {
      ObjectLock olk(object->mu);
      init.pager_request_port = object->request_send;
      init.pager_name_port = object->name_send;
      pager = object->pager;
    }
    init.page_size = page_size();
    if (pager.valid()) {
      MsgSend(pager, EncodePagerInit(init), std::chrono::milliseconds(1000));
    }
  }
  return result_addr;
}

KernReturn VmSystem::Deallocate(TaskVm& task, VmOffset addr, VmSize size) {
  if (size == 0) {
    return KernReturn::kInvalidArgument;
  }
  MaybeDrainDeferred();
  MapMutation mlk(*task.map);
  VmOffset start = TruncPage(addr, page_size());
  VmOffset end = RoundPage(addr + size, page_size());
  std::vector<MapEntry> removed = task.map->RemoveRange(start, end);
  if (removed.empty()) {
    return KernReturn::kSuccess;  // Deallocating nothing is permitted.
  }
  ChainLock chain(chain_mu_);
  for (MapEntry& entry : removed) {
    task.pmap->Remove(entry.start, entry.end);
    ReleaseEntry(chain, std::move(entry));
  }
  return KernReturn::kSuccess;
}

KernReturn VmSystem::Protect(TaskVm& task, VmOffset addr, VmSize size, bool set_max,
                             VmProt prot) {
  if (size == 0) {
    return KernReturn::kInvalidArgument;
  }
  MapMutation mlk(*task.map);
  VmOffset start = TruncPage(addr, page_size());
  VmOffset end = RoundPage(addr + size, page_size());
  if (!task.map->RangeFullyCovered(start, end - start)) {
    return KernReturn::kInvalidAddress;
  }
  for (MapEntry* entry : task.map->ClipRange(start, end)) {
    if (set_max) {
      entry->max_protection &= prot;
      entry->protection &= entry->max_protection;
    } else {
      if ((prot & ~entry->max_protection) != 0) {
        return KernReturn::kProtectionFailure;
      }
      entry->protection = prot;
    }
    // Hardware mappings may only be lowered here; faults re-validate
    // upward later (§5.5 hardware validation).
    task.pmap->Protect(entry->start, entry->end, entry->protection);
  }
  return KernReturn::kSuccess;
}

KernReturn VmSystem::Inherit(TaskVm& task, VmOffset addr, VmSize size, VmInherit inheritance) {
  if (size == 0) {
    return KernReturn::kInvalidArgument;
  }
  MapMutation mlk(*task.map);
  VmOffset start = TruncPage(addr, page_size());
  VmOffset end = RoundPage(addr + size, page_size());
  if (!task.map->RangeFullyCovered(start, end - start)) {
    return KernReturn::kInvalidAddress;
  }
  for (MapEntry* entry : task.map->ClipRange(start, end)) {
    entry->inheritance = inheritance;
  }
  return KernReturn::kSuccess;
}

std::vector<RegionInfo> VmSystem::Regions(TaskVm& task) {
  std::shared_lock<std::shared_mutex> mlk(task.map->lock());
  std::vector<RegionInfo> out;
  for (const MapEntry* entry : task.map->AllEntries()) {
    RegionInfo info;
    info.start = entry->start;
    info.end = entry->end;
    info.protection = entry->protection;
    info.max_protection = entry->max_protection;
    info.inheritance = entry->inheritance;
    info.is_shared = entry->is_share;
    if (!entry->is_share && entry->object != nullptr) {
      // Only the name port is exposed: the memory object and request ports
      // would grant data and management access (footnote 3).
      ObjectLock olk(entry->object->mu);
      info.object_name = entry->object->name_send;
    }
    out.push_back(std::move(info));
  }
  return out;
}

VmStatistics VmSystem::Statistics() const {
  VmStatistics st;
  st.page_size = page_size();
  st.free_count = phys_->free_frames();
  {
    std::lock_guard<std::mutex> g(queue_mu_);
    st.active_count = active_count_;
    st.inactive_count = inactive_count_;
  }
  const auto load = [](const std::atomic<uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  st.faults = load(counters_.faults);
  st.zero_fill_count = load(counters_.zero_fill_count);
  st.cow_faults = load(counters_.cow_faults);
  st.pageins = load(counters_.pageins);
  st.pageouts = load(counters_.pageouts);
  st.reactivations = load(counters_.reactivations);
  st.lookups = load(counters_.lookups);
  st.hits = load(counters_.hits);
  st.unlock_requests = load(counters_.unlock_requests);
  st.parked_pageouts = load(counters_.parked_pageouts);
  st.manager_deaths = load(counters_.manager_deaths);
  st.death_resolved_pages = load(counters_.death_resolved_pages);
  st.shadow_collapses = load(counters_.shadow_collapses);
  st.shadow_bypasses = load(counters_.shadow_bypasses);
  st.pages_migrated = load(counters_.pages_migrated);
  st.collapse_denied = load(counters_.collapse_denied);
  st.chain_depth_max = load(counters_.chain_depth_max);
  st.fast_faults = load(counters_.fast_faults);
  st.spurious_page_wakeups = load(counters_.spurious_page_wakeups);
  st.collapse_denied_scan_cap = load(counters_.collapse_denied_scan_cap);
  st.collapse_denied_external = load(counters_.collapse_denied_external);
  st.activations_skipped = load(counters_.activations_skipped);
  st.fault_lock_ops = load(counters_.fault_lock_ops);
  st.map_lookups_optimistic = load(counters_.map_lookups_optimistic);
  st.map_lookup_retries = load(counters_.map_lookup_retries);
  st.queue_batch_flushes = load(counters_.queue_batch_flushes);
  st.pageout_runs = load(counters_.pageout_runs);
  st.pageout_run_pages = load(counters_.pageout_run_pages);
  st.fault_ahead_requests = load(counters_.fault_ahead_requests);
  st.fault_ahead_pages = load(counters_.fault_ahead_pages);
  st.fault_ahead_unused = load(counters_.fault_ahead_unused);
  return st;
}

// --- fork (inheritance, §3.3) ----------------------------------------------

void VmSystem::ForkMap(TaskVm& parent, TaskVm& child) {
  MaybeDrainDeferred();
  // Parent before child (the documented map order). The child map is fresh
  // and unpublished, but holding its lock keeps the discipline uniform.
  MapMutation plk(*parent.map);
  MapMutation clk(*child.map);
  // Snapshot entry ranges first: share conversion mutates entries in place
  // but not the map's structure.
  std::vector<VmOffset> starts;
  for (const MapEntry* e : parent.map->AllEntries()) {
    starts.push_back(e->start);
  }
  for (VmOffset start : starts) {
    MapEntry* entry = parent.map->Lookup(start);
    if (entry == nullptr) {
      continue;
    }
    switch (entry->inheritance) {
      case VmInherit::kNone:
        break;
      case VmInherit::kShare: {
        if (!entry->is_share) {
          // Convert the direct entry into a two-level (sharing map) entry
          // (§5.1). The object moves into the sharing map. The new sharing
          // map is unpublished until the entry assignment below, all under
          // the parent's exclusive lock.
          if (entry->object == nullptr) {
            entry->object = CreateInternalObject(entry->size());
            ObjectRef(entry->object);
          }
          auto share = std::make_shared<AddressMap>(0, entry->size(), page_size());
          MapEntry sub;
          sub.start = 0;
          sub.end = entry->size();
          sub.object = std::move(entry->object);
          sub.offset = entry->offset;
          sub.protection = kVmProtAll;  // Per-task attributes stay on top.
          sub.max_protection = kVmProtAll;
          sub.needs_copy = entry->needs_copy;
          share->Insert(std::move(sub));
          entry->object = nullptr;
          entry->is_share = true;
          entry->share_map = std::move(share);
          entry->offset = 0;
          entry->needs_copy = false;
        }
        MapEntry child_entry = *entry;  // Shares the sharing map.
        child.map->Insert(std::move(child_entry));
        break;
      }
      case VmInherit::kCopy: {
        if (entry->is_share) {
          // Copy each object referenced through the sharing map. Exclusive
          // on the sharing map: concurrent faults from other tasks sharing
          // it must observe needs_copy and the write-protect atomically.
          std::unique_lock<std::shared_mutex> slk(entry->share_map->lock());
          VmOffset window_lo = entry->offset;
          VmOffset window_hi = entry->offset + entry->size();
          for (MapEntry* sub : entry->share_map->ClipRange(window_lo, window_hi)) {
            MapEntry child_entry;
            child_entry.start = entry->start + (sub->start - entry->offset);
            child_entry.end = child_entry.start + sub->size();
            child_entry.protection = entry->protection;
            child_entry.max_protection = entry->max_protection;
            child_entry.inheritance = entry->inheritance;
            if (sub->object != nullptr) {
              child_entry.object = sub->object;
              child_entry.offset = sub->offset;
              child_entry.needs_copy = true;
              ObjectRef(sub->object);
              sub->needs_copy = true;
              WriteProtectResident(sub->object.get(), sub->offset, sub->size());
            }
            child.map->Insert(std::move(child_entry));
          }
        } else if (entry->object == nullptr) {
          // Untouched zero-fill region: the child simply gets its own.
          MapEntry child_entry = *entry;
          child.map->Insert(std::move(child_entry));
        } else {
          // Symmetric copy-on-write (§5.5): both sides shadow on write.
          entry->needs_copy = true;
          WriteProtectResident(entry->object.get(),
                               entry->offset, entry->size());
          MapEntry child_entry = *entry;
          ObjectRef(child_entry.object);
          child.map->Insert(std::move(child_entry));
        }
        break;
      }
    }
  }
}

// --- out-of-line transfer (vm_map_copyin / copyout) --------------------------

Result<std::shared_ptr<VmMapCopy>> VmSystem::CopyIn(TaskVm& task, VmOffset addr, VmSize size) {
  if (size == 0 || addr % page_size() != 0 || size % page_size() != 0) {
    return KernReturn::kInvalidArgument;
  }
  MaybeDrainDeferred();
  MapMutation mlk(*task.map);
  if (!task.map->RangeFullyCovered(addr, size)) {
    return KernReturn::kInvalidAddress;
  }
  auto copy = std::make_shared<VmMapCopy>(this, size);
  const VmOffset end = addr + size;
  for (MapEntry* top : task.map->ClipRange(addr, end)) {
    if (top->is_share) {
      // Exclusive on the sharing map for the needs_copy + write-protect
      // mutation, as in ForkMap.
      std::unique_lock<std::shared_mutex> slk(top->share_map->lock());
      VmOffset lo = top->offset;
      VmOffset hi = top->offset + top->size();
      for (MapEntry* sub : top->share_map->ClipRange(lo, hi)) {
        VmMapCopy::Segment seg;
        seg.size = sub->size();
        if (sub->object != nullptr) {
          seg.object = sub->object;
          seg.offset = sub->offset;
          ObjectRef(sub->object);
          sub->needs_copy = true;
          WriteProtectResident(sub->object.get(), sub->offset, sub->size());
        }
        copy->segments().push_back(std::move(seg));
      }
    } else {
      VmMapCopy::Segment seg;
      seg.size = top->size();
      if (top->object != nullptr) {
        seg.object = top->object;
        seg.offset = top->offset;
        ObjectRef(top->object);
        top->needs_copy = true;
        WriteProtectResident(top->object.get(), top->offset, top->size());
      }
      copy->segments().push_back(std::move(seg));
    }
  }
  return copy;
}

Result<VmOffset> VmSystem::CopyOut(TaskVm& task, const std::shared_ptr<VmMapCopy>& copy) {
  if (copy == nullptr || copy->system() != this) {
    return KernReturn::kInvalidArgument;
  }
  MaybeDrainDeferred();
  MapMutation mlk(*task.map);
  if (copy->segments().empty() && copy->size() != 0) {
    return KernReturn::kInvalidArgument;  // Already consumed.
  }
  Result<VmOffset> found = task.map->FindSpace(copy->size());
  if (!found.ok()) {
    return found.status();
  }
  VmOffset addr = found.value();
  VmOffset cursor = addr;
  for (VmMapCopy::Segment& seg : copy->segments()) {
    MapEntry entry;
    entry.start = cursor;
    entry.end = cursor + seg.size;
    if (seg.object != nullptr) {
      entry.object = std::move(seg.object);  // Transfers the reference.
      entry.offset = seg.offset;
      entry.needs_copy = true;
    }
    cursor += seg.size;
    task.map->Insert(std::move(entry));
  }
  copy->segments().clear();  // Consumed.
  return addr;
}

VmMapCopy::~VmMapCopy() {
  if (segments_.empty()) {
    return;
  }
  // Defer the reference drops: this destructor can run inside port teardown
  // paths that must not take VM locks.
  std::lock_guard<std::mutex> g(system_->deferred_mu_);
  for (Segment& seg : segments_) {
    if (seg.object != nullptr) {
      system_->deferred_releases_.push_back(std::move(seg.object));
    }
  }
  segments_.clear();
  if (!system_->deferred_releases_.empty()) {
    system_->deferred_pending_.store(true, std::memory_order_release);
  }
}

}  // namespace mach
