#include "src/vm/address_map.h"

#include <algorithm>
#include <cassert>

#include "src/vm/vm_object.h"

namespace mach {

const MapSnapshotEntry* MapSnapshot::Lookup(VmOffset addr) const {
  auto it = std::upper_bound(
      entries.begin(), entries.end(), addr,
      [](VmOffset a, const MapSnapshotEntry& e) { return a < e.start; });
  if (it == entries.begin()) {
    return nullptr;
  }
  --it;
  return (addr >= it->start && addr < it->end) ? &*it : nullptr;
}

AddressMap::~AddressMap() {
  // No readers can be live here — a SnapshotRef is only ever taken by a
  // fault against a map its task still owns.
  delete snapshot_.load(std::memory_order_acquire);
  for (const MapSnapshot* s : retired_) {
    delete s;
  }
}

void AddressMap::PublishSnapshot() {
  const uint64_t gen = gen_.load(std::memory_order_acquire);
  assert((gen & 1) == 0);  // Mutation holds the lock exclusively.
  auto* snap = new MapSnapshot;
  snap->gen = gen;
  snap->entries.reserve(entries_.size());
  for (const auto& [start, e] : entries_) {
    (void)start;
    MapSnapshotEntry se;
    se.start = e.start;
    se.end = e.end;
    se.offset = e.offset;
    se.protection = e.protection;
    se.needs_copy = e.needs_copy;
    se.is_share = e.is_share;
    se.object = e.object;
    snap->entries.push_back(std::move(se));
  }
  // seq_cst exchange: totally ordered against every reader's pin
  // (SnapshotRef's fetch_add + load). published_gen_ follows the pointer so
  // snapshot_current() never claims currency for a not-yet-visible snapshot.
  const MapSnapshot* old = snapshot_.exchange(snap, std::memory_order_seq_cst);
  published_gen_.store(gen, std::memory_order_release);

  // Retire the displaced snapshot and reclaim whenever no reader is pinned.
  // If the count is zero *after* the exchange, any reader pinning later sits
  // after both operations in the seq_cst total order and must load the new
  // pointer — nothing can still reference the retired ones. If a reader is
  // pinned, the retired list just grows by one; it drains on the next
  // quiescent publish or in the destructor, so growth is bounded by the
  // (brief) reader critical sections, not by churn.
  std::lock_guard<std::mutex> g(retired_mu_);
  if (old != nullptr) {
    retired_.push_back(old);
  }
  if (snap_readers_.load(std::memory_order_seq_cst) == 0) {
    for (const MapSnapshot* s : retired_) {
      delete s;
    }
    retired_.clear();
  }
}

MapEntry* AddressMap::Lookup(VmOffset addr) {
  auto it = entries_.upper_bound(addr);
  if (it == entries_.begin()) {
    return nullptr;
  }
  --it;
  MapEntry& e = it->second;
  return (addr >= e.start && addr < e.end) ? &e : nullptr;
}

const MapEntry* AddressMap::Lookup(VmOffset addr) const {
  return const_cast<AddressMap*>(this)->Lookup(addr);
}

Result<VmOffset> AddressMap::FindSpace(VmSize size, VmOffset hint) const {
  if (size == 0) {
    return KernReturn::kInvalidArgument;
  }
  VmOffset candidate = RoundPage(std::max(hint, min_), page_size_);
  for (auto it = entries_.lower_bound(candidate + 1);; ++it) {
    // Candidate may collide with the entry *before* the iterator.
    if (it != entries_.begin()) {
      auto prev = std::prev(it);
      if (prev->second.end > candidate) {
        candidate = RoundPage(prev->second.end, page_size_);
      }
    }
    VmOffset limit = (it == entries_.end()) ? max_ : it->second.start;
    if (candidate + size <= limit) {
      return candidate;
    }
    if (it == entries_.end()) {
      return KernReturn::kNoSpace;
    }
    candidate = RoundPage(it->second.end, page_size_);
  }
}

bool AddressMap::RangeFree(VmOffset start, VmSize size) const {
  if (start < min_ || start + size > max_ || size == 0) {
    return false;
  }
  auto it = entries_.lower_bound(start);
  if (it != entries_.begin()) {
    if (std::prev(it)->second.end > start) {
      return false;
    }
  }
  return it == entries_.end() || it->second.start >= start + size;
}

bool AddressMap::RangeFullyCovered(VmOffset start, VmSize size) const {
  VmOffset cursor = start;
  const VmOffset end = start + size;
  while (cursor < end) {
    const MapEntry* e = Lookup(cursor);
    if (e == nullptr) {
      return false;
    }
    cursor = e->end;
  }
  return true;
}

KernReturn AddressMap::Insert(MapEntry entry) {
  if (!RangeFree(entry.start, entry.size())) {
    return KernReturn::kNoSpace;
  }
  VmOffset start = entry.start;
  entries_.emplace(start, std::move(entry));
  return KernReturn::kSuccess;
}

void AddressMap::ClipAt(VmOffset addr) {
  MapEntry* e = Lookup(addr);
  if (e == nullptr || e->start == addr) {
    return;
  }
  // Split [start, end) into [start, addr) + [addr, end).
  MapEntry tail = *e;  // copies shared_ptr references
  tail.start = addr;
  tail.offset = e->offset + (addr - e->start);
  e->end = addr;
  if (tail.object != nullptr) {
    // Each map entry holds one object reference: splitting adds one.
    ++tail.object->map_refs;
  }
  entries_.emplace(addr, std::move(tail));
}

std::vector<MapEntry*> AddressMap::ClipRange(VmOffset start, VmOffset end) {
  ClipAt(start);
  ClipAt(end);
  return EntriesIn(start, end);
}

std::vector<MapEntry*> AddressMap::EntriesIn(VmOffset start, VmOffset end) {
  std::vector<MapEntry*> out;
  auto it = entries_.lower_bound(start);
  if (it != entries_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end > start) {
      out.push_back(&prev->second);
    }
  }
  for (; it != entries_.end() && it->second.start < end; ++it) {
    out.push_back(&it->second);
  }
  return out;
}

std::vector<MapEntry> AddressMap::RemoveRange(VmOffset start, VmOffset end) {
  ClipAt(start);
  ClipAt(end);
  std::vector<MapEntry> removed;
  auto it = entries_.lower_bound(start);
  while (it != entries_.end() && it->second.start < end) {
    assert(it->second.end <= end);
    removed.push_back(std::move(it->second));
    it = entries_.erase(it);
  }
  return removed;
}

std::vector<const MapEntry*> AddressMap::AllEntries() const {
  std::vector<const MapEntry*> out;
  out.reserve(entries_.size());
  for (const auto& [start, entry] : entries_) {
    out.push_back(&entry);
  }
  return out;
}

}  // namespace mach
