// Resident page structures (§5.3) and pageout queues (§5.4).
//
// Each VmPage corresponds to a page of physical memory holding cached data
// for some (memory object, offset). Pages live on:
//   * their object's page list        (object_link)
//   * one of the pageout queues       (queue_link): active / inactive
// and are findable through the virtual-to-physical hash table (§5.3),
// keyed by (object, offset).
//
// Locking: a page's state fields (busy/absent/error/..., page_lock, dirty,
// identity and pin_count) are protected by the *owning VmObject's* lock; the
// queue membership fields (queue_link, and the identity fields while a
// PageRename is in flight) are additionally protected by the VmSystem page-
// queue lock. The `queue` tag itself is atomic: it is only *written* under
// the queue lock, but may be *read* without it, so PageActivate can skip the
// lock entirely for a page already on the active queue (the overwhelmingly
// common case on the fault path). A stale read is benign — the slow path
// re-checks under the lock, and a page that deactivates concurrently is
// rescued later by its hardware reference bit (second chance). Frame
// contents and hardware bits live in hw::PhysicalMemory under per-frame
// locks. See the lock-order comment in vm_system.h.

#ifndef SRC_VM_VM_PAGE_H_
#define SRC_VM_VM_PAGE_H_

#include <atomic>
#include <cstdint>

#include "src/base/intrusive_list.h"
#include "src/base/vm_types.h"

namespace mach {

class VmObject;

struct VmPage {
  // Identity: which object/offset this physical page caches.
  VmObject* object = nullptr;
  VmOffset offset = 0;

  // The physical frame backing this page.
  uint32_t frame = UINT32_MAX;

  // Page state (§5.3 and Mach's vm_page):
  bool busy = false;    // In transit (pagein/pageout); waiters block on the
                        // owning object's condition variable. Only the
                        // thread that set busy may clear or free the page.
  bool absent = false;  // Data has been requested but has not arrived.
  bool error = false;   // The data manager reported failure for this page.
  bool unavailable = false;  // pager_data_unavailable arrived: the faulting
                             // thread must zero-fill or copy from the shadow
                             // (footnote 6 of the paper).
  bool dirty = false;   // Modified since last cleaned (kernel's view; the
                        // hardware modify bit is OR'd in when sampled).
  bool unlock_pending = false;  // A pager_data_unlock has been sent and not
                                // yet answered.

  bool readahead = false;  // Allocated speculatively by fault-ahead and not
                           // yet demanded by any faulting thread. Cleared
                           // (under the owning object's lock) at first
                           // touch; a page freed with the flag still set is
                           // counted as fault_ahead_unused.

  // Access *prohibited* by the data manager (pager_data_lock /
  // the lock_value of pager_data_provided). kVmProtNone = unrestricted.
  VmProt page_lock = kVmProtNone;

  // Short-term reference count taken by a fault while it installs the frame
  // into a pmap after dropping the object lock (distinct from `busy`, which
  // marks a page whose *data* is in transit). A pinned page may not be
  // freed, renamed by collapse, or selected by pageout; if the object dies
  // while pins are outstanding the page is orphaned and the last unpinner
  // frees it.
  uint16_t pin_count = 0;

  // Written only under the queue lock; readable lock-free (see the header
  // comment on the activation fast-out).
  enum class Queue : uint8_t { kNone, kActive, kInactive };
  std::atomic<Queue> queue{Queue::kNone};

  IntrusiveListNode object_link;  // VmObject::pages
  IntrusiveListNode queue_link;   // VmSystem active/inactive queue
};

using PageQueue = IntrusiveList<VmPage, &VmPage::queue_link>;
using ObjectPageList = IntrusiveList<VmPage, &VmPage::object_link>;

// vm_statistics (Table 3-3): systemwide VM event counters.
struct VmStatistics {
  VmSize page_size = 0;
  uint64_t free_count = 0;
  uint64_t active_count = 0;
  uint64_t inactive_count = 0;
  uint64_t faults = 0;          // Total map faults handled.
  uint64_t zero_fill_count = 0; // Pages zero-filled on demand.
  uint64_t cow_faults = 0;      // Copy-on-write page copies.
  uint64_t pageins = 0;         // pager_data_provided pages accepted.
  uint64_t pageouts = 0;        // pager_data_write pages sent.
  uint64_t reactivations = 0;   // Inactive pages saved by their ref bit.
  uint64_t lookups = 0;         // Object/offset hash probes.
  uint64_t hits = 0;            // Probes that found a resident page.
  uint64_t unlock_requests = 0; // pager_data_unlock calls issued.
  uint64_t parked_pageouts = 0; // Dirty pages diverted to the default pager
                                // because their manager was unresponsive
                                // (§6.2.2 protection path).
  uint64_t manager_deaths = 0;  // Memory-object port deaths recovered via
                                // the death-notification fast path (§6.2.1).
  uint64_t death_resolved_pages = 0;  // In-flight placeholder pages resolved
                                      // (zero-filled or errored) on death.
  uint64_t shadow_collapses = 0;  // Intermediate shadow objects spliced out
                                  // of a chain (Mach's vm_object_collapse).
  uint64_t shadow_bypasses = 0;   // Whole chains released because the top
                                  // object fully covers its window.
  uint64_t pages_migrated = 0;    // Pages re-homed into the survivor during
                                  // a collapse.
  uint64_t collapse_denied = 0;   // Collapse opportunities declined (busy
                                  // pages, uncovered pager-held data, or
                                  // injected suppression).
  uint64_t chain_depth_max = 0;   // Deepest shadow chain any fault walked.
  uint64_t fast_faults = 0;       // ResolvePage top-object fast-path hits.
  uint64_t spurious_page_wakeups = 0;  // Page-wait wakeups that found the
                                       // awaited page still in transit.
  uint64_t collapse_denied_scan_cap = 0;  // Collapse bypasses declined only
                                          // because the coverage metadata
                                          // exceeded Config::collapse_scan_cap
                                          // (also counted in collapse_denied).
  uint64_t collapse_denied_external = 0;  // Splices declined because the
                                          // shadow is an external manager's
                                          // object (never collapsed: its
                                          // holdings can't be enumerated).
  uint64_t activations_skipped = 0;   // PageActivate calls satisfied by the
                                      // lock-free queue-tag check (the page
                                      // was already active; no queue lock).
  uint64_t fault_lock_ops = 0;        // VM-tier (1-5) lock acquisitions made
                                      // inside Fault(), via the per-thread
                                      // probe; / faults = locks per fault.
  uint64_t map_lookups_optimistic = 0;  // Faults resolved end to end through
                                        // the lock-free (seqlock) map
                                        // lookup: no map lock taken at all.
  uint64_t map_lookup_retries = 0;    // Optimistic lookups abandoned because
                                      // the map generation moved (stale
                                      // snapshot, or an EnterIf rejection);
                                      // page-level misses and entries the
                                      // fast path refuses on principle
                                      // (sharing maps, pending COW) are not
                                      // counted — only genuine races are.
  uint64_t queue_batch_flushes = 0;   // Deferred page-queue batches applied;
                                      // each flush is one queue_mu_
                                      // acquisition covering up to
                                      // QueueBatch::kCapacity activations.
  uint64_t pageout_runs = 0;          // pager_data_write messages sent by the
                                      // pageout/flush/clean paths; each
                                      // message carries one contiguous run
                                      // (always 1 page with clustering off).
  uint64_t pageout_run_pages = 0;     // Pages carried by those messages;
                                      // / pageout_runs = mean pages per run.
  uint64_t fault_ahead_requests = 0;  // pager_data_request messages whose
                                      // length covered more than one page
                                      // (a fault-ahead run).
  uint64_t fault_ahead_pages = 0;     // Extra (speculative) pages those runs
                                      // requested beyond the faulting page.
  uint64_t fault_ahead_unused = 0;    // Readahead pages reclaimed before any
                                      // thread touched them — wasted
                                      // speculation (includes placeholders
                                      // the manager never answered).
};

}  // namespace mach

#endif  // SRC_VM_VM_PAGE_H_
