#include "src/vm/vm_object.h"

#include <atomic>
#include <cassert>

namespace mach {

uint64_t VmObject::NextId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

VmObject::~VmObject() {
  // All resident pages must have been released by TerminateObject (or the
  // object never had any).
  assert(pages.empty());
}

}  // namespace mach
