// VmSystem: the machine-independent virtual memory system of one kernel
// (§5). It owns:
//
//   * the resident page pool: the virtual-to-physical hash table (§5.3) and
//     the active/inactive pageout queues (§5.4), over hw::PhysicalMemory;
//   * the memory object registry: pager port -> VmObject, including the
//     cache of persisting objects (pager_cache, §3.4.1);
//   * the fault handler (§5.5): validity/protection, page lookup,
//     copy-on-write with shadow objects, hardware validation via Pmap;
//   * the pageout daemon and the inline reclaim path, including the §6.2.2
//     protection against errant data managers (parking dirty pages with the
//     trusted default pager) and the §6.2.3 reserved pool;
//   * the kernel ends of the external memory management interface:
//     requests are *sent* to memory object ports, and manager calls arriving
//     on pager request ports are dispatched to the Handle* methods by the
//     kernel's pager service thread.
//
// Concurrency: one kernel lock (mu_) serialises all VM state, in the spirit
// of the original Mach's coarse VM locking. The lock is *released* across
// every potentially blocking operation (waiting for a busy page, waiting on
// a manager, blocking message sends), so data managers — which call back
// into this kernel — can always make progress. Ports have their own locks
// and never call into the kernel (lock order: kernel > port).

#ifndef SRC_VM_VM_SYSTEM_H_
#define SRC_VM_VM_SYSTEM_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/base/hash.h"
#include "src/base/kern_return.h"
#include "src/base/sync.h"
#include "src/base/vm_types.h"
#include "src/hw/physical_memory.h"
#include "src/hw/pmap.h"
#include "src/ipc/port.h"
#include "src/pager/parking.h"
#include "src/vm/address_map.h"
#include "src/vm/vm_object.h"
#include "src/vm/vm_page.h"

namespace mach {

class FaultInjector;
class VmMapCopy;

// Per-task VM context: the task's address map plus its physical map.
struct TaskVm {
  std::shared_ptr<AddressMap> map;
  std::unique_ptr<Pmap> pmap;
};

// vm_regions output element (Table 3-3).
struct RegionInfo {
  VmOffset start = 0;
  VmOffset end = 0;
  VmProt protection = kVmProtNone;
  VmProt max_protection = kVmProtNone;
  VmInherit inheritance = VmInherit::kCopy;
  bool is_shared = false;      // Backed through a sharing map.
  SendRight object_name;       // The pager name port (may be null).
};

class VmSystem {
 public:
  struct Config {
    // Pageout targets, in frames. Zero = derive from frame count.
    uint32_t free_target = 0;
    uint32_t reserved = 0;  // §6.2.3 reserved pool floor.

    // How long a fault waits for a data manager before applying
    // `on_pager_timeout` (§6.2.1 failure options).
    Timeout pager_timeout = std::chrono::milliseconds(5000);
    enum class OnPagerTimeout { kError, kZeroFill };
    OnPagerTimeout on_pager_timeout = OnPagerTimeout::kError;

    // §6.2.2 protection: divert dirty pages of unresponsive managers to the
    // default pager. When false, pageout simply drops such pages back on
    // the active queue (the unprotected behaviour, for the ablation bench).
    bool errant_manager_protection = true;

    // Background daemon scan interval.
    std::chrono::milliseconds pageout_interval{25};

    // Shadow-chain collapse (Mach's vm_object_collapse). When an
    // intermediate shadow object's only reference is the single child
    // shadowing it, the child absorbs its pages and splices it out of the
    // chain. Off = chains grow without bound (the pre-collapse behaviour,
    // kept for the ablation bench).
    bool shadow_collapse = true;

    // Optional fault injection: the kFaultCollapse point randomly
    // suppresses collapse opportunities so chaos soaks cover both collapsed
    // and uncollapsed chains. Not owned.
    FaultInjector* fault_injector = nullptr;
  };

  // FaultInjector point name: when it fires, one collapse opportunity is
  // declined (counted in VmStatistics::collapse_denied).
  static constexpr const char* kFaultCollapse = "vm.collapse";

  explicit VmSystem(PhysicalMemory* phys) : VmSystem(phys, Config{}) {}
  VmSystem(PhysicalMemory* phys, Config config);
  ~VmSystem();

  VmSystem(const VmSystem&) = delete;
  VmSystem& operator=(const VmSystem&) = delete;

  VmSize page_size() const { return phys_->page_size(); }
  PhysicalMemory* phys() const { return phys_; }

  // --- wiring ----------------------------------------------------------

  // The default pager: `service_port` receives pager_create calls;
  // `parking` is the trusted §6.2.2 side-store. Must be set before internal
  // objects can be paged out.
  void SetDefaultPager(SendRight service_port, TrustedParkingStore* parking);

  // The port set the kernel's pager service thread receives on; every pager
  // request port is enabled here at object creation.
  const std::shared_ptr<PortSet>& pager_request_set() const { return pager_requests_; }

  // Creates a fresh task VM context (map + pmap).
  TaskVm CreateTaskVm();

  void StartPageoutDaemon();
  void StopPageoutDaemon();

  // --- Table 3-3: virtual memory operations -----------------------------

  // vm_allocate: zero-filled-on-demand memory, at `addr` or anywhere.
  Result<VmOffset> Allocate(TaskVm& task, VmOffset addr, VmSize size, bool anywhere);

  // vm_allocate_with_pager (Table 3-4): maps `memory_object` at `offset`.
  Result<VmOffset> AllocateWithPager(TaskVm& task, VmOffset addr, VmSize size, bool anywhere,
                                     SendRight memory_object, VmOffset offset);

  // vm_deallocate.
  KernReturn Deallocate(TaskVm& task, VmOffset addr, VmSize size);

  // vm_protect.
  KernReturn Protect(TaskVm& task, VmOffset addr, VmSize size, bool set_max, VmProt prot);

  // vm_inherit.
  KernReturn Inherit(TaskVm& task, VmOffset addr, VmSize size, VmInherit inheritance);

  // vm_read / vm_write: kernel-mediated access to a task's memory (faults
  // pages in as needed, honours entry protections like user access).
  KernReturn ReadMemory(TaskVm& task, VmOffset addr, void* buf, VmSize len);
  KernReturn WriteMemory(TaskVm& task, VmOffset addr, const void* buf, VmSize len);

  // vm_copy: copies [src, src+size) over [dst, dst+size) (copy-on-write).
  KernReturn Copy(TaskVm& task, VmOffset src, VmSize size, VmOffset dst);

  // vm_regions.
  std::vector<RegionInfo> Regions(TaskVm& task);

  // vm_statistics.
  VmStatistics Statistics() const;

  // --- user access & faults ---------------------------------------------

  // Simulated user load/store: pmap fast path, kernel fault on miss.
  // May span pages and entries.
  KernReturn UserAccess(TaskVm& task, VmOffset addr, void* buf, VmSize len, bool is_write);

  // The page fault handler (§5.5). `access` is the attempted access.
  KernReturn Fault(TaskVm& task, VmOffset addr, VmProt access);

  // --- inheritance / fork -------------------------------------------------

  // Populates `child` from `parent` per per-entry inheritance attributes
  // (share / copy / none, §3.3).
  void ForkMap(TaskVm& parent, TaskVm& child);

  // --- out-of-line message transfer (the duality §1) ----------------------

  // vm_map_copyin: captures [addr, addr+size) (page aligned) as a
  // copy-on-write map copy for transfer in a message.
  Result<std::shared_ptr<VmMapCopy>> CopyIn(TaskVm& task, VmOffset addr, VmSize size);

  // vm_map_copyout: maps a copy into `task` anywhere; returns the address.
  Result<VmOffset> CopyOut(TaskVm& task, const std::shared_ptr<VmMapCopy>& copy);

  // Flattens a map copy to bytes (used by cross-host transports).
  Result<std::vector<std::byte>> CopyAsBytes(const std::shared_ptr<VmMapCopy>& copy);

  // Rebuilds a map copy in *this* kernel from flat bytes (the receiving end
  // of a cross-host out-of-line transfer): a fresh internal object holding
  // the data. `size` is rounded up to whole pages.
  Result<std::shared_ptr<VmMapCopy>> CopyFromBytes(const void* data, VmSize size);

  // --- manager -> kernel calls (Table 3-6) --------------------------------
  // Dispatched by the kernel's pager service thread; `request_port_id`
  // identifies the object. Also callable directly in tests.

  void HandlePagerMessage(uint64_t request_port_id, Message&& msg);

  // --- object cache maintenance -------------------------------------------

  // Drops cached (pager_cache'd) objects that have no resident pages.
  void TrimObjectCache();

  // Number of live memory objects known to this kernel (tests).
  size_t object_count() const;

  // Looks up the VmObject for a pager port (tests / kernel internals).
  std::shared_ptr<VmObject> ObjectForPager(const SendRight& pager) const;

  // Length of the shadow chain under the object mapped at `addr` (1 = no
  // shadow ancestors, 0 = no entry). Tests and benchmarks use this to show
  // collapse keeps chains bounded.
  size_t ShadowChainLength(TaskVm& task, VmOffset addr);

 private:
  friend class VmMapCopy;

  struct PageKey {
    const VmObject* object;
    VmOffset offset;
    bool operator==(const PageKey& o) const {
      return object == o.object && offset == o.offset;
    }
  };
  struct PageKeyHash {
    size_t operator()(const PageKey& k) const {
      // Object pointers share allocator alignment and offsets are page
      // multiples; a full-avalanche mix keeps (object, offset) keys from
      // clustering into a few buckets (see src/base/hash.h).
      return HashPointerAndU64(k.object, k.offset);
    }
  };

  using KernelLock = std::unique_lock<std::mutex>;

  // --- resident page management ---------------------------------------

  VmPage* PageLookup(VmObject* object, VmOffset offset);
  Result<VmPage*> PageAlloc(KernelLock& lock, VmObject* object, VmOffset offset);
  void PageFree(VmPage* page);
  void PageActivate(VmPage* page);
  void PageDeactivate(VmPage* page);
  void PageRemoveFromQueue(VmPage* page);
  void PageRename(VmPage* page, VmObject* new_object, VmOffset new_offset);

  // --- fault machinery --------------------------------------------------

  struct ResolvedEntry {
    MapEntry* top = nullptr;     // Entry in the task's top-level map.
    MapEntry* holder = nullptr;  // Entry that references the object
                                 // (== top, or a sharing-map entry).
    VmOffset object_offset = 0;  // Offset of the faulting page in the object.
  };
  Result<ResolvedEntry> ResolveEntry(TaskVm& task, VmOffset addr, VmProt access);

  struct PageResolution {
    VmPage* page = nullptr;
    bool from_backing = false;  // Page belongs to a shadow ancestor; map
                                // read-only (copy still pending).
  };
  Result<PageResolution> ResolvePage(KernelLock& lock, std::shared_ptr<VmObject> first_object,
                                     VmOffset first_offset, VmProt fault_type);

  // Waits for a busy page to settle; returns false on timeout.
  bool WaitForPage(KernelLock& lock);

  KernReturn RequestDataFromPager(KernelLock& lock, const std::shared_ptr<VmObject>& object,
                                  VmOffset offset, VmProt access);
  KernReturn RequestUnlockFromPager(KernelLock& lock, const std::shared_ptr<VmObject>& object,
                                    VmPage* page, VmProt access);

  // --- objects -----------------------------------------------------------

  std::shared_ptr<VmObject> CreateInternalObject(VmSize size);
  void MakeShadow(MapEntry* entry);
  void ObjectRef(const std::shared_ptr<VmObject>& object) { ++object->map_refs; }
  void ObjectRelease(KernelLock& lock, std::shared_ptr<VmObject> object);
  void TerminateObject(KernelLock& lock, const std::shared_ptr<VmObject>& object);
  void ReleaseEntry(KernelLock& lock, MapEntry&& entry);
  void WriteProtectResident(VmObject* object, VmOffset offset, VmSize size);

  // Ensures an internal object has a default-pager association
  // (pager_create). Called from the pageout path, under the kernel lock.
  bool EnsureInternalPager(KernelLock& lock, const std::shared_ptr<VmObject>& object);

  // --- shadow-chain collapse (Mach's vm_object_collapse / bypass) --------

  // Attempts to shorten `object`'s shadow chain, repeatedly:
  //  * splice: if the immediate shadow's only reference is `object`'s shadow
  //    pointer, migrate its still-needed pages into `object` and splice it
  //    out of the chain;
  //  * bypass: if `object` itself covers every offset it could fault on, drop
  //    the whole remaining chain.
  // Runs entirely under the kernel lock (no blocking operations); declines —
  // counting collapse_denied — whenever a busy page or unaccounted
  // pager-held data makes the splice unsafe.
  void TryCollapse(KernelLock& lock, const std::shared_ptr<VmObject>& object);

  // Whether `object` holds data for `offset` without consulting its shadow:
  // a resident page, a default-pager copy (paged_offsets), or a §6.2.2
  // parked copy.
  bool ObjectCoversOffset(const VmObject* object, VmOffset offset) const;

  // Whether `object` covers every page of [0, size()) by itself.
  bool FullyCoversSelf(const VmObject* object) const;

  // --- pageout ------------------------------------------------------------

  void PageoutDaemonMain();
  // Frees up to `want` frames; returns number freed. Kernel lock held.
  uint32_t Reclaim(KernelLock& lock, uint32_t want);
  // Writes one dirty page back to its manager (or parks it). Kernel lock
  // held throughout (sends are non-blocking). Returns true if the frame was
  // freed.
  bool PageoutPage(KernelLock& lock, VmPage* page);

  void DrainDeferredReleases(KernelLock& lock);

  // --- manager -> kernel handlers ----------------------------------------

  void HandleDataProvided(KernelLock& lock, const std::shared_ptr<VmObject>& object,
                          VmOffset offset, const std::vector<std::byte>& data, VmProt lock_value);
  void HandleDataUnavailable(KernelLock& lock, const std::shared_ptr<VmObject>& object,
                             VmOffset offset, VmSize size);
  void HandleDataLock(KernelLock& lock, const std::shared_ptr<VmObject>& object, VmOffset offset,
                      VmSize length, VmProt lock_value);
  void HandleFlush(KernelLock& lock, const std::shared_ptr<VmObject>& object, VmOffset offset,
                   VmSize length);
  void HandleClean(KernelLock& lock, const std::shared_ptr<VmObject>& object, VmOffset offset,
                   VmSize length);
  void HandleCache(KernelLock& lock, const std::shared_ptr<VmObject>& object, bool may_cache);

  // Death-notification fast path (§6.2.1): the memory-object port of a
  // manager died. Resolves every in-flight placeholder page under the
  // configured on_pager_timeout policy (zero fill or error) and wakes the
  // faulting threads immediately instead of letting them burn the timeout.
  // Takes the object by value: the caller's reference typically aliases the
  // objects_by_pager_ entry this function erases.
  void HandlePagerDeath(KernelLock& lock, std::shared_ptr<VmObject> object);

  // ------------------------------------------------------------------------

  PhysicalMemory* const phys_;
  Config config_;
  uint32_t free_target_;
  uint32_t reserved_;

  mutable std::mutex mu_;  // The kernel lock.
  std::condition_variable page_cv_;  // Busy-page / lock-change waits.
  std::condition_variable free_cv_;  // Free-frame waits.
  std::condition_variable pageout_wake_;

  std::unordered_map<PageKey, VmPage*, PageKeyHash> page_hash_;
  PageQueue active_queue_;
  PageQueue inactive_queue_;
  uint32_t active_count_ = 0;
  uint32_t inactive_count_ = 0;

  // Object registries: by memory-object (pager) port id and by request
  // port id.
  std::unordered_map<uint64_t, std::shared_ptr<VmObject>> objects_by_pager_;
  std::unordered_map<uint64_t, std::shared_ptr<VmObject>> objects_by_request_;

  std::shared_ptr<PortSet> pager_requests_ = PortSet::Create();

  // Every memory-object port is watched for death at association time
  // (vm_allocate_with_pager / pager_create); the notification lands here,
  // inside pager_requests_, so the pager service thread dispatches it like
  // any other manager->kernel message.
  ReceiveRight death_notify_receive_;
  SendRight death_notify_send_;

  SendRight default_pager_service_;
  TrustedParkingStore* parking_ = nullptr;

  VmStatistics stats_{};

  std::thread pageout_thread_;
  bool pageout_running_ = false;
  bool shutting_down_ = false;

  // Object references dropped by VmMapCopy destructors (possibly on threads
  // that must not take the kernel lock); drained opportunistically.
  std::mutex deferred_mu_;
  std::vector<std::shared_ptr<VmObject>> deferred_releases_;
};

// An out-of-line memory region captured from an address map (Mach's
// vm_map_copy). Holds copy-on-write references to the source objects; a
// CopyOut consumes it into a destination map.
class VmMapCopy {
 public:
  struct Segment {
    std::shared_ptr<VmObject> object;  // Null = zero-filled region.
    VmOffset offset = 0;
    VmSize size = 0;
  };

  VmMapCopy(VmSystem* system, VmSize size) : system_(system), size_(size) {}
  ~VmMapCopy();

  VmMapCopy(const VmMapCopy&) = delete;
  VmMapCopy& operator=(const VmMapCopy&) = delete;

  VmSize size() const { return size_; }
  std::vector<Segment>& segments() { return segments_; }
  const std::vector<Segment>& segments() const { return segments_; }
  VmSystem* system() const { return system_; }

 private:
  VmSystem* system_;
  VmSize size_;
  std::vector<Segment> segments_;
};

}  // namespace mach

#endif  // SRC_VM_VM_SYSTEM_H_
