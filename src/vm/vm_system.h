// VmSystem: the machine-independent virtual memory system of one kernel
// (§5). It owns:
//
//   * the resident page pool: the virtual-to-physical hash table (§5.3) and
//     the active/inactive pageout queues (§5.4), over hw::PhysicalMemory;
//   * the memory object registry: pager port -> VmObject, including the
//     cache of persisting objects (pager_cache, §3.4.1);
//   * the fault handler (§5.5): validity/protection, page lookup,
//     copy-on-write with shadow objects, hardware validation via Pmap;
//   * the pageout daemon and the inline reclaim path, including the §6.2.2
//     protection against errant data managers (parking dirty pages with the
//     trusted default pager) and the §6.2.3 reserved pool;
//   * the kernel ends of the external memory management interface:
//     requests are *sent* to memory object ports, and manager calls arriving
//     on pager request ports are dispatched to the Handle* methods by the
//     kernel's pager service thread.
//
// Concurrency: VM state is guarded by a lock hierarchy so concurrent faults
// on a multiprocessor contend only where they genuinely share state. From
// outermost to innermost:
//
//   1. AddressMap locks (reader-writer): shared on the fault path, exclusive
//      for structural mutation. A top-level map lock may be held while
//      taking a sharing map's lock; ForkMap orders parent before child.
//      Above the lock sits an optimistic tier: each map publishes an
//      immutable snapshot guarded by a seqlock-style generation counter, so
//      the resident-fault fast path resolves its entry with no map lock at
//      all and validates the generation inside the pmap lock at install
//      time (see address_map.h for the protocol; gated by
//      Config::optimistic_map_lookup).
//   2. chain_mu_: shadow-chain structure (shadow pointers, shadow_children),
//      object lifecycle (terminate / cache / registries) and map_refs
//      decrements. Witness type: ChainLock.
//   3. VmObject::mu (per object): the object's page list, page state, pager
//      ports and paged/parked metadata. Chain order is child before its
//      shadow parent (the fault walk direction), hand over hand.
//   4. Page-hash shard locks (64 shards keyed by the splitmix64 PageKey
//      hash): pure membership; always leaf with respect to object locks.
//   5. queue_mu_: the active/inactive queues, queue counts, each page's
//      queue field, and page identity while a PageRename is in flight.
//      Nests inside object locks; the pageout scan, which needs the reverse
//      direction, only ever try_locks an object from under it. The queue
//      tag itself is an atomic written only under this lock, so
//      PageActivate / PageDeactivate skip the lock entirely when the tag
//      already matches (see vm_page.h).
//   6. Pmap::mu_ and PhysicalMemory frame/free-list locks (hardware tier).
//   7. Port locks (independent; ports never call back into the kernel).
//
// Blocking operations never hold a lock they could convoy on: waits for busy
// pages use the owning object's condition variable (targeted wakeups, §5
// busy/wanted protocol), message sends to managers release the object lock
// (non-blocking kPoll sends excepted), and a fault installs its frame into
// the pmap under the map lock only, holding a pin on the page rather than
// the object lock.

#ifndef SRC_VM_VM_SYSTEM_H_
#define SRC_VM_VM_SYSTEM_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/base/hash.h"
#include "src/base/kern_return.h"
#include "src/base/sync.h"
#include "src/base/vm_types.h"
#include "src/hw/physical_memory.h"
#include "src/hw/pmap.h"
#include "src/ipc/port.h"
#include "src/pager/parking.h"
#include "src/vm/address_map.h"
#include "src/vm/vm_object.h"
#include "src/vm/vm_page.h"

namespace mach {

class FaultInjector;
class VmMapCopy;

// Per-task VM context: the task's address map plus its physical map.
struct TaskVm {
  std::shared_ptr<AddressMap> map;
  std::unique_ptr<Pmap> pmap;
};

// vm_regions output element (Table 3-3).
struct RegionInfo {
  VmOffset start = 0;
  VmOffset end = 0;
  VmProt protection = kVmProtNone;
  VmProt max_protection = kVmProtNone;
  VmInherit inheritance = VmInherit::kCopy;
  bool is_shared = false;      // Backed through a sharing map.
  SendRight object_name;       // The pager name port (may be null).
};

class VmSystem {
 public:
  struct Config {
    // Pageout targets, in frames. Zero = derive from frame count.
    uint32_t free_target = 0;
    uint32_t reserved = 0;  // §6.2.3 reserved pool floor.

    // How long a fault waits for a data manager before applying
    // `on_pager_timeout` (§6.2.1 failure options).
    Timeout pager_timeout = std::chrono::milliseconds(5000);
    enum class OnPagerTimeout { kError, kZeroFill };
    OnPagerTimeout on_pager_timeout = OnPagerTimeout::kError;

    // §6.2.2 protection: divert dirty pages of unresponsive managers to the
    // default pager. When false, pageout simply drops such pages back on
    // the active queue (the unprotected behaviour, for the ablation bench).
    bool errant_manager_protection = true;

    // Background daemon scan interval.
    std::chrono::milliseconds pageout_interval{25};

    // Shadow-chain collapse (Mach's vm_object_collapse). When an
    // intermediate shadow object's only reference is the single child
    // shadowing it, the child absorbs its pages and splices it out of the
    // chain. Off = chains grow without bound (the pre-collapse behaviour,
    // kept for the ablation bench).
    bool shadow_collapse = true;

    // Upper bound on the number of coverage-metadata entries (resident
    // pages + paged_offsets + parked_offsets) a chain-bypass check will
    // examine. Bypasses declined by the cap are counted in both
    // collapse_denied and collapse_denied_scan_cap.
    size_t collapse_scan_cap = 1u << 20;

    // Lock-free (seqlock snapshot) address-map lookup on the fault path.
    // Off = every fault resolves its entry under the map's shared lock (the
    // lock-hierarchy-only behaviour, kept for the ablation bench). The
    // queue-tag fast-out and batched queue operations are unconditional;
    // only the map tier is gated.
    bool optimistic_map_lookup = true;

    // Clustered dirty pageout: when a dirty victim is written back, the
    // daemon gathers the object's contiguous dirty neighbours into one run
    // and sends a single multi-page pager_data_write instead of one message
    // per page. Runs split at non-contiguous, clean, busy or pinned pages.
    // Off = page-at-a-time write-back (the pre-clustering behaviour, kept
    // for the ablation bench).
    bool pageout_clustering = true;

    // Upper bound on pages per clustered write-back run.
    uint32_t pageout_cluster_max = 16;

    // Adaptive fault-ahead: when a cache miss detects a sequential streak
    // (per-map-entry detector, see FaultAheadState), the fault allocates
    // busy+absent placeholders for a contiguous run of absent neighbours
    // and sends one multi-page pager_data_request covering the run. The
    // window scales 1→2→4→…→fault_ahead_max across consecutive sequential
    // misses and collapses to 1 on random access. Off = one request per
    // page (the pre-batching behaviour, kept for the ablation bench).
    bool fault_ahead = true;

    // Upper bound on pages per fault-ahead run; clamped to the wire cap
    // kPagerMaxRunPages at construction.
    uint32_t fault_ahead_max = 16;

    // Optional fault injection: the kFaultCollapse point randomly
    // suppresses collapse opportunities so chaos soaks cover both collapsed
    // and uncollapsed chains. Not owned.
    FaultInjector* fault_injector = nullptr;
  };

  // FaultInjector point name: when it fires, one collapse opportunity is
  // declined (counted in VmStatistics::collapse_denied).
  static constexpr const char* kFaultCollapse = "vm.collapse";

  explicit VmSystem(PhysicalMemory* phys) : VmSystem(phys, Config{}) {}
  VmSystem(PhysicalMemory* phys, Config config);
  ~VmSystem();

  VmSystem(const VmSystem&) = delete;
  VmSystem& operator=(const VmSystem&) = delete;

  VmSize page_size() const { return phys_->page_size(); }
  PhysicalMemory* phys() const { return phys_; }

  // --- wiring ----------------------------------------------------------

  // The default pager: `service_port` receives pager_create calls;
  // `parking` is the trusted §6.2.2 side-store. Must be set before internal
  // objects can be paged out.
  void SetDefaultPager(SendRight service_port, TrustedParkingStore* parking);

  // The port set the kernel's pager service thread receives on; every pager
  // request port is enabled here at object creation.
  const std::shared_ptr<PortSet>& pager_request_set() const { return pager_requests_; }

  // Creates a fresh task VM context (map + pmap).
  TaskVm CreateTaskVm();

  void StartPageoutDaemon();
  void StopPageoutDaemon();

  // --- Table 3-3: virtual memory operations -----------------------------

  // vm_allocate: zero-filled-on-demand memory, at `addr` or anywhere.
  Result<VmOffset> Allocate(TaskVm& task, VmOffset addr, VmSize size, bool anywhere);

  // vm_allocate_with_pager (Table 3-4): maps `memory_object` at `offset`.
  Result<VmOffset> AllocateWithPager(TaskVm& task, VmOffset addr, VmSize size, bool anywhere,
                                     SendRight memory_object, VmOffset offset);

  // vm_deallocate.
  KernReturn Deallocate(TaskVm& task, VmOffset addr, VmSize size);

  // vm_protect.
  KernReturn Protect(TaskVm& task, VmOffset addr, VmSize size, bool set_max, VmProt prot);

  // vm_inherit.
  KernReturn Inherit(TaskVm& task, VmOffset addr, VmSize size, VmInherit inheritance);

  // vm_read / vm_write: kernel-mediated access to a task's memory (faults
  // pages in as needed, honours entry protections like user access).
  KernReturn ReadMemory(TaskVm& task, VmOffset addr, void* buf, VmSize len);
  KernReturn WriteMemory(TaskVm& task, VmOffset addr, const void* buf, VmSize len);

  // vm_copy: copies [src, src+size) over [dst, dst+size) (copy-on-write).
  KernReturn Copy(TaskVm& task, VmOffset src, VmSize size, VmOffset dst);

  // vm_regions.
  std::vector<RegionInfo> Regions(TaskVm& task);

  // vm_statistics.
  VmStatistics Statistics() const;

  // --- user access & faults ---------------------------------------------

  // Simulated user load/store: pmap fast path, kernel fault on miss.
  // May span pages and entries.
  KernReturn UserAccess(TaskVm& task, VmOffset addr, void* buf, VmSize len, bool is_write);

  // The page fault handler (§5.5). `access` is the attempted access.
  KernReturn Fault(TaskVm& task, VmOffset addr, VmProt access);

  // --- inheritance / fork -------------------------------------------------

  // Populates `child` from `parent` per per-entry inheritance attributes
  // (share / copy / none, §3.3).
  void ForkMap(TaskVm& parent, TaskVm& child);

  // --- out-of-line message transfer (the duality §1) ----------------------

  // vm_map_copyin: captures [addr, addr+size) (page aligned) as a
  // copy-on-write map copy for transfer in a message.
  Result<std::shared_ptr<VmMapCopy>> CopyIn(TaskVm& task, VmOffset addr, VmSize size);

  // vm_map_copyout: maps a copy into `task` anywhere; returns the address.
  Result<VmOffset> CopyOut(TaskVm& task, const std::shared_ptr<VmMapCopy>& copy);

  // Flattens a map copy to bytes (used by cross-host transports).
  Result<std::vector<std::byte>> CopyAsBytes(const std::shared_ptr<VmMapCopy>& copy);

  // Rebuilds a map copy in *this* kernel from flat bytes (the receiving end
  // of a cross-host out-of-line transfer): a fresh internal object holding
  // the data. `size` is rounded up to whole pages.
  Result<std::shared_ptr<VmMapCopy>> CopyFromBytes(const void* data, VmSize size);

  // --- manager -> kernel calls (Table 3-6) --------------------------------
  // Dispatched by the kernel's pager service thread; `request_port_id`
  // identifies the object. Also callable directly in tests.

  void HandlePagerMessage(uint64_t request_port_id, Message&& msg);

  // --- object cache maintenance -------------------------------------------

  // Drops cached (pager_cache'd) objects that have no resident pages.
  void TrimObjectCache();

  // Number of live memory objects known to this kernel (tests).
  size_t object_count() const;

  // Looks up the VmObject for a pager port (tests / kernel internals).
  std::shared_ptr<VmObject> ObjectForPager(const SendRight& pager) const;

  // Length of the shadow chain under the object mapped at `addr` (1 = no
  // shadow ancestors, 0 = no entry). Tests and benchmarks use this to show
  // collapse keeps chains bounded.
  size_t ShadowChainLength(TaskVm& task, VmOffset addr);

 private:
  friend class VmMapCopy;

  struct PageKey {
    const VmObject* object;
    VmOffset offset;
    bool operator==(const PageKey& o) const {
      return object == o.object && offset == o.offset;
    }
  };
  struct PageKeyHash {
    size_t operator()(const PageKey& k) const {
      // Object pointers share allocator alignment and offsets are page
      // multiples; a full-avalanche mix keeps (object, offset) keys from
      // clustering into a few buckets (see src/base/hash.h). The same mix
      // selects the hash shard, so shard load stays uniform.
      return HashPointerAndU64(k.object, k.offset);
    }
  };

  // Witness types: a ChainLock proves chain_mu_ is held, an ObjectLock
  // proves some object's mu is held. Passed by reference where a callee
  // relies on the caller's lock.
  using ChainLock = std::unique_lock<std::mutex>;
  using ObjectLock = std::unique_lock<std::mutex>;

  // The resident-page hash (§5.3), sharded: each shard is an independent
  // bucket map under its own lock, and each is padded to a cache-line
  // multiple, so concurrent faults on distinct objects touch distinct
  // cache lines — in the shard data and in the locks themselves.
  static constexpr size_t kPageHashShards = 64;
  struct alignas(64) PageHashShard {
    std::mutex mu;
    std::unordered_map<PageKey, VmPage*, PageKeyHash> map;
  };

  // A cache-line-padded atomic counter. The systemwide counters are bumped
  // from every CPU on every fault; unpadded, neighbouring counters share a
  // line and every fetch_add drags that line between cores (false sharing).
  // Inheriting from std::atomic keeps every call site unchanged.
  struct alignas(64) PaddedAtomicU64 : std::atomic<uint64_t> {
    using std::atomic<uint64_t>::atomic;
  };

  // Systemwide VM event counters, atomically maintained; Statistics()
  // snapshots them into the plain VmStatistics wire struct.
  struct Counters {
    PaddedAtomicU64 faults{0};
    PaddedAtomicU64 zero_fill_count{0};
    PaddedAtomicU64 cow_faults{0};
    PaddedAtomicU64 pageins{0};
    PaddedAtomicU64 pageouts{0};
    PaddedAtomicU64 reactivations{0};
    PaddedAtomicU64 lookups{0};
    PaddedAtomicU64 hits{0};
    PaddedAtomicU64 unlock_requests{0};
    PaddedAtomicU64 parked_pageouts{0};
    PaddedAtomicU64 manager_deaths{0};
    PaddedAtomicU64 death_resolved_pages{0};
    PaddedAtomicU64 shadow_collapses{0};
    PaddedAtomicU64 shadow_bypasses{0};
    PaddedAtomicU64 pages_migrated{0};
    PaddedAtomicU64 collapse_denied{0};
    PaddedAtomicU64 chain_depth_max{0};
    PaddedAtomicU64 fast_faults{0};
    PaddedAtomicU64 spurious_page_wakeups{0};
    PaddedAtomicU64 collapse_denied_scan_cap{0};
    PaddedAtomicU64 collapse_denied_external{0};
    PaddedAtomicU64 activations_skipped{0};
    PaddedAtomicU64 fault_lock_ops{0};
    PaddedAtomicU64 map_lookups_optimistic{0};
    PaddedAtomicU64 map_lookup_retries{0};
    PaddedAtomicU64 queue_batch_flushes{0};
    PaddedAtomicU64 pageout_runs{0};
    PaddedAtomicU64 pageout_run_pages{0};
    PaddedAtomicU64 fault_ahead_requests{0};
    PaddedAtomicU64 fault_ahead_pages{0};
    PaddedAtomicU64 fault_ahead_unused{0};
  };

  // --- resident page management ---------------------------------------

  PageHashShard& ShardFor(const VmObject* object, VmOffset offset) const;

  // Hash probe with lookup statistics. Caller holds the owner's mu (which
  // keeps the returned page alive and its state stable).
  VmPage* PageLookup(VmObject* object, VmOffset offset);
  // Probe without the lookups/hits counters: coverage checks (which must
  // not skew the hit rate) and the optimistic fault path (which trades the
  // two shared-counter xadds for raw single-thread speed).
  VmPage* PageLookupRaw(const VmObject* object, VmOffset offset) const;
  // Raw membership probe without statistics (coverage checks).
  bool PageResident(const VmObject* object, VmOffset offset) const;

  // Allocates a frame and a resident page for (object, offset). Never
  // blocks and never reclaims inline: on exhaustion returns
  // kResourceShortage and pokes the daemon; the caller must drop its locks
  // and WaitForFreeFrames. Caller holds the owner's mu.
  Result<VmPage*> PageAllocLocked(VmObject* object, VmOffset offset, bool allow_reserve);

  // Frees a resident page: unmaps, unqueues, unhashes, releases the frame.
  // Caller holds the owner's mu (witnessed by `olk`).
  void PageFreeLocked(ObjectLock& olk, VmPage* page);

  void PageActivate(VmPage* page);
  void PageDeactivate(VmPage* page);
  void PageRemoveFromQueue(VmPage* page);
  // Variants for callers already under queue_mu_ (the pageout scan).
  void PageActivateLocked(VmPage* page);
  void PageDeactivateLocked(VmPage* page);
  void PageRemoveFromQueueLocked(VmPage* page);

  // --- batched queue operations ----------------------------------------

  struct PagePin;  // Defined below (fault machinery).

  // The per-thread deferral list for page activations: multi-page
  // operations (vm_read / vm_write / pager data arrival / death
  // resolution) accumulate pages here and apply the whole batch under one
  // queue_mu_ acquisition instead of locking per page. Discipline: a page
  // in the batch must be kept stable — pinned, or its object's mu held —
  // until the flush, and every operation drains the batch before it
  // returns (Fault() asserts this at entry and exit, so a leak cannot
  // silently carry pages into an unrelated operation or another kernel
  // instance).
  struct QueueBatch {
    static constexpr size_t kCapacity = 16;
    std::array<VmPage*, kCapacity> pages;
    size_t count = 0;
    bool empty() const { return count == 0; }
  };
  static QueueBatch& ThreadQueueBatch();

  // Defers activation of `page` into the thread batch (tag fast-out first,
  // like PageActivate); flushes inline if the batch is full.
  void PageActivateDeferred(VmPage* page);
  // Applies and empties the thread batch under one queue_mu_ acquisition.
  void FlushQueueBatch();

  // Debug guard asserting the thread batch is drained at construction and
  // destruction (fault entry and exit; see MACH_DEBUG_ASSERT).
  struct QueueBatchDrainedCheck {
    QueueBatchDrainedCheck();
    ~QueueBatchDrainedCheck();
  };

  // Pins held across a multi-page kernel-mediated access so each page's
  // activation can ride the thread queue batch: the pin keeps the deferred
  // page stable until the flush. Drained (flush, then unpin) at a capacity
  // scaled to physical memory — so batched pins can never hold enough
  // frames to starve reclaim — and on every exit path via the destructor.
  struct PinBatch {
    explicit PinBatch(VmSystem* vm);
    ~PinBatch();
    PinBatch(const PinBatch&) = delete;
    PinBatch& operator=(const PinBatch&) = delete;
    void Add(PagePin&& pin);
    void Drain();
    VmSystem* vm_;
    size_t cap_;
    std::vector<PagePin> pins_;
  };

  // Re-homes a page into `new_object` (collapse migration). Caller holds
  // both objects' locks; identity flips under queue_mu_ so the pageout scan
  // never sees a torn (object, offset).
  void PageRename(VmPage* page, VmObject* new_object, VmOffset new_offset);

  // Blocks briefly until frames may be available again: pokes the daemon,
  // runs one reclaim pass, then waits on free_cv_ with a bounded slice.
  // No locks may be held.
  void WaitForFreeFrames();

  // --- fault machinery --------------------------------------------------

  // A resolved page, pinned for installation. The pin (VmPage::pin_count)
  // keeps the page and frame alive after the object lock is dropped;
  // page_lock is snapshotted so UnpinPage can detect a manager lock that
  // raced with the install.
  struct PagePin {
    std::shared_ptr<VmObject> owner;
    VmPage* page = nullptr;
    bool from_backing = false;  // Page belongs to a shadow ancestor; map
                                // read-only (copy still pending).
    VmProt page_lock = kVmProtNone;
  };

  // Entry resolution under the map lock(s). `share_lock` keeps the sharing
  // map's entries stable for as long as the holder pointer is used.
  struct EntryRef {
    MapEntry* top = nullptr;     // Entry in the task's top-level map.
    MapEntry* holder = nullptr;  // Entry that references the object
                                 // (== top, or a sharing-map entry).
    VmOffset object_offset = 0;  // Offset of the faulting page in the object.
    bool needs_prepare = false;  // Lazy object creation or a shadow push is
                                 // required first (PrepareEntry).
    std::shared_lock<std::shared_mutex> share_lock;
  };

  // Read-only resolution; caller holds task.map->lock() (either mode).
  Result<EntryRef> LookupEntry(TaskVm& task, VmOffset addr, VmProt access);

  // Runs the per-entry sequentiality detector for a *miss* at
  // `object_offset` (the page was not resident) and returns the fault-ahead
  // window to use, >= 1. Caller holds the holder's map lock (shared is
  // fine; the detector word is atomic and advisory). Returns 1 whenever
  // fault-ahead is disabled.
  uint32_t ComputeFaultAheadWindow(MapEntry* holder, VmOffset object_offset);

  // The lock-free fault fast path (Config::optimistic_map_lookup): resolves
  // `page_addr` against the map's published snapshot and installs the
  // translation with the generation validated inside the pmap lock. Handles
  // only the exact analogue of the in-lock fast path — a settled page
  // resident in the entry's own object with sufficient protection; returns
  // false (fall back to the locked path) for everything else, including
  // every would-be error verdict: errors are never decided from a snapshot.
  bool TryOptimisticFault(TaskVm& task, VmOffset page_addr, VmProt access);

  // Performs the mutations LookupEntry flagged (lazy zero-fill object,
  // copy-on-write shadow) under exclusive map locks. Takes no other locks
  // on entry.
  KernReturn PrepareEntry(TaskVm& task, VmOffset addr, VmProt access);

  // The §5.5 page walk: finds or creates the page for
  // (first_object, first_offset), waiting on busy pages, asking pagers, and
  // performing the copy-on-write push as needed. Takes and releases object
  // locks internally (none held on entry or exit); returns the page pinned.
  // `fa_window` is the fault-ahead window in pages (>= 1) to apply if this
  // resolution turns into a pager request on `first_object` itself; shadow
  // descents and recursive copy pulls always run single-page.
  Result<PagePin> ResolvePage(std::shared_ptr<VmObject> first_object, VmOffset first_offset,
                              VmProt fault_type, uint32_t fa_window = 1);

  PagePin MakePinLocked(ObjectLock& olk, std::shared_ptr<VmObject> owner, VmPage* page,
                        bool from_backing);
  void UnpinPage(PagePin& pin);
  void UnpinRaw(const std::shared_ptr<VmObject>& owner, VmPage* page);

  // Waits (bounded slice) on `object`'s condition variable for a page state
  // change; returns false once `deadline` has passed. `olk` holds the
  // object's mu.
  bool WaitForPage(ObjectLock& olk, VmObject* object,
                   std::chrono::steady_clock::time_point deadline);

  // Message sends to the object's manager. `olk` (the object's mu) is
  // released across the send and reacquired; callers revalidate after.
  // `length` spans the whole run (page-size multiple; one page when no
  // fault-ahead applies).
  KernReturn RequestDataFromPager(ObjectLock& olk, const std::shared_ptr<VmObject>& object,
                                  VmOffset offset, VmSize length, VmProt access);
  KernReturn RequestUnlockFromPager(ObjectLock& olk, const std::shared_ptr<VmObject>& object,
                                    VmPage* page, VmProt access);

  // --- objects -----------------------------------------------------------

  std::shared_ptr<VmObject> CreateInternalObject(VmSize size);
  // Pushes a shadow object in front of entry->object. Caller holds the
  // holder map exclusively plus chain_mu_.
  void MakeShadow(ChainLock& chain, MapEntry* entry);
  void ObjectRef(const std::shared_ptr<VmObject>& object) {
    object->map_refs.fetch_add(1, std::memory_order_relaxed);
  }
  void ObjectRelease(ChainLock& chain, std::shared_ptr<VmObject> object);
  void TerminateObject(ChainLock& chain, const std::shared_ptr<VmObject>& object);
  void ReleaseEntry(ChainLock& chain, MapEntry&& entry);
  void WriteProtectResident(VmObject* object, VmOffset offset, VmSize size);

  // Ensures an internal object has a default-pager association
  // (pager_create). Caller holds chain_mu_ and the object's mu.
  bool EnsureInternalPager(ChainLock& chain, ObjectLock& olk,
                           const std::shared_ptr<VmObject>& object);

  // --- shadow-chain collapse (Mach's vm_object_collapse / bypass) --------

  // Cheap unlocked-precondition check + TryCollapse, used after a fault.
  void MaybeCollapse(const std::shared_ptr<VmObject>& object);

  // Attempts to shorten `object`'s shadow chain, repeatedly:
  //  * splice: if the immediate shadow's only reference is `object`'s shadow
  //    pointer, migrate its still-needed pages into `object` and splice it
  //    out of the chain;
  //  * bypass: if `object` itself covers every offset it could fault on, drop
  //    the whole remaining chain.
  // Caller holds chain_mu_ only; object locks are taken child-then-parent
  // inside. Declines — counting collapse_denied — whenever a busy or pinned
  // page or unaccounted pager-held data makes the splice unsafe.
  void TryCollapse(ChainLock& chain, const std::shared_ptr<VmObject>& object);

  // Whether `object` holds data for `offset` without consulting its shadow:
  // a resident page, a default-pager copy (paged_offsets), or a §6.2.2
  // parked copy. Caller holds the object's mu.
  bool ObjectCoversOffset(const VmObject* object, VmOffset offset) const;

  // Whether `object` covers every page of [0, size()) by itself, derived
  // from residency and pager metadata (never an O(size) offset scan).
  // kCapExceeded = the metadata was larger than Config::collapse_scan_cap.
  enum class Coverage { kFull, kPartial, kCapExceeded };
  Coverage FullyCoversSelf(const VmObject* object) const;

  // --- pageout ------------------------------------------------------------

  void PageoutDaemonMain();
  // Frees up to `want` frames from the inactive queue; returns the number
  // freed. Takes queue_mu_ and object locks (try_lock) internally; no locks
  // held on entry.
  uint32_t ReclaimPass(uint32_t want);
  // Writes one unqueued, settled page back to its manager (or parks it),
  // clustering the object's contiguous dirty neighbours into the same
  // pager_data_write run when Config::pageout_clustering is on. Caller
  // holds the owner's mu; returns the number of frames freed.
  uint32_t PageoutPageLocked(ObjectLock& olk, const std::shared_ptr<VmObject>& object,
                             VmPage* page);
  // Grows a write-back run around `seed` with the object's contiguous dirty
  // neighbours (each unqueued and write-protected as it is claimed). The
  // result is sorted by offset, contains `seed`, and every member is
  // settled: !busy, pin_count == 0, dirty. Caller holds the owner's mu.
  std::vector<VmPage*> CollectPageoutClusterLocked(VmObject* object, VmPage* seed);
  // Splits sorted settled dirty pages of one object into contiguous runs of
  // at most Config::pageout_cluster_max pages (always single-page runs when
  // clustering is off).
  std::vector<std::vector<VmPage*>> BuildPageoutRuns(std::vector<VmPage*> dirty_sorted) const;
  // Sends one pager_data_write covering `run` (contiguous, same object).
  // kWritten: accepted, paged_offsets updated. kParked: the manager did not
  // take the message and every page's data went to the §6.2.2 parking
  // store. kFailed: not written and not parked (unprotected mode); the
  // pages stay dirty. Caller holds the owner's mu.
  enum class RunWriteResult { kWritten, kParked, kFailed };
  RunWriteResult WritePageoutRun(ObjectLock& olk, const std::shared_ptr<VmObject>& object,
                                 const std::vector<VmPage*>& run, bool park_on_failure);

  // Drains deferred VmMapCopy releases if any are pending. Callers must
  // hold no VM locks.
  void MaybeDrainDeferred();

  // --- manager -> kernel handlers ----------------------------------------

  void HandleDataProvided(const std::shared_ptr<VmObject>& object, VmOffset offset,
                          const std::vector<std::byte>& data, VmProt lock_value);
  void HandleDataUnavailable(const std::shared_ptr<VmObject>& object, VmOffset offset,
                             VmSize size);
  void HandleDataLock(const std::shared_ptr<VmObject>& object, VmOffset offset, VmSize length,
                      VmProt lock_value);
  void HandleFlush(const std::shared_ptr<VmObject>& object, VmOffset offset, VmSize length);
  void HandleClean(const std::shared_ptr<VmObject>& object, VmOffset offset, VmSize length);
  void HandleCache(const std::shared_ptr<VmObject>& object, bool may_cache);

  // Death-notification fast path (§6.2.1): the memory-object port of a
  // manager died. Resolves every in-flight placeholder page under the
  // configured on_pager_timeout policy (zero fill or error) and wakes the
  // faulting threads immediately instead of letting them burn the timeout.
  // Takes the object by value: the caller's reference typically aliases the
  // objects_by_pager_ entry this function erases. Caller holds chain_mu_.
  void HandlePagerDeath(ChainLock& chain, std::shared_ptr<VmObject> object);

  // ------------------------------------------------------------------------

  PhysicalMemory* const phys_;
  Config config_;
  uint32_t free_target_;
  uint32_t reserved_;

  // Tier 2: chain structure, object lifecycle, registries (see the header
  // comment for the full order).
  mutable std::mutex chain_mu_;

  // Tier 4: the sharded resident-page hash.
  mutable std::array<PageHashShard, kPageHashShards> page_shards_;

  // Tier 5: pageout queues and page queue-membership. The alignas walls the
  // queue word group (mutex + heads + counts) off from neighbouring members
  // so fault-path activations and free-list traffic do not false-share.
  alignas(64) mutable std::mutex queue_mu_;
  PageQueue active_queue_;
  PageQueue inactive_queue_;
  uint32_t active_count_ = 0;
  uint32_t inactive_count_ = 0;

  // Free-frame waiters (fault path under memory pressure). Notified after
  // every frame free; waiters use bounded slices so a missed notify only
  // costs one slice.
  alignas(64) std::mutex free_mu_;
  std::condition_variable free_cv_;

  // Pageout daemon control.
  std::mutex pageout_mu_;
  std::condition_variable pageout_wake_;
  std::thread pageout_thread_;
  bool pageout_running_ = false;
  bool shutting_down_ = false;

  // Object registries: by memory-object (pager) port id and by request
  // port id. Guarded by chain_mu_.
  std::unordered_map<uint64_t, std::shared_ptr<VmObject>> objects_by_pager_;
  std::unordered_map<uint64_t, std::shared_ptr<VmObject>> objects_by_request_;

  std::shared_ptr<PortSet> pager_requests_ = PortSet::Create();

  // Every memory-object port is watched for death at association time
  // (vm_allocate_with_pager / pager_create); the notification lands here,
  // inside pager_requests_, so the pager service thread dispatches it like
  // any other manager->kernel message.
  ReceiveRight death_notify_receive_;
  SendRight death_notify_send_;

  SendRight default_pager_service_;  // Guarded by chain_mu_.
  TrustedParkingStore* parking_ = nullptr;

  mutable Counters counters_;

  // Cap on pins a PinBatch may hold at once; sized against the frame pool
  // in the constructor so batched pins can never starve reclaim in
  // small-memory configurations.
  size_t pin_batch_cap_ = 16;

  // Object references dropped by VmMapCopy destructors (possibly on threads
  // that must not take VM locks); drained opportunistically. The atomic
  // flag lets MaybeDrainDeferred skip the mutex on the (hot, empty) path.
  std::atomic<bool> deferred_pending_{false};
  std::mutex deferred_mu_;
  std::vector<std::shared_ptr<VmObject>> deferred_releases_;
};

// An out-of-line memory region captured from an address map (Mach's
// vm_map_copy). Holds copy-on-write references to the source objects; a
// CopyOut consumes it into a destination map.
class VmMapCopy {
 public:
  struct Segment {
    std::shared_ptr<VmObject> object;  // Null = zero-filled region.
    VmOffset offset = 0;
    VmSize size = 0;
  };

  VmMapCopy(VmSystem* system, VmSize size) : system_(system), size_(size) {}
  ~VmMapCopy();

  VmMapCopy(const VmMapCopy&) = delete;
  VmMapCopy& operator=(const VmMapCopy&) = delete;

  VmSize size() const { return size_; }
  std::vector<Segment>& segments() { return segments_; }
  const std::vector<Segment>& segments() const { return segments_; }
  VmSystem* system() const { return system_; }

 private:
  VmSystem* system_;
  VmSize size_;
  std::vector<Segment> segments_;
};

}  // namespace mach

#endif  // SRC_VM_VM_SYSTEM_H_
