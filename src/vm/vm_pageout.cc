// Page replacement (§5.4) and the kernel ends of the data manager → kernel
// interface (Table 3-6).
//
// The pageout daemon keeps a pool of free frames by aging pages from the
// active queue through the inactive queue (second-chance on the hardware
// reference bit) and writing dirty victims back to their data managers with
// pager_data_write. A dirty victim is clustered with its object's
// contiguous dirty neighbours so one message carries the whole run
// (Config::pageout_clustering; runs split at non-contiguous, clean, busy or
// pinned pages). All sends on this path are non-blocking: a manager that
// cannot accept its dirty data promptly has the data *parked* with the
// trusted default pager instead (§6.2.2), so an errant manager can never
// wedge the kernel's memory pool.
//
// Locking: the scan runs under queue_mu_ and must take object locks in the
// reverse of the documented order, so it only ever try_locks an object —
// contended pages rotate to the queue tail and the scan moves on. A chosen
// victim is unqueued, queue_mu_ is dropped, and the pageout itself runs
// under the object lock alone. Manager handlers run under the owning
// object's lock and finish with a targeted cv broadcast.

#include <algorithm>
#include <cassert>
#include <cstring>
#include <vector>

#include "src/base/log.h"
#include "src/pager/protocol.h"
#include "src/vm/vm_system.h"

namespace mach {

void VmSystem::StartPageoutDaemon() {
  std::lock_guard<std::mutex> lk(pageout_mu_);
  if (pageout_running_) {
    return;
  }
  pageout_running_ = true;
  shutting_down_ = false;
  pageout_thread_ = std::thread([this] { PageoutDaemonMain(); });
}

void VmSystem::StopPageoutDaemon() {
  {
    std::lock_guard<std::mutex> lk(pageout_mu_);
    if (!pageout_running_) {
      return;
    }
    shutting_down_ = true;
    pageout_wake_.notify_all();
  }
  pageout_thread_.join();
  std::lock_guard<std::mutex> lk(pageout_mu_);
  pageout_running_ = false;
}

void VmSystem::PageoutDaemonMain() {
  std::unique_lock<std::mutex> lk(pageout_mu_);
  while (!shutting_down_) {
    pageout_wake_.wait_for(lk, config_.pageout_interval);
    if (shutting_down_) {
      break;
    }
    lk.unlock();
    MaybeDrainDeferred();
    {
      // Age pages: keep roughly a third of the in-use pool on the inactive
      // queue so reference information accumulates.
      std::lock_guard<std::mutex> qlk(queue_mu_);
      uint32_t inactive_target = (active_count_ + inactive_count_) / 3;
      while (inactive_count_ < inactive_target && !active_queue_.empty()) {
        PageDeactivateLocked(active_queue_.Front());
      }
    }
    // Replenish free memory.
    uint32_t free = phys_->free_frames();
    if (free < free_target_) {
      ReclaimPass(free_target_ - free);
    }
    lk.lock();
  }
}

uint32_t VmSystem::ReclaimPass(uint32_t want) {
  uint32_t freed = 0;
  std::unique_lock<std::mutex> qlk(queue_mu_);
  // Bounded scan: each iteration either frees, reactivates, rotates or
  // deactivates a page; give every resident page at most one look.
  uint32_t guard = active_count_ + inactive_count_ + 8;
  while (freed < want && guard-- > 0) {
    if (inactive_queue_.empty()) {
      if (active_queue_.empty()) {
        break;
      }
      PageDeactivateLocked(active_queue_.Front());
      continue;
    }
    VmPage* page = inactive_queue_.Front();
    // Identity is stable while queue_mu_ is held (PageRename flips it under
    // queue_mu_), but the object lock order is the reverse of ours: try
    // only, and rotate contended pages to the tail.
    VmObject* owner = page->object;
    if (!owner->mu.try_lock()) {
      inactive_queue_.Remove(page);
      inactive_queue_.PushBack(page);
      continue;
    }
    ObjectLock olk(owner->mu, std::adopt_lock);
    // A queued page's owner is always alive (termination unqueues), so a
    // strong reference is safe to take here and keeps the object across the
    // pageout I/O below.
    std::shared_ptr<VmObject> object = owner->shared_from_this();
    if (page->busy) {
      // Busy pages are normally unqueued by their owner; be safe.
      PageRemoveFromQueueLocked(page);
      continue;
    }
    if (page->pin_count > 0) {
      // A fault is installing this frame right now; clearly not idle.
      inactive_queue_.Remove(page);
      inactive_queue_.PushBack(page);
      continue;
    }
    if (phys_->IsReferenced(page->frame)) {
      // Second chance: touched while inactive.
      phys_->ClearReference(page->frame);
      PageActivateLocked(page);
      counters_.reactivations.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    PageRemoveFromQueueLocked(page);
    qlk.unlock();
    freed += PageoutPageLocked(olk, object, page);
    olk.unlock();
    qlk.lock();
  }
  qlk.unlock();
  if (freed > 0) {
    free_cv_.notify_all();
  }
  return freed;
}

bool VmSystem::EnsureInternalPager(ChainLock& chain, ObjectLock& olk,
                                   const std::shared_ptr<VmObject>& object) {
  (void)chain;
  (void)olk;
  if (object->pager.valid()) {
    return true;
  }
  if (!default_pager_service_.valid() || default_pager_service_.IsDead()) {
    return false;
  }
  // The kernel itself creates the memory object port and passes its receive
  // right to the default pager in a pager_create call (§3.4.1).
  PortPair obj_port = PortAllocate("kernel-object");
  // Pageout sends are non-blocking; a roomy queue keeps bursts of dirty
  // pages flowing to the (trusted, always-draining) default pager.
  obj_port.receive.port()->SetBacklog(1024);
  PortPair request = PortAllocate("pager-request");
  PortPair name = PortAllocate("pager-name");
  PagerCreateArgs args;
  args.new_memory_object = std::move(obj_port.receive);
  args.new_request_port = request.send;
  args.new_name_port = name.send;
  args.page_size = page_size();
  KernReturn kr = MsgSend(default_pager_service_, EncodePagerCreate(std::move(args)), kPoll);
  if (!IsOk(kr)) {
    // The (trusted) default pager could not take the message right now; the
    // receive right died with the message, so start fresh next time.
    return false;
  }
  object->pager = obj_port.send;
  object->request_receive = std::move(request.receive);
  object->request_send = request.send;
  object->name_receive = std::move(name.receive);
  object->name_send = name.send;
  object->pager_initialized = true;
  objects_by_pager_.emplace(object->pager.id(), object);
  objects_by_request_.emplace(object->request_send.id(), object);
  pager_requests_->Add(object->request_receive);
  // Even the trusted default pager gets a death watch: if it goes away the
  // same §6.2.1 policy applies instead of a hung fault.
  object->pager.port()->RequestDeathNotification(death_notify_send_);
  return true;
}

uint32_t VmSystem::PageoutPageLocked(ObjectLock& olk, const std::shared_ptr<VmObject>& object,
                                     VmPage* page) {
  for (;;) {
    // Invalidate all hardware mappings first, then sample the modify bit:
    // no access can slip in after the sample. (The loop re-runs this after
    // any window where the object lock was dropped.)
    Pmap::PageProtect(phys_, page->frame, kVmProtNone);
    bool dirty = page->dirty || phys_->IsModified(page->frame);
    if (!dirty) {
      // Clean data: the manager (or a zero fill) can reproduce it.
      PageFreeLocked(olk, page);
      return 1;
    }
    if (object->pager.valid()) {
      break;
    }
    // Kernel-created object touched for the first time: hand it to the
    // default pager via pager_create. That needs chain_mu_, which sits
    // *above* the object lock — pin the victim, drop the object lock, take
    // the chain lock, relock, revalidate.
    ++page->pin_count;
    olk.unlock();
    bool have_pager;
    {
      ChainLock chain(chain_mu_);
      olk.lock();
      have_pager = object->alive && EnsureInternalPager(chain, olk, object);
    }
    --page->pin_count;
    if (!object->alive) {
      // Terminated while unlocked; the page was orphaned for us to free.
      if (page->pin_count == 0 && !page->busy) {
        PageFreeLocked(olk, page);
        object->cv.notify_all();
        return 1;
      }
      object->cv.notify_all();
      return 0;
    }
    if (page->busy || page->pin_count > 0) {
      // A fault claimed the page during the gap: no longer a victim.
      PageActivate(page);
      object->cv.notify_all();
      return 0;
    }
    if (!have_pager) {
      PageActivate(page);  // Try again later.
      return 0;
    }
    // A mapping may have been re-established during the gap; loop to
    // re-protect and resample so no modification is lost.
  }
  // Dirty: the data must reach backing storage (pager_data_write). Gather
  // the object's contiguous dirty neighbours so one message carries the
  // whole run instead of one per page.
  std::vector<VmPage*> run = CollectPageoutClusterLocked(object.get(), page);
  switch (WritePageoutRun(olk, object, run, /*park_on_failure=*/true)) {
    case RunWriteResult::kWritten:
    case RunWriteResult::kParked:
      for (VmPage* p : run) {
        PageFreeLocked(olk, p);
      }
      return static_cast<uint32_t>(run.size());
    case RunWriteResult::kFailed:
      break;
  }
  // Unprotected mode (ablation): give up on these pages for now.
  for (VmPage* p : run) {
    PageActivate(p);
  }
  return 0;
}

std::vector<VmPage*> VmSystem::CollectPageoutClusterLocked(VmObject* object, VmPage* seed) {
  std::vector<VmPage*> run{seed};
  if (!config_.pageout_clustering || config_.pageout_cluster_max <= 1) {
    return run;
  }
  const VmSize ps = page_size();
  const size_t cap = config_.pageout_cluster_max;
  // Claims the page at `off` for the run if it is a settled dirty
  // neighbour that is already aging out (on the inactive queue, like the
  // seed was): stealing a hot active neighbour would save one message now
  // at the price of a near-certain refault. Sample the modify bit first so
  // clean pages keep their mappings, then protect-and-resample like the
  // seed: a page dirty before the protect stays dirty, and no access can
  // slip in after it.
  auto claim = [&](VmOffset off) -> VmPage* {
    VmPage* p = PageLookupRaw(object, off);
    if (p == nullptr || p->busy || p->pin_count > 0 ||
        p->queue.load(std::memory_order_relaxed) != VmPage::Queue::kInactive) {
      return nullptr;
    }
    if (!p->dirty && !phys_->IsModified(p->frame)) {
      return nullptr;  // Clean: the run splits here.
    }
    Pmap::PageProtect(phys_, p->frame, kVmProtNone);
    p->dirty = true;
    PageRemoveFromQueue(p);
    return p;
  };
  std::vector<VmPage*> below;
  for (VmOffset off = seed->offset; off >= ps && run.size() + below.size() < cap;) {
    off -= ps;
    VmPage* p = claim(off);
    if (p == nullptr) {
      break;
    }
    below.push_back(p);
  }
  std::reverse(below.begin(), below.end());
  below.insert(below.end(), run.begin(), run.end());
  run = std::move(below);
  for (VmOffset off = seed->offset + ps; run.size() < cap; off += ps) {
    VmPage* p = claim(off);
    if (p == nullptr) {
      break;
    }
    run.push_back(p);
  }
  return run;
}

std::vector<std::vector<VmPage*>> VmSystem::BuildPageoutRuns(
    std::vector<VmPage*> dirty_sorted) const {
  const VmSize ps = page_size();
  const size_t cap = (config_.pageout_clustering && config_.pageout_cluster_max > 0)
                         ? config_.pageout_cluster_max
                         : 1;
  std::vector<std::vector<VmPage*>> runs;
  for (VmPage* p : dirty_sorted) {
    if (!runs.empty() && runs.back().size() < cap &&
        runs.back().back()->offset + ps == p->offset) {
      runs.back().push_back(p);
    } else {
      runs.push_back({p});
    }
  }
  return runs;
}

VmSystem::RunWriteResult VmSystem::WritePageoutRun(ObjectLock& olk,
                                                   const std::shared_ptr<VmObject>& object,
                                                   const std::vector<VmPage*>& run,
                                                   bool park_on_failure) {
  (void)olk;
  const VmSize ps = page_size();
  PagerDataWriteArgs args;
  args.offset = run.front()->offset;
  // Copy (rather than move into the message): the parking fallback below
  // may still need the data.
  args.data.resize(run.size() * ps);
  for (size_t i = 0; i < run.size(); ++i) {
    phys_->ReadFrame(run[i]->frame, 0, args.data.data() + i * ps, ps);
  }
  counters_.pageout_runs.fetch_add(1, std::memory_order_relaxed);
  counters_.pageout_run_pages.fetch_add(run.size(), std::memory_order_relaxed);
  if (IsOk(MsgSend(object->pager, EncodePagerDataWrite(args), kPoll))) {
    counters_.pageouts.fetch_add(run.size(), std::memory_order_relaxed);
    // The pager now holds these offsets: chain collapse must account for
    // them even though no pages are resident.
    for (VmPage* p : run) {
      object->paged_offsets.insert(p->offset);
    }
    return RunWriteResult::kWritten;
  }
  // The manager did not accept the data (queue full / port dead).
  if (park_on_failure && config_.errant_manager_protection && parking_ != nullptr) {
    // §6.2.2: divert to the default pager so pageout is never starved. The
    // parking store is per-page; the run is split back up for it.
    for (size_t i = 0; i < run.size(); ++i) {
      std::vector<std::byte> page_data(args.data.begin() + static_cast<ptrdiff_t>(i * ps),
                                       args.data.begin() + static_cast<ptrdiff_t>((i + 1) * ps));
      parking_->Park(object->id(), run[i]->offset, std::move(page_data));
      object->parked_offsets[run[i]->offset] = true;
    }
    counters_.parked_pageouts.fetch_add(run.size(), std::memory_order_relaxed);
    return RunWriteResult::kParked;
  }
  return RunWriteResult::kFailed;
}

// --- data manager -> kernel calls (Table 3-6) -------------------------------

void VmSystem::HandlePagerMessage(uint64_t request_port_id, Message&& msg) {
  if (msg.id() == kMsgIdPortDeath) {
    // Death notification for a watched memory-object port. Only the
    // kernel's dedicated notify port is trusted: a kMsgIdPortDeath landing
    // on an ordinary request port was sent by a manager, and honoring it
    // would let an errant manager (the §6 threat model) forge the death of
    // another object's pager.
    if (request_port_id != death_notify_receive_.id()) {
      MACH_LOG(kWarn) << "forged death notification on request port " << request_port_id;
      return;
    }
    // The payload is the dead port's id.
    Result<uint64_t> dead_id = msg.TakeU64();
    if (dead_id.ok()) {
      ChainLock chain(chain_mu_);
      auto dead_it = objects_by_pager_.find(dead_id.value());
      if (dead_it != objects_by_pager_.end()) {
        HandlePagerDeath(chain, dead_it->second);
      }
    }
    return;
  }
  if (msg.id() == kMsgIdNoSenders) {
    // The kernel never registers for no-senders on the ports it watches (it
    // holds its own send rights to them, which would keep the count up), so
    // any no-senders message on a request port is a manager forging the
    // notification protocol — same §6 threat as a forged death above.
    if (request_port_id != death_notify_receive_.id()) {
      MACH_LOG(kWarn) << "forged no-senders notification on request port " << request_port_id;
    }
    return;
  }
  std::shared_ptr<VmObject> object;
  {
    ChainLock chain(chain_mu_);
    auto it = objects_by_request_.find(request_port_id);
    if (it == objects_by_request_.end()) {
      MACH_LOG(kDebug) << "pager message for unknown request port " << request_port_id;
      return;
    }
    object = it->second;
  }
  switch (msg.id()) {
    case kMsgPagerDataProvided: {
      Result<PagerDataProvidedArgs> args = DecodePagerDataProvided(msg);
      if (args.ok()) {
        HandleDataProvided(object, args.value().offset, args.value().data,
                           args.value().lock_value);
      }
      break;
    }
    case kMsgPagerDataUnavailable: {
      Result<PagerDataUnavailableArgs> args = DecodePagerDataUnavailable(msg);
      if (args.ok()) {
        HandleDataUnavailable(object, args.value().offset, args.value().size);
      }
      break;
    }
    case kMsgPagerDataLock: {
      Result<PagerDataLockArgs> args = DecodePagerDataLock(msg);
      if (args.ok()) {
        HandleDataLock(object, args.value().offset, args.value().length,
                       args.value().lock_value);
      }
      break;
    }
    case kMsgPagerFlushRequest: {
      Result<PagerRangeArgs> args = DecodePagerFlushRequest(msg);
      if (args.ok()) {
        HandleFlush(object, args.value().offset, args.value().length);
      }
      break;
    }
    case kMsgPagerCleanRequest: {
      Result<PagerRangeArgs> args = DecodePagerCleanRequest(msg);
      if (args.ok()) {
        HandleClean(object, args.value().offset, args.value().length);
      }
      break;
    }
    case kMsgPagerCache: {
      Result<PagerCacheArgs> args = DecodePagerCache(msg);
      if (args.ok()) {
        HandleCache(object, args.value().may_cache);
      }
      break;
    }
    default:
      MACH_LOG(kWarn) << "unknown pager message id " << msg.id();
      break;
  }
}

void VmSystem::HandleDataProvided(const std::shared_ptr<VmObject>& object, VmOffset offset,
                                  const std::vector<std::byte>& data, VmProt lock_value) {
  const VmSize ps = page_size();
  if (offset % ps != 0) {
    return;  // Alignment violation: discard.
  }
  ObjectLock olk(object->mu);
  if (!object->alive) {
    return;
  }
  // Only integral multiples of the page size are accepted; a trailing
  // partial page is discarded (§3.4.1).
  const VmSize full = (data.size() / ps) * ps;
  for (VmOffset delta = 0; delta < full; delta += ps) {
    VmOffset off = offset + delta;
    VmPage* page = PageLookup(object.get(), off);
    if (page != nullptr) {
      if (page->busy && page->absent) {
        phys_->WriteFrame(page->frame, 0, data.data() + delta, ps);
        phys_->ClearModify(page->frame);
        phys_->ClearReference(page->frame);
        page->page_lock = lock_value;
        page->busy = false;
        page->absent = false;
        page->unavailable = false;
        page->dirty = false;
        // Batched: the object lock (held to the end) keeps the page stable
        // until the flush below, and a multi-page provision pays for one
        // queue lock instead of one per page.
        PageActivateDeferred(page);
        counters_.pageins.fetch_add(1, std::memory_order_relaxed);
      }
      // Already-resident data: duplicate provision is ignored.
      continue;
    }
    // Unsolicited data (pre-paging by an advanced manager). Accept it only
    // while memory is plentiful — a flooding manager must not drain the
    // pool (§6.1).
    if (phys_->free_frames() <= free_target_) {
      continue;
    }
    Result<VmPage*> np = PageAllocLocked(object.get(), off, /*allow_reserve=*/false);
    if (!np.ok()) {
      continue;
    }
    phys_->WriteFrame(np.value()->frame, 0, data.data() + delta, ps);
    phys_->ClearModify(np.value()->frame);
    phys_->ClearReference(np.value()->frame);
    np.value()->page_lock = lock_value;
    PageActivateDeferred(np.value());
    counters_.pageins.fetch_add(1, std::memory_order_relaxed);
  }
  FlushQueueBatch();
  object->cv.notify_all();
}

void VmSystem::HandleDataUnavailable(const std::shared_ptr<VmObject>& object, VmOffset offset,
                                     VmSize size) {
  const VmSize ps = page_size();
  ObjectLock olk(object->mu);
  if (!object->alive) {
    return;
  }
  for (VmOffset off = TruncPage(offset, ps); off < offset + size; off += ps) {
    VmPage* page = PageLookup(object.get(), off);
    if (page != nullptr && page->busy && page->absent) {
      // The faulting thread resolves the substitution (zero fill or shadow
      // copy) in its own context.
      page->unavailable = true;
      page->busy = false;
    }
  }
  object->cv.notify_all();
}

void VmSystem::HandleDataLock(const std::shared_ptr<VmObject>& object, VmOffset offset,
                              VmSize length, VmProt lock_value) {
  const VmSize ps = page_size();
  ObjectLock olk(object->mu);
  if (!object->alive) {
    return;
  }
  for (VmOffset off = TruncPage(offset, ps); off < offset + length; off += ps) {
    VmPage* page = PageLookup(object.get(), off);
    if (page == nullptr) {
      continue;
    }
    page->page_lock = lock_value;
    page->unlock_pending = false;
    // Lower existing hardware mappings to the newly permitted access. (A
    // busy placeholder has no mappings, so this is a no-op for it; pinned
    // pages are re-clamped at unpin if the lock changed under them.)
    Pmap::PageProtect(phys_, page->frame, kVmProtAll & ~lock_value);
  }
  object->cv.notify_all();
}

void VmSystem::HandleFlush(const std::shared_ptr<VmObject>& object, VmOffset offset,
                           VmSize length) {
  const VmSize ps = page_size();
  ObjectLock olk(object->mu);
  if (!object->alive) {
    return;
  }
  std::vector<VmPage*> victims;
  for (VmPage* page : object->pages) {
    if (page->offset >= TruncPage(offset, ps) && page->offset < offset + length &&
        !page->busy && page->pin_count == 0) {
      victims.push_back(page);
    }
  }
  // Invalidate every victim's mappings first, then sample: the dirty ones
  // go back to the manager in contiguous multi-page runs before anything
  // is freed (invalidation writes back modifications first, §3.4.1).
  std::vector<VmPage*> dirty;
  for (VmPage* page : victims) {
    Pmap::PageProtect(phys_, page->frame, kVmProtNone);
    if (page->dirty || phys_->IsModified(page->frame)) {
      page->dirty = true;
      dirty.push_back(page);
    }
  }
  std::sort(dirty.begin(), dirty.end(),
            [](const VmPage* a, const VmPage* b) { return a->offset < b->offset; });
  if (object->pager.valid()) {
    for (const std::vector<VmPage*>& run : BuildPageoutRuns(std::move(dirty))) {
      // kFailed (unprotected mode) leaves the run unwritten; the victims
      // are discarded below either way, exactly as the per-page path did.
      WritePageoutRun(olk, object, run, /*park_on_failure=*/true);
    }
  }
  for (VmPage* page : victims) {
    PageFreeLocked(olk, page);
  }
  // Acknowledge (memory_object_lock_completed): dirty data, if any, went
  // out above on the same port, so the manager can distinguish "copy was
  // clean" from "flush still in flight" without a timeout.
  if (object->pager.valid()) {
    MsgSend(object->pager,
            EncodePagerLockCompleted(PagerLockCompletedArgs{object->request_send, offset, length}),
            kPoll);
  }
  object->cv.notify_all();
}

void VmSystem::HandleClean(const std::shared_ptr<VmObject>& object, VmOffset offset,
                           VmSize length) {
  const VmSize ps = page_size();
  ObjectLock olk(object->mu);
  if (!object->alive) {
    return;
  }
  std::vector<VmPage*> dirty;
  for (VmPage* page : object->pages) {
    if (page->offset < TruncPage(offset, ps) || page->offset >= offset + length ||
        page->busy || page->pin_count > 0) {
      continue;
    }
    // Write-protect before sampling so no modification slips past the copy.
    Pmap::PageProtect(phys_, page->frame, kVmProtRead | kVmProtExecute);
    if (page->dirty || phys_->IsModified(page->frame)) {
      dirty.push_back(page);
    }
  }
  std::sort(dirty.begin(), dirty.end(),
            [](const VmPage* a, const VmPage* b) { return a->offset < b->offset; });
  if (object->pager.valid()) {
    for (const std::vector<VmPage*>& run : BuildPageoutRuns(std::move(dirty))) {
      if (WritePageoutRun(olk, object, run, /*park_on_failure=*/false) ==
          RunWriteResult::kWritten) {
        for (VmPage* page : run) {
          page->dirty = false;
          phys_->ClearModify(page->frame);
        }
      }
      // On failure the run's pages simply stay dirty; pageout retries later.
    }
  }
  if (object->pager.valid()) {
    MsgSend(object->pager,
            EncodePagerLockCompleted(PagerLockCompletedArgs{object->request_send, offset, length}),
            kPoll);
  }
  object->cv.notify_all();
}

void VmSystem::HandleCache(const std::shared_ptr<VmObject>& object, bool may_cache) {
  ChainLock chain(chain_mu_);
  object->can_persist = may_cache;
  if (!may_cache && object->cached) {
    // Permission rescinded after the object went idle: terminate now.
    TerminateObject(chain, object);
  }
}

void VmSystem::HandlePagerDeath(ChainLock& chain, std::shared_ptr<VmObject> object) {
  const bool zero_fill = config_.on_pager_timeout == Config::OnPagerTimeout::kZeroFill;
  if (zero_fill && object->cached) {
    // A §3.4.1 cache entry has no map references: the pager registries are
    // the only thing keeping it alive, so the severing below would drop
    // the last reference to an object that still owns resident pages —
    // and nothing could ever map the re-homed internal object anyway.
    // Terminate instead; the dead pager takes no write-backs, so the
    // cached copies are simply discarded.
    counters_.manager_deaths.fetch_add(1, std::memory_order_relaxed);
    TerminateObject(chain, object);
    return;
  }
  ObjectLock olk(object->mu);
  if (!object->alive) {
    return;
  }
  counters_.manager_deaths.fetch_add(1, std::memory_order_relaxed);
  for (VmPage* page : object->pages) {
    if (page->busy && page->absent) {
      // In-flight placeholder: the requested data can never arrive. Resolve
      // it under the same §6.2.1 policy a timeout would apply, but now.
      // (Settling another thread's busy page is the documented exception to
      // busy ownership: the owner only ever observes the settled state.)
      if (zero_fill) {
        phys_->ZeroFrame(page->frame);
        phys_->ClearModify(page->frame);
        phys_->ClearReference(page->frame);
        page->busy = false;
        page->absent = false;
        page->unavailable = false;
        page->dirty = true;  // No backing copy of the zeroes exists.
        PageActivateDeferred(page);  // Stable: olk held until the flush.
        counters_.zero_fill_count.fetch_add(1, std::memory_order_relaxed);
      } else {
        page->error = true;
        page->busy = false;
        page->absent = false;
      }
      counters_.death_resolved_pages.fetch_add(1, std::memory_order_relaxed);
    }
    // A dead manager can never answer pager_data_unlock: lift its locks.
    page->page_lock = kVmProtNone;
    page->unlock_pending = false;
  }
  FlushQueueBatch();
  if (zero_fill) {
    // Sever the association with the dead manager cleanly. The object
    // lives on as an internal one: future non-resident faults zero-fill,
    // and future pageouts re-home it with the default pager.
    if (object->pager.valid()) {
      objects_by_pager_.erase(object->pager.id());
    }
    if (object->request_receive.valid()) {
      objects_by_request_.erase(object->request_receive.id());
      pager_requests_->Remove(object->request_receive);
    }
    object->pager = SendRight();
    object->request_send = SendRight();
    object->name_send = SendRight();
    object->request_receive.Destroy();
    object->name_receive.Destroy();
    object->internal = true;
    object->pager_initialized = false;
    // Whatever the dead manager held is gone; a later re-homing with the
    // default pager must not inherit phantom coverage. (Parked offsets stay:
    // the parking store keys by the stable object id and still has the data.)
    object->paged_offsets.clear();
  }
  // Under kError the registries keep the dead pager right: resident error
  // pages answer kMemoryError, and future faults on non-resident pages hit
  // the pager.IsDead() fast path in ResolvePage (kMemoryFailure).
  object->cv.notify_all();
}

}  // namespace mach
