// The fault handler (§5.5): validity and protection, page lookup through
// the shadow chain, copy-on-write, data-manager interaction
// (pager_data_request / pager_data_unlock) and hardware validation.

#include <cassert>
#include <chrono>
#include <cstring>

#include "src/base/log.h"
#include "src/pager/protocol.h"
#include "src/vm/vm_system.h"

namespace mach {

namespace {
using SteadyClock = std::chrono::steady_clock;
}  // namespace

Result<VmSystem::ResolvedEntry> VmSystem::ResolveEntry(TaskVm& task, VmOffset addr,
                                                       VmProt access) {
  ResolvedEntry out;
  out.top = task.map->Lookup(addr);
  if (out.top == nullptr) {
    return KernReturn::kInvalidAddress;
  }
  if ((access & ~out.top->protection) != 0) {
    return KernReturn::kProtectionFailure;
  }
  VmOffset local;
  if (out.top->is_share) {
    VmOffset share_addr = out.top->offset + (addr - out.top->start);
    out.holder = out.top->share_map->Lookup(share_addr);
    if (out.holder == nullptr) {
      return KernReturn::kInvalidAddress;
    }
    local = share_addr - out.holder->start;
  } else {
    out.holder = out.top;
    local = addr - out.top->start;
  }
  if (out.holder->object == nullptr) {
    // Zero-filled-on-demand region: create the backing object lazily.
    out.holder->object = CreateInternalObject(out.holder->size());
    ObjectRef(out.holder->object);
  }
  if (out.holder->needs_copy && (access & kVmProtWrite) != 0) {
    // Copy-on-write: shadow before the first write (§5.5).
    MakeShadow(out.holder);
  }
  out.object_offset = out.holder->offset + local;
  return out;
}

bool VmSystem::WaitForPage(KernelLock& lock) {
  // Short slice; callers loop against their own deadline.
  page_cv_.wait_for(lock, std::chrono::milliseconds(20));
  return true;
}

KernReturn VmSystem::RequestDataFromPager(KernelLock& lock,
                                          const std::shared_ptr<VmObject>& object,
                                          VmOffset offset, VmProt access) {
  PagerDataRequestArgs args;
  args.pager_request_port = object->request_send;
  args.offset = offset;
  args.length = page_size();
  args.desired_access = access;
  Message msg = EncodePagerDataRequest(args);
  SendRight pager = object->pager;
  // A manager whose queue stays full for the whole fault-wait budget is an
  // unresponsive manager (§6.1): bound the send by the same policy timeout.
  Timeout send_timeout = std::chrono::milliseconds(2000);
  if (config_.pager_timeout.has_value() && *config_.pager_timeout < *send_timeout) {
    send_timeout = config_.pager_timeout;
  }
  lock.unlock();
  KernReturn kr = MsgSend(pager, std::move(msg), send_timeout);
  lock.lock();
  return kr;
}

KernReturn VmSystem::RequestUnlockFromPager(KernelLock& lock,
                                            const std::shared_ptr<VmObject>& object,
                                            VmPage* page, VmProt access) {
  if (page->unlock_pending) {
    return KernReturn::kSuccess;  // Already asked; just wait.
  }
  page->unlock_pending = true;
  ++stats_.unlock_requests;
  PagerDataUnlockArgs args;
  args.pager_request_port = object->request_send;
  args.offset = page->offset;
  args.length = page_size();
  args.desired_access = access;
  Message msg = EncodePagerDataUnlock(args);
  SendRight pager = object->pager;
  lock.unlock();
  KernReturn kr = MsgSend(pager, std::move(msg), std::chrono::milliseconds(2000));
  lock.lock();
  return kr;
}

Result<VmSystem::PageResolution> VmSystem::ResolvePage(KernelLock& lock,
                                                       std::shared_ptr<VmObject> first_object,
                                                       VmOffset first_offset, VmProt fault_type) {
  assert(first_offset % page_size() == 0);
  // Fast path: the top object already holds a settled page and no manager
  // lock blocks the access — return it without computing the pager deadline
  // or entering the chain walk. Shadow-chain collapse funnels long-lived
  // fork survivors into this path by keeping their pages in the top object.
  if (VmPage* page = PageLookup(first_object.get(), first_offset);
      page != nullptr && !page->busy && !page->absent && !page->error &&
      !page->unavailable && (fault_type & page->page_lock) == 0) {
    ++stats_.fast_faults;
    return PageResolution{page, false};
  }
  // Deadline for data-manager interactions (§6.2.1 failure options).
  SteadyClock::time_point deadline = SteadyClock::time_point::max();
  if (config_.pager_timeout.has_value()) {
    deadline = SteadyClock::now() + *config_.pager_timeout;
  }

  for (;;) {
    std::shared_ptr<VmObject> object = first_object;
    VmOffset offset = first_offset;
    uint64_t depth = 1;
    bool rescan = false;
    while (!rescan) {
      VmPage* page = PageLookup(object.get(), offset);
      if (page != nullptr) {
        if (page->busy) {
          // In transit on behalf of another thread; wait and rescan.
          WaitForPage(lock);
          if (SteadyClock::now() >= deadline) {
            return KernReturn::kMemoryFailure;
          }
          rescan = true;
          continue;
        }
        if (page->error) {
          return KernReturn::kMemoryError;
        }
        if (page->unavailable) {
          // The data manager has no data for this page: copy from the
          // shadow if there is one, else fill with zeros (footnote 6).
          if (object->shadow != nullptr) {
            page->busy = true;  // Pin our placeholder across the recursion.
            Result<PageResolution> backing =
                ResolvePage(lock, object->shadow, offset + object->shadow_offset, kVmProtRead);
            page->busy = false;
            page_cv_.notify_all();
            if (!backing.ok()) {
              page->error = true;
              return backing.status();
            }
            phys_->CopyFrame(backing.value().page->frame, page->frame);
          } else {
            phys_->ZeroFrame(page->frame);
            ++stats_.zero_fill_count;
          }
          page->unavailable = false;
          page->absent = false;
          page_cv_.notify_all();
        }
        if (object == first_object) {
          // Found in the top object. Honour any data-manager lock.
          if ((fault_type & page->page_lock) != 0 && object->pager.valid()) {
            KernReturn kr = RequestUnlockFromPager(lock, object, page, fault_type);
            if (!IsOk(kr) && kr != KernReturn::kSuccess) {
              return KernReturn::kMemoryFailure;
            }
            WaitForPage(lock);
            if (SteadyClock::now() >= deadline) {
              return KernReturn::kMemoryFailure;
            }
            rescan = true;
            continue;
          }
          return PageResolution{page, false};
        }
        // Found in a backing (shadow ancestor) object.
        if ((fault_type & kVmProtWrite) != 0) {
          // Copy-on-write: push a private copy into the top object.
          Result<VmPage*> np = PageAlloc(lock, first_object.get(), first_offset);
          if (!np.ok()) {
            if (np.status() == KernReturn::kMemoryPresent) {
              rescan = true;  // Another thread won the slot; use its page.
              continue;
            }
            return np.status();
          }
          // PageAlloc may have dropped the lock while reclaiming; the
          // backing page could have moved. Re-validate.
          VmPage* backing = PageLookup(object.get(), offset);
          if (backing == nullptr || backing->busy) {
            PageFree(np.value());
            rescan = true;
            continue;
          }
          phys_->CopyFrame(backing->frame, np.value()->frame);
          np.value()->dirty = true;
          ++stats_.cow_faults;
          return PageResolution{np.value(), false};
        }
        return PageResolution{page, true};
      }

      // Not resident in `object`.
      if (object->pager.valid()) {
        // §6.2.2: data parked with the default pager takes precedence over
        // asking the (possibly errant) manager.
        auto parked = object->parked_offsets.find(offset);
        if (parked != object->parked_offsets.end() && parking_ != nullptr) {
          std::optional<std::vector<std::byte>> data = parking_->Unpark(object->id(), offset);
          object->parked_offsets.erase(parked);
          if (data.has_value()) {
            Result<VmPage*> np = PageAlloc(lock, object.get(), offset);
            if (!np.ok()) {
              if (np.status() == KernReturn::kMemoryPresent) {
                // A page appeared at this slot while reclaiming; keep the
                // unparked bytes safe and use the resident copy.
                object->parked_offsets[offset] = true;
                parking_->Park(object->id(), offset, std::move(*data));
                rescan = true;
                continue;
              }
              return np.status();
            }
            VmSize n = std::min<VmSize>(data->size(), page_size());
            phys_->WriteFrame(np.value()->frame, 0, data->data(), n);
            np.value()->dirty = true;  // Never reached its manager.
            rescan = true;  // Rescan finds it resident.
            continue;
          }
        }
        if (object->pager.IsDead()) {
          // Destruction of a memory object by the data manager aborts
          // requests in progress (§6.2.1).
          if (config_.on_pager_timeout == Config::OnPagerTimeout::kZeroFill) {
            Result<VmPage*> np = PageAlloc(lock, object.get(), offset);
            if (!np.ok()) {
              if (np.status() == KernReturn::kMemoryPresent) {
                rescan = true;
                continue;
              }
              return np.status();
            }
            phys_->ZeroFrame(np.value()->frame);
            ++stats_.zero_fill_count;
            rescan = true;
            continue;
          }
          return KernReturn::kMemoryFailure;
        }
        // Cache miss: allocate a placeholder and issue pager_data_request.
        Result<VmPage*> np = PageAlloc(lock, object.get(), offset);
        if (!np.ok()) {
          if (np.status() == KernReturn::kMemoryPresent) {
            rescan = true;
            continue;
          }
          return np.status();
        }
        VmPage* placeholder = np.value();
        placeholder->busy = true;
        placeholder->absent = true;
        KernReturn kr = RequestDataFromPager(lock, object, offset, fault_type);
        // The lock was dropped during the send: re-find our placeholder.
        placeholder = PageLookup(object.get(), offset);
        if (placeholder == nullptr || !placeholder->absent) {
          rescan = true;  // Filled (or vanished) already.
          continue;
        }
        if (!IsOk(kr)) {
          PageFree(placeholder);
          if (config_.on_pager_timeout == Config::OnPagerTimeout::kZeroFill) {
            // Treat an unreachable manager per the timeout policy.
            Result<VmPage*> zp = PageAlloc(lock, object.get(), offset);
            if (!zp.ok()) {
              if (zp.status() == KernReturn::kMemoryPresent) {
                rescan = true;
                continue;
              }
              return zp.status();
            }
            phys_->ZeroFrame(zp.value()->frame);
            ++stats_.zero_fill_count;
            rescan = true;
            continue;
          }
          return KernReturn::kMemoryFailure;
        }
        // Wait for pager_data_provided / pager_data_unavailable.
        for (;;) {
          placeholder = PageLookup(object.get(), offset);
          if (placeholder == nullptr || !placeholder->absent || placeholder->unavailable ||
              placeholder->error) {
            break;
          }
          if (SteadyClock::now() >= deadline) {
            // §6.2.1: a timeout may abort the memory request. Either fail
            // the fault or substitute zero-filled memory.
            if (config_.on_pager_timeout == Config::OnPagerTimeout::kZeroFill) {
              phys_->ZeroFrame(placeholder->frame);
              placeholder->busy = false;
              placeholder->absent = false;
              placeholder->dirty = true;  // Not backed by the manager.
              ++stats_.zero_fill_count;
              page_cv_.notify_all();
              break;
            }
            PageFree(placeholder);
            page_cv_.notify_all();
            return KernReturn::kMemoryFailure;
          }
          WaitForPage(lock);
        }
        rescan = true;
        continue;
      }
      if (object->shadow != nullptr) {
        offset += object->shadow_offset;
        object = object->shadow;
        ++depth;
        // Skip pageless intermediates without per-object hash probes: an
        // object with no resident pages and no pager cannot resolve any
        // offset itself.
        while (object->resident_count == 0 && !object->pager.valid() &&
               object->shadow != nullptr) {
          offset += object->shadow_offset;
          object = object->shadow;
          ++depth;
        }
        if (depth > stats_.chain_depth_max) {
          stats_.chain_depth_max = depth;
        }
        continue;
      }
      // Nothing anywhere in the chain: zero-fill in the *top* object so the
      // page is private to this mapping chain.
      Result<VmPage*> np = PageAlloc(lock, first_object.get(), first_offset);
      if (!np.ok()) {
        if (np.status() == KernReturn::kMemoryPresent) {
          rescan = true;
          continue;
        }
        return np.status();
      }
      phys_->ZeroFrame(np.value()->frame);
      ++stats_.zero_fill_count;
      return PageResolution{np.value(), false};
    }
  }
}

KernReturn VmSystem::Fault(TaskVm& task, VmOffset addr, VmProt access) {
  const VmOffset page_addr = TruncPage(addr, page_size());
  KernelLock lock(mu_);
  DrainDeferredReleases(lock);
  for (int attempt = 0; attempt < 64; ++attempt) {
    Result<ResolvedEntry> re = ResolveEntry(task, page_addr, access);
    if (!re.ok()) {
      return re.status();
    }
    std::shared_ptr<VmObject> object = re.value().holder->object;
    const VmOffset object_offset = TruncPage(re.value().object_offset, page_size());

    Result<PageResolution> rp = ResolvePage(lock, object, object_offset, access);
    if (!rp.ok()) {
      return rp.status();
    }
    // The lock may have been dropped inside ResolvePage; re-validate that
    // the map still leads to the same object before installing hardware
    // state (Mach used map timestamps for the same purpose).
    Result<ResolvedEntry> re2 = ResolveEntry(task, page_addr, access);
    if (!re2.ok()) {
      return re2.status();
    }
    if (re2.value().holder->object != object ||
        TruncPage(re2.value().object_offset, page_size()) != object_offset) {
      continue;  // The world changed; redo the fault.
    }
    VmPage* page = rp.value().page;
    VmProt prot = re2.value().top->protection;
    if (rp.value().from_backing || re2.value().holder->needs_copy) {
      prot &= ~kVmProtWrite;  // Copy still pending.
    }
    prot &= ~page->page_lock;
    if ((access & ~prot) != 0) {
      continue;  // e.g. a new manager lock raced in; redo.
    }
    task.pmap->Enter(page_addr, page->frame, prot);
    PageActivate(page);
    ++stats_.faults;
    // Opportunistic collapse, gated on checks that are O(1) per fault: a
    // shadow whose sole remaining reference is our pointer (a dying fork
    // chain), or a top object that now covers every one of its own pages
    // (the last pending copy-on-write just completed).
    if (object->shadow != nullptr &&
        (object->shadow->map_refs == 1 ||
         (!object->pager.valid() &&
          uint64_t{object->resident_count} * page_size() >= object->size()))) {
      TryCollapse(lock, object);
    }
    return KernReturn::kSuccess;
  }
  return KernReturn::kFailure;
}

KernReturn VmSystem::UserAccess(TaskVm& task, VmOffset addr, void* buf, VmSize len,
                                bool is_write) {
  auto* bytes = static_cast<std::byte*>(buf);
  const VmSize ps = page_size();
  while (len > 0) {
    VmOffset page_addr = TruncPage(addr, ps);
    VmSize chunk = std::min<VmSize>(len, page_addr + ps - addr);
    // Hardware fast path; kernel fault on miss, then retry (bounded: the
    // pageout daemon may steal the page between fault and access).
    int tries = 0;
    for (;;) {
      Pmap::AccessResult ar = task.pmap->Access(addr, bytes, chunk, is_write);
      if (ar.fault == Pmap::FaultKind::kNone) {
        break;
      }
      KernReturn kr = Fault(task, ar.fault_addr, is_write ? kVmProtWrite : kVmProtRead);
      if (!IsOk(kr)) {
        return kr;
      }
      if (++tries > 100) {
        return KernReturn::kFailure;
      }
    }
    addr += chunk;
    bytes += chunk;
    len -= chunk;
  }
  return KernReturn::kSuccess;
}

KernReturn VmSystem::ReadMemory(TaskVm& task, VmOffset addr, void* buf, VmSize len) {
  // vm_read: kernel-mediated, faults pages in via the object layer without
  // touching the task's pmap.
  auto* out = static_cast<std::byte*>(buf);
  const VmSize ps = page_size();
  while (len > 0) {
    VmOffset page_addr = TruncPage(addr, ps);
    VmSize chunk = std::min<VmSize>(len, page_addr + ps - addr);
    KernelLock lock(mu_);
    Result<ResolvedEntry> re = ResolveEntry(task, page_addr, kVmProtRead);
    if (!re.ok()) {
      return re.status();
    }
    std::shared_ptr<VmObject> object = re.value().holder->object;
    VmOffset object_offset = TruncPage(re.value().object_offset, ps);
    Result<PageResolution> rp = ResolvePage(lock, object, object_offset, kVmProtRead);
    if (!rp.ok()) {
      return rp.status();
    }
    phys_->ReadFrame(rp.value().page->frame, addr - page_addr, out, chunk);
    PageActivate(rp.value().page);
    addr += chunk;
    out += chunk;
    len -= chunk;
  }
  return KernReturn::kSuccess;
}

KernReturn VmSystem::WriteMemory(TaskVm& task, VmOffset addr, const void* buf, VmSize len) {
  const auto* in = static_cast<const std::byte*>(buf);
  const VmSize ps = page_size();
  while (len > 0) {
    VmOffset page_addr = TruncPage(addr, ps);
    VmSize chunk = std::min<VmSize>(len, page_addr + ps - addr);
    KernelLock lock(mu_);
    Result<ResolvedEntry> re = ResolveEntry(task, page_addr, kVmProtWrite);
    if (!re.ok()) {
      return re.status();
    }
    std::shared_ptr<VmObject> object = re.value().holder->object;
    VmOffset object_offset = TruncPage(re.value().object_offset, ps);
    Result<PageResolution> rp = ResolvePage(lock, object, object_offset, kVmProtWrite);
    if (!rp.ok()) {
      return rp.status();
    }
    VmPage* page = rp.value().page;
    if ((kVmProtWrite & page->page_lock) != 0 && object->pager.valid()) {
      // Honour manager locks on the kernel write path too.
      KernReturn kr = RequestUnlockFromPager(lock, object, page, kVmProtWrite);
      if (!IsOk(kr)) {
        return KernReturn::kMemoryFailure;
      }
      WaitForPage(lock);
      continue;  // Retry this chunk.
    }
    phys_->WriteFrame(page->frame, addr - page_addr, in, chunk);
    page->dirty = true;
    PageActivate(page);
    addr += chunk;
    in += chunk;
    len -= chunk;
  }
  return KernReturn::kSuccess;
}

KernReturn VmSystem::Copy(TaskVm& task, VmOffset src, VmSize size, VmOffset dst) {
  if (size == 0 || src % page_size() != 0 || dst % page_size() != 0 ||
      size % page_size() != 0) {
    return KernReturn::kInvalidArgument;
  }
  Result<std::shared_ptr<VmMapCopy>> copy = CopyIn(task, src, size);
  if (!copy.ok()) {
    return copy.status();
  }
  KernelLock lock(mu_);
  // vm_copy overwrites an existing destination region.
  if (!task.map->RangeFullyCovered(dst, size)) {
    return KernReturn::kInvalidAddress;
  }
  std::vector<MapEntry> removed = task.map->RemoveRange(dst, dst + size);
  for (MapEntry& entry : removed) {
    task.pmap->Remove(entry.start, entry.end);
    ReleaseEntry(lock, std::move(entry));
  }
  VmOffset cursor = dst;
  for (VmMapCopy::Segment& seg : copy.value()->segments()) {
    MapEntry entry;
    entry.start = cursor;
    entry.end = cursor + seg.size;
    if (seg.object != nullptr) {
      entry.object = std::move(seg.object);
      entry.offset = seg.offset;
      entry.needs_copy = true;
    }
    cursor += seg.size;
    task.map->Insert(std::move(entry));
  }
  copy.value()->segments().clear();
  return KernReturn::kSuccess;
}

Result<std::shared_ptr<VmMapCopy>> VmSystem::CopyFromBytes(const void* data, VmSize size) {
  if (size == 0) {
    return KernReturn::kInvalidArgument;
  }
  const VmSize ps = page_size();
  const VmSize rounded = RoundPage(size, ps);
  KernelLock lock(mu_);
  std::shared_ptr<VmObject> object = CreateInternalObject(rounded);
  const auto* in = static_cast<const std::byte*>(data);
  for (VmOffset off = 0; off < rounded; off += ps) {
    Result<VmPage*> np = PageAlloc(lock, object.get(), off);
    if (!np.ok()) {
      object->pages.ForEach([&](VmPage* page) { PageFree(page); });
      return np.status();
    }
    VmSize n = off < size ? std::min<VmSize>(ps, size - off) : 0;
    if (n < ps) {
      phys_->ZeroFrame(np.value()->frame);
    }
    if (n > 0) {
      phys_->WriteFrame(np.value()->frame, 0, in + off, n);
    }
    np.value()->dirty = true;  // No backing store yet.
    PageActivate(np.value());
  }
  auto copy = std::make_shared<VmMapCopy>(this, rounded);
  VmMapCopy::Segment seg;
  seg.object = object;
  seg.offset = 0;
  seg.size = rounded;
  ObjectRef(object);
  copy->segments().push_back(std::move(seg));
  return copy;
}

Result<std::vector<std::byte>> VmSystem::CopyAsBytes(const std::shared_ptr<VmMapCopy>& copy) {
  if (copy == nullptr || copy->system() != this) {
    return KernReturn::kInvalidArgument;
  }
  std::vector<std::byte> out(copy->size());
  VmSize cursor = 0;
  KernelLock lock(mu_);
  for (const VmMapCopy::Segment& seg : copy->segments()) {
    if (seg.object == nullptr) {
      cursor += seg.size;  // Zero region; `out` is zero-initialised.
      continue;
    }
    for (VmOffset off = 0; off < seg.size; off += page_size()) {
      Result<PageResolution> rp =
          ResolvePage(lock, seg.object, TruncPage(seg.offset + off, page_size()), kVmProtRead);
      if (!rp.ok()) {
        return rp.status();
      }
      VmSize n = std::min<VmSize>(page_size(), seg.size - off);
      phys_->ReadFrame(rp.value().page->frame, 0, out.data() + cursor + off, n);
    }
    cursor += seg.size;
  }
  return out;
}

}  // namespace mach
