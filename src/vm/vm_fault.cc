// The fault handler (§5.5): validity and protection, page lookup through
// the shadow chain, copy-on-write, data-manager interaction
// (pager_data_request / pager_data_unlock) and hardware validation.
//
// Concurrency shape (see the lock-order comment in vm_system.h): a fault
// resolves its map entry under the map lock(s) taken *shared*, walks the
// shadow chain under per-object locks taken hand over hand (child before
// parent), and installs the frame into the pmap under the map shared lock
// while holding only a pin on the page. Waits for busy pages block on the
// owning object's condition variable — targeted wakeups, not a global poll.

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>
#include <vector>

#include "src/base/lock_probe.h"
#include "src/base/log.h"
#include "src/pager/protocol.h"
#include "src/vm/vm_system.h"

namespace mach {

namespace {
using SteadyClock = std::chrono::steady_clock;

// Accumulates the VM-tier lock acquisitions made on this thread during the
// enclosing scope (one fault) into the given counter, on every exit path.
struct LockOpScope {
  explicit LockOpScope(std::atomic<uint64_t>& target)
      : target_(target), entry_(lock_probe::Count()) {}
  ~LockOpScope() {
    target_.fetch_add(lock_probe::Count() - entry_, std::memory_order_relaxed);
  }
  std::atomic<uint64_t>& target_;
  uint64_t entry_;
};
}  // namespace

// --- entry resolution -------------------------------------------------------

Result<VmSystem::EntryRef> VmSystem::LookupEntry(TaskVm& task, VmOffset addr, VmProt access) {
  EntryRef out;
  out.top = task.map->Lookup(addr);
  if (out.top == nullptr) {
    return KernReturn::kInvalidAddress;
  }
  if ((access & ~out.top->protection) != 0) {
    return KernReturn::kProtectionFailure;
  }
  VmOffset local;
  if (out.top->is_share) {
    VmOffset share_addr = out.top->offset + (addr - out.top->start);
    lock_probe::Note();
    out.share_lock = std::shared_lock<std::shared_mutex>(out.top->share_map->lock());
    out.holder = out.top->share_map->Lookup(share_addr);
    if (out.holder == nullptr) {
      return KernReturn::kInvalidAddress;
    }
    local = share_addr - out.holder->start;
  } else {
    out.holder = out.top;
    local = addr - out.top->start;
  }
  if (out.holder->object == nullptr ||
      (out.holder->needs_copy && (access & kVmProtWrite) != 0)) {
    // Lazy zero-fill object creation or a copy-on-write shadow push is
    // needed; both mutate the entry, so the caller must run PrepareEntry
    // under exclusive locks and retry.
    out.needs_prepare = true;
  }
  out.object_offset = out.holder->offset + local;
  return out;
}

KernReturn VmSystem::PrepareEntry(TaskVm& task, VmOffset addr, VmProt access) {
  lock_probe::Note();
  MapMutation map_lock(*task.map);
  MapEntry* top = task.map->Lookup(addr);
  if (top == nullptr) {
    return KernReturn::kInvalidAddress;
  }
  if ((access & ~top->protection) != 0) {
    return KernReturn::kProtectionFailure;
  }
  MapEntry* holder = top;
  std::unique_lock<std::shared_mutex> share_lock;
  if (top->is_share) {
    VmOffset share_addr = top->offset + (addr - top->start);
    lock_probe::Note();
    share_lock = std::unique_lock<std::shared_mutex>(top->share_map->lock());
    holder = top->share_map->Lookup(share_addr);
    if (holder == nullptr) {
      return KernReturn::kInvalidAddress;
    }
  }
  if (holder->object == nullptr) {
    // Zero-filled-on-demand region: create the backing object lazily.
    holder->object = CreateInternalObject(holder->size());
    ObjectRef(holder->object);
  }
  if (holder->needs_copy && (access & kVmProtWrite) != 0) {
    // Copy-on-write: shadow before the first write (§5.5). The chain lock
    // guards the shadow_children back-pointer update.
    lock_probe::Note();
    ChainLock chain(chain_mu_);
    MakeShadow(chain, holder);
  }
  return KernReturn::kSuccess;
}

// --- adaptive fault-ahead ---------------------------------------------------

uint32_t VmSystem::ComputeFaultAheadWindow(MapEntry* holder, VmOffset object_offset) {
  if (!config_.fault_ahead || config_.fault_ahead_max <= 1) {
    return 1;
  }
  const VmSize ps = page_size();
  const uint64_t page_no = object_offset / ps;
  const uint64_t prev = holder->fault_ahead.word.load(std::memory_order_relaxed);
  const uint64_t expected = prev & FaultAheadState::kPageMask;  // page+1; 0 = none.
  const uint32_t prev_win =
      static_cast<uint32_t>(prev >> FaultAheadState::kWindowShift);
  uint32_t win = 1;
  if (expected != 0 && page_no + 1 == expected) {
    // This miss landed exactly where the last run ended: a sequential
    // streak. Double the window. A truncated run (neighbour was resident,
    // entry boundary, frame shortage) makes the next miss arrive early and
    // reads as random — conservative, the streak just restarts.
    win = std::min(std::max(prev_win, 1u) * 2, config_.fault_ahead_max);
  }
  // Never let a run cross the mapping: clamp to the entry's remaining
  // object-coordinate range. Shm hash-stripe entries rely on this to keep a
  // run inside one shard's stripe.
  const uint64_t entry_pages_left =
      (holder->offset + holder->size() - object_offset) / ps;
  win = static_cast<uint32_t>(
      std::min<uint64_t>(win, std::max<uint64_t>(entry_pages_left, 1)));
  holder->fault_ahead.word.store(
      ((page_no + win + 1) & FaultAheadState::kPageMask) |
          (uint64_t{win} << FaultAheadState::kWindowShift),
      std::memory_order_relaxed);
  return win;
}

// --- pins -------------------------------------------------------------------

VmSystem::PagePin VmSystem::MakePinLocked(ObjectLock& olk, std::shared_ptr<VmObject> owner,
                                          VmPage* page, bool from_backing) {
  (void)olk;
  ++page->pin_count;
  PagePin pin;
  pin.owner = std::move(owner);
  pin.page = page;
  pin.from_backing = from_backing;
  pin.page_lock = page->page_lock;
  return pin;
}

void VmSystem::UnpinPage(PagePin& pin) {
  if (pin.page == nullptr) {
    return;
  }
  lock_probe::Note();
  ObjectLock olk(pin.owner->mu);
  VmPage* page = pin.page;
  assert(page->pin_count > 0);
  --page->pin_count;
  if (page->pin_count == 0 && !pin.owner->alive) {
    // The object died while we held the pin; the page was orphaned
    // (TerminateObject skips pinned pages) and we are the last holder.
    PageFreeLocked(olk, page);
  } else if (page->page_lock != pin.page_lock) {
    // A manager lock raced with our pmap install: the frame may now be
    // mapped with more access than the lock allows. Re-clamp every mapping.
    Pmap::PageProtect(phys_, page->frame, kVmProtAll & ~page->page_lock);
  }
  pin.page = nullptr;
  pin.owner->cv.notify_all();
  pin.owner.reset();
}

void VmSystem::UnpinRaw(const std::shared_ptr<VmObject>& owner, VmPage* page) {
  lock_probe::Note();
  ObjectLock olk(owner->mu);
  assert(page->pin_count > 0);
  --page->pin_count;
  if (page->pin_count == 0 && !owner->alive) {
    PageFreeLocked(olk, page);
  }
  owner->cv.notify_all();
}

// --- pager interaction ------------------------------------------------------

bool VmSystem::WaitForPage(ObjectLock& olk, VmObject* object,
                           SteadyClock::time_point deadline) {
  // Bounded slice so a lost race (the notifying thread fired before we
  // blocked) costs one slice, not the whole fault budget.
  SteadyClock::time_point slice = SteadyClock::now() + std::chrono::milliseconds(100);
  object->cv.wait_until(olk, std::min(slice, deadline));
  return SteadyClock::now() < deadline;
}

KernReturn VmSystem::RequestDataFromPager(ObjectLock& olk,
                                          const std::shared_ptr<VmObject>& object,
                                          VmOffset offset, VmSize length, VmProt access) {
  PagerDataRequestArgs args;
  args.pager_request_port = object->request_send;
  args.offset = offset;
  args.length = length;
  args.desired_access = access;
  Message msg = EncodePagerDataRequest(args);
  SendRight pager = object->pager;
  // A manager whose queue stays full for the whole fault-wait budget is an
  // unresponsive manager (§6.1): bound the send by the same policy timeout.
  Timeout send_timeout = std::chrono::milliseconds(2000);
  if (config_.pager_timeout.has_value() && *config_.pager_timeout < *send_timeout) {
    send_timeout = config_.pager_timeout;
  }
  ScopedUnlock unlock(olk);
  return MsgSend(pager, std::move(msg), send_timeout);
}

KernReturn VmSystem::RequestUnlockFromPager(ObjectLock& olk,
                                            const std::shared_ptr<VmObject>& object,
                                            VmPage* page, VmProt access) {
  if (page->unlock_pending) {
    return KernReturn::kSuccess;  // Already asked; just wait.
  }
  page->unlock_pending = true;
  counters_.unlock_requests.fetch_add(1, std::memory_order_relaxed);
  PagerDataUnlockArgs args;
  args.pager_request_port = object->request_send;
  args.offset = page->offset;
  args.length = page_size();
  args.desired_access = access;
  Message msg = EncodePagerDataUnlock(args);
  SendRight pager = object->pager;
  ScopedUnlock unlock(olk);
  return MsgSend(pager, std::move(msg), std::chrono::milliseconds(2000));
}

// --- the page walk ----------------------------------------------------------

Result<VmSystem::PagePin> VmSystem::ResolvePage(std::shared_ptr<VmObject> first_object,
                                                VmOffset first_offset, VmProt fault_type,
                                                uint32_t fa_window) {
  assert(first_offset % page_size() == 0);
  // Deadline for data-manager interactions (§6.2.1 failure options).
  SteadyClock::time_point deadline = SteadyClock::time_point::max();
  if (config_.pager_timeout.has_value()) {
    deadline = SteadyClock::now() + *config_.pager_timeout;
  }

  bool first_probe = true;
  int shortage_rounds = 0;
  for (;;) {  // Each iteration is one full rescan from the top object.
    std::shared_ptr<VmObject> object = first_object;
    VmOffset offset = first_offset;
    uint64_t depth = 1;
    lock_probe::Note();
    ObjectLock olk(object->mu);
    bool rescan = false;
    bool need_frames = false;
    while (!rescan && !need_frames) {
      // Invariant here: olk holds object->mu.
      VmPage* page = PageLookup(object.get(), offset);
      if (page != nullptr) {
        // A faulting thread has reached this page: whatever happens next
        // (wait, settle, pin), the speculation paid off.
        page->readahead = false;
        if (page->busy) {
          // In transit on behalf of another thread; wait for a state change
          // and rescan from the top (the pointer may dangle after a wake —
          // the owning thread may have freed or renamed it).
          if (!WaitForPage(olk, object.get(), deadline)) {
            return KernReturn::kMemoryFailure;
          }
          if (VmPage* p2 = PageLookup(object.get(), offset); p2 != nullptr && p2->busy) {
            counters_.spurious_page_wakeups.fetch_add(1, std::memory_order_relaxed);
          }
          rescan = true;
          continue;
        }
        if (page->error) {
          return KernReturn::kMemoryError;
        }
        if (page->unavailable) {
          // The data manager has no data for this page: copy from the
          // shadow if there is one, else fill with zeros (footnote 6).
          if (object->shadow != nullptr) {
            page->busy = true;  // Own the placeholder across the recursion.
            std::shared_ptr<VmObject> backing_obj = object->shadow;
            VmOffset backing_off = offset + object->shadow_offset;
            Result<PagePin> backing = KernReturn::kFailure;
            {
              ScopedUnlock unlock(olk);
              backing = ResolvePage(backing_obj, backing_off, kVmProtRead);
            }
            // We own the busy placeholder: even on failure, we must settle
            // it ourselves (nobody else may touch a busy page).
            if (!object->alive) {
              if (backing.ok()) {
                UnpinPage(backing.value());
              }
              PageFreeLocked(olk, page);
              object->cv.notify_all();
              return KernReturn::kMemoryFailure;
            }
            if (!backing.ok()) {
              page->busy = false;
              page->error = true;
              object->cv.notify_all();
              return backing.status();
            }
            phys_->CopyFrame(backing.value().page->frame, page->frame);
            UnpinPage(backing.value());
            page->busy = false;
          } else {
            phys_->ZeroFrame(page->frame);
            counters_.zero_fill_count.fetch_add(1, std::memory_order_relaxed);
          }
          page->unavailable = false;
          page->absent = false;
          object->cv.notify_all();
        }
        if (object == first_object) {
          // Found in the top object. Honour any data-manager lock.
          if ((fault_type & page->page_lock) != 0 && object->pager.valid()) {
            KernReturn kr = RequestUnlockFromPager(olk, object, page, fault_type);
            if (!IsOk(kr) && kr != KernReturn::kSuccess) {
              return KernReturn::kMemoryFailure;
            }
            // The lock was dropped across the send; the page pointer is
            // stale. Wait for the unlock to land, then rescan.
            if (!WaitForPage(olk, object.get(), deadline)) {
              return KernReturn::kMemoryFailure;
            }
            rescan = true;
            continue;
          }
          if (first_probe) {
            // Settled page in the top object on the very first probe — the
            // fast path collapse funnels long-lived fork survivors into.
            counters_.fast_faults.fetch_add(1, std::memory_order_relaxed);
          }
          return MakePinLocked(olk, object, page, /*from_backing=*/false);
        }
        // Found in a backing (shadow ancestor) object.
        if ((fault_type & kVmProtWrite) != 0) {
          // Copy-on-write: push a private copy into the top object. Pin the
          // backing page so it survives while we drop its lock and lock the
          // top object (child-before-parent order forbids holding both the
          // other way, and we are at the parent now).
          ++page->pin_count;
          std::shared_ptr<VmObject> backing_owner = object;
          olk.unlock();
          lock_probe::Note();
          ObjectLock top_lk(first_object->mu);
          Result<VmPage*> np =
              PageAllocLocked(first_object.get(), first_offset, shortage_rounds >= 100);
          if (!np.ok()) {
            top_lk.unlock();
            UnpinRaw(backing_owner, page);
            if (np.status() == KernReturn::kMemoryPresent) {
              rescan = true;  // Another thread won the slot; use its page.
            } else {
              need_frames = true;
            }
            lock_probe::Note();
            olk = ObjectLock(first_object->mu);  // Re-establish the invariant.
            object = first_object;
            offset = first_offset;
            continue;
          }
          phys_->CopyFrame(page->frame, np.value()->frame);
          np.value()->dirty = true;
          counters_.cow_faults.fetch_add(1, std::memory_order_relaxed);
          PagePin pin = MakePinLocked(top_lk, first_object, np.value(), /*from_backing=*/false);
          first_object->cv.notify_all();
          top_lk.unlock();
          UnpinRaw(backing_owner, page);
          return pin;
        }
        return MakePinLocked(olk, object, page, /*from_backing=*/true);
      }

      // Not resident in `object`.
      if (object->pager.valid()) {
        // §6.2.2: data parked with the default pager takes precedence over
        // asking the (possibly errant) manager.
        auto parked = object->parked_offsets.find(offset);
        if (parked != object->parked_offsets.end() && parking_ != nullptr) {
          std::optional<std::vector<std::byte>> data = parking_->Unpark(object->id(), offset);
          object->parked_offsets.erase(parked);
          if (data.has_value()) {
            Result<VmPage*> np =
                PageAllocLocked(object.get(), offset, shortage_rounds >= 100);
            if (!np.ok()) {
              // Keep the unparked bytes safe either way.
              object->parked_offsets[offset] = true;
              parking_->Park(object->id(), offset, std::move(*data));
              if (np.status() == KernReturn::kMemoryPresent) {
                rescan = true;
              } else {
                need_frames = true;
              }
              continue;
            }
            VmSize n = std::min<VmSize>(data->size(), page_size());
            phys_->WriteFrame(np.value()->frame, 0, data->data(), n);
            np.value()->dirty = true;  // Never reached its manager.
            object->cv.notify_all();
            rescan = true;  // Rescan finds it resident.
            continue;
          }
        }
        if (object->pager.IsDead()) {
          // Destruction of a memory object by the data manager aborts
          // requests in progress (§6.2.1).
          if (config_.on_pager_timeout == Config::OnPagerTimeout::kZeroFill) {
            Result<VmPage*> np =
                PageAllocLocked(object.get(), offset, shortage_rounds >= 100);
            if (!np.ok()) {
              if (np.status() == KernReturn::kMemoryPresent) {
                rescan = true;
              } else {
                need_frames = true;
              }
              continue;
            }
            phys_->ZeroFrame(np.value()->frame);
            counters_.zero_fill_count.fetch_add(1, std::memory_order_relaxed);
            object->cv.notify_all();
            rescan = true;
            continue;
          }
          return KernReturn::kMemoryFailure;
        }
        // Cache miss: allocate a placeholder and issue pager_data_request.
        Result<VmPage*> np = PageAllocLocked(object.get(), offset, shortage_rounds >= 100);
        if (!np.ok()) {
          if (np.status() == KernReturn::kMemoryPresent) {
            rescan = true;
          } else {
            need_frames = true;
          }
          continue;
        }
        VmPage* placeholder = np.value();
        placeholder->busy = true;
        placeholder->absent = true;
        // Pin across the request-and-wait window: busy alone stops
        // protecting the placeholder the instant a handler settles it, and
        // a flush/clean/pageout sweeping the object in the gap before we
        // re-check would free the page out from under our raw pointer.
        ++placeholder->pin_count;

        // Fault-ahead: extend the request over a contiguous run of absent
        // neighbours, each held as its own pinned busy+absent placeholder.
        // Top-object misses only — shadow descents stay single-page. The
        // run ends at the object end, any resident/busy/pinned page
        // (PageAllocLocked returns kMemoryPresent), parked data, an offset
        // an internal object never pushed to the default pager, or a frame
        // shortage — speculation never dips into the reserve.
        std::vector<VmPage*> extras;
        if (fa_window > 1 && object == first_object && config_.fault_ahead) {
          for (uint32_t i = 1; i < fa_window; ++i) {
            VmOffset eoff = offset + VmOffset{i} * page_size();
            if (eoff >= object->size() ||
                object->parked_offsets.count(eoff) != 0 ||
                (object->internal && object->paged_offsets.count(eoff) == 0)) {
              break;
            }
            Result<VmPage*> ep =
                PageAllocLocked(object.get(), eoff, /*allow_reserve=*/false);
            if (!ep.ok()) {
              break;
            }
            VmPage* extra = ep.value();
            extra->busy = true;
            extra->absent = true;
            extra->readahead = true;
            ++extra->pin_count;
            extras.push_back(extra);
          }
          if (!extras.empty()) {
            counters_.fault_ahead_requests.fetch_add(1, std::memory_order_relaxed);
            counters_.fault_ahead_pages.fetch_add(extras.size(),
                                                  std::memory_order_relaxed);
          }
        }
        // Releases the run's speculative placeholders on every exit from
        // the request-and-wait window (olk held). We own each extra's busy
        // bit, so one still busy+absent was never answered — the partial-
        // provide remainder — and is freed; a later demand fault re-issues
        // the request and the OnPagerTimeout policy applies there (a
        // speculative page is never zero-filled or errored in place: that
        // would fabricate a verdict no thread asked for). Settled extras
        // stay resident and just lose the pin; if the object died,
        // TerminateObject orphaned the pinned pages to us, the last holder.
        auto sweep_extras = [&]() {
          bool freed = false;
          for (VmPage* extra : extras) {
            assert(extra->pin_count > 0);
            --extra->pin_count;
            if (!object->alive) {
              if (extra->pin_count == 0) {
                PageFreeLocked(olk, extra);
              }
            } else if (extra->busy && extra->absent) {
              PageFreeLocked(olk, extra);
              freed = true;
            }
          }
          extras.clear();
          if (freed) {
            object->cv.notify_all();
          }
        };
        KernReturn kr = RequestDataFromPager(
            olk, object, offset,
            VmSize{1 + extras.size()} * page_size(), fault_type);
        // The object lock was dropped during the send. We still own the
        // placeholder (handlers settle busy+absent pages without freeing,
        // and the pin keeps every sweeper away), but the object may have
        // died — then TerminateObject orphaned the pinned page for us, its
        // last holder, to free.
        if (!object->alive) {
          sweep_extras();
          --placeholder->pin_count;
          PageFreeLocked(olk, placeholder);
          object->cv.notify_all();
          return KernReturn::kMemoryFailure;
        }
        if (!placeholder->absent || placeholder->error || placeholder->unavailable) {
          sweep_extras();
          --placeholder->pin_count;
          object->cv.notify_all();
          rescan = true;  // Data (or a verdict) arrived already.
          continue;
        }
        if (!IsOk(kr)) {
          // The request never reached the manager: nothing will answer the
          // run. Release every speculative placeholder before settling the
          // faulting page itself per policy.
          sweep_extras();
          if (config_.on_pager_timeout == Config::OnPagerTimeout::kZeroFill) {
            // Treat an unreachable manager per the timeout policy: settle
            // our own placeholder as zero fill in place.
            phys_->ZeroFrame(placeholder->frame);
            placeholder->busy = false;
            placeholder->absent = false;
            placeholder->dirty = true;  // Not backed by the manager.
            --placeholder->pin_count;
            counters_.zero_fill_count.fetch_add(1, std::memory_order_relaxed);
            object->cv.notify_all();
            rescan = true;
            continue;
          }
          --placeholder->pin_count;
          PageFreeLocked(olk, placeholder);
          object->cv.notify_all();
          return KernReturn::kMemoryFailure;
        }
        // Wait for pager_data_provided / pager_data_unavailable. The pin
        // keeps the pointer valid while the object lives; the object's
        // death is the one exit we must handle.
        for (;;) {
          if (!object->alive) {
            sweep_extras();
            --placeholder->pin_count;
            PageFreeLocked(olk, placeholder);
            object->cv.notify_all();
            return KernReturn::kMemoryFailure;
          }
          if (!placeholder->absent || placeholder->unavailable || placeholder->error) {
            break;
          }
          if (!WaitForPage(olk, object.get(), deadline)) {
            // §6.2.1: a timeout may abort the memory request. Either fail
            // the fault or substitute zero-filled memory.
            if (config_.on_pager_timeout == Config::OnPagerTimeout::kZeroFill) {
              phys_->ZeroFrame(placeholder->frame);
              placeholder->busy = false;
              placeholder->absent = false;
              placeholder->dirty = true;  // Not backed by the manager.
              counters_.zero_fill_count.fetch_add(1, std::memory_order_relaxed);
              object->cv.notify_all();
              break;
            }
            sweep_extras();
            --placeholder->pin_count;
            PageFreeLocked(olk, placeholder);
            object->cv.notify_all();
            return KernReturn::kMemoryFailure;
          }
          if (placeholder->absent && !placeholder->unavailable && !placeholder->error) {
            counters_.spurious_page_wakeups.fetch_add(1, std::memory_order_relaxed);
          }
        }
        // Reached on the primary's settlement (a multi-page provide settled
        // every page it covered under one handler lock acquisition before
        // we could observe it) and on the zero-fill timeout: either way,
        // speculative placeholders still unanswered are released here —
        // the partial-provide prefix rule.
        sweep_extras();
        --placeholder->pin_count;
        object->cv.notify_all();
        rescan = true;
        continue;
      }
      if (object->shadow != nullptr) {
        // Walk down, hand over hand: take the parent's lock before
        // releasing the child's so the shadow pointer we followed cannot be
        // spliced out from under us mid-step.
        std::shared_ptr<VmObject> parent = object->shadow;
        VmOffset parent_offset = offset + object->shadow_offset;
        lock_probe::Note();
        ObjectLock plk(parent->mu);
        olk.unlock();
        object = std::move(parent);
        offset = parent_offset;
        olk = std::move(plk);
        ++depth;
        // Skip pageless intermediates cheaply: an object with no resident
        // pages and no pager cannot resolve any offset itself.
        while (object->resident_count == 0 && !object->pager.valid() &&
               object->shadow != nullptr) {
          parent = object->shadow;
          parent_offset = offset + object->shadow_offset;
          lock_probe::Note();
          ObjectLock nlk(parent->mu);
          olk.unlock();
          object = std::move(parent);
          offset = parent_offset;
          olk = std::move(nlk);
          ++depth;
        }
        uint64_t prev_max = counters_.chain_depth_max.load(std::memory_order_relaxed);
        while (depth > prev_max && !counters_.chain_depth_max.compare_exchange_weak(
                                       prev_max, depth, std::memory_order_relaxed)) {
        }
        continue;
      }
      // Nothing anywhere in the chain: zero-fill in the *top* object so the
      // page is private to this mapping chain.
      if (object != first_object) {
        olk.unlock();
        lock_probe::Note();
        olk = ObjectLock(first_object->mu);
        object = first_object;
        offset = first_offset;
        if (PageLookup(object.get(), offset) != nullptr) {
          rescan = true;  // A page appeared while we walked; use it.
          continue;
        }
      }
      Result<VmPage*> np =
          PageAllocLocked(first_object.get(), first_offset, shortage_rounds >= 100);
      if (!np.ok()) {
        if (np.status() == KernReturn::kMemoryPresent) {
          rescan = true;
        } else {
          need_frames = true;
        }
        continue;
      }
      phys_->ZeroFrame(np.value()->frame);
      counters_.zero_fill_count.fetch_add(1, std::memory_order_relaxed);
      first_object->cv.notify_all();
      return MakePinLocked(olk, first_object, np.value(), /*from_backing=*/false);
    }
    olk.unlock();
    first_probe = false;
    if (need_frames) {
      // Frame shortage below the reserved floor: with every lock dropped,
      // help reclaim and retry. After enough rounds dip into the reserve
      // (§6.2.3) so the fault that *frees* memory can always complete.
      if (++shortage_rounds > 100) {
        return KernReturn::kResourceShortage;
      }
      WaitForFreeFrames();
    }
  }
}

// --- the fault entry point --------------------------------------------------

bool VmSystem::TryOptimisticFault(TaskVm& task, VmOffset page_addr, VmProt access) {
  // The ref pins the snapshot — and the shared_ptr<VmObject> inside its
  // entries — against reclamation for the rest of this function.
  AddressMap::SnapshotRef ref(*task.map);
  const MapSnapshot* snap = ref.get();
  if (snap == nullptr) {
    return false;  // Nothing published yet; the locked path will publish.
  }
  if (task.map->generation() != snap->gen) {
    // A mutation landed (or is in flight) since the snapshot was built.
    counters_.map_lookup_retries.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const MapSnapshotEntry* e = snap->Lookup(page_addr);
  if (e == nullptr || e->is_share || e->object == nullptr) {
    // Invalid address, a two-level (sharing map) entry, or a lazy
    // zero-fill entry: all need the locked path — and invalid-address is a
    // *verdict*, which we never return from a snapshot.
    return false;
  }
  VmProt prot = e->protection;
  if (e->needs_copy) {
    prot &= ~kVmProtWrite;  // A write here is a COW push: locked path.
  }
  if ((access & ~prot) != 0) {
    return false;
  }
  const VmOffset object_offset =
      TruncPage(e->offset + (page_addr - e->start), page_size());
  // The snapshot's shared_ptr keeps the object's memory alive; its `alive`
  // flag is re-checked under its lock, exactly like the locked fast path.
  lock_probe::Note();
  ObjectLock olk(e->object->mu);
  if (!e->object->alive) {
    return false;
  }
  VmPage* page = PageLookupRaw(e->object.get(), object_offset);
  if (page == nullptr || page->busy || page->absent || page->unavailable ||
      page->error) {
    return false;  // Unsettled (or missing) pages are locked-path work.
  }
  // First demand touch of a readahead page: recorded under the object lock
  // (held here), the one lock the flag is guarded by. The detector itself
  // lives in the map entry, which this tier never reads or writes.
  page->readahead = false;
  prot &= ~page->page_lock;
  if ((access & ~prot) != 0) {
    return false;
  }
  // Install with the generation validated inside the pmap lock (see
  // Pmap::EnterIf for why that closes the stale-install race). The object
  // lock keeps the page and its frame stable across the install, matching
  // the object→pmap order the locked fast path uses.
  if (!task.pmap->EnterIf(page_addr, page->frame, prot,
                          task.map->generation_word(), snap->gen)) {
    counters_.map_lookup_retries.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  PageActivate(page);
  counters_.fast_faults.fetch_add(1, std::memory_order_relaxed);
  counters_.faults.fetch_add(1, std::memory_order_relaxed);
  counters_.map_lookups_optimistic.fetch_add(1, std::memory_order_relaxed);
  return true;
}

KernReturn VmSystem::Fault(TaskVm& task, VmOffset addr, VmProt access) {
  const VmOffset page_addr = TruncPage(addr, page_size());
  LockOpScope probe(counters_.fault_lock_ops);
  QueueBatchDrainedCheck batch_check;
  MaybeDrainDeferred();
  // Tier 0: the lock-free resolution. Touches no map lock at all — two
  // locks total (object + pmap, plus the page-hash shard) for the common
  // resident re-fault.
  if (config_.optimistic_map_lookup && TryOptimisticFault(task, page_addr, access)) {
    return KernReturn::kSuccess;
  }
  for (int attempt = 0; attempt < 64; ++attempt) {
    // Phase 1: resolve the map entry under the map lock(s), shared mode.
    std::shared_ptr<VmObject> object;
    VmOffset object_offset;
    uint32_t fa_window = 1;
    {
      lock_probe::Note();
      std::shared_lock<std::shared_mutex> map_lock(task.map->lock());
      // Refresh the published snapshot while we are here anyway: under the
      // shared lock the generation is stable (mutators take it exclusive),
      // so concurrent publishers race benignly toward identical snapshots.
      if (config_.optimistic_map_lookup && !task.map->snapshot_current()) {
        task.map->PublishSnapshot();
      }
      Result<EntryRef> re = LookupEntry(task, page_addr, access);
      if (!re.ok()) {
        return re.status();
      }
      if (re.value().needs_prepare) {
        re.value().share_lock = {};
        map_lock.unlock();
        KernReturn kr = PrepareEntry(task, page_addr, access);
        if (!IsOk(kr)) {
          return kr;
        }
        continue;  // Re-resolve with the entry prepared.
      }
      object = re.value().holder->object;
      object_offset = TruncPage(re.value().object_offset, page_size());

      // Fast path: a settled page resident in the entry's own object can be
      // installed in this same critical section — map shared → object →
      // queues → pmap is the documented order, and the object lock keeps
      // the page stable across the pmap update, so no pin and no second
      // map lookup are needed. Anything unsettled (busy, absent, locked
      // against this access, COW pending on a write) falls through to the
      // general three-phase path.
      {
        lock_probe::Note();
        ObjectLock olk(object->mu);
        VmPage* page = PageLookup(object.get(), object_offset);
        if (page == nullptr) {
          // A true miss (not even a placeholder): feed the sequentiality
          // detector and size the fault-ahead window while the holder
          // pointer is still valid under the map lock. Re-faults on pages
          // fault-ahead already brought in deliberately don't count —
          // only run *starts* advance the detector, which is what keeps
          // the window doubling across a scan.
          fa_window = ComputeFaultAheadWindow(re.value().holder, object_offset);
        } else if (!page->busy && !page->absent && !page->unavailable &&
                   !page->error) {
          page->readahead = false;  // First demand touch.
          VmProt prot = re.value().top->protection;
          if (re.value().holder->needs_copy) {
            prot &= ~kVmProtWrite;
          }
          prot &= ~page->page_lock;
          if ((access & ~prot) == 0) {
            task.pmap->Enter(page_addr, page->frame, prot);
            PageActivate(page);
            counters_.fast_faults.fetch_add(1, std::memory_order_relaxed);
            counters_.faults.fetch_add(1, std::memory_order_relaxed);
            return KernReturn::kSuccess;
          }
        }
      }
    }

    // Phase 2: find/create the page; returns it pinned, no locks held.
    Result<PagePin> rp = ResolvePage(object, object_offset, access, fa_window);
    if (!rp.ok()) {
      return rp.status();
    }
    PagePin pin = std::move(rp.value());

    // Phase 3: revalidate that the map still leads to the same object and
    // install the translation under the map shared lock. The pin keeps the
    // page alive; holding the map lock keeps the entry's protection and
    // needs_copy stable against concurrent Protect/CopyIn/ForkMap (which
    // all take it exclusively), closing the classic COW install race.
    bool installed = false;
    {
      lock_probe::Note();
      std::shared_lock<std::shared_mutex> map_lock(task.map->lock());
      Result<EntryRef> re = LookupEntry(task, page_addr, access);
      if (re.ok() && !re.value().needs_prepare && re.value().holder->object == object &&
          TruncPage(re.value().object_offset, page_size()) == object_offset) {
        VmProt prot = re.value().top->protection;
        if (pin.from_backing || re.value().holder->needs_copy) {
          prot &= ~kVmProtWrite;  // Copy still pending.
        }
        prot &= ~pin.page_lock;
        if ((access & ~prot) == 0) {
          task.pmap->Enter(page_addr, pin.page->frame, prot);
          installed = true;
        }
      }
    }
    PageActivate(pin.page);
    UnpinPage(pin);
    if (!installed) {
      continue;  // The world changed under us; redo the fault.
    }
    counters_.faults.fetch_add(1, std::memory_order_relaxed);
    // Opportunistic collapse: cheap unlocked precondition checks inside.
    MaybeCollapse(object);
    return KernReturn::kSuccess;
  }
  return KernReturn::kFailure;
}

KernReturn VmSystem::UserAccess(TaskVm& task, VmOffset addr, void* buf, VmSize len,
                                bool is_write) {
  auto* bytes = static_cast<std::byte*>(buf);
  const VmSize ps = page_size();
  while (len > 0) {
    VmOffset page_addr = TruncPage(addr, ps);
    VmSize chunk = std::min<VmSize>(len, page_addr + ps - addr);
    // Hardware fast path; kernel fault on miss, then retry (bounded: the
    // pageout daemon may steal the page between fault and access).
    int tries = 0;
    for (;;) {
      Pmap::AccessResult ar = task.pmap->Access(addr, bytes, chunk, is_write);
      if (ar.fault == Pmap::FaultKind::kNone) {
        break;
      }
      KernReturn kr = Fault(task, ar.fault_addr, is_write ? kVmProtWrite : kVmProtRead);
      if (!IsOk(kr)) {
        return kr;
      }
      if (++tries > 100) {
        return KernReturn::kFailure;
      }
    }
    addr += chunk;
    bytes += chunk;
    len -= chunk;
  }
  return KernReturn::kSuccess;
}

// --- kernel-mediated access -------------------------------------------------

KernReturn VmSystem::ReadMemory(TaskVm& task, VmOffset addr, void* buf, VmSize len) {
  // vm_read: kernel-mediated, faults pages in via the object layer without
  // touching the task's pmap. Pins ride a PinBatch so each page's
  // activation lands in one batched queue_mu_ acquisition instead of one
  // per page.
  auto* out = static_cast<std::byte*>(buf);
  const VmSize ps = page_size();
  PinBatch batch(this);
  while (len > 0) {
    VmOffset page_addr = TruncPage(addr, ps);
    VmSize chunk = std::min<VmSize>(len, page_addr + ps - addr);
    std::shared_ptr<VmObject> object;
    VmOffset object_offset;
    uint32_t fa_window = 1;
    {
      std::shared_lock<std::shared_mutex> map_lock(task.map->lock());
      Result<EntryRef> re = LookupEntry(task, page_addr, kVmProtRead);
      if (!re.ok()) {
        return re.status();
      }
      if (re.value().needs_prepare) {
        re.value().share_lock = {};
        map_lock.unlock();
        KernReturn kr = PrepareEntry(task, page_addr, kVmProtRead);
        if (!IsOk(kr)) {
          return kr;
        }
        continue;  // Retry this chunk.
      }
      object = re.value().holder->object;
      object_offset = TruncPage(re.value().object_offset, ps);
      if (!PageResident(object.get(), object_offset)) {
        // A racy (shard-lock only) probe is fine for a heuristic: a false
        // "miss" costs one detector update, nothing more.
        fa_window = ComputeFaultAheadWindow(re.value().holder, object_offset);
      }
    }
    Result<PagePin> rp = ResolvePage(object, object_offset, kVmProtRead, fa_window);
    if (!rp.ok()) {
      return rp.status();
    }
    phys_->ReadFrame(rp.value().page->frame, addr - page_addr, out, chunk);
    batch.Add(std::move(rp.value()));
    addr += chunk;
    out += chunk;
    len -= chunk;
  }
  return KernReturn::kSuccess;  // ~PinBatch flushes and unpins.
}

KernReturn VmSystem::WriteMemory(TaskVm& task, VmOffset addr, const void* buf, VmSize len) {
  const auto* in = static_cast<const std::byte*>(buf);
  const VmSize ps = page_size();
  PinBatch batch(this);
  while (len > 0) {
    VmOffset page_addr = TruncPage(addr, ps);
    VmSize chunk = std::min<VmSize>(len, page_addr + ps - addr);
    std::shared_ptr<VmObject> object;
    VmOffset object_offset;
    uint32_t fa_window = 1;
    {
      std::shared_lock<std::shared_mutex> map_lock(task.map->lock());
      Result<EntryRef> re = LookupEntry(task, page_addr, kVmProtWrite);
      if (!re.ok()) {
        return re.status();
      }
      if (re.value().needs_prepare) {
        re.value().share_lock = {};
        map_lock.unlock();
        KernReturn kr = PrepareEntry(task, page_addr, kVmProtWrite);
        if (!IsOk(kr)) {
          return kr;
        }
        continue;  // Retry this chunk.
      }
      object = re.value().holder->object;
      object_offset = TruncPage(re.value().object_offset, ps);
      if (!PageResident(object.get(), object_offset)) {
        fa_window = ComputeFaultAheadWindow(re.value().holder, object_offset);
      }
    }
    Result<PagePin> rp = ResolvePage(object, object_offset, kVmProtWrite, fa_window);
    if (!rp.ok()) {
      return rp.status();
    }
    PagePin pin = std::move(rp.value());
    bool retry = false;
    {
      ObjectLock olk(pin.owner->mu);
      if ((kVmProtWrite & pin.page->page_lock) != 0 && pin.owner->pager.valid()) {
        // Honour manager locks on the kernel write path too.
        KernReturn kr = RequestUnlockFromPager(olk, pin.owner, pin.page, kVmProtWrite);
        if (!IsOk(kr)) {
          olk.unlock();
          UnpinPage(pin);
          return KernReturn::kMemoryFailure;
        }
        retry = true;  // Retry this chunk; ResolvePage waits out the unlock.
      } else {
        phys_->WriteFrame(pin.page->frame, addr - page_addr, in, chunk);
        pin.page->dirty = true;
      }
    }
    if (retry) {
      UnpinPage(pin);
      continue;
    }
    batch.Add(std::move(pin));
    addr += chunk;
    in += chunk;
    len -= chunk;
  }
  return KernReturn::kSuccess;  // ~PinBatch flushes and unpins.
}

// --- vm_copy and flat-byte conversion ---------------------------------------

KernReturn VmSystem::Copy(TaskVm& task, VmOffset src, VmSize size, VmOffset dst) {
  if (size == 0 || src % page_size() != 0 || dst % page_size() != 0 ||
      size % page_size() != 0) {
    return KernReturn::kInvalidArgument;
  }
  Result<std::shared_ptr<VmMapCopy>> copy = CopyIn(task, src, size);
  if (!copy.ok()) {
    return copy.status();
  }
  MapMutation map_lock(*task.map);
  // vm_copy overwrites an existing destination region.
  if (!task.map->RangeFullyCovered(dst, size)) {
    return KernReturn::kInvalidAddress;
  }
  std::vector<MapEntry> removed = task.map->RemoveRange(dst, dst + size);
  {
    ChainLock chain(chain_mu_);
    for (MapEntry& entry : removed) {
      task.pmap->Remove(entry.start, entry.end);
      ReleaseEntry(chain, std::move(entry));
    }
  }
  VmOffset cursor = dst;
  for (VmMapCopy::Segment& seg : copy.value()->segments()) {
    MapEntry entry;
    entry.start = cursor;
    entry.end = cursor + seg.size;
    if (seg.object != nullptr) {
      entry.object = std::move(seg.object);
      entry.offset = seg.offset;
      entry.needs_copy = true;
    }
    cursor += seg.size;
    task.map->Insert(std::move(entry));
  }
  copy.value()->segments().clear();
  return KernReturn::kSuccess;
}

Result<std::shared_ptr<VmMapCopy>> VmSystem::CopyFromBytes(const void* data, VmSize size) {
  if (size == 0) {
    return KernReturn::kInvalidArgument;
  }
  const VmSize ps = page_size();
  const VmSize rounded = RoundPage(size, ps);
  std::shared_ptr<VmObject> object = CreateInternalObject(rounded);
  const auto* in = static_cast<const std::byte*>(data);
  ObjectLock olk(object->mu);
  for (VmOffset off = 0; off < rounded; off += ps) {
    Result<VmPage*> np = PageAllocLocked(object.get(), off, /*allow_reserve=*/false);
    int rounds = 0;
    while (!np.ok() && np.status() == KernReturn::kResourceShortage && ++rounds <= 100) {
      {
        ScopedUnlock unlock(olk);
        WaitForFreeFrames();
      }
      np = PageAllocLocked(object.get(), off, rounds >= 100);
    }
    if (!np.ok()) {
      // Apply the deferred activations before freeing: PageFreeLocked
      // unqueues, and the batch must never hold a dangling page.
      FlushQueueBatch();
      object->pages.ForEach([&](VmPage* page) { PageFreeLocked(olk, page); });
      return np.status();
    }
    VmSize n = off < size ? std::min<VmSize>(ps, size - off) : 0;
    if (n < ps) {
      phys_->ZeroFrame(np.value()->frame);
    }
    if (n > 0) {
      phys_->WriteFrame(np.value()->frame, 0, in + off, n);
    }
    np.value()->dirty = true;  // No backing store yet.
    // Defer the activation: the object is private (unpublished) and its
    // lock is held, so the page stays stable until the flush below.
    PageActivateDeferred(np.value());
  }
  FlushQueueBatch();
  olk.unlock();
  auto copy = std::make_shared<VmMapCopy>(this, rounded);
  VmMapCopy::Segment seg;
  seg.object = object;
  seg.offset = 0;
  seg.size = rounded;
  ObjectRef(object);
  copy->segments().push_back(std::move(seg));
  return copy;
}

Result<std::vector<std::byte>> VmSystem::CopyAsBytes(const std::shared_ptr<VmMapCopy>& copy) {
  if (copy == nullptr || copy->system() != this) {
    return KernReturn::kInvalidArgument;
  }
  std::vector<std::byte> out(copy->size());
  PinBatch batch(this);
  VmSize cursor = 0;
  for (const VmMapCopy::Segment& seg : copy->segments()) {
    if (seg.object == nullptr) {
      cursor += seg.size;  // Zero region; `out` is zero-initialised.
      continue;
    }
    for (VmOffset off = 0; off < seg.size; off += page_size()) {
      Result<PagePin> rp =
          ResolvePage(seg.object, TruncPage(seg.offset + off, page_size()), kVmProtRead);
      if (!rp.ok()) {
        return rp.status();
      }
      VmSize n = std::min<VmSize>(page_size(), seg.size - off);
      phys_->ReadFrame(rp.value().page->frame, 0, out.data() + cursor + off, n);
      batch.Add(std::move(rp.value()));
    }
    cursor += seg.size;
  }
  return out;
}

}  // namespace mach
