// Virtual memory object structures (§5.2).
//
// A VmObject is the kernel-internal representation of a memory object: the
// unit of backing storage that address map entries reference. It records the
// ports used to communicate with the object's data manager, the resident
// pages caching its contents, the shadow chain used for copy-on-write, and
// the caching policy the manager selected via pager_cache.
//
// Lifetime: shared_ptr from map entries, map copies, shadow pointers and the
// kernel's object registry. `map_refs` counts address-map references (the
// paper's "number of address map references to the object"); when it drops
// to zero the object is terminated or cached per can_persist (§3.4.1).
//
// Locking: each object carries its own mutex `mu` guarding its page list,
// page state, pager ports and paged/parked metadata, plus a condition
// variable `cv` for the §5 busy/wanted page protocol. Chain *structure*
// (`shadow`, `shadow_offset`, `shadow_children`) and lifecycle state
// (`alive`, `cached`, `can_persist`, registry membership) are guarded by the
// VmSystem chain lock; `shadow`/`shadow_offset` writes additionally hold the
// object's own mu so a fault walking the chain under object locks reads a
// stable value. `map_refs` is atomic (decrements to a possibly-terminal
// count happen under the chain lock). Object locks are taken child before
// shadow parent; see the lock-order comment in vm_system.h.

#ifndef SRC_VM_VM_OBJECT_H_
#define SRC_VM_VM_OBJECT_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/base/vm_types.h"
#include "src/ipc/port.h"
#include "src/ipc/port_right.h"
#include "src/vm/vm_page.h"

namespace mach {

class VmObject : public std::enable_shared_from_this<VmObject> {
 public:
  explicit VmObject(VmSize size) : size_(size) {}
  ~VmObject();

  VmObject(const VmObject&) = delete;
  VmObject& operator=(const VmObject&) = delete;

  // --- identity / pager association -----------------------------------

  VmSize size() const { return size_; }
  void set_size(VmSize size) { size_ = size; }

  // The object lock: guards the page list, every resident page's state, the
  // pager ports, and the paged/parked offset metadata. Innermost of the
  // object tier (only hash-shard, queue, pmap/frame and port locks nest
  // inside it).
  mutable std::mutex mu;

  // The wanted-page condition (§5 busy/wanted protocol): waiters for a busy
  // page of this object block here; every page state transition notifies it.
  std::condition_variable cv;

  // The memory object port (send right held by the kernel). Null for
  // internal objects that have not yet been handed to the default pager.
  SendRight pager;

  // The pager request port: kernel holds the receive right (serviced by the
  // kernel's pager service thread) and passes send rights to the manager.
  ReceiveRight request_receive;
  SendRight request_send;

  // The pager name port (identifies the object in vm_regions output).
  ReceiveRight name_receive;
  SendRight name_send;

  bool internal = false;           // Created by the kernel (default-pager backed).
  bool pager_initialized = false;  // pager_init (or pager_create) sent.
  bool can_persist = false;        // pager_cache(true): may cache with no refs.
  bool cached = false;             // Currently held only by the object cache.
  bool alive = true;               // Set false once terminated.

  // Copy-on-write shadow chain (§5.5): this object's missing pages are
  // copied from `shadow` at (offset + shadow_offset).
  std::shared_ptr<VmObject> shadow;
  VmOffset shadow_offset = 0;

  // Back-pointers: every object whose `shadow` points at this one. Collapse
  // (vm_object_collapse in Mach) needs to find the sole surviving child when
  // map_refs drops to 1; a vector keeps that lookup O(children) without a
  // registry scan. Maintained at every `shadow` assignment.
  std::vector<VmObject*> shadow_children;

  void AddShadowChild(VmObject* child) { shadow_children.push_back(child); }
  void RemoveShadowChild(VmObject* child) {
    shadow_children.erase(
        std::remove(shadow_children.begin(), shadow_children.end(), child),
        shadow_children.end());
  }

  // Offsets this (internal) object has successfully pushed to the default
  // pager via pager_data_write. Collapse must treat these as data the shadow
  // still holds even though no page is resident; without the set, splicing a
  // paged-out shadow would silently lose its pages.
  std::unordered_set<VmOffset> paged_offsets;

  // Offsets that the kernel parked with the default pager because this
  // (external) object's manager failed to accept a pager_data_write in time
  // (§6.2.2). Consulted by the fault handler before asking the manager.
  // Maps offset -> true. Cleared when the data is re-fetched.
  std::unordered_map<VmOffset, bool> parked_offsets;

  // Number of address-map (and map-copy) references. Atomic so references
  // can be taken without a lock; decrements (which may reach the terminal
  // count) happen under the VmSystem chain lock so termination and collapse
  // decisions are serialised.
  std::atomic<uint32_t> map_refs{0};

  // Resident pages of this object.
  ObjectPageList pages;
  uint32_t resident_count = 0;

  // Monotonic id used as the default pager's backing-store key.
  uint64_t id() const { return id_; }

 private:
  static uint64_t NextId();

  const uint64_t id_ = NextId();
  VmSize size_;
};

}  // namespace mach

#endif  // SRC_VM_VM_OBJECT_H_
