// Address maps (§5.1): a task address map is a directory mapping each valid
// address range to a memory object and offset, plus protection and
// inheritance attributes.
//
// Maps are two-level: a top-level entry normally references a VmObject
// directly (the §5.1 optimization for unshared memory), but once read/write
// inheritance sharing has occurred the entry references a *sharing map* — an
// AddressMap in its own right whose entries hold the objects. Per-task
// attributes (protection, inheritance) stay in the top-level entry;
// operations on the memory itself are reflected in the sharing map.
//
// Locking: each map carries a reader-writer lock (`lock()`), the outermost
// tier of the VM lock order. Fault-path lookups take it shared so faults in
// disjoint regions of one map never contend; structural mutation and entry
// field writes (needs_copy, object installation) take it exclusive. All
// methods assume the caller holds the lock in the appropriate mode — the
// map does no locking of its own. A top-level map's lock may be held while
// taking a sharing map's lock, never the reverse; ForkMap orders parent
// before child. The map also performs no object reference accounting or
// pmap maintenance — VmSystem drives those from the entries these methods
// return, keeping policy out of the container.

#ifndef SRC_VM_ADDRESS_MAP_H_
#define SRC_VM_ADDRESS_MAP_H_

#include <map>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "src/base/kern_return.h"
#include "src/base/vm_types.h"

namespace mach {

class VmObject;
class AddressMap;

struct MapEntry {
  VmOffset start = 0;
  VmOffset end = 0;  // exclusive

  // Exactly one of these is meaningful. `object` may also be null for an
  // allocated-but-untouched region (zero-fill object created at first
  // fault, "filled-zero on demand" per Table 3-3).
  std::shared_ptr<VmObject> object;
  std::shared_ptr<AddressMap> share_map;
  bool is_share = false;

  VmOffset offset = 0;  // Offset of `start` within the object / share map.

  VmProt protection = kVmProtDefault;
  VmProt max_protection = kVmProtAll;
  VmInherit inheritance = VmInherit::kCopy;

  // Copy-on-write pending: the object must be shadowed before this entry's
  // memory is written (§5.5 "copy-on-write").
  bool needs_copy = false;

  VmSize size() const { return end - start; }
};

class AddressMap {
 public:
  AddressMap(VmOffset min_addr, VmOffset max_addr, VmSize page_size)
      : min_(min_addr), max_(max_addr), page_size_(page_size) {}

  AddressMap(const AddressMap&) = delete;
  AddressMap& operator=(const AddressMap&) = delete;

  VmOffset min_address() const { return min_; }
  VmOffset max_address() const { return max_; }
  VmSize page_size() const { return page_size_; }

  // The map lock (see the header comment for the sharing discipline).
  std::shared_mutex& lock() const { return mu_; }

  // Returns the entry containing `addr`, or nullptr.
  MapEntry* Lookup(VmOffset addr);
  const MapEntry* Lookup(VmOffset addr) const;

  // Finds a free gap of `size` bytes at or above `hint` (page aligned).
  Result<VmOffset> FindSpace(VmSize size, VmOffset hint = 0) const;

  // True if [start, start+size) overlaps no entry and is within bounds.
  bool RangeFree(VmOffset start, VmSize size) const;

  // True if every byte of [start, start+size) is covered by entries.
  bool RangeFullyCovered(VmOffset start, VmSize size) const;

  // Inserts a new entry; the range must be free. Takes ownership.
  KernReturn Insert(MapEntry entry);

  // Splits entries so that `start` and `end` fall on entry boundaries, then
  // returns pointers to all entries overlapping [start, end), in order.
  // Pointers are valid until the next structural mutation.
  std::vector<MapEntry*> ClipRange(VmOffset start, VmOffset end);

  // Removes all entries overlapping [start, end) (clipping at the edges)
  // and returns them so the caller can release references and mappings.
  std::vector<MapEntry> RemoveRange(VmOffset start, VmOffset end);

  // All entries overlapping [start, end), without clipping.
  std::vector<MapEntry*> EntriesIn(VmOffset start, VmOffset end);

  // Every entry, in address order (vm_regions).
  std::vector<const MapEntry*> AllEntries() const;

  size_t entry_count() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

 private:
  // Splits the entry containing `addr` so that an entry boundary falls
  // exactly at `addr` (no-op if already on a boundary).
  void ClipAt(VmOffset addr);

  mutable std::shared_mutex mu_;
  VmOffset min_;
  VmOffset max_;
  VmSize page_size_;
  std::map<VmOffset, MapEntry> entries_;  // keyed by entry.start
};

}  // namespace mach

#endif  // SRC_VM_ADDRESS_MAP_H_
