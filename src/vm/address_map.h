// Address maps (§5.1): a task address map is a directory mapping each valid
// address range to a memory object and offset, plus protection and
// inheritance attributes.
//
// Maps are two-level: a top-level entry normally references a VmObject
// directly (the §5.1 optimization for unshared memory), but once read/write
// inheritance sharing has occurred the entry references a *sharing map* — an
// AddressMap in its own right whose entries hold the objects. Per-task
// attributes (protection, inheritance) stay in the top-level entry;
// operations on the memory itself are reflected in the sharing map.
//
// Locking: each map carries a reader-writer lock (`lock()`), the outermost
// tier of the VM lock order. Fault-path lookups take it shared so faults in
// disjoint regions of one map never contend; structural mutation and entry
// field writes (needs_copy, object installation) take it exclusive. All
// methods assume the caller holds the lock in the appropriate mode — the
// map does no locking of its own. A top-level map's lock may be held while
// taking a sharing map's lock, never the reverse; ForkMap orders parent
// before child. The map also performs no object reference accounting or
// pmap maintenance — VmSystem drives those from the entries these methods
// return, keeping policy out of the container.
//
// Optimistic (seqlock) read tier: on top of the lock, the map keeps a
// generation counter and a published immutable snapshot of its entries so
// the fault fast path can resolve an address without touching the lock at
// all. The protocol:
//
//   * Every mutation runs inside a MapMutation, which takes the lock
//     exclusively and bumps the generation to an odd value *before* the
//     mutation body (and so before any pmap clamp the mutation performs),
//     then back to even on completion. Under the shared lock the generation
//     is therefore always even and stable.
//   * PublishSnapshot (called under the lock, either mode) rebuilds the
//     snapshot — a flat sorted vector, never a view into the std::map — and
//     swaps it in atomically. Readers only ever dereference the immutable
//     snapshot, so there is no torn read to defend against; the generation
//     tells them whether what they read is still current.
//   * A lock-free reader pins the snapshot (SnapshotRef — an epoch counter,
//     not a lock: a single uncontended fetch_add each way), resolves its
//     address against it, and validates `generation() == snapshot->gen` —
//     final validation happens inside the pmap lock (Pmap::EnterIf), which
//     closes the race with a mutation's own pmap updates: the mutation's
//     generation bump happens-before its pmap clamps, so an install that
//     validates under the pmap lock cannot have missed a clamp. On any
//     mismatch the reader falls back to the shared-lock path, which
//     republishes.
//   * Reclamation: a publish retires the previous snapshot; retired
//     snapshots are deleted only when the reader count is observed to be
//     zero *after* the swap (sequentially consistent with the readers'
//     pin), so no reader can ever dereference a freed snapshot. A reader
//     that pins after that observation necessarily loads the new pointer.
//
// Sharing-map entries (is_share) are materialised in the snapshot but
// readers must refuse them: sub-entry state is not covered by the top-level
// generation.

#ifndef SRC_VM_ADDRESS_MAP_H_
#define SRC_VM_ADDRESS_MAP_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "src/base/kern_return.h"
#include "src/base/vm_types.h"

namespace mach {

class VmObject;
class AddressMap;

// Per-map-entry sequentiality detector state for adaptive fault-ahead. One
// atomic word so it can live inside a MapEntry (which ClipRange / RemoveRange
// / ForkMap copy freely) and be updated under the map's *shared* lock from
// the fault path: concurrent faulters race on it, but the word is only a
// readahead heuristic — a lost update costs at most one mis-sized window.
// The optimistic (seqlock) tier never reads or writes it: MapSnapshotEntry
// deliberately omits it, so detector updates can't perturb lock-free faults.
//
// Encoding: low 48 bits = (next expected faulting page index within the
// object) + 1, where 0 means "no history"; bits 48..63 = the window used at
// the last miss, so sequential streaks can double it 1→2→4→…→max.
struct FaultAheadState {
  std::atomic<uint64_t> word{0};

  FaultAheadState() = default;
  // Entry copies (clipping, forks) carry the heuristic along; relaxed is
  // fine, the value is advisory.
  FaultAheadState(const FaultAheadState& other)
      : word(other.word.load(std::memory_order_relaxed)) {}
  FaultAheadState& operator=(const FaultAheadState& other) {
    word.store(other.word.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    return *this;
  }

  static constexpr uint64_t kPageMask = (uint64_t{1} << 48) - 1;
  static constexpr int kWindowShift = 48;
};

struct MapEntry {
  VmOffset start = 0;
  VmOffset end = 0;  // exclusive

  // Exactly one of these is meaningful. `object` may also be null for an
  // allocated-but-untouched region (zero-fill object created at first
  // fault, "filled-zero on demand" per Table 3-3).
  std::shared_ptr<VmObject> object;
  std::shared_ptr<AddressMap> share_map;
  bool is_share = false;

  VmOffset offset = 0;  // Offset of `start` within the object / share map.

  VmProt protection = kVmProtDefault;
  VmProt max_protection = kVmProtAll;
  VmInherit inheritance = VmInherit::kCopy;

  // Copy-on-write pending: the object must be shadowed before this entry's
  // memory is written (§5.5 "copy-on-write").
  bool needs_copy = false;

  // Adaptive fault-ahead sequentiality detector (see FaultAheadState).
  FaultAheadState fault_ahead;

  VmSize size() const { return end - start; }
};

// One entry of an immutable map snapshot (the seqlock read tier). Carries
// exactly the fields the fault fast path needs; sharing-map entries are
// present only so readers can recognise and refuse them.
struct MapSnapshotEntry {
  VmOffset start = 0;
  VmOffset end = 0;  // exclusive
  VmOffset offset = 0;
  VmProt protection = kVmProtNone;
  bool needs_copy = false;
  bool is_share = false;
  std::shared_ptr<VmObject> object;
};

// An immutable snapshot of a map's entries, published atomically. `gen` is
// the (even) map generation the snapshot was built at; a reader that later
// observes the same generation knows no mutation has intervened.
struct MapSnapshot {
  uint64_t gen = 0;
  std::vector<MapSnapshotEntry> entries;  // sorted by start

  // Returns the entry containing `addr`, or nullptr. Pure binary search
  // over immutable data: safe with no locks held.
  const MapSnapshotEntry* Lookup(VmOffset addr) const;
};

class AddressMap {
 public:
  AddressMap(VmOffset min_addr, VmOffset max_addr, VmSize page_size)
      : min_(min_addr), max_(max_addr), page_size_(page_size) {}
  ~AddressMap();

  AddressMap(const AddressMap&) = delete;
  AddressMap& operator=(const AddressMap&) = delete;

  VmOffset min_address() const { return min_; }
  VmOffset max_address() const { return max_; }
  VmSize page_size() const { return page_size_; }

  // The map lock (see the header comment for the sharing discipline).
  std::shared_mutex& lock() const { return mu_; }

  // --- the seqlock read tier (see the header comment) -------------------

  // The current generation. Even = stable; odd = a mutation is in flight.
  uint64_t generation() const { return gen_.load(std::memory_order_acquire); }

  // The generation word itself, for validation under another lock
  // (Pmap::EnterIf takes it by reference).
  const std::atomic<uint64_t>& generation_word() const { return gen_; }

  // Pins the published snapshot for the lifetime of the ref (null until the
  // first publish). Wait-free: one fetch_add to pin, one to unpin; while
  // any ref is live no retired snapshot is reclaimed, so the pointer (and
  // the object references inside it) stay valid without a lock.
  class SnapshotRef {
   public:
    explicit SnapshotRef(const AddressMap& map) : map_(map) {
      // seq_cst pairs with the publisher's exchange + reader-count check:
      // if the publisher saw zero readers after swapping, this pin is later
      // in the total order and must load the new pointer.
      map_.snap_readers_.fetch_add(1, std::memory_order_seq_cst);
      snap_ = map_.snapshot_.load(std::memory_order_seq_cst);
    }
    ~SnapshotRef() { map_.snap_readers_.fetch_sub(1, std::memory_order_release); }

    SnapshotRef(const SnapshotRef&) = delete;
    SnapshotRef& operator=(const SnapshotRef&) = delete;

    const MapSnapshot* get() const { return snap_; }

   private:
    const AddressMap& map_;
    const MapSnapshot* snap_ = nullptr;
  };

  // Whether the published snapshot matches the current generation.
  bool snapshot_current() const {
    return published_gen_.load(std::memory_order_acquire) ==
           gen_.load(std::memory_order_relaxed);
  }

  // Rebuilds and publishes the snapshot from the current entries. Caller
  // holds the lock (either mode; shared publishers race benignly — they
  // build identical snapshots, since mutation requires exclusive).
  void PublishSnapshot();

  // Returns the entry containing `addr`, or nullptr.
  MapEntry* Lookup(VmOffset addr);
  const MapEntry* Lookup(VmOffset addr) const;

  // Finds a free gap of `size` bytes at or above `hint` (page aligned).
  Result<VmOffset> FindSpace(VmSize size, VmOffset hint = 0) const;

  // True if [start, start+size) overlaps no entry and is within bounds.
  bool RangeFree(VmOffset start, VmSize size) const;

  // True if every byte of [start, start+size) is covered by entries.
  bool RangeFullyCovered(VmOffset start, VmSize size) const;

  // Inserts a new entry; the range must be free. Takes ownership.
  KernReturn Insert(MapEntry entry);

  // Splits entries so that `start` and `end` fall on entry boundaries, then
  // returns pointers to all entries overlapping [start, end), in order.
  // Pointers are valid until the next structural mutation.
  std::vector<MapEntry*> ClipRange(VmOffset start, VmOffset end);

  // Removes all entries overlapping [start, end) (clipping at the edges)
  // and returns them so the caller can release references and mappings.
  std::vector<MapEntry> RemoveRange(VmOffset start, VmOffset end);

  // All entries overlapping [start, end), without clipping.
  std::vector<MapEntry*> EntriesIn(VmOffset start, VmOffset end);

  // Every entry, in address order (vm_regions).
  std::vector<const MapEntry*> AllEntries() const;

  size_t entry_count() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

 private:
  friend class MapMutation;

  // Splits the entry containing `addr` so that an entry boundary falls
  // exactly at `addr` (no-op if already on a boundary).
  void ClipAt(VmOffset addr);

  // Generation bumps around a mutation; only MapMutation calls these, with
  // the lock held exclusively.
  void BeginMutation() { gen_.fetch_add(1, std::memory_order_acq_rel); }
  void EndMutation() { gen_.fetch_add(1, std::memory_order_acq_rel); }

  mutable std::shared_mutex mu_;
  VmOffset min_;
  VmOffset max_;
  VmSize page_size_;
  std::map<VmOffset, MapEntry> entries_;  // keyed by entry.start

  // Seqlock state (see the header comment). `published_gen_` starts at an
  // odd sentinel so snapshot_current() is false before the first publish.
  // The snapshot is a plain atomic pointer (not atomic<shared_ptr>, whose
  // libstdc++ implementation is an internal spinlock — a lock on the fault
  // fast path, and one ThreadSanitizer cannot see through); lifetime is
  // handled by the SnapshotRef epoch counter plus the retired list.
  std::atomic<uint64_t> gen_{0};
  std::atomic<uint64_t> published_gen_{uint64_t(-1)};
  std::atomic<const MapSnapshot*> snapshot_{nullptr};
  mutable std::atomic<uint64_t> snap_readers_{0};
  std::mutex retired_mu_;  // Leaf lock; taken only inside PublishSnapshot.
  std::vector<const MapSnapshot*> retired_;
};

// RAII for a map mutation: takes the map lock exclusively and brackets the
// scope with the generation bump (odd at entry, even again at exit — the
// destructor body runs EndMutation before the member unique_lock unlocks).
// Every writer to a top-level map's entries must use this, or optimistic
// readers would miss the mutation and trust a stale snapshot.
class MapMutation {
 public:
  explicit MapMutation(AddressMap& map) : map_(map), lk_(map.lock()) {
    map_.BeginMutation();
  }
  ~MapMutation() { map_.EndMutation(); }

  MapMutation(const MapMutation&) = delete;
  MapMutation& operator=(const MapMutation&) = delete;

 private:
  AddressMap& map_;
  std::unique_lock<std::shared_mutex> lk_;
};

}  // namespace mach

#endif  // SRC_VM_ADDRESS_MAP_H_
