#include "src/pager/protocol.h"

#include <cassert>

namespace mach {

Message EncodePagerInit(const PagerInitArgs& args) {
  Message msg(kMsgPagerInit);
  msg.PushPort(args.pager_request_port);
  msg.PushPort(args.pager_name_port);
  msg.PushU64(args.page_size);
  return msg;
}

Result<PagerInitArgs> DecodePagerInit(Message& msg) {
  PagerInitArgs args;
  Result<SendRight> req = msg.TakePort();
  Result<SendRight> name = msg.TakePort();
  Result<uint64_t> ps = msg.TakeU64();
  if (!req.ok() || !name.ok() || !ps.ok()) {
    return KernReturn::kInvalidArgument;
  }
  args.pager_request_port = std::move(req).value();
  args.pager_name_port = std::move(name).value();
  args.page_size = ps.value();
  return args;
}

Message EncodePagerDataRequest(const PagerDataRequestArgs& args) {
  assert(args.length != 0 && "pager_data_request length must cover >= 1 page");
  Message msg(kMsgPagerDataRequest);
  msg.PushPort(args.pager_request_port);
  msg.PushU64(args.offset);
  msg.PushU64(args.length);
  msg.PushU32(args.desired_access);
  return msg;
}

Result<PagerDataRequestArgs> DecodePagerDataRequest(Message& msg,
                                                    VmSize page_size) {
  PagerDataRequestArgs args;
  Result<SendRight> req = msg.TakePort();
  Result<uint64_t> off = msg.TakeU64();
  Result<uint64_t> len = msg.TakeU64();
  Result<uint32_t> acc = msg.TakeU32();
  if (!req.ok() || !off.ok() || !len.ok() || !acc.ok()) {
    return KernReturn::kInvalidArgument;
  }
  if (len.value() == 0) {
    return KernReturn::kProtocolViolation;
  }
  if (page_size != 0 &&
      (len.value() % page_size != 0 ||
       len.value() > uint64_t{kPagerMaxRunPages} * page_size)) {
    return KernReturn::kProtocolViolation;
  }
  args.pager_request_port = std::move(req).value();
  args.offset = off.value();
  args.length = len.value();
  args.desired_access = acc.value();
  return args;
}

Message EncodePagerDataWrite(const PagerDataWriteArgs& args) {
  Message msg(kMsgPagerDataWrite);
  msg.PushU64(args.offset);
  msg.PushData(args.data.data(), args.data.size());
  return msg;
}

Result<PagerDataWriteArgs> DecodePagerDataWrite(Message& msg) {
  PagerDataWriteArgs args;
  Result<uint64_t> off = msg.TakeU64();
  Result<std::vector<std::byte>> data = msg.TakeBytes();
  if (!off.ok() || !data.ok()) {
    return KernReturn::kInvalidArgument;
  }
  args.offset = off.value();
  args.data = std::move(data).value();
  return args;
}

Message EncodePagerDataUnlock(const PagerDataUnlockArgs& args) {
  Message msg(kMsgPagerDataUnlock);
  msg.PushPort(args.pager_request_port);
  msg.PushU64(args.offset);
  msg.PushU64(args.length);
  msg.PushU32(args.desired_access);
  return msg;
}

Result<PagerDataUnlockArgs> DecodePagerDataUnlock(Message& msg) {
  PagerDataUnlockArgs args;
  Result<SendRight> req = msg.TakePort();
  Result<uint64_t> off = msg.TakeU64();
  Result<uint64_t> len = msg.TakeU64();
  Result<uint32_t> acc = msg.TakeU32();
  if (!req.ok() || !off.ok() || !len.ok() || !acc.ok()) {
    return KernReturn::kInvalidArgument;
  }
  args.pager_request_port = std::move(req).value();
  args.offset = off.value();
  args.length = len.value();
  args.desired_access = acc.value();
  return args;
}

Message EncodePagerLockCompleted(const PagerLockCompletedArgs& args) {
  Message msg(kMsgPagerLockCompleted);
  msg.PushPort(args.pager_request_port);
  msg.PushU64(args.offset);
  msg.PushU64(args.length);
  return msg;
}

Result<PagerLockCompletedArgs> DecodePagerLockCompleted(Message& msg) {
  PagerLockCompletedArgs args;
  Result<SendRight> req = msg.TakePort();
  Result<uint64_t> off = msg.TakeU64();
  Result<uint64_t> len = msg.TakeU64();
  if (!req.ok() || !off.ok() || !len.ok()) {
    return KernReturn::kInvalidArgument;
  }
  args.pager_request_port = std::move(req).value();
  args.offset = off.value();
  args.length = len.value();
  return args;
}

Message EncodePagerCreate(PagerCreateArgs args) {
  Message msg(kMsgPagerCreate);
  msg.PushReceive(std::move(args.new_memory_object));
  msg.PushPort(args.new_request_port);
  msg.PushPort(args.new_name_port);
  msg.PushU64(args.page_size);
  return msg;
}

Result<PagerCreateArgs> DecodePagerCreate(Message& msg) {
  PagerCreateArgs args;
  Result<ReceiveRight> obj = msg.TakeReceive();
  Result<SendRight> req = msg.TakePort();
  Result<SendRight> name = msg.TakePort();
  Result<uint64_t> ps = msg.TakeU64();
  if (!obj.ok() || !req.ok() || !name.ok() || !ps.ok()) {
    return KernReturn::kInvalidArgument;
  }
  args.new_memory_object = std::move(obj).value();
  args.new_request_port = std::move(req).value();
  args.new_name_port = std::move(name).value();
  args.page_size = ps.value();
  return args;
}

Message EncodePagerDataProvided(const PagerDataProvidedArgs& args) {
  Message msg(kMsgPagerDataProvided);
  msg.PushU64(args.offset);
  msg.PushData(args.data.data(), args.data.size());
  msg.PushU32(args.lock_value);
  return msg;
}

Result<PagerDataProvidedArgs> DecodePagerDataProvided(Message& msg) {
  PagerDataProvidedArgs args;
  Result<uint64_t> off = msg.TakeU64();
  Result<std::vector<std::byte>> data = msg.TakeBytes();
  Result<uint32_t> lock = msg.TakeU32();
  if (!off.ok() || !data.ok() || !lock.ok()) {
    return KernReturn::kInvalidArgument;
  }
  args.offset = off.value();
  args.data = std::move(data).value();
  args.lock_value = lock.value();
  return args;
}

Message EncodePagerDataLock(const PagerDataLockArgs& args) {
  Message msg(kMsgPagerDataLock);
  msg.PushU64(args.offset);
  msg.PushU64(args.length);
  msg.PushU32(args.lock_value);
  return msg;
}

Result<PagerDataLockArgs> DecodePagerDataLock(Message& msg) {
  PagerDataLockArgs args;
  Result<uint64_t> off = msg.TakeU64();
  Result<uint64_t> len = msg.TakeU64();
  Result<uint32_t> lock = msg.TakeU32();
  if (!off.ok() || !len.ok() || !lock.ok()) {
    return KernReturn::kInvalidArgument;
  }
  args.offset = off.value();
  args.length = len.value();
  args.lock_value = lock.value();
  return args;
}

namespace {

Message EncodeRange(MsgId id, const PagerRangeArgs& args) {
  Message msg(id);
  msg.PushU64(args.offset);
  msg.PushU64(args.length);
  return msg;
}

Result<PagerRangeArgs> DecodeRange(Message& msg) {
  PagerRangeArgs args;
  Result<uint64_t> off = msg.TakeU64();
  Result<uint64_t> len = msg.TakeU64();
  if (!off.ok() || !len.ok()) {
    return KernReturn::kInvalidArgument;
  }
  args.offset = off.value();
  args.length = len.value();
  return args;
}

}  // namespace

Message EncodePagerFlushRequest(const PagerRangeArgs& args) {
  return EncodeRange(kMsgPagerFlushRequest, args);
}

Message EncodePagerCleanRequest(const PagerRangeArgs& args) {
  return EncodeRange(kMsgPagerCleanRequest, args);
}

Result<PagerRangeArgs> DecodePagerFlushRequest(Message& msg) { return DecodeRange(msg); }
Result<PagerRangeArgs> DecodePagerCleanRequest(Message& msg) { return DecodeRange(msg); }

Message EncodePagerCache(const PagerCacheArgs& args) {
  Message msg(kMsgPagerCache);
  msg.PushU32(args.may_cache ? 1 : 0);
  return msg;
}

Result<PagerCacheArgs> DecodePagerCache(Message& msg) {
  Result<uint32_t> v = msg.TakeU32();
  if (!v.ok()) {
    return KernReturn::kInvalidArgument;
  }
  return PagerCacheArgs{v.value() != 0};
}

Message EncodePagerDataUnavailable(const PagerDataUnavailableArgs& args) {
  Message msg(kMsgPagerDataUnavailable);
  msg.PushU64(args.offset);
  msg.PushU64(args.size);
  return msg;
}

Result<PagerDataUnavailableArgs> DecodePagerDataUnavailable(Message& msg) {
  Result<uint64_t> off = msg.TakeU64();
  Result<uint64_t> size = msg.TakeU64();
  if (!off.ok() || !size.ok()) {
    return KernReturn::kInvalidArgument;
  }
  return PagerDataUnavailableArgs{off.value(), size.value()};
}

Message EncodeShmGetRegion(const ShmGetRegionArgs& args) {
  Message msg(kMsgShmGetRegion);
  msg.PushString(args.name);
  msg.PushU64(args.size);
  return msg;
}

Result<ShmGetRegionArgs> DecodeShmGetRegion(Message& msg) {
  ShmGetRegionArgs args;
  Result<std::string> name = msg.TakeString();
  Result<uint64_t> size = msg.TakeU64();
  if (!name.ok() || !size.ok()) {
    return KernReturn::kInvalidArgument;
  }
  args.name = std::move(name).value();
  args.size = size.value();
  return args;
}

Message EncodeShmRegionInfo(const ShmRegionInfoArgs& args) {
  Message msg(kMsgShmRegionInfo);
  msg.PushU64(args.region_id);
  msg.PushU64(args.size);
  msg.PushU64(args.page_size);
  msg.PushU64(args.shard_objects.size());
  for (const SendRight& shard : args.shard_objects) {
    msg.PushPort(shard);
  }
  return msg;
}

Result<ShmRegionInfoArgs> DecodeShmRegionInfo(Message& msg) {
  ShmRegionInfoArgs args;
  Result<uint64_t> id = msg.TakeU64();
  Result<uint64_t> size = msg.TakeU64();
  Result<uint64_t> page_size = msg.TakeU64();
  Result<uint64_t> count = msg.TakeU64();
  if (!id.ok() || !size.ok() || !page_size.ok() || !count.ok()) {
    return KernReturn::kInvalidArgument;
  }
  args.region_id = id.value();
  args.size = size.value();
  args.page_size = page_size.value();
  args.shard_objects.reserve(count.value());
  for (uint64_t i = 0; i < count.value(); ++i) {
    Result<SendRight> shard = msg.TakePort();
    if (!shard.ok()) {
      return KernReturn::kInvalidArgument;
    }
    args.shard_objects.push_back(std::move(shard).value());
  }
  return args;
}

}  // namespace mach
