#include "src/pager/data_manager.h"

#include <algorithm>

#include "src/base/log.h"

namespace mach {

DataManager::DataManager(std::string name) : name_(std::move(name)) {
  PortPair notify = PortAllocate(name_ + "-notify");
  notify_receive_ = std::move(notify.receive);
  notify_send_ = notify.send;
  notify_receive_.port()->SetBacklog(1024);
  set_->Add(notify_receive_);
}

DataManager::~DataManager() { Stop(); }

void DataManager::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) {
    return;
  }
  thread_ = std::thread([this] { ServiceLoop(); });
}

void DataManager::Stop() {
  bool expected = true;
  if (!running_.compare_exchange_strong(expected, false)) {
    return;
  }
  if (thread_.joinable()) {
    thread_.join();
  }
}

SendRight DataManager::CreateMemoryObject(uint64_t cookie, const std::string& label) {
  PortPair pair = PortAllocate(name_ + "-" + label);
  // Generous backlog: the kernel's pageout path uses non-blocking sends and
  // diverts to the default pager when a manager's queue is full (§6.2.2).
  pair.receive.port()->SetBacklog(256);
  // Learn when the last client/kernel send right disappears; `send` below
  // keeps the count above zero, so this can't fire before we return.
  pair.receive.port()->RequestNoSendersNotification(notify_send_);
  SendRight send = pair.send;
  {
    std::lock_guard<std::mutex> g(mu_);
    ObjectState st;
    st.cookie = cookie;
    st.receive = std::move(pair.receive);
    set_->Add(st.receive);
    objects_.emplace(send.id(), std::move(st));
  }
  return send;
}

void DataManager::DestroyMemoryObject(const SendRight& memory_object) {
  ReleaseMemoryObject(memory_object.id());
}

void DataManager::ReleaseMemoryObject(uint64_t object_port_id) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = objects_.find(object_port_id);
  if (it == objects_.end()) {
    return;
  }
  set_->Remove(it->second.receive);
  objects_.erase(it);  // ReceiveRight destructor marks the port dead.
}

SendRight DataManager::AllocateServicePort(const std::string& label) {
  PortPair pair = PortAllocate(name_ + "-" + label);
  pair.receive.port()->SetBacklog(1024);
  SendRight send = pair.send;
  std::lock_guard<std::mutex> g(mu_);
  set_->Add(pair.receive);
  service_ports_.push_back(std::move(pair.receive));
  return send;
}

size_t DataManager::memory_object_count() const {
  std::lock_guard<std::mutex> g(mu_);
  return objects_.size();
}

void DataManager::RecordPageSize(uint64_t object_port_id, VmSize page_size) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = objects_.find(object_port_id);
  if (it != objects_.end()) {
    it->second.page_size = page_size;
  }
}

VmSize DataManager::LookupPageSize(uint64_t object_port_id) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = objects_.find(object_port_id);
  return it != objects_.end() ? it->second.page_size : 0;
}

bool DataManager::LookupCookie(uint64_t object_port_id, uint64_t* cookie_out) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = objects_.find(object_port_id);
  if (it == objects_.end()) {
    return false;
  }
  *cookie_out = it->second.cookie;
  return true;
}

void DataManager::ServiceLoop() {
  while (running_.load(std::memory_order_relaxed)) {
    Result<PortSet::ReceivedMessage> got = set_->ReceiveFrom(std::chrono::milliseconds(20));
    if (got.ok()) {
      Dispatch(got.value().port_id, std::move(got.value().message));
    }
    OnServiceTick(got.ok());
  }
}

void DataManager::Dispatch(uint64_t port_id, Message&& msg) {
  uint64_t cookie = 0;
  LookupCookie(port_id, &cookie);
  switch (msg.id()) {
    case kMsgPagerInit: {
      Result<PagerInitArgs> args = DecodePagerInit(msg);
      if (args.ok()) {
        // Watch the request port so the manager learns when the kernel
        // relinquishes the object (§4.1 port_death).
        if (args.value().pager_request_port.valid()) {
          args.value().pager_request_port.port()->RequestDeathNotification(notify_send_);
        }
        RecordPageSize(port_id, args.value().page_size);
        OnInit(port_id, cookie, std::move(args).value());
      }
      break;
    }
    case kMsgPagerDataRequest: {
      Result<PagerDataRequestArgs> args =
          DecodePagerDataRequest(msg, LookupPageSize(port_id));
      if (args.ok()) {
        OnDataRequest(port_id, cookie, std::move(args).value());
      } else if (args.status() == KernReturn::kProtocolViolation) {
        protocol_rejects_.fetch_add(1, std::memory_order_relaxed);
        MACH_LOG(kWarn) << name_ << ": rejected malformed pager_data_request ("
                        << KernReturnName(args.status()) << ") on port " << port_id;
      }
      break;
    }
    case kMsgPagerDataWrite: {
      Result<PagerDataWriteArgs> args = DecodePagerDataWrite(msg);
      if (args.ok()) {
        OnDataWrite(port_id, cookie, std::move(args).value());
      }
      break;
    }
    case kMsgPagerDataUnlock: {
      Result<PagerDataUnlockArgs> args = DecodePagerDataUnlock(msg);
      if (args.ok()) {
        OnDataUnlock(port_id, cookie, std::move(args).value());
      }
      break;
    }
    case kMsgPagerLockCompleted: {
      Result<PagerLockCompletedArgs> args = DecodePagerLockCompleted(msg);
      if (args.ok()) {
        OnLockCompleted(port_id, cookie, std::move(args).value());
      }
      break;
    }
    case kMsgPagerCreate: {
      Result<PagerCreateArgs> args = DecodePagerCreate(msg);
      if (args.ok()) {
        // Adopt the new memory object: its receive right joins our set.
        uint64_t adopted_id = args.value().new_memory_object.id();
        {
          std::lock_guard<std::mutex> g(mu_);
          ObjectState st;
          st.receive = std::move(args.value().new_memory_object);
          // The kernel kept a send right when it created the object, so the
          // count is nonzero here; when the kernel terminates the object
          // the manager hears about it and can reclaim backing storage.
          st.receive.port()->RequestNoSendersNotification(notify_send_);
          st.page_size = args.value().page_size;
          set_->Add(st.receive);
          objects_.emplace(adopted_id, std::move(st));
        }
        if (args.value().new_request_port.valid()) {
          args.value().new_request_port.port()->RequestDeathNotification(notify_send_);
        }
        OnCreate(adopted_id, std::move(args).value());
      }
      break;
    }
    case kMsgIdPortDeath: {
      // Trust the dedicated notify port only: any client holding a send
      // right to an object port could forge this message id (§6).
      if (port_id != notify_receive_.id()) {
        MACH_LOG(kWarn) << name_ << ": ignoring forged death notification on port " << port_id;
        break;
      }
      Result<uint64_t> dead = msg.TakeU64();
      if (dead.ok()) {
        OnPortDeath(dead.value());
      }
      break;
    }
    case kMsgIdNoSenders: {
      if (port_id != notify_receive_.id()) {
        MACH_LOG(kWarn) << name_ << ": ignoring forged no-senders notification on port "
                        << port_id;
        break;
      }
      Result<uint64_t> senderless = msg.TakeU64();
      if (senderless.ok()) {
        uint64_t object_cookie = 0;
        LookupCookie(senderless.value(), &object_cookie);
        OnNoSenders(senderless.value(), object_cookie);
      }
      break;
    }
    default: {
      const MsgId id = msg.id();
      if (!OnMessage(port_id, std::move(msg))) {
        MACH_LOG(kWarn) << name_ << ": unknown message id " << id;
      }
      break;
    }
  }
}

// --- Table 3-6 helpers -------------------------------------------------------

KernReturn DataManager::ProvideData(const SendRight& request_port, VmOffset offset,
                                    std::vector<std::byte> data, VmProt lock_value) {
  PagerDataProvidedArgs args;
  args.offset = offset;
  args.data = std::move(data);
  args.lock_value = lock_value;
  return MsgSend(request_port, EncodePagerDataProvided(args), std::chrono::milliseconds(2000));
}

KernReturn DataManager::DataUnavailable(const SendRight& request_port, VmOffset offset,
                                        VmSize size) {
  return MsgSend(request_port, EncodePagerDataUnavailable(PagerDataUnavailableArgs{offset, size}),
                 std::chrono::milliseconds(2000));
}

KernReturn DataManager::LockData(const SendRight& request_port, VmOffset offset, VmSize length,
                                 VmProt lock_value) {
  return MsgSend(request_port, EncodePagerDataLock(PagerDataLockArgs{offset, length, lock_value}),
                 std::chrono::milliseconds(2000));
}

KernReturn DataManager::FlushRequest(const SendRight& request_port, VmOffset offset,
                                     VmSize length) {
  return MsgSend(request_port, EncodePagerFlushRequest(PagerRangeArgs{offset, length}),
                 std::chrono::milliseconds(2000));
}

KernReturn DataManager::CleanRequest(const SendRight& request_port, VmOffset offset,
                                     VmSize length) {
  return MsgSend(request_port, EncodePagerCleanRequest(PagerRangeArgs{offset, length}),
                 std::chrono::milliseconds(2000));
}

KernReturn DataManager::SetCaching(const SendRight& request_port, bool may_cache) {
  return MsgSend(request_port, EncodePagerCache(PagerCacheArgs{may_cache}),
                 std::chrono::milliseconds(2000));
}

KernReturn DataManager::DowngradeToRead(const SendRight& request_port, VmOffset offset,
                                        VmSize length) {
  KernReturn kr = CleanRequest(request_port, offset, length);
  if (kr != KernReturn::kSuccess) {
    return kr;
  }
  // FIFO on the request port: the kernel cleans (writes back dirty data)
  // before it sees the write lock, so no dirty byte is stranded behind it.
  return LockData(request_port, offset, length, kVmProtWrite);
}

// --- PagerRunBuilder ---------------------------------------------------------

void PagerRunBuilder::AddData(VmOffset offset, std::vector<std::byte> page,
                              VmProt lock_value) {
  if (pending_ == Pending::kData && offset == start_ + data_.size() &&
      lock_value == lock_value_) {
    data_.insert(data_.end(), page.begin(), page.end());
    return;
  }
  Flush();
  pending_ = Pending::kData;
  start_ = offset;
  data_ = std::move(page);
  lock_value_ = lock_value;
}

void PagerRunBuilder::AddUnavailable(VmOffset offset, VmSize size) {
  if (pending_ == Pending::kUnavailable && offset == start_ + unavail_size_) {
    unavail_size_ += size;
    return;
  }
  Flush();
  pending_ = Pending::kUnavailable;
  start_ = offset;
  unavail_size_ = size;
}

KernReturn PagerRunBuilder::Flush() {
  KernReturn kr = KernReturn::kSuccess;
  switch (pending_) {
    case Pending::kNone:
      break;
    case Pending::kData:
      kr = DataManager::ProvideData(request_port_, start_, std::move(data_),
                                    lock_value_);
      data_.clear();
      ++messages_sent_;
      break;
    case Pending::kUnavailable:
      kr = DataManager::DataUnavailable(request_port_, start_, unavail_size_);
      unavail_size_ = 0;
      ++messages_sent_;
      break;
  }
  pending_ = Pending::kNone;
  if (first_error_ == KernReturn::kSuccess && kr != KernReturn::kSuccess) {
    first_error_ = kr;
  }
  return first_error_;
}

}  // namespace mach
