// Wire protocol for the external memory management interface: the kernel →
// data manager calls of Table 3-5 and the data manager → kernel calls of
// Table 3-6, carried over ordinary messages. Every call is asynchronous, as
// the paper specifies ("the calls do not have explicit return arguments and
// the kernel does not wait for acknowledgement").
//
// Kernel → manager messages are sent to the *memory object* port (except
// pager_create, which is sent to the default pager's service port since the
// new memory object's receive right is inside the message). Manager → kernel
// messages are sent to the *pager request* port for the (object, kernel)
// pair. Per-port FIFO gives the ordering guarantee managers rely on: a
// pager_data_write is seen before any subsequent pager_data_request for the
// same object.

#ifndef SRC_PAGER_PROTOCOL_H_
#define SRC_PAGER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/kern_return.h"
#include "src/base/vm_types.h"
#include "src/ipc/message.h"
#include "src/ipc/port.h"

namespace mach {

// Message ids. Kernel → data manager (Table 3-5):
inline constexpr MsgId kMsgPagerInit = 0x50000001;
inline constexpr MsgId kMsgPagerDataRequest = 0x50000002;
inline constexpr MsgId kMsgPagerDataWrite = 0x50000003;
inline constexpr MsgId kMsgPagerDataUnlock = 0x50000004;
inline constexpr MsgId kMsgPagerCreate = 0x50000005;
// pager_lock_completed (after Mach's memory_object_lock_completed): sent by
// the kernel once a pager_flush_request / pager_clean_request has been fully
// processed. Any dirty data was written back *first* on the same port, so a
// manager seeing lock_completed with no preceding pager_data_write knows the
// kernel's copy was clean — without resorting to a timeout.
inline constexpr MsgId kMsgPagerLockCompleted = 0x50000006;

// Data manager → kernel (Table 3-6):
inline constexpr MsgId kMsgPagerDataProvided = 0x60000001;
inline constexpr MsgId kMsgPagerDataLock = 0x60000002;
inline constexpr MsgId kMsgPagerFlushRequest = 0x60000003;
inline constexpr MsgId kMsgPagerCleanRequest = 0x60000004;
inline constexpr MsgId kMsgPagerCache = 0x60000005;
inline constexpr MsgId kMsgPagerDataUnavailable = 0x60000006;

// Shared-memory broker control (§4.2 region resolution): shm_get_region is
// sent to the broker's service port with a reply port; the broker answers
// with shm_region_info. Remote hosts talk to a NetLink proxy of the service
// port — the shard rights in the reply are proxied automatically.
inline constexpr MsgId kMsgShmGetRegion = 0x70000001;
inline constexpr MsgId kMsgShmRegionInfo = 0x70000002;

// Hard wire-level ceiling on a multi-page pager_data_request run, in pages.
// `Config::fault_ahead_max` is clamped to this at kernel construction, so a
// decoder can reject anything beyond it as malformed regardless of the
// kernel configuration that produced it.
inline constexpr uint32_t kPagerMaxRunPages = 64;

// --- Decoded message bodies ---------------------------------------------

// pager_init(memory_object, pager_request_port, pager_name)
struct PagerInitArgs {
  SendRight pager_request_port;
  SendRight pager_name_port;
  VmSize page_size = 0;
};

// pager_data_request(memory_object, pager_request_port, offset, length,
//                    desired_access)
struct PagerDataRequestArgs {
  SendRight pager_request_port;
  VmOffset offset = 0;
  VmSize length = 0;
  VmProt desired_access = kVmProtNone;
};

// pager_data_write(memory_object, offset, data, data_count)
struct PagerDataWriteArgs {
  VmOffset offset = 0;
  std::vector<std::byte> data;
};

// pager_data_unlock(memory_object, pager_request_port, offset, length,
//                   desired_access)
struct PagerDataUnlockArgs {
  SendRight pager_request_port;
  VmOffset offset = 0;
  VmSize length = 0;
  VmProt desired_access = kVmProtNone;
};

// pager_lock_completed(memory_object, pager_request_port, offset, length).
// The request port identifies which kernel finished the flush/clean.
struct PagerLockCompletedArgs {
  SendRight pager_request_port;
  VmOffset offset = 0;
  VmSize length = 0;
};

// pager_create(old_memory_object, new_memory_object, new_request_port,
//              new_name). The receive right for the new memory object
// travels in the message; the default pager becomes its manager.
struct PagerCreateArgs {
  ReceiveRight new_memory_object;
  SendRight new_request_port;
  SendRight new_name_port;
  VmSize page_size = 0;
};

// pager_data_provided(pager_request_port, offset, data, data_count,
//                     lock_value)
struct PagerDataProvidedArgs {
  VmOffset offset = 0;
  std::vector<std::byte> data;
  VmProt lock_value = kVmProtNone;
};

// pager_data_lock(pager_request_port, offset, length, lock_value)
struct PagerDataLockArgs {
  VmOffset offset = 0;
  VmSize length = 0;
  VmProt lock_value = kVmProtNone;
};

// pager_flush_request / pager_clean_request(pager_request_port, offset,
// length)
struct PagerRangeArgs {
  VmOffset offset = 0;
  VmSize length = 0;
};

// pager_cache(pager_request_port, may_cache_object)
struct PagerCacheArgs {
  bool may_cache = false;
};

// pager_data_unavailable(pager_request_port, offset, size)
struct PagerDataUnavailableArgs {
  VmOffset offset = 0;
  VmSize size = 0;
};

// shm_get_region(broker_service_port, name, size) — resolve (creating on
// first use) the named shared region.
struct ShmGetRegionArgs {
  std::string name;
  VmSize size = 0;
};

// shm_region_info: the region's identity plus one memory object per
// directory shard. Page index p of region r lives in
// shard_objects[HashCombine64(r, p) % shard_objects.size()].
struct ShmRegionInfoArgs {
  uint64_t region_id = 0;
  VmSize size = 0;
  VmSize page_size = 0;
  std::vector<SendRight> shard_objects;
};

// --- Encoders (build a Message) ------------------------------------------

Message EncodePagerInit(const PagerInitArgs& args);
Message EncodePagerDataRequest(const PagerDataRequestArgs& args);
Message EncodePagerDataWrite(const PagerDataWriteArgs& args);
Message EncodePagerDataUnlock(const PagerDataUnlockArgs& args);
Message EncodePagerLockCompleted(const PagerLockCompletedArgs& args);
Message EncodePagerCreate(PagerCreateArgs args);
Message EncodePagerDataProvided(const PagerDataProvidedArgs& args);
Message EncodePagerDataLock(const PagerDataLockArgs& args);
Message EncodePagerFlushRequest(const PagerRangeArgs& args);
Message EncodePagerCleanRequest(const PagerRangeArgs& args);
Message EncodePagerCache(const PagerCacheArgs& args);
Message EncodePagerDataUnavailable(const PagerDataUnavailableArgs& args);
Message EncodeShmGetRegion(const ShmGetRegionArgs& args);
Message EncodeShmRegionInfo(const ShmRegionInfoArgs& args);

// --- Decoders (consume a Message's items) ---------------------------------

Result<PagerInitArgs> DecodePagerInit(Message& msg);
// `page_size` is the page size the manager learned from pager_init /
// pager_create for this object (0 = unknown, e.g. a request racing ahead of
// init). A zero length is always kProtocolViolation; when the page size is
// known, a length that is not a multiple of it, or that covers more than
// kPagerMaxRunPages pages, is kProtocolViolation too.
Result<PagerDataRequestArgs> DecodePagerDataRequest(Message& msg,
                                                    VmSize page_size = 0);
Result<PagerDataWriteArgs> DecodePagerDataWrite(Message& msg);
Result<PagerDataUnlockArgs> DecodePagerDataUnlock(Message& msg);
Result<PagerLockCompletedArgs> DecodePagerLockCompleted(Message& msg);
Result<PagerCreateArgs> DecodePagerCreate(Message& msg);
Result<PagerDataProvidedArgs> DecodePagerDataProvided(Message& msg);
Result<PagerDataLockArgs> DecodePagerDataLock(Message& msg);
Result<PagerRangeArgs> DecodePagerFlushRequest(Message& msg);
Result<PagerRangeArgs> DecodePagerCleanRequest(Message& msg);
Result<PagerCacheArgs> DecodePagerCache(Message& msg);
Result<PagerDataUnavailableArgs> DecodePagerDataUnavailable(Message& msg);
Result<ShmGetRegionArgs> DecodeShmGetRegion(Message& msg);
Result<ShmRegionInfoArgs> DecodeShmRegionInfo(Message& msg);

}  // namespace mach

#endif  // SRC_PAGER_PROTOCOL_H_
