#include "src/pager/default_pager.h"

#include <cassert>

#include "src/base/log.h"

namespace mach {

DefaultPager::DefaultPager(SimDisk* disk) : DataManager("default-pager"), disk_(disk) {
  service_port_ = AllocateServicePort();
}

DefaultPager::~DefaultPager() {
  Stop();
  std::lock_guard<std::mutex> g(store_mu_);
  for (const auto& [key, block] : blocks_) {
    disk_->FreeBlock(block);
  }
  blocks_.clear();
}

void DefaultPager::OnCreate(uint64_t adopted_port_id, PagerCreateArgs args) {
  std::lock_guard<std::mutex> g(store_mu_);
  if (args.new_request_port.valid()) {
    request_to_object_.emplace(args.new_request_port.id(), adopted_port_id);
  }
  MACH_LOG(kDebug) << "default pager adopted object port " << adopted_port_id;
}

void DefaultPager::OnDataRequest(uint64_t object_port_id, uint64_t cookie,
                                 PagerDataRequestArgs args) {
  const VmSize page = disk_->block_size();
  // A multi-page (fault-ahead) request is answered with the minimal number
  // of messages: the builder coalesces contiguous provides and contiguous
  // unavailable spans, flushing at each transition and on destruction.
  PagerRunBuilder run(args.pager_request_port);
  for (VmOffset off = args.offset; off < args.offset + args.length; off += page) {
    uint32_t block = UINT32_MAX;
    {
      std::lock_guard<std::mutex> g(store_mu_);
      auto it = blocks_.find(BackingKey{object_port_id, off});
      if (it != blocks_.end()) {
        block = it->second;
      }
    }
    if (block == UINT32_MAX) {
      // No data was ever written for this page: the kernel zero-fills
      // (pager_data_unavailable, §3.4.1).
      run.AddUnavailable(off, page);
      continue;
    }
    std::vector<std::byte> data(page);
    if (!IsOk(disk_->ReadBlock(block, data.data()))) {
      // §6.2.1: a manager that cannot produce the page answers
      // pager_data_unavailable; the kernel applies its failure policy
      // rather than waiting out the fault timeout.
      backing_errors_.fetch_add(1, std::memory_order_relaxed);
      MACH_LOG(kWarn) << "default pager: backing read failed for block " << block;
      run.AddUnavailable(off, page);
      continue;
    }
    pageins_.fetch_add(1, std::memory_order_relaxed);
    run.AddData(off, std::move(data), kVmProtNone);
  }
}

void DefaultPager::OnDataWrite(uint64_t object_port_id, uint64_t cookie,
                               PagerDataWriteArgs args) {
  const VmSize page = disk_->block_size();
  assert(args.data.size() % page == 0);
  for (VmOffset delta = 0; delta < args.data.size(); delta += page) {
    BackingKey key{object_port_id, args.offset + delta};
    uint32_t block;
    {
      std::lock_guard<std::mutex> g(store_mu_);
      auto it = blocks_.find(key);
      if (it != blocks_.end()) {
        block = it->second;
      } else {
        block = disk_->AllocBlock();
        if (block == UINT32_MAX) {
          MACH_LOG(kError) << "default pager: backing store full";
          return;
        }
        blocks_.emplace(key, block);
      }
    }
    if (!IsOk(disk_->WriteBlock(block, args.data.data() + delta))) {
      // The page's prior backing copy (if any) is still intact; the next
      // pageout of this page retries the write.
      backing_errors_.fetch_add(1, std::memory_order_relaxed);
      MACH_LOG(kWarn) << "default pager: backing write failed for block " << block;
      continue;
    }
    pageouts_.fetch_add(1, std::memory_order_relaxed);
  }
}

void DefaultPager::OnPortDeath(uint64_t port_id) {
  // A request port died: the kernel released all references to the object;
  // free its backing store.
  uint64_t object_port_id = 0;
  {
    std::lock_guard<std::mutex> g(store_mu_);
    auto it = request_to_object_.find(port_id);
    if (it == request_to_object_.end()) {
      return;
    }
    object_port_id = it->second;
    request_to_object_.erase(it);
    for (auto bit = blocks_.begin(); bit != blocks_.end();) {
      if (bit->first.object_port_id == object_port_id) {
        disk_->FreeBlock(bit->second);
        bit = blocks_.erase(bit);
      } else {
        ++bit;
      }
    }
  }
  MACH_LOG(kDebug) << "default pager released storage for object " << object_port_id;
}

void DefaultPager::OnNoSenders(uint64_t object_port_id, uint64_t cookie) {
  // The kernel dropped its last send right (object termination, §3.4.1): no
  // pager_data_write can ever arrive for this object again, so both its
  // backing blocks and the adopted object port itself are garbage. Without
  // this, every kernel-created memory object leaks a port and its storage
  // for the life of the default pager.
  {
    std::lock_guard<std::mutex> g(store_mu_);
    for (auto it = blocks_.begin(); it != blocks_.end();) {
      if (it->first.object_port_id == object_port_id) {
        disk_->FreeBlock(it->second);
        it = blocks_.erase(it);
      } else {
        ++it;
      }
    }
  }
  ReleaseMemoryObject(object_port_id);
  MACH_LOG(kDebug) << "default pager reclaimed senderless object " << object_port_id;
}

void DefaultPager::Park(uint64_t object_id, VmOffset offset, std::vector<std::byte> data) {
  std::lock_guard<std::mutex> g(store_mu_);
  parked_[BackingKey{object_id, offset}] = std::move(data);
}

std::optional<std::vector<std::byte>> DefaultPager::Unpark(uint64_t object_id, VmOffset offset) {
  std::lock_guard<std::mutex> g(store_mu_);
  auto it = parked_.find(BackingKey{object_id, offset});
  if (it == parked_.end()) {
    return std::nullopt;
  }
  std::vector<std::byte> data = std::move(it->second);
  parked_.erase(it);
  return data;
}

void DefaultPager::Discard(uint64_t object_id) {
  // Parked entries are keyed by the kernel's object id, not a port, so port
  // death never reaches them; the kernel calls this at object termination
  // (including shadow-chain collapse) to keep dead objects' parked data
  // from accumulating.
  std::lock_guard<std::mutex> g(store_mu_);
  for (auto it = parked_.begin(); it != parked_.end();) {
    it = it->first.object_port_id == object_id ? parked_.erase(it) : std::next(it);
  }
}

uint64_t DefaultPager::parked_count() const {
  std::lock_guard<std::mutex> g(store_mu_);
  return parked_.size();
}

size_t DefaultPager::managed_object_count() const {
  std::lock_guard<std::mutex> g(store_mu_);
  return request_to_object_.size();
}

}  // namespace mach
