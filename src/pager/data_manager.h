// DataManager: the user-level side of the external memory management
// interface — the framework a "pager" task is built on (§3.4, §4).
//
// A data manager owns the receive rights of its memory object ports. Its
// service loop receives the kernel → manager calls of Table 3-5 on those
// ports (and pager_create on an optional service port), decodes them, and
// invokes the On* virtual methods. Helpers are provided for the manager →
// kernel calls of Table 3-6, which are sent to the pager request port the
// kernel supplied in pager_init.
//
// All On* upcalls run on the manager's service thread, one at a time — the
// single-threaded data manager of §4.1. A manager needing concurrency (e.g.
// to avoid self-deadlock per §6.1) can spawn work from the upcalls.

#ifndef SRC_PAGER_DATA_MANAGER_H_
#define SRC_PAGER_DATA_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/base/kern_return.h"
#include "src/base/vm_types.h"
#include "src/ipc/port.h"
#include "src/pager/protocol.h"

namespace mach {

class DataManager {
 public:
  explicit DataManager(std::string name);
  virtual ~DataManager();

  DataManager(const DataManager&) = delete;
  DataManager& operator=(const DataManager&) = delete;

  const std::string& name() const { return name_; }

  // Starts / stops the service thread. Stop() joins; safe to call twice.
  void Start();
  void Stop();

  // Creates a new memory object managed by this data manager and returns a
  // send right to it (the capability handed to clients for
  // vm_allocate_with_pager). `cookie` is an arbitrary manager-side tag
  // returned with every upcall for this object.
  SendRight CreateMemoryObject(uint64_t cookie, const std::string& label = "memory-object");

  // Destroys a memory object port (the manager's receive right). Kernels
  // holding send rights observe port death.
  void DestroyMemoryObject(const SendRight& memory_object);

  // Allocates a service port (used by the default pager to accept
  // pager_create). Messages on it are routed to OnCreate.
  SendRight AllocateServicePort(const std::string& label = "pager-service");

  // Manager-side cookie lookup (by memory object port id).
  bool LookupCookie(uint64_t object_port_id, uint64_t* cookie_out) const;

  // Number of memory objects (created + adopted) whose receive rights this
  // manager currently holds. Observability hook for reclamation tests.
  size_t memory_object_count() const;

  // pager_data_request messages dropped by the wire validator (zero length,
  // non-page-multiple, or beyond kPagerMaxRunPages).
  uint64_t protocol_rejects() const {
    return protocol_rejects_.load(std::memory_order_relaxed);
  }

  // --- Table 3-6 helpers (manager -> kernel, all asynchronous) ----------

  static KernReturn ProvideData(const SendRight& request_port, VmOffset offset,
                                std::vector<std::byte> data, VmProt lock_value);
  static KernReturn DataUnavailable(const SendRight& request_port, VmOffset offset, VmSize size);
  static KernReturn LockData(const SendRight& request_port, VmOffset offset, VmSize length,
                             VmProt lock_value);
  static KernReturn FlushRequest(const SendRight& request_port, VmOffset offset, VmSize length);
  static KernReturn CleanRequest(const SendRight& request_port, VmOffset offset, VmSize length);
  static KernReturn SetCaching(const SendRight& request_port, bool may_cache);
  // Demote a writer to reader: clean (write back dirty, keep the copy) then
  // re-lock the kept copy against writes. Used by the shm directory's
  // downgrade-on-read path.
  static KernReturn DowngradeToRead(const SendRight& request_port, VmOffset offset, VmSize length);

 protected:
  // --- Table 3-5 upcalls (kernel -> manager) ----------------------------
  // `object_port_id` identifies the memory object; `cookie` is the tag given
  // at CreateMemoryObject (0 for adopted pager_create objects).

  virtual void OnInit(uint64_t object_port_id, uint64_t cookie, PagerInitArgs args) {}
  virtual void OnDataRequest(uint64_t object_port_id, uint64_t cookie,
                             PagerDataRequestArgs args) = 0;
  virtual void OnDataWrite(uint64_t object_port_id, uint64_t cookie, PagerDataWriteArgs args) {}
  virtual void OnDataUnlock(uint64_t object_port_id, uint64_t cookie,
                            PagerDataUnlockArgs args) {}
  // A kernel finished processing a flush/clean request. Dirty data (if any)
  // was written back before this on the same port, so a completion with no
  // preceding data_write means the kernel's copy was clean.
  virtual void OnLockCompleted(uint64_t object_port_id, uint64_t cookie,
                               PagerLockCompletedArgs args) {}
  // pager_create (default pager only): `adopted_port_id` is the id of the
  // newly adopted memory object port.
  virtual void OnCreate(uint64_t adopted_port_id, PagerCreateArgs args) {}
  // A port the kernel held died — for a pager request port this means all
  // references to the object are gone and shutdown may proceed (§3.4.1).
  virtual void OnPortDeath(uint64_t port_id) {}
  // The last send right to one of this manager's memory object ports died:
  // no kernel or client can ever page against the object again. Delivery is
  // at-least-once and advisory (a new send right may have been minted
  // since); a manager that wants the object gone calls
  // ReleaseMemoryObject(). Default: keep the object (a manager may hand out
  // fresh rights later, e.g. a file pager re-mapping a cached file).
  virtual void OnNoSenders(uint64_t object_port_id, uint64_t cookie) {}
  // Called on the service thread after each message (or receive timeout);
  // managers use it for deadline/maintenance work.
  virtual void OnIdle() {}
  // Called once per service pass with whether the pass delivered a message.
  // Managers running on virtual time (the shm directory) override this to
  // advance their clock only on idle passes — a deadline then cannot expire
  // while work is still queued. Default preserves the per-pass OnIdle.
  virtual void OnServiceTick(bool serviced) { OnIdle(); }
  // Non-pager messages (e.g. the shm broker's control protocol) land here.
  // Return true if handled; false logs the unknown-message warning.
  virtual bool OnMessage(uint64_t port_id, Message&& msg) { return false; }

  // Drops the manager's receive right for `object_port_id` (the port dies;
  // remaining senders observe kPortDead). The usual response to OnNoSenders
  // for objects nobody will map again.
  void ReleaseMemoryObject(uint64_t object_port_id);

 private:
  struct ObjectState {
    ReceiveRight receive;
    uint64_t cookie = 0;
    // Learned from pager_init / pager_create; 0 until then. Lets the
    // dispatcher validate a data request's length against the real page
    // size instead of trusting the wire.
    VmSize page_size = 0;
  };

  void ServiceLoop();
  void Dispatch(uint64_t port_id, Message&& msg);
  void RecordPageSize(uint64_t object_port_id, VmSize page_size);
  VmSize LookupPageSize(uint64_t object_port_id) const;

  const std::string name_;
  mutable std::mutex mu_;
  std::shared_ptr<PortSet> set_ = PortSet::Create();
  std::unordered_map<uint64_t, ObjectState> objects_;  // by port id
  // Death and no-senders notifications arrive here — and only here: both
  // are trusted solely when they arrive on this port, since any sender
  // could forge the same message ids on an object port (§6).
  ReceiveRight notify_receive_;
  SendRight notify_send_;
  std::vector<ReceiveRight> service_ports_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> protocol_rejects_{0};
};

// Coalesces a manager's per-page answers to one (possibly multi-page)
// pager_data_request into the minimal number of manager → kernel messages:
// contiguous provided pages sharing one lock_value collapse into a single
// multi-page pager_data_provided, contiguous unavailable offsets into a
// single pager_data_unavailable. A gap, a lock change, or switching between
// the two kinds flushes the pending run. Flush() (also run by the
// destructor) sends whatever is pending; a manager may simply answer page
// by page through the builder and the batching falls out.
class PagerRunBuilder {
 public:
  explicit PagerRunBuilder(SendRight request_port)
      : request_port_(std::move(request_port)) {}
  ~PagerRunBuilder() { Flush(); }

  PagerRunBuilder(const PagerRunBuilder&) = delete;
  PagerRunBuilder& operator=(const PagerRunBuilder&) = delete;

  void AddData(VmOffset offset, std::vector<std::byte> page, VmProt lock_value);
  void AddUnavailable(VmOffset offset, VmSize size);

  // Sends the pending run, if any. Returns the first send error seen over
  // the builder's lifetime (sticky), kSuccess otherwise.
  KernReturn Flush();

  // Manager → kernel messages this builder has sent (tests/benches).
  uint64_t messages_sent() const { return messages_sent_; }

 private:
  enum class Pending { kNone, kData, kUnavailable };

  SendRight request_port_;
  Pending pending_ = Pending::kNone;
  VmOffset start_ = 0;
  std::vector<std::byte> data_;   // kData: accumulated contiguous bytes.
  VmSize unavail_size_ = 0;       // kUnavailable: accumulated span.
  VmProt lock_value_ = kVmProtNone;
  KernReturn first_error_ = KernReturn::kSuccess;
  uint64_t messages_sent_ = 0;
};

}  // namespace mach

#endif  // SRC_PAGER_DATA_MANAGER_H_
