// The default pager (§6.2.2): the trusted data manager that provides backing
// storage for kernel-created memory objects — anonymous vm_allocate memory,
// copy-on-write shadow objects, and temporary pageout data. It speaks the
// same external interface as any other data manager ("there are no
// fundamental assumptions made about the nature of secondary storage"), plus
// the trusted parking side-store the kernel uses to divert pageouts away
// from errant managers.
//
// Storage is a SimDisk with one block per page, allocated lazily on the
// first pager_data_write for each (object, offset).

#ifndef SRC_PAGER_DEFAULT_PAGER_H_
#define SRC_PAGER_DEFAULT_PAGER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/base/hash.h"
#include "src/hw/sim_disk.h"
#include "src/pager/data_manager.h"
#include "src/pager/parking.h"

namespace mach {

class DefaultPager : public DataManager, public TrustedParkingStore {
 public:
  // `disk` provides the backing store; its block size must equal the system
  // page size.
  explicit DefaultPager(SimDisk* disk);
  ~DefaultPager() override;

  // The port on which the kernel sends pager_create calls (§3.4.1); give
  // this to Kernel/VmSystem::SetDefaultPager.
  const SendRight& service_port() const { return service_port_; }

  // --- TrustedParkingStore (§6.2.2) --------------------------------------
  void Park(uint64_t object_id, VmOffset offset, std::vector<std::byte> data) override;
  std::optional<std::vector<std::byte>> Unpark(uint64_t object_id, VmOffset offset) override;
  void Discard(uint64_t object_id) override;

  // Statistics.
  uint64_t pagein_count() const { return pageins_.load(std::memory_order_relaxed); }
  uint64_t pageout_count() const { return pageouts_.load(std::memory_order_relaxed); }
  // Backing-store I/O failures (injected or bad-block). A failed read is
  // answered with pager_data_unavailable per §6.2.1.
  uint64_t backing_error_count() const { return backing_errors_.load(std::memory_order_relaxed); }
  uint64_t parked_count() const;
  size_t managed_object_count() const;

 protected:
  void OnCreate(uint64_t adopted_port_id, PagerCreateArgs args) override;
  void OnDataRequest(uint64_t object_port_id, uint64_t cookie, PagerDataRequestArgs args) override;
  void OnDataWrite(uint64_t object_port_id, uint64_t cookie, PagerDataWriteArgs args) override;
  void OnPortDeath(uint64_t port_id) override;
  void OnNoSenders(uint64_t object_port_id, uint64_t cookie) override;

 private:
  struct BackingKey {
    uint64_t object_port_id;
    VmOffset offset;
    bool operator==(const BackingKey& o) const {
      return object_port_id == o.object_port_id && offset == o.offset;
    }
  };
  struct BackingKeyHash {
    size_t operator()(const BackingKey& k) const {
      // Same clustering hazard as the kernel's resident-page table: both
      // fields are structured (small ids, page-aligned offsets), so mix
      // fully (see src/base/hash.h).
      return static_cast<size_t>(HashCombine64(k.object_port_id, k.offset));
    }
  };

  SimDisk* const disk_;
  SendRight service_port_;

  mutable std::mutex store_mu_;
  std::unordered_map<BackingKey, uint32_t, BackingKeyHash> blocks_;
  // Which object each request port belongs to, for shutdown on port death.
  std::unordered_map<uint64_t, uint64_t> request_to_object_;
  std::unordered_map<BackingKey, std::vector<std::byte>, BackingKeyHash> parked_;

  std::atomic<uint64_t> pageins_{0};
  std::atomic<uint64_t> pageouts_{0};
  std::atomic<uint64_t> backing_errors_{0};
};

}  // namespace mach

#endif  // SRC_PAGER_DEFAULT_PAGER_H_
