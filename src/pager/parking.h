// The trusted parking side-store (§6.2.2): when an external data manager
// cannot accept a pager_data_write promptly, the kernel diverts the dirty
// page data here — "the data may then be paged out to the default pager. In
// this way, the kernel is protected from starvation by errant data
// managers." Implemented by the default pager; consumed by VmSystem.
//
// Calls must not block or re-enter VmSystem (they are made while VM object
// locks are held — tier 3 of the lock order in vm_system.h).

#ifndef SRC_PAGER_PARKING_H_
#define SRC_PAGER_PARKING_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/base/vm_types.h"

namespace mach {

class TrustedParkingStore {
 public:
  virtual ~TrustedParkingStore() = default;
  virtual void Park(uint64_t object_id, VmOffset offset, std::vector<std::byte> data) = 0;
  virtual std::optional<std::vector<std::byte>> Unpark(uint64_t object_id, VmOffset offset) = 0;
  // Drops every parked page of `object_id`. Called when the object is
  // terminated (including shadow-chain collapse), whose parked data is
  // unreachable afterwards; without this the store leaks dead objects' data.
  virtual void Discard(uint64_t object_id) {}
};

}  // namespace mach

#endif  // SRC_PAGER_PARKING_H_
