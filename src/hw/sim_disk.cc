#include "src/hw/sim_disk.h"

#include <cassert>
#include <cstring>

namespace mach {

SimDisk::SimDisk(uint32_t block_count, VmSize block_size, SimClock* clock,
                 DiskLatencyModel latency, FaultInjector* injector)
    : block_count_(block_count),
      block_size_(block_size),
      clock_(clock),
      latency_(latency),
      injector_(injector),
      data_(static_cast<size_t>(block_count) * block_size) {
  free_list_.reserve(block_count);
  for (uint32_t b = block_count; b > 0; --b) {
    free_list_.push_back(b - 1);
  }
}

void SimDisk::Charge(VmSize bytes) {
  if (clock_ != nullptr) {
    clock_->Charge(latency_.per_op_ns + latency_.per_byte_ns * bytes);
  }
  bytes_.fetch_add(bytes, std::memory_order_relaxed);
}

KernReturn SimDisk::CheckTransfer(uint32_t block, VmOffset offset, VmSize len, bool is_write) {
  if (block >= block_count_ || offset > block_size_ || len > block_size_ - offset) {
    return KernReturn::kInvalidArgument;
  }
  bool bad;
  {
    std::lock_guard<std::mutex> g(mu_);
    bad = bad_blocks_.count(block) != 0;
  }
  if (!bad && injector_ != nullptr) {
    bad = injector_->ShouldFail(is_write ? kFaultWrite : kFaultRead);
  }
  if (bad) {
    // A failed transfer still costs the seek (and retries re-charge).
    Charge(0);
    (is_write ? write_errors_ : read_errors_).fetch_add(1, std::memory_order_relaxed);
    return KernReturn::kFailure;
  }
  return KernReturn::kSuccess;
}

KernReturn SimDisk::ReadBlock(uint32_t block, void* dst) {
  return ReadAt(block, 0, dst, block_size_);
}

KernReturn SimDisk::WriteBlock(uint32_t block, const void* src) {
  return WriteAt(block, 0, src, block_size_);
}

KernReturn SimDisk::ReadAt(uint32_t block, VmOffset offset, void* dst, VmSize len) {
  KernReturn kr = CheckTransfer(block, offset, len, /*is_write=*/false);
  if (!IsOk(kr)) {
    return kr;
  }
  {
    std::lock_guard<std::mutex> g(mu_);
    std::memcpy(dst, data_.data() + static_cast<size_t>(block) * block_size_ + offset, len);
  }
  read_ops_.fetch_add(1, std::memory_order_relaxed);
  Charge(len);
  return KernReturn::kSuccess;
}

KernReturn SimDisk::WriteAt(uint32_t block, VmOffset offset, const void* src, VmSize len) {
  KernReturn kr = CheckTransfer(block, offset, len, /*is_write=*/true);
  if (!IsOk(kr)) {
    return kr;
  }
  {
    std::lock_guard<std::mutex> g(mu_);
    std::memcpy(data_.data() + static_cast<size_t>(block) * block_size_ + offset, src, len);
  }
  write_ops_.fetch_add(1, std::memory_order_relaxed);
  Charge(len);
  return KernReturn::kSuccess;
}

void SimDisk::MarkBadBlock(uint32_t block) {
  std::lock_guard<std::mutex> g(mu_);
  bad_blocks_.insert(block);
}

void SimDisk::ClearBadBlock(uint32_t block) {
  std::lock_guard<std::mutex> g(mu_);
  bad_blocks_.erase(block);
}

uint32_t SimDisk::AllocBlock() {
  std::lock_guard<std::mutex> g(mu_);
  if (free_list_.empty()) {
    return UINT32_MAX;
  }
  uint32_t b = free_list_.back();
  free_list_.pop_back();
  return b;
}

void SimDisk::FreeBlock(uint32_t block) {
  std::lock_guard<std::mutex> g(mu_);
  assert(block < block_count_);
  free_list_.push_back(block);
}

uint32_t SimDisk::free_blocks() const {
  std::lock_guard<std::mutex> g(mu_);
  return static_cast<uint32_t>(free_list_.size());
}

void SimDisk::ResetStats() {
  read_ops_.store(0, std::memory_order_relaxed);
  write_ops_.store(0, std::memory_order_relaxed);
  bytes_.store(0, std::memory_order_relaxed);
  read_errors_.store(0, std::memory_order_relaxed);
  write_errors_.store(0, std::memory_order_relaxed);
}

}  // namespace mach
