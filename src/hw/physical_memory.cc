#include "src/hw/physical_memory.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace mach {

PhysicalMemory::PhysicalMemory(uint32_t frame_count, VmSize page_size)
    : frame_count_(frame_count),
      page_size_(page_size),
      data_(static_cast<size_t>(frame_count) * page_size),
      frames_(frame_count) {
  assert(page_size != 0 && (page_size & (page_size - 1)) == 0);
  free_list_.reserve(frame_count);
  // Hand frames out in ascending order for reproducibility.
  for (uint32_t f = frame_count; f > 0; --f) {
    free_list_.push_back(f - 1);
  }
}

std::optional<uint32_t> PhysicalMemory::AllocFrame() {
  uint32_t frame;
  {
    std::lock_guard<std::mutex> g(free_mu_);
    if (free_list_.empty()) {
      return std::nullopt;
    }
    frame = free_list_.back();
    free_list_.pop_back();
  }
  std::lock_guard<std::mutex> fg(frames_[frame].mu);
  frames_[frame].referenced = false;
  frames_[frame].modified = false;
  assert(frames_[frame].pv.empty());
  return frame;
}

void PhysicalMemory::FreeFrame(uint32_t frame) {
  assert(frame < frame_count_);
  {
    std::lock_guard<std::mutex> fg(frames_[frame].mu);
    assert(frames_[frame].pv.empty());
  }
  std::lock_guard<std::mutex> g(free_mu_);
  free_list_.push_back(frame);
}

uint32_t PhysicalMemory::free_frames() const {
  std::lock_guard<std::mutex> g(free_mu_);
  return static_cast<uint32_t>(free_list_.size());
}

void PhysicalMemory::ReadFrame(uint32_t frame, VmOffset offset, void* dst, VmSize len) {
  assert(frame < frame_count_ && offset + len <= page_size_);
  std::lock_guard<std::mutex> g(frames_[frame].mu);
  std::memcpy(dst, data_.data() + static_cast<size_t>(frame) * page_size_ + offset, len);
  frames_[frame].referenced = true;
}

void PhysicalMemory::WriteFrame(uint32_t frame, VmOffset offset, const void* src, VmSize len) {
  assert(frame < frame_count_ && offset + len <= page_size_);
  std::lock_guard<std::mutex> g(frames_[frame].mu);
  std::memcpy(data_.data() + static_cast<size_t>(frame) * page_size_ + offset, src, len);
  frames_[frame].referenced = true;
  frames_[frame].modified = true;
}

void PhysicalMemory::ZeroFrame(uint32_t frame) {
  assert(frame < frame_count_);
  std::lock_guard<std::mutex> g(frames_[frame].mu);
  std::memset(data_.data() + static_cast<size_t>(frame) * page_size_, 0, page_size_);
}

void PhysicalMemory::CopyFrame(uint32_t src_frame, uint32_t dst_frame) {
  assert(src_frame < frame_count_ && dst_frame < frame_count_);
  assert(src_frame != dst_frame);
  // The only place two frame locks are held together: take them in index
  // order so concurrent copies cannot deadlock.
  Frame& first = frames_[std::min(src_frame, dst_frame)];
  Frame& second = frames_[std::max(src_frame, dst_frame)];
  std::lock_guard<std::mutex> g1(first.mu);
  std::lock_guard<std::mutex> g2(second.mu);
  std::memcpy(data_.data() + static_cast<size_t>(dst_frame) * page_size_,
              data_.data() + static_cast<size_t>(src_frame) * page_size_, page_size_);
}

bool PhysicalMemory::IsReferenced(uint32_t frame) const {
  std::lock_guard<std::mutex> g(frames_[frame].mu);
  return frames_[frame].referenced;
}

bool PhysicalMemory::IsModified(uint32_t frame) const {
  std::lock_guard<std::mutex> g(frames_[frame].mu);
  return frames_[frame].modified;
}

void PhysicalMemory::ClearReference(uint32_t frame) {
  std::lock_guard<std::mutex> g(frames_[frame].mu);
  frames_[frame].referenced = false;
}

void PhysicalMemory::ClearModify(uint32_t frame) {
  std::lock_guard<std::mutex> g(frames_[frame].mu);
  frames_[frame].modified = false;
}

void PhysicalMemory::SetReference(uint32_t frame) {
  std::lock_guard<std::mutex> g(frames_[frame].mu);
  frames_[frame].referenced = true;
}

void PhysicalMemory::SetModify(uint32_t frame) {
  std::lock_guard<std::mutex> g(frames_[frame].mu);
  frames_[frame].modified = true;
}

void PhysicalMemory::PvAdd(uint32_t frame, Pmap* pmap, VmOffset vaddr) {
  std::lock_guard<std::mutex> g(frames_[frame].mu);
  frames_[frame].pv.push_back(PvEntry{pmap, vaddr});
}

void PhysicalMemory::PvRemove(uint32_t frame, Pmap* pmap, VmOffset vaddr) {
  std::lock_guard<std::mutex> g(frames_[frame].mu);
  auto& pv = frames_[frame].pv;
  auto it = std::find_if(pv.begin(), pv.end(), [&](const PvEntry& e) {
    return e.pmap == pmap && e.vaddr == vaddr;
  });
  if (it != pv.end()) {
    pv.erase(it);
  }
}

std::vector<PvEntry> PhysicalMemory::PvList(uint32_t frame) const {
  std::lock_guard<std::mutex> g(frames_[frame].mu);
  return frames_[frame].pv;
}

}  // namespace mach
