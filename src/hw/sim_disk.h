// Simulated secondary storage. A flat array of fixed-size blocks with a
// configurable latency model charged to a SimClock, plus operation counters.
//
// The default pager, the filesystem manager and the Camelot disk manager all
// sit on SimDisk. §6.2.2: "there are no fundamental assumptions made about
// the nature of secondary storage" — the latency model is the only
// device-specific behaviour, and it is pluggable.
//
// I/O can fail: out-of-range access returns kInvalidArgument, a block marked
// bad returns kFailure permanently, and a FaultInjector (points "disk.read" /
// "disk.write") can fail any individual transfer transiently. Clients must
// check the returned KernReturn.

#ifndef SRC_HW_SIM_DISK_H_
#define SRC_HW_SIM_DISK_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "src/base/fault_injector.h"
#include "src/base/kern_return.h"
#include "src/base/sim_clock.h"
#include "src/base/vm_types.h"

namespace mach {

struct DiskLatencyModel {
  // Charged once per operation (seek + rotational average).
  uint64_t per_op_ns = 20'000'000;  // 20 ms: a late-80s winchester disk.
  // Charged per byte transferred (~1 MB/s transfer rate by default).
  uint64_t per_byte_ns = 1'000;
};

class SimDisk {
 public:
  // Fault points consulted on every transfer when an injector is attached.
  static constexpr const char* kFaultRead = "disk.read";
  static constexpr const char* kFaultWrite = "disk.write";

  SimDisk(uint32_t block_count, VmSize block_size, SimClock* clock,
          DiskLatencyModel latency = DiskLatencyModel{}, FaultInjector* injector = nullptr);

  SimDisk(const SimDisk&) = delete;
  SimDisk& operator=(const SimDisk&) = delete;

  VmSize block_size() const { return block_size_; }
  uint32_t block_count() const { return block_count_; }

  // Attach/detach a fault injector after construction (not thread-safe with
  // respect to in-flight I/O; do it while the disk is quiescent).
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  // Reads/writes one whole block. Returns kInvalidArgument for out-of-range
  // blocks, kFailure for bad blocks or injected I/O errors.
  KernReturn ReadBlock(uint32_t block, void* dst);
  KernReturn WriteBlock(uint32_t block, const void* src);

  // Partial-block access (used by log managers). Still charged as one op.
  KernReturn ReadAt(uint32_t block, VmOffset offset, void* dst, VmSize len);
  KernReturn WriteAt(uint32_t block, VmOffset offset, const void* src, VmSize len);

  // Permanent media failure for one block: every subsequent transfer touching
  // it fails until ClearBadBlock.
  void MarkBadBlock(uint32_t block);
  void ClearBadBlock(uint32_t block);

  // Simple block allocator for managers that want one.
  // Returns UINT32_MAX when the disk is full.
  uint32_t AllocBlock();
  void FreeBlock(uint32_t block);
  uint32_t free_blocks() const;

  // Statistics for the benchmarks (§9 counts I/O operations).
  uint64_t read_ops() const { return read_ops_.load(std::memory_order_relaxed); }
  uint64_t write_ops() const { return write_ops_.load(std::memory_order_relaxed); }
  uint64_t total_ops() const { return read_ops() + write_ops(); }
  uint64_t bytes_transferred() const { return bytes_.load(std::memory_order_relaxed); }
  uint64_t read_errors() const { return read_errors_.load(std::memory_order_relaxed); }
  uint64_t write_errors() const { return write_errors_.load(std::memory_order_relaxed); }
  void ResetStats();

 private:
  void Charge(VmSize bytes);
  // Range check + bad-block check + injector consultation, shared by all
  // four transfer entry points. Charges the op (a failed transfer still
  // costs the seek).
  KernReturn CheckTransfer(uint32_t block, VmOffset offset, VmSize len, bool is_write);

  const uint32_t block_count_;
  const VmSize block_size_;
  SimClock* const clock_;
  const DiskLatencyModel latency_;
  FaultInjector* injector_;

  mutable std::mutex mu_;
  std::vector<std::byte> data_;
  std::vector<uint32_t> free_list_;
  std::unordered_set<uint32_t> bad_blocks_;

  std::atomic<uint64_t> read_ops_{0};
  std::atomic<uint64_t> write_ops_{0};
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> read_errors_{0};
  std::atomic<uint64_t> write_errors_{0};
};

}  // namespace mach

#endif  // SRC_HW_SIM_DISK_H_
