// The physical map (pmap) module — the machine-dependent half of the Mach VM
// system (§5.5 "hardware validation"). A Pmap holds the virtual-to-physical
// translations for one address map. Everything above this layer is machine-
// independent, exactly as the paper describes.
//
// "User" code has no real MMU here, so every simulated memory access is an
// explicit Access() call: it performs translation, protection check,
// reference/modify bit maintenance and the data copy atomically, which is
// the contract a CPU load/store gives the kernel. A failed Access() is a
// page fault: the caller (the task copyin/copyout layer) invokes the kernel
// fault handler and retries.
//
// Lock order: Pmap::mu_ may be held while taking the PhysicalMemory bus
// mutex, never the reverse (callers that walk pv lists copy them first).

#ifndef SRC_HW_PMAP_H_
#define SRC_HW_PMAP_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "src/base/vm_types.h"
#include "src/hw/physical_memory.h"

namespace mach {

class Pmap {
 public:
  explicit Pmap(PhysicalMemory* phys) : phys_(phys) {}
  ~Pmap();

  Pmap(const Pmap&) = delete;
  Pmap& operator=(const Pmap&) = delete;

  // Result of a failed Access(): which fault the "hardware" raised.
  enum class FaultKind {
    kNone,        // Access succeeded.
    kNotPresent,  // No translation for the page.
    kProtection,  // Translation present but protection insufficient.
  };

  struct AccessResult {
    FaultKind fault = FaultKind::kNone;
    VmOffset fault_addr = 0;  // Page-aligned address of the faulting page.
  };

  // pmap_enter: installs (or replaces) the translation for the page
  // containing `vaddr`.
  void Enter(VmOffset vaddr, uint32_t frame, VmProt prot);

  // Conditional pmap_enter for optimistic (lock-free) fault installs: the
  // translation goes in only if `gen` still equals `expected`, checked
  // under this pmap's lock. A VM-layer mutation bumps its generation before
  // performing any pmap updates of its own, so an install that validates
  // here cannot be reordered after a clamp it should have observed: either
  // the clamp already ran (then the generation changed and we refuse) or it
  // has not reached this pmap yet (then it serialises behind us on mu_ and
  // lowers what we installed). Returns whether the translation was
  // installed.
  bool EnterIf(VmOffset vaddr, uint32_t frame, VmProt prot,
               const std::atomic<uint64_t>& gen, uint64_t expected);

  // pmap_remove: removes translations for [start, end).
  void Remove(VmOffset start, VmOffset end);

  // pmap_protect: lowers the protection of translations in [start, end)
  // to at most `prot` (removing them if prot == none).
  void Protect(VmOffset start, VmOffset end, VmProt prot);

  // pmap_page_protect: lowers the protection of *every* mapping of `frame`,
  // in all pmaps, to at most `prot`. Used for copy-on-write write-protection
  // and for pageout (prot == none). Callers serialise against racing new
  // mappings with the owning VmObject's lock (faults only install a frame
  // while it is pinned, and pinned frames are re-checked at unpin).
  static void PageProtect(PhysicalMemory* phys, uint32_t frame, VmProt prot);

  // Simulated CPU access: copies `len` bytes between `buf` and the virtual
  // range starting at `vaddr` *within one page*. Returns the fault raised,
  // if any. Reference (and modify, for writes) bits are set on success.
  AccessResult Access(VmOffset vaddr, void* buf, VmSize len, bool is_write);

  // Translation query (no access, no bit updates). Used by tests and by the
  // fault handler's fast revalidation path.
  std::optional<uint32_t> Translate(VmOffset vaddr, VmProt required) const;

  // Returns the current protection of the page's translation, if present.
  std::optional<VmProt> ProtectionOf(VmOffset vaddr) const;

  // Number of installed translations (for tests/statistics).
  size_t entry_count() const;

  PhysicalMemory* phys() const { return phys_; }

 private:
  struct Translation {
    uint32_t frame;
    VmProt prot;
  };

  void EnterLocked(VmOffset page_addr, uint32_t frame, VmProt prot);
  void RemoveLocked(VmOffset page_addr);

  // Called by PageProtect via the pv list.
  void LowerProtection(VmOffset page_addr, uint32_t frame, VmProt prot);

  PhysicalMemory* const phys_;
  mutable std::mutex mu_;
  std::unordered_map<VmOffset, Translation> table_;  // keyed by page address
};

}  // namespace mach

#endif  // SRC_HW_PMAP_H_
