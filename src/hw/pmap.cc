#include "src/hw/pmap.h"

#include <cassert>

namespace mach {

Pmap::~Pmap() {
  // Drop all pv entries for translations still installed.
  std::lock_guard<std::mutex> g(mu_);
  for (const auto& [page_addr, tr] : table_) {
    phys_->PvRemove(tr.frame, this, page_addr);
  }
  table_.clear();
}

void Pmap::Enter(VmOffset vaddr, uint32_t frame, VmProt prot) {
  VmOffset page_addr = TruncPage(vaddr, phys_->page_size());
  std::lock_guard<std::mutex> g(mu_);
  EnterLocked(page_addr, frame, prot);
}

bool Pmap::EnterIf(VmOffset vaddr, uint32_t frame, VmProt prot,
                   const std::atomic<uint64_t>& gen, uint64_t expected) {
  VmOffset page_addr = TruncPage(vaddr, phys_->page_size());
  std::lock_guard<std::mutex> g(mu_);
  if (gen.load(std::memory_order_acquire) != expected) {
    return false;
  }
  EnterLocked(page_addr, frame, prot);
  return true;
}

void Pmap::EnterLocked(VmOffset page_addr, uint32_t frame, VmProt prot) {
  auto it = table_.find(page_addr);
  if (it != table_.end()) {
    if (it->second.frame == frame) {
      it->second.prot = prot;
      return;
    }
    phys_->PvRemove(it->second.frame, this, page_addr);
    table_.erase(it);
  }
  table_.emplace(page_addr, Translation{frame, prot});
  phys_->PvAdd(frame, this, page_addr);
}

void Pmap::Remove(VmOffset start, VmOffset end) {
  VmSize ps = phys_->page_size();
  std::lock_guard<std::mutex> g(mu_);
  for (VmOffset a = TruncPage(start, ps); a < end; a += ps) {
    RemoveLocked(a);
  }
}

void Pmap::RemoveLocked(VmOffset page_addr) {
  auto it = table_.find(page_addr);
  if (it == table_.end()) {
    return;
  }
  phys_->PvRemove(it->second.frame, this, page_addr);
  table_.erase(it);
}

void Pmap::Protect(VmOffset start, VmOffset end, VmProt prot) {
  VmSize ps = phys_->page_size();
  std::lock_guard<std::mutex> g(mu_);
  for (VmOffset a = TruncPage(start, ps); a < end; a += ps) {
    auto it = table_.find(a);
    if (it == table_.end()) {
      continue;
    }
    if (prot == kVmProtNone) {
      phys_->PvRemove(it->second.frame, this, a);
      table_.erase(it);
    } else {
      it->second.prot &= prot;
    }
  }
}

void Pmap::LowerProtection(VmOffset page_addr, uint32_t frame, VmProt prot) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = table_.find(page_addr);
  if (it == table_.end() || it->second.frame != frame) {
    return;  // Mapping changed since the pv list was sampled.
  }
  if (prot == kVmProtNone) {
    phys_->PvRemove(frame, this, page_addr);
    table_.erase(it);
  } else {
    it->second.prot &= prot;
  }
}

void Pmap::PageProtect(PhysicalMemory* phys, uint32_t frame, VmProt prot) {
  // Copy the pv list first: pv access takes the bus lock, and we must not
  // hold it while taking individual pmap locks (lock order pmap > bus).
  for (const PvEntry& e : phys->PvList(frame)) {
    e.pmap->LowerProtection(e.vaddr, frame, prot);
  }
}

Pmap::AccessResult Pmap::Access(VmOffset vaddr, void* buf, VmSize len, bool is_write) {
  VmSize ps = phys_->page_size();
  VmOffset page_addr = TruncPage(vaddr, ps);
  assert(vaddr - page_addr + len <= ps);  // One page at a time.
  std::lock_guard<std::mutex> g(mu_);
  auto it = table_.find(page_addr);
  if (it == table_.end()) {
    return AccessResult{FaultKind::kNotPresent, page_addr};
  }
  VmProt required = is_write ? kVmProtWrite : kVmProtRead;
  if ((it->second.prot & required) != required) {
    return AccessResult{FaultKind::kProtection, page_addr};
  }
  // Perform the access while holding our table lock so the translation
  // cannot be torn down mid-copy (TLB-entry-level atomicity).
  if (is_write) {
    phys_->WriteFrame(it->second.frame, vaddr - page_addr, buf, len);
  } else {
    phys_->ReadFrame(it->second.frame, vaddr - page_addr, buf, len);
  }
  return AccessResult{};
}

std::optional<uint32_t> Pmap::Translate(VmOffset vaddr, VmProt required) const {
  VmOffset page_addr = TruncPage(vaddr, phys_->page_size());
  std::lock_guard<std::mutex> g(mu_);
  auto it = table_.find(page_addr);
  if (it == table_.end() || (it->second.prot & required) != required) {
    return std::nullopt;
  }
  return it->second.frame;
}

std::optional<VmProt> Pmap::ProtectionOf(VmOffset vaddr) const {
  VmOffset page_addr = TruncPage(vaddr, phys_->page_size());
  std::lock_guard<std::mutex> g(mu_);
  auto it = table_.find(page_addr);
  if (it == table_.end()) {
    return std::nullopt;
  }
  return it->second.prot;
}

size_t Pmap::entry_count() const {
  std::lock_guard<std::mutex> g(mu_);
  return table_.size();
}

}  // namespace mach
