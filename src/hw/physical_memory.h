// Simulated physical memory: a fixed array of page frames plus the pieces of
// state real memory hardware keeps — per-frame reference/modify bits and the
// set of virtual mappings of each frame (the "pv list" a real pmap module
// maintains so it can find every mapping of a physical page).
//
// All access to frame contents goes through this class so that the hardware
// bits are maintained exactly as an MMU would maintain them. Each frame has
// its own lock serialising that frame's data, bits, and pv list — the
// per-cache-line atomicity real memory hardware gives — so accesses to
// distinct frames proceed in parallel on a multiprocessor. The free list has
// a separate lock. Frame locks nest inside Pmap::mu_ (a pmap may access a
// frame while holding its table lock, never the reverse) and two frame locks
// are only ever held together by CopyFrame, which acquires them in frame-
// index order.

#ifndef SRC_HW_PHYSICAL_MEMORY_H_
#define SRC_HW_PHYSICAL_MEMORY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "src/base/vm_types.h"

namespace mach {

class Pmap;

// Identifies one mapping of a physical frame (an entry on the frame's
// pv list).
struct PvEntry {
  Pmap* pmap;
  VmOffset vaddr;
};

class PhysicalMemory {
 public:
  // `frame_count` frames of `page_size` bytes each. `page_size` must be a
  // power of two (it is the *system* page size — a boot-time parameter per
  // §3.3, any multiple of a hardware page).
  PhysicalMemory(uint32_t frame_count, VmSize page_size);

  PhysicalMemory(const PhysicalMemory&) = delete;
  PhysicalMemory& operator=(const PhysicalMemory&) = delete;

  VmSize page_size() const { return page_size_; }
  uint32_t frame_count() const { return frame_count_; }

  // Raw frame allocation. The VM layer's free queue sits above this; these
  // simply hand out unused frames. Returns nullopt when exhausted.
  std::optional<uint32_t> AllocFrame();
  void FreeFrame(uint32_t frame);
  uint32_t free_frames() const;

  // Frame content access (performs the copy under the frame's lock and
  // maintains hardware bits the way a CPU access through a TLB entry would).
  void ReadFrame(uint32_t frame, VmOffset offset, void* dst, VmSize len);
  void WriteFrame(uint32_t frame, VmOffset offset, const void* src, VmSize len);
  void ZeroFrame(uint32_t frame);
  void CopyFrame(uint32_t src_frame, uint32_t dst_frame);

  // Hardware reference / modify bits.
  bool IsReferenced(uint32_t frame) const;
  bool IsModified(uint32_t frame) const;
  void ClearReference(uint32_t frame);
  void ClearModify(uint32_t frame);
  void SetReference(uint32_t frame);
  void SetModify(uint32_t frame);

  // pv-list maintenance, used by Pmap.
  void PvAdd(uint32_t frame, Pmap* pmap, VmOffset vaddr);
  void PvRemove(uint32_t frame, Pmap* pmap, VmOffset vaddr);
  std::vector<PvEntry> PvList(uint32_t frame) const;

 private:
  struct Frame {
    mutable std::mutex mu;
    bool referenced = false;
    bool modified = false;
    std::vector<PvEntry> pv;
  };

  const uint32_t frame_count_;
  const VmSize page_size_;
  std::vector<std::byte> data_;
  std::vector<Frame> frames_;
  std::vector<uint32_t> free_list_;
  mutable std::mutex free_mu_;
};

}  // namespace mach

#endif  // SRC_HW_PHYSICAL_MEMORY_H_
