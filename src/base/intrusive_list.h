// A minimal intrusive doubly-linked list, in the style of the queue package
// the historical Mach kernel used for its page queues and object page lists.
//
// Elements embed one IntrusiveListNode per list they can belong to; a list is
// parameterised by a member pointer so the same element type can sit on
// several lists simultaneously (e.g. a VmPage is on its object's page list
// and on one of the global pageout queues at the same time).
//
// The list never owns its elements and never allocates.

#ifndef SRC_BASE_INTRUSIVE_LIST_H_
#define SRC_BASE_INTRUSIVE_LIST_H_

#include <cassert>
#include <cstddef>

namespace mach {

struct IntrusiveListNode {
  IntrusiveListNode* prev = nullptr;
  IntrusiveListNode* next = nullptr;

  bool linked() const { return next != nullptr; }
};

template <typename T, IntrusiveListNode T::* Node>
class IntrusiveList {
 public:
  IntrusiveList() {
    head_.prev = &head_;
    head_.next = &head_;
  }
  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  bool empty() const { return head_.next == &head_; }
  size_t size() const { return size_; }

  void PushBack(T* elem) { InsertBefore(&head_, elem); }
  void PushFront(T* elem) { InsertBefore(head_.next, elem); }

  T* Front() const { return empty() ? nullptr : FromNode(head_.next); }
  T* Back() const { return empty() ? nullptr : FromNode(head_.prev); }

  // Removes and returns the first element, or nullptr when empty.
  T* PopFront() {
    T* elem = Front();
    if (elem != nullptr) {
      Remove(elem);
    }
    return elem;
  }

  void Remove(T* elem) {
    IntrusiveListNode* n = &(elem->*Node);
    assert(n->linked());
    n->prev->next = n->next;
    n->next->prev = n->prev;
    n->prev = nullptr;
    n->next = nullptr;
    --size_;
  }

  bool Contains(const T* elem) const { return (elem->*Node).linked(); }

  // Iteration. Safe against removal of the *current* element only if the
  // caller advances first (use the ForEach helper for removal-safe walks).
  class Iterator {
   public:
    Iterator(const IntrusiveList* list, IntrusiveListNode* node) : list_(list), node_(node) {}
    T* operator*() const { return FromNode(node_); }
    Iterator& operator++() {
      node_ = node_->next;
      return *this;
    }
    bool operator!=(const Iterator& o) const { return node_ != o.node_; }

   private:
    const IntrusiveList* list_;
    IntrusiveListNode* node_;
  };

  Iterator begin() const { return Iterator(this, head_.next); }
  Iterator end() const { return Iterator(this, const_cast<IntrusiveListNode*>(&head_)); }

  // Removal-safe traversal: `fn` may remove the element it is given.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    IntrusiveListNode* n = head_.next;
    while (n != &head_) {
      IntrusiveListNode* next = n->next;
      fn(FromNode(n));
      n = next;
    }
  }

 private:
  static T* FromNode(IntrusiveListNode* n) {
    // Recover the element address from the embedded node address.
    // Avoids UB-prone offsetof-on-non-standard-layout by using the member
    // pointer on a null-adjusted object; this is the classical containerof.
    alignas(T) static char probe_storage[sizeof(T)];
    T* probe = reinterpret_cast<T*>(probe_storage);
    ptrdiff_t off = reinterpret_cast<char*>(&(probe->*Node)) - reinterpret_cast<char*>(probe);
    return reinterpret_cast<T*>(reinterpret_cast<char*>(n) - off);
  }

  void InsertBefore(IntrusiveListNode* pos, T* elem) {
    IntrusiveListNode* n = &(elem->*Node);
    assert(!n->linked());
    n->prev = pos->prev;
    n->next = pos;
    pos->prev->next = n;
    pos->prev = n;
    ++size_;
  }

  IntrusiveListNode head_;
  size_t size_ = 0;
};

}  // namespace mach

#endif  // SRC_BASE_INTRUSIVE_LIST_H_
