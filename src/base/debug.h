// MACH_DEBUG_ASSERT: invariant checks for debug and sanitizer builds.
//
// The tier-1 build is RelWithDebInfo, which defines NDEBUG and compiles
// plain assert() away. Lock-hierarchy invariants (a drained queue-batch
// deferral list at fault exit, seqlock generation parity) are exactly the
// kind of thing the sanitizer lanes exist to catch, so those configurations
// define MACH_DEBUG_ASSERTS (see CMakeLists.txt) and keep these checks live
// even under NDEBUG.

#ifndef SRC_BASE_DEBUG_H_
#define SRC_BASE_DEBUG_H_

#include <cstdio>
#include <cstdlib>

#if !defined(NDEBUG) || defined(MACH_DEBUG_ASSERTS)
#define MACH_DEBUG_ASSERT(cond)                                          \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::std::fprintf(stderr, "MACH_DEBUG_ASSERT failed: %s at %s:%d\n", \
                     #cond, __FILE__, __LINE__);                         \
      ::std::abort();                                                    \
    }                                                                    \
  } while (0)
#else
#define MACH_DEBUG_ASSERT(cond) \
  do {                          \
    (void)sizeof(cond);         \
  } while (0)
#endif

#endif  // SRC_BASE_DEBUG_H_
