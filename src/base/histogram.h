// A small HDR-style log-bucketed histogram for latency samples.
//
// Values (virtual nanoseconds, typically) land in buckets that grow
// geometrically: each power-of-two range is split into kSubBuckets linear
// sub-buckets, so relative quantile error is bounded by 1/kSubBuckets
// (~1.6%) at any magnitude while the whole table stays a few KiB. Records
// are O(1) with no allocation; percentiles interpolate within the winning
// bucket. Not thread-safe — record into per-thread instances and Merge().

#ifndef SRC_BASE_HISTOGRAM_H_
#define SRC_BASE_HISTOGRAM_H_

#include <array>
#include <cstdint>
#include <string>

namespace mach {

class Histogram {
 public:
  static constexpr uint32_t kSubBucketBits = 6;  // 64 sub-buckets per octave.
  static constexpr uint32_t kSubBuckets = 1u << kSubBucketBits;
  // Octaves above the linear range; covers values up to 2^(6+58) — more
  // than any virtual-time span this repo can produce.
  static constexpr uint32_t kOctaves = 58;
  static constexpr size_t kBuckets = kSubBuckets + kOctaves * kSubBuckets;

  Histogram() = default;

  // Adds one sample. Values have no unit baked in; callers pick one
  // (nanoseconds throughout this repo) and stay consistent.
  void Record(uint64_t value);

  // Adds every sample of `other` into this histogram.
  void Merge(const Histogram& other);

  void Reset();

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  // Truncating integer mean (0 when empty).
  uint64_t Mean() const { return count_ == 0 ? 0 : sum_ / count_; }

  // Value at quantile q in [0, 1]: the smallest recorded magnitude v such
  // that at least ceil(q * count) samples are <= v's bucket, interpolated
  // linearly inside the bucket. 0 when empty.
  uint64_t Percentile(double q) const;
  uint64_t P50() const { return Percentile(0.50); }
  uint64_t P99() const { return Percentile(0.99); }
  uint64_t P999() const { return Percentile(0.999); }

  // One JSON object: {"count":N,"min":..,"mean":..,"p50":..,"p99":..,
  // "p999":..,"max":..}. Flat scalars only, so it nests anywhere.
  std::string ToJson() const;

 private:
  // Bucket index for a value; the first kSubBuckets buckets are exact
  // (width 1), after which widths double every octave.
  static size_t BucketIndex(uint64_t value);
  // Inclusive value range covered by bucket `index`.
  static uint64_t BucketLow(size_t index);
  static uint64_t BucketHigh(size_t index);

  std::array<uint64_t, kBuckets> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
};

}  // namespace mach

#endif  // SRC_BASE_HISTOGRAM_H_
