// Tiny leveled logger. Off by default (kError only) so tests stay quiet;
// set MACH_LOG=debug|info|warn in the environment to see kernel traffic.

#ifndef SRC_BASE_LOG_H_
#define SRC_BASE_LOG_H_

#include <sstream>
#include <string>

namespace mach {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Current threshold, initialised from the MACH_LOG environment variable.
LogLevel LogThreshold();

void LogWrite(LogLevel level, const std::string& msg);

namespace log_internal {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogWrite(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace log_internal

}  // namespace mach

#define MACH_LOG(level)                                   \
  if (::mach::LogLevel::level < ::mach::LogThreshold()) { \
  } else                                                  \
    ::mach::log_internal::LogLine(::mach::LogLevel::level)

#endif  // SRC_BASE_LOG_H_
