#include "src/base/histogram.h"

#include <algorithm>
#include <cstdio>

namespace mach {

namespace {

// Position of the highest set bit (value > 0).
inline uint32_t HighBit(uint64_t value) {
  return 63u - static_cast<uint32_t>(__builtin_clzll(value));
}

}  // namespace

size_t Histogram::BucketIndex(uint64_t value) {
  if (value < kSubBuckets) {
    return static_cast<size_t>(value);  // Exact, width-1 buckets.
  }
  const uint32_t e = HighBit(value);           // 2^e <= value < 2^(e+1).
  const uint32_t octave = e - kSubBucketBits;  // 0-based octave above linear.
  const uint64_t sub = (value >> octave) - kSubBuckets;  // [0, kSubBuckets).
  return kSubBuckets + octave * kSubBuckets + static_cast<size_t>(sub);
}

uint64_t Histogram::BucketLow(size_t index) {
  if (index < kSubBuckets) {
    return index;
  }
  const size_t g = index - kSubBuckets;
  const uint32_t octave = static_cast<uint32_t>(g / kSubBuckets);
  const uint64_t sub = g % kSubBuckets;
  return (kSubBuckets + sub) << octave;
}

uint64_t Histogram::BucketHigh(size_t index) {
  if (index < kSubBuckets) {
    return index;
  }
  const uint32_t octave = static_cast<uint32_t>((index - kSubBuckets) / kSubBuckets);
  return BucketLow(index) + ((uint64_t{1} << octave) - 1);
}

void Histogram::Record(uint64_t value) {
  ++buckets_[BucketIndex(value)];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  for (size_t i = 0; i < kBuckets; ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::Reset() { *this = Histogram(); }

uint64_t Histogram::Percentile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the wanted sample, 1-based.
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count_) + 0.5);
  target = std::clamp<uint64_t>(target, 1, count_);
  uint64_t cum = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    cum += buckets_[i];
    if (cum >= target) {
      // Interpolate linearly inside the bucket, clamped to the recorded
      // extremes so tiny populations don't report values never seen.
      const uint64_t low = BucketLow(i);
      const uint64_t high = BucketHigh(i);
      const uint64_t rank_in = target - (cum - buckets_[i]);  // [1, n].
      const uint64_t v =
          low + (high - low) * (rank_in - 1) / std::max<uint64_t>(buckets_[i], 1);
      return std::clamp(v, min_, max_);
    }
  }
  return max_;
}

std::string Histogram::ToJson() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"count\": %llu, \"min\": %llu, \"mean\": %llu, \"p50\": %llu, "
                "\"p99\": %llu, \"p999\": %llu, \"max\": %llu}",
                static_cast<unsigned long long>(count_),
                static_cast<unsigned long long>(min()),
                static_cast<unsigned long long>(Mean()),
                static_cast<unsigned long long>(P50()),
                static_cast<unsigned long long>(P99()),
                static_cast<unsigned long long>(P999()),
                static_cast<unsigned long long>(max_));
  return buf;
}

}  // namespace mach
