#include "src/base/kern_return.h"

namespace mach {

const char* KernReturnName(KernReturn kr) {
  switch (kr) {
    case KernReturn::kSuccess:
      return "KERN_SUCCESS";
    case KernReturn::kInvalidAddress:
      return "KERN_INVALID_ADDRESS";
    case KernReturn::kProtectionFailure:
      return "KERN_PROTECTION_FAILURE";
    case KernReturn::kNoSpace:
      return "KERN_NO_SPACE";
    case KernReturn::kInvalidArgument:
      return "KERN_INVALID_ARGUMENT";
    case KernReturn::kFailure:
      return "KERN_FAILURE";
    case KernReturn::kResourceShortage:
      return "KERN_RESOURCE_SHORTAGE";
    case KernReturn::kNoAccess:
      return "KERN_NO_ACCESS";
    case KernReturn::kMemoryFailure:
      return "KERN_MEMORY_FAILURE";
    case KernReturn::kMemoryError:
      return "KERN_MEMORY_ERROR";
    case KernReturn::kAborted:
      return "KERN_ABORTED";
    case KernReturn::kInvalidCapability:
      return "KERN_INVALID_CAPABILITY";
    case KernReturn::kMemoryPresent:
      return "KERN_MEMORY_PRESENT";
    case KernReturn::kPortDead:
      return "MSG_PORT_DEAD";
    case KernReturn::kPortFull:
      return "MSG_PORT_FULL";
    case KernReturn::kTimedOut:
      return "MSG_TIMED_OUT";
    case KernReturn::kNotReceiver:
      return "MSG_NOT_RECEIVER";
    case KernReturn::kWouldBlock:
      return "MSG_WOULD_BLOCK";
    case KernReturn::kNoMessage:
      return "MSG_NO_MESSAGE";
    case KernReturn::kNotFound:
      return "KERN_NOT_FOUND";
    case KernReturn::kAlreadyExists:
      return "KERN_ALREADY_EXISTS";
    case KernReturn::kMigrationAborted:
      return "KERN_MIGRATION_ABORTED";
    case KernReturn::kProtocolViolation:
      return "KERN_PROTOCOL_VIOLATION";
  }
  return "KERN_UNKNOWN";
}

}  // namespace mach
