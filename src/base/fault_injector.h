// Deterministic, seeded fault injection.
//
// §6 of the paper is about surviving errant data managers, and §7 about
// running over real (lossy) interconnects. The FaultInjector makes those
// failure paths drivable: components that can fail consult a named *fault
// point* ("disk.read", "net.drop", ...) before doing work, and the injector
// decides — purely as a function of (seed, point name, hit index) — whether
// that particular occurrence fails.
//
// Determinism contract: for a given seed, the k-th evaluation of a given
// point always returns the same decision, regardless of how evaluations of
// *different* points interleave across threads. This makes a chaos run
// replayable from its seed alone.

#ifndef SRC_BASE_FAULT_INJECTOR_H_
#define SRC_BASE_FAULT_INJECTOR_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace mach {

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 0) : seed_(seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // --- configuration (typically done once, before the run) ---------------

  // Fail each evaluation of `point` independently with probability `p`
  // (0.0..1.0). The per-hit decision is derived from the seed, so the same
  // seed produces the same fault trace.
  void SetProbability(const std::string& point, double p);

  // Fail exactly the listed hit indices (0-based) of `point`. A schedule
  // overrides any probability for the scheduled point.
  void SetSchedule(const std::string& point, std::vector<uint64_t> hit_indices);

  // Fail every `n`-th evaluation of `point` (hits n-1, 2n-1, ...). n == 0
  // clears the rule.
  void SetEveryNth(const std::string& point, uint64_t n);

  // Remove all rules for `point` (it will never fire).
  void Clear(const std::string& point);
  // Remove all rules and reset all hit counters.
  void Reset(uint64_t new_seed);

  // --- the hot call -------------------------------------------------------

  // Should this occurrence of `point` fail? Advances the point's hit
  // counter. Unconfigured points are always healthy (and cheap).
  bool ShouldFail(const std::string& point);

  // --- introspection ------------------------------------------------------

  uint64_t seed() const { return seed_; }
  // Total evaluations / injected failures of one point.
  uint64_t Evaluations(const std::string& point) const;
  uint64_t Injected(const std::string& point) const;
  // Across all points.
  uint64_t TotalInjected() const;
  // "point:injected/evaluations" lines, sorted by point name (stable for
  // trace comparison in tests).
  std::vector<std::string> Report() const;

 private:
  struct PointState {
    // Rule: exactly one of these is active.
    double probability = 0.0;             // > 0 ⇒ probabilistic rule
    uint64_t every_nth = 0;               // > 0 ⇒ modular rule
    bool has_schedule = false;
    std::unordered_set<uint64_t> schedule;

    // Counters.
    uint64_t hits = 0;
    uint64_t injected = 0;
  };

  bool Decide(const std::string& point, const PointState& st, uint64_t hit) const;

  uint64_t seed_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, PointState> points_;
};

}  // namespace mach

#endif  // SRC_BASE_FAULT_INJECTOR_H_
