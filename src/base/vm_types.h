// Fundamental VM value types shared by every layer: offsets, sizes,
// protections (vm_prot_t) and inheritance (vm_inherit_t), as defined in
// Tables 3-3 / 3-4 of the paper.

#ifndef SRC_BASE_VM_TYPES_H_
#define SRC_BASE_VM_TYPES_H_

#include <cstdint>

namespace mach {

using VmOffset = uint64_t;  // vm_offset_t: an address or offset in a map/object.
using VmSize = uint64_t;    // vm_size_t: a byte count.

// vm_prot_t. Combinable bit flags.
using VmProt = uint32_t;
inline constexpr VmProt kVmProtNone = 0;
inline constexpr VmProt kVmProtRead = 1u << 0;
inline constexpr VmProt kVmProtWrite = 1u << 1;
inline constexpr VmProt kVmProtExecute = 1u << 2;
inline constexpr VmProt kVmProtAll = kVmProtRead | kVmProtWrite | kVmProtExecute;
inline constexpr VmProt kVmProtDefault = kVmProtRead | kVmProtWrite;

// vm_inherit_t: how an address range transfers to a child task (§3.3).
enum class VmInherit : uint8_t {
  kShare = 0,  // Child shares the memory read/write with the parent.
  kCopy = 1,   // Child receives a copy-on-write copy.
  kNone = 2,   // Range is absent from the child.
};

// Rounds `x` down/up to a multiple of `page_size` (a power of two).
inline constexpr VmOffset TruncPage(VmOffset x, VmSize page_size) {
  return x & ~(page_size - 1);
}
inline constexpr VmOffset RoundPage(VmOffset x, VmSize page_size) {
  return (x + page_size - 1) & ~(page_size - 1);
}

}  // namespace mach

#endif  // SRC_BASE_VM_TYPES_H_
