// Hashing helpers for kernel hash tables.
//
// The resident-page table (§5.3) and the default pager's backing-store map
// are keyed by (object, page-aligned offset). Offsets are multiples of the
// page size and object pointers share allocator alignment, so naive
// shift-and-xor hashes leave most low bits constant and cluster whole
// objects into a handful of buckets. SplitMix64 is a full-avalanche 64-bit
// finalizer (Steele et al.): every input bit affects every output bit, so
// structured keys spread uniformly.

#ifndef SRC_BASE_HASH_H_
#define SRC_BASE_HASH_H_

#include <cstddef>
#include <cstdint>

namespace mach {

// The SplitMix64 finalizer: a cheap bijective mixer with full avalanche.
inline constexpr uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Mixes two 64-bit fields into one well-distributed hash. Each field is
// avalanched before combining so that structure in either one (alignment,
// small ranges, shared high bits) cannot survive into the bucket index.
inline constexpr uint64_t HashCombine64(uint64_t a, uint64_t b) {
  return SplitMix64(a ^ SplitMix64(b));
}

inline size_t HashPointerAndU64(const void* p, uint64_t v) {
  return static_cast<size_t>(HashCombine64(reinterpret_cast<uintptr_t>(p), v));
}

}  // namespace mach

#endif  // SRC_BASE_HASH_H_
