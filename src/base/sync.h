// Small synchronisation helpers shared across the kernel: a timeout type
// matching Mach's msg_send/msg_receive timeout semantics, and a waitable
// event used by tests.

#ifndef SRC_BASE_SYNC_H_
#define SRC_BASE_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>

namespace mach {

// Mach expressed timeouts as milliseconds with an "infinite" default.
// std::nullopt  => wait forever.
// 0ms           => poll (fail immediately rather than block).
using Timeout = std::optional<std::chrono::milliseconds>;

inline constexpr Timeout kWaitForever = std::nullopt;
inline constexpr std::chrono::milliseconds kPoll{0};

// Waits on `cv` under `lock` until `pred` holds or `timeout` elapses.
// Returns true if the predicate held on exit.
template <typename Pred>
bool WaitFor(std::condition_variable& cv, std::unique_lock<std::mutex>& lock, Timeout timeout,
             Pred&& pred) {
  if (!timeout.has_value()) {
    cv.wait(lock, std::forward<Pred>(pred));
    return true;
  }
  if (*timeout == std::chrono::milliseconds::zero()) {
    return pred();
  }
  return cv.wait_for(lock, *timeout, std::forward<Pred>(pred));
}

// Temporarily releases a held unique_lock for the duration of a scope — the
// inverse of lock_guard. Used where a potentially blocking call (a message
// send, a recursive fault) must not be made while holding a fine-grained
// lock; the destructor reacquires before control returns to code that
// assumes the lock is held. State guarded by the lock must be revalidated
// after the scope ends.
class ScopedUnlock {
 public:
  explicit ScopedUnlock(std::unique_lock<std::mutex>& lock) : lock_(lock) { lock_.unlock(); }
  ~ScopedUnlock() { lock_.lock(); }

  ScopedUnlock(const ScopedUnlock&) = delete;
  ScopedUnlock& operator=(const ScopedUnlock&) = delete;

 private:
  std::unique_lock<std::mutex>& lock_;
};

// A one-shot (resettable) event, used in tests and by service loops for
// startup handshakes.
class Event {
 public:
  void Signal() {
    std::lock_guard<std::mutex> g(mu_);
    signaled_ = true;
    cv_.notify_all();
  }

  void Reset() {
    std::lock_guard<std::mutex> g(mu_);
    signaled_ = false;
  }

  bool Wait(Timeout timeout = kWaitForever) {
    std::unique_lock<std::mutex> lock(mu_);
    return WaitFor(cv_, lock, timeout, [this] { return signaled_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool signaled_ = false;
};

}  // namespace mach

#endif  // SRC_BASE_SYNC_H_
