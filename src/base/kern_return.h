// Kernel-style status codes, modeled on Mach's kern_return_t.
//
// The library does not use exceptions; every fallible operation returns a
// KernReturn (or a Result<T> when a value is produced). The enumerators keep
// the historical Mach names where one exists.

#ifndef SRC_BASE_KERN_RETURN_H_
#define SRC_BASE_KERN_RETURN_H_

#include <cstdint>
#include <optional>
#include <utility>

namespace mach {

enum class KernReturn : int32_t {
  kSuccess = 0,
  // Address space errors.
  kInvalidAddress = 1,    // Address is not valid in the task's map.
  kProtectionFailure = 2, // Access would violate the page protection.
  kNoSpace = 3,           // No room in the address map for the allocation.
  kInvalidArgument = 4,   // A request argument was malformed.
  kFailure = 5,           // Generic failure.
  kResourceShortage = 6,  // Out of physical frames / kernel resources.
  kNoAccess = 8,          // Capability does not permit the operation.
  kMemoryFailure = 9,     // The backing memory object failed (pager error).
  kMemoryError = 10,      // Data manager reported an error for the page.
  kAborted = 14,          // Operation aborted (e.g. thread terminated).
  kInvalidCapability = 15,
  kMemoryPresent = 23,    // vm_allocate over an already-valid region.

  // IPC errors (Mach kept these in a separate msg_return_t space).
  kPortDead = 100,      // All receive rights to the port were deallocated.
  kPortFull = 101,      // The port backlog is exhausted.
  kTimedOut = 102,      // A timeout elapsed before completion.
  kNotReceiver = 103,   // Caller does not hold the receive right.
  kWouldBlock = 104,    // Non-blocking operation would have blocked.
  kNoMessage = 105,     // msg_receive poll found no message.
  kNotFound = 106,      // Named object does not exist.
  kAlreadyExists = 107, // Named object already exists.

  // Service-level errors (no historical Mach equivalent).
  kMigrationAborted = 200,  // The transport to the destination died mid-migration.
  kProtocolViolation = 201, // A wire message was structurally decodable but
                            // violated a protocol invariant (e.g. a
                            // pager_data_request length that is zero, not a
                            // page multiple, or beyond the run cap).
};

// Human-readable enumerator name, for logs and test failure messages.
const char* KernReturnName(KernReturn kr);

inline bool IsOk(KernReturn kr) { return kr == KernReturn::kSuccess; }

// A value-or-status return. Mirrors the shape of Mach calls that have both a
// kern_return_t and an out-parameter, without out-parameters.
template <typename T>
class Result {
 public:
  // Implicit conversions keep call sites terse: `return KernReturn::kNoSpace;`
  // or `return value;`.
  Result(KernReturn status) : status_(status) {}  // NOLINT(google-explicit-constructor)
  Result(T value) : status_(KernReturn::kSuccess), value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_ == KernReturn::kSuccess; }
  KernReturn status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  // value_or for ergonomic defaults in tests.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  KernReturn status_;
  std::optional<T> value_;
};

}  // namespace mach

#endif  // SRC_BASE_KERN_RETURN_H_
