#include "src/base/fault_injector.h"

#include <algorithm>

namespace mach {

namespace {

// SplitMix64 finalizer: a well-mixed 64-bit hash. Decisions are a pure
// function of (seed, point, hit) so a trace replays from the seed no matter
// how threads interleave across different points.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

uint64_t HashPoint(const std::string& point) {
  // FNV-1a over the point name.
  uint64_t h = 0xCBF29CE484222325ull;
  for (char c : point) {
    h = (h ^ static_cast<uint8_t>(c)) * 0x100000001B3ull;
  }
  return h;
}

}  // namespace

void FaultInjector::SetProbability(const std::string& point, double p) {
  std::lock_guard<std::mutex> g(mu_);
  PointState& st = points_[point];
  st.probability = std::clamp(p, 0.0, 1.0);
  st.every_nth = 0;
  st.has_schedule = false;
  st.schedule.clear();
}

void FaultInjector::SetSchedule(const std::string& point, std::vector<uint64_t> hit_indices) {
  std::lock_guard<std::mutex> g(mu_);
  PointState& st = points_[point];
  st.probability = 0.0;
  st.every_nth = 0;
  st.has_schedule = true;
  st.schedule = std::unordered_set<uint64_t>(hit_indices.begin(), hit_indices.end());
}

void FaultInjector::SetEveryNth(const std::string& point, uint64_t n) {
  std::lock_guard<std::mutex> g(mu_);
  PointState& st = points_[point];
  st.probability = 0.0;
  st.every_nth = n;
  st.has_schedule = false;
  st.schedule.clear();
}

void FaultInjector::Clear(const std::string& point) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = points_.find(point);
  if (it != points_.end()) {
    PointState& st = it->second;
    st.probability = 0.0;
    st.every_nth = 0;
    st.has_schedule = false;
    st.schedule.clear();
  }
}

void FaultInjector::Reset(uint64_t new_seed) {
  std::lock_guard<std::mutex> g(mu_);
  seed_ = new_seed;
  points_.clear();
}

bool FaultInjector::Decide(const std::string& point, const PointState& st, uint64_t hit) const {
  if (st.has_schedule) {
    return st.schedule.count(hit) != 0;
  }
  if (st.every_nth > 0) {
    return (hit + 1) % st.every_nth == 0;
  }
  if (st.probability > 0.0) {
    uint64_t h = Mix64(seed_ ^ Mix64(HashPoint(point) ^ Mix64(hit)));
    // Map the top 53 bits to [0, 1).
    double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    return u < st.probability;
  }
  return false;
}

bool FaultInjector::ShouldFail(const std::string& point) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = points_.find(point);
  if (it == points_.end()) {
    return false;
  }
  PointState& st = it->second;
  uint64_t hit = st.hits++;
  bool fail = Decide(point, st, hit);
  if (fail) {
    ++st.injected;
  }
  return fail;
}

uint64_t FaultInjector::Evaluations(const std::string& point) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

uint64_t FaultInjector::Injected(const std::string& point) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.injected;
}

uint64_t FaultInjector::TotalInjected() const {
  std::lock_guard<std::mutex> g(mu_);
  uint64_t total = 0;
  for (const auto& [name, st] : points_) {
    total += st.injected;
  }
  return total;
}

std::vector<std::string> FaultInjector::Report() const {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<std::string> lines;
  lines.reserve(points_.size());
  for (const auto& [name, st] : points_) {
    lines.push_back(name + ":" + std::to_string(st.injected) + "/" + std::to_string(st.hits));
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

}  // namespace mach
