#include "src/base/log.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace mach {

namespace {

LogLevel InitThreshold() {
  const char* env = std::getenv("MACH_LOG");
  if (env == nullptr) {
    return LogLevel::kError;
  }
  if (std::strcmp(env, "debug") == 0) {
    return LogLevel::kDebug;
  }
  if (std::strcmp(env, "info") == 0) {
    return LogLevel::kInfo;
  }
  if (std::strcmp(env, "warn") == 0) {
    return LogLevel::kWarn;
  }
  return LogLevel::kError;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

std::mutex g_log_mu;

}  // namespace

LogLevel LogThreshold() {
  static LogLevel threshold = InitThreshold();
  return threshold;
}

void LogWrite(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> g(g_log_mu);
  std::fprintf(stderr, "[mach %s] %s\n", LevelTag(level), msg.c_str());
}

}  // namespace mach
