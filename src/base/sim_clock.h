// Virtual time accounting for simulated devices.
//
// Disk and network models do not sleep; they *charge* virtual nanoseconds to
// a SimClock. Benchmarks report virtual elapsed time (deterministic, fast)
// alongside operation counts. Each Host owns a clock; devices attached to the
// host charge it. Charges are atomic so device models may be driven from any
// thread.

#ifndef SRC_BASE_SIM_CLOCK_H_
#define SRC_BASE_SIM_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace mach {

class SimClock {
 public:
  // Adds `ns` of simulated elapsed time.
  void Charge(uint64_t ns) { now_ns_.fetch_add(ns, std::memory_order_relaxed); }

  uint64_t NowNs() const { return now_ns_.load(std::memory_order_relaxed); }

  void Reset() { now_ns_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> now_ns_{0};
};

}  // namespace mach

#endif  // SRC_BASE_SIM_CLOCK_H_
