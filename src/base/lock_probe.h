// A thread-local lock-acquisition probe for the VM fault path.
//
// E11 measured the lock hierarchy's single-thread tax in wall time; this
// probe makes the underlying quantity — ordered lock acquisitions per fault
// — directly observable. VM-tier lock sites (tiers 1-5 of the order in
// vm_system.h) call Note() when they acquire; the fault entry point
// snapshots the thread-local count on entry and exit and accumulates the
// delta into VmStatistics::fault_lock_ops, so
// fault_lock_ops / faults == locks per fault, measured, not estimated.
//
// The counter is thread-local and unsynchronised: Note() is one relaxed
// increment of a plain integer, cheap enough to leave enabled in release
// builds. Probed sites outside a fault still bump the thread-local value,
// which is harmless — only deltas bracketed by a fault are ever read.

#ifndef SRC_BASE_LOCK_PROBE_H_
#define SRC_BASE_LOCK_PROBE_H_

#include <cstdint>

namespace mach {
namespace lock_probe {

inline thread_local uint64_t tls_lock_count = 0;

// Record one lock acquisition on this thread.
inline void Note() { ++tls_lock_count; }

// Current thread's acquisition count (monotonic; compare two reads).
inline uint64_t Count() { return tls_lock_count; }

}  // namespace lock_probe
}  // namespace mach

#endif  // SRC_BASE_LOCK_PROBE_H_
