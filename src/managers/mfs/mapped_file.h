// Mapped-file I/O (§8.1): a stdio-like library that emulates UNIX file
// system calls outside the kernel. open maps the file's memory object into
// the task's address space; read/write/lseek operate directly on virtual
// memory; close pushes the size and syncs dirty pages back through the
// external pager. "Subsequent read and write calls would operate directly
// on virtual memory. The filesystem server task would operate as an
// external pager."
//
// Because the whole of physical memory acts as the file cache (not a fixed
// 10% buffer pool), re-reads of cached files cost no disk traffic — the
// mechanism behind the §9 numbers.

#ifndef SRC_MANAGERS_MFS_MAPPED_FILE_H_
#define SRC_MANAGERS_MFS_MAPPED_FILE_H_

#include <string>

#include "src/kernel/task.h"
#include "src/managers/fs/fs_server.h"

namespace mach {

class MappedFile {
 public:
  MappedFile() = default;

  // Opens (mapping) an existing file. `capacity` is the largest size the
  // file may grow to through this handle (mappings are fixed-size).
  static Result<MappedFile> Open(Task* task, const SendRight& fs_service,
                                 const std::string& name, VmSize capacity = 0);

  bool valid() const { return task_ != nullptr; }
  VmSize size() const { return size_; }
  VmOffset position() const { return position_; }
  VmOffset mapping() const { return base_; }

  // UNIX-style cursor I/O, directly against the mapping.
  Result<VmSize> Read(void* buf, VmSize len);
  KernReturn Write(const void* buf, VmSize len);
  void Seek(VmOffset pos) { position_ = pos; }

  // Positioned I/O.
  Result<VmSize> ReadAt(VmOffset pos, void* buf, VmSize len);
  KernReturn WriteAt(VmOffset pos, const void* buf, VmSize len);

  // Pushes the (possibly grown) size to the server and syncs dirty pages to
  // disk. The mapping is released.
  KernReturn Close();

  // Close without forcing dirty pages out: they stay in the kernel's page
  // cache and reach the server lazily via pageout — Mach's actual write
  // behaviour ("recoverable data ... without first being written to
  // temporary paging storage" is the Camelot path; ordinary files simply
  // write back on eviction).
  KernReturn CloseLazy();

 private:
  Task* task_ = nullptr;
  SendRight service_;
  std::string name_;
  VmOffset base_ = 0;
  VmSize mapped_size_ = 0;
  VmSize size_ = 0;
  VmSize original_size_ = 0;
  VmOffset position_ = 0;
  bool dirty_ = false;
};

}  // namespace mach

#endif  // SRC_MANAGERS_MFS_MAPPED_FILE_H_
