#include "src/managers/mfs/mapped_file.h"

#include <algorithm>

namespace mach {

Result<MappedFile> MappedFile::Open(Task* task, const SendRight& fs_service,
                                    const std::string& name, VmSize capacity) {
  Message request(kMsgFsOpenMapped);
  request.PushString(name);
  Result<Message> reply = MsgRpc(fs_service, std::move(request), kWaitForever,
                                 std::chrono::seconds(10));
  if (!reply.ok()) {
    return reply.status();
  }
  Result<uint32_t> status = reply.value().TakeU32();
  if (!status.ok()) {
    return KernReturn::kInvalidArgument;
  }
  if (static_cast<KernReturn>(status.value()) != KernReturn::kSuccess) {
    return static_cast<KernReturn>(status.value());
  }
  Result<uint64_t> size = reply.value().TakeU64();
  Result<SendRight> object = reply.value().TakePort();
  if (!size.ok() || !object.ok()) {
    return KernReturn::kInvalidArgument;
  }
  const VmSize ps = task->page_size();
  VmSize mapped = RoundPage(std::max<VmSize>({size.value(), capacity, 1}), ps);
  Result<VmOffset> addr = task->VmAllocateWithPager(mapped, object.value(), 0);
  if (!addr.ok()) {
    return addr.status();
  }
  MappedFile file;
  file.task_ = task;
  file.service_ = fs_service;
  file.name_ = name;
  file.base_ = addr.value();
  file.mapped_size_ = mapped;
  file.size_ = size.value();
  file.original_size_ = size.value();
  return file;
}

Result<VmSize> MappedFile::Read(void* buf, VmSize len) {
  Result<VmSize> n = ReadAt(position_, buf, len);
  if (n.ok()) {
    position_ += n.value();
  }
  return n;
}

Result<VmSize> MappedFile::ReadAt(VmOffset pos, void* buf, VmSize len) {
  if (task_ == nullptr) {
    return KernReturn::kInvalidArgument;
  }
  if (pos >= size_) {
    return VmSize{0};  // EOF.
  }
  VmSize n = std::min<VmSize>(len, size_ - pos);
  KernReturn kr = task_->Read(base_ + pos, buf, n);
  if (!IsOk(kr)) {
    return kr;
  }
  return n;
}

KernReturn MappedFile::Write(const void* buf, VmSize len) {
  KernReturn kr = WriteAt(position_, buf, len);
  if (IsOk(kr)) {
    position_ += len;
  }
  return kr;
}

KernReturn MappedFile::WriteAt(VmOffset pos, const void* buf, VmSize len) {
  if (task_ == nullptr || pos + len > mapped_size_) {
    return KernReturn::kInvalidArgument;
  }
  KernReturn kr = task_->Write(base_ + pos, buf, len);
  if (!IsOk(kr)) {
    return kr;
  }
  dirty_ = true;
  size_ = std::max<VmSize>(size_, pos + len);
  return KernReturn::kSuccess;
}

KernReturn MappedFile::CloseLazy() {
  if (task_ == nullptr) {
    return KernReturn::kInvalidArgument;
  }
  if (size_ != original_size_) {
    Message set_size(kMsgFsSetSize);
    set_size.PushString(name_);
    set_size.PushU64(size_);
    MsgRpc(service_, std::move(set_size), kWaitForever, std::chrono::seconds(10));
  }
  KernReturn kr = task_->VmDeallocate(base_, mapped_size_);
  task_ = nullptr;
  return kr;
}

KernReturn MappedFile::Close() {
  if (task_ == nullptr) {
    return KernReturn::kInvalidArgument;
  }
  if (dirty_ || size_ != original_size_) {
    Message set_size(kMsgFsSetSize);
    set_size.PushString(name_);
    set_size.PushU64(size_);
    MsgRpc(service_, std::move(set_size), kWaitForever, std::chrono::seconds(10));
    Message sync(kMsgFsSync);
    sync.PushString(name_);
    MsgRpc(service_, std::move(sync), kWaitForever, std::chrono::seconds(10));
  }
  // Unmapping drops the reference; the kernel keeps the pages cached
  // because the server permits caching (pager_cache) — the mapped-file
  // cache of §9.
  KernReturn kr = task_->VmDeallocate(base_, mapped_size_);
  task_ = nullptr;
  return kr;
}

}  // namespace mach
