#include "src/managers/mfs/traditional_io.h"

#include <algorithm>
#include <cstring>

namespace mach {

TraditionalFileSystem::TraditionalFileSystem(SimDisk* disk, size_t cache_blocks)
    : disk_(disk), capacity_(std::max<size_t>(cache_blocks, 1)) {}

KernReturn TraditionalFileSystem::Create(const std::string& name) {
  std::lock_guard<std::mutex> g(mu_);
  if (files_.count(name) != 0) {
    return KernReturn::kAlreadyExists;
  }
  files_.emplace(name, File{});
  return KernReturn::kSuccess;
}

KernReturn TraditionalFileSystem::Delete(const std::string& name) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) {
    return KernReturn::kNotFound;
  }
  for (uint32_t block : it->second.blocks) {
    if (block != UINT32_MAX) {
      cache_.erase(block);
      disk_->FreeBlock(block);
    }
  }
  files_.erase(it);
  return KernReturn::kSuccess;
}

Result<VmSize> TraditionalFileSystem::Stat(const std::string& name) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) {
    return KernReturn::kNotFound;
  }
  return it->second.size;
}

void TraditionalFileSystem::EvictIfNeeded() {
  while (cache_.size() >= capacity_ && !lru_.empty()) {
    uint32_t victim = lru_.back();
    lru_.pop_back();
    auto it = cache_.find(victim);
    if (it != cache_.end()) {
      if (it->second.dirty && !IsOk(disk_->WriteBlock(victim, it->second.data.data()))) {
        // Classic delayed-write semantics: the eviction proceeds and the
        // failure is only visible in the error counter (cf. UNIX bwrite).
        ++io_errors_;
      }
      cache_.erase(it);
    }
  }
}

TraditionalFileSystem::CacheEntry& TraditionalFileSystem::GetBlock(uint32_t block,
                                                                   bool will_overwrite) {
  auto it = cache_.find(block);
  if (it != cache_.end()) {
    ++hits_;
    lru_.erase(it->second.lru_pos);
    lru_.push_front(block);
    it->second.lru_pos = lru_.begin();
    return it->second;
  }
  ++misses_;
  EvictIfNeeded();
  CacheEntry entry;
  entry.data.resize(disk_->block_size());
  if (will_overwrite) {
    std::memset(entry.data.data(), 0, entry.data.size());
  } else if (!IsOk(disk_->ReadBlock(block, entry.data.data()))) {
    // The buffer stays zeroed; readers see a hole where the bad block was.
    ++io_errors_;
    std::memset(entry.data.data(), 0, entry.data.size());
  }
  lru_.push_front(block);
  entry.lru_pos = lru_.begin();
  return cache_.emplace(block, std::move(entry)).first->second;
}

Result<VmSize> TraditionalFileSystem::Read(const std::string& name, VmOffset pos, void* buf,
                                           VmSize len) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) {
    return KernReturn::kNotFound;
  }
  File& file = it->second;
  if (pos >= file.size) {
    return VmSize{0};
  }
  const VmSize bs = disk_->block_size();
  VmSize n = std::min<VmSize>(len, file.size - pos);
  auto* out = static_cast<std::byte*>(buf);
  VmSize done = 0;
  while (done < n) {
    size_t chunk_index = static_cast<size_t>((pos + done) / bs);
    VmOffset in_block = (pos + done) % bs;
    VmSize take = std::min<VmSize>(bs - in_block, n - done);
    if (chunk_index >= file.blocks.size() || file.blocks[chunk_index] == UINT32_MAX) {
      std::memset(out + done, 0, take);  // Hole.
    } else {
      CacheEntry& entry = GetBlock(file.blocks[chunk_index], /*will_overwrite=*/false);
      // The kernel-to-user copy of the traditional path.
      std::memcpy(out + done, entry.data.data() + in_block, take);
    }
    done += take;
  }
  return n;
}

KernReturn TraditionalFileSystem::Write(const std::string& name, VmOffset pos, const void* buf,
                                        VmSize len) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) {
    return KernReturn::kNotFound;
  }
  File& file = it->second;
  const VmSize bs = disk_->block_size();
  const auto* in = static_cast<const std::byte*>(buf);
  VmSize done = 0;
  while (done < len) {
    size_t chunk_index = static_cast<size_t>((pos + done) / bs);
    VmOffset in_block = (pos + done) % bs;
    VmSize take = std::min<VmSize>(bs - in_block, len - done);
    if (chunk_index >= file.blocks.size()) {
      file.blocks.resize(chunk_index + 1, UINT32_MAX);
    }
    if (file.blocks[chunk_index] == UINT32_MAX) {
      file.blocks[chunk_index] = disk_->AllocBlock();
      if (file.blocks[chunk_index] == UINT32_MAX) {
        return KernReturn::kResourceShortage;
      }
    }
    CacheEntry& entry = GetBlock(file.blocks[chunk_index], take == bs);
    // The user-to-kernel copy of the traditional path.
    std::memcpy(entry.data.data() + in_block, in + done, take);
    entry.dirty = true;
    done += take;
  }
  file.size = std::max<VmSize>(file.size, pos + len);
  return KernReturn::kSuccess;
}

}  // namespace mach
