// The "traditional UNIX" I/O baseline of §9: file data moves between user
// buffers and a fixed-size kernel block cache by copying ("accessed by user
// programs through read and write kernel-to-user and user-to-kernel copy
// operations"), with the cache capped at a fraction of physical memory —
// "normally 10% of physical memory in a Berkeley UNIX system".
//
// This is the comparator for the mapped-file path in the E1/E2 benchmarks;
// both run against the same SimDisk model.

#ifndef SRC_MANAGERS_MFS_TRADITIONAL_IO_H_
#define SRC_MANAGERS_MFS_TRADITIONAL_IO_H_

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/kern_return.h"
#include "src/base/vm_types.h"
#include "src/hw/sim_disk.h"

namespace mach {

class TraditionalFileSystem {
 public:
  // `cache_blocks` is the buffer-cache capacity (e.g. 10% of the machine's
  // physical page frames).
  TraditionalFileSystem(SimDisk* disk, size_t cache_blocks);

  KernReturn Create(const std::string& name);
  KernReturn Delete(const std::string& name);
  Result<VmSize> Stat(const std::string& name);

  // read(2)/write(2)-style positioned I/O with user<->cache copies.
  Result<VmSize> Read(const std::string& name, VmOffset pos, void* buf, VmSize len);
  KernReturn Write(const std::string& name, VmOffset pos, const void* buf, VmSize len);

  // Statistics.
  uint64_t cache_hits() const { return hits_; }
  uint64_t cache_misses() const { return misses_; }
  uint64_t io_errors() const { return io_errors_; }

 private:
  struct File {
    VmSize size = 0;
    std::vector<uint32_t> blocks;  // Per cache-block-sized chunk.
  };
  struct CacheKey {
    uint32_t block;
    bool operator==(const CacheKey& o) const { return block == o.block; }
  };
  struct CacheEntry {
    std::vector<std::byte> data;
    bool dirty = false;
    std::list<uint32_t>::iterator lru_pos;
  };

  // Returns the cache entry for a disk block, faulting it in (LRU evict +
  // writeback) as needed.
  CacheEntry& GetBlock(uint32_t block, bool will_overwrite);
  void EvictIfNeeded();

  SimDisk* const disk_;
  const size_t capacity_;
  std::mutex mu_;
  std::map<std::string, File> files_;
  std::unordered_map<uint32_t, CacheEntry> cache_;
  std::list<uint32_t> lru_;  // Front = most recent.
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t io_errors_ = 0;
};

}  // namespace mach

#endif  // SRC_MANAGERS_MFS_TRADITIONAL_IO_H_
