// The minimal filesystem of §4.1: a whole-file read / whole-file write
// server that doubles as the data manager for its files' memory objects.
//
// fs_read_file returns the file contents as out-of-line memory: the server
// maps the file's memory object into its *own* address space
// (vm_allocate_with_pager) and replies with a copy-on-write map copy, so the
// client receives new virtual memory whose pages are demand-fetched from
// this server — the paper's exact structure. Because the server permits
// caching (pager_cache), repeatedly read files are served from the kernel's
// physical memory cache with no disk traffic (§9).
//
// Files live on the server's own SimDisk, one block per page, in a flat
// directory.

#ifndef SRC_MANAGERS_FS_FS_SERVER_H_
#define SRC_MANAGERS_FS_FS_SERVER_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/hw/sim_disk.h"
#include "src/kernel/kernel.h"
#include "src/kernel/task.h"
#include "src/pager/data_manager.h"

namespace mach {

// File API message ids (client -> server service port).
inline constexpr MsgId kMsgFsReadFile = 0x46530001;
inline constexpr MsgId kMsgFsWriteFile = 0x46530002;
inline constexpr MsgId kMsgFsCreate = 0x46530003;
inline constexpr MsgId kMsgFsDelete = 0x46530004;
inline constexpr MsgId kMsgFsStat = 0x46530005;
// Mapped-file extension (§8.1 UNIX emulation): returns the file's memory
// object so clients can map it directly ("read and write calls would
// operate directly on virtual memory").
inline constexpr MsgId kMsgFsOpenMapped = 0x46530006;
inline constexpr MsgId kMsgFsSetSize = 0x46530007;
inline constexpr MsgId kMsgFsSync = 0x46530008;
// Replies carry: u32 KernReturn [, u64 size][, OOL data][, port].

class FsServer : public DataManager {
 public:
  // The server runs as a task on `kernel` and stores files on `disk`
  // (which must have block_size == kernel page size).
  FsServer(Kernel* kernel, SimDisk* disk);
  ~FsServer() override;

  // The port clients send file API requests to.
  const SendRight& service_port() const { return service_send_; }

  void StartServer();
  void StopServer();

  // Statistics.
  uint64_t read_file_count() const { return read_files_.load(std::memory_order_relaxed); }
  uint64_t write_file_count() const { return write_files_.load(std::memory_order_relaxed); }
  uint64_t io_error_count() const { return io_errors_.load(std::memory_order_relaxed); }

 protected:
  void OnInit(uint64_t object_port_id, uint64_t cookie, PagerInitArgs args) override;
  void OnDataRequest(uint64_t object_port_id, uint64_t cookie, PagerDataRequestArgs args) override;
  void OnDataWrite(uint64_t object_port_id, uint64_t cookie, PagerDataWriteArgs args) override;
  void OnPortDeath(uint64_t port_id) override;

 private:
  struct File {
    uint64_t id = 0;
    VmSize size = 0;
    std::vector<uint32_t> blocks;          // One per page; UINT32_MAX = hole.
    SendRight memory_object;               // Stable while the file exists.
    std::vector<SendRight> request_ports;  // One per mapping kernel.
    VmOffset server_mapping = 0;           // Address in the server task (0 = unmapped).
    VmSize server_mapping_size = 0;
  };

  void ApiLoop();
  void HandleReadFile(Message& msg);
  void HandleWriteFile(Message& msg);
  void HandleCreate(Message& msg);
  void HandleDelete(Message& msg);
  void HandleStat(Message& msg);
  void HandleOpenMapped(Message& msg);
  void HandleSetSize(Message& msg);
  void HandleSync(Message& msg);
  static void Reply(const Message& request, Message reply);

  File* FindByObjectId(uint64_t object_port_id);
  File* FindByCookie(uint64_t cookie);
  // Ensures the file's memory object is mapped into the server task large
  // enough for `size` bytes.
  KernReturn EnsureServerMapping(File* file, VmSize size);

  Kernel* const kernel_;
  SimDisk* const disk_;
  std::shared_ptr<Task> task_;

  ReceiveRight service_receive_;
  SendRight service_send_;
  std::thread api_thread_;
  std::atomic<bool> serving_{false};

  std::mutex fs_mu_;
  std::map<std::string, File> files_;
  uint64_t next_file_id_ = 1;

  std::atomic<uint64_t> read_files_{0};
  std::atomic<uint64_t> write_files_{0};
  std::atomic<uint64_t> io_errors_{0};
};

// Client-side library for the file API (the paper's fs_read_file /
// fs_write_file calls). The client must be a task on the same kernel as the
// returned memory is mapped into; cross-host access goes through the net
// proxy layer.
class FsClient {
 public:
  FsClient(Task* task, SendRight service_port)
      : task_(task), service_(std::move(service_port)) {}

  // fs_read_file: returns new (copy-on-write) virtual memory holding the
  // file contents, plus the file size.
  struct ReadResult {
    VmOffset address = 0;
    VmSize size = 0;
  };
  Result<ReadResult> ReadFile(const std::string& name);

  // fs_write_file: stores `size` bytes from `address` back into the file.
  KernReturn WriteFile(const std::string& name, VmOffset address, VmSize size);

  KernReturn Create(const std::string& name);
  KernReturn Delete(const std::string& name);
  Result<VmSize> Stat(const std::string& name);

 private:
  Task* const task_;
  SendRight service_;
};

}  // namespace mach

#endif  // SRC_MANAGERS_FS_FS_SERVER_H_
