#include "src/managers/fs/fs_server.h"

#include <cstring>

#include "src/base/log.h"

namespace mach {

FsServer::FsServer(Kernel* kernel, SimDisk* disk)
    : DataManager("fs"), kernel_(kernel), disk_(disk) {
  task_ = kernel_->CreateTask(nullptr, "fs-server");
  PortPair service = PortAllocate("fs-service");
  service.receive.port()->SetBacklog(256);
  service_receive_ = std::move(service.receive);
  service_send_ = service.send;
}

FsServer::~FsServer() {
  StopServer();
  Stop();
}

void FsServer::StartServer() {
  Start();  // The data-manager service loop (pager protocol).
  bool expected = false;
  if (!serving_.compare_exchange_strong(expected, true)) {
    return;
  }
  api_thread_ = std::thread([this] { ApiLoop(); });
}

void FsServer::StopServer() {
  bool expected = true;
  if (!serving_.compare_exchange_strong(expected, false)) {
    return;
  }
  if (api_thread_.joinable()) {
    api_thread_.join();
  }
}

void FsServer::ApiLoop() {
  while (serving_.load(std::memory_order_relaxed)) {
    Result<Message> got = service_receive_.port()->Dequeue(std::chrono::milliseconds(20));
    if (!got.ok()) {
      continue;
    }
    Message& msg = got.value();
    switch (msg.id()) {
      case kMsgFsReadFile:
        HandleReadFile(msg);
        break;
      case kMsgFsWriteFile:
        HandleWriteFile(msg);
        break;
      case kMsgFsCreate:
        HandleCreate(msg);
        break;
      case kMsgFsDelete:
        HandleDelete(msg);
        break;
      case kMsgFsStat:
        HandleStat(msg);
        break;
      case kMsgFsOpenMapped:
        HandleOpenMapped(msg);
        break;
      case kMsgFsSetSize:
        HandleSetSize(msg);
        break;
      case kMsgFsSync:
        HandleSync(msg);
        break;
      default:
        MACH_LOG(kWarn) << "fs: unknown request " << msg.id();
        break;
    }
  }
}

void FsServer::Reply(const Message& request, Message reply) {
  if (request.reply_port().valid()) {
    MsgSend(request.reply_port(), std::move(reply), std::chrono::milliseconds(2000));
  }
}

FsServer::File* FsServer::FindByObjectId(uint64_t object_port_id) {
  for (auto& [name, file] : files_) {
    if (file.memory_object.id() == object_port_id) {
      return &file;
    }
  }
  return nullptr;
}

FsServer::File* FsServer::FindByCookie(uint64_t cookie) {
  for (auto& [name, file] : files_) {
    if (file.id == cookie) {
      return &file;
    }
  }
  return nullptr;
}

KernReturn FsServer::EnsureServerMapping(File* file, VmSize size) {
  const VmSize ps = kernel_->page_size();
  VmSize want = RoundPage(std::max<VmSize>(size, ps), ps);
  if (file->server_mapping != 0 && file->server_mapping_size >= want) {
    return KernReturn::kSuccess;
  }
  if (file->server_mapping != 0) {
    task_->VmDeallocate(file->server_mapping, file->server_mapping_size);
    file->server_mapping = 0;
  }
  Result<VmOffset> addr = task_->VmAllocateWithPager(want, file->memory_object, 0);
  if (!addr.ok()) {
    return addr.status();
  }
  file->server_mapping = addr.value();
  file->server_mapping_size = want;
  return KernReturn::kSuccess;
}

void FsServer::HandleCreate(Message& msg) {
  Result<std::string> name = msg.TakeString();
  Message reply(kMsgFsCreate);
  if (!name.ok()) {
    reply.PushU32(static_cast<uint32_t>(KernReturn::kInvalidArgument));
    Reply(msg, std::move(reply));
    return;
  }
  {
    std::lock_guard<std::mutex> g(fs_mu_);
    if (files_.count(name.value()) != 0) {
      reply.PushU32(static_cast<uint32_t>(KernReturn::kAlreadyExists));
      Reply(msg, std::move(reply));
      return;
    }
    File file;
    file.id = next_file_id_++;
    // The file's memory object: this server is its data manager.
    file.memory_object = CreateMemoryObject(file.id, "file:" + name.value());
    files_.emplace(name.value(), std::move(file));
  }
  reply.PushU32(static_cast<uint32_t>(KernReturn::kSuccess));
  Reply(msg, std::move(reply));
}

void FsServer::HandleReadFile(Message& msg) {
  Result<std::string> name = msg.TakeString();
  Message reply(kMsgFsReadFile);
  std::shared_ptr<VmMapCopy> copy;
  VmSize file_size = 0;
  KernReturn status = KernReturn::kSuccess;
  do {
    if (!name.ok()) {
      status = KernReturn::kInvalidArgument;
      break;
    }
    std::lock_guard<std::mutex> g(fs_mu_);
    auto it = files_.find(name.value());
    if (it == files_.end()) {
      status = KernReturn::kNotFound;
      break;
    }
    File* file = &it->second;
    file_size = file->size;
    status = EnsureServerMapping(file, std::max<VmSize>(file_size, 1));
    if (!IsOk(status)) {
      break;
    }
    // Capture the mapped file as a copy-on-write map copy: the client will
    // see consistent contents even while we keep serving (§4.1).
    VmSize rounded = RoundPage(std::max<VmSize>(file_size, 1), kernel_->page_size());
    Result<std::shared_ptr<VmMapCopy>> captured =
        kernel_->vm().CopyIn(task_->vm_context(), file->server_mapping, rounded);
    if (!captured.ok()) {
      status = captured.status();
      break;
    }
    copy = captured.value();
  } while (false);
  reply.PushU32(static_cast<uint32_t>(status));
  if (IsOk(status)) {
    reply.PushU64(file_size);
    reply.PushOol(copy, copy == nullptr ? 0 : copy->size());
    read_files_.fetch_add(1, std::memory_order_relaxed);
  }
  Reply(msg, std::move(reply));
}

void FsServer::HandleWriteFile(Message& msg) {
  Result<std::string> name = msg.TakeString();
  Result<uint64_t> size = msg.TakeU64();
  Result<OolItem> ool = msg.TakeOol();
  Message reply(kMsgFsWriteFile);
  KernReturn status = KernReturn::kSuccess;
  do {
    if (!name.ok() || !size.ok() || !ool.ok()) {
      status = KernReturn::kInvalidArgument;
      break;
    }
    // Materialise the incoming data in our own address space.
    auto copy = std::static_pointer_cast<VmMapCopy>(ool.value().copy);
    Result<VmOffset> in_addr = kernel_->vm().CopyOut(task_->vm_context(), copy);
    if (!in_addr.ok()) {
      status = in_addr.status();
      break;
    }
    const VmSize ps = kernel_->page_size();
    std::lock_guard<std::mutex> g(fs_mu_);
    auto it = files_.find(name.value());
    if (it == files_.end()) {
      status = KernReturn::kNotFound;
      task_->VmDeallocate(in_addr.value(), ool.value().size);
      break;
    }
    File* file = &it->second;
    // Store the data to disk, page by page.
    VmSize new_size = size.value();
    size_t pages = static_cast<size_t>(RoundPage(new_size, ps) / ps);
    file->blocks.resize(std::max(file->blocks.size(), pages), UINT32_MAX);
    std::vector<std::byte> buf(ps);
    for (size_t p = 0; p < pages; ++p) {
      std::memset(buf.data(), 0, ps);
      VmSize n = std::min<VmSize>(ps, new_size - p * ps);
      KernReturn kr = task_->Read(in_addr.value() + p * ps, buf.data(), n);
      if (!IsOk(kr)) {
        status = kr;
        break;
      }
      if (file->blocks[p] == UINT32_MAX) {
        file->blocks[p] = disk_->AllocBlock();
        if (file->blocks[p] == UINT32_MAX) {
          status = KernReturn::kResourceShortage;
          break;
        }
      }
      status = disk_->WriteBlock(file->blocks[p], buf.data());
      if (!IsOk(status)) {
        io_errors_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
    }
    if (IsOk(status)) {
      file->size = std::max(file->size, new_size);
      // Invalidate every kernel's cached pages so future reads see the new
      // contents (pager_flush_request on each request port).
      for (const SendRight& req : file->request_ports) {
        FlushRequest(req, 0, RoundPage(std::max<VmSize>(file->size, 1), ps));
      }
      write_files_.fetch_add(1, std::memory_order_relaxed);
    }
    task_->VmDeallocate(in_addr.value(), ool.value().size);
  } while (false);
  reply.PushU32(static_cast<uint32_t>(status));
  Reply(msg, std::move(reply));
}

void FsServer::HandleDelete(Message& msg) {
  Result<std::string> name = msg.TakeString();
  Message reply(kMsgFsDelete);
  KernReturn status = KernReturn::kSuccess;
  do {
    if (!name.ok()) {
      status = KernReturn::kInvalidArgument;
      break;
    }
    std::lock_guard<std::mutex> g(fs_mu_);
    auto it = files_.find(name.value());
    if (it == files_.end()) {
      status = KernReturn::kNotFound;
      break;
    }
    File& file = it->second;
    if (file.server_mapping != 0) {
      task_->VmDeallocate(file.server_mapping, file.server_mapping_size);
    }
    for (uint32_t block : file.blocks) {
      if (block != UINT32_MAX) {
        disk_->FreeBlock(block);
      }
    }
    DestroyMemoryObject(file.memory_object);
    files_.erase(it);
  } while (false);
  reply.PushU32(static_cast<uint32_t>(status));
  Reply(msg, std::move(reply));
}

void FsServer::HandleStat(Message& msg) {
  Result<std::string> name = msg.TakeString();
  Message reply(kMsgFsStat);
  std::lock_guard<std::mutex> g(fs_mu_);
  auto it = name.ok() ? files_.find(name.value()) : files_.end();
  if (it == files_.end()) {
    reply.PushU32(static_cast<uint32_t>(KernReturn::kNotFound));
  } else {
    reply.PushU32(static_cast<uint32_t>(KernReturn::kSuccess));
    reply.PushU64(it->second.size);
  }
  Reply(msg, std::move(reply));
}

void FsServer::HandleOpenMapped(Message& msg) {
  Result<std::string> name = msg.TakeString();
  Message reply(kMsgFsOpenMapped);
  std::lock_guard<std::mutex> g(fs_mu_);
  auto it = name.ok() ? files_.find(name.value()) : files_.end();
  if (it == files_.end()) {
    reply.PushU32(static_cast<uint32_t>(KernReturn::kNotFound));
  } else {
    reply.PushU32(static_cast<uint32_t>(KernReturn::kSuccess));
    reply.PushU64(it->second.size);
    // Hand out the memory object itself: the client maps the file and its
    // reads and writes operate directly on virtual memory (§8.1).
    reply.PushPort(it->second.memory_object);
  }
  Reply(msg, std::move(reply));
}

void FsServer::HandleSetSize(Message& msg) {
  Result<std::string> name = msg.TakeString();
  Result<uint64_t> size = msg.TakeU64();
  Message reply(kMsgFsSetSize);
  std::lock_guard<std::mutex> g(fs_mu_);
  auto it = (name.ok() && size.ok()) ? files_.find(name.value()) : files_.end();
  if (it == files_.end()) {
    reply.PushU32(static_cast<uint32_t>(KernReturn::kNotFound));
  } else {
    it->second.size = size.value();
    reply.PushU32(static_cast<uint32_t>(KernReturn::kSuccess));
  }
  Reply(msg, std::move(reply));
}

void FsServer::HandleSync(Message& msg) {
  Result<std::string> name = msg.TakeString();
  Message reply(kMsgFsSync);
  std::lock_guard<std::mutex> g(fs_mu_);
  auto it = name.ok() ? files_.find(name.value()) : files_.end();
  if (it == files_.end()) {
    reply.PushU32(static_cast<uint32_t>(KernReturn::kNotFound));
  } else {
    File& file = it->second;
    const VmSize ps = kernel_->page_size();
    VmSize span = RoundPage(std::max<VmSize>(file.size, ps), ps);
    // Ask every mapping kernel to write dirty pages back
    // (pager_clean_request); they arrive as pager_data_write.
    for (const SendRight& req : file.request_ports) {
      CleanRequest(req, 0, span);
    }
    reply.PushU32(static_cast<uint32_t>(KernReturn::kSuccess));
  }
  Reply(msg, std::move(reply));
}

// --- pager protocol (this server as data manager) ----------------------------

void FsServer::OnInit(uint64_t object_port_id, uint64_t cookie, PagerInitArgs args) {
  std::lock_guard<std::mutex> g(fs_mu_);
  File* file = FindByCookie(cookie);
  if (file == nullptr) {
    return;
  }
  file->request_ports.push_back(args.pager_request_port);
  // Allow the kernel to keep file pages cached after unmapping: this is the
  // mapped-file cache that §9 credits for the performance win.
  SetCaching(args.pager_request_port, true);
}

void FsServer::OnDataRequest(uint64_t object_port_id, uint64_t cookie,
                             PagerDataRequestArgs args) {
  const VmSize ps = disk_->block_size();
  std::lock_guard<std::mutex> g(fs_mu_);
  File* file = FindByCookie(cookie);
  if (file == nullptr) {
    DataUnavailable(args.pager_request_port, args.offset, args.length);
    return;
  }
  // Fault-ahead runs arrive as one request; answer with coalesced
  // multi-page messages, splitting at holes and bad blocks.
  PagerRunBuilder run(args.pager_request_port);
  for (VmOffset off = args.offset; off < args.offset + args.length; off += ps) {
    size_t page = static_cast<size_t>(off / ps);
    if (page >= file->blocks.size() || file->blocks[page] == UINT32_MAX) {
      // Hole or beyond EOF: zero fill.
      run.AddUnavailable(off, ps);
      continue;
    }
    std::vector<std::byte> data(ps);
    if (!IsOk(disk_->ReadBlock(file->blocks[page], data.data()))) {
      // §6.2.1: unreadable file block → pager_data_unavailable; mapping
      // kernels substitute per their failure policy instead of hanging.
      io_errors_.fetch_add(1, std::memory_order_relaxed);
      run.AddUnavailable(off, ps);
      continue;
    }
    run.AddData(off, std::move(data), kVmProtNone);
  }
}

void FsServer::OnDataWrite(uint64_t object_port_id, uint64_t cookie, PagerDataWriteArgs args) {
  // Dirty file-cache pages being evicted (e.g. the server's own mapping
  // after a client modified data through shared mappings): write through.
  const VmSize ps = disk_->block_size();
  std::lock_guard<std::mutex> g(fs_mu_);
  File* file = FindByCookie(cookie);
  if (file == nullptr) {
    return;
  }
  size_t pages = args.data.size() / ps;
  for (size_t p = 0; p < pages; ++p) {
    size_t page = static_cast<size_t>(args.offset / ps) + p;
    if (page >= file->blocks.size()) {
      file->blocks.resize(page + 1, UINT32_MAX);
    }
    if (file->blocks[page] == UINT32_MAX) {
      file->blocks[page] = disk_->AllocBlock();
      if (file->blocks[page] == UINT32_MAX) {
        MACH_LOG(kError) << "fs: disk full on pageout";
        return;
      }
    }
    if (!IsOk(disk_->WriteBlock(file->blocks[page], args.data.data() + p * ps))) {
      io_errors_.fetch_add(1, std::memory_order_relaxed);
      MACH_LOG(kWarn) << "fs: writeback failed for block " << file->blocks[page];
    }
  }
  // File size is authoritative from fs_write_file; dirty-cache writebacks
  // never extend it.
}

void FsServer::OnPortDeath(uint64_t port_id) {
  // A kernel released its mapping of some file; drop the dead request port.
  std::lock_guard<std::mutex> g(fs_mu_);
  for (auto& [name, file] : files_) {
    auto& ports = file.request_ports;
    for (auto it = ports.begin(); it != ports.end();) {
      if (it->id() == port_id) {
        it = ports.erase(it);
      } else {
        ++it;
      }
    }
  }
}

// --- client library -----------------------------------------------------------

Result<FsClient::ReadResult> FsClient::ReadFile(const std::string& name) {
  Message request(kMsgFsReadFile);
  request.PushString(name);
  Result<Message> reply = MsgRpc(service_, std::move(request), kWaitForever,
                                 std::chrono::seconds(10));
  if (!reply.ok()) {
    return reply.status();
  }
  Result<uint32_t> status = reply.value().TakeU32();
  if (!status.ok()) {
    return KernReturn::kInvalidArgument;
  }
  if (static_cast<KernReturn>(status.value()) != KernReturn::kSuccess) {
    return static_cast<KernReturn>(status.value());
  }
  Result<uint64_t> size = reply.value().TakeU64();
  Result<OolItem> ool = reply.value().TakeOol();
  if (!size.ok() || !ool.ok()) {
    return KernReturn::kInvalidArgument;
  }
  auto copy = std::static_pointer_cast<VmMapCopy>(ool.value().copy);
  Result<VmOffset> addr = task_->kernel().vm().CopyOut(task_->vm_context(), copy);
  if (!addr.ok()) {
    return addr.status();
  }
  return ReadResult{addr.value(), size.value()};
}

KernReturn FsClient::WriteFile(const std::string& name, VmOffset address, VmSize size) {
  const VmSize ps = task_->page_size();
  Result<std::shared_ptr<VmMapCopy>> copy = task_->kernel().vm().CopyIn(
      task_->vm_context(), TruncPage(address, ps), RoundPage(std::max<VmSize>(size, 1), ps));
  if (!copy.ok()) {
    return copy.status();
  }
  Message request(kMsgFsWriteFile);
  request.PushString(name);
  request.PushU64(size);
  request.PushOol(copy.value(), copy.value()->size());
  Result<Message> reply = MsgRpc(service_, std::move(request), kWaitForever,
                                 std::chrono::seconds(10));
  if (!reply.ok()) {
    return reply.status();
  }
  Result<uint32_t> status = reply.value().TakeU32();
  return status.ok() ? static_cast<KernReturn>(status.value()) : KernReturn::kInvalidArgument;
}

KernReturn FsClient::Create(const std::string& name) {
  Message request(kMsgFsCreate);
  request.PushString(name);
  Result<Message> reply = MsgRpc(service_, std::move(request), kWaitForever,
                                 std::chrono::seconds(10));
  if (!reply.ok()) {
    return reply.status();
  }
  Result<uint32_t> status = reply.value().TakeU32();
  return status.ok() ? static_cast<KernReturn>(status.value()) : KernReturn::kInvalidArgument;
}

KernReturn FsClient::Delete(const std::string& name) {
  Message request(kMsgFsDelete);
  request.PushString(name);
  Result<Message> reply = MsgRpc(service_, std::move(request), kWaitForever,
                                 std::chrono::seconds(10));
  if (!reply.ok()) {
    return reply.status();
  }
  Result<uint32_t> status = reply.value().TakeU32();
  return status.ok() ? static_cast<KernReturn>(status.value()) : KernReturn::kInvalidArgument;
}

Result<VmSize> FsClient::Stat(const std::string& name) {
  Message request(kMsgFsStat);
  request.PushString(name);
  Result<Message> reply = MsgRpc(service_, std::move(request), kWaitForever,
                                 std::chrono::seconds(10));
  if (!reply.ok()) {
    return reply.status();
  }
  Result<uint32_t> status = reply.value().TakeU32();
  if (!status.ok() || static_cast<KernReturn>(status.value()) != KernReturn::kSuccess) {
    return status.ok() ? static_cast<KernReturn>(status.value()) : KernReturn::kInvalidArgument;
  }
  Result<uint64_t> size = reply.value().TakeU64();
  if (!size.ok()) {
    return KernReturn::kInvalidArgument;
  }
  return VmSize{size.value()};
}

}  // namespace mach
