// ShmShard: one directory shard of the distributed shared-memory manager.
//
// A shard is a self-contained DataManager — its own service thread, its own
// port set, its own lock — that adapts the external-pager upcalls for its
// memory objects onto an embedded ShmDirectory. Coherence traffic for pages
// in different shards therefore parallelises through the IPC layer with no
// shared state: the only thing shards of one broker have in common is the
// hash function that partitioned the page space.
//
// A shard serves one memory object per (region, shard) pair; the object's
// cookie is the region id. Offsets within the object are region offsets, so
// a kernel maps each hash run of the region against the owning shard's
// object at the run's own offset (ShmBroker::MapRegion does this).

#ifndef SRC_MANAGERS_SHM_SHM_SHARD_H_
#define SRC_MANAGERS_SHM_SHM_SHARD_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/managers/shm/shm_directory.h"
#include "src/pager/data_manager.h"

namespace mach {

class ShmShard : public DataManager {
 public:
  ShmShard(std::string name, ShmOptions options);

  ShmDirectory& directory() { return directory_; }
  const ShmDirectory& directory() const { return directory_; }

  // Returns (creating on first use) this shard's memory object for the
  // region. Idempotent per region id.
  SendRight RegionObject(uint64_t region_id, VmSize size, const std::string& label);

 protected:
  void OnInit(uint64_t object_port_id, uint64_t cookie, PagerInitArgs args) override;
  void OnDataRequest(uint64_t object_port_id, uint64_t cookie, PagerDataRequestArgs args) override;
  void OnDataUnlock(uint64_t object_port_id, uint64_t cookie, PagerDataUnlockArgs args) override;
  void OnDataWrite(uint64_t object_port_id, uint64_t cookie, PagerDataWriteArgs args) override;
  void OnLockCompleted(uint64_t object_port_id, uint64_t cookie,
                       PagerLockCompletedArgs args) override;
  void OnPortDeath(uint64_t port_id) override;
  void OnServiceTick(bool serviced) override;

 private:
  ShmDirectory directory_;
  std::mutex objects_mu_;
  std::unordered_map<uint64_t, SendRight> region_objects_;  // by region id
};

}  // namespace mach

#endif  // SRC_MANAGERS_SHM_SHM_SHARD_H_
