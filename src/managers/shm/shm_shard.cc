#include "src/managers/shm/shm_shard.h"

namespace mach {

ShmShard::ShmShard(std::string name, ShmOptions options)
    : DataManager(std::move(name)), directory_(std::move(options)) {}

SendRight ShmShard::RegionObject(uint64_t region_id, VmSize size, const std::string& label) {
  std::lock_guard<std::mutex> g(objects_mu_);
  auto it = region_objects_.find(region_id);
  if (it != region_objects_.end()) {
    return it->second;
  }
  directory_.AddRegion(region_id, size);
  SendRight object = CreateMemoryObject(region_id, label);
  region_objects_.emplace(region_id, object);
  return object;
}

void ShmShard::OnInit(uint64_t object_port_id, uint64_t cookie, PagerInitArgs args) {
  directory_.HandleInit(cookie, std::move(args.pager_request_port));
}

void ShmShard::OnDataRequest(uint64_t object_port_id, uint64_t cookie,
                             PagerDataRequestArgs args) {
  directory_.HandleDataRequest(cookie, std::move(args.pager_request_port), args.offset,
                               args.length, args.desired_access);
}

void ShmShard::OnDataUnlock(uint64_t object_port_id, uint64_t cookie, PagerDataUnlockArgs args) {
  directory_.HandleDataUnlock(cookie, std::move(args.pager_request_port), args.offset,
                              args.length, args.desired_access);
}

void ShmShard::OnDataWrite(uint64_t object_port_id, uint64_t cookie, PagerDataWriteArgs args) {
  directory_.HandleDataWrite(cookie, args.offset, std::move(args.data));
}

void ShmShard::OnLockCompleted(uint64_t object_port_id, uint64_t cookie,
                               PagerLockCompletedArgs args) {
  directory_.HandleLockCompleted(cookie, args.pager_request_port.id(), args.offset, args.length);
}

void ShmShard::OnPortDeath(uint64_t port_id) { directory_.HandlePortDeath(port_id); }

void ShmShard::OnServiceTick(bool serviced) { directory_.Tick(serviced); }

}  // namespace mach
