// SharedMemoryServer: the centralised shared-memory manager of §4.2 — now a
// thin compatibility front end over a single ShmDirectory shard.
//
// Historically this class *was* the protocol: one port, one lock, one
// steady_clock deadline per recall. The protocol now lives in ShmDirectory
// (owner hints, forwarding, virtual-time deadlines) so the centralised
// server and every shard of a ShmBroker run the byte-identical state
// machine; what remains here is the name → memory-object resolution the
// existing tests and benchmarks use. New code that wants scale should speak
// to a ShmBroker instead — this class is the "1 shard" arm of the
// centralised-vs-sharded ablation.

#ifndef SRC_MANAGERS_SHM_SHM_SERVER_H_
#define SRC_MANAGERS_SHM_SHM_SERVER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "src/managers/shm/shm_shard.h"

namespace mach {

class SharedMemoryServer : public ShmShard {
 public:
  explicit SharedMemoryServer(VmSize page_size) : SharedMemoryServer(MakeOptions(page_size)) {}
  explicit SharedMemoryServer(ShmOptions options);

  // Returns the memory object for the named region, creating it on first
  // use (§4.2: the server returns the same object X to every client).
  // Remote hosts should receive a NetLink proxy of this right.
  SendRight GetRegion(const std::string& name, VmSize size);

  // Statistics for the coherence benchmarks (legacy accessors; the full
  // set is directory().counters()).
  uint64_t read_grants() const { return directory().counters().read_grants; }
  uint64_t write_grants() const { return directory().counters().write_grants; }
  uint64_t invalidations() const { return directory().counters().invalidations; }
  uint64_t recalls() const { return directory().counters().recalls; }

 private:
  static ShmOptions MakeOptions(VmSize page_size) {
    ShmOptions options;
    options.page_size = page_size;
    return options;
  }

  std::mutex names_mu_;
  std::map<std::string, uint64_t> names_;  // region name -> region id
  uint64_t next_region_id_ = 1;
};

}  // namespace mach

#endif  // SRC_MANAGERS_SHM_SHM_SERVER_H_
