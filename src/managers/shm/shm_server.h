// Consistent network shared memory (§4.2): a data manager that gives tasks
// on multiple hosts a coherent read/write shared memory region, using only
// the external memory management interface — the software analogue of a
// multiprocessor's consistent caches (§7, after Li & Hudak).
//
// Protocol, per page (single writer / multiple readers):
//   * read fault  -> pager_data_request(read): the server returns the data
//     write-locked (lock_value = WRITE) and records the kernel as a reader.
//   * write fault on a read copy -> pager_data_unlock: the server
//     invalidates every other reader (pager_flush_request), then grants
//     write access (pager_data_lock with no lock); the kernel becomes the
//     (sole) writer.
//   * write fault with no copy -> pager_data_request(write): the server
//     recalls the page from the current writer if any (flush; the dirty
//     data comes back as pager_data_write), invalidates readers, and
//     provides the data unlocked.
//
// The server's authoritative copy of a page is valid only while no kernel
// holds write access; while a writer exists, requests queue until the
// recalled data arrives (or a short deadline passes — a writer that never
// dirtied the page is flushed silently by its kernel, which sends nothing).

#ifndef SRC_MANAGERS_SHM_SHM_SERVER_H_
#define SRC_MANAGERS_SHM_SHM_SERVER_H_

#include <chrono>
#include <cstdint>
#include <atomic>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/pager/data_manager.h"

namespace mach {

class SharedMemoryServer : public DataManager {
 public:
  explicit SharedMemoryServer(VmSize page_size);

  // Returns the memory object for the named region, creating it on first
  // use (§4.2: the server returns the same object X to every client).
  // Remote hosts should receive a NetLink proxy of this right.
  SendRight GetRegion(const std::string& name, VmSize size);

  // Statistics for the coherence benchmarks. Read from client threads
  // while the server thread grants, hence atomic.
  uint64_t read_grants() const { return read_grants_.load(std::memory_order_relaxed); }
  uint64_t write_grants() const { return write_grants_.load(std::memory_order_relaxed); }
  uint64_t invalidations() const { return invalidations_.load(std::memory_order_relaxed); }
  uint64_t recalls() const { return recalls_.load(std::memory_order_relaxed); }

 protected:
  void OnInit(uint64_t object_port_id, uint64_t cookie, PagerInitArgs args) override;
  void OnDataRequest(uint64_t object_port_id, uint64_t cookie, PagerDataRequestArgs args) override;
  void OnDataUnlock(uint64_t object_port_id, uint64_t cookie, PagerDataUnlockArgs args) override;
  void OnDataWrite(uint64_t object_port_id, uint64_t cookie, PagerDataWriteArgs args) override;
  void OnPortDeath(uint64_t port_id) override;
  void OnIdle() override;

 private:
  struct PendingRequest {
    SendRight request_port;
    VmProt access = kVmProtNone;
    std::chrono::steady_clock::time_point deadline;
  };

  struct PageState {
    std::vector<std::byte> data;      // Authoritative while writer == 0.
    uint64_t writer = 0;              // Request-port id of the sole writer.
    SendRight writer_port;
    std::set<uint64_t> reader_ids;
    std::vector<SendRight> reader_ports;
    std::vector<PendingRequest> pending;
  };

  struct Region {
    uint64_t cookie = 0;
    VmSize size = 0;
    SendRight object;
    // Every kernel ("use") of this region: request port id -> send right.
    std::unordered_map<uint64_t, SendRight> uses;
    std::map<VmOffset, PageState> pages;
  };

  Region* RegionByCookie(uint64_t cookie);
  PageState& PageAt(Region* region, VmOffset offset);
  // Grants the front-of-queue access(es) for a page whose data is settled.
  void ServePending(Region* region, VmOffset offset, PageState& page);
  void GrantRead(PageState& page, const SendRight& req, VmOffset offset);
  void GrantWrite(Region* region, PageState& page, const SendRight& req, VmOffset offset,
                  bool requester_has_copy);
  void InvalidateReaders(PageState& page, VmOffset offset, uint64_t except_id);

  const VmSize page_size_;
  std::mutex mu_;
  std::map<std::string, Region> regions_;
  uint64_t next_cookie_ = 1;

  std::atomic<uint64_t> read_grants_{0};
  std::atomic<uint64_t> write_grants_{0};
  std::atomic<uint64_t> invalidations_{0};
  std::atomic<uint64_t> recalls_{0};
};

}  // namespace mach

#endif  // SRC_MANAGERS_SHM_SHM_SERVER_H_
