#include "src/managers/shm/shm_broker.h"

#include <algorithm>
#include <utility>

#include "src/base/log.h"
#include "src/kernel/task.h"

namespace mach {

ShmBroker::ShmBroker(std::string name, size_t shard_count, ShmOptions options)
    : DataManager(name), page_size_(options.page_size) {
  const size_t n = std::max<size_t>(shard_count, 1);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // Each shard learns its stripe so a fault-ahead run can be clamped to
    // the pages this shard actually serves (ShmShardOfPage).
    ShmOptions shard_options = options;
    shard_options.shard_index = static_cast<uint32_t>(i);
    shard_options.shard_count = static_cast<uint32_t>(n);
    shards_.push_back(
        std::make_unique<ShmShard>(name + "-s" + std::to_string(i), shard_options));
  }
  service_port_ = AllocateServicePort("shm-broker");
}

ShmBroker::~ShmBroker() { Stop(); }

void ShmBroker::Start() {
  for (auto& shard : shards_) {
    shard->Start();
  }
  DataManager::Start();
}

void ShmBroker::Stop() {
  DataManager::Stop();
  for (auto& shard : shards_) {
    shard->Stop();
  }
}

ShmRegionInfoArgs ShmBroker::InfoFor(const RegionRecord& rec) {
  ShmRegionInfoArgs info;
  info.region_id = rec.region_id;
  info.size = rec.size;
  info.page_size = page_size_;
  info.shard_objects.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    info.shard_objects.push_back(shards_[s]->RegionObject(
        rec.region_id, rec.size, "shm:" + std::to_string(rec.region_id)));
  }
  return info;
}

ShmRegionInfoArgs ShmBroker::GetRegion(const std::string& name, VmSize size) {
  std::lock_guard<std::mutex> g(regions_mu_);
  auto it = regions_.find(name);
  if (it == regions_.end()) {
    RegionRecord rec;
    rec.region_id = next_region_id_++;
    rec.size = RoundPage(size, page_size_);
    it = regions_.emplace(name, rec).first;
  }
  return InfoFor(it->second);
}

Result<ShmRegionInfoArgs> ShmBroker::GetRegionVia(const SendRight& service,
                                                  const std::string& name, VmSize size) {
  ShmGetRegionArgs args;
  args.name = name;
  args.size = size;
  Result<Message> reply = MsgRpc(service, EncodeShmGetRegion(args),
                                 std::chrono::milliseconds(2000), std::chrono::milliseconds(5000));
  if (!reply.ok()) {
    return reply.status();
  }
  if (reply.value().id() != kMsgShmRegionInfo) {
    return KernReturn::kInvalidArgument;
  }
  return DecodeShmRegionInfo(reply.value());
}

Result<VmOffset> ShmBroker::MapRegion(Task& task, const ShmRegionInfoArgs& info) {
  if (info.shard_objects.empty() || info.page_size == 0 || info.size == 0) {
    return KernReturn::kInvalidArgument;
  }
  // Reserve a contiguous range, then rebuild it run by run: each hash run
  // of same-shard pages maps that shard's object at the run's own region
  // offset (object offsets are region offsets).
  Result<VmOffset> base = task.VmAllocate(info.size);
  if (!base.ok()) {
    return base.status();
  }
  KernReturn kr = task.VmDeallocate(base.value(), info.size);
  if (kr != KernReturn::kSuccess) {
    return kr;
  }
  const size_t n = info.shard_objects.size();
  const uint64_t pages = info.size / info.page_size;
  uint64_t run_start = 0;
  size_t run_shard = ShardOfPage(info.region_id, 0, n);
  for (uint64_t p = 1; p <= pages; ++p) {
    const size_t s = p < pages ? ShardOfPage(info.region_id, p, n) : n;  // n = flush sentinel
    if (s == run_shard) {
      continue;
    }
    Result<VmOffset> mapped = task.VmAllocateWithPager(
        (p - run_start) * info.page_size, info.shard_objects[run_shard],
        run_start * info.page_size, /*anywhere=*/false, base.value() + run_start * info.page_size);
    if (!mapped.ok()) {
      return mapped.status();
    }
    run_start = p;
    run_shard = s;
  }
  return base.value();
}

ShmCounters ShmBroker::aggregate_counters() const {
  ShmCounters total;
  for (const auto& shard : shards_) {
    const ShmCounters c = shard->directory().counters();
    total.read_grants += c.read_grants;
    total.write_grants += c.write_grants;
    total.invalidations += c.invalidations;
    total.recalls += c.recalls;
    total.forwards += c.forwards;
    total.hint_hits += c.hint_hits;
    total.hint_repairs += c.hint_repairs;
    total.stale_hints += c.stale_hints;
    total.ownership_transfers += c.ownership_transfers;
    total.downgrades += c.downgrades;
    total.forward_drops += c.forward_drops;
    total.recall_retries += c.recall_retries;
    total.recall_timeouts += c.recall_timeouts;
    total.service_ns += c.service_ns;
  }
  return total;
}

uint64_t ShmBroker::max_shard_service_ns() const {
  uint64_t max_ns = 0;
  for (const auto& shard : shards_) {
    max_ns = std::max(max_ns, shard->directory().counters().service_ns);
  }
  return max_ns;
}

void ShmBroker::OnDataRequest(uint64_t object_port_id, uint64_t cookie,
                              PagerDataRequestArgs args) {
  // The broker has no memory objects of its own — pages live in shards.
  DataUnavailable(args.pager_request_port, args.offset, args.length);
}

bool ShmBroker::OnMessage(uint64_t port_id, Message&& msg) {
  if (msg.id() != kMsgShmGetRegion) {
    return false;
  }
  SendRight reply_to = msg.reply_port();
  Result<ShmGetRegionArgs> args = DecodeShmGetRegion(msg);
  if (!args.ok() || !reply_to.valid()) {
    return true;  // Malformed request: handled (dropped).
  }
  ShmRegionInfoArgs info = GetRegion(args.value().name, args.value().size);
  MsgSend(reply_to, EncodeShmRegionInfo(info), std::chrono::milliseconds(2000));
  return true;
}

}  // namespace mach
