#include "src/managers/shm/shm_directory.h"

#include <algorithm>

#include "src/base/log.h"
#include "src/pager/data_manager.h"

namespace mach {

ShmDirectory::ShmDirectory(ShmOptions options)
    : options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock : &owned_clock_) {}

void ShmDirectory::AddRegion(uint64_t region_id, VmSize size) {
  std::lock_guard<std::mutex> g(mu_);
  Region& region = regions_[region_id];
  if (region.size == 0) {
    region.size = RoundPage(size, options_.page_size);
  }
}

ShmDirectory::PageState& ShmDirectory::PageAt(Region& region, VmOffset offset) {
  auto it = region.pages.find(offset);
  if (it == region.pages.end()) {
    PageState fresh;
    fresh.data.assign(options_.page_size, std::byte{0});
    it = region.pages.emplace(offset, std::move(fresh)).first;
  }
  return it->second;
}

void ShmDirectory::Charge(uint64_t actions) {
  if (options_.service_cost_ns != 0) {
    service_ns_.fetch_add(actions * options_.service_cost_ns, std::memory_order_relaxed);
  }
}

void ShmDirectory::HandleInit(uint64_t region_id, SendRight request_port) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = regions_.find(region_id);
  if (it == regions_.end()) {
    return;
  }
  // Record this use of the region: each kernel mapping it has its own
  // request port (§4.2 "distinct request and name ports for each kernel").
  it->second.uses.emplace(request_port.id(), request_port);
}

void ShmDirectory::InvalidateReaders(PageState& page, VmOffset offset, uint64_t except_id) {
  for (const SendRight& reader : page.reader_ports) {
    if (reader.id() == except_id) {
      continue;
    }
    DataManager::FlushRequest(reader, offset, options_.page_size);
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    Charge();
  }
  page.reader_ports.clear();
  page.reader_ids.clear();
}

void ShmDirectory::SetOwner(PageState& page, const SendRight& req) {
  const uint64_t prev = page.last_owner;
  page.owner = req.id();
  page.owner_port = req;
  if (prev != 0 && prev != req.id()) {
    ownership_transfers_.fetch_add(1, std::memory_order_relaxed);
  }
  page.last_owner = req.id();
  // Repair the probable-owner hint to track the transfer — unless the
  // repair notice is "lost" (shm.stale_hint), in which case the next
  // forward for this page chases through the previous owner.
  if (options_.injector != nullptr && options_.injector->ShouldFail(kFaultStaleHint)) {
    return;
  }
  if (page.hint != 0 && page.hint != req.id()) {
    hint_repairs_.fetch_add(1, std::memory_order_relaxed);
  }
  page.hint = req.id();
  page.hint_port = req;
}

void ShmDirectory::ClearOwner(PageState& page) {
  page.owner = 0;
  page.owner_port = SendRight();
}

void ShmDirectory::GrantRead(PageState& page, const SendRight& req, VmOffset offset,
                             PagerRunBuilder* run) {
  // Count before providing: ProvideData wakes the faulting thread, which
  // may observe the statistics immediately.
  read_grants_.fetch_add(1, std::memory_order_relaxed);
  Charge();
  if (page.reader_ids.insert(req.id()).second) {
    page.reader_ports.push_back(req);
  }
  // Multiple readers are fine; the data goes out write-locked so a write
  // attempt must come back through pager_data_unlock (§4.2).
  if (run != nullptr) {
    run->AddData(offset, page.data, kVmProtWrite);
  } else {
    DataManager::ProvideData(req, offset, page.data, kVmProtWrite);
  }
}

void ShmDirectory::GrantWrite(PageState& page, const SendRight& req, VmOffset offset,
                              bool requester_has_copy) {
  InvalidateReaders(page, offset, req.id());
  SetOwner(page, req);
  write_grants_.fetch_add(1, std::memory_order_relaxed);
  Charge();
  if (requester_has_copy) {
    // The kernel already holds the (read-locked) data: just drop the lock.
    DataManager::LockData(req, offset, options_.page_size, kVmProtNone);
  } else {
    DataManager::ProvideData(req, offset, page.data, kVmProtNone);
  }
}

void ShmDirectory::SendForward(const SendRight& target, VmOffset offset, RecallKind kind,
                               bool exempt) {
  if (!exempt && options_.injector != nullptr &&
      options_.injector->ShouldFail(kFaultForwardDrop)) {
    forward_drops_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  forwards_.fetch_add(1, std::memory_order_relaxed);
  Charge();
  if (kind == RecallKind::kDowngrade) {
    // Demote instead of destroy: the owner writes back dirty data but keeps
    // a (now write-locked) copy and becomes an ordinary reader.
    DataManager::DowngradeToRead(target, offset, options_.page_size);
  } else {
    DataManager::FlushRequest(target, offset, options_.page_size);
  }
}

void ShmDirectory::BeginRecall(uint64_t region_id, VmOffset offset, PageState& page,
                               RecallKind kind) {
  if (page.recall != RecallKind::kNone) {
    if (kind == RecallKind::kFlush && page.recall == RecallKind::kDowngrade) {
      // A write request arrived behind a pending demotion: the owner must
      // now give the copy up entirely. Escalate in place.
      page.recall = RecallKind::kFlush;
      SendForward(page.chased ? page.owner_port
                              : (page.hint != 0 ? page.hint_port : page.owner_port),
                  offset, RecallKind::kFlush, /*exempt=*/false);
    }
    return;  // Recall already in flight; the new request just queues.
  }
  page.recall = kind;
  page.retries_left = options_.recall_retries;
  page.chased = false;
  page.deadline_ns = clock_->NowNs() + options_.recall_deadline_ns;
  recalls_.fetch_add(1, std::memory_order_relaxed);
  const bool via_hint = page.hint != 0;
  if (via_hint && page.hint != page.owner) {
    stale_hints_.fetch_add(1, std::memory_order_relaxed);
  }
  SendForward(via_hint ? page.hint_port : page.owner_port, offset, kind, /*exempt=*/false);
  active_recalls_.emplace(region_id, offset);
}

void ShmDirectory::ResolveRecallClean(uint64_t region_id, Region& region, VmOffset offset,
                                      PageState& page) {
  recall_timeouts_.fetch_add(1, std::memory_order_relaxed);
  if (page.recall == RecallKind::kDowngrade && page.owner != 0) {
    // The (reliably delivered, see Tick) clean left the ex-owner holding a
    // write-locked copy: it is a reader now.
    downgrades_.fetch_add(1, std::memory_order_relaxed);
    if (page.reader_ids.insert(page.owner).second) {
      page.reader_ports.push_back(page.owner_port);
    }
  }
  page.recall = RecallKind::kNone;
  active_recalls_.erase({region_id, offset});
  // No data came back across the full retry budget: the owner's copy was
  // clean (a clean page is flushed silently), so the stored data is still
  // authoritative.
  ClearOwner(page);
  Charge();
  ServePending(region_id, region, offset, page);
}

void ShmDirectory::ServePending(uint64_t region_id, Region& region, VmOffset offset,
                                PageState& page) {
  while (!page.pending.empty() && page.owner == 0) {
    PendingRequest pr = std::move(page.pending.front());
    page.pending.erase(page.pending.begin());
    if ((pr.access & kVmProtWrite) != 0) {
      GrantWrite(page, pr.request_port, offset, /*requester_has_copy=*/false);
      if (!page.pending.empty()) {
        // More waiters behind the new owner: recall immediately. The kind
        // depends on who is waiting — any writer forces a full flush.
        bool writer_waiting = false;
        for (const PendingRequest& rest : page.pending) {
          if ((rest.access & kVmProtWrite) != 0) {
            writer_waiting = true;
            break;
          }
        }
        BeginRecall(region_id, offset, page,
                    (writer_waiting || !options_.downgrade_reads) ? RecallKind::kFlush
                                                                  : RecallKind::kDowngrade);
      }
      return;
    }
    GrantRead(page, pr.request_port, offset);
  }
}

void ShmDirectory::HandleDataRequest(uint64_t region_id, SendRight request_port, VmOffset offset,
                                     VmSize length, VmProt desired_access) {
  std::lock_guard<std::mutex> g(mu_);
  auto rit = regions_.find(region_id);
  if (rit == regions_.end()) {
    DataManager::DataUnavailable(request_port, offset, length);
    return;
  }
  Region& region = rit->second;
  // A multi-page request is the kernel's fault-ahead: the first page is the
  // demanded one and keeps the directory's full semantics; the rest are
  // speculative. Contiguous read grants coalesce into one provide.
  PagerRunBuilder run(request_port);
  const VmOffset first_off = TruncPage(offset, options_.page_size);
  for (VmOffset off = first_off; off < offset + length; off += options_.page_size) {
    PageState& page = PageAt(region, off);
    if (off != first_off) {
      // Speculative pages are opportunistic: serve one only when it is
      // trivially grantable. Never recall a foreign owner, never queue
      // behind an in-flight recall, never transfer write ownership on
      // speculation, and (defensively — the kernel's map entries already
      // confine a run to one hash stripe) never answer for another shard's
      // pages. Silence is always legal here: the kernel frees unanswered
      // fault-ahead placeholders and re-faults on demand. Answering
      // pager_data_unavailable instead would be wrong — the kernel would
      // zero-fill a page whose authoritative bytes live elsewhere.
      if ((desired_access & kVmProtWrite) != 0 || page.owner != 0 ||
          page.recall != RecallKind::kNone ||
          (options_.shard_count > 1 &&
           ShmShardOfPage(region_id, off / options_.page_size, options_.shard_count) !=
               options_.shard_index)) {
        break;
      }
      GrantRead(page, request_port, off, &run);
      continue;
    }
    if (page.owner != 0 && page.owner != request_port.id()) {
      // Another kernel owns the page: forward the recall to the hinted
      // owner. Dirty data arrives as pager_data_write (FIFO on the object
      // port guarantees it precedes any later request from that kernel); a
      // clean copy is flushed silently, which the deadline in Tick
      // resolves. A read request only demotes the owner when configured.
      const bool wants_write = (desired_access & kVmProtWrite) != 0;
      BeginRecall(region_id, off, page,
                  (wants_write || !options_.downgrade_reads) ? RecallKind::kFlush
                                                             : RecallKind::kDowngrade);
      page.pending.push_back(PendingRequest{request_port, desired_access});
      // The demanded page is deferred behind a recall; speculating past it
      // would answer the run out of order for nothing — the faulter is
      // blocked on page one anyway.
      break;
    }
    if (page.owner == request_port.id()) {
      // The owner's kernel lost its copy (evicted). Any dirty data already
      // arrived (FIFO); our stored copy is current again.
      ClearOwner(page);
    }
    if ((desired_access & kVmProtWrite) != 0) {
      GrantWrite(page, request_port, off, /*requester_has_copy=*/false);
    } else {
      GrantRead(page, request_port, off, &run);
    }
  }
}

void ShmDirectory::HandleDataUnlock(uint64_t region_id, SendRight request_port, VmOffset offset,
                                    VmSize length, VmProt desired_access) {
  std::lock_guard<std::mutex> g(mu_);
  auto rit = regions_.find(region_id);
  if (rit == regions_.end()) {
    return;
  }
  Region& region = rit->second;
  for (VmOffset off = TruncPage(offset, options_.page_size); off < offset + length;
       off += options_.page_size) {
    PageState& page = PageAt(region, off);
    const uint64_t requester = request_port.id();
    if (page.owner == requester) {
      DataManager::LockData(request_port, off, options_.page_size, kVmProtNone);  // Duplicate.
      continue;
    }
    if (page.owner != 0) {
      BeginRecall(region_id, off, page, RecallKind::kFlush);
      page.pending.push_back(PendingRequest{request_port, desired_access | kVmProtWrite});
      continue;
    }
    // Reader upgrading to writer: invalidate the *other* readers, then
    // unlock the requester's copy in place (§4.2's final frame).
    InvalidateReaders(page, off, requester);
    SetOwner(page, request_port);
    write_grants_.fetch_add(1, std::memory_order_relaxed);
    Charge();
    DataManager::LockData(request_port, off, options_.page_size, kVmProtNone);
  }
}

void ShmDirectory::HandleDataWrite(uint64_t region_id, VmOffset offset,
                                   std::vector<std::byte> data) {
  std::lock_guard<std::mutex> g(mu_);
  auto rit = regions_.find(region_id);
  if (rit == regions_.end()) {
    return;
  }
  Region& region = rit->second;
  const size_t pages = data.size() / options_.page_size;
  for (size_t p = 0; p < pages; ++p) {
    VmOffset off = offset + p * options_.page_size;
    PageState& page = PageAt(region, off);
    page.data.assign(data.begin() + p * options_.page_size,
                     data.begin() + (p + 1) * options_.page_size);
    Charge();
    if (page.recall != RecallKind::kNone) {
      // The forwarded recall came back with data. Credit the hint if the
      // first hop answered; a chase means the hint had gone stale.
      if (!page.chased) {
        hint_hits_.fetch_add(1, std::memory_order_relaxed);
      }
      if (page.recall == RecallKind::kDowngrade && page.owner != 0) {
        // Demotion: the ex-owner kept a write-locked copy and reads on.
        downgrades_.fetch_add(1, std::memory_order_relaxed);
        if (page.reader_ids.insert(page.owner).second) {
          page.reader_ports.push_back(page.owner_port);
        }
      }
      page.recall = RecallKind::kNone;
      active_recalls_.erase({region_id, off});
    }
    // The owner's writable copy is gone (recalled, demoted, or evicted):
    // data settles here.
    ClearOwner(page);
    ServePending(region_id, region, off, page);
  }
}

void ShmDirectory::HandleLockCompleted(uint64_t region_id, uint64_t completer, VmOffset offset,
                                       VmSize length) {
  std::lock_guard<std::mutex> g(mu_);
  auto rit = regions_.find(region_id);
  if (rit == regions_.end()) {
    return;
  }
  Region& region = rit->second;
  for (VmOffset off = TruncPage(offset, options_.page_size); off < offset + length;
       off += options_.page_size) {
    auto pit = region.pages.find(off);
    if (pit == region.pages.end()) {
      continue;
    }
    PageState& page = pit->second;
    if (page.recall == RecallKind::kNone) {
      continue;  // Already resolved (a data_write settled it first).
    }
    if (page.owner != 0 && completer != page.owner) {
      // A non-owner finished the flush: the hint pointed at a kernel with
      // no copy. Chase the exact owner record right away.
      if (!page.chased) {
        page.chased = true;
        page.deadline_ns = clock_->NowNs() + options_.recall_deadline_ns;
        SendForward(page.owner_port, off, page.recall, /*exempt=*/false);
      }
      continue;
    }
    // The owner processed the recall and (FIFO) sent no data first: its
    // copy was clean.
    recall_acks_.fetch_add(1, std::memory_order_relaxed);
    ResolveRecallClean(region_id, region, off, page);
  }
}

void ShmDirectory::HandlePortDeath(uint64_t port_id) {
  std::lock_guard<std::mutex> g(mu_);
  for (auto& [region_id, region] : regions_) {
    region.uses.erase(port_id);
    for (auto& [off, page] : region.pages) {
      if (page.owner == port_id) {
        // The owning kernel released the region (or died) holding write
        // access; whatever it wrote back last is what survives.
        if (page.recall != RecallKind::kNone) {
          page.recall = RecallKind::kNone;
          active_recalls_.erase({region_id, off});
        }
        ClearOwner(page);
      }
      if (page.hint == port_id) {
        page.hint = 0;
        page.hint_port = SendRight();
      }
      if (page.reader_ids.erase(port_id) != 0) {
        page.reader_ports.erase(
            std::remove_if(page.reader_ports.begin(), page.reader_ports.end(),
                           [&](const SendRight& r) { return r.id() == port_id; }),
            page.reader_ports.end());
      }
      page.pending.erase(
          std::remove_if(page.pending.begin(), page.pending.end(),
                         [&](const PendingRequest& pr) { return pr.request_port.id() == port_id; }),
          page.pending.end());
      ServePending(region_id, region, off, page);
    }
  }
}

void ShmDirectory::Tick(bool serviced) {
  std::lock_guard<std::mutex> g(mu_);
  if (!serviced && options_.idle_tick_ns != 0) {
    // Virtual time advances mostly on idle passes: a deadline cannot expire
    // while recalled data is still queued behind other messages (the busy
    // charge is a factor recall_deadline_ns/busy_tick_ns smaller), so the
    // "no data ⇒ clean copy" inference below is deterministic.
    clock_->Charge(options_.idle_tick_ns);
  } else if (serviced && options_.busy_tick_ns != 0) {
    clock_->Charge(options_.busy_tick_ns);
  }
  if (active_recalls_.empty()) {
    return;
  }
  const uint64_t now = clock_->NowNs();
  // Copy: ResolveRecallClean / re-forwards mutate the active set.
  const std::vector<std::pair<uint64_t, VmOffset>> active(active_recalls_.begin(),
                                                          active_recalls_.end());
  for (const auto& [region_id, off] : active) {
    auto rit = regions_.find(region_id);
    if (rit == regions_.end()) {
      active_recalls_.erase({region_id, off});
      continue;
    }
    Region& region = rit->second;
    auto pit = region.pages.find(off);
    if (pit == region.pages.end()) {
      active_recalls_.erase({region_id, off});
      continue;
    }
    PageState& page = pit->second;
    if (page.recall == RecallKind::kNone || page.deadline_ns > now) {
      continue;
    }
    if (page.retries_left == 0 || page.owner == 0) {
      ResolveRecallClean(region_id, region, off, page);
      continue;
    }
    --page.retries_left;
    recall_retries_.fetch_add(1, std::memory_order_relaxed);
    page.deadline_ns = now + options_.recall_deadline_ns;
    if (!page.chased && page.hint != page.owner) {
      // The hinted owner never answered: chase through the exact record.
      page.chased = true;
    }
    // The last attempt is injector-exempt (guaranteed local delivery), so
    // concluding "clean" after it is sound: the owner demonstrably received
    // the recall and sent nothing back.
    SendForward(page.chased || page.hint == 0 ? page.owner_port : page.hint_port, off,
                page.recall, /*exempt=*/page.retries_left == 0);
  }
}

ShmCounters ShmDirectory::counters() const {
  ShmCounters c;
  c.read_grants = read_grants_.load(std::memory_order_relaxed);
  c.write_grants = write_grants_.load(std::memory_order_relaxed);
  c.invalidations = invalidations_.load(std::memory_order_relaxed);
  c.recalls = recalls_.load(std::memory_order_relaxed);
  c.forwards = forwards_.load(std::memory_order_relaxed);
  c.hint_hits = hint_hits_.load(std::memory_order_relaxed);
  c.hint_repairs = hint_repairs_.load(std::memory_order_relaxed);
  c.stale_hints = stale_hints_.load(std::memory_order_relaxed);
  c.ownership_transfers = ownership_transfers_.load(std::memory_order_relaxed);
  c.downgrades = downgrades_.load(std::memory_order_relaxed);
  c.forward_drops = forward_drops_.load(std::memory_order_relaxed);
  c.recall_retries = recall_retries_.load(std::memory_order_relaxed);
  c.recall_acks = recall_acks_.load(std::memory_order_relaxed);
  c.recall_timeouts = recall_timeouts_.load(std::memory_order_relaxed);
  c.service_ns = service_ns_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace mach
