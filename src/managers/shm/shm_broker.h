// ShmBroker: the thin region-resolution front end of the sharded
// shared-memory manager.
//
// The broker owns N ShmShards and answers exactly one question — "give me
// the named region" — returning the region's identity and one memory object
// per shard (ShmRegionInfoArgs). After that it is out of the picture: all
// coherence traffic flows kernel ↔ shard, so the broker can never become
// the serialisation point the old centralised server was.
//
// Placement: local clients call GetRegion() directly. Remote hosts send
// shm_get_region to a NetLink proxy of service_port() (GetRegionVia); the
// reply's shard rights are proxied automatically by the link, so the shards
// themselves may live on this host or any other. Shard *objects* can also
// be proxied individually to place shards on different hosts.
//
// Page partitioning: page index p of region r belongs to shard
// HashCombine64(r, p) % N — SplitMix64 avalanche, so consecutive pages
// spread uniformly and no shard inherits a hot contiguous run.

#ifndef SRC_MANAGERS_SHM_SHM_BROKER_H_
#define SRC_MANAGERS_SHM_SHM_BROKER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/base/hash.h"
#include "src/managers/shm/shm_shard.h"

namespace mach {

class Task;

class ShmBroker : public DataManager {
 public:
  // `options` is applied to every shard (each gets its own directory; a
  // null options.clock means each shard runs its own private clock).
  ShmBroker(std::string name, size_t shard_count, ShmOptions options);
  ~ShmBroker() override;

  // Starts/stops the broker's own service thread and every shard's.
  void Start();
  void Stop();

  // Local resolution: returns (creating on first use) the named region.
  ShmRegionInfoArgs GetRegion(const std::string& name, VmSize size);

  // The port remote hosts resolve regions through (proxy it over NetLink).
  SendRight service_port() const { return service_port_; }

  // Remote resolution: shm_get_region RPC through `service` (typically a
  // NetLink proxy of another broker's service_port()).
  static Result<ShmRegionInfoArgs> GetRegionVia(const SendRight& service,
                                                const std::string& name, VmSize size);

  // Which shard serves page `page_index` of region `region_id`. Delegates
  // to the shared partition function the shards clamp fault-ahead runs by.
  static size_t ShardOfPage(uint64_t region_id, uint64_t page_index, size_t shard_count) {
    return static_cast<size_t>(ShmShardOfPage(region_id, page_index, shard_count));
  }

  // Maps the whole region into `task`: reserves a contiguous range, then
  // maps each hash run of pages against its shard's object at the run's own
  // region offset. Returns the base address.
  static Result<VmOffset> MapRegion(Task& task, const ShmRegionInfoArgs& info);

  size_t shard_count() const { return shards_.size(); }
  ShmShard& shard(size_t i) { return *shards_[i]; }

  // Sum of all shard directory counters.
  ShmCounters aggregate_counters() const;
  // Makespan view for the ablation bench: the busiest shard's modeled
  // service time (options.service_cost_ns must be nonzero to be useful).
  uint64_t max_shard_service_ns() const;

 protected:
  void OnDataRequest(uint64_t object_port_id, uint64_t cookie, PagerDataRequestArgs args) override;
  bool OnMessage(uint64_t port_id, Message&& msg) override;

 private:
  struct RegionRecord {
    uint64_t region_id = 0;
    VmSize size = 0;
  };

  ShmRegionInfoArgs InfoFor(const RegionRecord& rec);

  const VmSize page_size_;
  std::vector<std::unique_ptr<ShmShard>> shards_;
  SendRight service_port_;

  std::mutex regions_mu_;
  std::map<std::string, RegionRecord> regions_;
  uint64_t next_region_id_ = 1;
};

}  // namespace mach

#endif  // SRC_MANAGERS_SHM_SHM_BROKER_H_
