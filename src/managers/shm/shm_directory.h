// ShmDirectory: the per-shard coherence state machine of the distributed
// network shared-memory directory (§4.2/§7, after Li & Hudak's dynamic
// distributed manager).
//
// One directory instance serves the subset of a region's pages that hash to
// its shard. It is deliberately *not* a DataManager — ShmShard adapts the
// external-pager upcalls onto it — so the protocol can be unit-driven and so
// the centralised SharedMemoryServer and every shard of a ShmBroker run the
// byte-identical state machine (the property-test oracle depends on that).
//
// Per page (single writer / multiple readers, with dynamic ownership):
//   * The *owner* is the last kernel granted write access; its request port
//     id is the directory's exact record. The *hint* is the port the
//     directory forwards recalls to first — normally the owner, but
//     possibly stale (a lost transfer notice, modelled by the
//     "shm.stale_hint" fault point, or a kernel that silently dropped its
//     clean copy). A stale hint costs one extra forward: the chase is
//     bounded by 2 because the exact owner record is always one hop away.
//   * A request while a foreign owner exists *forwards* to the hinted
//     owner: a write request recalls the page (pager_flush_request), a read
//     request — with downgrade_reads on — demotes the owner to a reader
//     instead (pager_clean_request + a write lock), so read-mostly sharing
//     stops destroying the writer's copy.
//   * Forwards can be lost ("shm.forward_drop"); the recall deadline
//     retries them a bounded number of times before concluding the owner's
//     copy was clean (a clean copy is flushed silently — nothing comes
//     back) and serving the directory's stored data.
//
// Deadlines run on *virtual* time (SimClock), not std::chrono::steady_clock:
// the owning shard charges the clock only on idle service passes, so a
// deadline cannot expire while recalled data is still queued behind other
// messages — chaos runs and the NORMA latency sweep are replayable and a
// slow machine cannot turn an in-flight writeback into a false "was clean".

#ifndef SRC_MANAGERS_SHM_SHM_DIRECTORY_H_
#define SRC_MANAGERS_SHM_SHM_DIRECTORY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/base/fault_injector.h"
#include "src/base/hash.h"
#include "src/base/sim_clock.h"
#include "src/base/vm_types.h"
#include "src/ipc/port.h"

namespace mach {

class PagerRunBuilder;

struct ShmOptions {
  VmSize page_size = 4096;
  // Virtual-time source for recall deadlines. nullptr = the directory owns
  // a private clock (advanced only by Tick()).
  SimClock* clock = nullptr;
  // Optional injector for the shm.* fault points. Not owned.
  FaultInjector* injector = nullptr;
  // How long (virtual ns) to wait for recalled data before retrying the
  // forward, and how many retries before concluding the owner was clean.
  uint64_t recall_deadline_ns = 150'000'000;
  uint32_t recall_retries = 3;
  // Virtual time charged per idle service pass (see header comment).
  uint64_t idle_tick_ns = 25'000'000;
  // Small charge per *serviced* pass so a continuously busy shard still
  // expires deadlines eventually — a writeback would have to be
  // recall_deadline_ns / busy_tick_ns messages behind to time out falsely.
  uint64_t busy_tick_ns = 1'000'000;
  // Modeled directory service cost charged to ShmCounters::service_ns per
  // coherence action (grant / invalidation / forward / settle). Used by
  // bench_shm_coherence to compute a CPU-count-independent makespan.
  uint64_t service_cost_ns = 0;
  // Read requests demote a foreign owner to reader (clean + write lock)
  // instead of flushing its copy.
  bool downgrade_reads = true;
  // This directory's position in the broker's hash partition. Speculative
  // (fault-ahead) pages outside this shard's stripe are never answered; the
  // defaults describe a standalone (unsharded) directory that owns every
  // page. Set by ShmBroker when constructing its shards.
  uint32_t shard_index = 0;
  uint32_t shard_count = 1;
};

// Which shard serves page `page_index` of region `region_id` — SplitMix64
// avalanche, so consecutive pages spread uniformly and no shard inherits a
// hot contiguous run. Shared by the broker's map-building side and the
// directory's stripe clamp so the two can never disagree.
inline uint64_t ShmShardOfPage(uint64_t region_id, uint64_t page_index, uint64_t shard_count) {
  return HashCombine64(region_id, page_index) % shard_count;
}

// Counter snapshot. Read from client threads while the shard thread grants,
// hence the atomics live in the directory and this is a plain copy.
struct ShmCounters {
  uint64_t read_grants = 0;
  uint64_t write_grants = 0;
  uint64_t invalidations = 0;
  uint64_t recalls = 0;
  uint64_t forwards = 0;             // Recall/downgrade sends to a hinted owner.
  uint64_t hint_hits = 0;            // Forwards the hinted owner answered with data.
  uint64_t hint_repairs = 0;         // Hint rewritten after diverging from the owner.
  uint64_t stale_hints = 0;          // Forwards sent while hint != exact owner.
  uint64_t ownership_transfers = 0;  // Write grants handing a page owner -> owner.
  uint64_t downgrades = 0;           // Owners demoted to reader by a read request.
  uint64_t forward_drops = 0;        // Forwards eaten by shm.forward_drop.
  uint64_t recall_retries = 0;       // Deadline-driven re-forwards.
  uint64_t recall_acks = 0;          // Recalls resolved clean by lock_completed.
  uint64_t recall_timeouts = 0;      // Recalls resolved clean by deadline expiry.
  uint64_t service_ns = 0;           // Modeled service time (see ShmOptions).
};

class ShmDirectory {
 public:
  // Fault points (consulted when an injector is attached):
  //  * shm.forward_drop — the forward to the hinted owner is lost; the
  //    deadline path must retry it.
  //  * shm.stale_hint — the hint repair at ownership transfer is lost; the
  //    next forward for the page goes to the previous owner and must chase.
  static constexpr const char* kFaultForwardDrop = "shm.forward_drop";
  static constexpr const char* kFaultStaleHint = "shm.stale_hint";

  explicit ShmDirectory(ShmOptions options);

  ShmDirectory(const ShmDirectory&) = delete;
  ShmDirectory& operator=(const ShmDirectory&) = delete;

  // Registers a region this directory serves (idempotent). `region_id` is
  // the memory-object cookie the owning shard hands out.
  void AddRegion(uint64_t region_id, VmSize size);

  // --- external-pager upcalls, forwarded by ShmShard ----------------------
  void HandleInit(uint64_t region_id, SendRight request_port);
  void HandleDataRequest(uint64_t region_id, SendRight request_port, VmOffset offset,
                         VmSize length, VmProt desired_access);
  void HandleDataUnlock(uint64_t region_id, SendRight request_port, VmOffset offset,
                        VmSize length, VmProt desired_access);
  void HandleDataWrite(uint64_t region_id, VmOffset offset, std::vector<std::byte> data);
  // pager_lock_completed from `completer`: a flush/clean finished. FIFO on
  // the object port means any dirty data already settled, so a recall still
  // active when the owner's completion arrives was clean — resolve it now
  // (no timeout). A completion from a non-owner exposes a stale hint: the
  // chase to the exact owner starts immediately.
  void HandleLockCompleted(uint64_t region_id, uint64_t completer, VmOffset offset,
                           VmSize length);
  void HandlePortDeath(uint64_t port_id);

  // Service-loop tick: advances the private clock on idle passes and
  // resolves expired recall deadlines (retry, chase, or conclude-clean).
  void Tick(bool serviced);

  ShmCounters counters() const;
  const ShmOptions& options() const { return options_; }
  uint64_t now_ns() const { return clock_->NowNs(); }

 private:
  struct PendingRequest {
    SendRight request_port;
    VmProt access = kVmProtNone;
  };

  enum class RecallKind : uint8_t {
    kNone = 0,
    kFlush,      // Owner must give the page up (write request waiting).
    kDowngrade,  // Owner may keep a read copy (read request waiting).
  };

  struct PageState {
    std::vector<std::byte> data;  // Authoritative while owner == 0.
    uint64_t owner = 0;           // Exact record: last granted writer.
    SendRight owner_port;
    uint64_t last_owner = 0;      // Previous grantee, for transfer accounting.
    uint64_t hint = 0;            // Probable owner; forwards target this.
    SendRight hint_port;
    std::set<uint64_t> reader_ids;
    std::vector<SendRight> reader_ports;
    std::vector<PendingRequest> pending;
    // In-flight recall, resolved by a writeback or the deadline machinery.
    RecallKind recall = RecallKind::kNone;
    uint64_t deadline_ns = 0;
    uint32_t retries_left = 0;
    bool chased = false;  // Already re-forwarded to the exact owner.
  };

  struct Region {
    VmSize size = 0;
    // Every kernel ("use") of this region: request port id -> send right.
    std::unordered_map<uint64_t, SendRight> uses;
    std::map<VmOffset, PageState> pages;
  };

  PageState& PageAt(Region& region, VmOffset offset);
  void Charge(uint64_t actions = 1);
  // Grants the front-of-queue access(es) for a page whose data is settled.
  void ServePending(uint64_t region_id, Region& region, VmOffset offset, PageState& page);
  // `run` non-null routes the provide through a PagerRunBuilder so a
  // fault-ahead request's contiguous grants coalesce into one message.
  void GrantRead(PageState& page, const SendRight& req, VmOffset offset,
                 PagerRunBuilder* run = nullptr);
  void GrantWrite(PageState& page, const SendRight& req, VmOffset offset,
                  bool requester_has_copy);
  void InvalidateReaders(PageState& page, VmOffset offset, uint64_t except_id);
  // Starts (or joins) a recall of an owned page. kFlush upgrades a pending
  // kDowngrade recall — a write request must evict the owner even if a read
  // request only asked for a demotion.
  void BeginRecall(uint64_t region_id, VmOffset offset, PageState& page, RecallKind kind);
  // One forward on the wire (unless shm.forward_drop eats it). The final
  // retry of a recall passes exempt=true: it skips the injector so the
  // conclude-clean inference stays sound under injected drops.
  void SendForward(const SendRight& target, VmOffset offset, RecallKind kind, bool exempt);
  // The recall concluded without data: the hinted copy was clean or gone.
  void ResolveRecallClean(uint64_t region_id, Region& region, VmOffset offset, PageState& page);
  void SetOwner(PageState& page, const SendRight& req);
  void ClearOwner(PageState& page);

  const ShmOptions options_;
  SimClock owned_clock_;
  SimClock* const clock_;

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Region> regions_;
  // Pages with a recall in flight, so Tick never scans the whole space.
  std::set<std::pair<uint64_t, VmOffset>> active_recalls_;

  std::atomic<uint64_t> read_grants_{0};
  std::atomic<uint64_t> write_grants_{0};
  std::atomic<uint64_t> invalidations_{0};
  std::atomic<uint64_t> recalls_{0};
  std::atomic<uint64_t> forwards_{0};
  std::atomic<uint64_t> hint_hits_{0};
  std::atomic<uint64_t> hint_repairs_{0};
  std::atomic<uint64_t> stale_hints_{0};
  std::atomic<uint64_t> ownership_transfers_{0};
  std::atomic<uint64_t> downgrades_{0};
  std::atomic<uint64_t> forward_drops_{0};
  std::atomic<uint64_t> recall_retries_{0};
  std::atomic<uint64_t> recall_acks_{0};
  std::atomic<uint64_t> recall_timeouts_{0};
  std::atomic<uint64_t> service_ns_{0};
};

}  // namespace mach

#endif  // SRC_MANAGERS_SHM_SHM_DIRECTORY_H_
