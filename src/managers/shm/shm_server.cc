#include "src/managers/shm/shm_server.h"

namespace mach {

SharedMemoryServer::SharedMemoryServer(ShmOptions options)
    : ShmShard("shm", std::move(options)) {}

SendRight SharedMemoryServer::GetRegion(const std::string& name, VmSize size) {
  uint64_t region_id = 0;
  {
    std::lock_guard<std::mutex> g(names_mu_);
    auto it = names_.find(name);
    if (it == names_.end()) {
      it = names_.emplace(name, next_region_id_++).first;
    }
    region_id = it->second;
  }
  return RegionObject(region_id, size, "shm:" + name);
}

}  // namespace mach
