#include "src/managers/shm/shm_server.h"

#include <algorithm>

#include "src/base/log.h"

namespace mach {

namespace {
// How long to wait for recalled data before concluding the writer's copy
// was clean (its kernel flushes a clean page silently).
constexpr std::chrono::milliseconds kRecallDeadline{150};
}  // namespace

SharedMemoryServer::SharedMemoryServer(VmSize page_size)
    : DataManager("shm"), page_size_(page_size) {}

SendRight SharedMemoryServer::GetRegion(const std::string& name, VmSize size) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = regions_.find(name);
  if (it != regions_.end()) {
    return it->second.object;
  }
  Region region;
  region.cookie = next_cookie_++;
  region.size = RoundPage(size, page_size_);
  region.object = CreateMemoryObject(region.cookie, "shm:" + name);
  SendRight object = region.object;
  regions_.emplace(name, std::move(region));
  return object;
}

SharedMemoryServer::Region* SharedMemoryServer::RegionByCookie(uint64_t cookie) {
  for (auto& [name, region] : regions_) {
    if (region.cookie == cookie) {
      return &region;
    }
  }
  return nullptr;
}

SharedMemoryServer::PageState& SharedMemoryServer::PageAt(Region* region, VmOffset offset) {
  auto it = region->pages.find(offset);
  if (it == region->pages.end()) {
    PageState fresh;
    fresh.data.assign(page_size_, std::byte{0});
    it = region->pages.emplace(offset, std::move(fresh)).first;
  }
  return it->second;
}

void SharedMemoryServer::OnInit(uint64_t object_port_id, uint64_t cookie, PagerInitArgs args) {
  std::lock_guard<std::mutex> g(mu_);
  Region* region = RegionByCookie(cookie);
  if (region == nullptr) {
    return;
  }
  // Record this use of the region: each kernel mapping it has its own
  // request port (§4.2 "distinct request and name ports for each kernel").
  region->uses.emplace(args.pager_request_port.id(), args.pager_request_port);
}

void SharedMemoryServer::InvalidateReaders(PageState& page, VmOffset offset, uint64_t except_id) {
  for (const SendRight& reader : page.reader_ports) {
    if (reader.id() == except_id) {
      continue;
    }
    FlushRequest(reader, offset, page_size_);
    ++invalidations_;
  }
  page.reader_ports.clear();
  page.reader_ids.clear();
}

void SharedMemoryServer::GrantRead(PageState& page, const SendRight& req, VmOffset offset) {
  // Count before providing: ProvideData wakes the faulting thread, which
  // may observe the statistics immediately.
  ++read_grants_;
  if (page.reader_ids.insert(req.id()).second) {
    page.reader_ports.push_back(req);
  }
  // Multiple readers are fine; the data goes out write-locked so a write
  // attempt must come back through pager_data_unlock (§4.2).
  ProvideData(req, offset, page.data, kVmProtWrite);
}

void SharedMemoryServer::GrantWrite(Region* region, PageState& page, const SendRight& req,
                                    VmOffset offset, bool requester_has_copy) {
  InvalidateReaders(page, offset, req.id());
  page.writer = req.id();
  page.writer_port = req;
  ++write_grants_;
  if (requester_has_copy) {
    // The kernel already holds the (read-locked) data: just drop the lock.
    LockData(req, offset, page_size_, kVmProtNone);
  } else {
    ProvideData(req, offset, page.data, kVmProtNone);
  }
}

void SharedMemoryServer::ServePending(Region* region, VmOffset offset, PageState& page) {
  while (!page.pending.empty() && page.writer == 0) {
    PendingRequest pr = std::move(page.pending.front());
    page.pending.erase(page.pending.begin());
    if ((pr.access & kVmProtWrite) != 0) {
      GrantWrite(region, page, pr.request_port, offset, /*requester_has_copy=*/false);
      if (!page.pending.empty()) {
        // More waiters behind the new writer: recall immediately.
        FlushRequest(page.writer_port, offset, page_size_);
        ++recalls_;
        for (PendingRequest& rest : page.pending) {
          rest.deadline = std::chrono::steady_clock::now() + kRecallDeadline;
        }
      }
      return;
    }
    GrantRead(page, pr.request_port, offset);
  }
}

void SharedMemoryServer::OnDataRequest(uint64_t object_port_id, uint64_t cookie,
                                       PagerDataRequestArgs args) {
  std::lock_guard<std::mutex> g(mu_);
  Region* region = RegionByCookie(cookie);
  if (region == nullptr) {
    DataUnavailable(args.pager_request_port, args.offset, args.length);
    return;
  }
  for (VmOffset off = TruncPage(args.offset, page_size_); off < args.offset + args.length;
       off += page_size_) {
    PageState& page = PageAt(region, off);
    if (page.writer != 0 && page.writer != args.pager_request_port.id()) {
      // Another kernel holds write access: recall the page. The dirty data
      // arrives as pager_data_write (FIFO on the object port guarantees it
      // precedes any later request from that kernel); a clean copy is
      // flushed silently, which the deadline in OnIdle resolves.
      FlushRequest(page.writer_port, off, page_size_);
      ++recalls_;
      page.pending.push_back(PendingRequest{args.pager_request_port, args.desired_access,
                                            std::chrono::steady_clock::now() + kRecallDeadline});
      continue;
    }
    if (page.writer == args.pager_request_port.id()) {
      // The writer's kernel lost its copy (evicted). Any dirty data already
      // arrived (FIFO); our stored copy is current again.
      page.writer = 0;
      page.writer_port = SendRight();
    }
    if ((args.desired_access & kVmProtWrite) != 0) {
      GrantWrite(region, page, args.pager_request_port, off, /*requester_has_copy=*/false);
    } else {
      GrantRead(page, args.pager_request_port, off);
    }
  }
}

void SharedMemoryServer::OnDataUnlock(uint64_t object_port_id, uint64_t cookie,
                                      PagerDataUnlockArgs args) {
  std::lock_guard<std::mutex> g(mu_);
  Region* region = RegionByCookie(cookie);
  if (region == nullptr) {
    return;
  }
  for (VmOffset off = TruncPage(args.offset, page_size_); off < args.offset + args.length;
       off += page_size_) {
    PageState& page = PageAt(region, off);
    uint64_t requester = args.pager_request_port.id();
    if (page.writer == requester) {
      LockData(args.pager_request_port, off, page_size_, kVmProtNone);  // Duplicate.
      continue;
    }
    if (page.writer != 0) {
      FlushRequest(page.writer_port, off, page_size_);
      ++recalls_;
      page.pending.push_back(PendingRequest{args.pager_request_port,
                                            args.desired_access | kVmProtWrite,
                                            std::chrono::steady_clock::now() + kRecallDeadline});
      continue;
    }
    // Reader upgrading to writer: invalidate the *other* readers, then
    // unlock the requester's copy in place (§4.2's final frame).
    InvalidateReaders(page, off, requester);
    page.writer = requester;
    page.writer_port = args.pager_request_port;
    ++write_grants_;
    LockData(args.pager_request_port, off, page_size_, kVmProtNone);
  }
}

void SharedMemoryServer::OnDataWrite(uint64_t object_port_id, uint64_t cookie,
                                     PagerDataWriteArgs args) {
  std::lock_guard<std::mutex> g(mu_);
  Region* region = RegionByCookie(cookie);
  if (region == nullptr) {
    return;
  }
  const size_t pages = args.data.size() / page_size_;
  for (size_t p = 0; p < pages; ++p) {
    VmOffset off = args.offset + p * page_size_;
    PageState& page = PageAt(region, off);
    page.data.assign(args.data.begin() + p * page_size_,
                     args.data.begin() + (p + 1) * page_size_);
    // The writer's copy is gone (recalled or evicted): data settles here.
    page.writer = 0;
    page.writer_port = SendRight();
    ServePending(region, off, page);
  }
}

void SharedMemoryServer::OnIdle() {
  std::lock_guard<std::mutex> g(mu_);
  auto now = std::chrono::steady_clock::now();
  for (auto& [name, region] : regions_) {
    for (auto& [off, page] : region.pages) {
      if (page.writer != 0 && !page.pending.empty() && page.pending.front().deadline <= now) {
        // The recalled writer never sent data: its copy was clean, so the
        // stored data is still authoritative.
        page.writer = 0;
        page.writer_port = SendRight();
      }
      if (page.writer == 0 && !page.pending.empty()) {
        ServePending(&region, off, page);
      }
    }
  }
}

void SharedMemoryServer::OnPortDeath(uint64_t port_id) {
  std::lock_guard<std::mutex> g(mu_);
  for (auto& [name, region] : regions_) {
    region.uses.erase(port_id);
    for (auto& [off, page] : region.pages) {
      if (page.writer == port_id) {
        // The writing kernel released the region (or died) holding write
        // access; whatever it wrote back last is what survives.
        page.writer = 0;
        page.writer_port = SendRight();
      }
      if (page.reader_ids.erase(port_id) != 0) {
        page.reader_ports.erase(
            std::remove_if(page.reader_ports.begin(), page.reader_ports.end(),
                           [&](const SendRight& r) { return r.id() == port_id; }),
            page.reader_ports.end());
      }
      ServePending(&region, off, page);
    }
  }
}

}  // namespace mach
