// Copy-on-reference task migration (§8.2, after Zayas): the migration
// manager creates a memory object representing each region of the original
// task's address space and maps it into a new task on the destination host.
// The destination kernel treats page faults on the migrated task by making
// paging requests on that memory object, which this manager satisfies by
// reading the source task's memory.
//
// Strategies (§8.2): pure demand (copy-on-reference), pre-paging the first
// pages of each region for tasks with predictable access patterns, and an
// eager baseline that copies the whole address space before resuming.

#ifndef SRC_MANAGERS_MIGRATE_MIGRATION_MANAGER_H_
#define SRC_MANAGERS_MIGRATE_MIGRATION_MANAGER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/kernel/task.h"
#include "src/pager/data_manager.h"

namespace mach {

class MigrationManager : public DataManager {
 public:
  enum class Strategy {
    kCopyOnReference,  // Pure demand paging against the source.
    kPrePage,          // Demand + push the first N pages of each region.
    kEager,            // Copy everything before the new task runs.
  };

  struct Options {
    Strategy strategy = Strategy::kCopyOnReference;
    size_t prepage_pages = 4;  // For kPrePage.
    // Applied to each memory object before the destination kernel maps it;
    // use a NetLink proxy exporter to put the paging traffic on the wire.
    std::function<SendRight(SendRight)> export_port;
  };

  MigrationManager() : DataManager("migrator") {}

  // Migrates `source`'s address space into a fresh task on `destination`.
  // The source task is suspended and must outlive the migrated task while
  // copy-on-reference dependencies remain (the residual-dependency caveat
  // of Zayas' design). If the transport to the destination dies while the
  // transfer is in flight (an exported port observed dead, a pre-page push
  // failing with port death, or the destination kernel's request port dying
  // under the manager — e.g. a NetLink declaring the peer dead), the
  // migration is unwound — regions created by this call are released, the
  // source is resumed — and kMigrationAborted is returned; the caller may
  // retry once the link heals.
  Result<std::shared_ptr<Task>> Migrate(const std::shared_ptr<Task>& source,
                                        Kernel* destination, const Options& options);

  // Statistics: how much data actually moved.
  uint64_t pages_transferred() const { return pages_transferred_.load(std::memory_order_relaxed); }
  uint64_t demand_requests() const { return demand_requests_.load(std::memory_order_relaxed); }
  uint64_t migrations_aborted() const {
    return migrations_aborted_.load(std::memory_order_relaxed);
  }

 protected:
  void OnInit(uint64_t object_port_id, uint64_t cookie, PagerInitArgs args) override;
  void OnDataRequest(uint64_t object_port_id, uint64_t cookie, PagerDataRequestArgs args) override;
  void OnDataWrite(uint64_t object_port_id, uint64_t cookie, PagerDataWriteArgs args) override;
  // A request port the destination kernel gave us died: the kernel (or the
  // link carrying it) is gone. Mark the affected regions aborted so in-
  // flight Migrate calls unwind and stray data requests answer unavailable.
  void OnPortDeath(uint64_t port_id) override;

 private:
  struct MigratedRegion {
    std::shared_ptr<Task> source;
    VmOffset source_base = 0;
    VmSize size = 0;
    uint64_t object_port_id = 0;  // For release on abort.
    SendRight request_port;  // Destination kernel's request port (from init).
    bool aborted = false;    // Transport to the destination died.
    // Pages written back by the destination kernel (its evictions): served
    // from here in preference to the (now stale) source.
    std::unordered_map<VmOffset, std::vector<std::byte>> writebacks;
  };

  bool RegionAborted(uint64_t cookie);
  // Unwinds a failed Migrate call: releases the memory objects and region
  // entries it created and resumes the source.
  KernReturn AbortMigration(const std::shared_ptr<Task>& source,
                            const std::vector<uint64_t>& cookies, KernReturn status);

  std::mutex mu_;
  std::unordered_map<uint64_t, MigratedRegion> regions_;  // by cookie
  uint64_t next_cookie_ = 1;
  std::atomic<uint64_t> pages_transferred_{0};
  std::atomic<uint64_t> demand_requests_{0};
  std::atomic<uint64_t> migrations_aborted_{0};
};

}  // namespace mach

#endif  // SRC_MANAGERS_MIGRATE_MIGRATION_MANAGER_H_
