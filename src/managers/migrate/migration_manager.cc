#include "src/managers/migrate/migration_manager.h"

#include <cstring>

#include "src/base/log.h"

namespace mach {

Result<std::shared_ptr<Task>> MigrationManager::Migrate(const std::shared_ptr<Task>& source,
                                                        Kernel* destination,
                                                        const Options& options) {
  const VmSize ps = source->page_size();
  // Freeze the source so its image is stable while regions are captured.
  source->Suspend();
  std::vector<RegionInfo> regions = source->VmRegions();
  std::shared_ptr<Task> migrated = destination->CreateTask(nullptr, source->name() + "-migrated");
  std::vector<uint64_t> cookies;  // Regions created by this call, for unwind.

  for (const RegionInfo& region : regions) {
    const VmSize size = region.end - region.start;
    if (options.strategy == Strategy::kEager) {
      // Baseline: copy the whole region before the task may resume.
      Result<VmOffset> addr = migrated->VmAllocate(size, /*anywhere=*/false, region.start);
      if (!addr.ok()) {
        source->Resume();
        return addr.status();
      }
      std::vector<std::byte> buf(ps);
      for (VmOffset off = 0; off < size; off += ps) {
        KernReturn kr = source->VmRead(region.start + off, buf.data(), ps);
        if (!IsOk(kr)) {
          source->Resume();
          return kr;
        }
        kr = migrated->VmWrite(region.start + off, buf.data(), ps);
        if (!IsOk(kr)) {
          source->Resume();
          return kr;
        }
        pages_transferred_.fetch_add(1, std::memory_order_relaxed);
      }
      continue;
    }

    // Copy-on-reference: a memory object standing for this region.
    uint64_t cookie;
    SendRight object;
    {
      std::lock_guard<std::mutex> g(mu_);
      cookie = next_cookie_++;
      object = CreateMemoryObject(cookie, "migrate:" + source->name());
      MigratedRegion mr;
      mr.source = source;
      mr.source_base = region.start;
      mr.size = size;
      mr.object_port_id = object.id();
      regions_.emplace(cookie, std::move(mr));
    }
    cookies.push_back(cookie);
    SendRight exported = options.export_port ? options.export_port(object) : object;
    if (!exported.valid() || exported.IsDead()) {
      return AbortMigration(source, cookies, KernReturn::kMigrationAborted);
    }
    Result<VmOffset> addr =
        migrated->VmAllocateWithPager(size, exported, 0, /*anywhere=*/false, region.start);
    if (!addr.ok()) {
      return AbortMigration(source, cookies,
                            exported.IsDead() ? KernReturn::kMigrationAborted : addr.status());
    }
    if (options.strategy == Strategy::kPrePage && options.prepage_pages > 0) {
      // Push the first pages so predictable tasks start without faulting
      // (§8.2 "pre-paging can proceed while the newly-migrated task begins
      // to run").
      SendRight request;
      for (int spin = 0; spin < 500 && !request.valid(); ++spin) {
        {
          std::lock_guard<std::mutex> g(mu_);
          request = regions_[cookie].request_port;
        }
        if (exported.IsDead() || RegionAborted(cookie)) {
          break;  // The link ate the init: the request port never comes.
        }
        if (!request.valid()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
      }
      if (exported.IsDead() || RegionAborted(cookie) ||
          (request.valid() && request.IsDead())) {
        return AbortMigration(source, cookies, KernReturn::kMigrationAborted);
      }
      if (request.valid()) {
        std::vector<std::byte> buf(ps);
        for (size_t p = 0; p < options.prepage_pages && p * ps < size; ++p) {
          if (IsOk(source->VmRead(region.start + p * ps, buf.data(), ps))) {
            KernReturn kr = ProvideData(request, p * ps, buf, kVmProtNone);
            if (kr == KernReturn::kPortDead) {
              return AbortMigration(source, cookies, KernReturn::kMigrationAborted);
            }
            pages_transferred_.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    }
  }
  // Apply region protections last (so eager writes above were possible).
  for (const RegionInfo& region : regions) {
    migrated->VmProtect(region.start, region.end - region.start, false, region.protection);
  }
  return migrated;
}

bool MigrationManager::RegionAborted(uint64_t cookie) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = regions_.find(cookie);
  return it != regions_.end() && it->second.aborted;
}

KernReturn MigrationManager::AbortMigration(const std::shared_ptr<Task>& source,
                                            const std::vector<uint64_t>& cookies,
                                            KernReturn status) {
  // Unwind: drop the regions this call created and kill their memory
  // objects, so the destination kernel observes pager death (resolving any
  // faults it parked on them per its timeout policy) and stray data
  // requests cannot resurrect the transfer. The dropped `migrated` task is
  // torn down by the caller's Result going out of scope.
  std::vector<uint64_t> object_ports;
  {
    std::lock_guard<std::mutex> g(mu_);
    for (uint64_t cookie : cookies) {
      auto it = regions_.find(cookie);
      if (it != regions_.end()) {
        object_ports.push_back(it->second.object_port_id);
        regions_.erase(it);
      }
    }
  }
  for (uint64_t port_id : object_ports) {
    ReleaseMemoryObject(port_id);
  }
  source->Resume();
  if (status == KernReturn::kMigrationAborted) {
    migrations_aborted_.fetch_add(1, std::memory_order_relaxed);
  }
  return status;
}

void MigrationManager::OnPortDeath(uint64_t port_id) {
  std::lock_guard<std::mutex> g(mu_);
  for (auto& [cookie, region] : regions_) {
    if (region.request_port.valid() && region.request_port.id() == port_id) {
      region.aborted = true;
      region.request_port = SendRight();  // Drop the dead right.
      region.writebacks.clear();
    }
  }
}

void MigrationManager::OnInit(uint64_t object_port_id, uint64_t cookie, PagerInitArgs args) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = regions_.find(cookie);
  if (it != regions_.end()) {
    it->second.request_port = args.pager_request_port;
  }
}

void MigrationManager::OnDataRequest(uint64_t object_port_id, uint64_t cookie,
                                     PagerDataRequestArgs args) {
  std::shared_ptr<Task> source;
  VmOffset base = 0;
  {
    std::lock_guard<std::mutex> g(mu_);
    auto it = regions_.find(cookie);
    if (it == regions_.end() || it->second.aborted) {
      DataUnavailable(args.pager_request_port, args.offset, args.length);
      return;
    }
    // Destination-kernel writebacks take precedence over the stale source.
    auto wb = it->second.writebacks.find(args.offset);
    if (wb != it->second.writebacks.end()) {
      ProvideData(args.pager_request_port, args.offset, wb->second, kVmProtNone);
      pages_transferred_.fetch_add(1, std::memory_order_relaxed);
      demand_requests_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    source = it->second.source;
    base = it->second.source_base;
  }
  const VmSize ps = source->page_size();
  std::vector<std::byte> buf(args.length);
  for (VmOffset off = 0; off < args.length; off += ps) {
    // vm_read on the (suspended) source task: this is the paging request
    // path of §8.2 — the region's pages move only when referenced.
    if (!IsOk(source->VmRead(base + args.offset + off, buf.data() + off, ps))) {
      DataUnavailable(args.pager_request_port, args.offset + off, ps);
      return;
    }
  }
  demand_requests_.fetch_add(1, std::memory_order_relaxed);
  pages_transferred_.fetch_add(args.length / ps, std::memory_order_relaxed);
  ProvideData(args.pager_request_port, args.offset, std::move(buf), kVmProtNone);
}

void MigrationManager::OnDataWrite(uint64_t object_port_id, uint64_t cookie,
                                   PagerDataWriteArgs args) {
  // The destination kernel paged out dirty migrated pages: keep them so a
  // later fault sees the migrated task's own writes, not the stale source.
  std::lock_guard<std::mutex> g(mu_);
  auto it = regions_.find(cookie);
  if (it == regions_.end()) {
    return;
  }
  const VmSize ps = it->second.source->page_size();
  for (VmOffset delta = 0; delta + ps <= args.data.size(); delta += ps) {
    std::vector<std::byte> page(args.data.begin() + delta, args.data.begin() + delta + ps);
    it->second.writebacks[args.offset + delta] = std::move(page);
  }
}

}  // namespace mach
