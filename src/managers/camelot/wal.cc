#include "src/managers/camelot/wal.h"

#include <cstring>

namespace mach {

namespace {

void PutU32(std::vector<std::byte>* out, uint32_t v) {
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  out->insert(out->end(), p, p + sizeof(v));
}

void PutU64(std::vector<std::byte>* out, uint64_t v) {
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  out->insert(out->end(), p, p + sizeof(v));
}

bool GetU32(const std::vector<std::byte>& in, size_t* pos, uint32_t* v) {
  if (*pos + sizeof(*v) > in.size()) {
    return false;
  }
  std::memcpy(v, in.data() + *pos, sizeof(*v));
  *pos += sizeof(*v);
  return true;
}

bool GetU64(const std::vector<std::byte>& in, size_t* pos, uint64_t* v) {
  if (*pos + sizeof(*v) > in.size()) {
    return false;
  }
  std::memcpy(v, in.data() + *pos, sizeof(*v));
  *pos += sizeof(*v);
  return true;
}

}  // namespace

std::vector<std::byte> LogRecord::Serialize() const {
  std::vector<std::byte> body;
  PutU32(&body, static_cast<uint32_t>(type));
  PutU64(&body, lsn);
  PutU64(&body, tid);
  PutU64(&body, segment);
  PutU64(&body, offset);
  PutU32(&body, static_cast<uint32_t>(old_data.size()));
  body.insert(body.end(), old_data.begin(), old_data.end());
  PutU32(&body, static_cast<uint32_t>(new_data.size()));
  body.insert(body.end(), new_data.begin(), new_data.end());

  std::vector<std::byte> out;
  PutU32(&out, static_cast<uint32_t>(body.size()));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

bool LogRecord::Deserialize(const std::vector<std::byte>& in, size_t* pos, LogRecord* out) {
  uint32_t len = 0;
  size_t p = *pos;
  if (!GetU32(in, &p, &len) || len == 0 || p + len > in.size()) {
    return false;  // End of log (zeroed disk) or truncated record.
  }
  uint32_t type = 0, old_len = 0, new_len = 0;
  if (!GetU32(in, &p, &type) || !GetU64(in, &p, &out->lsn) || !GetU64(in, &p, &out->tid) ||
      !GetU64(in, &p, &out->segment) || !GetU64(in, &p, &out->offset) ||
      !GetU32(in, &p, &old_len) || p + old_len > in.size()) {
    return false;
  }
  out->type = static_cast<Type>(type);
  out->old_data.assign(in.begin() + p, in.begin() + p + old_len);
  p += old_len;
  if (!GetU32(in, &p, &new_len) || p + new_len > in.size()) {
    return false;
  }
  out->new_data.assign(in.begin() + p, in.begin() + p + new_len);
  p += new_len;
  *pos = p;
  return true;
}

WriteAheadLog::WriteAheadLog(SimDisk* disk) : disk_(disk) {
  // Find the end of any existing durable log (after a crash + reopen).
  std::vector<LogRecord> existing = ReadAll();
  for (const LogRecord& rec : existing) {
    next_lsn_ = rec.lsn + 1;
    forced_lsn_ = rec.lsn;
    durable_bytes_ += rec.Serialize().size();
  }
}

uint64_t WriteAheadLog::Append(LogRecord record) {
  std::lock_guard<std::mutex> g(mu_);
  record.lsn = next_lsn_++;
  std::vector<std::byte> bytes = record.Serialize();
  tail_.insert(tail_.end(), bytes.begin(), bytes.end());
  return record.lsn;
}

uint64_t WriteAheadLog::Force() {
  std::lock_guard<std::mutex> g(mu_);
  if (!tail_.empty()) {
    const VmSize bs = disk_->block_size();
    size_t written = 0;
    while (written < tail_.size()) {
      uint32_t block = static_cast<uint32_t>((durable_bytes_ + written) / bs);
      VmOffset in_block = (durable_bytes_ + written) % bs;
      VmSize n = std::min<VmSize>(bs - in_block, tail_.size() - written);
      if (!IsOk(disk_->WriteAt(block, in_block, tail_.data() + written, n))) {
        // Durability not achieved: keep the tail and the old cursor so a
        // retry rewrites the same region (idempotent), and report the old
        // forced LSN — callers must not treat the failed records as stable.
        io_errors_.fetch_add(1, std::memory_order_relaxed);
        return forced_lsn_;
      }
      written += n;
    }
    durable_bytes_ += tail_.size();
    tail_.clear();
    ++force_count_;
  }
  forced_lsn_ = next_lsn_ - 1;
  return forced_lsn_;
}

uint64_t WriteAheadLog::last_lsn() const {
  std::lock_guard<std::mutex> g(mu_);
  return next_lsn_ - 1;
}

uint64_t WriteAheadLog::forced_lsn() const {
  std::lock_guard<std::mutex> g(mu_);
  return forced_lsn_;
}

uint64_t WriteAheadLog::force_count() const {
  std::lock_guard<std::mutex> g(mu_);
  return force_count_;
}

void WriteAheadLog::SimulateCrash() {
  std::lock_guard<std::mutex> g(mu_);
  tail_.clear();  // Volatile records are gone.
}

std::vector<LogRecord> WriteAheadLog::ReadAll() const {
  // Incremental scan: read blocks until the end-of-log marker (a zero
  // length word on the zero-filled disk), so recovery costs O(log length),
  // not O(disk size).
  const VmSize bs = disk_->block_size();
  std::vector<std::byte> buf;
  std::vector<LogRecord> records;
  size_t pos = 0;
  uint32_t next_block = 0;
  for (;;) {
    LogRecord rec;
    if (LogRecord::Deserialize(buf, &pos, &rec)) {
      records.push_back(std::move(rec));
      continue;
    }
    // Either end-of-log or a record truncated at the edge of what we have
    // read so far: if the length word (when visible) is zero, we are done;
    // otherwise read another block.
    if (pos + sizeof(uint32_t) <= buf.size()) {
      uint32_t len = 0;
      std::memcpy(&len, buf.data() + pos, sizeof(len));
      if (len == 0) {
        break;
      }
    }
    if (next_block >= disk_->block_count()) {
      break;
    }
    size_t old = buf.size();
    buf.resize(old + bs);
    if (!IsOk(disk_->ReadAt(next_block, 0, buf.data() + old, bs))) {
      // An unreadable log block ends the scan: everything before it is
      // still recovered.
      io_errors_.fetch_add(1, std::memory_order_relaxed);
      buf.resize(old);
      break;
    }
    ++next_block;
  }
  return records;
}

}  // namespace mach
