#include "src/managers/camelot/recovery_manager.h"

#include <algorithm>
#include <cstring>

#include "src/base/log.h"

namespace mach {

namespace {
// Blocks at the front of the data disk reserved for the segment directory.
constexpr uint32_t kDirBlocks = 8;
constexpr uint32_t kDirMagic = 0xCA3E107Du;

void DirPutU32(std::vector<std::byte>* out, uint32_t v) {
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  out->insert(out->end(), p, p + sizeof(v));
}
void DirPutU64(std::vector<std::byte>* out, uint64_t v) {
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  out->insert(out->end(), p, p + sizeof(v));
}
template <typename T>
bool DirGet(const std::vector<std::byte>& in, size_t* pos, T* v) {
  if (*pos + sizeof(T) > in.size()) {
    return false;
  }
  std::memcpy(v, in.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}
}  // namespace

RecoveryManager::RecoveryManager(SimDisk* data_disk, SimDisk* log_disk, VmSize page_size)
    : DataManager("camelot"), page_size_(page_size), data_disk_(data_disk), log_(log_disk) {
  std::lock_guard<std::mutex> g(mu_);
  LoadDirectory();
}

void RecoveryManager::SaveDirectory() {
  std::vector<std::byte> out;
  DirPutU32(&out, kDirMagic);
  DirPutU32(&out, static_cast<uint32_t>(segments_.size()));
  for (const auto& [name, segment] : segments_) {
    DirPutU32(&out, static_cast<uint32_t>(name.size()));
    const auto* p = reinterpret_cast<const std::byte*>(name.data());
    out.insert(out.end(), p, p + name.size());
    DirPutU64(&out, segment.id);
    DirPutU64(&out, segment.size);
    DirPutU32(&out, static_cast<uint32_t>(segment.blocks.size()));
    for (uint32_t block : segment.blocks) {
      DirPutU32(&out, block);
    }
  }
  const VmSize bs = data_disk_->block_size();
  if (out.size() > kDirBlocks * bs) {
    MACH_LOG(kError) << "camelot: segment directory overflow";
    return;
  }
  out.resize(kDirBlocks * bs);
  for (uint32_t b = 0; b < kDirBlocks; ++b) {
    if (!IsOk(data_disk_->WriteBlock(b, out.data() + static_cast<size_t>(b) * bs))) {
      // The on-disk directory is now stale for this block; the in-memory
      // copy is authoritative and the next SaveDirectory retries.
      io_errors_.fetch_add(1, std::memory_order_relaxed);
      MACH_LOG(kWarn) << "camelot: directory write failed for block " << b;
    }
  }
}

void RecoveryManager::LoadDirectory() {
  const VmSize bs = data_disk_->block_size();
  std::vector<std::byte> in(kDirBlocks * bs);
  for (uint32_t b = 0; b < kDirBlocks; ++b) {
    if (!IsOk(data_disk_->ReadBlock(b, in.data() + static_cast<size_t>(b) * bs))) {
      // An unreadable directory block leaves zeroes in the buffer; the
      // magic/length checks below reject a torn directory.
      io_errors_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  size_t pos = 0;
  uint32_t magic = 0;
  if (!DirGet(in, &pos, &magic) || magic != kDirMagic) {
    // Fresh disk: claim the directory blocks (the allocator hands out
    // ascending block numbers, so these are blocks 0..kDirBlocks-1).
    for (uint32_t b = 0; b < kDirBlocks; ++b) {
      uint32_t got = data_disk_->AllocBlock();
      (void)got;
    }
    SaveDirectory();
    return;
  }
  uint32_t count = 0;
  DirGet(in, &pos, &count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    if (!DirGet(in, &pos, &name_len) || pos + name_len > in.size()) {
      return;
    }
    std::string name(reinterpret_cast<const char*>(in.data() + pos), name_len);
    pos += name_len;
    Segment segment;
    uint32_t nblocks = 0;
    if (!DirGet(in, &pos, &segment.id) || !DirGet(in, &pos, &segment.size) ||
        !DirGet(in, &pos, &nblocks)) {
      return;
    }
    segment.blocks.resize(nblocks, UINT32_MAX);
    for (uint32_t b = 0; b < nblocks; ++b) {
      if (!DirGet(in, &pos, &segment.blocks[b])) {
        return;
      }
    }
    next_segment_id_ = std::max(next_segment_id_, segment.id + 1);
    segment.object = CreateMemoryObject(segment.id, "segment:" + name);
    segments_.emplace(name, std::move(segment));
  }
}

SendRight RecoveryManager::OpenSegment(const std::string& name, VmSize size) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = segments_.find(name);
  if (it != segments_.end()) {
    return it->second.object;
  }
  Segment segment;
  segment.id = next_segment_id_++;
  segment.size = RoundPage(size, page_size_);
  segment.blocks.assign(segment.size / page_size_, UINT32_MAX);
  segment.object = CreateMemoryObject(segment.id, "segment:" + name);
  SendRight object = segment.object;
  segments_.emplace(name, std::move(segment));
  SaveDirectory();
  return object;
}

uint64_t RecoveryManager::SegmentId(const std::string& name) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = segments_.find(name);
  return it == segments_.end() ? 0 : it->second.id;
}

RecoveryManager::Segment* RecoveryManager::SegmentByCookie(uint64_t cookie) {
  for (auto& [name, segment] : segments_) {
    if (segment.id == cookie) {
      return &segment;
    }
  }
  return nullptr;
}

uint32_t RecoveryManager::EnsureBlock(Segment* segment, size_t page_index) {
  if (page_index >= segment->blocks.size()) {
    segment->blocks.resize(page_index + 1, UINT32_MAX);
  }
  if (segment->blocks[page_index] == UINT32_MAX) {
    uint32_t block = data_disk_->AllocBlock();
    if (block != UINT32_MAX) {
      std::vector<std::byte> zero(page_size_, std::byte{0});
      if (!IsOk(data_disk_->WriteBlock(block, zero.data()))) {
        io_errors_.fetch_add(1, std::memory_order_relaxed);
        data_disk_->FreeBlock(block);
        return UINT32_MAX;
      }
      segment->blocks[page_index] = block;
      SaveDirectory();
    }
  }
  return segment->blocks[page_index];
}

// --- pager protocol -----------------------------------------------------------

void RecoveryManager::OnDataRequest(uint64_t object_port_id, uint64_t cookie,
                                    PagerDataRequestArgs args) {
  std::lock_guard<std::mutex> g(mu_);
  Segment* segment = SegmentByCookie(cookie);
  if (segment == nullptr) {
    DataUnavailable(args.pager_request_port, args.offset, args.length);
    return;
  }
  // Multi-page (fault-ahead) requests answered as coalesced runs; deferred
  // stash hits join the same run when contiguous.
  PagerRunBuilder run(args.pager_request_port);
  for (VmOffset off = args.offset; off < args.offset + args.length; off += page_size_) {
    auto def_it = segment->deferred.find(off);
    if (def_it != segment->deferred.end()) {
      // The freshest copy is the stashed deferred pageout, not the disk.
      run.AddData(off, std::vector<std::byte>(def_it->second), kVmProtNone);
      continue;
    }
    size_t page = static_cast<size_t>(off / page_size_);
    if (page >= segment->blocks.size() || segment->blocks[page] == UINT32_MAX) {
      run.AddUnavailable(off, page_size_);
      continue;
    }
    std::vector<std::byte> data(page_size_);
    if (!IsOk(data_disk_->ReadBlock(segment->blocks[page], data.data()))) {
      // §6.2.1: unreadable backing page → pager_data_unavailable.
      io_errors_.fetch_add(1, std::memory_order_relaxed);
      run.AddUnavailable(off, page_size_);
      continue;
    }
    run.AddData(off, std::move(data), kVmProtNone);
  }
}

void RecoveryManager::OnDataWrite(uint64_t object_port_id, uint64_t cookie,
                                  PagerDataWriteArgs args) {
  std::lock_guard<std::mutex> g(mu_);
  Segment* segment = SegmentByCookie(cookie);
  if (segment == nullptr) {
    return;
  }
  // Older deferred pageouts go first so retries stay in eviction order.
  FlushDeferred(segment);
  const size_t pages = args.data.size() / page_size_;
  for (size_t p = 0; p < pages; ++p) {
    VmOffset off = args.offset + p * page_size_;
    const std::byte* src = args.data.data() + p * page_size_;
    if (TryWritePage(segment, off, src)) {
      segment->deferred.erase(off);
      pageouts_.fetch_add(1, std::memory_order_relaxed);
    } else {
      // The kernel has already evicted this page, so this stash is the
      // only remaining copy: keep it and retry on a later pageout/commit.
      segment->deferred[off].assign(src, src + page_size_);
      deferred_.fetch_add(1, std::memory_order_relaxed);
      MACH_LOG(kWarn) << "camelot: pageout deferred at offset " << off;
    }
  }
}

bool RecoveryManager::TryWritePage(Segment* segment, VmOffset off, const std::byte* src) {
  // THE WAL RULE (§8.3): before a recoverable page reaches permanent
  // storage, every log record describing changes to it must be durable.
  auto lsn_it = segment->page_lsn.find(TruncPage(off, page_size_));
  if (lsn_it != segment->page_lsn.end() && lsn_it->second > log_.forced_lsn()) {
    if (log_.Force() < lsn_it->second) {
      // The force failed (log-disk fault) and the page's records are still
      // volatile: writing the page now would violate the WAL rule — a
      // crash could lose a committed update.
      io_errors_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    wal_enforced_.fetch_add(1, std::memory_order_relaxed);
  }
  uint32_t block = EnsureBlock(segment, static_cast<size_t>(off / page_size_));
  if (block == UINT32_MAX) {
    MACH_LOG(kError) << "camelot: data disk full";
    return false;
  }
  if (!IsOk(data_disk_->WriteBlock(block, src))) {
    io_errors_.fetch_add(1, std::memory_order_relaxed);
    MACH_LOG(kWarn) << "camelot: segment write failed for block " << block;
    return false;
  }
  return true;
}

void RecoveryManager::FlushDeferred(Segment* segment) {
  for (auto it = segment->deferred.begin(); it != segment->deferred.end();) {
    if (TryWritePage(segment, it->first, it->second.data())) {
      pageouts_.fetch_add(1, std::memory_order_relaxed);
      it = segment->deferred.erase(it);
    } else {
      ++it;
    }
  }
}

// --- transactions ---------------------------------------------------------------

uint64_t RecoveryManager::BeginTransaction() {
  std::lock_guard<std::mutex> g(mu_);
  uint64_t tid = next_tid_++;
  active_tids_.insert(tid);
  LogRecord rec;
  rec.type = LogRecord::Type::kBegin;
  rec.tid = tid;
  log_.Append(rec);
  return tid;
}

void RecoveryManager::LogUpdate(uint64_t tid, uint64_t segment_id, VmOffset offset,
                                std::vector<std::byte> old_data,
                                std::vector<std::byte> new_data) {
  std::lock_guard<std::mutex> g(mu_);
  const VmSize len = std::max<VmSize>(new_data.size(), 1);
  LogRecord rec;
  rec.type = LogRecord::Type::kUpdate;
  rec.tid = tid;
  rec.segment = segment_id;
  rec.offset = offset;
  rec.old_data = std::move(old_data);
  rec.new_data = std::move(new_data);
  uint64_t lsn = log_.Append(std::move(rec));
  // Track the newest LSN touching each affected page (for the WAL check).
  for (auto& [name, segment] : segments_) {
    if (segment.id != segment_id) {
      continue;
    }
    VmOffset first = TruncPage(offset, page_size_);
    VmOffset last = TruncPage(offset + len - 1, page_size_);
    for (VmOffset page = first; page <= last; page += page_size_) {
      segment.page_lsn[page] = lsn;
    }
    break;
  }
}

void RecoveryManager::CommitTransaction(uint64_t tid) {
  std::lock_guard<std::mutex> g(mu_);
  LogRecord rec;
  rec.type = LogRecord::Type::kCommit;
  rec.tid = tid;
  log_.Append(rec);
  // Commit forces the log: the transaction is durable from here on.
  log_.Force();
  active_tids_.erase(tid);
  // A successful force unblocks any WAL-deferred pageouts (FlushDeferred
  // re-checks the rule itself, so this is safe even if the force failed).
  for (auto& [name, segment] : segments_) {
    FlushDeferred(&segment);
  }
}

void RecoveryManager::AbortTransaction(uint64_t tid) {
  std::lock_guard<std::mutex> g(mu_);
  LogRecord rec;
  rec.type = LogRecord::Type::kAbort;
  rec.tid = tid;
  log_.Append(rec);
  active_tids_.erase(tid);
}

void RecoveryManager::LogCompensation(uint64_t tid, uint64_t segment_id, VmOffset offset,
                                      std::vector<std::byte> restored) {
  std::lock_guard<std::mutex> g(mu_);
  LogRecord rec;
  rec.type = LogRecord::Type::kCompensation;
  rec.tid = tid;
  rec.segment = segment_id;
  rec.offset = offset;
  rec.new_data = std::move(restored);
  uint64_t lsn = log_.Append(std::move(rec));
  for (auto& [name, segment] : segments_) {
    if (segment.id == segment_id) {
      segment.page_lsn[TruncPage(offset, page_size_)] = lsn;
      break;
    }
  }
}

void RecoveryManager::SimulateCrash() {
  std::lock_guard<std::mutex> g(mu_);
  log_.SimulateCrash();
  active_tids_.clear();
  // The deferred-pageout stash is volatile manager memory: a crash loses it
  // (recovery reconstructs committed state from the durable log).
  for (auto& [name, segment] : segments_) {
    segment.deferred.clear();
  }
}

void RecoveryManager::ApplyImage(uint64_t segment_id, VmOffset offset,
                                 const std::vector<std::byte>& image) {
  Segment* segment = nullptr;
  for (auto& [name, s] : segments_) {
    if (s.id == segment_id) {
      segment = &s;
      break;
    }
  }
  if (segment == nullptr || image.empty()) {
    return;
  }
  // The image may span page (block) boundaries.
  VmOffset cursor = offset;
  size_t done = 0;
  while (done < image.size()) {
    size_t page = static_cast<size_t>(cursor / page_size_);
    VmOffset in_page = cursor % page_size_;
    VmSize n = std::min<VmSize>(page_size_ - in_page, image.size() - done);
    uint32_t block = EnsureBlock(segment, page);
    if (block == UINT32_MAX) {
      return;
    }
    if (!IsOk(data_disk_->WriteAt(block, in_page, image.data() + done, n))) {
      io_errors_.fetch_add(1, std::memory_order_relaxed);
    }
    cursor += n;
    done += n;
  }
}

void RecoveryManager::Recover() {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<LogRecord> records = log_.ReadAll();
  // Analysis: committed transactions win; fully aborted ones are complete
  // (their compensations are in the log); anything else is a loser.
  std::set<uint64_t> losers;
  for (const LogRecord& rec : records) {
    switch (rec.type) {
      case LogRecord::Type::kBegin:
        losers.insert(rec.tid);
        break;
      case LogRecord::Type::kCommit:
      case LogRecord::Type::kAbort:
        losers.erase(rec.tid);
        break;
      case LogRecord::Type::kUpdate:
      case LogRecord::Type::kCompensation:
        break;
    }
  }
  // Redo pass, forward: repeat history — every update and compensation, in
  // log order, regardless of outcome (ARIES-style). This reconstructs the
  // exact pre-crash memory state on disk.
  for (const LogRecord& rec : records) {
    if (rec.type == LogRecord::Type::kUpdate || rec.type == LogRecord::Type::kCompensation) {
      ApplyImage(rec.segment, rec.offset, rec.new_data);
    }
  }
  // Undo pass, backward: roll back the (true) losers' updates.
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    if (it->type == LogRecord::Type::kUpdate && losers.count(it->tid) != 0) {
      ApplyImage(it->segment, it->offset, it->old_data);
    }
  }
  active_tids_.clear();
}

uint64_t RecoveryManager::log_force_count() const {
  return log_.force_count();
}

// --- client library ---------------------------------------------------------------

Result<RecoverableSegment> RecoverableSegment::Map(RecoveryManager* rm, Task* task,
                                                   const std::string& name, VmSize size) {
  SendRight object = rm->OpenSegment(name, size);
  Result<VmOffset> addr = task->VmAllocateWithPager(size, object, 0);
  if (!addr.ok()) {
    return addr.status();
  }
  return RecoverableSegment(rm->SegmentId(name), addr.value(), size, task);
}

KernReturn Transaction::Write(const RecoverableSegment& segment, VmOffset offset,
                              const void* data, VmSize len) {
  if (done_) {
    return KernReturn::kInvalidArgument;
  }
  // Capture the undo image, log undo+redo, then modify memory — in that
  // order, so the log always describes the page before the page changes.
  std::vector<std::byte> old_data(len);
  KernReturn kr = segment.task()->Read(segment.base() + offset, old_data.data(), len);
  if (!IsOk(kr)) {
    return kr;
  }
  std::vector<std::byte> new_data(len);
  std::memcpy(new_data.data(), data, len);
  rm_->LogUpdate(tid_, segment.id(), offset, old_data, new_data);
  undo_log_.push_back(Undo{segment, offset, std::move(old_data)});
  return segment.task()->Write(segment.base() + offset, data, len);
}

KernReturn Transaction::Commit() {
  if (done_) {
    return KernReturn::kInvalidArgument;
  }
  done_ = true;
  rm_->CommitTransaction(tid_);
  return KernReturn::kSuccess;
}

KernReturn Transaction::Abort() {
  if (done_) {
    return KernReturn::kInvalidArgument;
  }
  done_ = true;
  // Compensate in reverse order: log each undo action (redo-only
  // compensation), restore the old value through the mapping, and finally
  // log the abort. A crash anywhere in here recovers correctly: repeating
  // history replays whatever compensations made it to the log, and the
  // undo pass finishes the rest.
  for (auto it = undo_log_.rbegin(); it != undo_log_.rend(); ++it) {
    rm_->LogCompensation(tid_, it->segment.id(), it->offset, it->old_data);
    it->segment.task()->Write(it->segment.base() + it->offset, it->old_data.data(),
                              it->old_data.size());
  }
  rm_->AbortTransaction(tid_);
  return KernReturn::kSuccess;
}

}  // namespace mach
