// Write-ahead log for the Camelot-style recovery manager (§8.3): an
// append-only record stream on a SimDisk. Records accumulate in a volatile
// tail; Force() makes the prefix durable. SimulateCrash() drops the
// unforced tail — exactly what a power failure does.

#ifndef SRC_MANAGERS_CAMELOT_WAL_H_
#define SRC_MANAGERS_CAMELOT_WAL_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "src/base/vm_types.h"
#include "src/hw/sim_disk.h"

namespace mach {

struct LogRecord {
  enum class Type : uint32_t {
    kBegin = 1,
    kUpdate = 2,
    kCommit = 3,
    kAbort = 4,
    // A compensation record written during abort: redo-only (its new_data
    // is the restored old value). Logging undo actions lets recovery
    // "repeat history" and never re-undo an already-undone update.
    kCompensation = 5,
  };

  Type type = Type::kBegin;
  uint64_t lsn = 0;  // Assigned by Append.
  uint64_t tid = 0;
  uint64_t segment = 0;
  VmOffset offset = 0;
  std::vector<std::byte> old_data;  // Undo image (kUpdate).
  std::vector<std::byte> new_data;  // Redo image (kUpdate).

  std::vector<std::byte> Serialize() const;
  // Parses one record from `in` at `pos`, advancing it. Returns false at
  // end of log (zero length marker) or on corruption.
  static bool Deserialize(const std::vector<std::byte>& in, size_t* pos, LogRecord* out);
};

class WriteAheadLog {
 public:
  explicit WriteAheadLog(SimDisk* disk);

  // Appends to the volatile tail; returns the record's LSN.
  uint64_t Append(LogRecord record);

  // Makes everything appended so far durable. Returns the forced LSN. If
  // the disk fails mid-force, the unwritten tail stays volatile, the
  // durable cursor does not advance (a retry rewrites from the same
  // position), and the pre-failure forced LSN is returned.
  uint64_t Force();

  uint64_t last_lsn() const;
  uint64_t forced_lsn() const;
  uint64_t force_count() const;
  // Disk transfers that failed during Force/ReadAll.
  uint64_t io_error_count() const { return io_errors_.load(std::memory_order_relaxed); }

  // Drops the volatile tail (crash).
  void SimulateCrash();

  // Reads the durable log back from disk (recovery). Usable from a fresh
  // WriteAheadLog attached to the same disk.
  std::vector<LogRecord> ReadAll() const;

 private:
  SimDisk* const disk_;
  mutable std::mutex mu_;
  std::vector<std::byte> tail_;   // Serialized, unforced records.
  uint64_t next_lsn_ = 1;
  uint64_t forced_lsn_ = 0;
  uint64_t durable_bytes_ = 0;  // Write cursor on the disk.
  uint64_t force_count_ = 0;
  mutable std::atomic<uint64_t> io_errors_{0};
};

}  // namespace mach

#endif  // SRC_MANAGERS_CAMELOT_WAL_H_
