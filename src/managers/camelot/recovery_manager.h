// The Camelot-style recovery manager (§8.3): a data manager that keeps
// permanent, failure-atomic objects in virtual memory using write-ahead
// logging.
//
// Servers map *recoverable segments* into their address spaces and operate
// on them as ordinary memory. The transaction library records undo/redo
// images in the log before each write. The recovery manager is the data
// manager for segment memory objects, and enforces the WAL rule exactly
// where the paper says Camelot does: "When the disk manager receives a
// pager_flush_request from the kernel, it verifies that the proper log
// records have been written before writing the specified pages to disk."
// Here that check runs on every pager_data_write (flush or eviction).
//
// Benefits reproduced (§8.3): clients access data by mapping; no
// client-side page replacement; physical memory use adapts to load;
// recoverable data is written directly to permanent backing storage.

#ifndef SRC_MANAGERS_CAMELOT_RECOVERY_MANAGER_H_
#define SRC_MANAGERS_CAMELOT_RECOVERY_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/hw/sim_disk.h"
#include "src/kernel/task.h"
#include "src/managers/camelot/wal.h"
#include "src/pager/data_manager.h"

namespace mach {

class RecoveryManager : public DataManager {
 public:
  // `data_disk` holds segment pages (block size == page size); `log_disk`
  // holds the write-ahead log.
  RecoveryManager(SimDisk* data_disk, SimDisk* log_disk, VmSize page_size);

  // Creates or reopens a named recoverable segment; returns its memory
  // object (map with vm_allocate_with_pager).
  SendRight OpenSegment(const std::string& name, VmSize size);
  uint64_t SegmentId(const std::string& name);

  // --- transaction interface (used by the Transaction library) ---------
  uint64_t BeginTransaction();
  // Records undo/redo images. Must be called *before* the memory write.
  void LogUpdate(uint64_t tid, uint64_t segment_id, VmOffset offset,
                 std::vector<std::byte> old_data, std::vector<std::byte> new_data);
  void CommitTransaction(uint64_t tid);  // Forces the log.
  void AbortTransaction(uint64_t tid);
  // Records an undo action taken during abort (redo-only compensation).
  void LogCompensation(uint64_t tid, uint64_t segment_id, VmOffset offset,
                       std::vector<std::byte> restored);

  // --- crash / recovery --------------------------------------------------
  // Drops the volatile log tail (the kernel-cache half of a crash is
  // modelled by discarding the client kernel/task).
  void SimulateCrash();
  // Redoes committed transactions and undoes losers against the data disk.
  void Recover();

  // Statistics.
  uint64_t log_force_count() const;
  uint64_t wal_enforced_count() const { return wal_enforced_.load(std::memory_order_relaxed); }
  uint64_t pageout_count() const { return pageouts_.load(std::memory_order_relaxed); }
  uint64_t io_error_count() const { return io_errors_.load(std::memory_order_relaxed); }
  // Pageouts deferred (page stashed in memory) because completing them
  // would have violated the WAL rule or failed on the data disk.
  uint64_t deferred_pageout_count() const { return deferred_.load(std::memory_order_relaxed); }

 protected:
  void OnDataRequest(uint64_t object_port_id, uint64_t cookie, PagerDataRequestArgs args) override;
  void OnDataWrite(uint64_t object_port_id, uint64_t cookie, PagerDataWriteArgs args) override;

 private:
  struct Segment {
    uint64_t id = 0;
    VmSize size = 0;
    SendRight object;
    std::vector<uint32_t> blocks;  // Per page; UINT32_MAX = hole (zeros).
    // Highest LSN that touched each page (for the WAL check).
    std::unordered_map<VmOffset, uint64_t> page_lsn;
    // Pageouts the manager could not complete — the WAL force or the data
    // write failed — keyed by page offset. The kernel has already evicted
    // these pages, so this stash is the only remaining copy: reads are
    // served from it and later pageouts/commits retry the write. Volatile
    // (lost on crash), like the log tail.
    std::map<VmOffset, std::vector<std::byte>> deferred;
  };

  Segment* SegmentByCookie(uint64_t cookie);
  uint32_t EnsureBlock(Segment* segment, size_t page_index);
  // One page's WAL check + in-place write. Returns true only when the page
  // is on the data disk with its log records durable. Caller holds mu_.
  bool TryWritePage(Segment* segment, VmOffset off, const std::byte* src);
  // Retries every deferred pageout of `segment`. Caller holds mu_.
  void FlushDeferred(Segment* segment);
  void ApplyImage(uint64_t segment_id, VmOffset offset, const std::vector<std::byte>& image);

  // The segment directory (names, ids, page->block maps) is persisted in
  // reserved blocks at the front of the data disk, so a rebooted manager
  // finds its segments again. Caller holds mu_.
  void SaveDirectory();
  void LoadDirectory();

  const VmSize page_size_;
  SimDisk* const data_disk_;
  WriteAheadLog log_;

  std::mutex mu_;
  std::map<std::string, Segment> segments_;
  uint64_t next_segment_id_ = 1;
  uint64_t next_tid_ = 1;
  std::set<uint64_t> active_tids_;

  std::atomic<uint64_t> wal_enforced_{0};
  std::atomic<uint64_t> pageouts_{0};
  std::atomic<uint64_t> io_errors_{0};
  std::atomic<uint64_t> deferred_{0};
};

// Client-side failure-atomic transactions over mapped recoverable segments.
class RecoverableSegment {
 public:
  RecoverableSegment() = default;
  RecoverableSegment(uint64_t id, VmOffset base, VmSize size, Task* task)
      : id_(id), base_(base), size_(size), task_(task) {}

  uint64_t id() const { return id_; }
  VmOffset base() const { return base_; }
  VmSize size() const { return size_; }
  Task* task() const { return task_; }

  // Maps the named segment into `task`.
  static Result<RecoverableSegment> Map(RecoveryManager* rm, Task* task,
                                        const std::string& name, VmSize size);

 private:
  uint64_t id_ = 0;
  VmOffset base_ = 0;
  VmSize size_ = 0;
  Task* task_ = nullptr;
};

class Transaction {
 public:
  explicit Transaction(RecoveryManager* rm) : rm_(rm), tid_(rm->BeginTransaction()) {}

  uint64_t tid() const { return tid_; }

  // Failure-atomic write: logs undo/redo, then writes through the mapping.
  KernReturn Write(const RecoverableSegment& segment, VmOffset offset, const void* data,
                   VmSize len);

  KernReturn Commit();
  KernReturn Abort();  // Restores the old values through the mapping.

 private:
  struct Undo {
    RecoverableSegment segment;
    VmOffset offset;
    std::vector<std::byte> old_data;
  };

  RecoveryManager* const rm_;
  const uint64_t tid_;
  bool done_ = false;
  std::vector<Undo> undo_log_;
};

}  // namespace mach

#endif  // SRC_MANAGERS_CAMELOT_RECOVERY_MANAGER_H_
