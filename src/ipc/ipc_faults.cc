#include "src/ipc/ipc_faults.h"

#include <atomic>
#include <mutex>
#include <utility>
#include <variant>
#include <vector>

#include "src/base/fault_injector.h"
#include "src/base/log.h"
#include "src/ipc/message.h"
#include "src/ipc/port.h"

namespace mach {

namespace {

std::atomic<FaultInjector*> g_ipc_injector{nullptr};

struct PendingNotification {
  SendRight to;
  Message msg;
};

std::mutex& PendingMu() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

std::vector<PendingNotification>& PendingList() {
  static std::vector<PendingNotification>* list = new std::vector<PendingNotification>();
  return *list;
}

const std::string& PointName(const char* point) {
  static const std::string* enqueue = new std::string(kIpcFaultEnqueue);
  static const std::string* transfer = new std::string(kIpcFaultRightTransfer);
  static const std::string* notify = new std::string(kIpcFaultNotify);
  if (point == kIpcFaultEnqueue) return *enqueue;
  if (point == kIpcFaultRightTransfer) return *transfer;
  return *notify;
}

bool ShouldFail(const char* point) {
  FaultInjector* injector = g_ipc_injector.load(std::memory_order_acquire);
  return injector != nullptr && injector->ShouldFail(PointName(point));
}

}  // namespace

void SetIpcFaultInjector(FaultInjector* injector) {
  g_ipc_injector.store(injector, std::memory_order_release);
  if (injector == nullptr) {
    IpcDrainDelayedNotifications();
  }
}

FaultInjector* GetIpcFaultInjector() {
  return g_ipc_injector.load(std::memory_order_acquire);
}

size_t IpcDrainDelayedNotifications() {
  std::vector<PendingNotification> pending;
  {
    std::lock_guard<std::mutex> g(PendingMu());
    pending.swap(PendingList());
  }
  size_t delivered = 0;
  for (PendingNotification& p : pending) {
    // Delayed delivery stays best-effort, exactly like the inline path —
    // and deliberately bypasses ipc.notify so a drain always terminates.
    if (p.to) {
      MsgSend(p.to, std::move(p.msg), kPoll);
      ++delivered;
    }
  }
  return delivered;
}

size_t IpcPendingDelayedNotificationCount() {
  std::lock_guard<std::mutex> g(PendingMu());
  return PendingList().size();
}

bool IpcFaultShouldOverflowEnqueue() { return ShouldFail(kIpcFaultEnqueue); }

void IpcFaultMutateRights(Message* msg) {
  if (g_ipc_injector.load(std::memory_order_acquire) == nullptr) {
    return;
  }
  std::vector<SendRight> duplicated;
  for (MsgItem& item : msg->items()) {
    if (auto* port_item = std::get_if<PortItem>(&item)) {
      if (port_item->right.valid() && ShouldFail(kIpcFaultRightTransfer)) {
        // Duplicate in transit: an extra counted copy appended past the
        // items the receiver's decoder expects.
        MACH_LOG(kDebug) << "ipc.right_transfer duplicated send right to port "
                         << port_item->right.id();
        duplicated.push_back(port_item->right);
      }
    } else if (auto* recv_item = std::get_if<ReceiveItem>(&item)) {
      if (recv_item->right.valid() && ShouldFail(kIpcFaultRightTransfer)) {
        // Drop in transit: the one receive right is gone, so the port dies.
        MACH_LOG(kDebug) << "ipc.right_transfer dropped receive right to port "
                         << recv_item->right.id();
        recv_item->right = ReceiveRight();
      }
    }
  }
  for (SendRight& r : duplicated) {
    msg->PushPort(std::move(r));
  }
}

bool IpcFaultMaybeDeferNotification(SendRight& to, Message& msg) {
  if (!ShouldFail(kIpcFaultNotify)) {
    return false;
  }
  MACH_LOG(kDebug) << "ipc.notify deferred notification 0x" << std::hex << msg.id() << std::dec
                   << " to port " << to.id();
  std::lock_guard<std::mutex> g(PendingMu());
  PendingList().push_back(PendingNotification{std::move(to), std::move(msg)});
  return true;
}

}  // namespace mach
