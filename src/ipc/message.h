// Messages (§3.2): a fixed header plus a variable-size collection of *typed*
// data items. An item is inline data, a port right (send or receive), or an
// out-of-line memory region. Out-of-line regions are carried as an opaque
// handle produced by the VM layer (a map copy); the IPC layer does not
// interpret them — that is the memory/communication duality boundary.

#ifndef SRC_IPC_MESSAGE_H_
#define SRC_IPC_MESSAGE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "src/base/kern_return.h"
#include "src/base/vm_types.h"
#include "src/ipc/port_right.h"

namespace mach {

// Inline typed data.
struct DataItem {
  std::vector<std::byte> bytes;
};

// A send right travelling in a message.
struct PortItem {
  SendRight right;
};

// A receive right travelling in a message (used e.g. to hand a newly
// allocated memory object's receive side to a data manager).
struct ReceiveItem {
  ReceiveRight right;
};

// Out-of-line memory: an opaque VM map-copy handle. `size` is the byte
// length of the region. The VM layer provides CopyIn/CopyOut to produce and
// consume these; cross-host transports flatten them to bytes.
struct OolItem {
  std::shared_ptr<void> copy;
  VmSize size = 0;
};

using MsgItem = std::variant<DataItem, PortItem, ReceiveItem, OolItem>;

using MsgId = uint32_t;

// A message. Move-only (it may carry receive rights). The destination port
// is *not* part of the message object; it is an argument to msg_send, which
// matches how the primitives in Table 3-1 are used here.
class Message {
 public:
  Message() = default;
  explicit Message(MsgId id) : id_(id) {}

  Message(Message&&) = default;
  Message& operator=(Message&&) = default;
  Message(const Message&) = delete;
  Message& operator=(const Message&) = delete;

  MsgId id() const { return id_; }
  void set_id(MsgId id) { id_ = id; }

  // Reply port (capability for the receiver to respond). May be null.
  const SendRight& reply_port() const { return reply_port_; }
  void set_reply_port(SendRight right) { reply_port_ = std::move(right); }

  // --- Writing (append, in order) -------------------------------------

  void PushData(const void* data, size_t len) {
    DataItem item;
    item.bytes.resize(len);
    std::memcpy(item.bytes.data(), data, len);
    items_.push_back(std::move(item));
  }

  void PushBytes(std::vector<std::byte> bytes) {
    items_.push_back(DataItem{std::move(bytes)});
  }

  void PushU32(uint32_t v) { PushData(&v, sizeof(v)); }
  void PushU64(uint64_t v) { PushData(&v, sizeof(v)); }
  void PushString(const std::string& s) { PushData(s.data(), s.size()); }

  void PushPort(SendRight right) { items_.push_back(PortItem{std::move(right)}); }
  void PushReceive(ReceiveRight right) { items_.push_back(ReceiveItem{std::move(right)}); }
  void PushOol(std::shared_ptr<void> copy, VmSize size) {
    items_.push_back(OolItem{std::move(copy), size});
  }

  // --- Reading (sequential cursor) ------------------------------------

  size_t item_count() const { return items_.size(); }
  bool AtEnd() const { return cursor_ >= items_.size(); }

  // Each Take* consumes the next item; type mismatch returns a failure
  // status / empty value. Protocol decoders check as they go.
  Result<std::vector<std::byte>> TakeBytes();
  Result<uint32_t> TakeU32();
  Result<uint64_t> TakeU64();
  Result<std::string> TakeString();
  Result<SendRight> TakePort();
  Result<ReceiveRight> TakeReceive();
  Result<OolItem> TakeOol();

  // Direct item access for transports that re-encode messages.
  std::vector<MsgItem>& items() { return items_; }
  const std::vector<MsgItem>& items() const { return items_; }

  // Total inline payload bytes (for accounting / latency models).
  VmSize InlineSize() const;

 private:
  MsgId id_ = 0;
  SendRight reply_port_;
  std::vector<MsgItem> items_;
  size_t cursor_ = 0;
};

}  // namespace mach

#endif  // SRC_IPC_MESSAGE_H_
