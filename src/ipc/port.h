// Ports (§3.2): a port is a finite-length queue for messages protected by
// the kernel. Any number of senders, exactly one receiver. Ports may be
// grouped into a PortSet (the "default group of ports" that port_enable /
// port_disable manage) and received from as a group.
//
// Every port counts its live send rights — including copies riding inside
// queued messages — and fires a one-shot kMsgIdNoSenders notification when
// the count reaches zero (RequestNoSendersNotification). Rights that only
// reference each other across port queues are reclaimed by PortGc
// (port_gc.h). Enqueue/notification paths consult the process-wide IPC fault
// injector (ipc_faults.h) when one is armed.
//
// Lock order: PortSet::mu_ > Port::mu_. A port never calls back into the
// kernel layer, so port locks sit at the bottom of the VM lock order
// (tier 7 in vm_system.h): kernels may hold map/object/queue locks while
// using ports, but blocking receives while holding any VM lock are
// forbidden — the VM layer drops its locks around waits. Rights are never
// destroyed while their own port's mu_ is held (destruction re-enters the
// port).

#ifndef SRC_IPC_PORT_H_
#define SRC_IPC_PORT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/base/kern_return.h"
#include "src/base/sync.h"
#include "src/ipc/message.h"
#include "src/ipc/port_right.h"

namespace mach {

class PortSet;
class PortGc;

// Message id delivered by a death notification (see
// RequestDeathNotification). Body: one u64 item = the dead port's id.
inline constexpr MsgId kMsgIdPortDeath = 0xDEAD0001;

// Message id delivered by a no-senders notification (see
// RequestNoSendersNotification). Body: one u64 item = the senderless port's
// id. The port itself is still alive — its receiver decides what to do.
inline constexpr MsgId kMsgIdNoSenders = 0xDEAD0002;

// Default queue backlog (Mach's PORT_BACKLOG_DEFAULT).
inline constexpr size_t kDefaultBacklog = 32;

// Snapshot of a port's state (port_status, Table 3-2).
struct PortStatus {
  size_t num_msgs = 0;
  size_t backlog = 0;
  size_t send_rights = 0;
  bool dead = false;
  bool enabled = false;  // Member of a port set.
};

class Port : public std::enable_shared_from_this<Port> {
 public:
  ~Port();

  Port(const Port&) = delete;
  Port& operator=(const Port&) = delete;

  uint64_t id() const { return id_; }
  const std::string& label() const { return label_; }

  // --- primitive operations (used via the free functions below) -------

  // Enqueues a message; blocks (up to `timeout`) while the backlog is full.
  KernReturn Enqueue(Message&& msg, Timeout timeout);

  // Dequeues the next message; blocks (up to `timeout`) while empty.
  // Fails with kPortDead once the port is destroyed *and* drained.
  Result<Message> Dequeue(Timeout timeout);

  // Non-blocking variant used by PortSet scanning.
  Result<Message> TryDequeue();

  PortStatus Status() const;
  KernReturn SetBacklog(size_t backlog);

  // Registers `notify_to` to receive a kMsgIdPortDeath message when this
  // port is destroyed.
  void RequestDeathNotification(SendRight notify_to);

  // Registers a callback invoked exactly once when this port dies, after
  // its queue is drained and its death-notification messages are sent. Runs
  // on the thread that kills the port, outside all port locks — it may take
  // its own locks and kill other ports (transports use this to propagate
  // death across a link eagerly), but must not block. Fires immediately if
  // the port is already dead. Actions must not own port rights: PortGc
  // cannot see into them.
  void AddDeathAction(std::function<void(uint64_t dead_port_id)> action);

  // Registers `notify_to` to receive a one-shot kMsgIdNoSenders message
  // when the port's send-right count drops to zero (fires immediately if it
  // already is zero). A later MakeSendRight re-arms nothing by itself; the
  // receiver re-registers if it wants another notification. Replaces any
  // previously registered notify right. Port death cancels the
  // registration: death notifications supersede no-senders.
  void RequestNoSendersNotification(SendRight notify_to);

  // Current number of live send rights naming this port (counted across
  // tasks and in-queue messages alike).
  uint64_t send_right_count() const { return send_refs_.load(std::memory_order_acquire); }

  bool dead() const;

 private:
  friend class SendRight;
  friend class ReceiveRight;
  friend class PortSet;
  friend class PortGc;
  friend struct PortFactory;

  explicit Port(std::string label);

  // Destroys the port: fails senders/receivers, drains the queue, fires
  // death notifications. Idempotent.
  void MarkDead();

  // Send-right accounting (called by SendRight's special members).
  void AddSendRef();
  void ReleaseSendRef();

  // Enumerates every port this port holds a reference to internally: rights
  // inside queued messages, queued reply ports, death watchers, and the
  // no-senders notify right. Used by PortGc's mark phase. Holds mu_ while
  // `fn` runs; `fn` must not touch any port.
  void ForEachGcRef(const std::function<void(const Port*)>& fn) const;

  void SetPortSet(std::shared_ptr<PortSet> set);

  const uint64_t id_;
  const std::string label_;

  std::atomic<uint64_t> send_refs_{0};

  mutable std::mutex mu_;
  std::condition_variable recv_cv_;
  std::condition_variable send_cv_;
  std::deque<Message> queue_;
  size_t backlog_ = kDefaultBacklog;
  bool dead_ = false;
  std::weak_ptr<PortSet> set_;
  std::vector<SendRight> death_watchers_;
  std::vector<std::function<void(uint64_t)>> death_actions_;
  SendRight no_senders_notify_;
};

// A group of enabled ports receivable as one (§3.2 "default group of ports
// for msg_receive"). Receive rights stay with the owner; the set only scans.
class PortSet : public std::enable_shared_from_this<PortSet> {
 public:
  static std::shared_ptr<PortSet> Create();

  // port_enable: adds the port to this set.
  KernReturn Add(const ReceiveRight& right);
  // port_disable: removes it.
  KernReturn Remove(const ReceiveRight& right);

  // Receives the next message queued on any member port. Round-robin across
  // members to avoid starvation. Returns kTimedOut / kNoMessage like
  // Port::Dequeue.
  Result<Message> Receive(Timeout timeout);

  // Like Receive but also reports which port the message arrived on.
  struct ReceivedMessage {
    Message message;
    uint64_t port_id;
  };
  Result<ReceivedMessage> ReceiveFrom(Timeout timeout);

  // port_messages (Table 3-2): ids of enabled ports with queued messages.
  std::vector<uint64_t> PortsWithMessages() const;

  size_t member_count() const;

 private:
  friend class Port;
  PortSet() = default;

  void Notify();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::shared_ptr<Port>> members_;
  size_t rotation_ = 0;
};

// --- Table 3-1 / 3-2 primitive operations ------------------------------

struct PortPair {
  ReceiveRight receive;
  SendRight send;
};

// port_allocate: creates a new port, returning both rights.
PortPair PortAllocate(std::string label = "");

// msg_send(message, option, timeout).
KernReturn MsgSend(const SendRight& dest, Message&& msg, Timeout timeout = kWaitForever);

// msg_receive(message, option, timeout).
Result<Message> MsgReceive(ReceiveRight& from, Timeout timeout = kWaitForever);

// msg_rpc(message, option, rcv_size, send_timeout, receive_timeout):
// sends `request` with a freshly allocated one-shot reply port and waits for
// the reply on it.
Result<Message> MsgRpc(const SendRight& dest, Message&& request,
                       Timeout send_timeout = kWaitForever,
                       Timeout receive_timeout = kWaitForever);

}  // namespace mach

#endif  // SRC_IPC_PORT_H_
