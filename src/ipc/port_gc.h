// Port garbage collection (no-senders' structural twin).
//
// Send-right counting (Port::RequestNoSendersNotification) tells a *manager*
// when its object port lost all senders, but it cannot reclaim rights that
// only reference each other: two ports each holding the other's receive
// right inside a queued message form a cycle no task can ever receive from
// again. The 1987 paper predates Mach's answer (no-senders notifications,
// NORMA's port GC); we implement both.
//
// PortGc keeps a registry of every live port (weak, so registration does not
// itself keep ports alive) and Collect() runs a mark-and-sweep:
//
//   1. snapshot every live port,
//   2. count, per port, the references attributable to *other snapshot
//      ports* (rights inside queued messages, reply ports, death watchers,
//      the no-senders notify right),
//   3. any reference not so attributable is an external root (a task-held
//      right, a kernel table, a port set, an OOL-captured VM object); mark
//      everything reachable from roots,
//   4. verify unmarked candidates against a races-escape check: a candidate
//      is only collected if its reference count is exactly explained by the
//      snapshot plus in-candidate references, to fixpoint (a right dequeued
//      mid-scan makes its holder visibly over-referenced and the whole
//      subgraph it roots is kept),
//   5. MarkDead the survivors — queued rights are destroyed through the
//      ordinary destruction path, so death notifications still fire.
//
// The check in (4) is sound because acquiring a reference to a port that is
// *truly* unreachable would itself require a reference to some candidate:
// any escape is visible as an unexplained count somewhere in the set.

#ifndef SRC_IPC_PORT_GC_H_
#define SRC_IPC_PORT_GC_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace mach {

class Port;

class PortGc {
 public:
  // Process-wide instance (ports are ambient, not per-kernel).
  static PortGc& Instance();

  PortGc(const PortGc&) = delete;
  PortGc& operator=(const PortGc&) = delete;

  // Runs a full mark-and-sweep pass; returns the number of ports reclaimed.
  size_t Collect();

  // Registered ports that are alive and not (yet) dead. Tests use this as a
  // leak baseline across a workload.
  size_t live_count() const;

  // Cumulative ports reclaimed by Collect over the process lifetime.
  uint64_t total_reclaimed() const { return total_reclaimed_.load(std::memory_order_relaxed); }

  // --- hooks used by the port layer itself (not for general use) --------

  void Register(Port* port, std::weak_ptr<Port> weak);
  void Unregister(Port* port);

  // Opportunistic trigger from PortAllocate: collects only when some send
  // count recently hit zero (cycles become collectable at such transitions)
  // and enough allocations have passed to amortize the sweep.
  void MaybeCollectOnAllocate();
  void NoteZeroSenders() { dirty_.store(true, std::memory_order_relaxed); }

  // Enables/disables the opportunistic MaybeCollectOnAllocate trigger.
  // Explicit Collect() calls are unaffected. Oracle-style tests disable it
  // so collection points are deterministic; it is on by default.
  void SetAutoCollect(bool enabled) { auto_collect_.store(enabled, std::memory_order_relaxed); }

 private:
  PortGc() = default;

  size_t CollectLocked();

  mutable std::mutex mu_;  // registry
  std::mutex collect_mu_;  // serializes collectors; never taken under mu_
  std::unordered_map<Port*, std::weak_ptr<Port>> ports_;
  std::atomic<bool> dirty_{false};
  std::atomic<bool> auto_collect_{true};
  std::atomic<uint64_t> allocs_since_collect_{0};
  std::atomic<uint64_t> total_reclaimed_{0};
};

// Convenience wrappers for tests and teardown paths.
size_t PortGcCollect();
size_t PortGcLivePortCount();

}  // namespace mach

#endif  // SRC_IPC_PORT_GC_H_
