#include "src/ipc/message.h"

namespace mach {

Result<std::vector<std::byte>> Message::TakeBytes() {
  if (cursor_ >= items_.size()) {
    return KernReturn::kInvalidArgument;
  }
  auto* item = std::get_if<DataItem>(&items_[cursor_]);
  if (item == nullptr) {
    return KernReturn::kInvalidArgument;
  }
  ++cursor_;
  return std::move(item->bytes);
}

Result<uint32_t> Message::TakeU32() {
  Result<std::vector<std::byte>> bytes = TakeBytes();
  if (!bytes.ok() || bytes.value().size() != sizeof(uint32_t)) {
    return KernReturn::kInvalidArgument;
  }
  uint32_t v;
  std::memcpy(&v, bytes.value().data(), sizeof(v));
  return v;
}

Result<uint64_t> Message::TakeU64() {
  Result<std::vector<std::byte>> bytes = TakeBytes();
  if (!bytes.ok() || bytes.value().size() != sizeof(uint64_t)) {
    return KernReturn::kInvalidArgument;
  }
  uint64_t v;
  std::memcpy(&v, bytes.value().data(), sizeof(v));
  return v;
}

Result<std::string> Message::TakeString() {
  Result<std::vector<std::byte>> bytes = TakeBytes();
  if (!bytes.ok()) {
    return bytes.status();
  }
  return std::string(reinterpret_cast<const char*>(bytes.value().data()), bytes.value().size());
}

Result<SendRight> Message::TakePort() {
  if (cursor_ >= items_.size()) {
    return KernReturn::kInvalidArgument;
  }
  auto* item = std::get_if<PortItem>(&items_[cursor_]);
  if (item == nullptr) {
    return KernReturn::kInvalidArgument;
  }
  ++cursor_;
  return std::move(item->right);
}

Result<ReceiveRight> Message::TakeReceive() {
  if (cursor_ >= items_.size()) {
    return KernReturn::kInvalidArgument;
  }
  auto* item = std::get_if<ReceiveItem>(&items_[cursor_]);
  if (item == nullptr) {
    return KernReturn::kInvalidArgument;
  }
  ++cursor_;
  return std::move(item->right);
}

Result<OolItem> Message::TakeOol() {
  if (cursor_ >= items_.size()) {
    return KernReturn::kInvalidArgument;
  }
  auto* item = std::get_if<OolItem>(&items_[cursor_]);
  if (item == nullptr) {
    return KernReturn::kInvalidArgument;
  }
  ++cursor_;
  return std::move(*item);
}

VmSize Message::InlineSize() const {
  VmSize total = 0;
  for (const MsgItem& item : items_) {
    if (const auto* data = std::get_if<DataItem>(&item)) {
      total += data->bytes.size();
    }
  }
  return total;
}

}  // namespace mach
