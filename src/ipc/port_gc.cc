#include "src/ipc/port_gc.h"

#include <deque>
#include <vector>

#include "src/base/log.h"
#include "src/ipc/port.h"

namespace mach {

namespace {
// Collect at most once per this many allocations on the opportunistic path.
constexpr uint64_t kAllocCollectInterval = 128;
}  // namespace

PortGc& PortGc::Instance() {
  // Intentionally never destroyed: ports may outlive static destruction
  // order, and a reachable-at-exit singleton is invisible to LeakSanitizer.
  static PortGc* instance = new PortGc();
  return *instance;
}

void PortGc::Register(Port* port, std::weak_ptr<Port> weak) {
  std::lock_guard<std::mutex> g(mu_);
  ports_.emplace(port, std::move(weak));
}

void PortGc::Unregister(Port* port) {
  std::lock_guard<std::mutex> g(mu_);
  ports_.erase(port);
}

size_t PortGc::live_count() const {
  std::lock_guard<std::mutex> g(mu_);
  size_t n = 0;
  for (const auto& [raw, weak] : ports_) {
    std::shared_ptr<Port> p = weak.lock();
    if (p != nullptr && !p->dead()) {
      ++n;
    }
  }
  return n;
}

size_t PortGc::Collect() {
  std::lock_guard<std::mutex> collector(collect_mu_);
  return CollectLocked();
}

void PortGc::MaybeCollectOnAllocate() {
  uint64_t n = allocs_since_collect_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n < kAllocCollectInterval || !dirty_.load(std::memory_order_relaxed) ||
      !auto_collect_.load(std::memory_order_relaxed)) {
    return;
  }
  if (!collect_mu_.try_lock()) {
    return;  // Another collector is already running.
  }
  CollectLocked();
  collect_mu_.unlock();
}

size_t PortGc::CollectLocked() {
  dirty_.store(false, std::memory_order_relaxed);
  allocs_since_collect_.store(0, std::memory_order_relaxed);

  // 1. Snapshot every live, not-yet-dead port. The snapshot's shared_ptrs
  // pin the ports for the duration of the pass (each contributes exactly one
  // reference, accounted for below).
  std::vector<std::shared_ptr<Port>> snap;
  {
    std::lock_guard<std::mutex> g(mu_);
    snap.reserve(ports_.size());
    for (const auto& [raw, weak] : ports_) {
      std::shared_ptr<Port> p = weak.lock();
      if (p != nullptr && !p->dead()) {
        snap.push_back(std::move(p));
      }
    }
  }
  const size_t n = snap.size();
  if (n == 0) {
    return 0;
  }
  std::unordered_map<const Port*, size_t> index;
  index.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    index.emplace(snap[i].get(), i);
  }

  // 2. Scan port-internal references: edges[i] lists the snapshot ports that
  // port i's queue/watchers/notify right point at.
  std::vector<std::vector<size_t>> edges(n);
  std::vector<size_t> internal(n, 0);
  for (size_t i = 0; i < n; ++i) {
    snap[i]->ForEachGcRef([&](const Port* target) {
      auto it = index.find(target);
      if (it == index.end()) {
        return;  // Reference to a port outside the snapshot (e.g. born after it).
      }
      edges[i].push_back(it->second);
      ++internal[it->second];
    });
  }

  // 3. Roots: any reference beyond (snapshot + internal) must be held by a
  // task, a kernel table, a port set, or an opaque OOL region — all
  // reachable from the outside. Mark everything roots can reach.
  std::vector<char> marked(n, 0);
  std::deque<size_t> work;
  for (size_t i = 0; i < n; ++i) {
    long external = static_cast<long>(snap[i].use_count()) - 1 - static_cast<long>(internal[i]);
    if (external > 0) {
      marked[i] = 1;
      work.push_back(i);
    }
  }
  while (!work.empty()) {
    size_t i = work.front();
    work.pop_front();
    for (size_t t : edges[i]) {
      if (!marked[t]) {
        marked[t] = 1;
        work.push_back(t);
      }
    }
  }

  // 4. Verify candidates to fixpoint. A right may have been dequeued (or a
  // new one minted) between the scan above and now; such an escape shows up
  // as a count not explained by snapshot + in-candidate references. Dropping
  // the escaped port also stops explaining the ports *it* references, so the
  // whole subgraph it roots falls out over subsequent iterations.
  std::vector<size_t> candidates;
  for (size_t i = 0; i < n; ++i) {
    if (!marked[i]) {
      candidates.push_back(i);
    }
  }
  bool changed = true;
  while (changed && !candidates.empty()) {
    changed = false;
    std::unordered_map<const Port*, size_t> cand_index;
    for (size_t i : candidates) {
      cand_index.emplace(snap[i].get(), i);
    }
    std::unordered_map<size_t, long> incoming;
    for (size_t i : candidates) {
      incoming[i] = 0;
    }
    for (size_t i : candidates) {
      snap[i]->ForEachGcRef([&](const Port* target) {
        auto it = cand_index.find(target);
        if (it != cand_index.end()) {
          ++incoming[it->second];
        }
      });
    }
    std::vector<size_t> still_unreachable;
    for (size_t i : candidates) {
      if (static_cast<long>(snap[i].use_count()) == 1 + incoming[i] && !snap[i]->dead()) {
        still_unreachable.push_back(i);
      } else {
        changed = true;
      }
    }
    candidates.swap(still_unreachable);
  }

  // 5. Sweep. MarkDead destroys queued rights through the normal path, so
  // death notifications to live watchers still fire; cascaded MarkDead of a
  // fellow candidate is idempotent. Dropping the snapshot then frees them.
  for (size_t i : candidates) {
    MACH_LOG(kDebug) << "port gc reclaiming unreachable port " << snap[i]->id() << " ("
                     << snap[i]->label() << ")";
    snap[i]->MarkDead();
  }
  size_t reclaimed = candidates.size();
  total_reclaimed_.fetch_add(reclaimed, std::memory_order_relaxed);
  if (reclaimed > 0) {
    MACH_LOG(kInfo) << "port gc reclaimed " << reclaimed << " unreachable port(s) of " << n;
  }
  return reclaimed;
}

size_t PortGcCollect() { return PortGc::Instance().Collect(); }
size_t PortGcLivePortCount() { return PortGc::Instance().live_count(); }

}  // namespace mach
