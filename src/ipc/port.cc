#include "src/ipc/port.h"

#include <algorithm>
#include <atomic>

#include "src/base/log.h"

namespace mach {

namespace {
std::atomic<uint64_t> g_next_port_id{1};
}  // namespace

// PortFactory exists so PortAllocate can reach Port's private constructor
// through std::shared_ptr without making the constructor public.
struct PortFactory {
  static std::shared_ptr<Port> Make(std::string label) {
    return std::shared_ptr<Port>(new Port(std::move(label)));
  }
};

Port::Port(std::string label)
    : id_(g_next_port_id.fetch_add(1, std::memory_order_relaxed)), label_(std::move(label)) {}

Port::~Port() = default;

KernReturn Port::Enqueue(Message&& msg, Timeout timeout) {
  std::shared_ptr<PortSet> set_to_notify;
  {
    std::unique_lock<std::mutex> lock(mu_);
    bool ok = WaitFor(send_cv_, lock, timeout,
                      [this] { return dead_ || queue_.size() < backlog_; });
    if (dead_) {
      return KernReturn::kPortDead;
    }
    if (!ok) {
      return queue_.size() >= backlog_ ? KernReturn::kPortFull : KernReturn::kTimedOut;
    }
    StripSelfRights(&msg);
    queue_.push_back(std::move(msg));
    recv_cv_.notify_one();
    set_to_notify = set_.lock();
  }
  if (set_to_notify != nullptr) {
    set_to_notify->Notify();
  }
  return KernReturn::kSuccess;
}

Result<Message> Port::Dequeue(Timeout timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  bool ok = WaitFor(recv_cv_, lock, timeout, [this] { return dead_ || !queue_.empty(); });
  if (!queue_.empty()) {
    Message msg = std::move(queue_.front());
    queue_.pop_front();
    send_cv_.notify_one();
    ReownSelfRights(&msg);
    return msg;
  }
  if (dead_) {
    return KernReturn::kPortDead;
  }
  if (timeout.has_value() && *timeout == std::chrono::milliseconds::zero()) {
    return KernReturn::kNoMessage;  // Poll found the queue empty.
  }
  return ok ? KernReturn::kNoMessage : KernReturn::kTimedOut;
}

Result<Message> Port::TryDequeue() {
  std::lock_guard<std::mutex> g(mu_);
  if (!queue_.empty()) {
    Message msg = std::move(queue_.front());
    queue_.pop_front();
    send_cv_.notify_one();
    ReownSelfRights(&msg);
    return msg;
  }
  return dead_ ? KernReturn::kPortDead : KernReturn::kNoMessage;
}

void Port::StripSelfRights(Message* msg) {
  // Non-owning alias: get() == this but no control block.
  std::shared_ptr<Port> alias(std::shared_ptr<Port>(), this);
  if (msg->reply_port().port().get() == this) {
    msg->set_reply_port(SendRight(alias));
  }
  for (MsgItem& item : msg->items()) {
    if (auto* port_item = std::get_if<PortItem>(&item)) {
      if (port_item->right.port().get() == this) {
        port_item->right = SendRight(alias);
      }
    } else if (auto* recv_item = std::get_if<ReceiveItem>(&item)) {
      if (recv_item->right.port_.get() == this) {
        // Direct rebind: plain assignment must not MarkDead the port the
        // way destroying the right would.
        recv_item->right.port_ = alias;
      }
    }
  }
}

void Port::ReownSelfRights(Message* msg) {
  std::shared_ptr<Port> self;  // Materialized lazily: most messages carry no self-rights.
  auto owned = [&] {
    if (self == nullptr) {
      self = shared_from_this();
    }
    return self;
  };
  if (msg->reply_port().port().get() == this && msg->reply_port().port().use_count() == 0) {
    msg->set_reply_port(SendRight(owned()));
  }
  for (MsgItem& item : msg->items()) {
    if (auto* port_item = std::get_if<PortItem>(&item)) {
      if (port_item->right.port().get() == this && port_item->right.port().use_count() == 0) {
        port_item->right = SendRight(owned());
      }
    } else if (auto* recv_item = std::get_if<ReceiveItem>(&item)) {
      if (recv_item->right.non_owning() && recv_item->right.port_.get() == this) {
        recv_item->right.port_ = owned();
      }
    }
  }
}

PortStatus Port::Status() const {
  std::lock_guard<std::mutex> g(mu_);
  PortStatus st;
  st.num_msgs = queue_.size();
  st.backlog = backlog_;
  st.dead = dead_;
  st.enabled = !set_.expired();
  return st;
}

KernReturn Port::SetBacklog(size_t backlog) {
  if (backlog == 0) {
    return KernReturn::kInvalidArgument;
  }
  std::lock_guard<std::mutex> g(mu_);
  backlog_ = backlog;
  send_cv_.notify_all();
  return KernReturn::kSuccess;
}

void Port::RequestDeathNotification(SendRight notify_to) {
  bool already_dead = false;
  {
    std::lock_guard<std::mutex> g(mu_);
    if (dead_) {
      already_dead = true;
    } else {
      death_watchers_.push_back(notify_to);
    }
  }
  if (already_dead && notify_to) {
    Message msg(kMsgIdPortDeath);
    msg.PushU64(id_);
    MsgSend(notify_to, std::move(msg), kPoll);
  }
}

bool Port::dead() const {
  std::lock_guard<std::mutex> g(mu_);
  return dead_;
}

void Port::MarkDead() {
  std::deque<Message> drained;
  std::vector<SendRight> watchers;
  {
    std::lock_guard<std::mutex> g(mu_);
    if (dead_) {
      return;
    }
    dead_ = true;
    drained.swap(queue_);
    watchers.swap(death_watchers_);
    recv_cv_.notify_all();
    send_cv_.notify_all();
  }
  // Destroy drained messages and fire notifications *outside* our lock:
  // message destruction may cascade into other ports' MarkDead, and a
  // queued message could even hold this port's own rights.
  drained.clear();
  for (SendRight& w : watchers) {
    if (!w) {
      continue;
    }
    Message msg(kMsgIdPortDeath);
    msg.PushU64(id_);
    // Best-effort: a full or dead notify port drops the notification.
    MsgSend(w, std::move(msg), kPoll);
  }
  MACH_LOG(kDebug) << "port " << id_ << " (" << label_ << ") died";
}

void Port::SetPortSet(std::shared_ptr<PortSet> set) {
  std::lock_guard<std::mutex> g(mu_);
  set_ = set;
}

// --- PortSet -----------------------------------------------------------

std::shared_ptr<PortSet> PortSet::Create() {
  return std::shared_ptr<PortSet>(new PortSet());
}

KernReturn PortSet::Add(const ReceiveRight& right) {
  if (!right.valid()) {
    return KernReturn::kInvalidCapability;
  }
  std::shared_ptr<Port> port = right.port();
  {
    std::lock_guard<std::mutex> g(mu_);
    if (std::find(members_.begin(), members_.end(), port) != members_.end()) {
      return KernReturn::kSuccess;  // Already enabled; idempotent.
    }
    members_.push_back(port);
  }
  port->SetPortSet(shared_from_this());
  Notify();  // It may already have queued messages.
  return KernReturn::kSuccess;
}

KernReturn PortSet::Remove(const ReceiveRight& right) {
  if (!right.valid()) {
    return KernReturn::kInvalidCapability;
  }
  std::shared_ptr<Port> port = right.port();
  {
    std::lock_guard<std::mutex> g(mu_);
    auto it = std::find(members_.begin(), members_.end(), port);
    if (it == members_.end()) {
      return KernReturn::kNotFound;
    }
    members_.erase(it);
  }
  port->SetPortSet(nullptr);
  return KernReturn::kSuccess;
}

Result<Message> PortSet::Receive(Timeout timeout) {
  Result<ReceivedMessage> r = ReceiveFrom(timeout);
  if (!r.ok()) {
    return r.status();
  }
  return std::move(std::move(r).value().message);
}

Result<PortSet::ReceivedMessage> PortSet::ReceiveFrom(Timeout timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    // Round-robin scan of members for a queued message.
    size_t n = members_.size();
    for (size_t i = 0; i < n; ++i) {
      size_t idx = (rotation_ + i) % n;
      std::shared_ptr<Port> port = members_[idx];
      Result<Message> msg = port->TryDequeue();
      if (msg.ok()) {
        rotation_ = (idx + 1) % n;
        return ReceivedMessage{std::move(msg).value(), port->id()};
      }
      if (msg.status() == KernReturn::kPortDead) {
        // Dead member: drop it from the set.
        members_.erase(members_.begin() + static_cast<long>(idx));
        n = members_.size();
        if (n == 0) {
          break;
        }
        --i;
      }
    }
    if (timeout.has_value() && *timeout == std::chrono::milliseconds::zero()) {
      return KernReturn::kNoMessage;
    }
    // Wait for an enqueue notification, then rescan.
    if (!timeout.has_value()) {
      cv_.wait(lock);
    } else if (cv_.wait_for(lock, *timeout) == std::cv_status::timeout) {
      return KernReturn::kTimedOut;
    }
  }
}

std::vector<uint64_t> PortSet::PortsWithMessages() const {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<uint64_t> ids;
  for (const auto& port : members_) {
    if (port->Status().num_msgs > 0) {
      ids.push_back(port->id());
    }
  }
  return ids;
}

size_t PortSet::member_count() const {
  std::lock_guard<std::mutex> g(mu_);
  return members_.size();
}

void PortSet::Notify() {
  std::lock_guard<std::mutex> g(mu_);
  cv_.notify_all();
}

// --- free functions ------------------------------------------------------

PortPair PortAllocate(std::string label) {
  std::shared_ptr<Port> port = PortFactory::Make(std::move(label));
  return PortPair{ReceiveRight(port), SendRight(port)};
}

KernReturn MsgSend(const SendRight& dest, Message&& msg, Timeout timeout) {
  if (!dest.valid()) {
    return KernReturn::kInvalidCapability;
  }
  return dest.port()->Enqueue(std::move(msg), timeout);
}

Result<Message> MsgReceive(ReceiveRight& from, Timeout timeout) {
  if (!from.valid()) {
    return KernReturn::kInvalidCapability;
  }
  return from.port()->Dequeue(timeout);
}

Result<Message> MsgRpc(const SendRight& dest, Message&& request, Timeout send_timeout,
                       Timeout receive_timeout) {
  PortPair reply = PortAllocate("rpc-reply");
  request.set_reply_port(reply.send);
  KernReturn kr = MsgSend(dest, std::move(request), send_timeout);
  if (!IsOk(kr)) {
    return kr;
  }
  return MsgReceive(reply.receive, receive_timeout);
}

// --- rights ------------------------------------------------------------

uint64_t SendRight::id() const { return port_ ? port_->id() : 0; }
std::string SendRight::label() const { return port_ ? port_->label() : std::string(); }
bool SendRight::IsDead() const { return port_ == nullptr || port_->dead(); }

ReceiveRight::~ReceiveRight() {
  // A non-owning right is a queue-internal cycle-breaker; it dies when its
  // port's own queue is torn down and must not re-enter MarkDead.
  if (port_ != nullptr && !non_owning()) {
    port_->MarkDead();
  }
}

ReceiveRight& ReceiveRight::operator=(ReceiveRight&& o) noexcept {
  if (this != &o) {
    if (port_ != nullptr && !non_owning()) {
      port_->MarkDead();
    }
    port_ = std::move(o.port_);
  }
  return *this;
}

uint64_t ReceiveRight::id() const { return port_ ? port_->id() : 0; }
std::string ReceiveRight::label() const { return port_ ? port_->label() : std::string(); }

SendRight ReceiveRight::MakeSendRight() const { return SendRight(port_); }

void ReceiveRight::Destroy() {
  if (port_ != nullptr) {
    port_->MarkDead();
    port_.reset();
  }
}

}  // namespace mach
