#include "src/ipc/port.h"

#include <algorithm>
#include <atomic>
#include <utility>
#include <variant>

#include "src/base/log.h"
#include "src/ipc/ipc_faults.h"
#include "src/ipc/port_gc.h"

namespace mach {

namespace {
std::atomic<uint64_t> g_next_port_id{1};

// All death / no-senders notifications funnel through here so an armed
// ipc.notify point can hold them back. Delivery is best-effort and
// non-blocking either way, like real Mach notifications.
void DeliverNotification(SendRight to, Message msg) {
  if (!to) {
    return;
  }
  if (IpcFaultMaybeDeferNotification(to, msg)) {
    return;
  }
  MsgSend(to, std::move(msg), kPoll);
}
}  // namespace

// PortFactory exists so PortAllocate can reach Port's private constructor
// through std::shared_ptr without making the constructor public.
struct PortFactory {
  static std::shared_ptr<Port> Make(std::string label) {
    auto port = std::shared_ptr<Port>(new Port(std::move(label)));
    PortGc::Instance().Register(port.get(), port);
    return port;
  }
};

Port::Port(std::string label)
    : id_(g_next_port_id.fetch_add(1, std::memory_order_relaxed)), label_(std::move(label)) {}

Port::~Port() { PortGc::Instance().Unregister(this); }

KernReturn Port::Enqueue(Message&& msg, Timeout timeout) {
  if (IpcFaultShouldOverflowEnqueue()) {
    // Simulated queue overflow. The caller's message — rights and all — is
    // destroyed through the ordinary path, exactly like a genuine kPortFull.
    return KernReturn::kPortFull;
  }
  // Before taking mu_: dropping a carried receive right cascades into that
  // port's MarkDead, which may be this very port.
  IpcFaultMutateRights(&msg);
  std::shared_ptr<PortSet> set_to_notify;
  {
    std::unique_lock<std::mutex> lock(mu_);
    bool ok = WaitFor(send_cv_, lock, timeout,
                      [this] { return dead_ || queue_.size() < backlog_; });
    if (dead_) {
      return KernReturn::kPortDead;
    }
    if (!ok) {
      return queue_.size() >= backlog_ ? KernReturn::kPortFull : KernReturn::kTimedOut;
    }
    queue_.push_back(std::move(msg));
    recv_cv_.notify_one();
    set_to_notify = set_.lock();
  }
  if (set_to_notify != nullptr) {
    set_to_notify->Notify();
  }
  return KernReturn::kSuccess;
}

Result<Message> Port::Dequeue(Timeout timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  bool ok = WaitFor(recv_cv_, lock, timeout, [this] { return dead_ || !queue_.empty(); });
  if (!queue_.empty()) {
    Message msg = std::move(queue_.front());
    queue_.pop_front();
    send_cv_.notify_one();
    return msg;
  }
  if (dead_) {
    return KernReturn::kPortDead;
  }
  if (timeout.has_value() && *timeout == std::chrono::milliseconds::zero()) {
    return KernReturn::kNoMessage;  // Poll found the queue empty.
  }
  return ok ? KernReturn::kNoMessage : KernReturn::kTimedOut;
}

Result<Message> Port::TryDequeue() {
  std::lock_guard<std::mutex> g(mu_);
  if (!queue_.empty()) {
    Message msg = std::move(queue_.front());
    queue_.pop_front();
    send_cv_.notify_one();
    return msg;
  }
  return dead_ ? KernReturn::kPortDead : KernReturn::kNoMessage;
}

PortStatus Port::Status() const {
  std::lock_guard<std::mutex> g(mu_);
  PortStatus st;
  st.num_msgs = queue_.size();
  st.backlog = backlog_;
  st.send_rights = send_refs_.load(std::memory_order_acquire);
  st.dead = dead_;
  st.enabled = !set_.expired();
  return st;
}

KernReturn Port::SetBacklog(size_t backlog) {
  if (backlog == 0) {
    return KernReturn::kInvalidArgument;
  }
  std::lock_guard<std::mutex> g(mu_);
  backlog_ = backlog;
  send_cv_.notify_all();
  return KernReturn::kSuccess;
}

void Port::RequestDeathNotification(SendRight notify_to) {
  bool already_dead = false;
  {
    std::lock_guard<std::mutex> g(mu_);
    if (dead_) {
      already_dead = true;
    } else {
      death_watchers_.push_back(std::move(notify_to));
      return;
    }
  }
  if (already_dead && notify_to) {
    Message msg(kMsgIdPortDeath);
    msg.PushU64(id_);
    DeliverNotification(std::move(notify_to), std::move(msg));
  }
}

void Port::AddDeathAction(std::function<void(uint64_t)> action) {
  if (!action) {
    return;
  }
  {
    std::lock_guard<std::mutex> g(mu_);
    if (!dead_) {
      death_actions_.push_back(std::move(action));
      return;
    }
  }
  action(id_);  // Already dead: fire synchronously, outside mu_.
}

void Port::RequestNoSendersNotification(SendRight notify_to) {
  bool fire_now = false;
  SendRight replaced;
  {
    std::lock_guard<std::mutex> g(mu_);
    if (dead_) {
      replaced = std::move(notify_to);  // Death already superseded no-senders.
    } else if (send_refs_.load(std::memory_order_acquire) == 0) {
      fire_now = true;
      replaced = std::move(no_senders_notify_);
    } else {
      replaced = std::exchange(no_senders_notify_, std::move(notify_to));
    }
  }
  // `replaced` dies here, outside mu_: destroying a right re-enters its port.
  if (fire_now && notify_to) {
    Message msg(kMsgIdNoSenders);
    msg.PushU64(id_);
    DeliverNotification(std::move(notify_to), std::move(msg));
  }
}

bool Port::dead() const {
  std::lock_guard<std::mutex> g(mu_);
  return dead_;
}

void Port::AddSendRef() { send_refs_.fetch_add(1, std::memory_order_acq_rel); }

void Port::ReleaseSendRef() {
  if (send_refs_.fetch_sub(1, std::memory_order_acq_rel) != 1) {
    return;
  }
  // The count hit zero. Re-check under the lock — MakeSendRight may have
  // resurrected it concurrently; delivery is therefore at-least-once, and
  // receivers treat a stale notification as advisory.
  SendRight notify;
  {
    std::lock_guard<std::mutex> g(mu_);
    if (!dead_ && send_refs_.load(std::memory_order_acquire) == 0) {
      notify = std::move(no_senders_notify_);
    }
  }
  // Zero-send transitions are when in-queue cycles become collectable.
  PortGc::Instance().NoteZeroSenders();
  if (notify) {
    Message msg(kMsgIdNoSenders);
    msg.PushU64(id_);
    DeliverNotification(std::move(notify), std::move(msg));
  }
}

void Port::ForEachGcRef(const std::function<void(const Port*)>& fn) const {
  std::lock_guard<std::mutex> g(mu_);
  auto visit_send = [&fn](const SendRight& r) {
    if (r.port() != nullptr) {
      fn(r.port().get());
    }
  };
  for (const Message& m : queue_) {
    visit_send(m.reply_port());
    for (const MsgItem& item : m.items()) {
      if (const auto* port_item = std::get_if<PortItem>(&item)) {
        visit_send(port_item->right);
      } else if (const auto* recv_item = std::get_if<ReceiveItem>(&item)) {
        if (recv_item->right.port() != nullptr) {
          fn(recv_item->right.port().get());
        }
      }
      // OolItem is opaque to IPC; any port reachable through one counts as
      // an external root, which only ever errs toward retention.
    }
  }
  for (const SendRight& w : death_watchers_) {
    visit_send(w);
  }
  visit_send(no_senders_notify_);
}

void Port::MarkDead() {
  std::deque<Message> drained;
  std::vector<SendRight> watchers;
  std::vector<std::function<void(uint64_t)>> actions;
  SendRight no_senders;
  {
    std::lock_guard<std::mutex> g(mu_);
    if (dead_) {
      return;
    }
    dead_ = true;
    drained.swap(queue_);
    watchers.swap(death_watchers_);
    actions.swap(death_actions_);
    no_senders = std::move(no_senders_notify_);
    recv_cv_.notify_all();
    send_cv_.notify_all();
  }
  // Destroy drained messages and fire notifications *outside* our lock:
  // message destruction may cascade into other ports' MarkDead, and a
  // queued message could even hold this port's own rights. Queued rights die
  // through their ordinary destructors, so *their* death / no-senders
  // notifications fire normally.
  drained.clear();
  for (SendRight& w : watchers) {
    Message msg(kMsgIdPortDeath);
    msg.PushU64(id_);
    // Best-effort: a full or dead notify port drops the notification.
    DeliverNotification(std::move(w), std::move(msg));
  }
  // Death actions run last: notification messages above are already queued,
  // so an action killing further ports cannot reorder ahead of them.
  for (auto& action : actions) {
    action(id_);
  }
  // `no_senders` is discarded unfired: death supersedes no-senders.
  MACH_LOG(kDebug) << "port " << id_ << " (" << label_ << ") died";
}

void Port::SetPortSet(std::shared_ptr<PortSet> set) {
  std::lock_guard<std::mutex> g(mu_);
  set_ = set;
}

// --- PortSet -----------------------------------------------------------

std::shared_ptr<PortSet> PortSet::Create() {
  return std::shared_ptr<PortSet>(new PortSet());
}

KernReturn PortSet::Add(const ReceiveRight& right) {
  if (!right.valid()) {
    return KernReturn::kInvalidCapability;
  }
  std::shared_ptr<Port> port = right.port();
  {
    std::lock_guard<std::mutex> g(mu_);
    if (std::find(members_.begin(), members_.end(), port) != members_.end()) {
      return KernReturn::kSuccess;  // Already enabled; idempotent.
    }
    members_.push_back(port);
  }
  port->SetPortSet(shared_from_this());
  Notify();  // It may already have queued messages.
  return KernReturn::kSuccess;
}

KernReturn PortSet::Remove(const ReceiveRight& right) {
  if (!right.valid()) {
    return KernReturn::kInvalidCapability;
  }
  std::shared_ptr<Port> port = right.port();
  {
    std::lock_guard<std::mutex> g(mu_);
    auto it = std::find(members_.begin(), members_.end(), port);
    if (it == members_.end()) {
      return KernReturn::kNotFound;
    }
    members_.erase(it);
  }
  port->SetPortSet(nullptr);
  return KernReturn::kSuccess;
}

Result<Message> PortSet::Receive(Timeout timeout) {
  Result<ReceivedMessage> r = ReceiveFrom(timeout);
  if (!r.ok()) {
    return r.status();
  }
  return std::move(std::move(r).value().message);
}

Result<PortSet::ReceivedMessage> PortSet::ReceiveFrom(Timeout timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    // Round-robin scan of members for a queued message.
    size_t n = members_.size();
    for (size_t i = 0; i < n; ++i) {
      size_t idx = (rotation_ + i) % n;
      std::shared_ptr<Port> port = members_[idx];
      Result<Message> msg = port->TryDequeue();
      if (msg.ok()) {
        rotation_ = (idx + 1) % n;
        return ReceivedMessage{std::move(msg).value(), port->id()};
      }
      if (msg.status() == KernReturn::kPortDead) {
        // Dead member: drop it from the set.
        members_.erase(members_.begin() + static_cast<long>(idx));
        n = members_.size();
        if (n == 0) {
          break;
        }
        --i;
      }
    }
    if (timeout.has_value() && *timeout == std::chrono::milliseconds::zero()) {
      return KernReturn::kNoMessage;
    }
    // Wait for an enqueue notification, then rescan.
    if (!timeout.has_value()) {
      cv_.wait(lock);
    } else if (cv_.wait_for(lock, *timeout) == std::cv_status::timeout) {
      return KernReturn::kTimedOut;
    }
  }
}

std::vector<uint64_t> PortSet::PortsWithMessages() const {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<uint64_t> ids;
  for (const auto& port : members_) {
    if (port->Status().num_msgs > 0) {
      ids.push_back(port->id());
    }
  }
  return ids;
}

size_t PortSet::member_count() const {
  std::lock_guard<std::mutex> g(mu_);
  return members_.size();
}

void PortSet::Notify() {
  std::lock_guard<std::mutex> g(mu_);
  cv_.notify_all();
}

// --- free functions ------------------------------------------------------

PortPair PortAllocate(std::string label) {
  std::shared_ptr<Port> port = PortFactory::Make(std::move(label));
  PortPair pair{ReceiveRight(port), SendRight(port)};
  PortGc::Instance().MaybeCollectOnAllocate();
  return pair;
}

KernReturn MsgSend(const SendRight& dest, Message&& msg, Timeout timeout) {
  if (!dest.valid()) {
    return KernReturn::kInvalidCapability;
  }
  return dest.port()->Enqueue(std::move(msg), timeout);
}

Result<Message> MsgReceive(ReceiveRight& from, Timeout timeout) {
  if (!from.valid()) {
    return KernReturn::kInvalidCapability;
  }
  return from.port()->Dequeue(timeout);
}

Result<Message> MsgRpc(const SendRight& dest, Message&& request, Timeout send_timeout,
                       Timeout receive_timeout) {
  PortPair reply = PortAllocate("rpc-reply");
  request.set_reply_port(reply.send);
  KernReturn kr = MsgSend(dest, std::move(request), send_timeout);
  if (!IsOk(kr)) {
    return kr;
  }
  return MsgReceive(reply.receive, receive_timeout);
}

// --- rights ------------------------------------------------------------

SendRight::SendRight(std::shared_ptr<Port> port) : port_(std::move(port)) {
  if (port_ != nullptr) {
    port_->AddSendRef();
  }
}

SendRight::SendRight(const SendRight& o) : port_(o.port_) {
  if (port_ != nullptr) {
    port_->AddSendRef();
  }
}

SendRight& SendRight::operator=(const SendRight& o) {
  if (this != &o) {
    // Acquire before releasing so a self-port assignment never dips to zero.
    std::shared_ptr<Port> old = std::move(port_);
    port_ = o.port_;
    if (port_ != nullptr) {
      port_->AddSendRef();
    }
    if (old != nullptr) {
      old->ReleaseSendRef();
    }
  }
  return *this;
}

SendRight& SendRight::operator=(SendRight&& o) noexcept {
  if (this != &o) {
    std::shared_ptr<Port> old = std::move(port_);
    port_ = std::move(o.port_);
    if (old != nullptr) {
      old->ReleaseSendRef();
    }
  }
  return *this;
}

SendRight::~SendRight() {
  if (port_ != nullptr) {
    port_->ReleaseSendRef();
  }
}

uint64_t SendRight::id() const { return port_ ? port_->id() : 0; }
std::string SendRight::label() const { return port_ ? port_->label() : std::string(); }
bool SendRight::IsDead() const { return port_ == nullptr || port_->dead(); }

ReceiveRight::~ReceiveRight() {
  if (port_ != nullptr) {
    port_->MarkDead();
  }
}

ReceiveRight& ReceiveRight::operator=(ReceiveRight&& o) noexcept {
  if (this != &o) {
    if (port_ != nullptr) {
      port_->MarkDead();
    }
    port_ = std::move(o.port_);
  }
  return *this;
}

uint64_t ReceiveRight::id() const { return port_ ? port_->id() : 0; }
std::string ReceiveRight::label() const { return port_ ? port_->label() : std::string(); }

SendRight ReceiveRight::MakeSendRight() const { return SendRight(port_); }

void ReceiveRight::Destroy() {
  if (port_ != nullptr) {
    port_->MarkDead();
    port_.reset();
  }
}

}  // namespace mach
