// Fault injection for the IPC layer (§6: a kernel hosting untrusted
// managers must survive hostile message traffic; §7: notifications ride the
// same queues as data and can be lost or delayed).
//
// Unlike disks and network links, ports are ambient — they are not owned by
// one kernel instance — so the IPC layer consults one process-wide injector
// installed with SetIpcFaultInjector. Points:
//
//   ipc.enqueue        msg_send observes a spuriously full queue and fails
//                      with kPortFull; any rights carried by the message are
//                      destroyed through the normal right-destruction path
//                      (firing death / no-senders notifications).
//   ipc.right_transfer consulted once per port right carried by a message as
//                      it is enqueued. A firing send right is *duplicated*
//                      (an extra counted copy is appended to the message); a
//                      firing receive right is *dropped* in transit (the
//                      carried right is destroyed, killing its port).
//   ipc.notify         a death or no-senders notification is not delivered
//                      inline but deferred to a pending list; it stays
//                      invisible until IpcDrainDelayedNotifications() (or
//                      disarming the injector) delivers it.
//
// All decisions come from FaultInjector's (seed, point, hit-index) contract,
// so adversarial schedules are replayable.

#ifndef SRC_IPC_IPC_FAULTS_H_
#define SRC_IPC_IPC_FAULTS_H_

#include <cstddef>

namespace mach {

class FaultInjector;
class Message;
class SendRight;

inline constexpr const char* kIpcFaultEnqueue = "ipc.enqueue";
inline constexpr const char* kIpcFaultRightTransfer = "ipc.right_transfer";
inline constexpr const char* kIpcFaultNotify = "ipc.notify";

// Installs (or, with nullptr, disarms) the injector consulted by the IPC hot
// paths. Disarming first delivers any notifications deferred by ipc.notify,
// so no notification is ever silently lost across an arm/disarm cycle.
// The injector must outlive its installation.
void SetIpcFaultInjector(FaultInjector* injector);
FaultInjector* GetIpcFaultInjector();

// Delivers (best-effort, non-blocking) every notification deferred by an
// armed ipc.notify point. Returns the number delivered.
size_t IpcDrainDelayedNotifications();
// Number of notifications currently held back by ipc.notify.
size_t IpcPendingDelayedNotificationCount();

// --- hooks used by the Port implementation (not for general use) ---------

// True when ipc.enqueue fires: the caller should fail the send with
// kPortFull as if the queue were at its backlog.
bool IpcFaultShouldOverflowEnqueue();

// Applies ipc.right_transfer to every right carried by `msg` (see above).
// Must be called while holding no port locks: dropping a receive right
// cascades into that port's death.
void IpcFaultMutateRights(Message* msg);

// If ipc.notify fires, takes ownership of (to, msg) onto the pending list
// and returns true; the caller must then skip inline delivery.
bool IpcFaultMaybeDeferNotification(SendRight& to, Message& msg);

}  // namespace mach

#endif  // SRC_IPC_IPC_FAULTS_H_
