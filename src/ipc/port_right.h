// Port rights (§3.2): access to a port is granted by holding a capability.
// A port may have any number of senders but only one receiver.
//
//  * SendRight    — copyable capability to enqueue messages. Every live
//                   SendRight instance (including copies riding inside
//                   queued messages) is counted by the port; when the count
//                   drops to zero the port fires a registered no-senders
//                   notification (see Port::RequestNoSendersNotification).
//  * ReceiveRight — move-only capability to dequeue; destroying the receive
//                   right destroys the port ("port death"), failing pending
//                   and future sends with kPortDead and firing registered
//                   death notifications.
//
// Rights are handles over a shared, kernel-internal Port object. This is the
// C++ shape of Mach's per-task port name spaces: a right *is* the
// capability, and passing one in a message transfers access.

#ifndef SRC_IPC_PORT_RIGHT_H_
#define SRC_IPC_PORT_RIGHT_H_

#include <cstdint>
#include <memory>
#include <string>

namespace mach {

class Port;

class SendRight {
 public:
  SendRight() = default;
  // Mints a new send reference against the port's count.
  explicit SendRight(std::shared_ptr<Port> port);
  SendRight(const SendRight& o);
  SendRight(SendRight&& o) noexcept = default;  // Steals o's reference.
  SendRight& operator=(const SendRight& o);
  SendRight& operator=(SendRight&& o) noexcept;
  ~SendRight();

  bool valid() const { return port_ != nullptr; }
  explicit operator bool() const { return valid(); }

  // Stable identity of the underlying port (0 for a null right). Two rights
  // name the same port iff their ids match.
  uint64_t id() const;
  std::string label() const;

  // True if the port has been destroyed (its receive right deallocated).
  bool IsDead() const;

  std::shared_ptr<Port> port() const { return port_; }

  friend bool operator==(const SendRight& a, const SendRight& b) { return a.port_ == b.port_; }

 private:
  std::shared_ptr<Port> port_;
};

class ReceiveRight {
 public:
  ReceiveRight() = default;
  explicit ReceiveRight(std::shared_ptr<Port> port) : port_(std::move(port)) {}
  ~ReceiveRight();

  ReceiveRight(ReceiveRight&& o) noexcept = default;
  ReceiveRight& operator=(ReceiveRight&& o) noexcept;
  ReceiveRight(const ReceiveRight&) = delete;
  ReceiveRight& operator=(const ReceiveRight&) = delete;

  bool valid() const { return port_ != nullptr; }
  explicit operator bool() const { return valid(); }

  uint64_t id() const;
  std::string label() const;

  // Derives a (copyable) send right to the same port.
  SendRight MakeSendRight() const;

  // Explicitly destroys the port now (equivalent to dropping the right).
  void Destroy();

  std::shared_ptr<Port> port() const { return port_; }

 private:
  friend class Port;

  std::shared_ptr<Port> port_;
};

}  // namespace mach

#endif  // SRC_IPC_PORT_RIGHT_H_
