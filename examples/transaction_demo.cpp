// Camelot-style transactions (§8.3): a tiny bank keeps its accounts in a
// recoverable virtual memory segment. Transfers are failure-atomic; a
// simulated crash loses all volatile state, and recovery from the
// write-ahead log restores exactly the committed balance sheet.
//
//   $ ./examples/transaction_demo

#include <cstdio>
#include <memory>

#include "src/kernel/kernel.h"
#include "src/kernel/task.h"
#include "src/managers/camelot/recovery_manager.h"

using namespace mach;

namespace {
constexpr VmSize kPage = 4096;
constexpr int kAccounts = 8;

uint64_t Balance(Task& task, const RecoverableSegment& seg, int account) {
  return task.ReadValue<uint64_t>(seg.base() + account * 64).value_or(0);
}

KernReturn Transfer(RecoveryManager* rm, const RecoverableSegment& seg, int from, int to,
                    uint64_t amount, bool fail_midway) {
  Transaction txn(rm);
  uint64_t from_balance = Balance(*seg.task(), seg, from);
  uint64_t to_balance = Balance(*seg.task(), seg, to);
  uint64_t new_from = from_balance - amount;
  txn.Write(seg, from * 64, &new_from, sizeof(new_from));
  if (fail_midway) {
    // Something went wrong between the two writes: abort undoes the debit.
    txn.Abort();
    return KernReturn::kAborted;
  }
  uint64_t new_to = to_balance + amount;
  txn.Write(seg, to * 64, &new_to, sizeof(new_to));
  return txn.Commit();
}
}  // namespace

int main() {
  Kernel::Config config;
  config.name = "bank-host";
  config.frames = 128;
  config.page_size = kPage;
  auto kernel = std::make_unique<Kernel>(config);
  // The recovery manager's permanent storage: a data disk and a log disk.
  SimDisk data_disk(1024, kPage, &kernel->clock());
  SimDisk log_disk(4096, 512, &kernel->clock());
  auto rm = std::make_unique<RecoveryManager>(&data_disk, &log_disk, kPage);
  rm->Start();

  std::shared_ptr<Task> bank = kernel->CreateTask(nullptr, "bank");
  RecoverableSegment ledger =
      RecoverableSegment::Map(rm.get(), bank.get(), "ledger", kPage).value();
  std::printf("ledger mapped at 0x%llx (recoverable segment %llu)\n",
              (unsigned long long)ledger.base(), (unsigned long long)ledger.id());

  // Seed the accounts with 1000 each, in one transaction.
  {
    Transaction txn(rm.get());
    for (int a = 0; a < kAccounts; ++a) {
      uint64_t initial = 1000;
      txn.Write(ledger, a * 64, &initial, sizeof(initial));
    }
    txn.Commit();
  }

  // A committed transfer, a deliberately aborted one, and a transfer that
  // commits but whose pages never reach disk before the crash.
  Transfer(rm.get(), ledger, 0, 1, 250, /*fail_midway=*/false);
  std::printf("transfer 0->1 of 250 committed: a0=%llu a1=%llu\n",
              (unsigned long long)Balance(*bank, ledger, 0),
              (unsigned long long)Balance(*bank, ledger, 1));
  Transfer(rm.get(), ledger, 2, 3, 999, /*fail_midway=*/true);
  std::printf("transfer 2->3 aborted midway: a2=%llu a3=%llu (restored)\n",
              (unsigned long long)Balance(*bank, ledger, 2),
              (unsigned long long)Balance(*bank, ledger, 3));
  Transfer(rm.get(), ledger, 4, 5, 100, /*fail_midway=*/false);

  uint64_t total_before = 0;
  for (int a = 0; a < kAccounts; ++a) {
    total_before += Balance(*bank, ledger, a);
  }
  std::printf("total before crash: %llu (forces=%llu wal-enforced=%llu)\n",
              (unsigned long long)total_before, (unsigned long long)rm->log_force_count(),
              (unsigned long long)rm->wal_enforced_count());

  // CRASH: every volatile thing dies — the kernel (and its page cache),
  // the task, the manager's log tail.
  std::printf("\n*** CRASH ***\n\n");
  rm->SimulateCrash();
  bank.reset();
  rm.reset();
  kernel.reset();

  // Reboot: fresh kernel and manager over the same two disks.
  auto kernel2 = std::make_unique<Kernel>(config);
  auto rm2 = std::make_unique<RecoveryManager>(&data_disk, &log_disk, kPage);
  rm2->Start();
  rm2->Recover();
  std::shared_ptr<Task> bank2 = kernel2->CreateTask(nullptr, "bank-rebooted");
  RecoverableSegment ledger2 =
      RecoverableSegment::Map(rm2.get(), bank2.get(), "ledger", kPage).value();

  uint64_t total_after = 0;
  for (int a = 0; a < kAccounts; ++a) {
    uint64_t balance = Balance(*bank2, ledger2, a);
    total_after += balance;
    std::printf("account %d: %llu\n", a, (unsigned long long)balance);
  }
  std::printf("total after recovery: %llu — %s\n", (unsigned long long)total_after,
              total_after == total_before ? "no money created or destroyed"
                                          : "ATOMICITY VIOLATED");
  bank2.reset();
  rm2->Stop();
  return total_after == total_before ? 0 : 1;
}
