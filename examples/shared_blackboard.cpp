// Agora-style shared blackboard (§8.4): hypotheses are posted to a
// consistent network-shared-memory region by agents on different "hosts",
// announced by messages, and evaluated in place. Shared memory carries the
// data; message passing carries the coordination — the duality in one
// program.
//
//   $ ./examples/shared_blackboard

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>

#include "src/kernel/kernel.h"
#include "src/kernel/task.h"
#include "src/managers/shm/shm_server.h"
#include "src/net/net_link.h"

using namespace mach;

namespace {
constexpr VmSize kPage = 4096;
constexpr int kHypotheses = 24;
// One hypothesis per page: §7 — efficiency of network shared memory depends
// on read/write locality, so the blackboard avoids false sharing.
constexpr VmSize kSlot = kPage;

std::unique_ptr<Kernel> MakeHost(const std::string& name) {
  Kernel::Config config;
  config.name = name;
  config.frames = 128;
  config.page_size = kPage;
  return std::make_unique<Kernel>(config);
}
}  // namespace

int main() {
  setvbuf(stdout, nullptr, _IOLBF, 0);
  // Two hosts connected by a NORMA-class network (hundreds of microseconds
  // per message, §7), plus the blackboard server.
  auto host_a = MakeHost("acoustic-host");
  auto host_b = MakeHost("semantic-host");
  SimClock net_clock;
  NetLink link(&host_a->vm(), &host_b->vm(), &net_clock, kNormaLatency);

  SharedMemoryServer blackboard_server(kPage);
  blackboard_server.Start();
  SendRight board = blackboard_server.GetRegion("blackboard", kHypotheses * kSlot);

  std::shared_ptr<Task> acoustic = host_a->CreateTask(nullptr, "acoustic-agent");
  std::shared_ptr<Task> semantic = host_b->CreateTask(nullptr, "semantic-agent");
  VmOffset board_a = acoustic->VmAllocateWithPager(kHypotheses * kSlot, board, 0).value();
  // The remote host reaches the same memory object through the network.
  VmOffset board_b =
      semantic->VmAllocateWithPager(kHypotheses * kSlot, link.ProxyForB(board), 0).value();

  PortPair announce = PortAllocate("hypothesis-announcements");
  SendRight announce_on_b = announce.send;

  std::printf("blackboard mapped: host A at 0x%llx, host B at 0x%llx\n",
              (unsigned long long)board_a, (unsigned long long)board_b);

  // The acoustic agent posts hypotheses into shared memory and announces
  // each with a message.
  std::shared_ptr<Thread> poster = acoustic->SpawnThread([&](Thread& self) {
    for (uint32_t i = 0; i < kHypotheses; ++i) {
      uint64_t hypothesis = 0xACC0000000000000ull | (i * 31 + 7);
      self.task().WriteValue<uint64_t>(board_a + i * kSlot, hypothesis);
      Message msg(1);
      msg.PushU32(i);
      MsgSend(announce_on_b, std::move(msg), std::chrono::seconds(5));
    }
  });

  // The semantic agent evaluates each announced hypothesis directly from
  // the (coherent) blackboard and writes its score beside it.
  std::atomic<int> scored{0};
  std::shared_ptr<Thread> evaluator = semantic->SpawnThread([&](Thread& self) {
    for (int n = 0; n < kHypotheses; ++n) {
      Result<Message> msg = MsgReceive(announce.receive, std::chrono::seconds(10));
      if (!msg.ok()) {
        return;
      }
      uint32_t slot = msg.value().TakeU32().value_or(0);
      uint64_t hypothesis = 0;
      for (int tries = 0; tries < 5000 && hypothesis == 0; ++tries) {
        hypothesis = self.task().ReadValue<uint64_t>(board_b + slot * kSlot).value_or(0);
        if (hypothesis == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
      uint64_t score = (hypothesis & 0xFFFF) % 97 + 1;  // Always nonzero.
      self.task().WriteValue<uint64_t>(board_b + slot * kSlot + 8, score);
      scored.fetch_add(1);
    }
  });

  poster->Join();
  evaluator->Join();

  // The acoustic agent reads the scores back through the same shared pages.
  int printed = 0;
  for (uint32_t i = 0; i < kHypotheses; ++i) {
    uint64_t score = 0;
    for (int tries = 0; tries < 5000; ++tries) {
      score = acoustic->ReadValue<uint64_t>(board_a + i * kSlot + 8).value_or(0);
      if (score != 0) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (printed < 5) {
      std::printf("hypothesis %2u scored %llu\n", i, (unsigned long long)score);
      ++printed;
    }
  }
  std::printf("... %d hypotheses evaluated across two hosts\n", scored.load());
  std::printf("coherence traffic: %llu reads granted, %llu writes granted, "
              "%llu invalidations, %llu recalls\n",
              (unsigned long long)blackboard_server.read_grants(),
              (unsigned long long)blackboard_server.write_grants(),
              (unsigned long long)blackboard_server.invalidations(),
              (unsigned long long)blackboard_server.recalls());
  std::printf("network: %llu messages, %llu bytes, %.2f ms simulated wire time\n",
              (unsigned long long)link.messages_forwarded(),
              (unsigned long long)link.bytes_forwarded(), net_clock.NowNs() / 1e6);

  acoustic.reset();
  semantic.reset();
  blackboard_server.Stop();
  return 0;
}
