// Quickstart: boot a kernel, create tasks, use IPC, map a file from the
// minimal filesystem server, modify it, and write it back — the §4.1 usage
// example end to end.
//
//   $ ./examples/quickstart

#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/kernel/task.h"
#include "src/managers/fs/fs_server.h"

using namespace mach;

int main() {
  // 1. Boot a host: physical memory, paging disk, VM system, default pager.
  Kernel::Config config;
  config.name = "quickstart";
  config.frames = 256;        // 1 MB of physical memory.
  config.page_size = 4096;
  Kernel kernel(config);
  std::printf("booted kernel '%s': %u frames of %llu bytes\n", kernel.name().c_str(),
              kernel.phys().frame_count(), (unsigned long long)kernel.page_size());

  // 2. Tasks and threads (§3.1) and a message round trip (§3.2).
  std::shared_ptr<Task> server = kernel.CreateTask(nullptr, "echo-server");
  std::shared_ptr<Task> client = kernel.CreateTask(nullptr, "client");
  PortPair service = server->PortAllocate("echo");
  std::shared_ptr<Port> service_port = service.receive.port();
  std::shared_ptr<Thread> echo = server->SpawnThread([service_port](Thread&) {
    Result<Message> req = service_port->Dequeue(std::chrono::seconds(5));
    if (req.ok()) {
      Message reply(req.value().id());
      reply.PushString("pong: " + req.value().TakeString().value_or("?"));
      MsgSend(req.value().reply_port(), std::move(reply));
    }
  });
  Message ping(1);
  ping.PushString("ping");
  Result<Message> pong = MsgRpc(service.send, std::move(ping));
  std::printf("rpc reply: %s\n", pong.value().TakeString().value().c_str());
  echo->Join();

  // 3. Virtual memory (Table 3-3): allocate, write, protect.
  VmOffset mem = client->VmAllocate(8 * 4096).value();
  const char note[] = "memory and communication are duals";
  client->Write(mem, note, sizeof(note));
  char readback[64] = {};
  client->Read(mem, readback, sizeof(note));
  std::printf("vm round trip: %s\n", readback);

  // 4. The §4.1 filesystem: read-whole-file / write-whole-file backed by an
  // external pager.
  SimDisk fs_disk(1024, 4096, &kernel.clock());
  FsServer fs(&kernel, &fs_disk);
  fs.StartServer();
  FsClient files(client.get(), fs.service_port());

  files.Create("greeting");
  const std::string contents = "Hello from the Mach external pager!";
  VmOffset buf = client->VmAllocate(4096).value();
  client->Write(buf, contents.data(), contents.size());
  files.WriteFile("greeting", buf, contents.size());

  // fs_read_file returns new copy-on-write virtual memory (§4.1).
  FsClient::ReadResult file = files.ReadFile("greeting").value();
  std::vector<char> data(file.size + 1, 0);
  client->Read(file.address, data.data(), file.size);
  std::printf("file contents (%llu bytes, mapped at 0x%llx): %s\n",
              (unsigned long long)file.size, (unsigned long long)file.address, data.data());

  // Randomly change the contents — other readers still see the original
  // (copy-on-write), until we explicitly store the changes back.
  std::mt19937 rng(42);
  for (int i = 0; i < 5; ++i) {
    VmOffset at = file.address + rng() % file.size;
    char c = 'A' + static_cast<char>(rng() % 26);
    client->Write(at, &c, 1);
  }
  files.WriteFile("greeting", file.address, file.size);
  FsClient::ReadResult changed = files.ReadFile("greeting").value();
  client->Read(changed.address, data.data(), changed.size);
  std::printf("after random changes:      %s\n", data.data());

  // 5. Kernel statistics (vm_statistics).
  VmStatistics st = client->VmStats();
  std::printf("stats: faults=%llu zero_fills=%llu pageins=%llu hits=%llu/%llu lookups\n",
              (unsigned long long)st.faults, (unsigned long long)st.zero_fill_count,
              (unsigned long long)st.pageins, (unsigned long long)st.hits,
              (unsigned long long)st.lookups);

  client.reset();
  server.reset();
  fs.StopServer();
  std::printf("done.\n");
  return 0;
}
