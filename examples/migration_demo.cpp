// Copy-on-reference task migration (§8.2): a working task is frozen on one
// host, its address space is represented by memory objects, and a new task
// on another host resumes the computation — pages move across the (NORMA)
// network only as they are referenced.
//
//   $ ./examples/migration_demo

#include <cstdio>
#include <memory>
#include <string>

#include "src/kernel/kernel.h"
#include "src/kernel/task.h"
#include "src/managers/migrate/migration_manager.h"
#include "src/net/net_link.h"

using namespace mach;

namespace {
constexpr VmSize kPage = 4096;

std::unique_ptr<Kernel> MakeHost(const std::string& name) {
  Kernel::Config config;
  config.name = name;
  config.frames = 256;
  config.page_size = kPage;
  return std::make_unique<Kernel>(config);
}
}  // namespace

int main() {
  auto origin = MakeHost("origin");
  auto destination = MakeHost("destination");
  SimClock net_clock;
  NetLink link(&origin->vm(), &destination->vm(), &net_clock, kNormaLatency);

  // A task with a 64-page address space: a big lookup table plus a small
  // hot working area.
  std::shared_ptr<Task> worker = origin->CreateTask(nullptr, "worker");
  constexpr VmSize kTablePages = 60;
  VmOffset table = worker->VmAllocate(kTablePages * kPage).value();
  for (VmOffset p = 0; p < kTablePages; ++p) {
    worker->WriteValue<uint64_t>(table + p * kPage, p * p);
  }
  VmOffset state = worker->VmAllocate(kPage).value();
  worker->WriteValue<uint64_t>(state, 0);      // accumulator
  worker->WriteValue<uint64_t>(state + 8, 0);  // next index

  // Run a bit of the computation on the origin host.
  std::shared_ptr<Thread> phase1 = worker->SpawnThread([&](Thread& self) {
    uint64_t acc = 0;
    for (uint64_t i = 0; i < 10; ++i) {
      acc += self.task().ReadValue<uint64_t>(table + i * kPage).value_or(0);
    }
    self.task().WriteValue<uint64_t>(state, acc);
    self.task().WriteValue<uint64_t>(state + 8, 10);
  });
  phase1->Join();
  std::printf("phase 1 on %s: accumulated %llu over 10 pages\n", origin->name().c_str(),
              (unsigned long long)worker->ReadValue<uint64_t>(state).value());

  // Migrate by copy-on-reference across the network link.
  MigrationManager migrator;
  migrator.Start();
  MigrationManager::Options options;
  options.strategy = MigrationManager::Strategy::kCopyOnReference;
  options.export_port = [&](SendRight object) { return link.ProxyForB(std::move(object)); };
  std::shared_ptr<Task> moved = migrator.Migrate(worker, destination.get(), options).value();
  std::printf("migrated to %s: %llu pages moved so far (of %llu total)\n",
              destination->name().c_str(), (unsigned long long)migrator.pages_transferred(),
              (unsigned long long)(kTablePages + 1));

  // Resume: the migrated task touches only 10 more table pages; only those
  // (plus the state page) cross the network.
  std::shared_ptr<Thread> phase2 = moved->SpawnThread([&](Thread& self) {
    uint64_t acc = self.task().ReadValue<uint64_t>(state).value_or(0);
    uint64_t next = self.task().ReadValue<uint64_t>(state + 8).value_or(0);
    for (uint64_t i = next; i < next + 10; ++i) {
      acc += self.task().ReadValue<uint64_t>(table + i * kPage).value_or(0);
    }
    self.task().WriteValue<uint64_t>(state, acc);
    self.task().WriteValue<uint64_t>(state + 8, next + 10);
  });
  phase2->Join();

  uint64_t expect = 0;
  for (uint64_t i = 0; i < 20; ++i) {
    expect += i * i;
  }
  uint64_t got = moved->ReadValue<uint64_t>(state).value();
  std::printf("phase 2 on %s: accumulator=%llu (expected %llu) %s\n",
              destination->name().c_str(), (unsigned long long)got,
              (unsigned long long)expect, got == expect ? "OK" : "MISMATCH");
  std::printf("copy-on-reference moved %llu pages, %llu demand requests; "
              "%.2f ms simulated wire time\n",
              (unsigned long long)migrator.pages_transferred(),
              (unsigned long long)migrator.demand_requests(), net_clock.NowNs() / 1e6);
  std::printf("(an eager migration would have moved all %llu pages up front)\n",
              (unsigned long long)(kTablePages + 1));

  moved.reset();
  worker.reset();
  migrator.Stop();
  return 0;
}
