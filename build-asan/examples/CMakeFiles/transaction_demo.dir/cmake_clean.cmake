file(REMOVE_RECURSE
  "CMakeFiles/transaction_demo.dir/transaction_demo.cpp.o"
  "CMakeFiles/transaction_demo.dir/transaction_demo.cpp.o.d"
  "transaction_demo"
  "transaction_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transaction_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
