# Empty dependencies file for transaction_demo.
# This may be replaced when dependencies are built.
