file(REMOVE_RECURSE
  "CMakeFiles/shared_blackboard.dir/shared_blackboard.cpp.o"
  "CMakeFiles/shared_blackboard.dir/shared_blackboard.cpp.o.d"
  "shared_blackboard"
  "shared_blackboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_blackboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
