# Empty compiler generated dependencies file for shared_blackboard.
# This may be replaced when dependencies are built.
