file(REMOVE_RECURSE
  "CMakeFiles/mach_ipc.dir/message.cc.o"
  "CMakeFiles/mach_ipc.dir/message.cc.o.d"
  "CMakeFiles/mach_ipc.dir/port.cc.o"
  "CMakeFiles/mach_ipc.dir/port.cc.o.d"
  "libmach_ipc.a"
  "libmach_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mach_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
