# Empty dependencies file for mach_ipc.
# This may be replaced when dependencies are built.
