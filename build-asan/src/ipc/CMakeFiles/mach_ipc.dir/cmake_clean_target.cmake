file(REMOVE_RECURSE
  "libmach_ipc.a"
)
