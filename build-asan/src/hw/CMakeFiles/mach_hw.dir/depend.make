# Empty dependencies file for mach_hw.
# This may be replaced when dependencies are built.
