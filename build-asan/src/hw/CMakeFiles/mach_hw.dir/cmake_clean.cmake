file(REMOVE_RECURSE
  "CMakeFiles/mach_hw.dir/physical_memory.cc.o"
  "CMakeFiles/mach_hw.dir/physical_memory.cc.o.d"
  "CMakeFiles/mach_hw.dir/pmap.cc.o"
  "CMakeFiles/mach_hw.dir/pmap.cc.o.d"
  "CMakeFiles/mach_hw.dir/sim_disk.cc.o"
  "CMakeFiles/mach_hw.dir/sim_disk.cc.o.d"
  "libmach_hw.a"
  "libmach_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mach_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
