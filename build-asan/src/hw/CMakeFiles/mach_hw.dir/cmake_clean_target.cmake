file(REMOVE_RECURSE
  "libmach_hw.a"
)
