
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/physical_memory.cc" "src/hw/CMakeFiles/mach_hw.dir/physical_memory.cc.o" "gcc" "src/hw/CMakeFiles/mach_hw.dir/physical_memory.cc.o.d"
  "/root/repo/src/hw/pmap.cc" "src/hw/CMakeFiles/mach_hw.dir/pmap.cc.o" "gcc" "src/hw/CMakeFiles/mach_hw.dir/pmap.cc.o.d"
  "/root/repo/src/hw/sim_disk.cc" "src/hw/CMakeFiles/mach_hw.dir/sim_disk.cc.o" "gcc" "src/hw/CMakeFiles/mach_hw.dir/sim_disk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/base/CMakeFiles/mach_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
