file(REMOVE_RECURSE
  "libmach_net.a"
)
