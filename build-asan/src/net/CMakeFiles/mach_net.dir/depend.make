# Empty dependencies file for mach_net.
# This may be replaced when dependencies are built.
