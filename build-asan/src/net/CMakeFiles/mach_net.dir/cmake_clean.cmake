file(REMOVE_RECURSE
  "CMakeFiles/mach_net.dir/net_link.cc.o"
  "CMakeFiles/mach_net.dir/net_link.cc.o.d"
  "libmach_net.a"
  "libmach_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mach_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
