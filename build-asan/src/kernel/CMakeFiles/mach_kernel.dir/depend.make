# Empty dependencies file for mach_kernel.
# This may be replaced when dependencies are built.
