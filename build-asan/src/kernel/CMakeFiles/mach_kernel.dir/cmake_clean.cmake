file(REMOVE_RECURSE
  "CMakeFiles/mach_kernel.dir/kernel.cc.o"
  "CMakeFiles/mach_kernel.dir/kernel.cc.o.d"
  "CMakeFiles/mach_kernel.dir/kernel_server.cc.o"
  "CMakeFiles/mach_kernel.dir/kernel_server.cc.o.d"
  "CMakeFiles/mach_kernel.dir/task.cc.o"
  "CMakeFiles/mach_kernel.dir/task.cc.o.d"
  "libmach_kernel.a"
  "libmach_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mach_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
