file(REMOVE_RECURSE
  "libmach_kernel.a"
)
