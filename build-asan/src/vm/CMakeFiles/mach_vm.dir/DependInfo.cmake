
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/address_map.cc" "src/vm/CMakeFiles/mach_vm.dir/address_map.cc.o" "gcc" "src/vm/CMakeFiles/mach_vm.dir/address_map.cc.o.d"
  "/root/repo/src/vm/vm_fault.cc" "src/vm/CMakeFiles/mach_vm.dir/vm_fault.cc.o" "gcc" "src/vm/CMakeFiles/mach_vm.dir/vm_fault.cc.o.d"
  "/root/repo/src/vm/vm_object.cc" "src/vm/CMakeFiles/mach_vm.dir/vm_object.cc.o" "gcc" "src/vm/CMakeFiles/mach_vm.dir/vm_object.cc.o.d"
  "/root/repo/src/vm/vm_pageout.cc" "src/vm/CMakeFiles/mach_vm.dir/vm_pageout.cc.o" "gcc" "src/vm/CMakeFiles/mach_vm.dir/vm_pageout.cc.o.d"
  "/root/repo/src/vm/vm_system.cc" "src/vm/CMakeFiles/mach_vm.dir/vm_system.cc.o" "gcc" "src/vm/CMakeFiles/mach_vm.dir/vm_system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/base/CMakeFiles/mach_base.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/hw/CMakeFiles/mach_hw.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/ipc/CMakeFiles/mach_ipc.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/pager/CMakeFiles/mach_pager_protocol.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
