file(REMOVE_RECURSE
  "CMakeFiles/mach_vm.dir/address_map.cc.o"
  "CMakeFiles/mach_vm.dir/address_map.cc.o.d"
  "CMakeFiles/mach_vm.dir/vm_fault.cc.o"
  "CMakeFiles/mach_vm.dir/vm_fault.cc.o.d"
  "CMakeFiles/mach_vm.dir/vm_object.cc.o"
  "CMakeFiles/mach_vm.dir/vm_object.cc.o.d"
  "CMakeFiles/mach_vm.dir/vm_pageout.cc.o"
  "CMakeFiles/mach_vm.dir/vm_pageout.cc.o.d"
  "CMakeFiles/mach_vm.dir/vm_system.cc.o"
  "CMakeFiles/mach_vm.dir/vm_system.cc.o.d"
  "libmach_vm.a"
  "libmach_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mach_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
