# Empty dependencies file for mach_vm.
# This may be replaced when dependencies are built.
