file(REMOVE_RECURSE
  "libmach_vm.a"
)
