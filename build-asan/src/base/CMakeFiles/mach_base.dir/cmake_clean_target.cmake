file(REMOVE_RECURSE
  "libmach_base.a"
)
