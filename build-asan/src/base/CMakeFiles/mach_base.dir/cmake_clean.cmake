file(REMOVE_RECURSE
  "CMakeFiles/mach_base.dir/fault_injector.cc.o"
  "CMakeFiles/mach_base.dir/fault_injector.cc.o.d"
  "CMakeFiles/mach_base.dir/kern_return.cc.o"
  "CMakeFiles/mach_base.dir/kern_return.cc.o.d"
  "CMakeFiles/mach_base.dir/log.cc.o"
  "CMakeFiles/mach_base.dir/log.cc.o.d"
  "libmach_base.a"
  "libmach_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mach_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
