# Empty dependencies file for mach_base.
# This may be replaced when dependencies are built.
