file(REMOVE_RECURSE
  "CMakeFiles/mach_managers.dir/camelot/recovery_manager.cc.o"
  "CMakeFiles/mach_managers.dir/camelot/recovery_manager.cc.o.d"
  "CMakeFiles/mach_managers.dir/camelot/wal.cc.o"
  "CMakeFiles/mach_managers.dir/camelot/wal.cc.o.d"
  "CMakeFiles/mach_managers.dir/fs/fs_server.cc.o"
  "CMakeFiles/mach_managers.dir/fs/fs_server.cc.o.d"
  "CMakeFiles/mach_managers.dir/mfs/mapped_file.cc.o"
  "CMakeFiles/mach_managers.dir/mfs/mapped_file.cc.o.d"
  "CMakeFiles/mach_managers.dir/mfs/traditional_io.cc.o"
  "CMakeFiles/mach_managers.dir/mfs/traditional_io.cc.o.d"
  "CMakeFiles/mach_managers.dir/migrate/migration_manager.cc.o"
  "CMakeFiles/mach_managers.dir/migrate/migration_manager.cc.o.d"
  "CMakeFiles/mach_managers.dir/shm/shm_server.cc.o"
  "CMakeFiles/mach_managers.dir/shm/shm_server.cc.o.d"
  "libmach_managers.a"
  "libmach_managers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mach_managers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
