# Empty dependencies file for mach_managers.
# This may be replaced when dependencies are built.
