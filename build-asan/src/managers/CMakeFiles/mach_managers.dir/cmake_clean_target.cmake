file(REMOVE_RECURSE
  "libmach_managers.a"
)
