file(REMOVE_RECURSE
  "CMakeFiles/mach_pager.dir/data_manager.cc.o"
  "CMakeFiles/mach_pager.dir/data_manager.cc.o.d"
  "CMakeFiles/mach_pager.dir/default_pager.cc.o"
  "CMakeFiles/mach_pager.dir/default_pager.cc.o.d"
  "libmach_pager.a"
  "libmach_pager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mach_pager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
