file(REMOVE_RECURSE
  "libmach_pager.a"
)
