# Empty dependencies file for mach_pager.
# This may be replaced when dependencies are built.
