file(REMOVE_RECURSE
  "libmach_pager_protocol.a"
)
