# Empty dependencies file for mach_pager_protocol.
# This may be replaced when dependencies are built.
