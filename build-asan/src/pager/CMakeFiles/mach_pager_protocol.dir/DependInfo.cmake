
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pager/protocol.cc" "src/pager/CMakeFiles/mach_pager_protocol.dir/protocol.cc.o" "gcc" "src/pager/CMakeFiles/mach_pager_protocol.dir/protocol.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/base/CMakeFiles/mach_base.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/ipc/CMakeFiles/mach_ipc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
