file(REMOVE_RECURSE
  "CMakeFiles/mach_pager_protocol.dir/protocol.cc.o"
  "CMakeFiles/mach_pager_protocol.dir/protocol.cc.o.d"
  "libmach_pager_protocol.a"
  "libmach_pager_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mach_pager_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
