file(REMOVE_RECURSE
  "CMakeFiles/shm_property_test.dir/shm_property_test.cc.o"
  "CMakeFiles/shm_property_test.dir/shm_property_test.cc.o.d"
  "shm_property_test"
  "shm_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shm_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
