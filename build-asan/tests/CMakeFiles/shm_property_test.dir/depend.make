# Empty dependencies file for shm_property_test.
# This may be replaced when dependencies are built.
