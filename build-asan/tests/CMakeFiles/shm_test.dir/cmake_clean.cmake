file(REMOVE_RECURSE
  "CMakeFiles/shm_test.dir/shm_test.cc.o"
  "CMakeFiles/shm_test.dir/shm_test.cc.o.d"
  "shm_test"
  "shm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
