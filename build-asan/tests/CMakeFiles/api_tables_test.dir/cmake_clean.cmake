file(REMOVE_RECURSE
  "CMakeFiles/api_tables_test.dir/api_tables_test.cc.o"
  "CMakeFiles/api_tables_test.dir/api_tables_test.cc.o.d"
  "api_tables_test"
  "api_tables_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/api_tables_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
