# Empty dependencies file for api_tables_test.
# This may be replaced when dependencies are built.
