# Empty compiler generated dependencies file for kernel_server_test.
# This may be replaced when dependencies are built.
