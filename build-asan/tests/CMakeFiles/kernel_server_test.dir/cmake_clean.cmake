file(REMOVE_RECURSE
  "CMakeFiles/kernel_server_test.dir/kernel_server_test.cc.o"
  "CMakeFiles/kernel_server_test.dir/kernel_server_test.cc.o.d"
  "kernel_server_test"
  "kernel_server_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
