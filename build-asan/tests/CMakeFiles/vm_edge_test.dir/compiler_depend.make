# Empty compiler generated dependencies file for vm_edge_test.
# This may be replaced when dependencies are built.
