file(REMOVE_RECURSE
  "CMakeFiles/vm_edge_test.dir/vm_edge_test.cc.o"
  "CMakeFiles/vm_edge_test.dir/vm_edge_test.cc.o.d"
  "vm_edge_test"
  "vm_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
