file(REMOVE_RECURSE
  "CMakeFiles/migrate_test.dir/migrate_test.cc.o"
  "CMakeFiles/migrate_test.dir/migrate_test.cc.o.d"
  "migrate_test"
  "migrate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migrate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
