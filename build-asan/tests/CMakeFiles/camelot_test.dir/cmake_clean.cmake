file(REMOVE_RECURSE
  "CMakeFiles/camelot_test.dir/camelot_test.cc.o"
  "CMakeFiles/camelot_test.dir/camelot_test.cc.o.d"
  "camelot_test"
  "camelot_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camelot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
