# Empty dependencies file for camelot_test.
# This may be replaced when dependencies are built.
