# Empty dependencies file for bench_compile_cache.
# This may be replaced when dependencies are built.
