file(REMOVE_RECURSE
  "CMakeFiles/bench_compile_cache.dir/bench_compile_cache.cc.o"
  "CMakeFiles/bench_compile_cache.dir/bench_compile_cache.cc.o.d"
  "bench_compile_cache"
  "bench_compile_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compile_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
