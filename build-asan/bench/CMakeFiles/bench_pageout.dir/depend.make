# Empty dependencies file for bench_pageout.
# This may be replaced when dependencies are built.
