file(REMOVE_RECURSE
  "CMakeFiles/bench_pageout.dir/bench_pageout.cc.o"
  "CMakeFiles/bench_pageout.dir/bench_pageout.cc.o.d"
  "bench_pageout"
  "bench_pageout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pageout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
