file(REMOVE_RECURSE
  "CMakeFiles/bench_fault_path.dir/bench_fault_path.cc.o"
  "CMakeFiles/bench_fault_path.dir/bench_fault_path.cc.o.d"
  "bench_fault_path"
  "bench_fault_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fault_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
