# Empty dependencies file for bench_fault_path.
# This may be replaced when dependencies are built.
