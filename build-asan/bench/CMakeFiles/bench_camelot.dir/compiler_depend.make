# Empty compiler generated dependencies file for bench_camelot.
# This may be replaced when dependencies are built.
