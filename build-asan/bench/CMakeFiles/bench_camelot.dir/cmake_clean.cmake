file(REMOVE_RECURSE
  "CMakeFiles/bench_camelot.dir/bench_camelot.cc.o"
  "CMakeFiles/bench_camelot.dir/bench_camelot.cc.o.d"
  "bench_camelot"
  "bench_camelot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_camelot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
