file(REMOVE_RECURSE
  "CMakeFiles/bench_io_reduction.dir/bench_io_reduction.cc.o"
  "CMakeFiles/bench_io_reduction.dir/bench_io_reduction.cc.o.d"
  "bench_io_reduction"
  "bench_io_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_io_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
