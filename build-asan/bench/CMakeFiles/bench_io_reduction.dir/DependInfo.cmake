
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_io_reduction.cc" "bench/CMakeFiles/bench_io_reduction.dir/bench_io_reduction.cc.o" "gcc" "bench/CMakeFiles/bench_io_reduction.dir/bench_io_reduction.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/managers/CMakeFiles/mach_managers.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/kernel/CMakeFiles/mach_kernel.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/pager/CMakeFiles/mach_pager.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/net/CMakeFiles/mach_net.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/vm/CMakeFiles/mach_vm.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/hw/CMakeFiles/mach_hw.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/pager/CMakeFiles/mach_pager_protocol.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/ipc/CMakeFiles/mach_ipc.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/base/CMakeFiles/mach_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
