# Empty dependencies file for bench_io_reduction.
# This may be replaced when dependencies are built.
