# Empty compiler generated dependencies file for bench_shm_coherence.
# This may be replaced when dependencies are built.
