file(REMOVE_RECURSE
  "CMakeFiles/bench_shm_coherence.dir/bench_shm_coherence.cc.o"
  "CMakeFiles/bench_shm_coherence.dir/bench_shm_coherence.cc.o.d"
  "bench_shm_coherence"
  "bench_shm_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shm_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
