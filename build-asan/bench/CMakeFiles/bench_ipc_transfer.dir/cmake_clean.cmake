file(REMOVE_RECURSE
  "CMakeFiles/bench_ipc_transfer.dir/bench_ipc_transfer.cc.o"
  "CMakeFiles/bench_ipc_transfer.dir/bench_ipc_transfer.cc.o.d"
  "bench_ipc_transfer"
  "bench_ipc_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ipc_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
