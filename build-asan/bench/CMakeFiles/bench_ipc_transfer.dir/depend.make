# Empty dependencies file for bench_ipc_transfer.
# This may be replaced when dependencies are built.
