// Unit tests for src/base: status codes, Result, intrusive list, sync
// helpers, page rounding, and the virtual clock.

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <unordered_set>
#include <vector>

#include "src/base/fault_injector.h"
#include "src/base/hash.h"
#include "src/base/histogram.h"
#include "src/base/intrusive_list.h"
#include "src/base/kern_return.h"
#include "src/base/sim_clock.h"
#include "src/base/sync.h"
#include "src/base/vm_types.h"

namespace mach {
namespace {

TEST(KernReturnTest, SuccessIsOk) {
  EXPECT_TRUE(IsOk(KernReturn::kSuccess));
  EXPECT_FALSE(IsOk(KernReturn::kFailure));
}

TEST(KernReturnTest, NamesAreStable) {
  EXPECT_STREQ(KernReturnName(KernReturn::kSuccess), "KERN_SUCCESS");
  EXPECT_STREQ(KernReturnName(KernReturn::kInvalidAddress), "KERN_INVALID_ADDRESS");
  EXPECT_STREQ(KernReturnName(KernReturn::kProtectionFailure), "KERN_PROTECTION_FAILURE");
  EXPECT_STREQ(KernReturnName(KernReturn::kPortDead), "MSG_PORT_DEAD");
  EXPECT_STREQ(KernReturnName(KernReturn::kTimedOut), "MSG_TIMED_OUT");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.status(), KernReturn::kSuccess);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = KernReturn::kNoSpace;
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status(), KernReturn::kNoSpace);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(VmTypesTest, PageRounding) {
  EXPECT_EQ(TruncPage(0, 4096), 0u);
  EXPECT_EQ(TruncPage(4095, 4096), 0u);
  EXPECT_EQ(TruncPage(4096, 4096), 4096u);
  EXPECT_EQ(RoundPage(0, 4096), 0u);
  EXPECT_EQ(RoundPage(1, 4096), 4096u);
  EXPECT_EQ(RoundPage(4096, 4096), 4096u);
  EXPECT_EQ(RoundPage(4097, 4096), 8192u);
}

TEST(VmTypesTest, ProtBits) {
  EXPECT_EQ(kVmProtDefault, kVmProtRead | kVmProtWrite);
  EXPECT_EQ(kVmProtAll & kVmProtExecute, kVmProtExecute);
  EXPECT_EQ(kVmProtNone, 0u);
}

struct ListElem {
  int value = 0;
  IntrusiveListNode node_a;
  IntrusiveListNode node_b;
};

using ListA = IntrusiveList<ListElem, &ListElem::node_a>;
using ListB = IntrusiveList<ListElem, &ListElem::node_b>;

TEST(IntrusiveListTest, PushPopFifo) {
  ListA list;
  ListElem e1{1}, e2{2}, e3{3};
  list.PushBack(&e1);
  list.PushBack(&e2);
  list.PushBack(&e3);
  EXPECT_EQ(list.size(), 3u);
  EXPECT_EQ(list.PopFront()->value, 1);
  EXPECT_EQ(list.PopFront()->value, 2);
  EXPECT_EQ(list.PopFront()->value, 3);
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.PopFront(), nullptr);
}

TEST(IntrusiveListTest, PushFrontLifo) {
  ListA list;
  ListElem e1{1}, e2{2};
  list.PushFront(&e1);
  list.PushFront(&e2);
  EXPECT_EQ(list.Front()->value, 2);
  EXPECT_EQ(list.Back()->value, 1);
}

TEST(IntrusiveListTest, RemoveMiddle) {
  ListA list;
  ListElem e1{1}, e2{2}, e3{3};
  list.PushBack(&e1);
  list.PushBack(&e2);
  list.PushBack(&e3);
  list.Remove(&e2);
  EXPECT_EQ(list.size(), 2u);
  EXPECT_FALSE(list.Contains(&e2));
  EXPECT_TRUE(list.Contains(&e1));
  EXPECT_EQ(list.PopFront()->value, 1);
  EXPECT_EQ(list.PopFront()->value, 3);
}

TEST(IntrusiveListTest, ElementOnTwoLists) {
  ListA a;
  ListB b;
  ListElem e{9};
  a.PushBack(&e);
  b.PushBack(&e);
  EXPECT_TRUE(a.Contains(&e));
  EXPECT_TRUE(b.Contains(&e));
  a.Remove(&e);
  EXPECT_FALSE(a.Contains(&e));
  EXPECT_TRUE(b.Contains(&e));
  EXPECT_EQ(b.Front()->value, 9);
  b.Remove(&e);
}

TEST(IntrusiveListTest, IterationOrder) {
  ListA list;
  ListElem e[5];
  for (int i = 0; i < 5; ++i) {
    e[i].value = i;
    list.PushBack(&e[i]);
  }
  int expect = 0;
  for (ListElem* elem : list) {
    EXPECT_EQ(elem->value, expect++);
  }
  EXPECT_EQ(expect, 5);
}

TEST(IntrusiveListTest, ForEachAllowsRemoval) {
  ListA list;
  ListElem e[6];
  for (int i = 0; i < 6; ++i) {
    e[i].value = i;
    list.PushBack(&e[i]);
  }
  list.ForEach([&](ListElem* elem) {
    if (elem->value % 2 == 0) {
      list.Remove(elem);
    }
  });
  EXPECT_EQ(list.size(), 3u);
  EXPECT_EQ(list.PopFront()->value, 1);
  EXPECT_EQ(list.PopFront()->value, 3);
  EXPECT_EQ(list.PopFront()->value, 5);
}

TEST(SyncTest, EventSignalBeforeWait) {
  Event ev;
  ev.Signal();
  EXPECT_TRUE(ev.Wait(std::chrono::milliseconds(0)));
}

TEST(SyncTest, EventTimesOut) {
  Event ev;
  EXPECT_FALSE(ev.Wait(std::chrono::milliseconds(10)));
}

TEST(SyncTest, EventCrossThread) {
  Event ev;
  std::thread t([&] { ev.Signal(); });
  EXPECT_TRUE(ev.Wait(std::chrono::seconds(10)));
  t.join();
}

TEST(SyncTest, EventReset) {
  Event ev;
  ev.Signal();
  ev.Reset();
  EXPECT_FALSE(ev.Wait(std::chrono::milliseconds(5)));
}

TEST(SimClockTest, ChargeAccumulates) {
  SimClock clock;
  EXPECT_EQ(clock.NowNs(), 0u);
  clock.Charge(100);
  clock.Charge(250);
  EXPECT_EQ(clock.NowNs(), 350u);
  clock.Reset();
  EXPECT_EQ(clock.NowNs(), 0u);
}

TEST(SimClockTest, ConcurrentCharges) {
  SimClock clock;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&clock] {
      for (int i = 0; i < 1000; ++i) {
        clock.Charge(1);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(clock.NowNs(), 4000u);
}

TEST(FaultInjectorTest, UnconfiguredPointsNeverFire) {
  FaultInjector inj(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(inj.ShouldFail("disk.read"));
  }
  // Unconfigured points are not tracked (the hot path stays cheap).
  EXPECT_EQ(inj.Evaluations("disk.read"), 0u);
  EXPECT_EQ(inj.TotalInjected(), 0u);
}

TEST(FaultInjectorTest, SameSeedSameTrace) {
  FaultInjector a(1234), b(1234);
  a.SetProbability("net.drop", 0.3);
  b.SetProbability("net.drop", 0.3);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(a.ShouldFail("net.drop"), b.ShouldFail("net.drop")) << "hit " << i;
  }
  EXPECT_EQ(a.Injected("net.drop"), b.Injected("net.drop"));
  EXPECT_GT(a.Injected("net.drop"), 0u);
  EXPECT_LT(a.Injected("net.drop"), 2000u);
}

TEST(FaultInjectorTest, DifferentSeedsDiverge) {
  FaultInjector a(1), b(2);
  a.SetProbability("p", 0.5);
  b.SetProbability("p", 0.5);
  bool diverged = false;
  for (int i = 0; i < 256 && !diverged; ++i) {
    diverged = a.ShouldFail("p") != b.ShouldFail("p");
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultInjectorTest, ProbabilityRoughlyHonoured) {
  FaultInjector inj(99);
  inj.SetProbability("p", 0.25);
  uint64_t fired = 0;
  for (int i = 0; i < 10000; ++i) {
    fired += inj.ShouldFail("p") ? 1 : 0;
  }
  EXPECT_GT(fired, 2000u);
  EXPECT_LT(fired, 3000u);
}

TEST(FaultInjectorTest, ScheduleAndEveryNth) {
  FaultInjector inj(7);
  inj.SetSchedule("s", {0, 3});
  EXPECT_TRUE(inj.ShouldFail("s"));
  EXPECT_FALSE(inj.ShouldFail("s"));
  EXPECT_FALSE(inj.ShouldFail("s"));
  EXPECT_TRUE(inj.ShouldFail("s"));
  EXPECT_FALSE(inj.ShouldFail("s"));
  inj.SetEveryNth("n", 3);
  int fired = 0;
  for (int i = 0; i < 9; ++i) {
    fired += inj.ShouldFail("n") ? 1 : 0;
  }
  EXPECT_EQ(fired, 3);
  inj.Clear("n");
  EXPECT_FALSE(inj.ShouldFail("n"));
}

TEST(FaultInjectorTest, ResetRestartsTheTrace) {
  FaultInjector inj(5);
  inj.SetProbability("p", 0.5);
  std::vector<bool> first;
  for (int i = 0; i < 64; ++i) {
    first.push_back(inj.ShouldFail("p"));
  }
  inj.Reset(5);
  inj.SetProbability("p", 0.5);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(inj.ShouldFail("p"), first[i]) << "hit " << i;
  }
}

TEST(FaultInjectorTest, ReportListsConfiguredPoints) {
  FaultInjector inj(3);
  inj.SetEveryNth("a", 2);
  inj.ShouldFail("a");
  inj.ShouldFail("a");
  std::vector<std::string> report = inj.Report();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report[0], "a:1/2");
}

TEST(HashTest, SplitMix64IsBijectiveOnSamples) {
  // Distinct inputs must give distinct outputs (SplitMix64 is a bijection);
  // spot-check across structured and random-ish inputs.
  std::unordered_set<uint64_t> seen;
  for (uint64_t i = 0; i < 10000; ++i) {
    EXPECT_TRUE(seen.insert(SplitMix64(i * 4096)).second) << i;
  }
}

TEST(HashTest, PageKeyPatternSpreadsAcrossBuckets) {
  // The resident-page table's key shape: heap-like object addresses (shared
  // alignment, small deltas) crossed with page-aligned offsets. The old
  // `ptr_hash * 31 ^ offset_hash` collapsed these onto a few buckets; the
  // mixed hash must spread them near-uniformly.
  constexpr int kObjects = 64;
  constexpr int kPagesPerObject = 1024;
  constexpr uint64_t kBuckets = 4096;  // Power of two: only low bits select.
  std::vector<uint32_t> bucket(kBuckets, 0);
  for (int o = 0; o < kObjects; ++o) {
    const uint64_t addr = 0x7f3a00000000ull + uint64_t{o} * 176;  // Alloc-like.
    for (int p = 0; p < kPagesPerObject; ++p) {
      uint64_t h = HashCombine64(addr, uint64_t{p} * 4096);
      ++bucket[h & (kBuckets - 1)];
    }
  }
  const double mean = double(kObjects) * kPagesPerObject / kBuckets;  // 16.
  uint32_t max_load = 0;
  uint32_t empties = 0;
  for (uint32_t load : bucket) {
    max_load = std::max(max_load, load);
    empties += load == 0;
  }
  // Poisson(16): P(load > 48) is ~1e-10 per bucket; empties are similarly
  // vanishing. Generous slack keeps this deterministic check robust.
  EXPECT_LT(max_load, mean * 3.0) << "hash clusters structured page keys";
  EXPECT_LT(empties, kBuckets / 20) << "hash leaves buckets unreachable";
}

TEST(HistogramTest, EmptyReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Mean(), 0u);
  EXPECT_EQ(h.P50(), 0u);
  EXPECT_EQ(h.P999(), 0u);
}

TEST(HistogramTest, SmallValuesAreExact) {
  // The first 64 buckets have width 1: small samples come back exactly.
  Histogram h;
  for (uint64_t v = 0; v < 64; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(h.count(), 64u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 63u);
  EXPECT_EQ(h.Percentile(0.0), 0u);
  EXPECT_EQ(h.Percentile(1.0), 63u);
  // The 32nd-smallest of 0..63: exactly half the samples are <= 31.
  EXPECT_EQ(h.P50(), 31u);
}

TEST(HistogramTest, PercentilesBoundedRelativeError) {
  // Log-bucketing promises ~1/64 relative error at any magnitude.
  Histogram h;
  constexpr uint64_t kN = 100'000;
  for (uint64_t i = 1; i <= kN; ++i) {
    h.Record(i * 1000);  // 1 µs .. 100 ms in ns, uniform.
  }
  EXPECT_EQ(h.count(), kN);
  for (double q : {0.50, 0.90, 0.99, 0.999}) {
    const double exact = q * static_cast<double>(kN) * 1000.0;
    const double got = static_cast<double>(h.Percentile(q));
    EXPECT_NEAR(got, exact, exact / 32.0) << "q=" << q;
  }
  EXPECT_EQ(h.max(), kN * 1000);
  EXPECT_LE(h.Percentile(1.0), h.max());
}

TEST(HistogramTest, SingleSampleDominatesEveryQuantile) {
  Histogram h;
  h.Record(123'456'789);
  EXPECT_EQ(h.P50(), 123'456'789u);
  EXPECT_EQ(h.P99(), 123'456'789u);
  EXPECT_EQ(h.P999(), 123'456'789u);
  EXPECT_EQ(h.Mean(), 123'456'789u);
}

TEST(HistogramTest, MergeMatchesCombinedRecording) {
  Histogram a;
  Histogram b;
  Histogram both;
  for (uint64_t i = 0; i < 5000; ++i) {
    uint64_t va = 100 + i * 7;
    uint64_t vb = 1'000'000 + i * 31;
    a.Record(va);
    b.Record(vb);
    both.Record(va);
    both.Record(vb);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.min(), both.min());
  EXPECT_EQ(a.max(), both.max());
  EXPECT_EQ(a.Mean(), both.Mean());
  for (double q : {0.1, 0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(a.Percentile(q), both.Percentile(q)) << "q=" << q;
  }
}

TEST(HistogramTest, JsonCarriesTheSummary) {
  Histogram h;
  h.Record(10);
  h.Record(20);
  h.Record(30);
  std::string json = h.ToJson();
  EXPECT_NE(json.find("\"count\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"min\": 10"), std::string::npos) << json;
  EXPECT_NE(json.find("\"max\": 30"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p50\": 20"), std::string::npos) << json;
  EXPECT_NE(json.find("\"mean\": 20"), std::string::npos) << json;
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(42);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.P99(), 0u);
}

}  // namespace
}  // namespace mach
