// Conformance tests for the paper's API tables: every operation named in
// Tables 3-1 through 3-6 exists and behaves per its one-line description.
// Each test is named for the historical call it covers.

#include <gtest/gtest.h>

#include <thread>

#include "src/kernel/kernel.h"
#include "src/kernel/task.h"
#include "src/pager/data_manager.h"
#include "src/pager/protocol.h"

namespace mach {
namespace {

constexpr VmSize kPage = 4096;

class ApiTablesTest : public ::testing::Test {
 protected:
  ApiTablesTest() {
    Kernel::Config config;
    config.frames = 96;
    config.page_size = kPage;
    config.disk_latency = DiskLatencyModel{0, 0};
    kernel_ = std::make_unique<Kernel>(config);
    task_ = kernel_->CreateTask();
  }
  ~ApiTablesTest() override { task_.reset(); }

  std::unique_ptr<Kernel> kernel_;
  std::shared_ptr<Task> task_;
};

// --- Table 3-1: primitive message operations ---------------------------------

TEST_F(ApiTablesTest, MsgSend) {
  // "Send a message to the destination specified in the message header."
  PortPair p = PortAllocate();
  EXPECT_EQ(MsgSend(p.send, Message(1), std::chrono::milliseconds(100)), KernReturn::kSuccess);
}

TEST_F(ApiTablesTest, MsgReceive) {
  // "Receive a message from the port specified ... or the default group of
  // ports."
  PortPair p = PortAllocate();
  MsgSend(p.send, Message(2));
  EXPECT_EQ(MsgReceive(p.receive).value().id(), 2u);
  // Default group form:
  PortPair q = task_->PortAllocate();
  task_->PortEnable(q.receive);
  MsgSend(q.send, Message(3));
  EXPECT_EQ(task_->ReceiveAny(std::chrono::seconds(1)).value().id(), 3u);
}

TEST_F(ApiTablesTest, MsgRpc) {
  // "Send a message, then receive a reply."
  PortPair server = PortAllocate();
  std::thread responder([recv = std::move(server.receive)]() mutable {
    Result<Message> req = MsgReceive(recv, std::chrono::seconds(5));
    MsgSend(req.value().reply_port(), Message(req.value().id() + 1));
  });
  EXPECT_EQ(MsgRpc(server.send, Message(10)).value().id(), 11u);
  responder.join();
}

// --- Table 3-2: port operations -----------------------------------------------

TEST_F(ApiTablesTest, PortAllocate) {
  // "Allocate a new port."
  PortPair p = task_->PortAllocate();
  EXPECT_TRUE(p.receive.valid());
  EXPECT_TRUE(p.send.valid());
}

TEST_F(ApiTablesTest, PortDeallocate) {
  // "Deallocate the task's rights to this port." Deallocating the receive
  // right destroys the port.
  PortPair p = task_->PortAllocate();
  SendRight send = p.send;
  p.receive.Destroy();
  EXPECT_TRUE(send.IsDead());
}

TEST_F(ApiTablesTest, PortEnableDisable) {
  // "Add/remove this port to the task's default group of ports."
  PortPair p = task_->PortAllocate();
  EXPECT_EQ(task_->PortEnable(p.receive), KernReturn::kSuccess);
  EXPECT_EQ(task_->PortDisable(p.receive), KernReturn::kSuccess);
  EXPECT_EQ(task_->PortDisable(p.receive), KernReturn::kNotFound);
}

TEST_F(ApiTablesTest, PortMessages) {
  // "Return an array of enabled ports on which messages are currently
  // queued."
  PortPair p = task_->PortAllocate();
  task_->PortEnable(p.receive);
  EXPECT_TRUE(task_->PortsWithMessages().empty());
  MsgSend(p.send, Message(1));
  std::vector<uint64_t> ids = task_->PortsWithMessages();
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], p.send.id());
}

TEST_F(ApiTablesTest, PortStatus) {
  // "Return status information about this port."
  PortPair p = task_->PortAllocate();
  MsgSend(p.send, Message(1));
  PortStatus st = p.receive.port()->Status();
  EXPECT_EQ(st.num_msgs, 1u);
  EXPECT_FALSE(st.dead);
}

TEST_F(ApiTablesTest, PortSetBacklog) {
  // "Limit the number of messages that can be waiting on this port."
  PortPair p = task_->PortAllocate();
  EXPECT_EQ(p.receive.port()->SetBacklog(3), KernReturn::kSuccess);
  EXPECT_EQ(p.receive.port()->Status().backlog, 3u);
}

// --- Table 3-3: virtual memory operations --------------------------------------

TEST_F(ApiTablesTest, VmAllocate) {
  // "Allocate new virtual memory ... (filled-zero on demand)."
  Result<VmOffset> at = task_->VmAllocate(kPage, false, 0x200000);
  EXPECT_EQ(at.value(), 0x200000u);
  Result<VmOffset> anywhere = task_->VmAllocate(kPage);
  EXPECT_TRUE(anywhere.ok());
  uint64_t v = 1;
  task_->Read(anywhere.value(), &v, sizeof(v));
  EXPECT_EQ(v, 0u);
}

TEST_F(ApiTablesTest, VmDeallocate) {
  VmOffset addr = task_->VmAllocate(kPage).value();
  EXPECT_EQ(task_->VmDeallocate(addr, kPage), KernReturn::kSuccess);
  uint8_t b;
  EXPECT_EQ(task_->Read(addr, &b, 1), KernReturn::kInvalidAddress);
}

TEST_F(ApiTablesTest, VmInherit) {
  VmOffset addr = task_->VmAllocate(kPage).value();
  EXPECT_EQ(task_->VmInherit(addr, kPage, VmInherit::kNone), KernReturn::kSuccess);
  EXPECT_EQ(task_->VmRegions()[0].inheritance, VmInherit::kNone);
}

TEST_F(ApiTablesTest, VmProtect) {
  VmOffset addr = task_->VmAllocate(kPage).value();
  EXPECT_EQ(task_->VmProtect(addr, kPage, false, kVmProtRead), KernReturn::kSuccess);
  uint8_t b = 1;
  EXPECT_EQ(task_->Write(addr, &b, 1), KernReturn::kProtectionFailure);
}

TEST_F(ApiTablesTest, VmReadVmWrite) {
  // "Read/write the contents of this task's address space" — from outside.
  VmOffset addr = task_->VmAllocate(kPage).value();
  uint32_t v = 77;
  EXPECT_EQ(task_->VmWrite(addr, &v, sizeof(v)), KernReturn::kSuccess);
  uint32_t out = 0;
  EXPECT_EQ(task_->VmRead(addr, &out, sizeof(out)), KernReturn::kSuccess);
  EXPECT_EQ(out, 77u);
}

TEST_F(ApiTablesTest, VmCopy) {
  VmOffset src = task_->VmAllocate(kPage).value();
  VmOffset dst = task_->VmAllocate(kPage).value();
  uint32_t v = 88;
  task_->Write(src, &v, sizeof(v));
  EXPECT_EQ(task_->VmCopy(src, kPage, dst), KernReturn::kSuccess);
  uint32_t out = 0;
  task_->Read(dst, &out, sizeof(out));
  EXPECT_EQ(out, 88u);
}

TEST_F(ApiTablesTest, VmRegions) {
  // "Return a description of this task's address space."
  VmOffset addr = task_->VmAllocate(2 * kPage).value();
  std::vector<RegionInfo> regions = task_->VmRegions();
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0].start, addr);
  EXPECT_EQ(regions[0].end, addr + 2 * kPage);
}

TEST_F(ApiTablesTest, VmStatistics) {
  // "Return statistics about this task's use of virtual memory."
  VmStatistics st = task_->VmStats();
  EXPECT_EQ(st.page_size, kPage);
  EXPECT_GT(st.free_count, 0u);
}

// --- Tables 3-4/3-5/3-6: the external memory management interface ---------------

// A manager that records the full call sequence it observes.
class RecordingPager : public DataManager {
 public:
  RecordingPager() : DataManager("recorder") {}

  SendRight NewObject() { return CreateMemoryObject(1); }

  std::vector<std::string> TakeTrace() {
    std::lock_guard<std::mutex> g(mu_);
    return trace_;
  }
  bool WaitForTrace(const std::string& what, int timeout_ms = 3000) {
    auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      {
        std::lock_guard<std::mutex> g(mu_);
        for (const auto& t : trace_) {
          if (t == what) {
            return true;
          }
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return false;
  }
  SendRight request_port;

 protected:
  void OnInit(uint64_t id, uint64_t cookie, PagerInitArgs args) override {
    request_port = args.pager_request_port;
    Log("pager_init");
    EXPECT_TRUE(args.pager_request_port.valid());
    EXPECT_TRUE(args.pager_name_port.valid());
    EXPECT_EQ(args.page_size, kPage);
  }
  void OnDataRequest(uint64_t id, uint64_t cookie, PagerDataRequestArgs args) override {
    Log("pager_data_request");
    std::vector<std::byte> data(args.length, std::byte{0x5A});
    ProvideData(args.pager_request_port, args.offset, std::move(data), kVmProtNone);
  }
  void OnDataWrite(uint64_t id, uint64_t cookie, PagerDataWriteArgs args) override {
    Log("pager_data_write");
  }
  void OnDataUnlock(uint64_t id, uint64_t cookie, PagerDataUnlockArgs args) override {
    Log("pager_data_unlock");
    LockData(args.pager_request_port, args.offset, args.length, kVmProtNone);
  }

 private:
  void Log(const std::string& what) {
    std::lock_guard<std::mutex> g(mu_);
    trace_.push_back(what);
  }
  std::mutex mu_;
  std::vector<std::string> trace_;
};

TEST_F(ApiTablesTest, VmAllocateWithPager) {
  // Table 3-4: "The specified memory object provides the initial data
  // values and receives changes."
  RecordingPager pager;
  pager.Start();
  SendRight object = pager.NewObject();
  Result<VmOffset> addr = task_->VmAllocateWithPager(kPage, object, 0);
  ASSERT_TRUE(addr.ok());
  EXPECT_TRUE(pager.WaitForTrace("pager_init"));  // Table 3-5: pager_init.
  uint8_t b = 0;
  ASSERT_EQ(task_->Read(addr.value(), &b, 1), KernReturn::kSuccess);
  EXPECT_EQ(b, 0x5A);  // Initial data values came from the object.
  EXPECT_TRUE(pager.WaitForTrace("pager_data_request"));  // Table 3-5.
  task_.reset();
  pager.Stop();
}

TEST_F(ApiTablesTest, PagerDataWriteOnFlush) {
  // Table 3-5 pager_data_write / Table 3-6 pager_flush_request.
  RecordingPager pager;
  pager.Start();
  SendRight object = pager.NewObject();
  VmOffset addr = task_->VmAllocateWithPager(kPage, object, 0).value();
  uint8_t b = 0x77;
  ASSERT_EQ(task_->Write(addr, &b, 1), KernReturn::kSuccess);
  ASSERT_TRUE(pager.WaitForTrace("pager_init"));
  DataManager::FlushRequest(pager.request_port, 0, kPage);
  EXPECT_TRUE(pager.WaitForTrace("pager_data_write"));
  task_.reset();
  pager.Stop();
}

TEST_F(ApiTablesTest, PagerDataLockAndUnlock) {
  // Table 3-6 pager_data_lock "restricts cache access"; Table 3-5
  // pager_data_unlock "requests that data be unlocked".
  RecordingPager pager;
  pager.Start();
  SendRight object = pager.NewObject();
  VmOffset addr = task_->VmAllocateWithPager(kPage, object, 0).value();
  uint8_t b = 0;
  ASSERT_EQ(task_->Read(addr, &b, 1), KernReturn::kSuccess);
  ASSERT_TRUE(pager.WaitForTrace("pager_init"));
  DataManager::LockData(pager.request_port, 0, kPage, kVmProtWrite);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_EQ(task_->Write(addr, &b, 1), KernReturn::kSuccess);
  EXPECT_TRUE(pager.WaitForTrace("pager_data_unlock"));
  task_.reset();
  pager.Stop();
}

TEST_F(ApiTablesTest, PagerDataUnavailableZeroFills) {
  // Table 3-6: "Notifies kernel that no data exists for that region."
  class UnavailablePager : public DataManager {
   public:
    UnavailablePager() : DataManager("unavail") {}
    SendRight NewObject() { return CreateMemoryObject(1); }

   protected:
    void OnDataRequest(uint64_t id, uint64_t cookie, PagerDataRequestArgs args) override {
      DataUnavailable(args.pager_request_port, args.offset, args.length);
    }
  };
  UnavailablePager pager;
  pager.Start();
  SendRight object = pager.NewObject();
  VmOffset addr = task_->VmAllocateWithPager(kPage, object, 0).value();
  uint64_t v = 0xFF;
  ASSERT_EQ(task_->Read(addr, &v, sizeof(v)), KernReturn::kSuccess);
  EXPECT_EQ(v, 0u);
  task_.reset();
  pager.Stop();
}

TEST_F(ApiTablesTest, PagerCreateGoesToDefaultPager) {
  // Table 3-5 pager_create: "Accept responsibility for a kernel-created
  // memory object." Exercised by paging anonymous memory out.
  size_t managed_before = kernel_->default_pager().managed_object_count();
  VmOffset addr = task_->VmAllocate(200 * kPage).value();
  std::vector<uint8_t> junk(200 * kPage, 0xEE);
  ASSERT_EQ(task_->Write(addr, junk.data(), junk.size()), KernReturn::kSuccess);
  EXPECT_GT(kernel_->default_pager().managed_object_count(), managed_before);
}

TEST_F(ApiTablesTest, PagerCacheRetention) {
  // Table 3-6 pager_cache: "Tells the kernel whether it may retain cached
  // data ... even after all references to it have been removed."
  RecordingPager pager;
  pager.Start();
  SendRight object = pager.NewObject();
  VmOffset addr = task_->VmAllocateWithPager(kPage, object, 0).value();
  uint8_t b = 0;
  ASSERT_EQ(task_->Read(addr, &b, 1), KernReturn::kSuccess);
  ASSERT_TRUE(pager.WaitForTrace("pager_init"));
  DataManager::SetCaching(pager.request_port, true);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_EQ(task_->VmDeallocate(addr, kPage), KernReturn::kSuccess);
  EXPECT_NE(kernel_->vm().ObjectForPager(object), nullptr);  // Retained.
  task_.reset();
  pager.Stop();
}

TEST_F(ApiTablesTest, PagerCleanRequest) {
  // Table 3-6 pager_clean_request: "Forces cached data to be written back
  // ... but allows the kernel to continue to use the cached data."
  RecordingPager pager;
  pager.Start();
  SendRight object = pager.NewObject();
  VmOffset addr = task_->VmAllocateWithPager(kPage, object, 0).value();
  uint8_t b = 0x42;
  ASSERT_EQ(task_->Write(addr, &b, 1), KernReturn::kSuccess);
  ASSERT_TRUE(pager.WaitForTrace("pager_init"));
  size_t requests_before = 0;
  for (const auto& t : pager.TakeTrace()) {
    requests_before += (t == "pager_data_request");
  }
  DataManager::CleanRequest(pager.request_port, 0, kPage);
  ASSERT_TRUE(pager.WaitForTrace("pager_data_write"));
  // Still cached: reading does not re-request.
  uint8_t out = 0;
  ASSERT_EQ(task_->Read(addr, &out, 1), KernReturn::kSuccess);
  EXPECT_EQ(out, 0x42);
  size_t requests_after = 0;
  for (const auto& t : pager.TakeTrace()) {
    requests_after += (t == "pager_data_request");
  }
  EXPECT_EQ(requests_after, requests_before);
  task_.reset();
  pager.Stop();
}

}  // namespace
}  // namespace mach
