// Multi-tenant transactional file serving: the repo's end-to-end "traffic"
// workload, reusable by bench_tenant_serving (full scale) and the chaos
// soak (small scale, 10 seeds).
//
// Topology: host 0 runs the servers — an FsServer (mapped files), a Camelot
// RecoveryManager (one shared recoverable ledger segment), and a sharded
// ShmBroker (a shared stats board). T tenant tasks are spread round-robin
// over H simulated hosts; tenants on hosts 1..H-1 reach every server
// through a reliable NetLink (their paging traffic crosses the simulated
// wire), tenants on host 0 are local. Each transaction reads and rewrites
// the tenant's private mapped file, makes two transactional writes into the
// tenant's own page range of the ledger, and bumps its slot on the shm
// board. The server host's frame pool is deliberately small, so dirty file
// and ledger pages page out mid-run — the pageout-clustering pressure arm.
//
// Chaos mode arms the data-disk, net fragment/ack/reorder and shm
// forward-drop/stale-hint fault points, and injects a mid-run crash: the
// first remote host's link partitions until the failure detector declares
// the peer dead, the recovery manager crashes and recovers, the link heals,
// and the dead host's tenants rebuild their mappings. Recovery time is the
// virtual time from heal to their next committed transaction.
//
// Every measurement is over virtual time (the sum of all host clocks plus
// the network clock); the driver runs tenants round-robin on one thread so
// per-transaction clock deltas are attributable.
//
// Correctness oracle (exactly-once): each committed transaction's slot
// writes are recorded in a model; at the end the manager crashes once more
// and recovers from the log on clean disks, and the recovered ledger must
// equal the model exactly — a committed transaction survives exactly once,
// an aborted one leaves no trace.

#ifndef TESTS_WORKLOAD_TENANT_WORKLOAD_H_
#define TESTS_WORKLOAD_TENANT_WORKLOAD_H_

#include <cstdint>

#include "src/base/histogram.h"
#include "src/base/vm_types.h"

namespace mach {

struct TenantWorkloadOptions {
  int hosts = 1;    // >= 1; hosts - 1 remote kernels, each behind a NetLink.
  int tenants = 4;  // Tenant k lives on host (k % hosts).
  int txns_per_tenant = 24;

  uint32_t server_frames = 64;  // Host 0's pool: small enough to page out.
  uint32_t tenant_frames = 64;  // Remote hosts' pools.
  bool pageout_clustering = true;  // The ablation toggle (all hosts).

  // Chaos: arm the fault points and run the mid-run crash + heal.
  bool chaos = false;
  uint64_t seed = 1;

  int shm_shards = 4;
  VmSize file_pages = 8;  // Per-tenant mapped file size.
  VmSize slot_pages = 4;  // Ledger pages owned by each tenant.
};

struct TenantWorkloadResult {
  // Transactions.
  uint64_t committed = 0;
  uint64_t aborted = 0;        // Deliberate aborts plus error-path aborts.
  uint64_t error_aborts = 0;   // Aborts forced by an I/O or mapping error.
  Histogram latency;           // Virtual ns per committed transaction.
  uint64_t virtual_ns = 0;     // Total virtual makespan of the run.

  // Crash + heal (chaos mode; zero otherwise).
  uint64_t camelot_recover_ns = 0;  // Virtual cost of the mid-run Recover().
  uint64_t heal_ns = 0;  // Heal -> first commit from the crashed host.

  // Exactly-once oracle (always evaluated).
  bool oracle_ok = false;
  uint64_t slot_mismatches = 0;

  // Server-host VM counters (pageout clustering observability).
  uint64_t pageouts = 0;          // Pages written back by pageout paths.
  uint64_t pageout_runs = 0;      // pager_data_write messages those took.
  uint64_t pageout_run_pages = 0; // Pages carried by those messages.

  // Manager / transport / shm counters.
  uint64_t wal_enforced = 0;
  uint64_t deferred_pageouts = 0;
  uint64_t io_errors = 0;
  uint64_t bytes_retransmitted = 0;
  uint64_t fragments_retransmitted = 0;
  uint64_t messages_lost = 0;
  uint64_t peer_dead_events = 0;
  uint64_t shm_forward_drops = 0;

  // Teardown-to-baseline checks.
  // After teardown every server frame is free or on a paging queue (cached
  // persisting-object pages are reclaimable, not leaked); false means a
  // frame was stuck busy or holding an orphaned placeholder.
  bool frames_drained = false;
  int64_t ports_leaked = 0;     // Live-port delta across the whole run.
};

// Builds the cluster, runs the workload, tears everything down, and
// returns the measurements. Synchronous; no gtest dependencies.
TenantWorkloadResult RunTenantWorkload(const TenantWorkloadOptions& options);

}  // namespace mach

#endif  // TESTS_WORKLOAD_TENANT_WORKLOAD_H_
