// See tenant_workload.h for the workload's shape and invariants.

#include "tests/workload/tenant_workload.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/base/fault_injector.h"
#include "src/hw/sim_disk.h"
#include "src/ipc/port_gc.h"
#include "src/kernel/kernel.h"
#include "src/kernel/task.h"
#include "src/managers/camelot/recovery_manager.h"
#include "src/managers/fs/fs_server.h"
#include "src/managers/mfs/mapped_file.h"
#include "src/managers/shm/shm_broker.h"
#include "src/managers/shm/shm_directory.h"
#include "src/net/net_link.h"

namespace mach {
namespace {

constexpr VmSize kPage = 4096;
constexpr VmSize kBoardPages = 2;  // The shared shm stats board.

uint64_t FileStamp(uint64_t seed, int tenant, VmOffset page) {
  return 0xF11E'0000'0000'0000ull ^ (seed << 24) ^ (uint64_t(tenant) << 12) ^ page;
}

struct Tenant {
  int id = 0;
  int host_index = 0;
  Kernel* host = nullptr;
  NetLink* link = nullptr;  // nullptr = local to the server host.
  std::shared_ptr<Task> task;
  MappedFile file;
  RecoverableSegment ledger;
  VmOffset shm_base = 0;
  bool ok = false;
};

// Owns the cluster for one workload run. Everything is torn down (in
// dependency order) by Shutdown(), which the driver calls explicitly so it
// can measure the post-teardown baselines first.
class Cluster {
 public:
  Cluster(const TenantWorkloadOptions& opt, TenantWorkloadResult* res)
      : opt_(opt), res_(res), faults_(opt.seed), rng_(opt.seed * 0x9E37'79B9'7F4A'7C15ull + 1) {
    ledger_size_ = uint64_t(opt_.tenants) * opt_.slot_pages * kPage;
    model_.assign(opt_.tenants, std::vector<uint64_t>(opt_.slot_pages, 0));

    if (opt_.chaos) {
      // Data-disk faults (log and fs disks stay clean so commit durability
      // and the oracle are about the WAL, not torn logs).
      faults_.SetProbability(SimDisk::kFaultRead, 0.05);
      faults_.SetProbability(SimDisk::kFaultWrite, 0.1);
      // Wire faults; rates match the chaos soak's "reliable mode wins
      // through" envelope.
      faults_.SetProbability(NetLink::kFaultDrop, 0.1);
      faults_.SetProbability(NetLink::kFaultFragDrop, 0.05);
      faults_.SetProbability(NetLink::kFaultAckDrop, 0.05);
      faults_.SetProbability(NetLink::kFaultReorder, 0.05);
      // Coherence faults on the stats board.
      faults_.SetProbability(ShmDirectory::kFaultStaleHint, 0.2);
      faults_.SetProbability(ShmDirectory::kFaultForwardDrop, 0.1);
    }

    // Host 0: the server host. Small pool so the mapped files and the
    // ledger page out mid-run.
    Kernel::Config config;
    config.name = "tenant-srv";
    config.frames = opt_.server_frames;
    config.page_size = kPage;
    config.disk_latency = DiskLatencyModel{200'000, 100};
    config.vm.on_pager_timeout = VmSystem::Config::OnPagerTimeout::kZeroFill;
    config.vm.pageout_clustering = opt_.pageout_clustering;
    hosts_.push_back(std::make_unique<Kernel>(config));

    DiskLatencyModel manager_disk{2'000'000, 200};
    data_disk_ = std::make_unique<SimDisk>(4096, kPage, &hosts_[0]->clock(), manager_disk,
                                           opt_.chaos ? &faults_ : nullptr);
    log_disk_ = std::make_unique<SimDisk>(65536, 512, &hosts_[0]->clock(), manager_disk);
    fs_disk_ = std::make_unique<SimDisk>(4096, kPage, &hosts_[0]->clock(), manager_disk);

    rm_ = std::make_unique<RecoveryManager>(data_disk_.get(), log_disk_.get(), kPage);
    rm_->Start();
    fs_ = std::make_unique<FsServer>(hosts_[0].get(), fs_disk_.get());
    fs_->StartServer();

    ShmOptions shm_options;
    shm_options.page_size = kPage;
    shm_options.clock = &net_clock_;
    shm_options.injector = opt_.chaos ? &faults_ : nullptr;
    shm_ = std::make_unique<ShmBroker>("board", size_t(opt_.shm_shards), shm_options);
    shm_->Start();

    // Remote hosts, each one NetLink hop from the server host.
    NetFaultConfig net;
    net.injector = opt_.chaos ? &faults_ : nullptr;
    net.reliable = true;
    net.max_retransmits = 8;
    net.failure_detector = true;
    net.degraded_after_timeouts = 6;
    net.dead_after_timeouts = 14;
    links_.push_back(nullptr);  // Host 0 needs no link.
    for (int h = 1; h < opt_.hosts; ++h) {
      config.name = "tenant-h" + std::to_string(h);
      config.frames = opt_.tenant_frames;
      hosts_.push_back(std::make_unique<Kernel>(config));
      links_.push_back(std::make_unique<NetLink>(&hosts_[0]->vm(), &hosts_[h]->vm(),
                                                 &net_clock_, kNormaLatency, net));
    }

    CreateFiles();
    tenants_.resize(opt_.tenants);
    for (int k = 0; k < opt_.tenants; ++k) {
      tenants_[k].id = k;
      tenants_[k].host_index = k % opt_.hosts;
      tenants_[k].host = hosts_[tenants_[k].host_index].get();
      tenants_[k].link = links_[tenants_[k].host_index].get();
      SetupTenant(tenants_[k]);
    }
  }

  // Virtual time: the sum of every host clock plus the network clock. The
  // driver is single-threaded, so per-transaction deltas are attributable.
  uint64_t VirtualNow() const {
    uint64_t ns = net_clock_.NowNs();
    for (const auto& h : hosts_) {
      ns += h->clock().NowNs();
    }
    return ns;
  }

  void Run() {
    const uint64_t start_ns = VirtualNow();
    for (int round = 0; round < opt_.txns_per_tenant; ++round) {
      if (opt_.chaos && round == opt_.txns_per_tenant / 2) {
        CrashAndHeal();
      }
      for (Tenant& t : tenants_) {
        RunOneTxn(t);
      }
    }
    res_->virtual_ns = VirtualNow() - start_ns;
    HarvestCounters();
  }

  // Drops all tenant tasks, then runs the exactly-once oracle: crash the
  // recovery manager once more, recover from the log on clean disks, and
  // compare every ledger slot to the committed model. Two Recover() passes
  // bracket a sleep so late writebacks from dying kernels are re-applied
  // over (chaos_test CamelotCrashPoints idiom).
  void OracleCheck() {
    // Partition every link first: a remote kernel's dying writebacks must
    // not trickle onto the data disk mid-comparison (committed data is
    // already durable in the log, so dropping them loses nothing).
    for (auto& link : links_) {
      if (link != nullptr) {
        link->SetPartitioned(true);
      }
    }
    for (Tenant& t : tenants_) {
      t.file = MappedFile();
      t.ledger = RecoverableSegment();
      t.task.reset();
    }
    data_disk_->set_fault_injector(nullptr);
    rm_->SimulateCrash();
    rm_->Recover();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    rm_->Recover();

    std::shared_ptr<Task> checker = hosts_[0]->CreateTask(nullptr, "oracle-checker");
    Result<RecoverableSegment> seg =
        RecoverableSegment::Map(rm_.get(), checker.get(), "ledger", ledger_size_);
    if (!seg.ok()) {
      res_->slot_mismatches = uint64_t(opt_.tenants) * opt_.slot_pages;
      res_->oracle_ok = false;
      return;
    }
    for (int k = 0; k < opt_.tenants; ++k) {
      for (VmSize p = 0; p < opt_.slot_pages; ++p) {
        VmOffset off = (uint64_t(k) * opt_.slot_pages + p) * kPage;
        Result<uint64_t> v = checker->ReadValue<uint64_t>(seg.value().base() + off);
        if (!v.ok() || v.value() != model_[k][p]) {
          ++res_->slot_mismatches;
        }
      }
    }
    res_->oracle_ok = res_->slot_mismatches == 0;
    checker.reset();
  }

  // Dependency-ordered teardown; after this only process-global port state
  // remains (measured by the caller).
  void Shutdown() {
    tenants_.clear();
    links_.clear();
    shm_->Stop();
    shm_.reset();
    fs_->StopServer();
    fs_.reset();
    rm_->Stop();
    rm_.reset();
    // Teardown-to-baseline: every server frame must be free or parked on a
    // paging queue. Cached pages of persisting objects (§3.4.1) may stay
    // resident until memory pressure reclaims them — that's the design, not
    // a leak — but a frame stuck busy or holding an orphaned placeholder
    // sits on no queue, and that is what this check catches.
    auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    auto accounted = [&] {
      VmStatistics st = hosts_[0]->vm().Statistics();
      return st.free_count + st.active_count + st.inactive_count;
    };
    while (accounted() + 4 < opt_.server_frames &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    res_->frames_drained = accounted() + 4 >= opt_.server_frames;
    hosts_.clear();
  }

 private:
  void CreateFiles() {
    std::shared_ptr<Task> admin = hosts_[0]->CreateTask(nullptr, "fs-admin");
    FsClient client(admin.get(), fs_->service_port());
    const VmSize span = opt_.file_pages * kPage;
    VmOffset buf = admin->VmAllocate(span).value();
    for (int k = 0; k < opt_.tenants; ++k) {
      for (VmOffset p = 0; p < opt_.file_pages; ++p) {
        uint64_t stamp = FileStamp(opt_.seed, k, p);
        admin->WriteValue(buf + p * kPage, stamp);
      }
      std::string name = "f" + std::to_string(k);
      client.Create(name);
      client.WriteFile(name, buf, span);
    }
    admin->VmDeallocate(buf, span);
  }

  bool SetupTenant(Tenant& t) {
    t.ok = false;
    t.task = t.host->CreateTask(nullptr, "tenant-" + std::to_string(t.id));

    // The mapped file, through the (possibly proxied) fs service port.
    SendRight fs_service = fs_->service_port();
    if (t.link != nullptr) {
      fs_service = t.link->ProxyForB(fs_service);
    }
    Result<MappedFile> file = MappedFile::Open(t.task.get(), fs_service,
                                               "f" + std::to_string(t.id),
                                               opt_.file_pages * kPage);
    if (!file.ok()) {
      return false;
    }
    t.file = file.value();

    // The recoverable ledger. Remote tenants map the segment's memory
    // object through a proxy so their paging traffic crosses the wire; the
    // transaction library's log calls stay direct (the transaction system
    // is a local library over the shared manager, per §8.3 — only page data
    // rides the lossy link).
    if (t.link != nullptr) {
      SendRight object = rm_->OpenSegment("ledger", ledger_size_);
      SendRight via = t.link->ProxyForB(std::move(object));
      Result<VmOffset> base = t.task->VmAllocateWithPager(ledger_size_, std::move(via), 0);
      if (!base.ok()) {
        return false;
      }
      t.ledger = RecoverableSegment(rm_->SegmentId("ledger"), base.value(), ledger_size_,
                                    t.task.get());
    } else {
      Result<RecoverableSegment> seg =
          RecoverableSegment::Map(rm_.get(), t.task.get(), "ledger", ledger_size_);
      if (!seg.ok()) {
        return false;
      }
      t.ledger = seg.value();
    }

    // The shared shm stats board (shard rights are auto-proxied by the
    // GetRegionVia RPC when it travels a link).
    ShmRegionInfoArgs info;
    if (t.link != nullptr) {
      Result<ShmRegionInfoArgs> remote = ShmBroker::GetRegionVia(
          t.link->ProxyForB(shm_->service_port()), "board", kBoardPages * kPage);
      if (!remote.ok()) {
        return false;
      }
      info = remote.value();
    } else {
      info = shm_->GetRegion("board", kBoardPages * kPage);
    }
    Result<VmOffset> board = ShmBroker::MapRegion(*t.task, info);
    if (!board.ok()) {
      return false;
    }
    t.shm_base = board.value();
    t.ok = true;
    return true;
  }

  void RunOneTxn(Tenant& t) {
    if (!t.ok) {
      return;
    }
    const uint64_t t0 = VirtualNow();
    bool io_ok = true;

    // 1. Read-modify-write one page of the tenant's mapped file.
    const VmOffset fpage = rng_() % opt_.file_pages;
    uint64_t file_value = 0;
    io_ok &= t.file.ReadAt(fpage * kPage, &file_value, sizeof(file_value)).ok();
    const uint64_t file_stamp = FileStamp(opt_.seed, t.id, fpage) ^ rng_();
    io_ok &= t.file.WriteAt(fpage * kPage + 8, &file_stamp, sizeof(file_stamp)) ==
             KernReturn::kSuccess;

    // 2. Two failure-atomic writes into the tenant's ledger pages. The
    // slots are validated against the committed model first: a data-disk
    // fault can hand the kernel a zero-filled substitute page (§6.2.1),
    // and starting a transaction over one would capture a *wrong undo
    // image* — a later abort would then "restore" garbage and log it as a
    // compensation. A real client would keep an application checksum; the
    // driver's model plays that role, and a stale slot is an error abort.
    std::vector<std::pair<VmSize, uint64_t>> writes;
    for (int w = 0; w < 2; ++w) {
      writes.emplace_back(rng_() % opt_.slot_pages, rng_() | 1);  // Value never 0.
    }
    for (const auto& [p, v] : writes) {
      const VmOffset off = (uint64_t(t.id) * opt_.slot_pages + p) * kPage;
      Result<uint64_t> cur = t.task->ReadValue<uint64_t>(t.ledger.base() + off);
      io_ok &= cur.ok() && cur.value() == model_[t.id][p];
    }
    if (!io_ok) {
      ++res_->aborted;
      ++res_->error_aborts;
      return;
    }
    Transaction txn(rm_.get());
    for (const auto& [p, v] : writes) {
      const VmOffset off = (uint64_t(t.id) * opt_.slot_pages + p) * kPage;
      if (txn.Write(t.ledger, off, &v, sizeof(v)) != KernReturn::kSuccess) {
        io_ok = false;
      }
    }

    // 3. Bump the tenant's slot on the shared stats board.
    const VmOffset slot = t.shm_base + (uint64_t(t.id) * 64) % (kBoardPages * kPage);
    Result<uint64_t> board = t.task->ReadValue<uint64_t>(slot);
    if (board.ok()) {
      io_ok &= t.task->WriteValue<uint64_t>(slot, board.value() + 1) == KernReturn::kSuccess;
    } else {
      io_ok = false;
    }

    if (!io_ok) {
      txn.Abort();
      ++res_->aborted;
      ++res_->error_aborts;
      return;
    }
    if ((rng_() & 7) == 0) {  // Deliberate abort: must leave no trace.
      txn.Abort();
      ++res_->aborted;
      return;
    }
    if (txn.Commit() == KernReturn::kSuccess) {
      for (const auto& [p, v] : writes) {
        model_[t.id][p] = v;
      }
      ++res_->committed;
      res_->latency.Record(VirtualNow() - t0);
    } else {
      ++res_->aborted;
      ++res_->error_aborts;
    }
  }

  // The mid-run incident: partition the first remote host until the
  // failure detector declares it dead, crash and recover the recovery
  // manager (on momentarily-clean disks, as after a controller reset),
  // heal the link, and rebuild the dead host's tenants.
  void CrashAndHeal() {
    NetLink* link = opt_.hosts > 1 ? links_[1].get() : nullptr;
    const auto wall_deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);

    if (link != nullptr) {
      link->SetPartitioned(true);
      // Push traffic into the void so transport timeouts accrue on top of
      // the heartbeats.
      PortPair sink = PortAllocate("tenant-crash-sink");
      SendRight doomed = link->ProxyForB(sink.send);
      MsgSend(doomed, Message(0x0DEAD), kPoll);
      while (link->a_to_b_status().health != LinkHealth::kPeerDead &&
             link->b_to_a_status().health != LinkHealth::kPeerDead &&
             std::chrono::steady_clock::now() < wall_deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }

    // The manager crashes while the partition is outstanding; its recovery
    // runs on clean disks and is timed in virtual ns on the server clock.
    rm_->SimulateCrash();
    data_disk_->set_fault_injector(nullptr);
    const uint64_t recover_start = hosts_[0]->clock().NowNs();
    rm_->Recover();
    res_->camelot_recover_ns = hosts_[0]->clock().NowNs() - recover_start;
    if (opt_.chaos) {
      data_disk_->set_fault_injector(&faults_);
    }

    // Heal and rebuild: the dead host's tenants lost their proxies, so
    // they remap everything and heal_ns runs until one of them commits.
    const uint64_t heal_start = VirtualNow();
    if (link != nullptr) {
      link->SetPartitioned(false);
      while ((link->a_to_b_status().health != LinkHealth::kUp ||
              link->b_to_a_status().health != LinkHealth::kUp) &&
             std::chrono::steady_clock::now() < wall_deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      for (Tenant& t : tenants_) {
        if (t.host_index == 1) {
          t.file = MappedFile();
          t.ledger = RecoverableSegment();
          t.task.reset();
          SetupTenant(t);
        }
      }
      const uint64_t committed_before = res_->committed;
      for (int attempt = 0; attempt < 16 && res_->committed == committed_before; ++attempt) {
        for (Tenant& t : tenants_) {
          if (t.host_index == 1) {
            RunOneTxn(t);
          }
        }
      }
    }
    res_->heal_ns = VirtualNow() - heal_start;
  }

  void HarvestCounters() {
    for (const auto& h : hosts_) {
      VmStatistics st = h->vm().Statistics();
      res_->pageouts += st.pageouts;
      res_->pageout_runs += st.pageout_runs;
      res_->pageout_run_pages += st.pageout_run_pages;
    }
    res_->wal_enforced = rm_->wal_enforced_count();
    res_->deferred_pageouts = rm_->deferred_pageout_count();
    res_->io_errors = rm_->io_error_count();
    for (const auto& link : links_) {
      if (link != nullptr) {
        res_->bytes_retransmitted += link->bytes_retransmitted();
        res_->fragments_retransmitted += link->fragments_retransmitted();
        res_->messages_lost += link->messages_lost();
        res_->peer_dead_events += link->peer_dead_events();
      }
    }
    res_->shm_forward_drops = shm_->aggregate_counters().forward_drops;
  }

  const TenantWorkloadOptions opt_;
  TenantWorkloadResult* const res_;
  FaultInjector faults_;
  SimClock net_clock_;
  std::mt19937_64 rng_;
  VmSize ledger_size_ = 0;

  std::vector<std::unique_ptr<Kernel>> hosts_;
  std::vector<std::unique_ptr<NetLink>> links_;  // links_[h] reaches host h.
  std::unique_ptr<SimDisk> data_disk_;
  std::unique_ptr<SimDisk> log_disk_;
  std::unique_ptr<SimDisk> fs_disk_;
  std::unique_ptr<RecoveryManager> rm_;
  std::unique_ptr<FsServer> fs_;
  std::unique_ptr<ShmBroker> shm_;
  std::vector<Tenant> tenants_;
  // model_[tenant][slot]: the value the last *committed* transaction wrote.
  std::vector<std::vector<uint64_t>> model_;
};

}  // namespace

TenantWorkloadResult RunTenantWorkload(const TenantWorkloadOptions& options) {
  TenantWorkloadResult result;
  PortGcCollect();
  const size_t ports_before = PortGcLivePortCount();
  {
    Cluster cluster(options, &result);
    cluster.Run();
    cluster.OracleCheck();
    cluster.Shutdown();
  }
  PortGcCollect();
  result.ports_leaked = int64_t(PortGcLivePortCount()) - int64_t(ports_before);
  return result;
}

}  // namespace mach
