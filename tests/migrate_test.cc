// Tests for copy-on-reference task migration (§8.2): demand paging against
// the source task, pre-paging, the eager baseline, transfer accounting, and
// migration across a NORMA link.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/kernel/task.h"
#include "src/managers/migrate/migration_manager.h"
#include "src/net/net_link.h"

namespace mach {
namespace {

constexpr VmSize kPage = 4096;

std::unique_ptr<Kernel> MakeHost(const std::string& name, uint32_t frames = 192) {
  Kernel::Config config;
  config.name = name;
  config.frames = frames;
  config.page_size = kPage;
  config.disk_latency = DiskLatencyModel{0, 0};
  return std::make_unique<Kernel>(config);
}

class MigrateTest : public ::testing::Test {
 protected:
  MigrateTest() {
    src_host_ = MakeHost("src");
    dst_host_ = MakeHost("dst");
    manager_ = std::make_unique<MigrationManager>();
    manager_->Start();
    source_ = src_host_->CreateTask(nullptr, "victim");
  }
  ~MigrateTest() override {
    migrated_.reset();
    source_.reset();
    manager_->Stop();
  }

  // Builds a source task with `pages` of stamped memory; returns the base.
  VmOffset Populate(VmSize pages) {
    VmOffset addr = source_->VmAllocate(pages * kPage).value();
    for (VmOffset p = 0; p < pages; ++p) {
      uint64_t stamp = Stamp(p);
      EXPECT_EQ(source_->Write(addr + p * kPage, &stamp, sizeof(stamp)), KernReturn::kSuccess);
    }
    return addr;
  }

  static uint64_t Stamp(VmOffset page) { return 0x517E000000000000ull + page; }

  std::unique_ptr<Kernel> src_host_;
  std::unique_ptr<Kernel> dst_host_;
  std::unique_ptr<MigrationManager> manager_;
  std::shared_ptr<Task> source_;
  std::shared_ptr<Task> migrated_;
};

TEST_F(MigrateTest, CopyOnReferenceSeesSourceMemory) {
  VmOffset addr = Populate(16);
  MigrationManager::Options options;
  Result<std::shared_ptr<Task>> r = manager_->Migrate(source_, dst_host_.get(), options);
  ASSERT_TRUE(r.ok());
  migrated_ = r.value();
  for (VmOffset p = 0; p < 16; ++p) {
    uint64_t out = 0;
    ASSERT_EQ(migrated_->Read(addr + p * kPage, &out, sizeof(out)), KernReturn::kSuccess);
    EXPECT_EQ(out, Stamp(p));
  }
}

TEST_F(MigrateTest, OnlyTouchedPagesTransfer) {
  VmOffset addr = Populate(64);
  MigrationManager::Options options;
  migrated_ = manager_->Migrate(source_, dst_host_.get(), options).value();
  EXPECT_EQ(manager_->pages_transferred(), 0u);  // Nothing moved yet.
  // Touch 5 pages only.
  for (VmOffset p = 0; p < 5; ++p) {
    uint64_t out = 0;
    ASSERT_EQ(migrated_->Read(addr + p * kPage, &out, sizeof(out)), KernReturn::kSuccess);
  }
  EXPECT_GE(manager_->pages_transferred(), 5u);
  EXPECT_LE(manager_->pages_transferred(), 10u);  // Far fewer than 64.
}

TEST_F(MigrateTest, EagerCopiesEverythingUpFront) {
  VmOffset addr = Populate(32);
  MigrationManager::Options options;
  options.strategy = MigrationManager::Strategy::kEager;
  migrated_ = manager_->Migrate(source_, dst_host_.get(), options).value();
  EXPECT_GE(manager_->pages_transferred(), 32u);
  uint64_t out = 0;
  ASSERT_EQ(migrated_->Read(addr + 31 * kPage, &out, sizeof(out)), KernReturn::kSuccess);
  EXPECT_EQ(out, Stamp(31));
  EXPECT_EQ(manager_->demand_requests(), 0u);  // No faults back to source.
}

TEST_F(MigrateTest, PrePageReducesDemandFaults) {
  VmOffset addr = Populate(16);
  MigrationManager::Options options;
  options.strategy = MigrationManager::Strategy::kPrePage;
  options.prepage_pages = 8;
  migrated_ = manager_->Migrate(source_, dst_host_.get(), options).value();
  // Give the pushed pages a moment to land.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  uint64_t demand_before = manager_->demand_requests();
  for (VmOffset p = 0; p < 8; ++p) {
    uint64_t out = 0;
    ASSERT_EQ(migrated_->Read(addr + p * kPage, &out, sizeof(out)), KernReturn::kSuccess);
    EXPECT_EQ(out, Stamp(p));
  }
  // The pre-paged range needed no (or few) demand faults.
  EXPECT_LE(manager_->demand_requests() - demand_before, 2u);
}

TEST_F(MigrateTest, MigratedWritesAreIndependentOfSource) {
  VmOffset addr = Populate(4);
  MigrationManager::Options options;
  migrated_ = manager_->Migrate(source_, dst_host_.get(), options).value();
  uint64_t v = 0xAAAA;
  ASSERT_EQ(migrated_->Write(addr, &v, sizeof(v)), KernReturn::kSuccess);
  // The source (suspended but readable via vm_read) is unchanged.
  uint64_t src_v = 0;
  ASSERT_EQ(source_->VmRead(addr, &src_v, sizeof(src_v)), KernReturn::kSuccess);
  EXPECT_EQ(src_v, Stamp(0));
}

TEST_F(MigrateTest, MigratedTaskSurvivesCachePressure) {
  // Destination kernel evicts migrated pages (writebacks to the manager);
  // refaults must see the migrated task's own writes.
  VmOffset addr = Populate(8);
  MigrationManager::Options options;
  migrated_ = manager_->Migrate(source_, dst_host_.get(), options).value();
  for (VmOffset p = 0; p < 8; ++p) {
    uint64_t v = 0xBBBB000000000000ull + p;
    ASSERT_EQ(migrated_->Write(addr + p * kPage, &v, sizeof(v)), KernReturn::kSuccess);
  }
  // Pressure: churn enough anonymous memory through the destination.
  VmOffset churn = migrated_->VmAllocate(256 * kPage).value();
  std::vector<uint8_t> junk(256 * kPage, 0x11);
  ASSERT_EQ(migrated_->Write(churn, junk.data(), junk.size()), KernReturn::kSuccess);
  for (VmOffset p = 0; p < 8; ++p) {
    uint64_t out = 0;
    ASSERT_EQ(migrated_->Read(addr + p * kPage, &out, sizeof(out)), KernReturn::kSuccess);
    EXPECT_EQ(out, 0xBBBB000000000000ull + p) << "page " << p;
  }
}

TEST_F(MigrateTest, RunningThreadMigratesAndContinues) {
  // The paper's scenario: a task is frozen, its address space migrates by
  // reference, and the computation resumes on the new host.
  VmOffset addr = source_->VmAllocate(2 * kPage).value();
  uint64_t acc = 0;
  for (VmOffset i = 0; i < 100; ++i) {
    acc += i;
  }
  ASSERT_EQ(source_->WriteValue<uint64_t>(addr, acc), KernReturn::kSuccess);
  ASSERT_EQ(source_->WriteValue<uint64_t>(addr + 8, 100), KernReturn::kSuccess);

  MigrationManager::Options options;
  migrated_ = manager_->Migrate(source_, dst_host_.get(), options).value();
  // Resume the computation on the destination host.
  std::shared_ptr<Thread> worker = migrated_->SpawnThread([addr](Thread& self) {
    uint64_t sum = self.task().ReadValue<uint64_t>(addr).value_or(0);
    uint64_t next = self.task().ReadValue<uint64_t>(addr + 8).value_or(0);
    for (uint64_t i = next; i < 200; ++i) {
      sum += i;
    }
    self.task().WriteValue<uint64_t>(addr, sum);
  });
  worker->Join();
  uint64_t expect = 0;
  for (uint64_t i = 0; i < 200; ++i) {
    expect += i;
  }
  EXPECT_EQ(migrated_->ReadValue<uint64_t>(addr).value(), expect);
}

TEST_F(MigrateTest, MigrationOverNormaLink) {
  SimClock net_clock;
  NetLink link(&src_host_->vm(), &dst_host_->vm(), &net_clock, kNormaLatency);
  VmOffset addr = Populate(16);
  MigrationManager::Options options;
  options.export_port = [&](SendRight object) { return link.ProxyForB(std::move(object)); };
  migrated_ = manager_->Migrate(source_, dst_host_.get(), options).value();
  uint64_t msgs_before = link.messages_forwarded();
  uint64_t out = 0;
  ASSERT_EQ(migrated_->Read(addr + 3 * kPage, &out, sizeof(out)), KernReturn::kSuccess);
  EXPECT_EQ(out, Stamp(3));
  EXPECT_GT(link.messages_forwarded(), msgs_before);  // Page moved on the wire.
  EXPECT_GT(net_clock.NowNs(), 0u);
}

TEST_F(MigrateTest, LinkDeathMidMigrationAbortsThenRetrySucceeds) {
  // The link partitions before the transfer: the failure detector declares
  // the peer dead, the exported proxies die, and Migrate unwinds with a
  // typed kMigrationAborted instead of hanging or half-transferring. After
  // the link heals, retrying the same migration succeeds.
  SimClock net_clock;
  NetFaultConfig faults;
  faults.reliable = true;
  faults.failure_detector = true;
  faults.max_retransmits = 2;
  faults.retransmit_base_ns = 1000;
  faults.degraded_after_timeouts = 1;
  faults.dead_after_timeouts = 3;
  NetLink link(&src_host_->vm(), &dst_host_->vm(), &net_clock, kUmaLatency, faults);

  VmOffset addr = Populate(16);
  MigrationManager::Options options;
  options.strategy = MigrationManager::Strategy::kPrePage;
  options.prepage_pages = 4;
  options.export_port = [&](SendRight object) { return link.ProxyForB(std::move(object)); };

  link.SetPartitioned(true);
  Result<std::shared_ptr<Task>> r = manager_->Migrate(source_, dst_host_.get(), options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status(), KernReturn::kMigrationAborted);
  EXPECT_EQ(manager_->migrations_aborted(), 1u);
  EXPECT_GE(link.peer_dead_events(), 1u);
  // The source was resumed by the unwind and is intact.
  uint64_t src_v = 0;
  ASSERT_EQ(source_->VmRead(addr, &src_v, sizeof(src_v)), KernReturn::kSuccess);
  EXPECT_EQ(src_v, Stamp(0));

  // Heal, and wait for the heartbeats to bring both directions back up.
  link.SetPartitioned(false);
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while ((link.a_to_b_status().health != LinkHealth::kUp ||
          link.b_to_a_status().health != LinkHealth::kUp) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(link.a_to_b_status().health, LinkHealth::kUp);
  ASSERT_EQ(link.b_to_a_status().health, LinkHealth::kUp);

  // Source must be suspended-able again: retry the whole migration.
  Result<std::shared_ptr<Task>> retry = manager_->Migrate(source_, dst_host_.get(), options);
  ASSERT_TRUE(retry.ok()) << KernReturnName(retry.status());
  migrated_ = retry.value();
  for (VmOffset p = 0; p < 16; ++p) {
    uint64_t out = 0;
    ASSERT_EQ(migrated_->Read(addr + p * kPage, &out, sizeof(out)), KernReturn::kSuccess);
    EXPECT_EQ(out, Stamp(p)) << "page " << p;
  }
  EXPECT_EQ(manager_->migrations_aborted(), 1u);  // The retry did not abort.
}

}  // namespace
}  // namespace mach
