// Tests for the message interface to kernel objects (§3.2): operations on
// tasks and threads expressed as RPCs on their ports — including from
// another host over a NetLink proxy ("a thread can suspend another thread
// by sending a suspend message ... even if the request is initiated on
// another node in a network").

#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "src/kernel/kernel.h"
#include "src/kernel/kernel_server.h"
#include "src/kernel/task.h"
#include "src/net/net_link.h"

namespace mach {
namespace {

constexpr VmSize kPage = 4096;

class KernelServerTest : public ::testing::Test {
 protected:
  KernelServerTest() {
    Kernel::Config config;
    config.frames = 128;
    config.page_size = kPage;
    config.disk_latency = DiskLatencyModel{0, 0};
    kernel_ = std::make_unique<Kernel>(config);
    server_ = std::make_unique<KernelServer>(kernel_.get());
    server_->Start();
    task_ = kernel_->CreateTask(nullptr, "served");
    server_->ServeTask(task_);
  }
  ~KernelServerTest() override {
    task_.reset();
    server_->Stop();
  }

  std::unique_ptr<Kernel> kernel_;
  std::unique_ptr<KernelServer> server_;
  std::shared_ptr<Task> task_;
};

TEST_F(KernelServerTest, VmAllocateViaMessage) {
  Result<VmOffset> addr = RpcVmAllocate(task_->task_port(), 2 * kPage);
  ASSERT_TRUE(addr.ok());
  // The allocation is real: direct access works.
  uint32_t v = 5;
  EXPECT_EQ(task_->Write(addr.value(), &v, sizeof(v)), KernReturn::kSuccess);
}

TEST_F(KernelServerTest, VmReadWriteViaMessage) {
  VmOffset addr = task_->VmAllocate(kPage).value();
  const char text[] = "operations on objects are messages";
  ASSERT_EQ(RpcVmWrite(task_->task_port(), addr, text, sizeof(text)), KernReturn::kSuccess);
  Result<std::vector<std::byte>> data = RpcVmRead(task_->task_port(), addr, sizeof(text));
  ASSERT_TRUE(data.ok());
  EXPECT_STREQ(reinterpret_cast<const char*>(data.value().data()), text);
}

TEST_F(KernelServerTest, VmProtectViaMessage) {
  VmOffset addr = task_->VmAllocate(kPage).value();
  ASSERT_EQ(RpcVmProtect(task_->task_port(), addr, kPage, false, kVmProtRead),
            KernReturn::kSuccess);
  uint8_t b = 1;
  EXPECT_EQ(task_->Write(addr, &b, 1), KernReturn::kProtectionFailure);
}

TEST_F(KernelServerTest, VmDeallocateViaMessage) {
  VmOffset addr = task_->VmAllocate(kPage).value();
  ASSERT_EQ(RpcVmDeallocate(task_->task_port(), addr, kPage), KernReturn::kSuccess);
  uint8_t b;
  EXPECT_EQ(task_->Read(addr, &b, 1), KernReturn::kInvalidAddress);
}

TEST_F(KernelServerTest, SuspendResumeViaMessage) {
  std::atomic<int> progress{0};
  std::shared_ptr<Thread> worker = task_->SpawnThread([&](Thread& self) {
    while (self.Checkpoint()) {
      progress.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  server_->ServeThread(worker);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_EQ(RpcTaskSuspend(task_->task_port()), KernReturn::kSuccess);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  int frozen = progress.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_LE(progress.load(), frozen + 1);
  ASSERT_EQ(RpcTaskResume(task_->task_port()), KernReturn::kSuccess);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_GT(progress.load(), frozen);
  ASSERT_EQ(RpcThreadTerminate(worker->thread_port()), KernReturn::kSuccess);
  worker->Join();
}

TEST_F(KernelServerTest, ThreadSuspendViaItsOwnPort) {
  std::atomic<int> progress{0};
  std::shared_ptr<Thread> worker = task_->SpawnThread([&](Thread& self) {
    while (self.Checkpoint()) {
      progress.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  server_->ServeThread(worker);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_EQ(RpcThreadSuspend(worker->thread_port()), KernReturn::kSuccess);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  int frozen = progress.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_LE(progress.load(), frozen + 1);
  ASSERT_EQ(RpcThreadResume(worker->thread_port()), KernReturn::kSuccess);
  ASSERT_EQ(RpcThreadTerminate(worker->thread_port()), KernReturn::kSuccess);
  worker->Join();
}

TEST_F(KernelServerTest, UnknownOperationRejected) {
  Result<Message> reply =
      MsgRpc(task_->task_port(), Message(0x12345678), kWaitForever, std::chrono::seconds(5));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(static_cast<KernReturn>(reply.value().TakeU32().value()),
            KernReturn::kInvalidArgument);
}

TEST_F(KernelServerTest, StatisticsViaMessage) {
  VmOffset addr = task_->VmAllocate(4 * kPage).value();
  std::vector<uint8_t> junk(4 * kPage, 1);
  task_->Write(addr, junk.data(), junk.size());
  Result<Message> reply = MsgRpc(task_->task_port(), Message(kMsgTaskStatistics), kWaitForever,
                                 std::chrono::seconds(5));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(static_cast<KernReturn>(reply.value().TakeU32().value()), KernReturn::kSuccess);
  EXPECT_GT(reply.value().TakeU64().value(), 0u);  // faults
}

TEST_F(KernelServerTest, RemoteHostOperatesOnTaskThroughProxy) {
  // The location-independence claim of §3.2: the same task port capability,
  // proxied across a network link, carries the same authority.
  Kernel::Config config;
  config.frames = 64;
  config.page_size = kPage;
  config.disk_latency = DiskLatencyModel{0, 0};
  Kernel remote_kernel(config);
  SimClock net_clock;
  NetLink link(&kernel_->vm(), &remote_kernel.vm(), &net_clock, kNormaLatency);
  // The "remote" side holds only a proxy of the task port.
  SendRight remote_task_port = link.ProxyForB(task_->task_port());

  Result<VmOffset> addr = RpcVmAllocate(remote_task_port, kPage);
  ASSERT_TRUE(addr.ok());
  const char text[] = "written from another node";
  ASSERT_EQ(RpcVmWrite(remote_task_port, addr.value(), text, sizeof(text)),
            KernReturn::kSuccess);
  // Visible locally in the task.
  char out[64] = {};
  ASSERT_EQ(task_->Read(addr.value(), out, sizeof(text)), KernReturn::kSuccess);
  EXPECT_STREQ(out, text);
  EXPECT_GT(link.messages_forwarded(), 0u);
}

}  // namespace
}  // namespace mach
