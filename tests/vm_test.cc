// Tests for the VM layer: address maps, the Table 3-3 operations,
// copy-on-write (vm_copy, fork inheritance, out-of-line transfer), lazy zero
// fill, pageout under memory pressure through the default pager, and the
// statistics counters.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <numeric>
#include <random>
#include <thread>
#include <utility>
#include <vector>

#include "src/base/fault_injector.h"
#include "src/kernel/kernel.h"
#include "src/kernel/task.h"
#include "src/pager/data_manager.h"
#include "src/vm/address_map.h"
#include "src/vm/vm_system.h"

namespace mach {
namespace {

constexpr VmSize kPage = 4096;

// --- AddressMap unit tests ---------------------------------------------------

class AddressMapTest : public ::testing::Test {
 protected:
  AddressMap map_{kPage, 1u << 20, kPage};

  MapEntry MakeEntry(VmOffset start, VmOffset end) {
    MapEntry e;
    e.start = start;
    e.end = end;
    return e;
  }
};

TEST_F(AddressMapTest, LookupEmpty) {
  EXPECT_EQ(map_.Lookup(0x5000), nullptr);
}

TEST_F(AddressMapTest, InsertAndLookup) {
  ASSERT_EQ(map_.Insert(MakeEntry(0x5000, 0x8000)), KernReturn::kSuccess);
  EXPECT_NE(map_.Lookup(0x5000), nullptr);
  EXPECT_NE(map_.Lookup(0x7FFF), nullptr);
  EXPECT_EQ(map_.Lookup(0x8000), nullptr);
  EXPECT_EQ(map_.Lookup(0x4FFF), nullptr);
}

TEST_F(AddressMapTest, InsertOverlapFails) {
  ASSERT_EQ(map_.Insert(MakeEntry(0x5000, 0x8000)), KernReturn::kSuccess);
  EXPECT_EQ(map_.Insert(MakeEntry(0x7000, 0x9000)), KernReturn::kNoSpace);
  EXPECT_EQ(map_.Insert(MakeEntry(0x4000, 0x6000)), KernReturn::kNoSpace);
  EXPECT_EQ(map_.Insert(MakeEntry(0x8000, 0x9000)), KernReturn::kSuccess);
}

TEST_F(AddressMapTest, FindSpaceSkipsUsedRanges) {
  ASSERT_EQ(map_.Insert(MakeEntry(kPage, kPage + 0x3000)), KernReturn::kSuccess);
  Result<VmOffset> found = map_.FindSpace(0x2000);
  ASSERT_TRUE(found.ok());
  EXPECT_GE(found.value(), kPage + 0x3000u);
}

TEST_F(AddressMapTest, FindSpaceHonoursHint) {
  Result<VmOffset> found = map_.FindSpace(0x1000, 0x50000);
  ASSERT_TRUE(found.ok());
  EXPECT_GE(found.value(), 0x50000u);
}

TEST_F(AddressMapTest, FindSpaceFailsWhenFull) {
  AddressMap tiny(kPage, 4 * kPage, kPage);
  ASSERT_EQ(tiny.Insert(MakeEntry(kPage, 4 * kPage)), KernReturn::kSuccess);
  EXPECT_EQ(tiny.FindSpace(kPage).status(), KernReturn::kNoSpace);
}

TEST_F(AddressMapTest, ClipSplitsEntriesAndPreservesOffsets) {
  MapEntry e = MakeEntry(0x10000, 0x14000);
  e.offset = 0x2000;
  ASSERT_EQ(map_.Insert(std::move(e)), KernReturn::kSuccess);
  std::vector<MapEntry*> clipped = map_.ClipRange(0x11000, 0x13000);
  ASSERT_EQ(clipped.size(), 1u);
  EXPECT_EQ(clipped[0]->start, 0x11000u);
  EXPECT_EQ(clipped[0]->end, 0x13000u);
  EXPECT_EQ(clipped[0]->offset, 0x3000u);
  EXPECT_EQ(map_.entry_count(), 3u);
  // Outer fragments intact.
  EXPECT_EQ(map_.Lookup(0x10000)->end, 0x11000u);
  EXPECT_EQ(map_.Lookup(0x13000)->end, 0x14000u);
  EXPECT_EQ(map_.Lookup(0x13000)->offset, 0x5000u);
}

TEST_F(AddressMapTest, RemoveRangeMiddle) {
  ASSERT_EQ(map_.Insert(MakeEntry(0x10000, 0x14000)), KernReturn::kSuccess);
  std::vector<MapEntry> removed = map_.RemoveRange(0x11000, 0x12000);
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0].start, 0x11000u);
  EXPECT_EQ(map_.Lookup(0x11000), nullptr);
  EXPECT_NE(map_.Lookup(0x10000), nullptr);
  EXPECT_NE(map_.Lookup(0x12000), nullptr);
}

TEST_F(AddressMapTest, RangeFullyCovered) {
  ASSERT_EQ(map_.Insert(MakeEntry(0x10000, 0x12000)), KernReturn::kSuccess);
  ASSERT_EQ(map_.Insert(MakeEntry(0x12000, 0x14000)), KernReturn::kSuccess);
  EXPECT_TRUE(map_.RangeFullyCovered(0x10000, 0x4000));
  EXPECT_TRUE(map_.RangeFullyCovered(0x11000, 0x2000));
  EXPECT_FALSE(map_.RangeFullyCovered(0x10000, 0x5000));
  EXPECT_FALSE(map_.RangeFullyCovered(0xF000, 0x2000));
}

// --- Task-level VM operation tests -------------------------------------------

class VmOpsTest : public ::testing::Test {
 protected:
  VmOpsTest() {
    Kernel::Config config;
    config.frames = 128;
    config.page_size = kPage;
    config.disk_latency = DiskLatencyModel{0, 0};
    kernel_ = std::make_unique<Kernel>(config);
    task_ = kernel_->CreateTask();
  }
  ~VmOpsTest() override { task_.reset(); }

  std::unique_ptr<Kernel> kernel_;
  std::shared_ptr<Task> task_;
};

TEST_F(VmOpsTest, AllocateAnywhereReturnsPageAligned) {
  Result<VmOffset> addr = task_->VmAllocate(3 * kPage);
  ASSERT_TRUE(addr.ok());
  EXPECT_EQ(addr.value() % kPage, 0u);
}

TEST_F(VmOpsTest, AllocateZeroSizeFails) {
  EXPECT_EQ(task_->VmAllocate(0).status(), KernReturn::kInvalidArgument);
}

TEST_F(VmOpsTest, AllocateAtFixedAddress) {
  Result<VmOffset> addr = task_->VmAllocate(kPage, /*anywhere=*/false, 0x40000);
  ASSERT_TRUE(addr.ok());
  EXPECT_EQ(addr.value(), 0x40000u);
  // Same place again: no space.
  EXPECT_EQ(task_->VmAllocate(kPage, false, 0x40000).status(), KernReturn::kNoSpace);
}

TEST_F(VmOpsTest, NewMemoryIsZeroFilled) {
  VmOffset addr = task_->VmAllocate(2 * kPage).value();
  std::vector<uint8_t> buf(2 * kPage, 0xFF);
  ASSERT_EQ(task_->Read(addr, buf.data(), buf.size()), KernReturn::kSuccess);
  for (uint8_t b : buf) {
    ASSERT_EQ(b, 0);
  }
}

TEST_F(VmOpsTest, WriteThenReadRoundTrip) {
  VmOffset addr = task_->VmAllocate(4 * kPage).value();
  std::vector<uint8_t> data(4 * kPage);
  std::iota(data.begin(), data.end(), 0);
  ASSERT_EQ(task_->Write(addr, data.data(), data.size()), KernReturn::kSuccess);
  std::vector<uint8_t> out(4 * kPage);
  ASSERT_EQ(task_->Read(addr, out.data(), out.size()), KernReturn::kSuccess);
  EXPECT_EQ(data, out);
}

TEST_F(VmOpsTest, UnalignedAccessSpanningPages) {
  VmOffset addr = task_->VmAllocate(2 * kPage).value();
  uint64_t v = 0x1122334455667788ull;
  ASSERT_EQ(task_->Write(addr + kPage - 3, &v, sizeof(v)), KernReturn::kSuccess);
  uint64_t out = 0;
  ASSERT_EQ(task_->Read(addr + kPage - 3, &out, sizeof(out)), KernReturn::kSuccess);
  EXPECT_EQ(out, v);
}

TEST_F(VmOpsTest, AccessUnallocatedFails) {
  uint32_t v;
  EXPECT_EQ(task_->Read(0x7FFF0000, &v, sizeof(v)), KernReturn::kInvalidAddress);
  EXPECT_EQ(task_->Write(0x7FFF0000, &v, sizeof(v)), KernReturn::kInvalidAddress);
}

TEST_F(VmOpsTest, DeallocateInvalidatesRange) {
  VmOffset addr = task_->VmAllocate(2 * kPage).value();
  uint32_t v = 7;
  ASSERT_EQ(task_->Write(addr, &v, sizeof(v)), KernReturn::kSuccess);
  ASSERT_EQ(task_->VmDeallocate(addr, 2 * kPage), KernReturn::kSuccess);
  EXPECT_EQ(task_->Read(addr, &v, sizeof(v)), KernReturn::kInvalidAddress);
}

TEST_F(VmOpsTest, PartialDeallocateKeepsRest) {
  VmOffset addr = task_->VmAllocate(3 * kPage).value();
  uint32_t v = 9;
  ASSERT_EQ(task_->Write(addr + 2 * kPage, &v, sizeof(v)), KernReturn::kSuccess);
  ASSERT_EQ(task_->VmDeallocate(addr, kPage), KernReturn::kSuccess);
  uint32_t out = 0;
  EXPECT_EQ(task_->Read(addr, &out, sizeof(out)), KernReturn::kInvalidAddress);
  EXPECT_EQ(task_->Read(addr + 2 * kPage, &out, sizeof(out)), KernReturn::kSuccess);
  EXPECT_EQ(out, 9u);
}

TEST_F(VmOpsTest, ProtectReadOnlyBlocksWrites) {
  VmOffset addr = task_->VmAllocate(kPage).value();
  uint32_t v = 5;
  ASSERT_EQ(task_->Write(addr, &v, sizeof(v)), KernReturn::kSuccess);
  ASSERT_EQ(task_->VmProtect(addr, kPage, false, kVmProtRead), KernReturn::kSuccess);
  EXPECT_EQ(task_->Write(addr, &v, sizeof(v)), KernReturn::kProtectionFailure);
  uint32_t out = 0;
  EXPECT_EQ(task_->Read(addr, &out, sizeof(out)), KernReturn::kSuccess);
  EXPECT_EQ(out, 5u);
  // Restore write access: allowed because max_protection still includes it.
  ASSERT_EQ(task_->VmProtect(addr, kPage, false, kVmProtDefault), KernReturn::kSuccess);
  v = 6;
  EXPECT_EQ(task_->Write(addr, &v, sizeof(v)), KernReturn::kSuccess);
}

TEST_F(VmOpsTest, SetMaxProtectionIsIrrevocable) {
  VmOffset addr = task_->VmAllocate(kPage).value();
  ASSERT_EQ(task_->VmProtect(addr, kPage, /*set_max=*/true, kVmProtRead), KernReturn::kSuccess);
  // Cannot raise protection beyond the new maximum.
  EXPECT_EQ(task_->VmProtect(addr, kPage, false, kVmProtDefault),
            KernReturn::kProtectionFailure);
  uint32_t v = 1;
  EXPECT_EQ(task_->Write(addr, &v, sizeof(v)), KernReturn::kProtectionFailure);
}

TEST_F(VmOpsTest, ProtectSubrangeSplitsEntry) {
  VmOffset addr = task_->VmAllocate(3 * kPage).value();
  ASSERT_EQ(task_->VmProtect(addr + kPage, kPage, false, kVmProtRead), KernReturn::kSuccess);
  uint32_t v = 3;
  EXPECT_EQ(task_->Write(addr, &v, sizeof(v)), KernReturn::kSuccess);
  EXPECT_EQ(task_->Write(addr + kPage, &v, sizeof(v)), KernReturn::kProtectionFailure);
  EXPECT_EQ(task_->Write(addr + 2 * kPage, &v, sizeof(v)), KernReturn::kSuccess);
}

TEST_F(VmOpsTest, ProtectUnallocatedFails) {
  EXPECT_EQ(task_->VmProtect(0x7F000000, kPage, false, kVmProtRead),
            KernReturn::kInvalidAddress);
}

TEST_F(VmOpsTest, VmReadWriteKernelPath) {
  // vm_read/vm_write work without the task ever touching the memory.
  VmOffset addr = task_->VmAllocate(2 * kPage).value();
  std::vector<uint8_t> data(100, 0xAB);
  ASSERT_EQ(task_->VmWrite(addr + 50, data.data(), data.size()), KernReturn::kSuccess);
  std::vector<uint8_t> out(100);
  ASSERT_EQ(task_->VmRead(addr + 50, out.data(), out.size()), KernReturn::kSuccess);
  EXPECT_EQ(data, out);
  // And the user view agrees.
  std::vector<uint8_t> user(100);
  ASSERT_EQ(task_->Read(addr + 50, user.data(), user.size()), KernReturn::kSuccess);
  EXPECT_EQ(data, user);
}

TEST_F(VmOpsTest, VmCopyCreatesIndependentCopy) {
  VmOffset src = task_->VmAllocate(2 * kPage).value();
  VmOffset dst = task_->VmAllocate(2 * kPage).value();
  uint32_t v = 0xCAFE;
  ASSERT_EQ(task_->Write(src, &v, sizeof(v)), KernReturn::kSuccess);
  ASSERT_EQ(task_->VmCopy(src, 2 * kPage, dst), KernReturn::kSuccess);
  uint32_t out = 0;
  ASSERT_EQ(task_->Read(dst, &out, sizeof(out)), KernReturn::kSuccess);
  EXPECT_EQ(out, 0xCAFEu);
  // Writes to the copy do not affect the original, and vice versa.
  uint32_t v2 = 0xBEEF;
  ASSERT_EQ(task_->Write(dst, &v2, sizeof(v2)), KernReturn::kSuccess);
  ASSERT_EQ(task_->Read(src, &out, sizeof(out)), KernReturn::kSuccess);
  EXPECT_EQ(out, 0xCAFEu);
  uint32_t v3 = 0xF00D;
  ASSERT_EQ(task_->Write(src, &v3, sizeof(v3)), KernReturn::kSuccess);
  ASSERT_EQ(task_->Read(dst, &out, sizeof(out)), KernReturn::kSuccess);
  EXPECT_EQ(out, 0xBEEFu);
}

TEST_F(VmOpsTest, VmCopyIsLazy) {
  // Copying a large region must not copy pages eagerly: the copy-on-write
  // fault count only grows when pages are actually written.
  VmOffset src = task_->VmAllocate(16 * kPage).value();
  std::vector<uint8_t> data(16 * kPage, 0x11);
  ASSERT_EQ(task_->Write(src, data.data(), data.size()), KernReturn::kSuccess);
  VmOffset dst = task_->VmAllocate(16 * kPage).value();
  uint64_t cow_before = task_->VmStats().cow_faults;
  ASSERT_EQ(task_->VmCopy(src, 16 * kPage, dst), KernReturn::kSuccess);
  EXPECT_EQ(task_->VmStats().cow_faults, cow_before);
  // Touch one page of the copy: exactly that page is copied.
  uint32_t v = 1;
  ASSERT_EQ(task_->Write(dst + 5 * kPage, &v, sizeof(v)), KernReturn::kSuccess);
  EXPECT_EQ(task_->VmStats().cow_faults, cow_before + 1);
}

TEST_F(VmOpsTest, RegionsReflectState) {
  VmOffset a = task_->VmAllocate(kPage).value();
  VmOffset b = task_->VmAllocate(2 * kPage).value();
  ASSERT_EQ(task_->VmProtect(b, 2 * kPage, false, kVmProtRead), KernReturn::kSuccess);
  ASSERT_EQ(task_->VmInherit(a, kPage, VmInherit::kShare), KernReturn::kSuccess);
  std::vector<RegionInfo> regions = task_->VmRegions();
  ASSERT_EQ(regions.size(), 2u);
  EXPECT_EQ(regions[0].start, a);
  EXPECT_EQ(regions[0].inheritance, VmInherit::kShare);
  EXPECT_EQ(regions[1].start, b);
  EXPECT_EQ(regions[1].protection, kVmProtRead);
}

TEST_F(VmOpsTest, StatisticsTrackFaultsAndZeroFills) {
  VmStatistics before = task_->VmStats();
  VmOffset addr = task_->VmAllocate(4 * kPage).value();
  std::vector<uint8_t> buf(4 * kPage);
  ASSERT_EQ(task_->Read(addr, buf.data(), buf.size()), KernReturn::kSuccess);
  VmStatistics after = task_->VmStats();
  EXPECT_GE(after.faults, before.faults + 4);
  EXPECT_GE(after.zero_fill_count, before.zero_fill_count + 4);
  EXPECT_EQ(after.page_size, kPage);
}

// --- fork / inheritance -------------------------------------------------------

TEST_F(VmOpsTest, ForkCopyInheritanceIsCopyOnWrite) {
  VmOffset addr = task_->VmAllocate(2 * kPage).value();
  uint32_t v = 41;
  ASSERT_EQ(task_->Write(addr, &v, sizeof(v)), KernReturn::kSuccess);

  std::shared_ptr<Task> child = kernel_->CreateTask(task_);
  uint32_t out = 0;
  ASSERT_EQ(child->Read(addr, &out, sizeof(out)), KernReturn::kSuccess);
  EXPECT_EQ(out, 41u);

  // Child writes do not affect the parent.
  uint32_t cv = 42;
  ASSERT_EQ(child->Write(addr, &cv, sizeof(cv)), KernReturn::kSuccess);
  ASSERT_EQ(task_->Read(addr, &out, sizeof(out)), KernReturn::kSuccess);
  EXPECT_EQ(out, 41u);

  // Parent writes do not affect the child.
  uint32_t pv = 43;
  ASSERT_EQ(task_->Write(addr, &pv, sizeof(pv)), KernReturn::kSuccess);
  ASSERT_EQ(child->Read(addr, &out, sizeof(out)), KernReturn::kSuccess);
  EXPECT_EQ(out, 42u);
}

TEST_F(VmOpsTest, ForkShareInheritanceIsReadWriteShared) {
  VmOffset addr = task_->VmAllocate(kPage).value();
  ASSERT_EQ(task_->VmInherit(addr, kPage, VmInherit::kShare), KernReturn::kSuccess);
  uint32_t v = 10;
  ASSERT_EQ(task_->Write(addr, &v, sizeof(v)), KernReturn::kSuccess);

  std::shared_ptr<Task> child = kernel_->CreateTask(task_);
  uint32_t out = 0;
  ASSERT_EQ(child->Read(addr, &out, sizeof(out)), KernReturn::kSuccess);
  EXPECT_EQ(out, 10u);

  // Writes propagate both ways (read/write sharing, §3.3).
  uint32_t cv = 20;
  ASSERT_EQ(child->Write(addr, &cv, sizeof(cv)), KernReturn::kSuccess);
  ASSERT_EQ(task_->Read(addr, &out, sizeof(out)), KernReturn::kSuccess);
  EXPECT_EQ(out, 20u);
  uint32_t pv = 30;
  ASSERT_EQ(task_->Write(addr, &pv, sizeof(pv)), KernReturn::kSuccess);
  ASSERT_EQ(child->Read(addr, &out, sizeof(out)), KernReturn::kSuccess);
  EXPECT_EQ(out, 30u);
}

TEST_F(VmOpsTest, ForkNoneInheritanceLeavesHole) {
  VmOffset addr = task_->VmAllocate(kPage).value();
  ASSERT_EQ(task_->VmInherit(addr, kPage, VmInherit::kNone), KernReturn::kSuccess);
  std::shared_ptr<Task> child = kernel_->CreateTask(task_);
  uint32_t out = 0;
  EXPECT_EQ(child->Read(addr, &out, sizeof(out)), KernReturn::kInvalidAddress);
}

TEST_F(VmOpsTest, ShareInheritanceSurvivesGrandchildren) {
  VmOffset addr = task_->VmAllocate(kPage).value();
  ASSERT_EQ(task_->VmInherit(addr, kPage, VmInherit::kShare), KernReturn::kSuccess);
  std::shared_ptr<Task> child = kernel_->CreateTask(task_);
  std::shared_ptr<Task> grandchild = kernel_->CreateTask(child);
  uint32_t v = 77;
  ASSERT_EQ(grandchild->Write(addr, &v, sizeof(v)), KernReturn::kSuccess);
  uint32_t out = 0;
  ASSERT_EQ(task_->Read(addr, &out, sizeof(out)), KernReturn::kSuccess);
  EXPECT_EQ(out, 77u);
}

TEST_F(VmOpsTest, MixedInheritanceRegions) {
  VmOffset shared = task_->VmAllocate(kPage).value();
  VmOffset copied = task_->VmAllocate(kPage).value();
  ASSERT_EQ(task_->VmInherit(shared, kPage, VmInherit::kShare), KernReturn::kSuccess);
  uint32_t v = 1;
  ASSERT_EQ(task_->Write(shared, &v, sizeof(v)), KernReturn::kSuccess);
  v = 2;
  ASSERT_EQ(task_->Write(copied, &v, sizeof(v)), KernReturn::kSuccess);
  std::shared_ptr<Task> child = kernel_->CreateTask(task_);
  uint32_t w = 100;
  ASSERT_EQ(child->Write(shared, &w, sizeof(w)), KernReturn::kSuccess);
  w = 200;
  ASSERT_EQ(child->Write(copied, &w, sizeof(w)), KernReturn::kSuccess);
  uint32_t out = 0;
  ASSERT_EQ(task_->Read(shared, &out, sizeof(out)), KernReturn::kSuccess);
  EXPECT_EQ(out, 100u);  // Shared: parent sees child write.
  ASSERT_EQ(task_->Read(copied, &out, sizeof(out)), KernReturn::kSuccess);
  EXPECT_EQ(out, 2u);  // Copied: parent unaffected.
}

// --- out-of-line transfer -----------------------------------------------------

TEST_F(VmOpsTest, OolTransferBetweenTasks) {
  std::shared_ptr<Task> receiver = kernel_->CreateTask();
  VmOffset src = task_->VmAllocate(2 * kPage).value();
  std::vector<uint8_t> data(2 * kPage, 0x5A);
  ASSERT_EQ(task_->Write(src, data.data(), data.size()), KernReturn::kSuccess);

  auto copy = kernel_->vm().CopyIn(task_->vm_context(), src, 2 * kPage);
  ASSERT_TRUE(copy.ok());
  Result<VmOffset> dst = kernel_->vm().CopyOut(receiver->vm_context(), copy.value());
  ASSERT_TRUE(dst.ok());

  std::vector<uint8_t> out(2 * kPage);
  ASSERT_EQ(receiver->Read(dst.value(), out.data(), out.size()), KernReturn::kSuccess);
  EXPECT_EQ(out, data);
}

TEST_F(VmOpsTest, OolTransferIsCopyOnWrite) {
  std::shared_ptr<Task> receiver = kernel_->CreateTask();
  VmOffset src = task_->VmAllocate(kPage).value();
  uint32_t v = 111;
  ASSERT_EQ(task_->Write(src, &v, sizeof(v)), KernReturn::kSuccess);

  auto copy = kernel_->vm().CopyIn(task_->vm_context(), src, kPage);
  ASSERT_TRUE(copy.ok());
  // Sender modifies after copyin: receiver must still see the old value.
  uint32_t v2 = 222;
  ASSERT_EQ(task_->Write(src, &v2, sizeof(v2)), KernReturn::kSuccess);

  Result<VmOffset> dst = kernel_->vm().CopyOut(receiver->vm_context(), copy.value());
  ASSERT_TRUE(dst.ok());
  uint32_t out = 0;
  ASSERT_EQ(receiver->Read(dst.value(), &out, sizeof(out)), KernReturn::kSuccess);
  EXPECT_EQ(out, 111u);
}

TEST_F(VmOpsTest, OolCopyConsumedOnlyOnce) {
  VmOffset src = task_->VmAllocate(kPage).value();
  auto copy = kernel_->vm().CopyIn(task_->vm_context(), src, kPage);
  ASSERT_TRUE(copy.ok());
  ASSERT_TRUE(kernel_->vm().CopyOut(task_->vm_context(), copy.value()).ok());
  EXPECT_EQ(kernel_->vm().CopyOut(task_->vm_context(), copy.value()).status(),
            KernReturn::kInvalidArgument);
}

TEST_F(VmOpsTest, OolUnalignedFails) {
  VmOffset src = task_->VmAllocate(kPage).value();
  EXPECT_EQ(kernel_->vm().CopyIn(task_->vm_context(), src + 1, kPage).status(),
            KernReturn::kInvalidArgument);
  EXPECT_EQ(kernel_->vm().CopyIn(task_->vm_context(), src, 100).status(),
            KernReturn::kInvalidArgument);
}

TEST_F(VmOpsTest, OolDroppedWithoutConsumingReleasesRefs) {
  VmOffset src = task_->VmAllocate(kPage).value();
  uint32_t v = 1;
  ASSERT_EQ(task_->Write(src, &v, sizeof(v)), KernReturn::kSuccess);
  {
    auto copy = kernel_->vm().CopyIn(task_->vm_context(), src, kPage);
    ASSERT_TRUE(copy.ok());
  }  // Dropped unconsumed.
  // The source must still be fully usable afterwards.
  uint32_t v2 = 2;
  ASSERT_EQ(task_->Write(src, &v2, sizeof(v2)), KernReturn::kSuccess);
  uint32_t out = 0;
  ASSERT_EQ(task_->Read(src, &out, sizeof(out)), KernReturn::kSuccess);
  EXPECT_EQ(out, 2u);
}

// --- memory pressure / pageout ------------------------------------------------

class PageoutTest : public ::testing::Test {
 protected:
  PageoutTest() {
    Kernel::Config config;
    config.frames = 32;  // Small memory: force paging.
    config.page_size = kPage;
    config.disk_latency = DiskLatencyModel{0, 0};
    kernel_ = std::make_unique<Kernel>(config);
    task_ = kernel_->CreateTask();
  }
  ~PageoutTest() override { task_.reset(); }

  std::unique_ptr<Kernel> kernel_;
  std::shared_ptr<Task> task_;
};

TEST_F(PageoutTest, AnonymousMemoryLargerThanPhysical) {
  // 3x physical memory of anonymous data, written and verified: pages must
  // round-trip through the default pager.
  constexpr VmSize kPages = 96;
  VmOffset addr = task_->VmAllocate(kPages * kPage).value();
  for (VmOffset p = 0; p < kPages; ++p) {
    uint64_t stamp = 0xA000000000000000ull + p;
    ASSERT_EQ(task_->Write(addr + p * kPage + 8, &stamp, sizeof(stamp)), KernReturn::kSuccess);
  }
  for (VmOffset p = 0; p < kPages; ++p) {
    uint64_t out = 0;
    ASSERT_EQ(task_->Read(addr + p * kPage + 8, &out, sizeof(out)), KernReturn::kSuccess);
    ASSERT_EQ(out, 0xA000000000000000ull + p) << "page " << p;
  }
  // The default pager must have really been exercised.
  EXPECT_GT(kernel_->default_pager().pageout_count(), 0u);
  EXPECT_GT(kernel_->default_pager().pagein_count(), 0u);
}

TEST_F(PageoutTest, RandomAccessAgainstReferenceModel) {
  // Property test: a random workload over paged memory matches a flat
  // reference model byte for byte.
  constexpr VmSize kPages = 64;
  VmOffset addr = task_->VmAllocate(kPages * kPage).value();
  std::vector<uint8_t> model(kPages * kPage, 0);
  std::mt19937 rng(12345);
  std::uniform_int_distribution<VmOffset> off_dist(0, kPages * kPage - 64);
  for (int i = 0; i < 500; ++i) {
    VmOffset off = off_dist(rng);
    if (rng() % 2 == 0) {
      uint8_t value = static_cast<uint8_t>(rng());
      std::vector<uint8_t> chunk(1 + rng() % 64, value);
      ASSERT_EQ(task_->Write(addr + off, chunk.data(), chunk.size()), KernReturn::kSuccess);
      std::memcpy(model.data() + off, chunk.data(), chunk.size());
    } else {
      std::vector<uint8_t> chunk(1 + rng() % 64);
      ASSERT_EQ(task_->Read(addr + off, chunk.data(), chunk.size()), KernReturn::kSuccess);
      ASSERT_EQ(std::memcmp(chunk.data(), model.data() + off, chunk.size()), 0)
          << "mismatch at offset " << off << " iteration " << i;
    }
  }
}

TEST_F(PageoutTest, CowPagesSurvivePageout) {
  // COW-forked data must stay correct even when both copies get paged out.
  constexpr VmSize kPages = 24;
  VmOffset addr = task_->VmAllocate(kPages * kPage).value();
  for (VmOffset p = 0; p < kPages; ++p) {
    uint32_t v = 1000 + static_cast<uint32_t>(p);
    ASSERT_EQ(task_->Write(addr + p * kPage, &v, sizeof(v)), KernReturn::kSuccess);
  }
  std::shared_ptr<Task> child = kernel_->CreateTask(task_);
  // Child overwrites every other page.
  for (VmOffset p = 0; p < kPages; p += 2) {
    uint32_t v = 2000 + static_cast<uint32_t>(p);
    ASSERT_EQ(child->Write(addr + p * kPage, &v, sizeof(v)), KernReturn::kSuccess);
  }
  // Blow the cache with extra traffic.
  VmOffset extra = task_->VmAllocate(48 * kPage).value();
  std::vector<uint8_t> junk(48 * kPage, 0x77);
  ASSERT_EQ(task_->Write(extra, junk.data(), junk.size()), KernReturn::kSuccess);
  // Verify both sides.
  for (VmOffset p = 0; p < kPages; ++p) {
    uint32_t parent = 0, kid = 0;
    ASSERT_EQ(task_->Read(addr + p * kPage, &parent, sizeof(parent)), KernReturn::kSuccess);
    ASSERT_EQ(child->Read(addr + p * kPage, &kid, sizeof(kid)), KernReturn::kSuccess);
    EXPECT_EQ(parent, 1000 + p) << "parent page " << p;
    EXPECT_EQ(kid, (p % 2 == 0 ? 2000 + p : 1000 + p)) << "child page " << p;
  }
}

TEST_F(PageoutTest, StatisticsShowPagingActivity) {
  VmOffset addr = task_->VmAllocate(80 * kPage).value();
  std::vector<uint8_t> junk(80 * kPage, 0x33);
  ASSERT_EQ(task_->Write(addr, junk.data(), junk.size()), KernReturn::kSuccess);
  std::vector<uint8_t> out(80 * kPage);
  ASSERT_EQ(task_->Read(addr, out.data(), out.size()), KernReturn::kSuccess);
  VmStatistics st = task_->VmStats();
  EXPECT_GT(st.pageouts, 0u);
  EXPECT_GT(st.pageins, 0u);
}

// --- shadow-chain collapse ----------------------------------------------------

class ShadowCollapseTest : public ::testing::Test {
 protected:
  std::unique_ptr<Kernel> MakeKernel(bool collapse, FaultInjector* inj = nullptr) {
    Kernel::Config config;
    config.frames = 512;
    config.page_size = kPage;
    config.disk_latency = DiskLatencyModel{0, 0};
    config.vm.shadow_collapse = collapse;
    config.fault_injector = inj;
    return std::make_unique<Kernel>(config);
  }

  // Forks `depth` generations, each writing one page then orphaning its
  // parent, and returns the survivor.
  std::shared_ptr<Task> BuildDyingChain(Kernel& kernel, int depth, VmOffset* base) {
    auto task = kernel.CreateTask(nullptr, "gen0");
    *base = task->VmAllocate(4 * kPage).value();
    for (VmOffset p = 0; p < 4; ++p) {
      EXPECT_EQ(task->WriteValue<uint64_t>(*base + p * kPage, p + 1), KernReturn::kSuccess);
    }
    for (int g = 1; g <= depth; ++g) {
      auto child = kernel.CreateTask(task);
      EXPECT_EQ(child->WriteValue<uint64_t>(*base + (1 + g % 3) * kPage, 1000 + g),
                KernReturn::kSuccess);
      task = child;  // Parent dies here.
    }
    return task;
  }
};

TEST_F(ShadowCollapseTest, DeadParentPagesMigrateIntoSurvivingChild) {
  auto kernel = MakeKernel(true);
  VmOffset base = 0;
  auto gen0 = kernel->CreateTask(nullptr, "gen0");
  base = gen0->VmAllocate(2 * kPage).value();
  ASSERT_EQ(gen0->WriteValue<uint64_t>(base, 11), KernReturn::kSuccess);
  ASSERT_EQ(gen0->WriteValue<uint64_t>(base + kPage, 22), KernReturn::kSuccess);
  auto gen1 = kernel->CreateTask(gen0);
  ASSERT_EQ(gen1->WriteValue<uint64_t>(base + kPage, 33), KernReturn::kSuccess);

  gen0.reset();  // Death drops the bottom object to a sole shadow reference.
  VmStatistics st = kernel->vm().Statistics();
  EXPECT_GE(st.shadow_collapses, 1u);
  // Page 0 existed only in the dead parent: it must have been migrated, not
  // copied, and the child's private page 1 must have shadowed the original.
  EXPECT_GE(st.pages_migrated, 1u);
  EXPECT_EQ(gen1->ReadValue<uint64_t>(base).value(), 11u);
  EXPECT_EQ(gen1->ReadValue<uint64_t>(base + kPage).value(), 33u);
  EXPECT_EQ(kernel->vm().ShadowChainLength(gen1->vm_context(), base), 1u);
}

TEST_F(ShadowCollapseTest, FullyCoveringShadowBypassesItsChainEvenWhileParentLives) {
  auto kernel = MakeKernel(true);
  auto parent = kernel->CreateTask(nullptr, "parent");
  VmOffset base = parent->VmAllocate(2 * kPage).value();
  ASSERT_EQ(parent->WriteValue<uint64_t>(base, 1), KernReturn::kSuccess);
  ASSERT_EQ(parent->WriteValue<uint64_t>(base + kPage, 2), KernReturn::kSuccess);
  auto child = kernel->CreateTask(parent);
  // The child overwrites every page, so its shadow fully covers itself and
  // no longer needs the chain below — even though the parent is still alive.
  ASSERT_EQ(child->WriteValue<uint64_t>(base, 10), KernReturn::kSuccess);
  ASSERT_EQ(child->WriteValue<uint64_t>(base + kPage, 20), KernReturn::kSuccess);

  VmStatistics st = kernel->vm().Statistics();
  EXPECT_GE(st.shadow_bypasses, 1u);
  EXPECT_EQ(kernel->vm().ShadowChainLength(child->vm_context(), base), 1u);
  // Both views stay intact: bypass only drops a reference, never pages.
  EXPECT_EQ(parent->ReadValue<uint64_t>(base).value(), 1u);
  EXPECT_EQ(parent->ReadValue<uint64_t>(base + kPage).value(), 2u);
  EXPECT_EQ(child->ReadValue<uint64_t>(base).value(), 10u);
  EXPECT_EQ(child->ReadValue<uint64_t>(base + kPage).value(), 20u);
}

TEST_F(ShadowCollapseTest, DisablingTheFlagPreservesDeepChains) {
  auto kernel = MakeKernel(false);
  VmOffset base = 0;
  auto survivor = BuildDyingChain(*kernel, 8, &base);
  VmStatistics st = kernel->vm().Statistics();
  EXPECT_EQ(st.shadow_collapses, 0u);
  EXPECT_EQ(st.shadow_bypasses, 0u);
  EXPECT_GE(kernel->vm().ShadowChainLength(survivor->vm_context(), base), 8u);
  EXPECT_EQ(survivor->ReadValue<uint64_t>(base).value(), 1u);
}

TEST_F(ShadowCollapseTest, InjectedCollapseFaultDeniesSafely) {
  FaultInjector inj(42);
  inj.SetProbability(VmSystem::kFaultCollapse, 1.0);
  auto kernel = MakeKernel(true, &inj);
  VmOffset base = 0;
  auto survivor = BuildDyingChain(*kernel, 8, &base);
  // Every collapse attempt was suppressed: the chain survives deep, the
  // denial counter records the suppressions, and no data is disturbed.
  VmStatistics st = kernel->vm().Statistics();
  EXPECT_EQ(st.shadow_collapses, 0u);
  EXPECT_EQ(st.shadow_bypasses, 0u);
  EXPECT_GT(st.collapse_denied, 0u);
  EXPECT_GT(inj.Injected(VmSystem::kFaultCollapse), 0u);
  EXPECT_GE(kernel->vm().ShadowChainLength(survivor->vm_context(), base), 8u);
  EXPECT_EQ(survivor->ReadValue<uint64_t>(base).value(), 1u);
}

// Serves every page filled with a per-page stamp byte, so reads that truly
// reach the manager are distinguishable from zero fill and from COW copies.
class PatternPager : public DataManager {
 public:
  PatternPager() : DataManager("pattern-pager") {}
  SendRight NewObject() { return CreateMemoryObject(1); }
  static uint8_t StampFor(VmOffset offset) {
    return static_cast<uint8_t>(0xA0 + (offset / kPage));
  }

 protected:
  void OnDataRequest(uint64_t, uint64_t, PagerDataRequestArgs args) override {
    std::vector<std::byte> data(args.length, std::byte{StampFor(args.offset)});
    ProvideData(args.pager_request_port, args.offset, std::move(data), kVmProtNone);
  }
};

TEST_F(ShadowCollapseTest, ExternalPagerBackedShadowIsNeverSpliced) {
  // A chain of dying forks over an external-pager-backed region: the
  // intermediate anonymous shadows collapse away as usual, but the pager's
  // own object must never be spliced into a child — the manager's holdings
  // can't be enumerated, so a splice would silently drop data the manager
  // still owns. The chain bottoms out at the pager object, unwritten pages
  // keep reading through to the manager, and the denial is observable.
  auto kernel = MakeKernel(true);
  PatternPager pager;
  pager.Start();
  SendRight object = pager.NewObject();
  auto task = kernel->CreateTask(nullptr, "gen0");
  VmOffset base = task->VmAllocateWithPager(4 * kPage, object, 0).value();
  for (int g = 1; g <= 6; ++g) {
    auto child = kernel->CreateTask(task);
    // Pages 1-3 get COW writes; page 0 is only ever read through the chain.
    VmOffset p = 1 + (g % 3);
    ASSERT_EQ(child->WriteValue<uint64_t>(base + p * kPage, 100 + g), KernReturn::kSuccess);
    task = child;  // The parent dies: a collapse opportunity each time.
  }
  VmStatistics st = kernel->vm().Statistics();
  // The anonymous shadows above the pager object did collapse...
  EXPECT_GE(st.shadow_collapses, 1u);
  // ...but every walk that reached the pager object declined the splice.
  EXPECT_GE(st.collapse_denied_external, 1u);
  // Survivor shadow -> pager object, nothing shorter: the pager object was
  // never absorbed even though its only mapping reference is the survivor.
  EXPECT_EQ(kernel->vm().ShadowChainLength(task->vm_context(), base), 2u);
  // Page 0 still reads through to the manager (stamp pattern, not zeros,
  // not a stolen copy)...
  uint8_t byte = 0;
  ASSERT_EQ(task->Read(base + 17, &byte, 1), KernReturn::kSuccess);
  EXPECT_EQ(byte, PatternPager::StampFor(0));
  // ...and the last COW write to each written page survives in the chain.
  EXPECT_EQ(task->ReadValue<uint64_t>(base + kPage).value(), 106u);
  EXPECT_EQ(task->ReadValue<uint64_t>(base + 2 * kPage).value(), 104u);
  EXPECT_EQ(task->ReadValue<uint64_t>(base + 3 * kPage).value(), 105u);
  task.reset();
  pager.Stop();
}

// --- fault-path lock budget ---------------------------------------------------

// Regression guard for the fault path's lock cost (EXPERIMENTS E13): a
// resident read re-fault must stay within its lock budget, and re-activating
// an already-active page must not touch the queue lock at all.
TEST_F(VmOpsTest, ResidentRefaultStaysWithinLockBudget) {
  constexpr int kPages = 16;
  VmOffset addr = task_->VmAllocate(kPages * kPage).value();
  std::vector<uint8_t> buf(kPages * kPage, 0x5A);
  // Warm: fault every page in (zero-fill, write) so each is resident,
  // settled, and on the active queue.
  ASSERT_EQ(task_->Write(addr, buf.data(), buf.size()), KernReturn::kSuccess);
  ASSERT_EQ(task_->Read(addr, buf.data(), buf.size()), KernReturn::kSuccess);

  VmStatistics before = task_->VmStats();
  // Drop the hardware translations so every access re-faults while the pages
  // stay resident and active — the pure fast-path re-fault.
  task_->vm_context().pmap->Remove(addr, addr + kPages * kPage);
  uint32_t v = 0;
  for (int i = 0; i < kPages; ++i) {
    ASSERT_EQ(task_->Read(addr + i * kPage, &v, sizeof(v)), KernReturn::kSuccess);
  }
  VmStatistics after = task_->VmStats();

  const uint64_t faults = after.faults - before.faults;
  ASSERT_GE(faults, uint64_t{kPages});
  // The optimistic path takes the object lock and one hash shard — no map
  // lock and no queue lock at all. Anything above 2 locks per fault (plus a
  // little slack for a stale-snapshot fallback) is a regression.
  const uint64_t lock_ops = after.fault_lock_ops - before.fault_lock_ops;
  EXPECT_LE(lock_ops, faults * 2 + 8);
  // The warm-up's last locked fault published a current snapshot and nothing
  // has mutated the map since, so every re-fault resolves lock-free.
  EXPECT_GE(after.map_lookups_optimistic - before.map_lookups_optimistic,
            uint64_t{kPages});
  // Every re-fault found its page already active and skipped the queue lock.
  EXPECT_GE(after.activations_skipped - before.activations_skipped, uint64_t{kPages});
}

TEST_F(VmOpsTest, MapMutationInvalidatesOptimisticLookup) {
  VmOffset addr = task_->VmAllocate(kPage).value();
  uint32_t v = 0x1234;
  ASSERT_EQ(task_->Write(addr, &v, sizeof(v)), KernReturn::kSuccess);

  // Re-fault once so the snapshot is definitely published and current.
  task_->vm_context().pmap->Remove(addr, addr + kPage);
  ASSERT_EQ(task_->Read(addr, &v, sizeof(v)), KernReturn::kSuccess);

  // Any map mutation moves the generation and strands the snapshot.
  VmOffset scratch = task_->VmAllocate(kPage).value();
  ASSERT_EQ(task_->VmDeallocate(scratch, kPage), KernReturn::kSuccess);

  VmStatistics before = task_->VmStats();
  task_->vm_context().pmap->Remove(addr, addr + kPage);
  ASSERT_EQ(task_->Read(addr, &v, sizeof(v)), KernReturn::kSuccess);
  VmStatistics mid = task_->VmStats();
  // The stale snapshot was detected (a retry), the fault fell back to the
  // locked path, and that path republished the snapshot…
  EXPECT_GE(mid.map_lookup_retries - before.map_lookup_retries, uint64_t{1});
  EXPECT_EQ(mid.map_lookups_optimistic, before.map_lookups_optimistic);

  // …so the next re-fault resolves lock-free again.
  task_->vm_context().pmap->Remove(addr, addr + kPage);
  ASSERT_EQ(task_->Read(addr, &v, sizeof(v)), KernReturn::kSuccess);
  VmStatistics after = task_->VmStats();
  EXPECT_GE(after.map_lookups_optimistic - mid.map_lookups_optimistic, uint64_t{1});
}

TEST(VmConfigTest, OptimisticLookupOffUsesLockedPathOnly) {
  Kernel::Config config;
  config.frames = 128;
  config.page_size = kPage;
  config.disk_latency = DiskLatencyModel{0, 0};
  config.vm.optimistic_map_lookup = false;
  Kernel kernel(config);
  std::shared_ptr<Task> task = kernel.CreateTask();

  constexpr int kPages = 8;
  VmOffset addr = task->VmAllocate(kPages * kPage).value();
  std::vector<uint8_t> buf(kPages * kPage, 0x5A);
  ASSERT_EQ(task->Write(addr, buf.data(), buf.size()), KernReturn::kSuccess);

  task->vm_context().pmap->Remove(addr, addr + kPages * kPage);
  VmStatistics before = task->VmStats();
  uint32_t v = 0;
  for (int i = 0; i < kPages; ++i) {
    ASSERT_EQ(task->Read(addr + i * kPage, &v, sizeof(v)), KernReturn::kSuccess);
  }
  VmStatistics st = task->VmStats();
  // The ablation config never takes the lock-free tier…
  EXPECT_EQ(st.map_lookups_optimistic, 0u);
  EXPECT_EQ(st.map_lookup_retries, 0u);
  // …but the in-lock fast path still bounds a resident re-fault at 3 locks
  // (map shared + object + hash shard; queue skipped by the tag fast-out).
  const uint64_t faults = st.faults - before.faults;
  ASSERT_GE(faults, uint64_t{kPages});
  EXPECT_LE(st.fault_lock_ops - before.fault_lock_ops, faults * 3);
}

TEST_F(VmOpsTest, KernelReadBatchesQueueOperations) {
  // vm_read across many freshly zero-filled pages: each page's activation
  // rides the per-thread batch, so the whole sweep pays for at most
  // ceil(pages / QueueBatch::kCapacity) queue-lock acquisitions, observable
  // as queue_batch_flushes.
  constexpr int kPages = 20;
  VmOffset addr = task_->VmAllocate(kPages * kPage).value();
  std::vector<std::byte> buf(kPages * kPage);
  VmStatistics before = task_->VmStats();
  ASSERT_EQ(kernel_->vm().ReadMemory(task_->vm_context(), addr, buf.data(), buf.size()),
            KernReturn::kSuccess);
  VmStatistics after = task_->VmStats();
  EXPECT_GE(after.queue_batch_flushes - before.queue_batch_flushes, uint64_t{1});
  EXPECT_GE(after.zero_fill_count - before.zero_fill_count, uint64_t{kPages});
}

// --- clustered pageout -------------------------------------------------------

// Records every pager_data_write's (offset, length) so tests can assert the
// exact run boundaries the kernel chose.
class RunRecordingPager : public DataManager {
 public:
  RunRecordingPager() : DataManager("run-recorder") {}

  SendRight NewObject() { return CreateMemoryObject(1); }
  SendRight request_port() const {
    std::lock_guard<std::mutex> g(mu_);
    return request_port_;
  }
  std::vector<std::pair<VmOffset, VmSize>> writes() const {
    std::lock_guard<std::mutex> g(mu_);
    return writes_;
  }
  bool WaitForWrites(size_t n) const {
    auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (std::chrono::steady_clock::now() < deadline) {
      {
        std::lock_guard<std::mutex> g(mu_);
        if (writes_.size() >= n) {
          return true;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return false;
  }

 protected:
  void OnInit(uint64_t, uint64_t, PagerInitArgs args) override {
    std::lock_guard<std::mutex> g(mu_);
    request_port_ = args.pager_request_port;
  }
  void OnDataRequest(uint64_t, uint64_t, PagerDataRequestArgs args) override {
    ProvideData(args.pager_request_port, args.offset,
                std::vector<std::byte>(args.length, std::byte{0x11}), kVmProtNone);
  }
  void OnDataWrite(uint64_t, uint64_t, PagerDataWriteArgs args) override {
    std::lock_guard<std::mutex> g(mu_);
    writes_.emplace_back(args.offset, args.data.size());
  }

 private:
  mutable std::mutex mu_;
  SendRight request_port_;
  std::vector<std::pair<VmOffset, VmSize>> writes_;
};

class PageoutClusterTest : public ::testing::Test {
 protected:
  // An 8-page pager-backed region with pages {0,1,2, 4,5, 7} dirty and
  // {3, 6} resident but clean — two run-splitting clean gaps.
  void DirtyGappedPattern(Task& task, VmOffset base) {
    std::vector<std::byte> all(8 * kPage);
    ASSERT_EQ(task.Read(base, all.data(), all.size()), KernReturn::kSuccess);
    for (VmOffset p : {0, 1, 2, 4, 5, 7}) {
      uint64_t v = 0xD1127'0000ull + p;
      ASSERT_EQ(task.Write(base + p * kPage, &v, sizeof(v)), KernReturn::kSuccess);
    }
  }

  std::unique_ptr<Kernel> MakeKernel(bool clustering) {
    Kernel::Config config;
    config.frames = 128;
    config.page_size = kPage;
    config.disk_latency = DiskLatencyModel{0, 0};
    config.vm.pageout_clustering = clustering;
    return std::make_unique<Kernel>(config);
  }
};

TEST_F(PageoutClusterTest, CleanRequestBatchesContiguousDirtyRuns) {
  auto kernel = MakeKernel(true);
  auto task = kernel->CreateTask();
  RunRecordingPager pager;
  pager.Start();
  VmOffset base = task->VmAllocateWithPager(8 * kPage, pager.NewObject(), 0).value();
  DirtyGappedPattern(*task, base);

  ASSERT_EQ(DataManager::CleanRequest(pager.request_port(), 0, 8 * kPage),
            KernReturn::kSuccess);
  ASSERT_TRUE(pager.WaitForWrites(3));
  std::vector<std::pair<VmOffset, VmSize>> writes = pager.writes();
  std::sort(writes.begin(), writes.end());
  // Three messages, split exactly at the clean pages 3 and 6.
  ASSERT_EQ(writes.size(), 3u);
  EXPECT_EQ(writes[0], (std::pair<VmOffset, VmSize>{0, 3 * kPage}));
  EXPECT_EQ(writes[1], (std::pair<VmOffset, VmSize>{4 * kPage, 2 * kPage}));
  EXPECT_EQ(writes[2], (std::pair<VmOffset, VmSize>{7 * kPage, kPage}));
  // Counters agree: 3 messages carrying 6 pages.
  VmStatistics st = kernel->vm().Statistics();
  EXPECT_EQ(st.pageout_runs, 3u);
  EXPECT_EQ(st.pageout_run_pages, 6u);
  EXPECT_EQ(st.pageouts, 6u);
  task.reset();
  pager.Stop();
}

TEST_F(PageoutClusterTest, ClusteringOffWritesOnePagePerMessage) {
  auto kernel = MakeKernel(false);
  auto task = kernel->CreateTask();
  RunRecordingPager pager;
  pager.Start();
  VmOffset base = task->VmAllocateWithPager(8 * kPage, pager.NewObject(), 0).value();
  DirtyGappedPattern(*task, base);

  ASSERT_EQ(DataManager::CleanRequest(pager.request_port(), 0, 8 * kPage),
            KernReturn::kSuccess);
  ASSERT_TRUE(pager.WaitForWrites(6));
  // Six single-page messages: the ablation restores page-at-a-time
  // write-back exactly.
  for (const auto& [off, len] : pager.writes()) {
    EXPECT_EQ(len, kPage) << "offset " << off;
  }
  VmStatistics st = kernel->vm().Statistics();
  EXPECT_EQ(st.pageout_runs, 6u);
  EXPECT_EQ(st.pageout_run_pages, 6u);
  EXPECT_EQ(st.pageouts, 6u);
  task.reset();
  pager.Stop();
}

TEST_F(PageoutClusterTest, ClusteringReducesDataWriteMessageCount) {
  // The E15 regression bar, counter-verified: the same 64-page dirty
  // flush costs ceil(64 / pageout_cluster_max) pager_data_write messages
  // with clustering on and 64 with it off, at identical pages written.
  uint64_t runs[2] = {0, 0};
  for (bool clustering : {true, false}) {
    auto kernel = MakeKernel(clustering);
    auto task = kernel->CreateTask();
    RunRecordingPager pager;
    pager.Start();
    VmOffset base = task->VmAllocateWithPager(64 * kPage, pager.NewObject(), 0).value();
    for (VmOffset p = 0; p < 64; ++p) {
      uint64_t v = p;
      ASSERT_EQ(task->Write(base + p * kPage, &v, sizeof(v)), KernReturn::kSuccess);
    }
    ASSERT_EQ(DataManager::FlushRequest(pager.request_port(), 0, 64 * kPage),
              KernReturn::kSuccess);
    ASSERT_TRUE(pager.WaitForWrites(clustering ? 4 : 64));
    VmStatistics st = kernel->vm().Statistics();
    EXPECT_EQ(st.pageouts, 64u);
    EXPECT_EQ(st.pageout_run_pages, 64u);
    runs[clustering ? 0 : 1] = st.pageout_runs;
    task.reset();
    pager.Stop();
  }
  EXPECT_EQ(runs[0], 4u);  // 64 pages / pageout_cluster_max(16).
  EXPECT_EQ(runs[1], 64u);
  EXPECT_LT(runs[0], runs[1]);
}

// --- adaptive fault-ahead ----------------------------------------------------

// Records every pager_data_request's (offset, length) and answers it with a
// single provide carrying each page's own stamp — so a batched read is
// distinguishable both from repeated single-page reads and from zero fill.
class ReadRecordingPager : public DataManager {
 public:
  ReadRecordingPager() : DataManager("read-recorder") {}
  SendRight NewObject() { return CreateMemoryObject(1); }
  static uint8_t StampFor(VmOffset offset) {
    return static_cast<uint8_t>(0x30 + (offset / kPage) % 97);
  }
  std::vector<std::pair<VmOffset, VmSize>> requests() const {
    std::lock_guard<std::mutex> g(mu_);
    return requests_;
  }

 protected:
  void OnDataRequest(uint64_t, uint64_t, PagerDataRequestArgs args) override {
    {
      std::lock_guard<std::mutex> g(mu_);
      requests_.emplace_back(args.offset, args.length);
    }
    std::vector<std::byte> data(args.length);
    for (VmSize d = 0; d < args.length; d += kPage) {
      std::fill_n(data.begin() + d, kPage, std::byte{StampFor(args.offset + d)});
    }
    ProvideData(args.pager_request_port, args.offset, std::move(data), kVmProtNone);
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<VmOffset, VmSize>> requests_;
};

class FaultAheadTest : public ::testing::Test {
 protected:
  std::unique_ptr<Kernel> MakeKernel(bool fault_ahead, uint32_t max = 8) {
    Kernel::Config config;
    config.frames = 256;
    config.page_size = kPage;
    config.disk_latency = DiskLatencyModel{0, 0};
    config.vm.fault_ahead = fault_ahead;
    config.vm.fault_ahead_max = max;
    return std::make_unique<Kernel>(config);
  }

  // Reads one byte from page `p` of the region and checks its stamp.
  static void ReadPage(Task& task, VmOffset base, VmOffset p) {
    uint8_t byte = 0;
    ASSERT_EQ(task.Read(base + p * kPage, &byte, 1), KernReturn::kSuccess);
    EXPECT_EQ(byte, ReadRecordingPager::StampFor(p * kPage)) << "page " << p;
  }
};

TEST_F(FaultAheadTest, SequentialStreakDoublesTheWindowUpToTheCap) {
  auto kernel = MakeKernel(true, 8);
  auto task = kernel->CreateTask();
  ReadRecordingPager pager;
  pager.Start();
  VmOffset base = task->VmAllocateWithPager(64 * kPage, pager.NewObject(), 0).value();
  for (VmOffset p = 0; p < 64; ++p) {
    ReadPage(*task, base, p);
  }
  // The window scales 1 → 2 → 4 → 8 and saturates at the cap; the final
  // single page is the entry-boundary clamp at the region's last page.
  const std::vector<VmSize> expect_pages = {1, 2, 4, 8, 8, 8, 8, 8, 8, 8, 1};
  std::vector<std::pair<VmOffset, VmSize>> reqs = pager.requests();
  ASSERT_EQ(reqs.size(), expect_pages.size());
  VmOffset expect_off = 0;
  for (size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(reqs[i].first, expect_off) << "request " << i;
    EXPECT_EQ(reqs[i].second, expect_pages[i] * kPage) << "request " << i;
    expect_off += expect_pages[i] * kPage;
  }
  // Counters agree: 9 batched requests carrying 53 speculative pages, every
  // one of them consumed by a later demand read.
  VmStatistics st = kernel->vm().Statistics();
  EXPECT_EQ(st.fault_ahead_requests, 9u);
  EXPECT_EQ(st.fault_ahead_pages, 53u);
  EXPECT_EQ(st.fault_ahead_unused, 0u);
  task.reset();
  pager.Stop();
}

TEST_F(FaultAheadTest, RandomAccessStaysSinglePage) {
  auto kernel = MakeKernel(true, 8);
  auto task = kernel->CreateTask();
  ReadRecordingPager pager;
  pager.Start();
  VmOffset base = task->VmAllocateWithPager(64 * kPage, pager.NewObject(), 0).value();
  // No access is the successor of the previous one: the detector must never
  // open a window, so the wire sees exactly one page per request.
  for (VmOffset p : {9, 2, 30, 17, 44, 5, 58, 23}) {
    ReadPage(*task, base, p);
  }
  std::vector<std::pair<VmOffset, VmSize>> reqs = pager.requests();
  ASSERT_EQ(reqs.size(), 8u);
  for (const auto& [off, len] : reqs) {
    EXPECT_EQ(len, kPage) << "offset " << off;
  }
  VmStatistics st = kernel->vm().Statistics();
  EXPECT_EQ(st.fault_ahead_requests, 0u);
  EXPECT_EQ(st.fault_ahead_pages, 0u);
  task.reset();
  pager.Stop();
}

TEST_F(FaultAheadTest, WindowCollapsesOnRandomJumpAndRebuilds) {
  auto kernel = MakeKernel(true, 8);
  auto task = kernel->CreateTask();
  ReadRecordingPager pager;
  pager.Start();
  VmOffset base = task->VmAllocateWithPager(64 * kPage, pager.NewObject(), 0).value();
  for (VmOffset p : {0, 1, 2, 3}) {  // Grow: requests of 1, 2, 4 pages.
    ReadPage(*task, base, p);
  }
  ReadPage(*task, base, 40);  // Random jump: collapse to one page.
  ReadPage(*task, base, 50);  // Still random.
  ReadPage(*task, base, 51);  // A width-1 window predicts its successor:
  ReadPage(*task, base, 52);  // the streak re-opens at 51, 52 is covered.
  const std::vector<std::pair<VmOffset, VmSize>> expect = {
      {0, 1}, {1, 2}, {3, 4}, {40, 1}, {50, 1}, {51, 2}};
  std::vector<std::pair<VmOffset, VmSize>> reqs = pager.requests();
  ASSERT_EQ(reqs.size(), expect.size());
  for (size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(reqs[i].first, expect[i].first * kPage) << "request " << i;
    EXPECT_EQ(reqs[i].second, expect[i].second * kPage) << "request " << i;
  }
  task.reset();
  pager.Stop();
}

TEST_F(FaultAheadTest, AblationOffIsOnePagePerRequest) {
  auto kernel = MakeKernel(false);
  auto task = kernel->CreateTask();
  ReadRecordingPager pager;
  pager.Start();
  VmOffset base = task->VmAllocateWithPager(16 * kPage, pager.NewObject(), 0).value();
  for (VmOffset p = 0; p < 16; ++p) {
    ReadPage(*task, base, p);
  }
  // The ablation restores demand paging exactly: one request per page even
  // under a perfectly sequential scan, and no fault-ahead accounting.
  std::vector<std::pair<VmOffset, VmSize>> reqs = pager.requests();
  ASSERT_EQ(reqs.size(), 16u);
  for (const auto& [off, len] : reqs) {
    EXPECT_EQ(len, kPage) << "offset " << off;
  }
  VmStatistics st = kernel->vm().Statistics();
  EXPECT_EQ(st.fault_ahead_requests, 0u);
  EXPECT_EQ(st.fault_ahead_pages, 0u);
  EXPECT_EQ(st.fault_ahead_unused, 0u);
  task.reset();
  pager.Stop();
}

TEST_F(FaultAheadTest, RunStopsAtAResidentPage) {
  auto kernel = MakeKernel(true, 8);
  auto task = kernel->CreateTask();
  ReadRecordingPager pager;
  pager.Start();
  VmOffset base = task->VmAllocateWithPager(64 * kPage, pager.NewObject(), 0).value();
  ReadPage(*task, base, 5);  // Make page 5 resident.
  for (VmOffset p = 0; p < 6; ++p) {
    ReadPage(*task, base, p);
  }
  // The 4-page window at page 3 truncates to {3, 4}: speculation never
  // re-requests (or double-allocates) the already-resident page 5.
  const std::vector<std::pair<VmOffset, VmSize>> expect = {
      {5, 1}, {0, 1}, {1, 2}, {3, 2}};
  std::vector<std::pair<VmOffset, VmSize>> reqs = pager.requests();
  ASSERT_EQ(reqs.size(), expect.size());
  for (size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(reqs[i].first, expect[i].first * kPage) << "request " << i;
    EXPECT_EQ(reqs[i].second, expect[i].second * kPage) << "request " << i;
  }
  task.reset();
  pager.Stop();
}

TEST_F(FaultAheadTest, UnusedSpeculativePagesAreCountedHonestly) {
  auto kernel = MakeKernel(true, 8);
  auto task = kernel->CreateTask();
  ReadRecordingPager pager;
  pager.Start();
  VmOffset base = task->VmAllocateWithPager(64 * kPage, pager.NewObject(), 0).value();
  // Misses at 0, 1, 3, 7 speculatively pull in 11 extra pages (2, 4-6,
  // 8-14). Demand-reading two of them consumes their speculation; the
  // other nine die with the readahead mark still set when the region is
  // torn down and must show up as waste — no more, no less.
  for (VmOffset p : {0, 1, 3, 7}) {
    ReadPage(*task, base, p);
  }
  ReadPage(*task, base, 2);  // Consumed: resident hit clears the mark.
  ReadPage(*task, base, 4);
  VmStatistics before = kernel->vm().Statistics();
  EXPECT_EQ(before.fault_ahead_pages, 1 + 3 + 7u);
  EXPECT_EQ(before.fault_ahead_unused, 0u);
  ASSERT_EQ(task->VmDeallocate(base, 64 * kPage), KernReturn::kSuccess);
  VmStatistics after = kernel->vm().Statistics();
  EXPECT_EQ(after.fault_ahead_unused, 9u);
  task.reset();
  pager.Stop();
}

// A pager that dies (drops its memory-object port without answering) the
// moment it sees a multi-page fault-ahead request.
class MidRunDyingPager : public DataManager {
 public:
  MidRunDyingPager() : DataManager("mid-run-dying") {}
  SendRight NewObject() {
    object_ = CreateMemoryObject(1);
    return object_;
  }

 protected:
  void OnDataRequest(uint64_t, uint64_t, PagerDataRequestArgs args) override {
    if (args.length > kPage) {
      DestroyMemoryObject(object_);
      return;
    }
    ProvideData(args.pager_request_port, args.offset,
                std::vector<std::byte>(args.length, std::byte{0x77}), kVmProtNone);
  }

 private:
  SendRight object_;
};

TEST_F(FaultAheadTest, PagerDeathMidRunSettlesEveryPlaceholder) {
  // Regression: a pager dying while a fault-ahead run is outstanding must
  // resolve the demanded page *and* every pinned speculative placeholder —
  // nothing may stay busy forever and no frame may leak.
  Kernel::Config config;
  config.frames = 256;
  config.page_size = kPage;
  config.disk_latency = DiskLatencyModel{0, 0};
  config.vm.fault_ahead_max = 8;
  config.vm.on_pager_timeout = VmSystem::Config::OnPagerTimeout::kZeroFill;
  auto kernel = std::make_unique<Kernel>(config);
  auto task = kernel->CreateTask();
  MidRunDyingPager pager;
  pager.Start();
  VmOffset base = task->VmAllocateWithPager(8 * kPage, pager.NewObject(), 0).value();

  uint8_t byte = 0;
  ASSERT_EQ(task->Read(base, &byte, 1), KernReturn::kSuccess);  // Single page, served.
  EXPECT_EQ(byte, 0x77);
  // Page 1 misses sequentially: a 2-page request goes out and the pager
  // dies on it. The death path zero-fills both placeholders now.
  ASSERT_EQ(task->Read(base + kPage, &byte, 1), KernReturn::kSuccess);
  EXPECT_EQ(byte, 0x00);
  ASSERT_EQ(task->Read(base + 2 * kPage, &byte, 1), KernReturn::kSuccess);
  EXPECT_EQ(byte, 0x00);

  VmStatistics st = kernel->vm().Statistics();
  EXPECT_GE(st.manager_deaths, 1u);
  EXPECT_GE(st.death_resolved_pages, 2u);  // Demanded page + speculative one.
  EXPECT_EQ(st.fault_ahead_requests, 1u);
  EXPECT_EQ(st.fault_ahead_pages, 1u);
  // The severed region now behaves like anonymous memory.
  uint64_t v = 0xFEED;
  ASSERT_EQ(task->WriteValue<uint64_t>(base + 3 * kPage, v), KernReturn::kSuccess);
  EXPECT_EQ(task->ReadValue<uint64_t>(base + 3 * kPage).value(), v);
  task.reset();
  pager.Stop();
}

}  // namespace
}  // namespace mach
