// Multi-threaded VM stress tests for the fault-path lock hierarchy: many
// threads fault the same inherited-copy region while the pageout daemon
// reclaims under memory pressure and the backing data manager dies with
// requests in flight (§5.5, §6.2.1). The assertions are about *content*,
// not timing: every page a thread wrote must read back exactly as written
// (a single-threaded oracle model of the workload), pages never written
// must be whole (pager pattern or the §6.2.1 zero-fill, never torn), and
// teardown must drain every frame back to the free pool.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/kernel/task.h"
#include "src/pager/data_manager.h"

namespace mach {
namespace {

constexpr VmSize kPage = 4096;
constexpr int kThreads = 8;
constexpr int kPagesPerThread = 24;
constexpr int kWrittenPages = kThreads * kPagesPerThread;
constexpr int kReadPages = 16;  // Shared read-only tail, never written.
constexpr int kRegionPages = kWrittenPages + kReadPages;
constexpr uint8_t kPagerFill = 0x5A;

// Serves every page filled with kPagerFill until told to go silent (the
// errant manager of §6.1); silence leaves faulting threads parked on their
// busy placeholders so a subsequent port death hits them mid-fault.
class StampPager : public DataManager {
 public:
  StampPager() : DataManager("stamp-pager") {}

  std::atomic<bool> silent{false};

  SendRight NewObject() { return CreateMemoryObject(1); }

 protected:
  void OnDataRequest(uint64_t id, uint64_t cookie, PagerDataRequestArgs args) override {
    if (silent.load()) {
      return;
    }
    std::vector<std::byte> data(args.length, std::byte{kPagerFill});
    ProvideData(args.pager_request_port, args.offset, std::move(data), kVmProtNone);
  }
};

std::unique_ptr<Kernel> MakeKernel(uint32_t frames) {
  Kernel::Config config;
  config.frames = frames;
  config.page_size = kPage;
  config.disk_latency = DiskLatencyModel{0, 0};
  // Blocked faults must survive the manager's death: settle by zero-fill
  // rather than error, and do not wait long for a manager that is gone.
  config.vm.on_pager_timeout = VmSystem::Config::OnPagerTimeout::kZeroFill;
  config.vm.pager_timeout = std::chrono::milliseconds(2000);
  return std::make_unique<Kernel>(config);
}

uint8_t StampFor(int thread) { return static_cast<uint8_t>(0x10 + thread); }

// Polls the free-frame count back up to (near) `floor`: no stuck busy
// pages, no leaked placeholder frames, no pinned stragglers.
void ExpectTeardownToBaseline(Kernel& kernel, uint64_t floor) {
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  uint64_t free = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    free = kernel.phys().free_frames();
    if (free + 4 >= floor) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(free + 4, floor) << "frames leaked after teardown";
}

// The headline stress: eight threads push copy-on-write pages out of one
// pager-backed region inherited by a child task, with only enough physical
// memory for a fraction of the working set (so reclaim runs throughout)
// and a manager that goes silent and then dies halfway through.
TEST(VmConcurrentTest, InheritedCowStormWithReclaimAndPagerDeath) {
  auto kernel = MakeKernel(128);  // << 208-page working set: reclaim runs.
  const uint64_t free_baseline = kernel->phys().free_frames();

  StampPager pager;
  pager.Start();
  SendRight object = pager.NewObject();

  auto parent = kernel->CreateTask(nullptr, "cow-parent");
  const VmOffset base =
      parent->VmAllocateWithPager(VmSize{kRegionPages} * kPage, object, 0).value();

  // Prime a few pages so the inherited chain has resident state to copy.
  uint8_t probe = 0;
  ASSERT_EQ(parent->Read(base, &probe, 1), KernReturn::kSuccess);
  EXPECT_EQ(probe, kPagerFill);

  auto child = kernel->CreateTask(parent, "cow-child");

  std::atomic<int> pages_done{0};
  std::atomic<bool> pager_killed{false};
  std::atomic<int> read_errors{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::vector<uint8_t> page(kPage, StampFor(t));
      std::vector<uint8_t> back(kPage);
      for (int p = 0; p < kPagesPerThread; ++p) {
        const VmOffset addr = base + static_cast<VmSize>(t * kPagesPerThread + p) * kPage;
        if (child->Write(addr, page.data(), page.size()) != KernReturn::kSuccess) {
          ++read_errors;
          continue;
        }
        // Interleave reads of the shared, never-written tail: these fault
        // against the pager (or its corpse) and must come back whole.
        const VmOffset shared =
            base + static_cast<VmSize>(kWrittenPages + (p % kReadPages)) * kPage;
        if (child->Read(shared, back.data(), back.size()) == KernReturn::kSuccess) {
          if (back[0] != kPagerFill && back[0] != 0) {
            ++read_errors;
          }
        }
        // Halfway through the aggregate workload: the manager stops
        // answering, then its object port dies with requests in flight.
        if (pages_done.fetch_add(1) + 1 == kWrittenPages / 2 &&
            !pager_killed.exchange(true)) {
          pager.silent = true;
          pager.DestroyMemoryObject(object);
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(read_errors.load(), 0);

  // Single-threaded oracle pass: every page a thread wrote reads back as
  // one solid stamp — reclaim cycles through the default pager and the
  // mid-run manager death must not have torn or dropped any of them.
  std::vector<uint8_t> got(kPage);
  for (int t = 0; t < kThreads; ++t) {
    for (int p = 0; p < kPagesPerThread; ++p) {
      const VmOffset addr = base + static_cast<VmSize>(t * kPagesPerThread + p) * kPage;
      ASSERT_EQ(child->Read(addr, got.data(), got.size()), KernReturn::kSuccess)
          << "thread " << t << " page " << p;
      const uint8_t want = StampFor(t);
      for (int i = 0; i < static_cast<int>(kPage); ++i) {
        ASSERT_EQ(got[i], want) << "thread " << t << " page " << p << " byte " << i;
      }
    }
  }
  // Never-written pages are uniform: pager pattern, or zero if their fill
  // was settled by the death / zero-fill policy. Anything mixed is a torn
  // page escaping the busy protocol.
  for (int p = 0; p < kReadPages; ++p) {
    const VmOffset addr = base + static_cast<VmSize>(kWrittenPages + p) * kPage;
    ASSERT_EQ(child->Read(addr, got.data(), got.size()), KernReturn::kSuccess);
    EXPECT_TRUE(got[0] == kPagerFill || got[0] == 0) << "page " << p;
    for (int i = 1; i < static_cast<int>(kPage); ++i) {
      ASSERT_EQ(got[i], got[0]) << "torn shared page " << p << " byte " << i;
    }
  }

  // Writes before the death are COW pushes out of the pager-backed chain;
  // after it, the zero-fill conversion means fresh pages come up directly
  // in the child, so only a prefix of the workload counts as cow_faults.
  VmStatistics stats = kernel->vm().Statistics();
  EXPECT_GT(stats.cow_faults, 0u);
  EXPECT_GT(stats.pageouts + stats.parked_pageouts, 0u) << "no reclaim ran";

  child.reset();
  parent.reset();
  object = SendRight();
  ExpectTeardownToBaseline(*kernel, free_baseline);
  pager.Stop();
}

// Disjoint anonymous regions of one map faulted from eight threads: these
// only share the address map (taken shared) and the page queues, so every
// fault must complete and none may observe another thread's stamps.
TEST(VmConcurrentTest, DisjointZeroFillFaultsAreIndependent) {
  auto kernel = MakeKernel(512);
  const uint64_t free_baseline = kernel->phys().free_frames();
  auto task = kernel->CreateTask(nullptr, "disjoint");
  const VmOffset base =
      task->VmAllocate(VmSize{kThreads} * kPagesPerThread * kPage).value();

  std::vector<std::thread> workers;
  std::atomic<int> errors{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::vector<uint8_t> page(kPage, StampFor(t));
      const VmOffset mine = base + static_cast<VmSize>(t) * kPagesPerThread * kPage;
      for (int p = 0; p < kPagesPerThread; ++p) {
        if (task->Write(mine + static_cast<VmSize>(p) * kPage, page.data(), page.size()) !=
            KernReturn::kSuccess) {
          ++errors;
        }
      }
      // Immediately read back the whole slice: zero-fill + write must be
      // atomic under the busy protocol even with 7 sibling faulters.
      std::vector<uint8_t> got(kPage);
      for (int p = 0; p < kPagesPerThread; ++p) {
        if (task->Read(mine + static_cast<VmSize>(p) * kPage, got.data(), got.size()) !=
                KernReturn::kSuccess ||
            got != page) {
          ++errors;
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(errors.load(), 0);

  VmStatistics stats = kernel->vm().Statistics();
  EXPECT_GE(stats.zero_fill_count, static_cast<uint64_t>(kWrittenPages));

  task.reset();
  ExpectTeardownToBaseline(*kernel, free_baseline);
}

// Remembers writes and serves them back, so evicted pages survive the
// round trip — the oracle below depends on it.
class EchoStorePager : public DataManager {
 public:
  EchoStorePager() : DataManager("echo-store") {}
  SendRight NewObject() { return CreateMemoryObject(1); }

 protected:
  void OnDataRequest(uint64_t id, uint64_t cookie, PagerDataRequestArgs args) override {
    std::lock_guard<std::mutex> g(mu_);
    for (VmOffset off = args.offset; off < args.offset + args.length; off += kPage) {
      auto it = store_.find(off);
      if (it == store_.end()) {
        DataUnavailable(args.pager_request_port, off, kPage);
      } else {
        ProvideData(args.pager_request_port, off, it->second, kVmProtNone);
      }
    }
  }
  void OnDataWrite(uint64_t id, uint64_t cookie, PagerDataWriteArgs args) override {
    std::lock_guard<std::mutex> g(mu_);
    for (VmOffset delta = 0; delta + kPage <= args.data.size(); delta += kPage) {
      store_[args.offset + delta] = std::vector<std::byte>(
          args.data.begin() + delta, args.data.begin() + delta + kPage);
    }
  }

 private:
  std::mutex mu_;
  std::map<VmOffset, std::vector<std::byte>> store_;
};

TEST(VmConcurrentTest, ClusteredPageoutRacesFaultsOnOneObject) {
  // Clustered write-back walks an object's page list claiming contiguous
  // dirty neighbours — pages other threads dirtied and are about to fault
  // back in. Threads own interleaved stripes (thread t owns pages where
  // p % kThreads == t), so every run the clusterer builds spans pages
  // belonging to all eight threads while those threads concurrently
  // re-fault and re-dirty them. The assertions are content-only: after the
  // storm, each page holds exactly its owner's final sweep value.
  constexpr int kSweeps = 6;
  auto kernel = MakeKernel(96);  // << 192-page region: eviction throughout.
  const uint64_t free_baseline = kernel->phys().free_frames();
  EchoStorePager pager;
  pager.Start();
  SendRight object = pager.NewObject();
  auto task = kernel->CreateTask(nullptr, "cluster-race");
  const VmOffset base =
      task->VmAllocateWithPager(VmSize{kWrittenPages} * kPage, object, 0).value();

  auto value_for = [](int t, int p, int sweep) {
    return (static_cast<uint64_t>(0xA0 + t) << 48) |
           (static_cast<uint64_t>(sweep) << 32) | static_cast<uint64_t>(p);
  };
  std::vector<std::thread> workers;
  std::atomic<int> errors{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int sweep = 0; sweep < kSweeps; ++sweep) {
        for (int p = t; p < kWrittenPages; p += kThreads) {
          const VmOffset addr = base + static_cast<VmSize>(p) * kPage;
          if (task->WriteValue<uint64_t>(addr, value_for(t, p, sweep)) !=
              KernReturn::kSuccess) {
            ++errors;
            continue;
          }
          // Read back a neighbour from the *previous* sweep: it may be
          // mid-flight inside a clustered run right now, and must still
          // read as one whole write, never torn or rolled back.
          if (sweep > 0) {
            const int q = (p + kThreads) % kWrittenPages;
            auto got = task->ReadValue<uint64_t>(base + static_cast<VmSize>(q) * kPage);
            if (got.ok() && got.value() != 0 &&
                (got.value() & 0xFFFFFFFFull) != static_cast<uint64_t>(q)) {
              ++errors;
            }
          }
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(errors.load(), 0);

  // Oracle: the final sweep's value, for every page, through whatever
  // evict/re-fault history the clusterer gave it.
  for (int p = 0; p < kWrittenPages; ++p) {
    auto got = task->ReadValue<uint64_t>(base + static_cast<VmSize>(p) * kPage);
    ASSERT_TRUE(got.ok()) << "page " << p;
    ASSERT_EQ(got.value(), value_for(p % kThreads, p, kSweeps - 1)) << "page " << p;
  }

  VmStatistics stats = kernel->vm().Statistics();
  EXPECT_GT(stats.pageouts, 0u) << "no eviction pressure: the race never ran";
  EXPECT_GT(stats.pageout_runs, 0u);
  EXPECT_GE(stats.pageout_run_pages, stats.pageout_runs);

  task.reset();
  object = SendRight();
  ExpectTeardownToBaseline(*kernel, free_baseline);
  pager.Stop();
}

TEST(VmConcurrentTest, FaultAheadScanRacesClusteredPageout) {
  // A sequential scanner keeps multi-page fault-ahead runs in flight —
  // pinned busy+absent placeholders scattered through the object — while
  // writer threads dirty interleaved pages of the same object and memory
  // pressure drives the clustered write-back over the same page list. The
  // clusterer must leave the pinned speculative placeholders alone, the
  // scanner's sweep must free exactly the unanswered ones, and the final
  // content oracle must hold through every evict/re-fault interleaving.
  constexpr int kScanPages = 96;
  constexpr int kWriters = 4;
  constexpr int kRounds = 4;
  auto kernel = MakeKernel(64);  // << 96-page region: reclaim runs constantly.
  const uint64_t free_baseline = kernel->phys().free_frames();
  EchoStorePager pager;
  pager.Start();
  SendRight object = pager.NewObject();
  auto task = kernel->CreateTask(nullptr, "fault-ahead-race");
  const VmOffset base =
      task->VmAllocateWithPager(VmSize{kScanPages} * kPage, object, 0).value();

  // Writer t owns pages where p % (2 * kWriters) == 2t + 1; even pages are
  // read-only (they settle as zero fill — the store starts empty).
  auto value_for = [](int t, int p, int round) {
    return (static_cast<uint64_t>(0xB0 + t) << 48) |
           (static_cast<uint64_t>(round) << 32) | static_cast<uint64_t>(p);
  };
  std::vector<std::thread> workers;
  std::atomic<int> errors{0};
  workers.emplace_back([&] {  // The scanner.
    for (int round = 0; round < kRounds; ++round) {
      for (int p = 0; p < kScanPages; ++p) {
        auto got = task->ReadValue<uint64_t>(base + static_cast<VmSize>(p) * kPage);
        if (!got.ok()) {
          ++errors;
          continue;
        }
        // Every observable value is either the zero fill or some writer's
        // whole 8-byte stamp for exactly this page — never torn.
        if (got.value() != 0 &&
            (got.value() & 0xFFFFFFFFull) != static_cast<uint64_t>(p)) {
          ++errors;
        }
      }
    }
  });
  for (int t = 0; t < kWriters; ++t) {
    workers.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (int p = 2 * t + 1; p < kScanPages; p += 2 * kWriters) {
          if (task->WriteValue<uint64_t>(base + static_cast<VmSize>(p) * kPage,
                                         value_for(t, p, round)) != KernReturn::kSuccess) {
            ++errors;
          }
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(errors.load(), 0);

  // Oracle: every written page holds its owner's final-round value; every
  // read-only page is still the zero fill.
  for (int p = 0; p < kScanPages; ++p) {
    auto got = task->ReadValue<uint64_t>(base + static_cast<VmSize>(p) * kPage);
    ASSERT_TRUE(got.ok()) << "page " << p;
    if (p % 2 == 1) {
      const int owner = (p % (2 * kWriters)) / 2;
      ASSERT_EQ(got.value(), value_for(owner, p, kRounds - 1)) << "page " << p;
    } else {
      ASSERT_EQ(got.value(), 0u) << "page " << p;
    }
  }

  VmStatistics stats = kernel->vm().Statistics();
  EXPECT_GT(stats.fault_ahead_requests, 0u) << "the scan never batched a read";
  EXPECT_GT(stats.pageouts, 0u) << "no eviction pressure: the race never ran";
  EXPECT_GT(stats.pageout_runs, 0u);

  task.reset();
  object = SendRight();
  ExpectTeardownToBaseline(*kernel, free_baseline);
  pager.Stop();
}

TEST(VmConcurrentTest, OptimisticLookupSurvivesRegionChurn) {
  // Readers hammer the lock-free (seqlock) map lookup on a stable resident
  // region while churn threads mutate the map (vm_allocate/vm_deallocate of
  // scratch regions) as fast as they can. Every read must see the stable
  // pattern — a reader that resolves through a stale snapshot without
  // detecting the generation change would install a translation for a
  // deallocated or re-protected entry. A periodic kernel-mediated read
  // (ReadMemory, which never consults the pmap) is the oracle.
  auto kernel = MakeKernel(512);
  const uint64_t free_baseline = kernel->phys().free_frames();
  auto task = kernel->CreateTask(nullptr, "churn");

  constexpr int kStablePages = 32;
  constexpr int kReaders = 4;
  constexpr int kChurners = 2;
  const VmOffset base = task->VmAllocate(VmSize{kStablePages} * kPage).value();
  std::vector<uint8_t> pattern(kPage);
  for (int p = 0; p < kStablePages; ++p) {
    std::fill(pattern.begin(), pattern.end(), static_cast<uint8_t>(0x30 + p));
    ASSERT_EQ(task->Write(base + static_cast<VmSize>(p) * kPage, pattern.data(), kPage),
              KernReturn::kSuccess);
  }

  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kReaders; ++t) {
    workers.emplace_back([&, t] {
      std::vector<uint8_t> got(kPage);
      int iter = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        int p = (t * 7 + iter) % kStablePages;
        VmOffset addr = base + static_cast<VmSize>(p) * kPage;
        // Drop the translation so the access is a real re-fault through
        // the optimistic tier, not a pmap hit.
        task->vm_context().pmap->Remove(addr, addr + kPage);
        if (task->Read(addr, got.data(), kPage) != KernReturn::kSuccess ||
            got[0] != static_cast<uint8_t>(0x30 + p) ||
            got[kPage - 1] != static_cast<uint8_t>(0x30 + p)) {
          ++mismatches;
        }
        if (++iter % 64 == 0) {
          // Oracle: the object layer's view, resolved without the pmap.
          if (kernel->vm().ReadMemory(task->vm_context(), addr, got.data(), kPage) !=
                  KernReturn::kSuccess ||
              got[0] != static_cast<uint8_t>(0x30 + p)) {
            ++mismatches;
          }
        }
      }
    });
  }
  for (int t = 0; t < kChurners; ++t) {
    workers.emplace_back([&, t] {
      std::vector<uint8_t> junk(kPage, static_cast<uint8_t>(0xC0 + t));
      while (!stop.load(std::memory_order_relaxed)) {
        Result<VmOffset> scratch = task->VmAllocate(4 * kPage);
        if (!scratch.ok()) {
          continue;
        }
        for (int p = 0; p < 4; ++p) {
          task->Write(scratch.value() + static_cast<VmSize>(p) * kPage, junk.data(), kPage);
        }
        task->VmDeallocate(scratch.value(), 4 * kPage);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(1500));
  stop.store(true);
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(mismatches.load(), 0);

  VmStatistics stats = kernel->vm().Statistics();
  // The fast path must have actually run (and the churn must have actually
  // raced it at least occasionally on a multi-core host; retries may be 0
  // on a single CPU, so only the positive counter is asserted).
  EXPECT_GT(stats.map_lookups_optimistic, 0u);

  task.reset();
  ExpectTeardownToBaseline(*kernel, free_baseline);
}

}  // namespace
}  // namespace mach
