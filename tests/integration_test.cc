// Cross-module integration scenarios from the paper's application sections:
// the Agora-style blackboard (§8.4, shared memory + messages across hosts),
// a UNIX-emulation pipeline over mapped files (§8.1), and services
// coexisting on one kernel.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/kernel/task.h"
#include "src/managers/camelot/recovery_manager.h"
#include "src/managers/fs/fs_server.h"
#include "src/managers/mfs/mapped_file.h"
#include "src/managers/migrate/migration_manager.h"
#include "src/managers/shm/shm_server.h"
#include "src/net/net_link.h"

namespace mach {
namespace {

constexpr VmSize kPage = 4096;

std::unique_ptr<Kernel> MakeHost(const std::string& name) {
  Kernel::Config config;
  config.name = name;
  config.frames = 192;
  config.page_size = kPage;
  config.disk_latency = DiskLatencyModel{0, 0};
  return std::make_unique<Kernel>(config);
}

TEST(IntegrationTest, AgoraStyleBlackboard) {
  // §8.4: "Both communication and memory sharing are used to implement a
  // shared blackboard structure in which hypotheses are placed and
  // evaluated by multiple cooperating agents." Agents on two hosts write
  // hypotheses into shared memory and announce them with messages.
  auto host_a = MakeHost("speech-a");
  auto host_b = MakeHost("speech-b");
  SharedMemoryServer shm(kPage);
  shm.Start();

  std::shared_ptr<Task> agent_a = host_a->CreateTask(nullptr, "acoustic");
  std::shared_ptr<Task> agent_b = host_b->CreateTask(nullptr, "semantic");
  SendRight board = shm.GetRegion("blackboard", 4 * kPage);
  VmOffset a = agent_a->VmAllocateWithPager(4 * kPage, board, 0).value();
  VmOffset b = agent_b->VmAllocateWithPager(4 * kPage, board, 0).value();

  PortPair announce = PortAllocate("announce");

  // Agent A posts 16 hypotheses to the blackboard, announcing each.
  std::shared_ptr<Thread> poster = agent_a->SpawnThread([&, a](Thread& self) {
    for (uint32_t i = 0; i < 16; ++i) {
      uint64_t hypothesis = 0x1111000000000000ull + i;
      self.task().WriteValue<uint64_t>(a + i * 64, hypothesis);
      Message msg(1);
      msg.PushU32(i);
      MsgSend(announce.send, std::move(msg), std::chrono::seconds(5));
    }
  });

  // Agent B consumes announcements and evaluates directly from shared
  // memory, writing verdicts next to each hypothesis.
  std::atomic<int> evaluated{0};
  std::shared_ptr<Thread> evaluator = agent_b->SpawnThread([&, b](Thread& self) {
    for (int n = 0; n < 16; ++n) {
      Result<Message> msg = MsgReceive(announce.receive, std::chrono::seconds(10));
      if (!msg.ok()) {
        return;
      }
      uint32_t slot = msg.value().TakeU32().value_or(0);
      // Coherence may lag the announcement: poll the blackboard slot.
      uint64_t hypothesis = 0;
      for (int tries = 0; tries < 2000; ++tries) {
        hypothesis = self.task().ReadValue<uint64_t>(b + slot * 64).value_or(0);
        if (hypothesis != 0) {
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      if (hypothesis == 0x1111000000000000ull + slot) {
        self.task().WriteValue<uint64_t>(b + slot * 64 + 8, ~hypothesis);
        evaluated.fetch_add(1);
      }
    }
  });
  poster->Join();
  evaluator->Join();
  EXPECT_EQ(evaluated.load(), 16);
  // Agent A sees B's verdicts through the same shared memory.
  for (uint32_t i = 0; i < 16; ++i) {
    uint64_t verdict = 0;
    for (int tries = 0; tries < 2000; ++tries) {
      verdict = agent_a->ReadValue<uint64_t>(a + i * 64 + 8).value_or(0);
      if (verdict != 0) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_EQ(verdict, ~(0x1111000000000000ull + i)) << "slot " << i;
  }
  agent_a.reset();
  agent_b.reset();
  shm.Stop();
}

TEST(IntegrationTest, UnixEmulationPipeline) {
  // §8.1: "UNIX filesystem I/O can be emulated by a library package"; a
  // two-stage pipeline: stage 1 writes a "preprocessed" file via mapped
  // I/O; stage 2 reads it, transforms, and writes the "object" file.
  auto host = MakeHost("unix");
  SimDisk fs_disk(4096, kPage, &host->clock(), DiskLatencyModel{0, 0});
  FsServer fs(host.get(), &fs_disk);
  fs.StartServer();
  std::shared_ptr<Task> user = host->CreateTask(nullptr, "cc");
  FsClient client(user.get(), fs.service_port());

  ASSERT_EQ(client.Create("main.c"), KernReturn::kSuccess);
  ASSERT_EQ(client.Create("main.i"), KernReturn::kSuccess);
  ASSERT_EQ(client.Create("main.o"), KernReturn::kSuccess);

  // Seed the source file.
  {
    MappedFile src = MappedFile::Open(user.get(), fs.service_port(), "main.c", 2 * kPage).value();
    std::string code = "int main() { return 42; }\n";
    ASSERT_EQ(src.Write(code.data(), code.size()), KernReturn::kSuccess);
    ASSERT_EQ(src.Close(), KernReturn::kSuccess);
  }
  // Stage 1: "preprocess" = uppercase into main.i.
  {
    MappedFile in = MappedFile::Open(user.get(), fs.service_port(), "main.c").value();
    MappedFile out = MappedFile::Open(user.get(), fs.service_port(), "main.i", 2 * kPage).value();
    std::vector<char> buf(in.size());
    ASSERT_TRUE(in.Read(buf.data(), buf.size()).ok());
    for (char& c : buf) {
      c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    ASSERT_EQ(out.Write(buf.data(), buf.size()), KernReturn::kSuccess);
    in.Close();
    ASSERT_EQ(out.Close(), KernReturn::kSuccess);
  }
  // Stage 2: "compile" = checksum into main.o.
  {
    MappedFile in = MappedFile::Open(user.get(), fs.service_port(), "main.i").value();
    MappedFile out = MappedFile::Open(user.get(), fs.service_port(), "main.o", kPage).value();
    std::vector<char> buf(in.size());
    ASSERT_TRUE(in.Read(buf.data(), buf.size()).ok());
    uint64_t checksum = 0;
    for (char c : buf) {
      checksum = checksum * 131 + static_cast<unsigned char>(c);
    }
    ASSERT_EQ(out.Write(&checksum, sizeof(checksum)), KernReturn::kSuccess);
    ASSERT_EQ(out.Close(), KernReturn::kSuccess);
  }
  // Verify the pipeline output via the whole-file API.
  Result<FsClient::ReadResult> obj = client.ReadFile("main.o");
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ(obj.value().size, sizeof(uint64_t));
  uint64_t checksum = 0;
  ASSERT_EQ(user->Read(obj.value().address, &checksum, sizeof(checksum)), KernReturn::kSuccess);
  std::string expect = "INT MAIN() { RETURN 42; }\n";
  uint64_t want = 0;
  for (char c : expect) {
    want = want * 131 + static_cast<unsigned char>(c);
  }
  EXPECT_EQ(checksum, want);
  user.reset();
  fs.StopServer();
}

TEST(IntegrationTest, MigrateTaskThatUsesMappedFile) {
  // A task reading a mapped file migrates; on the destination it keeps
  // working against its (copy-on-reference) address space.
  auto host_a = MakeHost("m-a");
  auto host_b = MakeHost("m-b");
  SimDisk fs_disk(1024, kPage, &host_a->clock(), DiskLatencyModel{0, 0});
  FsServer fs(host_a.get(), &fs_disk);
  fs.StartServer();
  std::shared_ptr<Task> worker = host_a->CreateTask(nullptr, "worker");
  FsClient client(worker.get(), fs.service_port());
  ASSERT_EQ(client.Create("input"), KernReturn::kSuccess);
  {
    MappedFile f = MappedFile::Open(worker.get(), fs.service_port(), "input", kPage).value();
    uint64_t seed = 31337;
    ASSERT_EQ(f.Write(&seed, sizeof(seed)), KernReturn::kSuccess);
    ASSERT_EQ(f.Close(), KernReturn::kSuccess);
  }
  // Load the input into anonymous memory (the working state to migrate).
  Result<FsClient::ReadResult> in = client.ReadFile("input");
  ASSERT_TRUE(in.ok());
  uint64_t seed = worker->ReadValue<uint64_t>(in.value().address).value();
  VmOffset state = worker->VmAllocate(kPage).value();
  ASSERT_EQ(worker->WriteValue<uint64_t>(state, seed * 2), KernReturn::kSuccess);

  MigrationManager migrator;
  migrator.Start();
  MigrationManager::Options options;
  std::shared_ptr<Task> moved = migrator.Migrate(worker, host_b.get(), options).value();
  EXPECT_EQ(moved->ReadValue<uint64_t>(state).value(), 31337u * 2);
  EXPECT_EQ(moved->ReadValue<uint64_t>(in.value().address).value(), 31337u);
  moved.reset();
  worker.reset();
  migrator.Stop();
  fs.StopServer();
}

TEST(IntegrationTest, TransactionalStateSharedWithFilesystem) {
  // Camelot and the filesystem coexist as independent data managers on one
  // kernel — the paper's "the actual system running on any particular
  // machine is more a function of its servers than its kernel" (§3.2).
  auto host = MakeHost("combo");
  SimDisk fs_disk(1024, kPage, &host->clock(), DiskLatencyModel{0, 0});
  SimDisk data_disk(1024, kPage, &host->clock(), DiskLatencyModel{0, 0});
  SimDisk log_disk(2048, 512, &host->clock(), DiskLatencyModel{0, 0});
  FsServer fs(host.get(), &fs_disk);
  fs.StartServer();
  RecoveryManager rm(&data_disk, &log_disk, kPage);
  rm.Start();

  std::shared_ptr<Task> app = host->CreateTask(nullptr, "app");
  FsClient files(app.get(), fs.service_port());
  RecoverableSegment ledger =
      RecoverableSegment::Map(&rm, app.get(), "ledger", kPage).value();

  // Transactionally record a value, then export it to a file.
  {
    Transaction txn(&rm);
    uint64_t total = 123456;
    ASSERT_EQ(txn.Write(ledger, 0, &total, sizeof(total)), KernReturn::kSuccess);
    ASSERT_EQ(txn.Commit(), KernReturn::kSuccess);
  }
  ASSERT_EQ(files.Create("report"), KernReturn::kSuccess);
  uint64_t total = app->ReadValue<uint64_t>(ledger.base()).value();
  VmOffset buf = app->VmAllocate(kPage).value();
  ASSERT_EQ(app->WriteValue<uint64_t>(buf, total), KernReturn::kSuccess);
  ASSERT_EQ(files.WriteFile("report", buf, sizeof(total)), KernReturn::kSuccess);

  Result<FsClient::ReadResult> report = files.ReadFile("report");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(app->ReadValue<uint64_t>(report.value().address).value(), 123456u);
  app.reset();
  rm.Stop();
  fs.StopServer();
}

TEST(IntegrationTest, SixteenTasksHammerOneKernel) {
  // Stress: many tasks with mixed anonymous/file workloads under memory
  // pressure, all sharing one kernel's cache.
  auto host = MakeHost("stress");
  std::vector<std::shared_ptr<Task>> tasks;
  std::vector<std::shared_ptr<Thread>> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 16; ++t) {
    tasks.push_back(host->CreateTask(nullptr, "stress" + std::to_string(t)));
    threads.push_back(tasks.back()->SpawnThread([t, &failures](Thread& self) {
      Result<VmOffset> addr = self.task().VmAllocate(24 * kPage);
      if (!addr.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int round = 0; round < 3; ++round) {
        for (VmOffset p = 0; p < 24; ++p) {
          uint64_t v = (uint64_t{static_cast<uint64_t>(t)} << 32) | (round * 100 + p);
          if (!IsOk(self.task().WriteValue<uint64_t>(addr.value() + p * kPage, v))) {
            failures.fetch_add(1);
            return;
          }
        }
        for (VmOffset p = 0; p < 24; ++p) {
          uint64_t expect = (uint64_t{static_cast<uint64_t>(t)} << 32) | (round * 100 + p);
          Result<uint64_t> got = self.task().ReadValue<uint64_t>(addr.value() + p * kPage);
          if (!got.ok() || got.value() != expect) {
            failures.fetch_add(1);
            return;
          }
        }
      }
    }));
  }
  for (auto& t : threads) {
    t->Join();
  }
  EXPECT_EQ(failures.load(), 0);
  VmStatistics st = host->vm().Statistics();
  EXPECT_GT(st.pageouts, 0u);  // 16*24 pages >> 192 frames: paging happened.
  tasks.clear();
}

}  // namespace
}  // namespace mach
