// Additional VM edge cases: sharing-map semantics under vm ops, OOL copies
// of untouched (zero) memory, CopyFromBytes/CopyAsBytes round trips, object
// cache behaviour, and deallocation across many split entries.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/kernel/task.h"
#include "src/pager/data_manager.h"

namespace mach {
namespace {

constexpr VmSize kPage = 4096;

class VmEdgeTest : public ::testing::Test {
 protected:
  VmEdgeTest() {
    Kernel::Config config;
    config.frames = 128;
    config.page_size = kPage;
    config.disk_latency = DiskLatencyModel{0, 0};
    kernel_ = std::make_unique<Kernel>(config);
    task_ = kernel_->CreateTask();
  }
  ~VmEdgeTest() override { task_.reset(); }

  std::unique_ptr<Kernel> kernel_;
  std::shared_ptr<Task> task_;
};

TEST_F(VmEdgeTest, SharedRegionSurvivesParentProtectChange) {
  // Per-task attributes live in the top-level entry (§5.1): the parent
  // making its own view read-only must not affect the child's access.
  VmOffset addr = task_->VmAllocate(kPage).value();
  task_->VmInherit(addr, kPage, VmInherit::kShare);
  uint32_t v = 1;
  ASSERT_EQ(task_->Write(addr, &v, sizeof(v)), KernReturn::kSuccess);
  std::shared_ptr<Task> child = kernel_->CreateTask(task_);
  ASSERT_EQ(task_->VmProtect(addr, kPage, false, kVmProtRead), KernReturn::kSuccess);
  // Parent: read-only now.
  EXPECT_EQ(task_->Write(addr, &v, sizeof(v)), KernReturn::kProtectionFailure);
  // Child: still read/write, and changes are visible to the parent.
  uint32_t cv = 99;
  EXPECT_EQ(child->Write(addr, &cv, sizeof(cv)), KernReturn::kSuccess);
  uint32_t out = 0;
  EXPECT_EQ(task_->Read(addr, &out, sizeof(out)), KernReturn::kSuccess);
  EXPECT_EQ(out, 99u);
}

TEST_F(VmEdgeTest, VmWriteIntoSharedRegionReflectsInAllTasks) {
  // §5.1: "a vm_write operation into a region shared by more than one task
  // would take place in the sharing map referenced by all of their task
  // maps."
  VmOffset addr = task_->VmAllocate(kPage).value();
  task_->VmInherit(addr, kPage, VmInherit::kShare);
  std::shared_ptr<Task> child = kernel_->CreateTask(task_);
  uint32_t v = 0xABCD;
  ASSERT_EQ(task_->VmWrite(addr, &v, sizeof(v)), KernReturn::kSuccess);  // Kernel path.
  uint32_t out = 0;
  ASSERT_EQ(child->Read(addr, &out, sizeof(out)), KernReturn::kSuccess);
  EXPECT_EQ(out, 0xABCDu);
}

TEST_F(VmEdgeTest, SharedRegionReportedInRegions) {
  VmOffset addr = task_->VmAllocate(kPage).value();
  task_->VmInherit(addr, kPage, VmInherit::kShare);
  std::shared_ptr<Task> child = kernel_->CreateTask(task_);
  bool found_shared = false;
  for (const RegionInfo& region : task_->VmRegions()) {
    if (region.start == addr) {
      found_shared = region.is_shared;
    }
  }
  EXPECT_TRUE(found_shared);
}

TEST_F(VmEdgeTest, OolCopyOfUntouchedMemoryIsZero) {
  // Transferring never-touched (lazily zero-filled) memory works and the
  // receiver sees zeros.
  std::shared_ptr<Task> receiver = kernel_->CreateTask();
  VmOffset src = task_->VmAllocate(2 * kPage).value();
  auto copy = kernel_->vm().CopyIn(task_->vm_context(), src, 2 * kPage);
  ASSERT_TRUE(copy.ok());
  Result<VmOffset> dst = kernel_->vm().CopyOut(receiver->vm_context(), copy.value());
  ASSERT_TRUE(dst.ok());
  std::vector<uint8_t> out(2 * kPage, 0xFF);
  ASSERT_EQ(receiver->Read(dst.value(), out.data(), out.size()), KernReturn::kSuccess);
  for (uint8_t b : out) {
    ASSERT_EQ(b, 0);
  }
}

TEST_F(VmEdgeTest, CopyBytesRoundTrip) {
  // CopyAsBytes/CopyFromBytes (the cross-host transport primitives).
  VmOffset src = task_->VmAllocate(2 * kPage).value();
  std::vector<uint8_t> data(2 * kPage);
  std::iota(data.begin(), data.end(), 3);
  ASSERT_EQ(task_->Write(src, data.data(), data.size()), KernReturn::kSuccess);
  auto copy = kernel_->vm().CopyIn(task_->vm_context(), src, 2 * kPage).value();
  Result<std::vector<std::byte>> flat = kernel_->vm().CopyAsBytes(copy);
  ASSERT_TRUE(flat.ok());
  ASSERT_EQ(flat.value().size(), 2 * kPage);
  EXPECT_EQ(std::memcmp(flat.value().data(), data.data(), data.size()), 0);

  auto rebuilt = kernel_->vm().CopyFromBytes(flat.value().data(), flat.value().size());
  ASSERT_TRUE(rebuilt.ok());
  Result<VmOffset> dst = kernel_->vm().CopyOut(task_->vm_context(), rebuilt.value());
  ASSERT_TRUE(dst.ok());
  std::vector<uint8_t> out(2 * kPage);
  ASSERT_EQ(task_->Read(dst.value(), out.data(), out.size()), KernReturn::kSuccess);
  EXPECT_EQ(out, data);
}

TEST_F(VmEdgeTest, CopyFromBytesPartialPagePadsWithZeros) {
  std::vector<uint8_t> data(100, 0x77);
  auto copy = kernel_->vm().CopyFromBytes(data.data(), data.size());
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ(copy.value()->size(), kPage);  // Rounded to a page.
  Result<VmOffset> dst = kernel_->vm().CopyOut(task_->vm_context(), copy.value());
  ASSERT_TRUE(dst.ok());
  uint8_t head = 0, tail = 0xFF;
  ASSERT_EQ(task_->Read(dst.value(), &head, 1), KernReturn::kSuccess);
  ASSERT_EQ(task_->Read(dst.value() + 200, &tail, 1), KernReturn::kSuccess);
  EXPECT_EQ(head, 0x77);
  EXPECT_EQ(tail, 0);
}

TEST_F(VmEdgeTest, DeallocateSpanningManyEntries) {
  // Build a striped region (splits via per-page protection changes), then
  // deallocate the whole thing at once.
  VmOffset addr = task_->VmAllocate(8 * kPage).value();
  std::vector<uint8_t> data(8 * kPage, 0x21);
  ASSERT_EQ(task_->Write(addr, data.data(), data.size()), KernReturn::kSuccess);
  for (VmOffset p = 0; p < 8; p += 2) {
    ASSERT_EQ(task_->VmProtect(addr + p * kPage, kPage, false, kVmProtRead),
              KernReturn::kSuccess);
  }
  EXPECT_GE(task_->VmRegions().size(), 7u);  // Split into stripes.
  ASSERT_EQ(task_->VmDeallocate(addr, 8 * kPage), KernReturn::kSuccess);
  EXPECT_TRUE(task_->VmRegions().empty());
  uint8_t b;
  EXPECT_EQ(task_->Read(addr + 3 * kPage, &b, 1), KernReturn::kInvalidAddress);
}

TEST_F(VmEdgeTest, ForkWhileSplitEntriesExist) {
  VmOffset addr = task_->VmAllocate(4 * kPage).value();
  std::vector<uint8_t> data(4 * kPage, 0x44);
  ASSERT_EQ(task_->Write(addr, data.data(), data.size()), KernReturn::kSuccess);
  // Split: middle pages shared, outer pages copied.
  ASSERT_EQ(task_->VmInherit(addr + kPage, 2 * kPage, VmInherit::kShare), KernReturn::kSuccess);
  std::shared_ptr<Task> child = kernel_->CreateTask(task_);
  // Outer page: COW.
  uint32_t v = 1;
  ASSERT_EQ(child->Write(addr, &v, sizeof(v)), KernReturn::kSuccess);
  uint32_t out = 0;
  ASSERT_EQ(task_->Read(addr, &out, sizeof(out)), KernReturn::kSuccess);
  EXPECT_NE(out, 1u);
  // Middle page: shared.
  uint32_t sv = 2;
  ASSERT_EQ(child->Write(addr + kPage, &sv, sizeof(sv)), KernReturn::kSuccess);
  ASSERT_EQ(task_->Read(addr + kPage, &out, sizeof(out)), KernReturn::kSuccess);
  EXPECT_EQ(out, 2u);
}

TEST_F(VmEdgeTest, ReadAfterWriteThroughVmCopyChain) {
  // a -> b -> c chained vm_copies preserve values through two COW layers.
  VmOffset a = task_->VmAllocate(kPage).value();
  VmOffset b = task_->VmAllocate(kPage).value();
  VmOffset c = task_->VmAllocate(kPage).value();
  uint32_t v = 0x1A2B;
  ASSERT_EQ(task_->Write(a, &v, sizeof(v)), KernReturn::kSuccess);
  ASSERT_EQ(task_->VmCopy(a, kPage, b), KernReturn::kSuccess);
  ASSERT_EQ(task_->VmCopy(b, kPage, c), KernReturn::kSuccess);
  uint32_t v2 = 0x3C4D;
  ASSERT_EQ(task_->Write(b, &v2, sizeof(v2)), KernReturn::kSuccess);
  uint32_t out = 0;
  ASSERT_EQ(task_->Read(c, &out, sizeof(out)), KernReturn::kSuccess);
  EXPECT_EQ(out, 0x1A2Bu);  // c froze b's old value.
  ASSERT_EQ(task_->Read(a, &out, sizeof(out)), KernReturn::kSuccess);
  EXPECT_EQ(out, 0x1A2Bu);
}

TEST_F(VmEdgeTest, StatisticsHitRateImprovesOnRepeatedAccess) {
  VmOffset addr = task_->VmAllocate(4 * kPage).value();
  std::vector<uint8_t> buf(4 * kPage);
  task_->Read(addr, buf.data(), buf.size());
  VmStatistics first = task_->VmStats();
  // vm_read path: repeated kernel-mediated access hits the resident pages.
  for (int i = 0; i < 10; ++i) {
    task_->VmRead(addr, buf.data(), buf.size());
  }
  VmStatistics after = task_->VmStats();
  EXPECT_GT(after.hits, first.hits);
  EXPECT_GT(after.lookups, first.lookups);
}

TEST_F(VmEdgeTest, AllocateAtConflictsWithExistingRegion) {
  VmOffset addr = task_->VmAllocate(2 * kPage).value();
  EXPECT_EQ(task_->VmAllocate(kPage, false, addr + kPage).status(), KernReturn::kNoSpace);
  // But adjacent is fine.
  EXPECT_TRUE(task_->VmAllocate(kPage, false, addr + 2 * kPage).ok());
}

// A manager that accepts objects but never answers a data request; killing
// its memory-object port mid-fault exercises the death fast path (§6.2.1).
class SilentPager : public DataManager {
 public:
  SilentPager() : DataManager("silent") {}
  SendRight NewObject() { return CreateMemoryObject(1); }

 protected:
  void OnDataRequest(uint64_t, uint64_t, PagerDataRequestArgs) override {}
};

TEST_F(VmEdgeTest, ManagerDeathResolvesParkedFaulterWithErrorFast) {
  // Default policy (kError) and default pager_timeout (5 s): a faulter
  // parked on a dead manager's object must fail well before the timeout.
  SilentPager pager;
  pager.Start();
  SendRight object = pager.NewObject();
  VmOffset addr = task_->VmAllocateWithPager(kPage, object, 0).value();
  std::atomic<KernReturn> result{KernReturn::kSuccess};
  std::thread faulter([&] {
    uint64_t out = 0;
    result.store(task_->Read(addr, &out, sizeof(out)));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));  // Park it.
  auto death_time = std::chrono::steady_clock::now();
  pager.DestroyMemoryObject(object);
  faulter.join();
  auto resolved_in = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - death_time);
  EXPECT_EQ(result.load(), KernReturn::kMemoryError);
  EXPECT_LT(resolved_in.count(), 2000);  // Much less than the 5 s deadline.
  VmStatistics stats = kernel_->vm().Statistics();
  EXPECT_GE(stats.manager_deaths, 1u);
  EXPECT_GE(stats.death_resolved_pages, 1u);
  pager.Stop();
}

// An errant manager (§6 threat model) that answers data requests but also
// keeps the kernel's request port so the test can forge messages on it.
class ErrantPager : public DataManager {
 public:
  ErrantPager() : DataManager("errant") {}
  SendRight NewObject() { return CreateMemoryObject(1); }
  SendRight request_port() {
    std::lock_guard<std::mutex> g(mu_);
    return request_port_;
  }

 protected:
  void OnDataRequest(uint64_t, uint64_t, PagerDataRequestArgs args) override {
    {
      std::lock_guard<std::mutex> g(mu_);
      request_port_ = args.pager_request_port;
    }
    DataUnavailable(args.pager_request_port, args.offset, args.length);
  }

 private:
  std::mutex mu_;
  SendRight request_port_;
};

TEST_F(VmEdgeTest, ForgedDeathNotificationOnRequestPortIsIgnored) {
  // A kMsgIdPortDeath arriving on an ordinary pager request port was sent
  // by a manager, not the kernel: it must not sever the object it names.
  SilentPager victim;
  victim.Start();
  SendRight victim_object = victim.NewObject();
  ASSERT_TRUE(task_->VmAllocateWithPager(kPage, victim_object, 0).ok());
  ASSERT_NE(kernel_->vm().ObjectForPager(victim_object), nullptr);

  ErrantPager attacker;
  attacker.Start();
  SendRight attacker_object = attacker.NewObject();
  VmOffset addr = task_->VmAllocateWithPager(kPage, attacker_object, 0).value();
  uint64_t out = 0;
  ASSERT_EQ(task_->Read(addr, &out, sizeof(out)), KernReturn::kSuccess);  // Captures the port.
  SendRight request = attacker.request_port();
  ASSERT_TRUE(request.valid());

  // Forge a death notice naming the victim's memory-object port.
  Message forged(kMsgIdPortDeath);
  forged.PushU64(victim_object.id());
  ASSERT_EQ(MsgSend(request, std::move(forged)), KernReturn::kSuccess);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));  // Let the kernel dispatch.

  // The victim is still bound to its (live) manager; no death was recorded.
  EXPECT_NE(kernel_->vm().ObjectForPager(victim_object), nullptr);
  EXPECT_EQ(kernel_->vm().Statistics().manager_deaths, 0u);
  attacker.Stop();
  victim.Stop();
}

TEST(VmManagerDeathTest, ZeroFillPolicyRehomesObjectOnDeath) {
  // Under kZeroFill the parked faulter gets zeros instead of an error, and
  // the object is severed from the dead manager: later faults and writes
  // behave like ordinary anonymous memory.
  Kernel::Config config;
  config.frames = 64;
  config.page_size = kPage;
  config.disk_latency = DiskLatencyModel{0, 0};
  config.vm.on_pager_timeout = VmSystem::Config::OnPagerTimeout::kZeroFill;
  Kernel kernel(config);
  std::shared_ptr<Task> task = kernel.CreateTask();
  SilentPager pager;
  pager.Start();
  SendRight object = pager.NewObject();
  VmOffset addr = task->VmAllocateWithPager(2 * kPage, object, 0).value();
  std::atomic<KernReturn> result{KernReturn::kFailure};
  uint64_t out = 0xFFFF;
  std::thread faulter([&] { result.store(task->Read(addr, &out, sizeof(out))); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  auto death_time = std::chrono::steady_clock::now();
  pager.DestroyMemoryObject(object);
  faulter.join();
  auto resolved_in = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - death_time);
  EXPECT_EQ(result.load(), KernReturn::kSuccess);
  EXPECT_EQ(out, 0u);
  EXPECT_LT(resolved_in.count(), 2000);
  // The kernel dropped its association with the dead manager.
  EXPECT_EQ(kernel.vm().ObjectForPager(object), nullptr);
  // The never-faulted second page zero-fills like anonymous memory, and
  // writes succeed.
  uint64_t out2 = 0xFFFF;
  EXPECT_EQ(task->Read(addr + kPage, &out2, sizeof(out2)), KernReturn::kSuccess);
  EXPECT_EQ(out2, 0u);
  uint64_t v = 42;
  EXPECT_EQ(task->Write(addr, &v, sizeof(v)), KernReturn::kSuccess);
  VmStatistics stats = kernel.vm().Statistics();
  EXPECT_EQ(stats.manager_deaths, 1u);
  EXPECT_GE(stats.death_resolved_pages, 1u);
  task.reset();
  pager.Stop();
}

}  // namespace
}  // namespace mach
