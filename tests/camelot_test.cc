// Tests for the Camelot-style recovery manager (§8.3): recoverable segments
// mapped into client address spaces, write-ahead logging, the WAL rule on
// pageout, abort, crash recovery (redo winners / undo losers), and
// randomized crash-point property tests.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <random>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/kernel/task.h"
#include "src/managers/camelot/recovery_manager.h"
#include "src/managers/camelot/wal.h"

namespace mach {
namespace {

constexpr VmSize kPage = 4096;

// --- WAL unit tests -----------------------------------------------------------

class WalTest : public ::testing::Test {
 protected:
  WalTest() : disk_(256, 512, nullptr, DiskLatencyModel{0, 0}), log_(&disk_) {}
  SimDisk disk_;
  WriteAheadLog log_;
};

TEST_F(WalTest, AppendAssignsMonotonicLsns) {
  LogRecord rec;
  rec.type = LogRecord::Type::kBegin;
  EXPECT_EQ(log_.Append(rec), 1u);
  EXPECT_EQ(log_.Append(rec), 2u);
  EXPECT_EQ(log_.last_lsn(), 2u);
  EXPECT_EQ(log_.forced_lsn(), 0u);
}

TEST_F(WalTest, ForceMakesRecordsDurable) {
  LogRecord rec;
  rec.type = LogRecord::Type::kUpdate;
  rec.tid = 9;
  rec.segment = 3;
  rec.offset = 0x1000;
  rec.old_data = {std::byte{1}, std::byte{2}};
  rec.new_data = {std::byte{3}, std::byte{4}, std::byte{5}};
  log_.Append(rec);
  log_.Force();
  std::vector<LogRecord> all = log_.ReadAll();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].tid, 9u);
  EXPECT_EQ(all[0].segment, 3u);
  EXPECT_EQ(all[0].offset, 0x1000u);
  EXPECT_EQ(all[0].old_data.size(), 2u);
  EXPECT_EQ(all[0].new_data.size(), 3u);
  EXPECT_EQ(all[0].new_data[2], std::byte{5});
}

TEST_F(WalTest, CrashDropsUnforcedTail) {
  LogRecord rec;
  rec.type = LogRecord::Type::kBegin;
  rec.tid = 1;
  log_.Append(rec);
  log_.Force();
  rec.tid = 2;
  log_.Append(rec);  // Not forced.
  log_.SimulateCrash();
  std::vector<LogRecord> all = log_.ReadAll();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].tid, 1u);
}

TEST_F(WalTest, ReopenedLogContinuesLsns) {
  LogRecord rec;
  rec.type = LogRecord::Type::kCommit;
  rec.tid = 5;
  log_.Append(rec);
  log_.Append(rec);
  log_.Force();
  WriteAheadLog reopened(&disk_);
  EXPECT_EQ(reopened.last_lsn(), 2u);
  LogRecord more;
  more.type = LogRecord::Type::kBegin;
  EXPECT_EQ(reopened.Append(more), 3u);
  reopened.Force();
  EXPECT_EQ(reopened.ReadAll().size(), 3u);
}

TEST_F(WalTest, RecordsSpanBlockBoundaries) {
  LogRecord rec;
  rec.type = LogRecord::Type::kUpdate;
  rec.new_data.assign(300, std::byte{0x7});  // > half a 512-byte block.
  for (int i = 0; i < 8; ++i) {
    log_.Append(rec);
  }
  log_.Force();
  EXPECT_EQ(log_.ReadAll().size(), 8u);
}

// --- recovery manager end-to-end -----------------------------------------------

class CamelotTest : public ::testing::Test {
 protected:
  CamelotTest() {
    Kernel::Config config;
    config.frames = 96;
    config.page_size = kPage;
    config.disk_latency = DiskLatencyModel{0, 0};
    kernel_ = std::make_unique<Kernel>(config);
    // The disks outlive the kernel (the crash tests destroy and recreate
    // it), so they must not hold the kernel's clock. Latency is zero here
    // anyway.
    data_disk_ = std::make_unique<SimDisk>(1024, kPage, nullptr, DiskLatencyModel{0, 0});
    log_disk_ = std::make_unique<SimDisk>(2048, 512, nullptr, DiskLatencyModel{0, 0});
    rm_ = std::make_unique<RecoveryManager>(data_disk_.get(), log_disk_.get(), kPage);
    rm_->Start();
    task_ = kernel_->CreateTask(nullptr, "camelot-client");
  }
  ~CamelotTest() override {
    task_.reset();
    rm_->Stop();
  }

  std::unique_ptr<Kernel> kernel_;
  std::unique_ptr<SimDisk> data_disk_;
  std::unique_ptr<SimDisk> log_disk_;
  std::unique_ptr<RecoveryManager> rm_;
  std::shared_ptr<Task> task_;
};

TEST_F(CamelotTest, MapSegmentAndReadZeros) {
  RecoverableSegment seg =
      RecoverableSegment::Map(rm_.get(), task_.get(), "bank", 4 * kPage).value();
  uint64_t v = 0xFF;
  ASSERT_EQ(task_->Read(seg.base(), &v, sizeof(v)), KernReturn::kSuccess);
  EXPECT_EQ(v, 0u);
}

TEST_F(CamelotTest, CommittedWriteIsVisible) {
  RecoverableSegment seg =
      RecoverableSegment::Map(rm_.get(), task_.get(), "bank", 4 * kPage).value();
  Transaction txn(rm_.get());
  uint64_t balance = 1000;
  ASSERT_EQ(txn.Write(seg, 0, &balance, sizeof(balance)), KernReturn::kSuccess);
  ASSERT_EQ(txn.Commit(), KernReturn::kSuccess);
  EXPECT_EQ(task_->ReadValue<uint64_t>(seg.base()).value(), 1000u);
}

TEST_F(CamelotTest, CommitForcesTheLog) {
  RecoverableSegment seg =
      RecoverableSegment::Map(rm_.get(), task_.get(), "bank", kPage).value();
  uint64_t forces_before = rm_->log_force_count();
  Transaction txn(rm_.get());
  uint64_t v = 7;
  txn.Write(seg, 0, &v, sizeof(v));
  EXPECT_EQ(rm_->log_force_count(), forces_before);  // No force yet.
  txn.Commit();
  EXPECT_GT(rm_->log_force_count(), forces_before);
}

TEST_F(CamelotTest, AbortRestoresOldValues) {
  RecoverableSegment seg =
      RecoverableSegment::Map(rm_.get(), task_.get(), "bank", kPage).value();
  {
    Transaction setup(rm_.get());
    uint64_t v = 500;
    setup.Write(seg, 16, &v, sizeof(v));
    setup.Commit();
  }
  {
    Transaction txn(rm_.get());
    uint64_t v = 999;
    txn.Write(seg, 16, &v, sizeof(v));
    EXPECT_EQ(task_->ReadValue<uint64_t>(seg.base() + 16).value(), 999u);  // Dirty read.
    txn.Abort();
  }
  EXPECT_EQ(task_->ReadValue<uint64_t>(seg.base() + 16).value(), 500u);
}

TEST_F(CamelotTest, WalRuleEnforcedOnPageout) {
  // Dirty recoverable pages evicted under memory pressure must not reach
  // the data disk before their log records are durable (§8.3).
  RecoverableSegment seg =
      RecoverableSegment::Map(rm_.get(), task_.get(), "big", 128 * kPage).value();
  Transaction txn(rm_.get());
  for (VmOffset p = 0; p < 128; ++p) {
    uint64_t v = 0xC0DE000000000000ull + p;
    ASSERT_EQ(txn.Write(seg, p * kPage, &v, sizeof(v)), KernReturn::kSuccess);
  }
  // 128 dirty pages vs 96 frames: evictions happened before this commit,
  // and each pre-commit eviction had to force the log first.
  EXPECT_GT(rm_->pageout_count(), 0u);
  EXPECT_GT(rm_->wal_enforced_count(), 0u);
  txn.Commit();
  // Everything still readable and correct.
  for (VmOffset p = 0; p < 128; ++p) {
    ASSERT_EQ(task_->ReadValue<uint64_t>(seg.base() + p * kPage).value(),
              0xC0DE000000000000ull + p);
  }
}

TEST_F(CamelotTest, LogDiskFaultDefersPageoutInsteadOfViolatingWal) {
  // When the log disk cannot force the WAL, dirty recoverable pages must
  // NOT reach the data disk (that would let a crash lose a committed
  // update). The manager stashes them, serves re-reads from the stash, and
  // completes the writes once the log heals.
  RecoverableSegment seg =
      RecoverableSegment::Map(rm_.get(), task_.get(), "big", 128 * kPage).value();
  FaultInjector inj(7);
  inj.SetProbability(SimDisk::kFaultWrite, 1.0);
  log_disk_->set_fault_injector(&inj);
  Transaction txn(rm_.get());
  for (VmOffset p = 0; p < 128; ++p) {
    uint64_t v = 0xFEED000000000000ull + p;
    ASSERT_EQ(txn.Write(seg, p * kPage, &v, sizeof(v)), KernReturn::kSuccess);
  }
  // 128 dirty pages vs 96 frames forced evictions, all with an unforceable
  // log: every one was deferred, none reached the data disk.
  EXPECT_GT(rm_->deferred_pageout_count(), 0u);
  EXPECT_EQ(rm_->pageout_count(), 0u);
  EXPECT_GT(rm_->io_error_count(), 0u);
  // Evicted pages are still readable (served from the deferred stash).
  EXPECT_EQ(task_->ReadValue<uint64_t>(seg.base()).value(), 0xFEED000000000000ull);
  // Heal the log; commit forces it and flushes the deferred pageouts.
  log_disk_->set_fault_injector(nullptr);
  ASSERT_EQ(txn.Commit(), KernReturn::kSuccess);
  EXPECT_GT(rm_->pageout_count(), 0u);
  for (VmOffset p = 0; p < 128; ++p) {
    ASSERT_EQ(task_->ReadValue<uint64_t>(seg.base() + p * kPage).value(),
              0xFEED000000000000ull + p);
  }
}

TEST_F(CamelotTest, WalForceFailureDefersWholeClusteredRunAndServesRereads) {
  // Clustered pageout hands the manager multi-page pager_data_write runs.
  // When the WAL force fails, every page of the run must land in the
  // deferred stash — a partially-applied run would put some pages on the
  // data disk while the log records describing them are still volatile.
  RecoverableSegment seg =
      RecoverableSegment::Map(rm_.get(), task_.get(), "runs", 128 * kPage).value();
  FaultInjector inj(11);
  inj.SetProbability(SimDisk::kFaultWrite, 1.0);
  log_disk_->set_fault_injector(&inj);
  VmStatistics before = kernel_->vm().Statistics();
  Transaction txn(rm_.get());
  for (VmOffset p = 0; p < 128; ++p) {
    uint64_t v = 0x2015'0000'0000ull + p;
    ASSERT_EQ(txn.Write(seg, p * kPage, &v, sizeof(v)), KernReturn::kSuccess);
  }
  VmStatistics after = kernel_->vm().Statistics();
  // The sequential dirty sweep through the 96-frame pool sent genuinely
  // clustered write-backs (more pages than messages)...
  ASSERT_GT(after.pageout_runs, before.pageout_runs);
  EXPECT_GT(after.pageout_run_pages - before.pageout_run_pages,
            after.pageout_runs - before.pageout_runs);
  // ...and with the log unforceable, no page of any run reached the data
  // disk; each was stashed individually.
  EXPECT_EQ(rm_->pageout_count(), 0u);
  EXPECT_GT(rm_->deferred_pageout_count(), 1u);
  // Every page — whichever run carried it out — re-reads correctly from
  // the stash while the fault is still armed and the disk holds nothing.
  for (VmOffset p = 0; p < 128; ++p) {
    ASSERT_EQ(task_->ReadValue<uint64_t>(seg.base() + p * kPage).value(),
              0x2015'0000'0000ull + p)
        << "page " << p;
  }
  // Heal and commit: the stash drains and the data is durable.
  log_disk_->set_fault_injector(nullptr);
  ASSERT_EQ(txn.Commit(), KernReturn::kSuccess);
  EXPECT_GT(rm_->pageout_count(), 0u);
  for (VmOffset p = 0; p < 128; ++p) {
    ASSERT_EQ(task_->ReadValue<uint64_t>(seg.base() + p * kPage).value(),
              0x2015'0000'0000ull + p);
  }
}

TEST_F(CamelotTest, CrashRecoveryRedoesCommittedTransactions) {
  {
    RecoverableSegment seg =
        RecoverableSegment::Map(rm_.get(), task_.get(), "acct", kPage).value();
    Transaction txn(rm_.get());
    uint64_t v = 4242;
    txn.Write(seg, 0, &v, sizeof(v));
    txn.Commit();
    // CRASH: volatile state (kernel page cache + log tail) is lost. The
    // committed update may never have been paged out.
    rm_->SimulateCrash();
    task_.reset();
    kernel_.reset();
  }
  // Reboot: fresh kernel, fresh manager over the same disks.
  Kernel::Config config;
  config.frames = 96;
  config.page_size = kPage;
  config.disk_latency = DiskLatencyModel{0, 0};
  kernel_ = std::make_unique<Kernel>(config);
  rm_ = std::make_unique<RecoveryManager>(data_disk_.get(), log_disk_.get(), kPage);
  rm_->Start();
  rm_->Recover();
  task_ = kernel_->CreateTask(nullptr, "rebooted");
  RecoverableSegment seg =
      RecoverableSegment::Map(rm_.get(), task_.get(), "acct", kPage).value();
  EXPECT_EQ(task_->ReadValue<uint64_t>(seg.base()).value(), 4242u);
}

TEST_F(CamelotTest, CrashRecoveryUndoesUncommittedTransactions) {
  {
    RecoverableSegment seg =
        RecoverableSegment::Map(rm_.get(), task_.get(), "acct2", kPage).value();
    Transaction setup(rm_.get());
    uint64_t v = 100;
    setup.Write(seg, 0, &v, sizeof(v));
    setup.Commit();
    // An uncommitted transaction writes, and its dirty page even reaches
    // disk via an explicit eviction path: force the log so the update
    // records are durable (as a pageout would), then crash mid-flight.
    Transaction loser(rm_.get());
    uint64_t bad = 666;
    loser.Write(seg, 0, &bad, sizeof(bad));
    // Make the loser's update durable in the log (as the WAL rule would on
    // pageout), but crash before commit.
    rm_->CommitTransaction(0);  // tid 0 commits nothing; just forces log.
    rm_->SimulateCrash();
    task_.reset();
    kernel_.reset();
  }
  Kernel::Config config;
  config.frames = 96;
  config.page_size = kPage;
  config.disk_latency = DiskLatencyModel{0, 0};
  kernel_ = std::make_unique<Kernel>(config);
  rm_ = std::make_unique<RecoveryManager>(data_disk_.get(), log_disk_.get(), kPage);
  rm_->Start();
  rm_->Recover();
  task_ = kernel_->CreateTask(nullptr, "rebooted");
  RecoverableSegment seg =
      RecoverableSegment::Map(rm_.get(), task_.get(), "acct2", kPage).value();
  // The loser was undone; the committed value survives.
  EXPECT_EQ(task_->ReadValue<uint64_t>(seg.base()).value(), 100u);
}

TEST_F(CamelotTest, RandomizedCrashPointsPreserveAtomicity) {
  // Property: after a crash at an arbitrary point in a transaction stream,
  // recovery yields exactly the effects of committed transactions, applied
  // in order.
  std::mt19937 rng(2026);
  for (int trial = 0; trial < 5; ++trial) {
    std::string segname = "prop" + std::to_string(trial);
    RecoverableSegment seg =
        RecoverableSegment::Map(rm_.get(), task_.get(), segname, kPage).value();
    // Reference model: committed slot values.
    std::vector<uint64_t> committed(8, 0);
    int crash_after = static_cast<int>(rng() % 10);
    for (int t = 0; t < 10; ++t) {
      Transaction txn(rm_.get());
      std::vector<std::pair<size_t, uint64_t>> writes;
      for (int w = 0; w < 3; ++w) {
        size_t slot = rng() % 8;
        uint64_t value = rng();
        writes.emplace_back(slot, value);
        ASSERT_EQ(txn.Write(seg, slot * 64, &value, sizeof(value)), KernReturn::kSuccess);
      }
      bool commit = (rng() % 2) == 0;
      if (commit) {
        txn.Commit();
        for (auto& [slot, value] : writes) {
          committed[slot] = value;
        }
      } else {
        txn.Abort();
      }
      if (t == crash_after) {
        break;
      }
    }
    rm_->SimulateCrash();
    rm_->Recover();
    // Validate against the data disk through a fresh manager view: read
    // the segment via a fresh mapping (fresh task to avoid stale cache).
    std::shared_ptr<Task> checker = kernel_->CreateTask(nullptr, "checker");
    // Note: the old kernel's cache may hold newer (uncommitted, undone)
    // data; map through a *new* object is not possible for the same
    // segment, so read the disk-backed truth via the recovery manager's
    // own state: flush the old mapping first.
    task_->VmDeallocate(seg.base(), seg.size());
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    rm_->Recover();  // Idempotent; re-applies after any late writebacks.
    RecoverableSegment check =
        RecoverableSegment::Map(rm_.get(), checker.get(), segname, kPage).value();
    for (size_t slot = 0; slot < 8; ++slot) {
      uint64_t v = checker->ReadValue<uint64_t>(check.base() + slot * 64).value_or(~0ull);
      EXPECT_EQ(v, committed[slot]) << "trial " << trial << " slot " << slot;
    }
    checker.reset();
  }
}

}  // namespace
}  // namespace mach
