// Unit tests for the IPC layer: ports, rights, messages, port sets, RPC,
// timeouts, backlog, and port death — the operations of Tables 3-1 and 3-2.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "src/ipc/message.h"
#include "src/ipc/port.h"
#include "src/ipc/port_right.h"

namespace mach {
namespace {

using std::chrono::milliseconds;

TEST(MessageTest, RoundTripTypedItems) {
  Message msg(7);
  msg.PushU32(0xAABB);
  msg.PushU64(0x1122334455667788ull);
  msg.PushString("typed data");
  ASSERT_EQ(msg.item_count(), 3u);
  EXPECT_EQ(msg.TakeU32().value(), 0xAABBu);
  EXPECT_EQ(msg.TakeU64().value(), 0x1122334455667788ull);
  EXPECT_EQ(msg.TakeString().value(), "typed data");
  EXPECT_TRUE(msg.AtEnd());
}

TEST(MessageTest, TypeMismatchFails) {
  Message msg;
  msg.PushU32(1);
  EXPECT_FALSE(msg.TakePort().ok());
  // Cursor did not advance on mismatch.
  EXPECT_TRUE(msg.TakeU32().ok());
}

TEST(MessageTest, TakePastEndFails) {
  Message msg;
  EXPECT_EQ(msg.TakeU32().status(), KernReturn::kInvalidArgument);
}

TEST(MessageTest, InlineSizeCountsDataOnly) {
  Message msg;
  msg.PushU32(1);                  // 4 bytes
  msg.PushData("abcdefgh", 8);     // 8 bytes
  PortPair p = PortAllocate("x");
  msg.PushPort(p.send);            // not inline data
  EXPECT_EQ(msg.InlineSize(), 12u);
}

TEST(MessageTest, CarriesPortRights) {
  PortPair p = PortAllocate("carried");
  Message msg;
  msg.PushPort(p.send);
  Result<SendRight> got = msg.TakePort();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().id(), p.send.id());
}

TEST(PortTest, AllocateGivesLiveRights) {
  PortPair p = PortAllocate("test");
  EXPECT_TRUE(p.receive.valid());
  EXPECT_TRUE(p.send.valid());
  EXPECT_EQ(p.receive.id(), p.send.id());
  EXPECT_FALSE(p.send.IsDead());
  EXPECT_EQ(p.send.label(), "test");
}

TEST(PortTest, SendReceiveRoundTrip) {
  PortPair p = PortAllocate();
  Message msg(42);
  msg.PushString("payload");
  ASSERT_EQ(MsgSend(p.send, std::move(msg)), KernReturn::kSuccess);
  Result<Message> got = MsgReceive(p.receive);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().id(), 42u);
  EXPECT_EQ(got.value().TakeString().value(), "payload");
}

TEST(PortTest, FifoOrder) {
  PortPair p = PortAllocate();
  for (uint32_t i = 0; i < 10; ++i) {
    Message msg(i);
    ASSERT_EQ(MsgSend(p.send, std::move(msg)), KernReturn::kSuccess);
  }
  for (uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(MsgReceive(p.receive).value().id(), i);
  }
}

TEST(PortTest, ReceiveTimesOut) {
  PortPair p = PortAllocate();
  auto start = std::chrono::steady_clock::now();
  Result<Message> got = MsgReceive(p.receive, milliseconds(30));
  EXPECT_EQ(got.status(), KernReturn::kTimedOut);
  EXPECT_GE(std::chrono::steady_clock::now() - start, milliseconds(25));
}

TEST(PortTest, ReceivePollReturnsNoMessage) {
  PortPair p = PortAllocate();
  EXPECT_EQ(MsgReceive(p.receive, kPoll).status(), KernReturn::kNoMessage);
}

TEST(PortTest, CrossThreadDelivery) {
  PortPair p = PortAllocate();
  std::thread sender([send = p.send]() mutable {
    Message msg(9);
    msg.PushU32(123);
    MsgSend(send, std::move(msg));
  });
  Result<Message> got = MsgReceive(p.receive, milliseconds(5000));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().TakeU32().value(), 123u);
  sender.join();
}

TEST(PortTest, BacklogBlocksSender) {
  PortPair p = PortAllocate();
  ASSERT_EQ(p.receive.port()->SetBacklog(2), KernReturn::kSuccess);
  EXPECT_EQ(MsgSend(p.send, Message(1), kPoll), KernReturn::kSuccess);
  EXPECT_EQ(MsgSend(p.send, Message(2), kPoll), KernReturn::kSuccess);
  EXPECT_EQ(MsgSend(p.send, Message(3), kPoll), KernReturn::kPortFull);
  // Draining frees space.
  MsgReceive(p.receive);
  EXPECT_EQ(MsgSend(p.send, Message(3), kPoll), KernReturn::kSuccess);
}

TEST(PortTest, BlockedSenderWakesOnDrain) {
  PortPair p = PortAllocate();
  ASSERT_EQ(p.receive.port()->SetBacklog(1), KernReturn::kSuccess);
  ASSERT_EQ(MsgSend(p.send, Message(1), kPoll), KernReturn::kSuccess);
  std::atomic<bool> sent{false};
  std::thread sender([&, send = p.send]() mutable {
    EXPECT_EQ(MsgSend(send, Message(2), milliseconds(5000)), KernReturn::kSuccess);
    sent = true;
  });
  std::this_thread::sleep_for(milliseconds(20));
  EXPECT_FALSE(sent.load());
  MsgReceive(p.receive);
  sender.join();
  EXPECT_TRUE(sent.load());
}

TEST(PortTest, SetBacklogRejectsZero) {
  PortPair p = PortAllocate();
  EXPECT_EQ(p.receive.port()->SetBacklog(0), KernReturn::kInvalidArgument);
}

TEST(PortTest, StatusReflectsQueue) {
  PortPair p = PortAllocate();
  MsgSend(p.send, Message(1));
  MsgSend(p.send, Message(2));
  PortStatus st = p.receive.port()->Status();
  EXPECT_EQ(st.num_msgs, 2u);
  EXPECT_EQ(st.backlog, kDefaultBacklog);
  EXPECT_FALSE(st.dead);
  EXPECT_FALSE(st.enabled);
}

TEST(PortDeathTest, SendToDeadPortFails) {
  SendRight send;
  {
    PortPair p = PortAllocate();
    send = p.send;
  }  // receive right dropped -> port death
  EXPECT_TRUE(send.IsDead());
  EXPECT_EQ(MsgSend(send, Message(1)), KernReturn::kPortDead);
}

TEST(PortDeathTest, ReceiverDrainsQueueBeforeDeathVisible) {
  // Destroying the receive right destroys queued messages too.
  PortPair p = PortAllocate();
  MsgSend(p.send, Message(1));
  p.receive.Destroy();
  EXPECT_TRUE(p.send.IsDead());
}

TEST(PortDeathTest, BlockedReceiverFailsOnDeath) {
  PortPair p = PortAllocate();
  std::thread killer([&] {
    std::this_thread::sleep_for(milliseconds(30));
    p.receive.Destroy();
  });
  // Use the raw port: receive right is being destroyed concurrently.
  std::shared_ptr<Port> port = p.send.port();
  Result<Message> got = port->Dequeue(milliseconds(5000));
  EXPECT_EQ(got.status(), KernReturn::kPortDead);
  killer.join();
}

TEST(PortDeathTest, DeathNotificationDelivered) {
  PortPair notify = PortAllocate("notify");
  uint64_t dead_id = 0;
  {
    PortPair watched = PortAllocate("watched");
    dead_id = watched.send.id();
    watched.receive.port()->RequestDeathNotification(notify.send);
  }
  Result<Message> msg = MsgReceive(notify.receive, milliseconds(1000));
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(msg.value().id(), kMsgIdPortDeath);
  EXPECT_EQ(msg.value().TakeU64().value(), dead_id);
}

TEST(PortDeathTest, NotificationOnAlreadyDeadPortFiresImmediately) {
  PortPair notify = PortAllocate("notify");
  PortPair watched = PortAllocate("watched");
  uint64_t id = watched.send.id();
  watched.receive.Destroy();
  watched.send.port()->RequestDeathNotification(notify.send);
  Result<Message> msg = MsgReceive(notify.receive, milliseconds(1000));
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(msg.value().TakeU64().value(), id);
}

TEST(PortDeathTest, MessageHoldingOwnPortRightsDoesNotDeadlock) {
  // A queued message that carries the receive right of the port it is
  // queued on must not deadlock port destruction.
  PortPair p = PortAllocate("self");
  Message msg(1);
  SendRight send = p.send;
  msg.PushReceive(std::move(p.receive));
  // Enqueue via the send right; the port now owns its own receive right.
  ASSERT_EQ(MsgSend(send, std::move(msg)), KernReturn::kSuccess);
  // Dropping our last reference triggers destruction through the queue.
  send = SendRight();
  SUCCEED();
}

TEST(RpcTest, EchoServer) {
  PortPair server = PortAllocate("echo");
  std::thread service([recv = std::move(server.receive)]() mutable {
    Result<Message> req = MsgReceive(recv, milliseconds(5000));
    ASSERT_TRUE(req.ok());
    uint32_t v = req.value().TakeU32().value();
    Message reply(req.value().id() + 100);
    reply.PushU32(v * 2);
    MsgSend(req.value().reply_port(), std::move(reply));
  });
  Message request(5);
  request.PushU32(21);
  Result<Message> reply = MsgRpc(server.send, std::move(request));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().id(), 105u);
  EXPECT_EQ(reply.value().TakeU32().value(), 42u);
  service.join();
}

TEST(RpcTest, RpcToDeadServerFails) {
  SendRight send;
  {
    PortPair p = PortAllocate();
    send = p.send;
  }
  Result<Message> reply = MsgRpc(send, Message(1));
  EXPECT_EQ(reply.status(), KernReturn::kPortDead);
}

TEST(RpcTest, RpcReceiveTimeout) {
  PortPair server = PortAllocate();  // Nobody answers.
  Result<Message> reply = MsgRpc(server.send, Message(1), kWaitForever, milliseconds(30));
  EXPECT_EQ(reply.status(), KernReturn::kTimedOut);
}

TEST(PortSetTest, ReceiveFromAnyMember) {
  auto set = PortSet::Create();
  PortPair a = PortAllocate("a");
  PortPair b = PortAllocate("b");
  ASSERT_EQ(set->Add(a.receive), KernReturn::kSuccess);
  ASSERT_EQ(set->Add(b.receive), KernReturn::kSuccess);
  EXPECT_EQ(set->member_count(), 2u);
  MsgSend(b.send, Message(22));
  Result<PortSet::ReceivedMessage> got = set->ReceiveFrom(milliseconds(1000));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().message.id(), 22u);
  EXPECT_EQ(got.value().port_id, b.send.id());
}

TEST(PortSetTest, RoundRobinAvoidsStarvation) {
  auto set = PortSet::Create();
  PortPair a = PortAllocate("a");
  PortPair b = PortAllocate("b");
  set->Add(a.receive);
  set->Add(b.receive);
  // Keep both queues non-empty; both ports must get service.
  for (int i = 0; i < 4; ++i) {
    MsgSend(a.send, Message(1));
    MsgSend(b.send, Message(2));
  }
  int from_a = 0, from_b = 0;
  for (int i = 0; i < 8; ++i) {
    uint32_t id = set->Receive(milliseconds(1000)).value().id();
    (id == 1 ? from_a : from_b)++;
  }
  EXPECT_EQ(from_a, 4);
  EXPECT_EQ(from_b, 4);
}

TEST(PortSetTest, PollWhenEmpty) {
  auto set = PortSet::Create();
  PortPair a = PortAllocate();
  set->Add(a.receive);
  EXPECT_EQ(set->Receive(kPoll).status(), KernReturn::kNoMessage);
}

TEST(PortSetTest, TimeoutWhenEmpty) {
  auto set = PortSet::Create();
  PortPair a = PortAllocate();
  set->Add(a.receive);
  EXPECT_EQ(set->Receive(milliseconds(20)).status(), KernReturn::kTimedOut);
}

TEST(PortSetTest, WakesBlockedReceiver) {
  auto set = PortSet::Create();
  PortPair a = PortAllocate();
  set->Add(a.receive);
  std::thread sender([send = a.send]() mutable {
    std::this_thread::sleep_for(milliseconds(20));
    MsgSend(send, Message(77));
  });
  Result<Message> got = set->Receive(milliseconds(5000));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().id(), 77u);
  sender.join();
}

TEST(PortSetTest, RemoveDisablesPort) {
  auto set = PortSet::Create();
  PortPair a = PortAllocate();
  set->Add(a.receive);
  EXPECT_TRUE(a.receive.port()->Status().enabled);
  EXPECT_EQ(set->Remove(a.receive), KernReturn::kSuccess);
  EXPECT_EQ(set->member_count(), 0u);
  EXPECT_EQ(set->Remove(a.receive), KernReturn::kNotFound);
  MsgSend(a.send, Message(1));
  EXPECT_EQ(set->Receive(kPoll).status(), KernReturn::kNoMessage);
}

TEST(PortSetTest, PortsWithMessages) {
  auto set = PortSet::Create();
  PortPair a = PortAllocate();
  PortPair b = PortAllocate();
  set->Add(a.receive);
  set->Add(b.receive);
  MsgSend(b.send, Message(1));
  std::vector<uint64_t> ids = set->PortsWithMessages();
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], b.send.id());
}

TEST(PortSetTest, DeadMemberIsDropped) {
  auto set = PortSet::Create();
  PortPair a = PortAllocate();
  PortPair b = PortAllocate();
  set->Add(a.receive);
  set->Add(b.receive);
  a.receive.Destroy();
  MsgSend(b.send, Message(5));
  EXPECT_EQ(set->Receive(milliseconds(1000)).value().id(), 5u);
  EXPECT_EQ(set->member_count(), 1u);
}

TEST(StressTest, ManySendersOneReceiver) {
  PortPair p = PortAllocate();
  p.receive.port()->SetBacklog(1024);
  constexpr int kSenders = 8;
  constexpr int kPerSender = 200;
  std::vector<std::thread> senders;
  for (int s = 0; s < kSenders; ++s) {
    senders.emplace_back([send = p.send, s]() mutable {
      for (int i = 0; i < kPerSender; ++i) {
        Message msg(static_cast<MsgId>(s));
        msg.PushU32(static_cast<uint32_t>(i));
        ASSERT_EQ(MsgSend(send, std::move(msg), milliseconds(10000)), KernReturn::kSuccess);
      }
    });
  }
  int received = 0;
  std::vector<uint32_t> last_seen(kSenders, 0);
  while (received < kSenders * kPerSender) {
    Result<Message> msg = MsgReceive(p.receive, milliseconds(10000));
    ASSERT_TRUE(msg.ok());
    ++received;
  }
  for (auto& t : senders) {
    t.join();
  }
  EXPECT_EQ(received, kSenders * kPerSender);
}

}  // namespace
}  // namespace mach
