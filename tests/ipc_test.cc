// Unit tests for the IPC layer: ports, rights, messages, port sets, RPC,
// timeouts, backlog, port death, no-senders notifications, port GC, and the
// ipc.* fault points — the operations of Tables 3-1 and 3-2 plus the
// notification machinery layered on them.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "src/base/fault_injector.h"
#include "src/ipc/ipc_faults.h"
#include "src/ipc/message.h"
#include "src/ipc/port.h"
#include "src/ipc/port_gc.h"
#include "src/ipc/port_right.h"

namespace mach {
namespace {

using std::chrono::milliseconds;

// Arms the process-wide IPC injector for one test body and guarantees
// disarm (which also drains deferred notifications) on every exit path.
class IpcFaultGuard {
 public:
  explicit IpcFaultGuard(FaultInjector* injector) { SetIpcFaultInjector(injector); }
  ~IpcFaultGuard() { SetIpcFaultInjector(nullptr); }
};

TEST(MessageTest, RoundTripTypedItems) {
  Message msg(7);
  msg.PushU32(0xAABB);
  msg.PushU64(0x1122334455667788ull);
  msg.PushString("typed data");
  ASSERT_EQ(msg.item_count(), 3u);
  EXPECT_EQ(msg.TakeU32().value(), 0xAABBu);
  EXPECT_EQ(msg.TakeU64().value(), 0x1122334455667788ull);
  EXPECT_EQ(msg.TakeString().value(), "typed data");
  EXPECT_TRUE(msg.AtEnd());
}

TEST(MessageTest, TypeMismatchFails) {
  Message msg;
  msg.PushU32(1);
  EXPECT_FALSE(msg.TakePort().ok());
  // Cursor did not advance on mismatch.
  EXPECT_TRUE(msg.TakeU32().ok());
}

TEST(MessageTest, TakePastEndFails) {
  Message msg;
  EXPECT_EQ(msg.TakeU32().status(), KernReturn::kInvalidArgument);
}

TEST(MessageTest, InlineSizeCountsDataOnly) {
  Message msg;
  msg.PushU32(1);                  // 4 bytes
  msg.PushData("abcdefgh", 8);     // 8 bytes
  PortPair p = PortAllocate("x");
  msg.PushPort(p.send);            // not inline data
  EXPECT_EQ(msg.InlineSize(), 12u);
}

TEST(MessageTest, CarriesPortRights) {
  PortPair p = PortAllocate("carried");
  Message msg;
  msg.PushPort(p.send);
  Result<SendRight> got = msg.TakePort();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().id(), p.send.id());
}

TEST(PortTest, AllocateGivesLiveRights) {
  PortPair p = PortAllocate("test");
  EXPECT_TRUE(p.receive.valid());
  EXPECT_TRUE(p.send.valid());
  EXPECT_EQ(p.receive.id(), p.send.id());
  EXPECT_FALSE(p.send.IsDead());
  EXPECT_EQ(p.send.label(), "test");
}

TEST(PortTest, SendReceiveRoundTrip) {
  PortPair p = PortAllocate();
  Message msg(42);
  msg.PushString("payload");
  ASSERT_EQ(MsgSend(p.send, std::move(msg)), KernReturn::kSuccess);
  Result<Message> got = MsgReceive(p.receive);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().id(), 42u);
  EXPECT_EQ(got.value().TakeString().value(), "payload");
}

TEST(PortTest, FifoOrder) {
  PortPair p = PortAllocate();
  for (uint32_t i = 0; i < 10; ++i) {
    Message msg(i);
    ASSERT_EQ(MsgSend(p.send, std::move(msg)), KernReturn::kSuccess);
  }
  for (uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(MsgReceive(p.receive).value().id(), i);
  }
}

TEST(PortTest, ReceiveTimesOut) {
  PortPair p = PortAllocate();
  auto start = std::chrono::steady_clock::now();
  Result<Message> got = MsgReceive(p.receive, milliseconds(30));
  EXPECT_EQ(got.status(), KernReturn::kTimedOut);
  EXPECT_GE(std::chrono::steady_clock::now() - start, milliseconds(25));
}

TEST(PortTest, ReceivePollReturnsNoMessage) {
  PortPair p = PortAllocate();
  EXPECT_EQ(MsgReceive(p.receive, kPoll).status(), KernReturn::kNoMessage);
}

TEST(PortTest, CrossThreadDelivery) {
  PortPair p = PortAllocate();
  std::thread sender([send = p.send]() mutable {
    Message msg(9);
    msg.PushU32(123);
    MsgSend(send, std::move(msg));
  });
  Result<Message> got = MsgReceive(p.receive, milliseconds(5000));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().TakeU32().value(), 123u);
  sender.join();
}

TEST(PortTest, BacklogBlocksSender) {
  PortPair p = PortAllocate();
  ASSERT_EQ(p.receive.port()->SetBacklog(2), KernReturn::kSuccess);
  EXPECT_EQ(MsgSend(p.send, Message(1), kPoll), KernReturn::kSuccess);
  EXPECT_EQ(MsgSend(p.send, Message(2), kPoll), KernReturn::kSuccess);
  EXPECT_EQ(MsgSend(p.send, Message(3), kPoll), KernReturn::kPortFull);
  // Draining frees space.
  MsgReceive(p.receive);
  EXPECT_EQ(MsgSend(p.send, Message(3), kPoll), KernReturn::kSuccess);
}

TEST(PortTest, BlockedSenderWakesOnDrain) {
  PortPair p = PortAllocate();
  ASSERT_EQ(p.receive.port()->SetBacklog(1), KernReturn::kSuccess);
  ASSERT_EQ(MsgSend(p.send, Message(1), kPoll), KernReturn::kSuccess);
  std::atomic<bool> sent{false};
  std::thread sender([&, send = p.send]() mutable {
    EXPECT_EQ(MsgSend(send, Message(2), milliseconds(5000)), KernReturn::kSuccess);
    sent = true;
  });
  std::this_thread::sleep_for(milliseconds(20));
  EXPECT_FALSE(sent.load());
  MsgReceive(p.receive);
  sender.join();
  EXPECT_TRUE(sent.load());
}

TEST(PortTest, SetBacklogRejectsZero) {
  PortPair p = PortAllocate();
  EXPECT_EQ(p.receive.port()->SetBacklog(0), KernReturn::kInvalidArgument);
}

TEST(PortTest, StatusReflectsQueue) {
  PortPair p = PortAllocate();
  MsgSend(p.send, Message(1));
  MsgSend(p.send, Message(2));
  PortStatus st = p.receive.port()->Status();
  EXPECT_EQ(st.num_msgs, 2u);
  EXPECT_EQ(st.backlog, kDefaultBacklog);
  EXPECT_FALSE(st.dead);
  EXPECT_FALSE(st.enabled);
}

TEST(PortDeathTest, SendToDeadPortFails) {
  SendRight send;
  {
    PortPair p = PortAllocate();
    send = p.send;
  }  // receive right dropped -> port death
  EXPECT_TRUE(send.IsDead());
  EXPECT_EQ(MsgSend(send, Message(1)), KernReturn::kPortDead);
}

TEST(PortDeathTest, ReceiverDrainsQueueBeforeDeathVisible) {
  // Destroying the receive right destroys queued messages too.
  PortPair p = PortAllocate();
  MsgSend(p.send, Message(1));
  p.receive.Destroy();
  EXPECT_TRUE(p.send.IsDead());
}

TEST(PortDeathTest, BlockedReceiverFailsOnDeath) {
  PortPair p = PortAllocate();
  std::thread killer([&] {
    std::this_thread::sleep_for(milliseconds(30));
    p.receive.Destroy();
  });
  // Use the raw port: receive right is being destroyed concurrently.
  std::shared_ptr<Port> port = p.send.port();
  Result<Message> got = port->Dequeue(milliseconds(5000));
  EXPECT_EQ(got.status(), KernReturn::kPortDead);
  killer.join();
}

TEST(PortDeathTest, DeathNotificationDelivered) {
  PortPair notify = PortAllocate("notify");
  uint64_t dead_id = 0;
  {
    PortPair watched = PortAllocate("watched");
    dead_id = watched.send.id();
    watched.receive.port()->RequestDeathNotification(notify.send);
  }
  Result<Message> msg = MsgReceive(notify.receive, milliseconds(1000));
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(msg.value().id(), kMsgIdPortDeath);
  EXPECT_EQ(msg.value().TakeU64().value(), dead_id);
}

TEST(PortDeathTest, NotificationOnAlreadyDeadPortFiresImmediately) {
  PortPair notify = PortAllocate("notify");
  PortPair watched = PortAllocate("watched");
  uint64_t id = watched.send.id();
  watched.receive.Destroy();
  watched.send.port()->RequestDeathNotification(notify.send);
  Result<Message> msg = MsgReceive(notify.receive, milliseconds(1000));
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(msg.value().TakeU64().value(), id);
}

TEST(PortDeathTest, MessageHoldingOwnPortRightsIsReclaimedByGc) {
  // A queued message that carries the receive right of the port it is
  // queued on forms a self-cycle no task can ever break: the port owns
  // itself. PortGc must reclaim it without deadlocking.
  size_t baseline = PortGcLivePortCount();
  PortPair p = PortAllocate("self");
  Message msg(1);
  SendRight send = p.send;
  msg.PushReceive(std::move(p.receive));
  ASSERT_EQ(MsgSend(send, std::move(msg)), KernReturn::kSuccess);
  // Dropping our send rights leaves the queue-held cycle as the only ref.
  send = SendRight();
  p.send = SendRight();
  EXPECT_EQ(PortGcCollect(), 1u);
  EXPECT_EQ(PortGcLivePortCount(), baseline);
}

TEST(RpcTest, EchoServer) {
  PortPair server = PortAllocate("echo");
  std::thread service([recv = std::move(server.receive)]() mutable {
    Result<Message> req = MsgReceive(recv, milliseconds(5000));
    ASSERT_TRUE(req.ok());
    uint32_t v = req.value().TakeU32().value();
    Message reply(req.value().id() + 100);
    reply.PushU32(v * 2);
    MsgSend(req.value().reply_port(), std::move(reply));
  });
  Message request(5);
  request.PushU32(21);
  Result<Message> reply = MsgRpc(server.send, std::move(request));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().id(), 105u);
  EXPECT_EQ(reply.value().TakeU32().value(), 42u);
  service.join();
}

TEST(RpcTest, RpcToDeadServerFails) {
  SendRight send;
  {
    PortPair p = PortAllocate();
    send = p.send;
  }
  Result<Message> reply = MsgRpc(send, Message(1));
  EXPECT_EQ(reply.status(), KernReturn::kPortDead);
}

TEST(RpcTest, RpcReceiveTimeout) {
  PortPair server = PortAllocate();  // Nobody answers.
  Result<Message> reply = MsgRpc(server.send, Message(1), kWaitForever, milliseconds(30));
  EXPECT_EQ(reply.status(), KernReturn::kTimedOut);
}

TEST(PortSetTest, ReceiveFromAnyMember) {
  auto set = PortSet::Create();
  PortPair a = PortAllocate("a");
  PortPair b = PortAllocate("b");
  ASSERT_EQ(set->Add(a.receive), KernReturn::kSuccess);
  ASSERT_EQ(set->Add(b.receive), KernReturn::kSuccess);
  EXPECT_EQ(set->member_count(), 2u);
  MsgSend(b.send, Message(22));
  Result<PortSet::ReceivedMessage> got = set->ReceiveFrom(milliseconds(1000));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().message.id(), 22u);
  EXPECT_EQ(got.value().port_id, b.send.id());
}

TEST(PortSetTest, RoundRobinAvoidsStarvation) {
  auto set = PortSet::Create();
  PortPair a = PortAllocate("a");
  PortPair b = PortAllocate("b");
  set->Add(a.receive);
  set->Add(b.receive);
  // Keep both queues non-empty; both ports must get service.
  for (int i = 0; i < 4; ++i) {
    MsgSend(a.send, Message(1));
    MsgSend(b.send, Message(2));
  }
  int from_a = 0, from_b = 0;
  for (int i = 0; i < 8; ++i) {
    uint32_t id = set->Receive(milliseconds(1000)).value().id();
    (id == 1 ? from_a : from_b)++;
  }
  EXPECT_EQ(from_a, 4);
  EXPECT_EQ(from_b, 4);
}

TEST(PortSetTest, PollWhenEmpty) {
  auto set = PortSet::Create();
  PortPair a = PortAllocate();
  set->Add(a.receive);
  EXPECT_EQ(set->Receive(kPoll).status(), KernReturn::kNoMessage);
}

TEST(PortSetTest, TimeoutWhenEmpty) {
  auto set = PortSet::Create();
  PortPair a = PortAllocate();
  set->Add(a.receive);
  EXPECT_EQ(set->Receive(milliseconds(20)).status(), KernReturn::kTimedOut);
}

TEST(PortSetTest, WakesBlockedReceiver) {
  auto set = PortSet::Create();
  PortPair a = PortAllocate();
  set->Add(a.receive);
  std::thread sender([send = a.send]() mutable {
    std::this_thread::sleep_for(milliseconds(20));
    MsgSend(send, Message(77));
  });
  Result<Message> got = set->Receive(milliseconds(5000));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().id(), 77u);
  sender.join();
}

TEST(PortSetTest, RemoveDisablesPort) {
  auto set = PortSet::Create();
  PortPair a = PortAllocate();
  set->Add(a.receive);
  EXPECT_TRUE(a.receive.port()->Status().enabled);
  EXPECT_EQ(set->Remove(a.receive), KernReturn::kSuccess);
  EXPECT_EQ(set->member_count(), 0u);
  EXPECT_EQ(set->Remove(a.receive), KernReturn::kNotFound);
  MsgSend(a.send, Message(1));
  EXPECT_EQ(set->Receive(kPoll).status(), KernReturn::kNoMessage);
}

TEST(PortSetTest, PortsWithMessages) {
  auto set = PortSet::Create();
  PortPair a = PortAllocate();
  PortPair b = PortAllocate();
  set->Add(a.receive);
  set->Add(b.receive);
  MsgSend(b.send, Message(1));
  std::vector<uint64_t> ids = set->PortsWithMessages();
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], b.send.id());
}

TEST(PortSetTest, DeadMemberIsDropped) {
  auto set = PortSet::Create();
  PortPair a = PortAllocate();
  PortPair b = PortAllocate();
  set->Add(a.receive);
  set->Add(b.receive);
  a.receive.Destroy();
  MsgSend(b.send, Message(5));
  EXPECT_EQ(set->Receive(milliseconds(1000)).value().id(), 5u);
  EXPECT_EQ(set->member_count(), 1u);
}

TEST(StressTest, ManySendersOneReceiver) {
  PortPair p = PortAllocate();
  p.receive.port()->SetBacklog(1024);
  constexpr int kSenders = 8;
  constexpr int kPerSender = 200;
  std::vector<std::thread> senders;
  for (int s = 0; s < kSenders; ++s) {
    senders.emplace_back([send = p.send, s]() mutable {
      for (int i = 0; i < kPerSender; ++i) {
        Message msg(static_cast<MsgId>(s));
        msg.PushU32(static_cast<uint32_t>(i));
        ASSERT_EQ(MsgSend(send, std::move(msg), milliseconds(10000)), KernReturn::kSuccess);
      }
    });
  }
  int received = 0;
  std::vector<uint32_t> last_seen(kSenders, 0);
  while (received < kSenders * kPerSender) {
    Result<Message> msg = MsgReceive(p.receive, milliseconds(10000));
    ASSERT_TRUE(msg.ok());
    ++received;
  }
  for (auto& t : senders) {
    t.join();
  }
  EXPECT_EQ(received, kSenders * kPerSender);
}

// --- no-senders notifications -------------------------------------------

TEST(NoSendersTest, StatusCountsSendRights) {
  PortPair p = PortAllocate("counted");
  EXPECT_EQ(p.receive.port()->send_right_count(), 1u);
  SendRight extra = p.send;
  EXPECT_EQ(p.receive.port()->Status().send_rights, 2u);
  extra = SendRight();
  EXPECT_EQ(p.receive.port()->send_right_count(), 1u);
}

TEST(NoSendersTest, FiresWhenLastSendRightDies) {
  PortPair notify = PortAllocate("notify");
  PortPair p = PortAllocate("watched");
  uint64_t id = p.send.id();
  p.receive.port()->RequestNoSendersNotification(notify.send);
  EXPECT_EQ(MsgReceive(notify.receive, kPoll).status(), KernReturn::kNoMessage);
  p.send = SendRight();
  Result<Message> msg = MsgReceive(notify.receive, milliseconds(1000));
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(msg.value().id(), kMsgIdNoSenders);
  EXPECT_EQ(msg.value().TakeU64().value(), id);
  // The port itself stays alive — only its senders are gone.
  EXPECT_FALSE(p.receive.port()->dead());
}

TEST(NoSendersTest, CountsRightsInsideQueuedMessages) {
  PortPair notify = PortAllocate("notify");
  PortPair carrier = PortAllocate("carrier");
  PortPair p = PortAllocate("watched");
  p.receive.port()->RequestNoSendersNotification(notify.send);
  Message msg(1);
  msg.PushPort(p.send);  // A counted copy rides in carrier's queue.
  ASSERT_EQ(MsgSend(carrier.send, std::move(msg)), KernReturn::kSuccess);
  p.send = SendRight();
  // The in-queue copy still holds the count above zero.
  EXPECT_EQ(p.receive.port()->send_right_count(), 1u);
  EXPECT_EQ(MsgReceive(notify.receive, kPoll).status(), KernReturn::kNoMessage);
  // Receiving and dropping the carried copy is the last-sender transition.
  {
    Result<Message> got = MsgReceive(carrier.receive, milliseconds(1000));
    ASSERT_TRUE(got.ok());
  }  // The received message (and the right it carries) dies here.
  Result<Message> fired = MsgReceive(notify.receive, milliseconds(1000));
  ASSERT_TRUE(fired.ok());
  EXPECT_EQ(fired.value().id(), kMsgIdNoSenders);
}

TEST(NoSendersTest, RegisterWithZeroSendersFiresImmediately) {
  PortPair notify = PortAllocate("notify");
  PortPair p = PortAllocate("watched");
  p.send = SendRight();
  p.receive.port()->RequestNoSendersNotification(notify.send);
  Result<Message> msg = MsgReceive(notify.receive, milliseconds(1000));
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(msg.value().id(), kMsgIdNoSenders);
}

TEST(NoSendersTest, ReRegisterAfterFireDeliversAgain) {
  PortPair notify = PortAllocate("notify");
  PortPair p = PortAllocate("watched");
  p.receive.port()->RequestNoSendersNotification(notify.send);
  p.send = SendRight();
  ASSERT_TRUE(MsgReceive(notify.receive, milliseconds(1000)).ok());
  // Resurrect the count, re-arm, and kill the senders again.
  SendRight revived = p.receive.MakeSendRight();
  p.receive.port()->RequestNoSendersNotification(notify.send);
  EXPECT_EQ(MsgReceive(notify.receive, kPoll).status(), KernReturn::kNoMessage);
  revived = SendRight();
  Result<Message> again = MsgReceive(notify.receive, milliseconds(1000));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().id(), kMsgIdNoSenders);
}

TEST(NoSendersTest, PortDeathSupersedesNoSenders) {
  PortPair notify = PortAllocate("notify");
  PortPair p = PortAllocate("watched");
  p.receive.port()->RequestNoSendersNotification(notify.send);
  p.receive.Destroy();  // Dies while a send right still exists.
  p.send = SendRight();
  // No no-senders notification: the registration died with the port.
  EXPECT_EQ(MsgReceive(notify.receive, milliseconds(50)).status(), KernReturn::kTimedOut);
}

// --- port garbage collection --------------------------------------------

TEST(PortGcTest, CrossPortCycleReclaimed) {
  // The ROADMAP leak: two ports each queueing the other's receive right.
  // Neither can ever be received from again, and neither dies on its own.
  size_t baseline = PortGcLivePortCount();
  PortPair a = PortAllocate("cycle-a");
  PortPair b = PortAllocate("cycle-b");
  Message ma(1);
  ma.PushReceive(std::move(b.receive));
  ASSERT_EQ(MsgSend(a.send, std::move(ma), kPoll), KernReturn::kSuccess);
  Message mb(2);
  mb.PushReceive(std::move(a.receive));
  ASSERT_EQ(MsgSend(b.send, std::move(mb), kPoll), KernReturn::kSuccess);
  a.send = SendRight();
  b.send = SendRight();
  EXPECT_EQ(PortGcCollect(), 2u);
  EXPECT_EQ(PortGcLivePortCount(), baseline);
}

TEST(PortGcTest, ThreePortRingReclaimed) {
  size_t baseline = PortGcLivePortCount();
  PortPair a = PortAllocate("ring-a");
  PortPair b = PortAllocate("ring-b");
  PortPair c = PortAllocate("ring-c");
  Message ma(1);
  ma.PushReceive(std::move(b.receive));
  ASSERT_EQ(MsgSend(a.send, std::move(ma), kPoll), KernReturn::kSuccess);
  Message mb(2);
  mb.PushReceive(std::move(c.receive));
  ASSERT_EQ(MsgSend(b.send, std::move(mb), kPoll), KernReturn::kSuccess);
  Message mc(3);
  mc.PushReceive(std::move(a.receive));
  ASSERT_EQ(MsgSend(c.send, std::move(mc), kPoll), KernReturn::kSuccess);
  a.send = SendRight();
  b.send = SendRight();
  c.send = SendRight();
  EXPECT_EQ(PortGcCollect(), 3u);
  EXPECT_EQ(PortGcLivePortCount(), baseline);
}

TEST(PortGcTest, ExternallyReferencedCycleIsKept) {
  size_t baseline = PortGcLivePortCount();
  PortPair a = PortAllocate("held-a");
  PortPair b = PortAllocate("held-b");
  Message ma(1);
  ma.PushReceive(std::move(b.receive));
  ASSERT_EQ(MsgSend(a.send, std::move(ma), kPoll), KernReturn::kSuccess);
  Message mb(2);
  mb.PushReceive(std::move(a.receive));
  ASSERT_EQ(MsgSend(b.send, std::move(mb), kPoll), KernReturn::kSuccess);
  b.send = SendRight();
  // a.send is still task-held, so the whole structure stays reachable.
  EXPECT_EQ(PortGcCollect(), 0u);
  EXPECT_EQ(PortGcLivePortCount(), baseline + 2);
  EXPECT_FALSE(a.send.IsDead());
  // Dropping the root makes the cycle collectable.
  a.send = SendRight();
  EXPECT_EQ(PortGcCollect(), 2u);
  EXPECT_EQ(PortGcLivePortCount(), baseline);
}

TEST(PortGcTest, DeathNotificationsFireForReclaimedPorts) {
  PortPair notify = PortAllocate("notify");
  PortPair a = PortAllocate("gc-a");
  PortPair b = PortAllocate("gc-b");
  uint64_t a_id = a.send.id();
  uint64_t b_id = b.send.id();
  a.receive.port()->RequestDeathNotification(notify.send);
  b.receive.port()->RequestDeathNotification(notify.send);
  Message ma(1);
  ma.PushReceive(std::move(b.receive));
  ASSERT_EQ(MsgSend(a.send, std::move(ma), kPoll), KernReturn::kSuccess);
  Message mb(2);
  mb.PushReceive(std::move(a.receive));
  ASSERT_EQ(MsgSend(b.send, std::move(mb), kPoll), KernReturn::kSuccess);
  a.send = SendRight();
  b.send = SendRight();
  EXPECT_EQ(PortGcCollect(), 2u);
  // GC destroys through the ordinary path, so watchers still hear about it.
  std::vector<uint64_t> dead;
  for (int i = 0; i < 2; ++i) {
    Result<Message> msg = MsgReceive(notify.receive, milliseconds(1000));
    ASSERT_TRUE(msg.ok());
    EXPECT_EQ(msg.value().id(), kMsgIdPortDeath);
    dead.push_back(msg.value().TakeU64().value());
  }
  EXPECT_TRUE((dead[0] == a_id && dead[1] == b_id) || (dead[0] == b_id && dead[1] == a_id));
}

TEST(PortGcTest, ReplyPortCycleReclaimed) {
  // The cycle can also ride the reply-port slot, not just explicit items.
  size_t baseline = PortGcLivePortCount();
  PortPair a = PortAllocate("reply-a");
  PortPair b = PortAllocate("reply-b");
  Message ma(1);
  ma.set_reply_port(b.send);
  ASSERT_EQ(MsgSend(a.send, std::move(ma), kPoll), KernReturn::kSuccess);
  Message mb(2);
  mb.PushReceive(std::move(a.receive));
  mb.PushReceive(std::move(b.receive));
  ASSERT_EQ(MsgSend(b.send, std::move(mb), kPoll), KernReturn::kSuccess);
  a.send = SendRight();
  b.send = SendRight();
  EXPECT_EQ(PortGcCollect(), 2u);
  EXPECT_EQ(PortGcLivePortCount(), baseline);
}

// --- rights carried by undeliverable messages (the "GC path" fix) --------

TEST(DeadPortRightsTest, FailedSendToDeadPortDestroysCarriedRights) {
  PortPair notify = PortAllocate("notify");
  PortPair dest = PortAllocate("dest");
  dest.receive.Destroy();
  PortPair inner = PortAllocate("inner");
  uint64_t inner_id = inner.send.id();
  inner.receive.port()->RequestDeathNotification(notify.send);
  PortPair witness = PortAllocate("witness");
  witness.receive.port()->RequestNoSendersNotification(notify.send);
  {
    Message msg(1);
    msg.PushReceive(std::move(inner.receive));  // Last receive right.
    msg.PushPort(witness.send);
    witness.send = SendRight();  // Queue copy is now the only send right.
    EXPECT_EQ(MsgSend(dest.send, std::move(msg)), KernReturn::kPortDead);
  }  // The undeliverable message dies here, rights and all.
  // inner's receive right died (death notification) and witness's last send
  // right died (no-senders); item destruction order is unspecified, so
  // accept both orders.
  bool saw_death = false, saw_no_senders = false;
  for (int i = 0; i < 2; ++i) {
    Result<Message> msg = MsgReceive(notify.receive, milliseconds(1000));
    ASSERT_TRUE(msg.ok());
    if (msg.value().id() == kMsgIdPortDeath) {
      EXPECT_EQ(msg.value().TakeU64().value(), inner_id);
      saw_death = true;
    } else {
      EXPECT_EQ(msg.value().id(), kMsgIdNoSenders);
      EXPECT_EQ(msg.value().TakeU64().value(), witness.receive.id());
      saw_no_senders = true;
    }
  }
  EXPECT_TRUE(saw_death);
  EXPECT_TRUE(saw_no_senders);
}

TEST(DeadPortRightsTest, QueuedRightsDestroyedOnPortDeath) {
  // Rights already *in* a queue when the port dies must be destroyed through
  // the same path (death notifications fire), not dropped on the floor.
  PortPair notify = PortAllocate("notify");
  PortPair holder = PortAllocate("holder");
  PortPair inner = PortAllocate("inner");
  uint64_t inner_id = inner.send.id();
  inner.receive.port()->RequestDeathNotification(notify.send);
  Message msg(1);
  msg.PushReceive(std::move(inner.receive));
  ASSERT_EQ(MsgSend(holder.send, std::move(msg), kPoll), KernReturn::kSuccess);
  holder.receive.Destroy();  // Drains the queue, killing inner with it.
  Result<Message> death = MsgReceive(notify.receive, milliseconds(1000));
  ASSERT_TRUE(death.ok());
  EXPECT_EQ(death.value().id(), kMsgIdPortDeath);
  EXPECT_EQ(death.value().TakeU64().value(), inner_id);
  EXPECT_TRUE(inner.send.IsDead());
}

TEST(DeadPortRightsTest, FullQueueSendFailureDestroysCarriedRights) {
  PortPair notify = PortAllocate("notify");
  PortPair dest = PortAllocate("dest");
  ASSERT_EQ(dest.receive.port()->SetBacklog(1), KernReturn::kSuccess);
  ASSERT_EQ(MsgSend(dest.send, Message(0), kPoll), KernReturn::kSuccess);
  PortPair witness = PortAllocate("witness");
  witness.receive.port()->RequestNoSendersNotification(notify.send);
  {
    Message msg(1);
    msg.PushPort(witness.send);
    witness.send = SendRight();
    EXPECT_EQ(MsgSend(dest.send, std::move(msg), kPoll), KernReturn::kPortFull);
  }
  Result<Message> ns = MsgReceive(notify.receive, milliseconds(1000));
  ASSERT_TRUE(ns.ok());
  EXPECT_EQ(ns.value().id(), kMsgIdNoSenders);
}

// --- ipc.* fault points --------------------------------------------------

TEST(IpcFaultTest, EnqueueOverflowInjected) {
  FaultInjector fi(7);
  fi.SetSchedule(kIpcFaultEnqueue, {0});
  IpcFaultGuard guard(&fi);
  PortPair p = PortAllocate("target");
  EXPECT_EQ(MsgSend(p.send, Message(1), kPoll), KernReturn::kPortFull);
  EXPECT_EQ(MsgSend(p.send, Message(2), kPoll), KernReturn::kSuccess);
  EXPECT_EQ(fi.Injected(kIpcFaultEnqueue), 1u);
}

TEST(IpcFaultTest, RightTransferDuplicatesSendRight) {
  FaultInjector fi(7);
  fi.SetSchedule(kIpcFaultRightTransfer, {0});
  IpcFaultGuard guard(&fi);
  PortPair carrier = PortAllocate("carrier");
  PortPair w = PortAllocate("dup-target");
  ASSERT_EQ(w.receive.port()->send_right_count(), 1u);
  Message msg(1);
  msg.PushPort(w.send);
  ASSERT_EQ(MsgSend(carrier.send, std::move(msg), kPoll), KernReturn::kSuccess);
  // Original copy + injected duplicate both ride the queue.
  EXPECT_EQ(w.receive.port()->send_right_count(), 3u);
  Result<Message> got = MsgReceive(carrier.receive, milliseconds(1000));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().item_count(), 2u);
}

TEST(IpcFaultTest, RightTransferDropsReceiveRight) {
  FaultInjector fi(7);
  fi.SetSchedule(kIpcFaultRightTransfer, {0});
  IpcFaultGuard guard(&fi);
  PortPair notify = PortAllocate("notify");
  PortPair carrier = PortAllocate("carrier");
  PortPair inner = PortAllocate("dropped");
  inner.receive.port()->RequestDeathNotification(notify.send);
  Message msg(1);
  msg.PushReceive(std::move(inner.receive));
  ASSERT_EQ(MsgSend(carrier.send, std::move(msg), kPoll), KernReturn::kSuccess);
  // The right was dropped in transit: its port died...
  EXPECT_TRUE(inner.send.IsDead());
  Result<Message> death = MsgReceive(notify.receive, milliseconds(1000));
  ASSERT_TRUE(death.ok());
  EXPECT_EQ(death.value().id(), kMsgIdPortDeath);
  // ...and the receiver sees an invalid right where one was promised.
  Result<Message> got = MsgReceive(carrier.receive, milliseconds(1000));
  ASSERT_TRUE(got.ok());
  Result<ReceiveRight> r = got.value().TakeReceive();
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().valid());
}

TEST(IpcFaultTest, NotifyDeferredUntilDrained) {
  FaultInjector fi(7);
  fi.SetSchedule(kIpcFaultNotify, {0});
  IpcFaultGuard guard(&fi);
  PortPair notify = PortAllocate("notify");
  {
    PortPair watched = PortAllocate("watched");
    watched.receive.port()->RequestDeathNotification(notify.send);
  }
  // The death notification was held back by ipc.notify.
  EXPECT_EQ(MsgReceive(notify.receive, kPoll).status(), KernReturn::kNoMessage);
  EXPECT_EQ(IpcPendingDelayedNotificationCount(), 1u);
  EXPECT_EQ(IpcDrainDelayedNotifications(), 1u);
  Result<Message> death = MsgReceive(notify.receive, milliseconds(1000));
  ASSERT_TRUE(death.ok());
  EXPECT_EQ(death.value().id(), kMsgIdPortDeath);
}

TEST(IpcFaultTest, DisarmingInjectorDrainsPendingNotifications) {
  FaultInjector fi(7);
  fi.SetSchedule(kIpcFaultNotify, {0});
  PortPair notify = PortAllocate("notify");
  {
    IpcFaultGuard guard(&fi);
    PortPair watched = PortAllocate("watched");
    watched.receive.port()->RequestNoSendersNotification(notify.send);
    watched.send = SendRight();
    EXPECT_EQ(IpcPendingDelayedNotificationCount(), 1u);
  }  // Disarm drains: nothing is silently lost.
  EXPECT_EQ(IpcPendingDelayedNotificationCount(), 0u);
  Result<Message> ns = MsgReceive(notify.receive, milliseconds(1000));
  ASSERT_TRUE(ns.ok());
  EXPECT_EQ(ns.value().id(), kMsgIdNoSenders);
}

}  // namespace
}  // namespace mach
