// Tests for the §4.1 minimal filesystem: whole-file read/write through
// out-of-line memory, copy-on-write isolation of returned file data, the
// external-pager cache behaviour, and the mapped-file extension (§8.1).

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "src/managers/fs/fs_server.h"
#include "src/managers/mfs/mapped_file.h"
#include "src/managers/mfs/traditional_io.h"

namespace mach {
namespace {

constexpr VmSize kPage = 4096;

class FsTest : public ::testing::Test {
 protected:
  FsTest() {
    Kernel::Config config;
    config.frames = 256;
    config.page_size = kPage;
    config.disk_latency = DiskLatencyModel{0, 0};
    kernel_ = std::make_unique<Kernel>(config);
    fs_disk_ = std::make_unique<SimDisk>(2048, kPage, &kernel_->clock(),
                                         DiskLatencyModel{0, 0});
    server_ = std::make_unique<FsServer>(kernel_.get(), fs_disk_.get());
    server_->StartServer();
    client_task_ = kernel_->CreateTask(nullptr, "client");
    client_ = std::make_unique<FsClient>(client_task_.get(), server_->service_port());
  }
  ~FsTest() override {
    client_task_.reset();
    server_.reset();
  }

  // Writes a file through the API from a fresh buffer.
  void PutFile(const std::string& name, const std::vector<uint8_t>& content) {
    ASSERT_EQ(client_->Create(name), KernReturn::kSuccess);
    VmSize span = RoundPage(std::max<VmSize>(content.size(), 1), kPage);
    VmOffset buf = client_task_->VmAllocate(span).value();
    if (!content.empty()) {
      ASSERT_EQ(client_task_->Write(buf, content.data(), content.size()), KernReturn::kSuccess);
    }
    ASSERT_EQ(client_->WriteFile(name, buf, content.size()), KernReturn::kSuccess);
    client_task_->VmDeallocate(buf, span);
  }

  std::vector<uint8_t> Fetch(const std::string& name) {
    Result<FsClient::ReadResult> r = client_->ReadFile(name);
    EXPECT_TRUE(r.ok()) << KernReturnName(r.status());
    if (!r.ok()) {
      return {};
    }
    std::vector<uint8_t> out(r.value().size);
    EXPECT_EQ(client_task_->Read(r.value().address, out.data(), out.size()),
              KernReturn::kSuccess);
    client_task_->VmDeallocate(r.value().address, RoundPage(std::max<VmSize>(r.value().size, 1),
                                                            kPage));
    return out;
  }

  std::unique_ptr<Kernel> kernel_;
  std::unique_ptr<SimDisk> fs_disk_;
  std::unique_ptr<FsServer> server_;
  std::shared_ptr<Task> client_task_;
  std::unique_ptr<FsClient> client_;
};

TEST_F(FsTest, CreateStatDelete) {
  EXPECT_EQ(client_->Create("a"), KernReturn::kSuccess);
  EXPECT_EQ(client_->Create("a"), KernReturn::kAlreadyExists);
  EXPECT_EQ(client_->Stat("a").value(), 0u);
  EXPECT_EQ(client_->Stat("missing").status(), KernReturn::kNotFound);
  EXPECT_EQ(client_->Delete("a"), KernReturn::kSuccess);
  EXPECT_EQ(client_->Delete("a"), KernReturn::kNotFound);
}

TEST_F(FsTest, WriteThenReadRoundTrip) {
  std::vector<uint8_t> content(3 * kPage + 123);
  std::iota(content.begin(), content.end(), 0);
  PutFile("data", content);
  EXPECT_EQ(client_->Stat("data").value(), content.size());
  EXPECT_EQ(Fetch("data"), content);
}

TEST_F(FsTest, ReadMissingFileFails) {
  EXPECT_EQ(client_->ReadFile("nope").status(), KernReturn::kNotFound);
}

TEST_F(FsTest, ReadReturnsCopyOnWriteMemory) {
  // "other applications will consistently see the original file contents
  // while the random changes are being made" (§4.1).
  std::vector<uint8_t> content(kPage, 0x42);
  PutFile("cow", content);
  Result<FsClient::ReadResult> r1 = client_->ReadFile("cow");
  ASSERT_TRUE(r1.ok());
  // Mutate the first copy in place.
  uint8_t junk = 0xFF;
  ASSERT_EQ(client_task_->Write(r1.value().address, &junk, 1), KernReturn::kSuccess);
  // A second read still sees the original bytes.
  std::vector<uint8_t> again = Fetch("cow");
  ASSERT_EQ(again.size(), content.size());
  EXPECT_EQ(again[0], 0x42);
}

TEST_F(FsTest, WriteBackHalfTheFile) {
  // The §4.1 example writes back only file_size/2 bytes.
  std::vector<uint8_t> content(2 * kPage, 0x11);
  PutFile("half", content);
  Result<FsClient::ReadResult> r = client_->ReadFile("half");
  ASSERT_TRUE(r.ok());
  std::vector<uint8_t> patch(kPage, 0x99);
  ASSERT_EQ(client_task_->Write(r.value().address, patch.data(), patch.size()),
            KernReturn::kSuccess);
  ASSERT_EQ(client_->WriteFile("half", r.value().address, kPage), KernReturn::kSuccess);
  std::vector<uint8_t> after = Fetch("half");
  ASSERT_EQ(after.size(), 2 * kPage);
  EXPECT_EQ(after[0], 0x99);
  EXPECT_EQ(after[kPage], 0x11);  // Second half untouched.
}

TEST_F(FsTest, RereadIsServedFromCache) {
  // §9: repeated references to the same data need no disk transfers.
  std::vector<uint8_t> content(4 * kPage, 0x33);
  PutFile("hot", content);
  Fetch("hot");  // Prime the cache.
  uint64_t disk_ops_before = fs_disk_->total_ops();
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(Fetch("hot").size(), content.size());
  }
  EXPECT_EQ(fs_disk_->total_ops(), disk_ops_before);  // Pure cache hits.
}

TEST_F(FsTest, WriteInvalidatesCachedData) {
  std::vector<uint8_t> v1(kPage, 0x01);
  PutFile("inval", v1);
  EXPECT_EQ(Fetch("inval")[0], 0x01);
  std::vector<uint8_t> v2(kPage, 0x02);
  VmOffset buf = client_task_->VmAllocate(kPage).value();
  ASSERT_EQ(client_task_->Write(buf, v2.data(), v2.size()), KernReturn::kSuccess);
  ASSERT_EQ(client_->WriteFile("inval", buf, v2.size()), KernReturn::kSuccess);
  // The flush raced nothing: the server invalidated before replying? The
  // flush is asynchronous; poll briefly for the new contents.
  std::vector<uint8_t> seen;
  for (int i = 0; i < 100; ++i) {
    seen = Fetch("inval");
    if (!seen.empty() && seen[0] == 0x02) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(seen[0], 0x02);
}

TEST_F(FsTest, ManyFilesSurviveCachePressure) {
  // More file data than physical memory: the kernel cache evicts (dirty
  // pages return via pager_data_write) and re-fetches from the server.
  constexpr int kFiles = 8;
  constexpr VmSize kFilePages = 48;
  for (int f = 0; f < kFiles; ++f) {
    std::vector<uint8_t> content(kFilePages * kPage, static_cast<uint8_t>(0x10 + f));
    PutFile("bulk" + std::to_string(f), content);
  }
  for (int f = 0; f < kFiles; ++f) {
    std::vector<uint8_t> out = Fetch("bulk" + std::to_string(f));
    ASSERT_EQ(out.size(), kFilePages * kPage);
    EXPECT_EQ(out[0], 0x10 + f);
    EXPECT_EQ(out[out.size() - 1], 0x10 + f);
  }
}

TEST_F(FsTest, EmptyFileReads) {
  PutFile("empty", {});
  EXPECT_EQ(client_->Stat("empty").value(), 0u);
  EXPECT_TRUE(Fetch("empty").empty());
}

// --- mapped files (§8.1) -----------------------------------------------------

TEST_F(FsTest, MappedFileReadSeesFileContents) {
  std::vector<uint8_t> content(2 * kPage);
  std::iota(content.begin(), content.end(), 1);
  PutFile("mf", content);
  Result<MappedFile> open = MappedFile::Open(client_task_.get(), server_->service_port(), "mf");
  ASSERT_TRUE(open.ok());
  MappedFile file = std::move(open).value();
  EXPECT_EQ(file.size(), content.size());
  std::vector<uint8_t> out(content.size());
  Result<VmSize> n = file.Read(out.data(), out.size());
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), content.size());
  EXPECT_EQ(out, content);
  EXPECT_EQ(file.Close(), KernReturn::kSuccess);
}

TEST_F(FsTest, MappedFileCursorSemantics) {
  std::vector<uint8_t> content(100);
  std::iota(content.begin(), content.end(), 0);
  PutFile("cursor", content);
  MappedFile file =
      MappedFile::Open(client_task_.get(), server_->service_port(), "cursor").value();
  uint8_t b = 0;
  ASSERT_EQ(file.Read(&b, 1).value(), 1u);
  EXPECT_EQ(b, 0);
  ASSERT_EQ(file.Read(&b, 1).value(), 1u);
  EXPECT_EQ(b, 1);
  file.Seek(50);
  ASSERT_EQ(file.Read(&b, 1).value(), 1u);
  EXPECT_EQ(b, 50);
  // Read past EOF truncates.
  file.Seek(90);
  std::vector<uint8_t> tail(100);
  EXPECT_EQ(file.Read(tail.data(), tail.size()).value(), 10u);
  file.Close();
}

TEST_F(FsTest, MappedFileWritePersists) {
  std::vector<uint8_t> content(kPage, 0x00);
  PutFile("mw", content);
  {
    MappedFile file =
        MappedFile::Open(client_task_.get(), server_->service_port(), "mw").value();
    std::vector<uint8_t> data(64, 0xAB);
    ASSERT_EQ(file.WriteAt(100, data.data(), data.size()), KernReturn::kSuccess);
    ASSERT_EQ(file.Close(), KernReturn::kSuccess);
  }
  std::vector<uint8_t> out = Fetch("mw");
  ASSERT_EQ(out.size(), kPage);
  EXPECT_EQ(out[100], 0xAB);
  EXPECT_EQ(out[99], 0x00);
}

TEST_F(FsTest, MappedFileGrowsWithCapacity) {
  PutFile("grow", std::vector<uint8_t>(10, 0x01));
  {
    MappedFile file = MappedFile::Open(client_task_.get(), server_->service_port(), "grow",
                                       /*capacity=*/4 * kPage)
                          .value();
    std::vector<uint8_t> data(kPage, 0x77);
    ASSERT_EQ(file.WriteAt(2 * kPage, data.data(), data.size()), KernReturn::kSuccess);
    EXPECT_EQ(file.size(), 3 * kPage);
    file.Close();
  }
  EXPECT_EQ(client_->Stat("grow").value(), 3 * kPage);
  std::vector<uint8_t> out = Fetch("grow");
  EXPECT_EQ(out[2 * kPage], 0x77);
  EXPECT_EQ(out[0], 0x01);
}

TEST_F(FsTest, TwoMappedReadersShareTheCache) {
  std::vector<uint8_t> content(8 * kPage, 0x5C);
  PutFile("shared", content);
  // First reader faults the pages in.
  MappedFile a = MappedFile::Open(client_task_.get(), server_->service_port(), "shared").value();
  std::vector<uint8_t> buf(content.size());
  ASSERT_TRUE(a.Read(buf.data(), buf.size()).ok());
  uint64_t disk_before = fs_disk_->total_ops();
  // Second reader (another task): no disk traffic, same physical cache.
  std::shared_ptr<Task> other = kernel_->CreateTask();
  MappedFile b = MappedFile::Open(other.get(), server_->service_port(), "shared").value();
  std::vector<uint8_t> buf2(content.size());
  ASSERT_TRUE(b.Read(buf2.data(), buf2.size()).ok());
  EXPECT_EQ(buf2, content);
  EXPECT_EQ(fs_disk_->total_ops(), disk_before);
  a.Close();
  b.Close();
}

// --- traditional baseline ------------------------------------------------------

TEST(TraditionalIoTest, RoundTrip) {
  SimClock clock;
  SimDisk disk(512, kPage, &clock, DiskLatencyModel{0, 0});
  TraditionalFileSystem fs(&disk, 16);
  ASSERT_EQ(fs.Create("f"), KernReturn::kSuccess);
  std::vector<uint8_t> data(kPage + 77, 0x3C);
  ASSERT_EQ(fs.Write("f", 0, data.data(), data.size()), KernReturn::kSuccess);
  std::vector<uint8_t> out(data.size());
  ASSERT_EQ(fs.Read("f", 0, out.data(), out.size()).value(), data.size());
  EXPECT_EQ(out, data);
  EXPECT_EQ(fs.Stat("f").value(), data.size());
}

TEST(TraditionalIoTest, CacheHitsAndMisses) {
  SimClock clock;
  SimDisk disk(512, kPage, &clock, DiskLatencyModel{0, 0});
  TraditionalFileSystem fs(&disk, 4);
  fs.Create("f");
  std::vector<uint8_t> data(8 * kPage, 1);
  fs.Write("f", 0, data.data(), data.size());
  // Working set (8 blocks) exceeds the cache (4): re-reads miss.
  std::vector<uint8_t> out(8 * kPage);
  fs.Read("f", 0, out.data(), out.size());
  uint64_t misses_first = fs.cache_misses();
  fs.Read("f", 0, out.data(), out.size());
  EXPECT_GT(fs.cache_misses(), misses_first);  // Thrashing, as expected.
}

TEST(TraditionalIoTest, SmallWorkingSetStaysCached) {
  SimClock clock;
  SimDisk disk(512, kPage, &clock, DiskLatencyModel{0, 0});
  TraditionalFileSystem fs(&disk, 16);
  fs.Create("f");
  std::vector<uint8_t> data(4 * kPage, 1);
  fs.Write("f", 0, data.data(), data.size());
  std::vector<uint8_t> out(4 * kPage);
  fs.Read("f", 0, out.data(), out.size());
  uint64_t ops_before = disk.total_ops();
  for (int i = 0; i < 10; ++i) {
    fs.Read("f", 0, out.data(), out.size());
  }
  EXPECT_EQ(disk.total_ops(), ops_before);
}

TEST(TraditionalIoTest, HolesReadAsZero) {
  SimClock clock;
  SimDisk disk(512, kPage, &clock, DiskLatencyModel{0, 0});
  TraditionalFileSystem fs(&disk, 8);
  fs.Create("f");
  uint8_t one = 1;
  fs.Write("f", 3 * kPage, &one, 1);
  uint8_t out = 0xFF;
  ASSERT_EQ(fs.Read("f", kPage, &out, 1).value(), 1u);
  EXPECT_EQ(out, 0);
}

}  // namespace
}  // namespace mach
