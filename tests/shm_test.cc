// Tests for the consistent network shared memory server (§4.2): the
// single-writer/multiple-readers protocol over the external memory
// management interface, across multiple kernels ("hosts"), directly and
// through latency-modelled NetLink proxies (§7).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <random>
#include <set>
#include <thread>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/kernel/task.h"
#include "src/managers/shm/shm_broker.h"
#include "src/managers/shm/shm_server.h"
#include "src/net/net_link.h"

namespace mach {
namespace {

constexpr VmSize kPage = 4096;

std::unique_ptr<Kernel> MakeHost(const std::string& name) {
  Kernel::Config config;
  config.name = name;
  config.frames = 128;
  config.page_size = kPage;
  config.disk_latency = DiskLatencyModel{0, 0};
  config.vm.pager_timeout = std::chrono::milliseconds(5000);
  return std::make_unique<Kernel>(config);
}

// Polls until `task` observes `expect` at `addr` (coherence actions are
// asynchronous messages).
bool EventuallySees(Task& task, VmOffset addr, uint32_t expect,
                    std::chrono::milliseconds budget = std::chrono::milliseconds(5000)) {
  auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    uint32_t v = 0;
    if (IsOk(task.Read(addr, &v, sizeof(v))) && v == expect) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return false;
}

class ShmTest : public ::testing::Test {
 protected:
  ShmTest() {
    host_a_ = MakeHost("host-a");
    host_b_ = MakeHost("host-b");
    server_ = std::make_unique<SharedMemoryServer>(kPage);
    server_->Start();
    task_a_ = host_a_->CreateTask(nullptr, "client-a");
    task_b_ = host_b_->CreateTask(nullptr, "client-b");
  }
  ~ShmTest() override {
    task_a_.reset();
    task_b_.reset();
    server_->Stop();
  }

  std::unique_ptr<Kernel> host_a_;
  std::unique_ptr<Kernel> host_b_;
  std::unique_ptr<SharedMemoryServer> server_;
  std::shared_ptr<Task> task_a_;
  std::shared_ptr<Task> task_b_;
};

TEST_F(ShmTest, SameObjectReturnedForSameName) {
  SendRight x1 = server_->GetRegion("r", 4 * kPage);
  SendRight x2 = server_->GetRegion("r", 4 * kPage);
  EXPECT_EQ(x1.id(), x2.id());
  EXPECT_NE(server_->GetRegion("other", kPage).id(), x1.id());
}

TEST_F(ShmTest, InitialContentsAreZero) {
  SendRight region = server_->GetRegion("zeros", 2 * kPage);
  VmOffset addr = task_a_->VmAllocateWithPager(2 * kPage, region, 0).value();
  uint64_t v = 0xFF;
  ASSERT_EQ(task_a_->Read(addr, &v, sizeof(v)), KernReturn::kSuccess);
  EXPECT_EQ(v, 0u);
  EXPECT_GE(server_->read_grants(), 1u);
}

TEST_F(ShmTest, WriteVisibleAcrossHosts) {
  SendRight region = server_->GetRegion("xhost", kPage);
  VmOffset a = task_a_->VmAllocateWithPager(kPage, region, 0).value();
  VmOffset b = task_b_->VmAllocateWithPager(kPage, region, 0).value();
  uint32_t v = 0x1234;
  ASSERT_EQ(task_a_->Write(a, &v, sizeof(v)), KernReturn::kSuccess);
  EXPECT_TRUE(EventuallySees(*task_b_, b, 0x1234));
}

TEST_F(ShmTest, PingPongWrites) {
  // Ownership of the page migrates back and forth (§4.2's final frame,
  // repeatedly).
  SendRight region = server_->GetRegion("pingpong", kPage);
  VmOffset a = task_a_->VmAllocateWithPager(kPage, region, 0).value();
  VmOffset b = task_b_->VmAllocateWithPager(kPage, region, 0).value();
  for (uint32_t round = 1; round <= 10; ++round) {
    uint32_t va = round * 2;
    ASSERT_EQ(task_a_->Write(a, &va, sizeof(va)), KernReturn::kSuccess);
    ASSERT_TRUE(EventuallySees(*task_b_, b, va)) << "round " << round;
    uint32_t vb = round * 2 + 1;
    ASSERT_EQ(task_b_->Write(b, &vb, sizeof(vb)), KernReturn::kSuccess);
    ASSERT_TRUE(EventuallySees(*task_a_, a, vb)) << "round " << round;
  }
  EXPECT_GT(server_->invalidations() + server_->recalls(), 0u);
}

TEST_F(ShmTest, ConcurrentReadersNoInvalidation) {
  // Multiple readers of a stable page coexist without coherence traffic.
  SendRight region = server_->GetRegion("readers", kPage);
  VmOffset a = task_a_->VmAllocateWithPager(kPage, region, 0).value();
  VmOffset b = task_b_->VmAllocateWithPager(kPage, region, 0).value();
  uint32_t seed = 77;
  ASSERT_EQ(task_a_->Write(a, &seed, sizeof(seed)), KernReturn::kSuccess);
  ASSERT_TRUE(EventuallySees(*task_b_, b, 77));
  // Settle, then read from both sides repeatedly.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  uint64_t inval_before = server_->invalidations();
  for (int i = 0; i < 20; ++i) {
    uint32_t va = 0, vb = 0;
    ASSERT_EQ(task_a_->Read(a, &va, sizeof(va)), KernReturn::kSuccess);
    ASSERT_EQ(task_b_->Read(b, &vb, sizeof(vb)), KernReturn::kSuccess);
    EXPECT_EQ(va, 77u);
    EXPECT_EQ(vb, 77u);
  }
  EXPECT_EQ(server_->invalidations(), inval_before);
}

TEST_F(ShmTest, DistinctPagesHaveIndependentOwnership) {
  // Writers on different pages do not interfere (no false sharing at page
  // granularity).
  SendRight region = server_->GetRegion("pages", 2 * kPage);
  VmOffset a = task_a_->VmAllocateWithPager(2 * kPage, region, 0).value();
  VmOffset b = task_b_->VmAllocateWithPager(2 * kPage, region, 0).value();
  uint32_t va = 100, vb = 200;
  ASSERT_EQ(task_a_->Write(a, &va, sizeof(va)), KernReturn::kSuccess);
  ASSERT_EQ(task_b_->Write(b + kPage, &vb, sizeof(vb)), KernReturn::kSuccess);
  EXPECT_TRUE(EventuallySees(*task_b_, b, 100));
  EXPECT_TRUE(EventuallySees(*task_a_, a + kPage, 200));
}

TEST_F(ShmTest, ThreeHosts) {
  auto host_c = MakeHost("host-c");
  std::shared_ptr<Task> task_c = host_c->CreateTask(nullptr, "client-c");
  SendRight region = server_->GetRegion("trio", kPage);
  VmOffset a = task_a_->VmAllocateWithPager(kPage, region, 0).value();
  VmOffset b = task_b_->VmAllocateWithPager(kPage, region, 0).value();
  VmOffset c = task_c->VmAllocateWithPager(kPage, region, 0).value();
  uint32_t v = 555;
  ASSERT_EQ(task_c->Write(c, &v, sizeof(v)), KernReturn::kSuccess);
  EXPECT_TRUE(EventuallySees(*task_a_, a, 555));
  EXPECT_TRUE(EventuallySees(*task_b_, b, 555));
  uint32_t v2 = 777;
  ASSERT_EQ(task_a_->Write(a, &v2, sizeof(v2)), KernReturn::kSuccess);
  EXPECT_TRUE(EventuallySees(*task_c, c, 777));
  task_c.reset();
}

TEST_F(ShmTest, SequentialConsistencyUnderContention) {
  // Property: a monotonically increasing counter written under ping-pong
  // ownership never goes backwards from either host's view.
  SendRight region = server_->GetRegion("mono", kPage);
  VmOffset a = task_a_->VmAllocateWithPager(kPage, region, 0).value();
  VmOffset b = task_b_->VmAllocateWithPager(kPage, region, 0).value();
  uint32_t zero = 0;
  ASSERT_EQ(task_a_->Write(a, &zero, sizeof(zero)), KernReturn::kSuccess);

  std::atomic<bool> stop{false};
  std::atomic<uint32_t> last_b{0};
  std::atomic<bool> regression{false};
  std::thread reader([&] {
    while (!stop.load()) {
      uint32_t v = 0;
      if (IsOk(task_b_->Read(b, &v, sizeof(v)))) {
        uint32_t prev = last_b.load();
        if (v < prev) {
          regression.store(true);
        }
        last_b.store(std::max(prev, v));
      }
    }
  });
  for (uint32_t i = 1; i <= 50; ++i) {
    ASSERT_EQ(task_a_->Write(a, &i, sizeof(i)), KernReturn::kSuccess);
  }
  EXPECT_TRUE(EventuallySees(*task_b_, b, 50));
  stop.store(true);
  reader.join();
  EXPECT_FALSE(regression.load()) << "shared counter went backwards on host B";
}

class ShmOverNetTest : public ShmTest {};

TEST_F(ShmOverNetTest, CoherenceThroughNormaLink) {
  // The server lives on host A; host B reaches the memory object through a
  // NORMA-latency proxy. All pager traffic for B crosses the link.
  SimClock net_clock;
  NetLink link(&host_a_->vm(), &host_b_->vm(), &net_clock, kNormaLatency);
  SendRight region = server_->GetRegion("remote", kPage);
  VmOffset a = task_a_->VmAllocateWithPager(kPage, region, 0).value();
  SendRight remote_region = link.ProxyForB(region);
  VmOffset b = task_b_->VmAllocateWithPager(kPage, remote_region, 0).value();

  uint32_t v = 42;
  ASSERT_EQ(task_a_->Write(a, &v, sizeof(v)), KernReturn::kSuccess);
  EXPECT_TRUE(EventuallySees(*task_b_, b, 42));
  uint64_t msgs_after_read = link.messages_forwarded();
  EXPECT_GT(msgs_after_read, 0u);
  EXPECT_GT(net_clock.NowNs(), 0u);

  // Remote write: unlock/invalidate traffic also crosses the link.
  uint32_t v2 = 43;
  ASSERT_EQ(task_b_->Write(b, &v2, sizeof(v2)), KernReturn::kSuccess);
  EXPECT_TRUE(EventuallySees(*task_a_, a, 43));
  EXPECT_GT(link.messages_forwarded(), msgs_after_read);
}

TEST_F(ShmOverNetTest, LocalityKeepsTrafficLow) {
  // Li's observation (§7): processors that seldom write the same data can
  // use network shared memory efficiently — repeated local reads after the
  // first fetch generate no link traffic.
  SimClock net_clock;
  NetLink link(&host_a_->vm(), &host_b_->vm(), &net_clock, kNormaLatency);
  SendRight region = server_->GetRegion("locality", kPage);
  SendRight remote_region = link.ProxyForB(region);
  VmOffset b = task_b_->VmAllocateWithPager(kPage, remote_region, 0).value();
  uint32_t v = 0;
  ASSERT_EQ(task_b_->Read(b, &v, sizeof(v)), KernReturn::kSuccess);
  uint64_t msgs_before = link.messages_forwarded();
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(task_b_->Read(b, &v, sizeof(v)), KernReturn::kSuccess);
  }
  EXPECT_EQ(link.messages_forwarded(), msgs_before);  // All cache hits.
}

// --- the sharded manager: broker front end + directory shards ---------------

class ShmShardedTest : public ::testing::Test {
 protected:
  static constexpr size_t kShards = 4;

  ShmShardedTest() {
    host_a_ = MakeHost("shard-host-a");
    host_b_ = MakeHost("shard-host-b");
    broker_ = std::make_unique<ShmBroker>("shmb", kShards, ShmOptions{});
    broker_->Start();
    task_a_ = host_a_->CreateTask(nullptr, "client-a");
    task_b_ = host_b_->CreateTask(nullptr, "client-b");
  }
  ~ShmShardedTest() override {
    task_a_.reset();
    task_b_.reset();
    broker_->Stop();
  }

  std::unique_ptr<Kernel> host_a_;
  std::unique_ptr<Kernel> host_b_;
  std::unique_ptr<ShmBroker> broker_;
  std::shared_ptr<Task> task_a_;
  std::shared_ptr<Task> task_b_;
};

TEST_F(ShmShardedTest, GetRegionIsStableAndPartitionsThePageSpace) {
  ShmRegionInfoArgs info = broker_->GetRegion("grid", 16 * kPage);
  ShmRegionInfoArgs again = broker_->GetRegion("grid", 16 * kPage);
  EXPECT_EQ(info.region_id, again.region_id);
  ASSERT_EQ(info.shard_objects.size(), kShards);
  for (size_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(info.shard_objects[s].id(), again.shard_objects[s].id());
  }
  // The avalanche hash spreads the page space: no shard inherits a hot
  // contiguous run, and several shards serve every realistic region.
  std::set<size_t> used;
  for (uint64_t p = 0; p < 16; ++p) {
    used.insert(ShmBroker::ShardOfPage(info.region_id, p, kShards));
  }
  EXPECT_GE(used.size(), 3u);
}

TEST_F(ShmShardedTest, WritesVisibleAcrossHostsOnBrokerMappedRegion) {
  ShmRegionInfoArgs info = broker_->GetRegion("grid", 8 * kPage);
  VmOffset a = ShmBroker::MapRegion(*task_a_, info).value();
  VmOffset b = ShmBroker::MapRegion(*task_b_, info).value();
  for (uint32_t p = 0; p < 8; ++p) {
    uint32_t v = 0xA000 + p;
    ASSERT_EQ(task_a_->Write(a + p * kPage, &v, sizeof(v)), KernReturn::kSuccess);
  }
  for (uint32_t p = 0; p < 8; ++p) {
    EXPECT_TRUE(EventuallySees(*task_b_, b + p * kPage, 0xA000 + p)) << "page " << p;
  }
  // Reverse direction: ownership of every page migrates to B.
  for (uint32_t p = 0; p < 8; ++p) {
    uint32_t v = 0xB000 + p;
    ASSERT_EQ(task_b_->Write(b + p * kPage, &v, sizeof(v)), KernReturn::kSuccess);
  }
  for (uint32_t p = 0; p < 8; ++p) {
    EXPECT_TRUE(EventuallySees(*task_a_, a + p * kPage, 0xB000 + p)) << "page " << p;
  }
  // The coherence load really spread across shards.
  size_t active = 0;
  for (size_t s = 0; s < kShards; ++s) {
    ShmCounters c = broker_->shard(s).directory().counters();
    active += (c.read_grants + c.write_grants) > 0 ? 1 : 0;
  }
  EXPECT_GE(active, 2u);
}

TEST_F(ShmShardedTest, PingPongMigratesOwnershipThroughTheHintChain) {
  ShmRegionInfoArgs info = broker_->GetRegion("pingpong", kPage);
  VmOffset a = ShmBroker::MapRegion(*task_a_, info).value();
  VmOffset b = ShmBroker::MapRegion(*task_b_, info).value();
  for (uint32_t round = 1; round <= 10; ++round) {
    uint32_t va = round * 2;
    ASSERT_EQ(task_a_->Write(a, &va, sizeof(va)), KernReturn::kSuccess);
    ASSERT_TRUE(EventuallySees(*task_b_, b, va)) << "round " << round;
    uint32_t vb = round * 2 + 1;
    ASSERT_EQ(task_b_->Write(b, &vb, sizeof(vb)), KernReturn::kSuccess);
    ASSERT_TRUE(EventuallySees(*task_a_, a, vb)) << "round " << round;
  }
  ShmCounters c = broker_->aggregate_counters();
  EXPECT_GT(c.forwards, 0u);
  EXPECT_GT(c.ownership_transfers, 0u);
  // The directory's owner hint pointed at the host that actually answered
  // with data — every transfer kept it repaired.
  EXPECT_GT(c.hint_hits, 0u);
  // The lock-completed ack path resolves every recall in a healthy run;
  // the virtual-time deadline is strictly a dead-host backstop.
  EXPECT_EQ(c.recall_timeouts, 0u);
}

TEST_F(ShmShardedTest, RemoteHostResolvesRegionThroughProxiedBroker) {
  // The broker and its shards live on host A; host B resolves the region
  // with an shm_get_region RPC through a NORMA proxy of the service port.
  // The reply's shard rights cross the link, so B's coherence traffic does
  // too — per shard, on distinct proxied objects.
  SimClock net_clock;
  NetLink link(&host_a_->vm(), &host_b_->vm(), &net_clock, kNormaLatency);
  ShmRegionInfoArgs local = broker_->GetRegion("wan", 4 * kPage);
  VmOffset a = ShmBroker::MapRegion(*task_a_, local).value();
  SendRight remote_service = link.ProxyForB(broker_->service_port());
  Result<ShmRegionInfoArgs> remote = ShmBroker::GetRegionVia(remote_service, "wan", 4 * kPage);
  ASSERT_TRUE(remote.ok()) << KernReturnName(remote.status());
  EXPECT_EQ(remote.value().region_id, local.region_id);
  ASSERT_EQ(remote.value().shard_objects.size(), kShards);
  for (size_t s = 0; s < kShards; ++s) {
    EXPECT_NE(remote.value().shard_objects[s].id(), local.shard_objects[s].id())
        << "shard " << s << " right did not come back as a link proxy";
  }
  VmOffset b = ShmBroker::MapRegion(*task_b_, remote.value()).value();
  uint32_t v = 4242;
  ASSERT_EQ(task_a_->Write(a, &v, sizeof(v)), KernReturn::kSuccess);
  EXPECT_TRUE(EventuallySees(*task_b_, b, 4242));
  uint32_t v2 = 4343;
  ASSERT_EQ(task_b_->Write(b + kPage, &v2, sizeof(v2)), KernReturn::kSuccess);
  EXPECT_TRUE(EventuallySees(*task_a_, a + kPage, 4343));
  EXPECT_GT(link.messages_forwarded(), 0u);
}

TEST_F(ShmShardedTest, DeadShardFailsItsPagesButLeavesOtherShardsServing) {
  // Shards fail independently: killing one shard's object resolves faults
  // on its pages quickly (death fast path, no 5 s pager-timeout burn) while
  // every other shard keeps serving.
  ShmRegionInfoArgs info = broker_->GetRegion("blast", 8 * kPage);
  VmOffset b = ShmBroker::MapRegion(*task_b_, info).value();
  const size_t victim_shard = ShmBroker::ShardOfPage(info.region_id, 0, kShards);
  uint64_t other_page = 0;
  for (uint64_t p = 1; p < 8; ++p) {
    if (ShmBroker::ShardOfPage(info.region_id, p, kShards) != victim_shard) {
      other_page = p;
      break;
    }
  }
  ASSERT_NE(other_page, 0u) << "every page hashed to one shard; grow the region";
  broker_->shard(victim_shard).DestroyMemoryObject(info.shard_objects[victim_shard]);
  auto start = std::chrono::steady_clock::now();
  uint32_t out = 0;
  EXPECT_NE(task_b_->Read(b, &out, sizeof(out)), KernReturn::kSuccess);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_LT(elapsed.count(), 2000) << "dead-shard fault burned the pager timeout";
  EXPECT_EQ(task_b_->Read(b + other_page * kPage, &out, sizeof(out)), KernReturn::kSuccess);
  EXPECT_EQ(out, 0u);
}

}  // namespace
}  // namespace mach
