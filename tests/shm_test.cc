// Tests for the consistent network shared memory server (§4.2): the
// single-writer/multiple-readers protocol over the external memory
// management interface, across multiple kernels ("hosts"), directly and
// through latency-modelled NetLink proxies (§7).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/kernel/task.h"
#include "src/managers/shm/shm_server.h"
#include "src/net/net_link.h"

namespace mach {
namespace {

constexpr VmSize kPage = 4096;

std::unique_ptr<Kernel> MakeHost(const std::string& name) {
  Kernel::Config config;
  config.name = name;
  config.frames = 128;
  config.page_size = kPage;
  config.disk_latency = DiskLatencyModel{0, 0};
  config.vm.pager_timeout = std::chrono::milliseconds(5000);
  return std::make_unique<Kernel>(config);
}

class ShmTest : public ::testing::Test {
 protected:
  ShmTest() {
    host_a_ = MakeHost("host-a");
    host_b_ = MakeHost("host-b");
    server_ = std::make_unique<SharedMemoryServer>(kPage);
    server_->Start();
    task_a_ = host_a_->CreateTask(nullptr, "client-a");
    task_b_ = host_b_->CreateTask(nullptr, "client-b");
  }
  ~ShmTest() override {
    task_a_.reset();
    task_b_.reset();
    server_->Stop();
  }

  // Polls until `task` observes `expect` at `addr` (coherence actions are
  // asynchronous messages).
  bool EventuallySees(Task& task, VmOffset addr, uint32_t expect,
                      std::chrono::milliseconds budget = std::chrono::milliseconds(5000)) {
    auto deadline = std::chrono::steady_clock::now() + budget;
    while (std::chrono::steady_clock::now() < deadline) {
      uint32_t v = 0;
      if (IsOk(task.Read(addr, &v, sizeof(v))) && v == expect) {
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return false;
  }

  std::unique_ptr<Kernel> host_a_;
  std::unique_ptr<Kernel> host_b_;
  std::unique_ptr<SharedMemoryServer> server_;
  std::shared_ptr<Task> task_a_;
  std::shared_ptr<Task> task_b_;
};

TEST_F(ShmTest, SameObjectReturnedForSameName) {
  SendRight x1 = server_->GetRegion("r", 4 * kPage);
  SendRight x2 = server_->GetRegion("r", 4 * kPage);
  EXPECT_EQ(x1.id(), x2.id());
  EXPECT_NE(server_->GetRegion("other", kPage).id(), x1.id());
}

TEST_F(ShmTest, InitialContentsAreZero) {
  SendRight region = server_->GetRegion("zeros", 2 * kPage);
  VmOffset addr = task_a_->VmAllocateWithPager(2 * kPage, region, 0).value();
  uint64_t v = 0xFF;
  ASSERT_EQ(task_a_->Read(addr, &v, sizeof(v)), KernReturn::kSuccess);
  EXPECT_EQ(v, 0u);
  EXPECT_GE(server_->read_grants(), 1u);
}

TEST_F(ShmTest, WriteVisibleAcrossHosts) {
  SendRight region = server_->GetRegion("xhost", kPage);
  VmOffset a = task_a_->VmAllocateWithPager(kPage, region, 0).value();
  VmOffset b = task_b_->VmAllocateWithPager(kPage, region, 0).value();
  uint32_t v = 0x1234;
  ASSERT_EQ(task_a_->Write(a, &v, sizeof(v)), KernReturn::kSuccess);
  EXPECT_TRUE(EventuallySees(*task_b_, b, 0x1234));
}

TEST_F(ShmTest, PingPongWrites) {
  // Ownership of the page migrates back and forth (§4.2's final frame,
  // repeatedly).
  SendRight region = server_->GetRegion("pingpong", kPage);
  VmOffset a = task_a_->VmAllocateWithPager(kPage, region, 0).value();
  VmOffset b = task_b_->VmAllocateWithPager(kPage, region, 0).value();
  for (uint32_t round = 1; round <= 10; ++round) {
    uint32_t va = round * 2;
    ASSERT_EQ(task_a_->Write(a, &va, sizeof(va)), KernReturn::kSuccess);
    ASSERT_TRUE(EventuallySees(*task_b_, b, va)) << "round " << round;
    uint32_t vb = round * 2 + 1;
    ASSERT_EQ(task_b_->Write(b, &vb, sizeof(vb)), KernReturn::kSuccess);
    ASSERT_TRUE(EventuallySees(*task_a_, a, vb)) << "round " << round;
  }
  EXPECT_GT(server_->invalidations() + server_->recalls(), 0u);
}

TEST_F(ShmTest, ConcurrentReadersNoInvalidation) {
  // Multiple readers of a stable page coexist without coherence traffic.
  SendRight region = server_->GetRegion("readers", kPage);
  VmOffset a = task_a_->VmAllocateWithPager(kPage, region, 0).value();
  VmOffset b = task_b_->VmAllocateWithPager(kPage, region, 0).value();
  uint32_t seed = 77;
  ASSERT_EQ(task_a_->Write(a, &seed, sizeof(seed)), KernReturn::kSuccess);
  ASSERT_TRUE(EventuallySees(*task_b_, b, 77));
  // Settle, then read from both sides repeatedly.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  uint64_t inval_before = server_->invalidations();
  for (int i = 0; i < 20; ++i) {
    uint32_t va = 0, vb = 0;
    ASSERT_EQ(task_a_->Read(a, &va, sizeof(va)), KernReturn::kSuccess);
    ASSERT_EQ(task_b_->Read(b, &vb, sizeof(vb)), KernReturn::kSuccess);
    EXPECT_EQ(va, 77u);
    EXPECT_EQ(vb, 77u);
  }
  EXPECT_EQ(server_->invalidations(), inval_before);
}

TEST_F(ShmTest, DistinctPagesHaveIndependentOwnership) {
  // Writers on different pages do not interfere (no false sharing at page
  // granularity).
  SendRight region = server_->GetRegion("pages", 2 * kPage);
  VmOffset a = task_a_->VmAllocateWithPager(2 * kPage, region, 0).value();
  VmOffset b = task_b_->VmAllocateWithPager(2 * kPage, region, 0).value();
  uint32_t va = 100, vb = 200;
  ASSERT_EQ(task_a_->Write(a, &va, sizeof(va)), KernReturn::kSuccess);
  ASSERT_EQ(task_b_->Write(b + kPage, &vb, sizeof(vb)), KernReturn::kSuccess);
  EXPECT_TRUE(EventuallySees(*task_b_, b, 100));
  EXPECT_TRUE(EventuallySees(*task_a_, a + kPage, 200));
}

TEST_F(ShmTest, ThreeHosts) {
  auto host_c = MakeHost("host-c");
  std::shared_ptr<Task> task_c = host_c->CreateTask(nullptr, "client-c");
  SendRight region = server_->GetRegion("trio", kPage);
  VmOffset a = task_a_->VmAllocateWithPager(kPage, region, 0).value();
  VmOffset b = task_b_->VmAllocateWithPager(kPage, region, 0).value();
  VmOffset c = task_c->VmAllocateWithPager(kPage, region, 0).value();
  uint32_t v = 555;
  ASSERT_EQ(task_c->Write(c, &v, sizeof(v)), KernReturn::kSuccess);
  EXPECT_TRUE(EventuallySees(*task_a_, a, 555));
  EXPECT_TRUE(EventuallySees(*task_b_, b, 555));
  uint32_t v2 = 777;
  ASSERT_EQ(task_a_->Write(a, &v2, sizeof(v2)), KernReturn::kSuccess);
  EXPECT_TRUE(EventuallySees(*task_c, c, 777));
  task_c.reset();
}

TEST_F(ShmTest, SequentialConsistencyUnderContention) {
  // Property: a monotonically increasing counter written under ping-pong
  // ownership never goes backwards from either host's view.
  SendRight region = server_->GetRegion("mono", kPage);
  VmOffset a = task_a_->VmAllocateWithPager(kPage, region, 0).value();
  VmOffset b = task_b_->VmAllocateWithPager(kPage, region, 0).value();
  uint32_t zero = 0;
  ASSERT_EQ(task_a_->Write(a, &zero, sizeof(zero)), KernReturn::kSuccess);

  std::atomic<bool> stop{false};
  std::atomic<uint32_t> last_b{0};
  std::atomic<bool> regression{false};
  std::thread reader([&] {
    while (!stop.load()) {
      uint32_t v = 0;
      if (IsOk(task_b_->Read(b, &v, sizeof(v)))) {
        uint32_t prev = last_b.load();
        if (v < prev) {
          regression.store(true);
        }
        last_b.store(std::max(prev, v));
      }
    }
  });
  for (uint32_t i = 1; i <= 50; ++i) {
    ASSERT_EQ(task_a_->Write(a, &i, sizeof(i)), KernReturn::kSuccess);
  }
  EXPECT_TRUE(EventuallySees(*task_b_, b, 50));
  stop.store(true);
  reader.join();
  EXPECT_FALSE(regression.load()) << "shared counter went backwards on host B";
}

class ShmOverNetTest : public ShmTest {};

TEST_F(ShmOverNetTest, CoherenceThroughNormaLink) {
  // The server lives on host A; host B reaches the memory object through a
  // NORMA-latency proxy. All pager traffic for B crosses the link.
  SimClock net_clock;
  NetLink link(&host_a_->vm(), &host_b_->vm(), &net_clock, kNormaLatency);
  SendRight region = server_->GetRegion("remote", kPage);
  VmOffset a = task_a_->VmAllocateWithPager(kPage, region, 0).value();
  SendRight remote_region = link.ProxyForB(region);
  VmOffset b = task_b_->VmAllocateWithPager(kPage, remote_region, 0).value();

  uint32_t v = 42;
  ASSERT_EQ(task_a_->Write(a, &v, sizeof(v)), KernReturn::kSuccess);
  EXPECT_TRUE(EventuallySees(*task_b_, b, 42));
  uint64_t msgs_after_read = link.messages_forwarded();
  EXPECT_GT(msgs_after_read, 0u);
  EXPECT_GT(net_clock.NowNs(), 0u);

  // Remote write: unlock/invalidate traffic also crosses the link.
  uint32_t v2 = 43;
  ASSERT_EQ(task_b_->Write(b, &v2, sizeof(v2)), KernReturn::kSuccess);
  EXPECT_TRUE(EventuallySees(*task_a_, a, 43));
  EXPECT_GT(link.messages_forwarded(), msgs_after_read);
}

TEST_F(ShmOverNetTest, LocalityKeepsTrafficLow) {
  // Li's observation (§7): processors that seldom write the same data can
  // use network shared memory efficiently — repeated local reads after the
  // first fetch generate no link traffic.
  SimClock net_clock;
  NetLink link(&host_a_->vm(), &host_b_->vm(), &net_clock, kNormaLatency);
  SendRight region = server_->GetRegion("locality", kPage);
  SendRight remote_region = link.ProxyForB(region);
  VmOffset b = task_b_->VmAllocateWithPager(kPage, remote_region, 0).value();
  uint32_t v = 0;
  ASSERT_EQ(task_b_->Read(b, &v, sizeof(v)), KernReturn::kSuccess);
  uint64_t msgs_before = link.messages_forwarded();
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(task_b_->Read(b, &v, sizeof(v)), KernReturn::kSuccess);
  }
  EXPECT_EQ(link.messages_forwarded(), msgs_before);  // All cache hits.
}

}  // namespace
}  // namespace mach
