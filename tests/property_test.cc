// Parameterized property tests: systemwide invariants swept across boot
// parameters (the system page size is "a boot time parameter and can be any
// multiple of the hardware page size", §3.3), memory sizes, fork depths and
// random seeds.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <random>
#include <tuple>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/kernel/task.h"
#include "src/pager/data_manager.h"

namespace mach {
namespace {

// --- invariant: memory round-trips under any (page size, frame count) ---------

class BootParamTest : public ::testing::TestWithParam<std::tuple<VmSize, uint32_t>> {
 protected:
  BootParamTest() {
    Kernel::Config config;
    config.page_size = std::get<0>(GetParam());
    config.frames = std::get<1>(GetParam());
    config.disk_latency = DiskLatencyModel{0, 0};
    kernel_ = std::make_unique<Kernel>(config);
    task_ = kernel_->CreateTask();
  }
  ~BootParamTest() override { task_.reset(); }

  std::unique_ptr<Kernel> kernel_;
  std::shared_ptr<Task> task_;
};

TEST_P(BootParamTest, WriteReadAcrossPages) {
  const VmSize ps = kernel_->page_size();
  VmOffset addr = task_->VmAllocate(4 * ps).value();
  std::vector<uint8_t> data(2 * ps + 37);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 31 + 1);
  }
  // Deliberately unaligned start.
  ASSERT_EQ(task_->Write(addr + ps - 19, data.data(), data.size()), KernReturn::kSuccess);
  std::vector<uint8_t> out(data.size());
  ASSERT_EQ(task_->Read(addr + ps - 19, out.data(), out.size()), KernReturn::kSuccess);
  EXPECT_EQ(data, out);
}

TEST_P(BootParamTest, PagingPreservesDataBeyondPhysicalMemory) {
  const VmSize ps = kernel_->page_size();
  const uint32_t frames = std::get<1>(GetParam());
  const VmSize pages = frames * 2;  // 2x physical memory.
  VmOffset addr = task_->VmAllocate(pages * ps).value();
  for (VmOffset p = 0; p < pages; ++p) {
    uint64_t v = 0xBEA7000000000000ull + p;
    ASSERT_EQ(task_->WriteValue<uint64_t>(addr + p * ps, v), KernReturn::kSuccess);
  }
  for (VmOffset p = 0; p < pages; ++p) {
    ASSERT_EQ(task_->ReadValue<uint64_t>(addr + p * ps).value(), 0xBEA7000000000000ull + p)
        << "page " << p;
  }
}

TEST_P(BootParamTest, RegionsArePageAligned) {
  const VmSize ps = kernel_->page_size();
  task_->VmAllocate(3 * ps);
  task_->VmAllocate(ps);
  for (const RegionInfo& region : task_->VmRegions()) {
    EXPECT_EQ(region.start % ps, 0u);
    EXPECT_EQ(region.end % ps, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PageSizesAndFrames, BootParamTest,
    ::testing::Combine(::testing::Values(VmSize{4096}, VmSize{8192}, VmSize{16384}),
                       ::testing::Values(uint32_t{32}, uint32_t{96})),
    [](const ::testing::TestParamInfo<BootParamTest::ParamType>& info) {
      return "ps" + std::to_string(std::get<0>(info.param)) + "_f" +
             std::to_string(std::get<1>(info.param));
    });

// --- invariant: COW fork chains keep every generation independent ----------------

class ForkDepthTest : public ::testing::TestWithParam<int> {};

TEST_P(ForkDepthTest, EachGenerationSeesItsOwnWrites) {
  const int depth = GetParam();
  Kernel::Config config;
  config.frames = 160;
  config.page_size = 4096;
  config.disk_latency = DiskLatencyModel{0, 0};
  Kernel kernel(config);
  std::vector<std::shared_ptr<Task>> generations;
  generations.push_back(kernel.CreateTask(nullptr, "gen0"));
  VmOffset addr = generations[0]->VmAllocate(4 * 4096).value();
  ASSERT_EQ(generations[0]->WriteValue<uint64_t>(addr, 0), KernReturn::kSuccess);
  // Each generation forks from the previous and overwrites the value.
  for (int g = 1; g <= depth; ++g) {
    generations.push_back(kernel.CreateTask(generations.back(), "gen" + std::to_string(g)));
    ASSERT_EQ(generations.back()->WriteValue<uint64_t>(addr, g), KernReturn::kSuccess);
  }
  // Every generation still sees exactly its own value (shadow chains of
  // depth up to `depth` resolve correctly).
  for (int g = 0; g <= depth; ++g) {
    EXPECT_EQ(generations[g]->ReadValue<uint64_t>(addr).value(), static_cast<uint64_t>(g))
        << "generation " << g;
  }
  generations.clear();
}

TEST_P(ForkDepthTest, UntouchedPagesStaySharedThroughTheChain) {
  const int depth = GetParam();
  Kernel::Config config;
  config.frames = 160;
  config.page_size = 4096;
  config.disk_latency = DiskLatencyModel{0, 0};
  Kernel kernel(config);
  std::vector<std::shared_ptr<Task>> generations;
  generations.push_back(kernel.CreateTask(nullptr));
  VmOffset addr = generations[0]->VmAllocate(4096).value();
  ASSERT_EQ(generations[0]->WriteValue<uint64_t>(addr, 42), KernReturn::kSuccess);
  for (int g = 1; g <= depth; ++g) {
    generations.push_back(kernel.CreateTask(generations.back()));
  }
  uint64_t cow_before = kernel.vm().Statistics().cow_faults;
  // Reads all the way down the chain never copy.
  for (auto& task : generations) {
    EXPECT_EQ(task->ReadValue<uint64_t>(addr).value(), 42u);
  }
  EXPECT_EQ(kernel.vm().Statistics().cow_faults, cow_before);
  generations.clear();
}

INSTANTIATE_TEST_SUITE_P(Depths, ForkDepthTest, ::testing::Values(1, 3, 6, 10));

// --- invariant: random workloads match a flat reference model --------------------

class RandomWorkloadTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(RandomWorkloadTest, MatchesReferenceModelUnderPaging) {
  Kernel::Config config;
  config.frames = 48;
  config.page_size = 4096;
  config.disk_latency = DiskLatencyModel{0, 0};
  Kernel kernel(config);
  std::shared_ptr<Task> task = kernel.CreateTask();
  constexpr VmSize kBytes = 96 * 4096;  // 2x physical memory.
  VmOffset addr = task->VmAllocate(kBytes).value();
  std::vector<uint8_t> model(kBytes, 0);
  std::mt19937 rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    VmOffset off = rng() % (kBytes - 256);
    VmSize len = 1 + rng() % 256;
    if (rng() % 3 != 0) {
      std::vector<uint8_t> chunk(len);
      for (auto& b : chunk) {
        b = static_cast<uint8_t>(rng());
      }
      ASSERT_EQ(task->Write(addr + off, chunk.data(), len), KernReturn::kSuccess);
      std::memcpy(model.data() + off, chunk.data(), len);
    } else {
      std::vector<uint8_t> chunk(len);
      ASSERT_EQ(task->Read(addr + off, chunk.data(), len), KernReturn::kSuccess);
      ASSERT_EQ(std::memcmp(chunk.data(), model.data() + off, len), 0)
          << "iteration " << i << " offset " << off;
    }
  }
  task.reset();
}

TEST_P(RandomWorkloadTest, VmCopyMatchesReferenceModel) {
  Kernel::Config config;
  config.frames = 128;
  config.page_size = 4096;
  config.disk_latency = DiskLatencyModel{0, 0};
  Kernel kernel(config);
  std::shared_ptr<Task> task = kernel.CreateTask();
  constexpr VmSize kRegion = 8 * 4096;
  VmOffset a = task->VmAllocate(kRegion).value();
  VmOffset b = task->VmAllocate(kRegion).value();
  std::vector<uint8_t> model_a(kRegion, 0), model_b(kRegion, 0);
  std::mt19937 rng(GetParam());
  for (int i = 0; i < 40; ++i) {
    switch (rng() % 3) {
      case 0: {  // Write somewhere in a.
        VmOffset off = rng() % (kRegion - 8);
        uint64_t v = rng();
        ASSERT_EQ(task->WriteValue<uint64_t>(a + off, v), KernReturn::kSuccess);
        std::memcpy(model_a.data() + off, &v, sizeof(v));
        break;
      }
      case 1: {  // vm_copy a -> b.
        ASSERT_EQ(task->VmCopy(a, kRegion, b), KernReturn::kSuccess);
        model_b = model_a;
        break;
      }
      case 2: {  // Verify a random window of both regions.
        VmOffset off = rng() % (kRegion - 64);
        std::vector<uint8_t> out(64);
        ASSERT_EQ(task->Read(a + off, out.data(), out.size()), KernReturn::kSuccess);
        ASSERT_EQ(std::memcmp(out.data(), model_a.data() + off, out.size()), 0);
        ASSERT_EQ(task->Read(b + off, out.data(), out.size()), KernReturn::kSuccess);
        ASSERT_EQ(std::memcmp(out.data(), model_b.data() + off, out.size()), 0);
        break;
      }
    }
  }
  task.reset();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorkloadTest,
                         ::testing::Values(1u, 42u, 20260705u, 0xDEADBEEFu));

// --- invariant: pager-backed data survives arbitrary eviction patterns -----------

class PagerStoreTest : public ::testing::TestWithParam<uint32_t> {
 protected:
  // A store-backed manager: remembers writes, serves them back.
  class StorePager : public DataManager {
   public:
    explicit StorePager(VmSize page_size) : DataManager("store"), ps_(page_size) {}
    SendRight NewObject() { return CreateMemoryObject(1); }

   protected:
    void OnDataRequest(uint64_t id, uint64_t cookie, PagerDataRequestArgs args) override {
      std::lock_guard<std::mutex> g(mu_);
      for (VmOffset off = args.offset; off < args.offset + args.length; off += ps_) {
        auto it = store_.find(off);
        if (it == store_.end()) {
          DataUnavailable(args.pager_request_port, off, ps_);
        } else {
          ProvideData(args.pager_request_port, off, it->second, kVmProtNone);
        }
      }
    }
    void OnDataWrite(uint64_t id, uint64_t cookie, PagerDataWriteArgs args) override {
      std::lock_guard<std::mutex> g(mu_);
      for (VmOffset delta = 0; delta + ps_ <= args.data.size(); delta += ps_) {
        store_[args.offset + delta] = std::vector<std::byte>(
            args.data.begin() + delta, args.data.begin() + delta + ps_);
      }
    }

   private:
    VmSize ps_;
    std::mutex mu_;
    std::map<VmOffset, std::vector<std::byte>> store_;
  };
};

TEST_P(PagerStoreTest, RandomWritesSurviveEvictionChurn) {
  Kernel::Config config;
  config.frames = 40;
  config.page_size = 4096;
  config.disk_latency = DiskLatencyModel{0, 0};
  Kernel kernel(config);
  std::shared_ptr<Task> task = kernel.CreateTask();
  StorePager pager(4096);
  pager.Start();
  SendRight object = pager.NewObject();
  constexpr VmSize kPages = 64;
  VmOffset addr = task->VmAllocateWithPager(kPages * 4096, object, 0).value();
  std::vector<uint64_t> model(kPages, 0);
  std::mt19937 rng(GetParam());
  for (int i = 0; i < 400; ++i) {
    VmOffset page = rng() % kPages;
    if (rng() % 2 == 0) {
      uint64_t v = rng();
      ASSERT_EQ(task->WriteValue<uint64_t>(addr + page * 4096, v), KernReturn::kSuccess);
      model[page] = v;
    } else {
      ASSERT_EQ(task->ReadValue<uint64_t>(addr + page * 4096).value(), model[page])
          << "page " << page << " iteration " << i;
    }
  }
  task.reset();
  pager.Stop();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PagerStoreTest, ::testing::Values(7u, 777u, 77777u));

// --- invariant: shadow-chain collapse is invisible to task-level semantics -------
//
// A random fork/write/death workload over a COW-inherited region, checked
// against an eager-copy oracle: every live generation owns a flat
// std::vector<uint8_t> that is deep-copied at fork time, so any divergence
// means collapse migrated a page to the wrong place, freed one it shouldn't
// have, or left a chain pointing at stale data.

class CollapseWorkloadTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(CollapseWorkloadTest, ForkWriteDeathMatchesEagerCopyOracle) {
  Kernel::Config config;
  config.frames = 512;
  config.page_size = 4096;
  config.disk_latency = DiskLatencyModel{0, 0};
  Kernel kernel(config);
  constexpr VmSize kBytes = 8 * 4096;

  struct Gen {
    std::shared_ptr<Task> task;
    std::vector<uint8_t> model;  // Eager-copy oracle of the whole region.
  };
  std::vector<Gen> gens;
  gens.push_back({kernel.CreateTask(nullptr, "gen0"), std::vector<uint8_t>(kBytes, 0)});
  VmOffset base = gens[0].task->VmAllocate(kBytes).value();

  std::mt19937 rng(GetParam());
  for (int step = 0; step < 400; ++step) {
    switch (rng() % 4) {
      case 0: {  // Fork a random live generation (bounded population).
        if (gens.size() >= 12) {
          break;
        }
        Gen& parent = gens[rng() % gens.size()];
        gens.push_back({kernel.CreateTask(parent.task), parent.model});
        break;
      }
      case 1: {  // Random byte-range write, mirrored into the oracle.
        Gen& g = gens[rng() % gens.size()];
        VmOffset off = rng() % (kBytes - 64);
        VmSize len = 1 + rng() % 64;
        std::vector<uint8_t> chunk(len);
        for (auto& b : chunk) {
          b = static_cast<uint8_t>(rng());
        }
        ASSERT_EQ(g.task->Write(base + off, chunk.data(), len), KernReturn::kSuccess);
        std::memcpy(g.model.data() + off, chunk.data(), len);
        break;
      }
      case 2: {  // Kill a random generation; its death may trigger collapse.
        if (gens.size() <= 1) {
          break;
        }
        gens.erase(gens.begin() + rng() % gens.size());
        break;
      }
      default: {  // Spot-check a random window of a random survivor.
        Gen& g = gens[rng() % gens.size()];
        VmOffset off = rng() % (kBytes - 64);
        std::vector<uint8_t> out(64);
        ASSERT_EQ(g.task->Read(base + off, out.data(), out.size()), KernReturn::kSuccess);
        ASSERT_EQ(std::memcmp(out.data(), g.model.data() + off, out.size()), 0)
            << "divergence at step " << step;
        break;
      }
    }
  }

  // Full byte-for-byte sweep of every survivor against its oracle.
  for (size_t i = 0; i < gens.size(); ++i) {
    std::vector<uint8_t> out(kBytes);
    ASSERT_EQ(gens[i].task->Read(base, out.data(), kBytes), KernReturn::kSuccess);
    ASSERT_EQ(std::memcmp(out.data(), gens[i].model.data(), kBytes), 0)
        << "survivor " << i;
  }

  // Reduce to one survivor: every remaining death hands the kernel a collapse
  // opportunity, and the last generation must still match its oracle with a
  // short chain (no multi-child shadows can remain once its siblings die).
  while (gens.size() > 1) {
    gens.erase(gens.begin());
  }
  std::vector<uint8_t> out(kBytes);
  ASSERT_EQ(gens[0].task->Read(base, out.data(), kBytes), KernReturn::kSuccess);
  EXPECT_EQ(std::memcmp(out.data(), gens[0].model.data(), kBytes), 0);
  VmStatistics st = kernel.vm().Statistics();
  EXPECT_GT(st.shadow_collapses + st.shadow_bypasses, 0u);
  for (VmOffset p = 0; p < kBytes; p += 4096) {
    EXPECT_LE(kernel.vm().ShadowChainLength(gens[0].task->vm_context(), base + p), 2u)
        << "page " << p / 4096;
  }
  gens.clear();
}

TEST_P(CollapseWorkloadTest, NoResidentPageLeakAfterChainDeath) {
  Kernel::Config config;
  config.frames = 1024;
  config.page_size = 4096;
  config.disk_latency = DiskLatencyModel{0, 0};
  Kernel kernel(config);
  const VmStatistics before = kernel.vm().Statistics();
  {
    std::mt19937 rng(GetParam());
    std::vector<std::shared_ptr<Task>> chain;
    chain.push_back(kernel.CreateTask(nullptr, "gen0"));
    VmOffset base = chain[0]->VmAllocate(16 * 4096).value();
    for (VmOffset p = 0; p < 16; ++p) {
      ASSERT_EQ(chain[0]->WriteValue<uint64_t>(base + p * 4096, p), KernReturn::kSuccess);
    }
    for (int g = 1; g <= 10; ++g) {
      chain.push_back(kernel.CreateTask(chain.back()));
      ASSERT_EQ(chain.back()->WriteValue<uint64_t>(base + (rng() % 16) * 4096, 1000 + g),
                KernReturn::kSuccess);
      if (rng() % 2 == 0 && chain.size() > 2) {
        // Kill a random intermediate generation mid-build.
        chain.erase(chain.begin() + 1 + rng() % (chain.size() - 2));
      }
    }
    chain.clear();  // Everyone dies; every page must come back.
  }
  const VmStatistics after = kernel.vm().Statistics();
  EXPECT_EQ(after.active_count + after.inactive_count,
            before.active_count + before.inactive_count);
  EXPECT_EQ(after.free_count, before.free_count);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CollapseWorkloadTest,
                         ::testing::Values(3u, 1234u, 98765u, 0xC0FFEEu));

// The bench workload's shape as a correctness check: a deep chain of dying
// parents must collapse to O(1) length while preserving every generation's
// final view, and disabling the flag must reproduce the deep chain (ablation).
TEST(CollapseChainTest, DeepChainOfDeadParentsCollapsesToConstantDepth) {
  for (bool collapse : {false, true}) {
    Kernel::Config config;
    config.frames = 2048;
    config.page_size = 4096;
    config.disk_latency = DiskLatencyModel{0, 0};
    config.vm.shadow_collapse = collapse;
    Kernel kernel(config);
    constexpr int kDepth = 16;
    constexpr VmOffset kPages = 8;
    auto task = kernel.CreateTask(nullptr, "gen0");
    VmOffset base = task->VmAllocate(kPages * 4096).value();
    std::vector<uint64_t> model(kPages);
    for (VmOffset p = 0; p < kPages; ++p) {
      model[p] = p + 1;
      ASSERT_EQ(task->WriteValue<uint64_t>(base + p * 4096, model[p]), KernReturn::kSuccess);
    }
    for (int g = 1; g <= kDepth; ++g) {
      auto child = kernel.CreateTask(task);
      VmOffset p = 1 + g % (kPages - 1);
      model[p] = 1000 + g;
      ASSERT_EQ(child->WriteValue<uint64_t>(base + p * 4096, model[p]), KernReturn::kSuccess);
      task = child;  // Parent dies.
    }
    for (VmOffset p = 0; p < kPages; ++p) {
      EXPECT_EQ(task->ReadValue<uint64_t>(base + p * 4096).value(), model[p])
          << "page " << p << " collapse=" << collapse;
    }
    VmStatistics st = kernel.vm().Statistics();
    size_t len = kernel.vm().ShadowChainLength(task->vm_context(), base);
    if (collapse) {
      EXPECT_LE(len, 2u);
      EXPECT_GT(st.shadow_collapses + st.shadow_bypasses, 0u);
    } else {
      EXPECT_GE(len, static_cast<size_t>(kDepth));
      EXPECT_EQ(st.shadow_collapses + st.shadow_bypasses, 0u);
    }
    task.reset();
  }
}

}  // namespace
}  // namespace mach
