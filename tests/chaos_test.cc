// Chaos soak for the deterministic fault-injection harness: seeded faults
// at the disk, link, and pager layers, driven through the full stack
// (paging under memory pressure, RPC over a lossy link, task migration,
// manager death mid-fault).
//
// Invariants checked per seed:
//   * Determinism: the same seed replays the same per-point fault trace.
//   * No corruption: a page read back is either the data written or a whole
//     page of zeros (the §6.2.1 zero-fill substitution) — never torn.
//   * No hangs: every operation completes; a dead manager's waiting
//     faulters resolve in a small fraction of the 5 s pager timeout.
//   * No leaks: physical frames return to the free pool when tasks die.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <random>

#include "src/base/fault_injector.h"
#include "src/hw/sim_disk.h"
#include "src/ipc/ipc_faults.h"
#include "src/ipc/port_gc.h"
#include "src/kernel/kernel.h"
#include "src/kernel/task.h"
#include "src/managers/camelot/recovery_manager.h"
#include "src/managers/migrate/migration_manager.h"
#include "src/managers/shm/shm_broker.h"
#include "src/net/net_link.h"
#include "src/pager/data_manager.h"
#include "tests/workload/tenant_workload.h"

namespace mach {
namespace {

constexpr VmSize kPage = 4096;

const uint64_t kSeeds[] = {1, 2, 3, 5, 8, 13, 21, 34, 55, 89};

// --- determinism: same seed => same fault trace -----------------------------

struct DiskTrace {
  std::vector<KernReturn> results;
  std::vector<std::string> report;
};

// A single-threaded disk workload whose fault decisions depend only on the
// injector seed.
DiskTrace RunDiskWorkload(uint64_t seed) {
  FaultInjector inj(seed);
  inj.SetProbability(SimDisk::kFaultRead, 0.1);
  inj.SetProbability(SimDisk::kFaultWrite, 0.1);
  SimClock clock;
  SimDisk disk(64, 512, &clock, DiskLatencyModel{}, &inj);
  DiskTrace trace;
  std::vector<char> buf(512, 'z');
  for (uint32_t i = 0; i < 200; ++i) {
    uint32_t block = (i * 7) % 64;
    if (i % 3 == 0) {
      trace.results.push_back(disk.WriteBlock(block, buf.data()));
    } else {
      trace.results.push_back(disk.ReadBlock(block, buf.data()));
    }
  }
  trace.report = inj.Report();
  return trace;
}

TEST(ChaosDeterminismTest, SameSeedReplaysTheSameFaultTrace) {
  for (uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    DiskTrace a = RunDiskWorkload(seed);
    DiskTrace b = RunDiskWorkload(seed);
    EXPECT_EQ(a.results, b.results);
    EXPECT_EQ(a.report, b.report);
  }
}

TEST(ChaosDeterminismTest, DistinctSeedsProduceDistinctTraces) {
  EXPECT_NE(RunDiskWorkload(kSeeds[0]).results, RunDiskWorkload(kSeeds[1]).results);
}

TEST(ChaosDeterminismTest, TraceIndependentOfOtherPointsInterleaving) {
  // The contract that makes multi-threaded chaos runs replayable: the k-th
  // decision of one point does not depend on how many times *other* points
  // were evaluated in between.
  FaultInjector plain(77), interleaved(77);
  plain.SetProbability("net.drop", 0.3);
  interleaved.SetProbability("net.drop", 0.3);
  interleaved.SetProbability("disk.read", 0.5);
  for (int i = 0; i < 500; ++i) {
    interleaved.ShouldFail("disk.read");  // Noise on another point.
    EXPECT_EQ(plain.ShouldFail("net.drop"), interleaved.ShouldFail("net.drop")) << "hit " << i;
  }
}

// --- the full-stack soak ----------------------------------------------------

// A manager that never answers data requests; its death mid-fault drives
// the kernel's death-notification fast path.
class SilentPager : public DataManager {
 public:
  SilentPager() : DataManager("chaos-silent") {}
  SendRight NewObject() { return CreateMemoryObject(1); }

 protected:
  void OnDataRequest(uint64_t, uint64_t, PagerDataRequestArgs) override {}
};

uint64_t Stamp(uint64_t seed, VmOffset page) {
  return 0xC0DE000000000000ull ^ (seed << 32) ^ page;
}

// Answers each (possibly multi-page) data request with one coalesced
// multi-page pager_data_provided run of per-page stamps; Silence() parks all
// later faults so a manager death can settle them.
class RunStampPager : public DataManager {
 public:
  RunStampPager() : DataManager("chaos-runs") {}
  SendRight NewObject() { return CreateMemoryObject(1, "chaos-run-object"); }
  void Silence() { silent_.store(true, std::memory_order_release); }
  uint64_t multi_page_requests() const {
    return multi_page_requests_.load(std::memory_order_acquire);
  }

 protected:
  void OnDataRequest(uint64_t, uint64_t, PagerDataRequestArgs args) override {
    if (silent_.load(std::memory_order_acquire)) {
      return;
    }
    if (args.length > kPage) {
      multi_page_requests_.fetch_add(1, std::memory_order_acq_rel);
    }
    PagerRunBuilder run(std::move(args.pager_request_port));
    for (VmOffset off = args.offset; off < args.offset + args.length; off += kPage) {
      std::vector<std::byte> page(kPage);
      const uint64_t stamp = Stamp(0xFA, off / kPage);
      std::memcpy(page.data(), &stamp, sizeof(stamp));
      run.AddData(off, std::move(page), kVmProtNone);
    }
  }

 private:
  std::atomic<bool> silent_{false};
  std::atomic<uint64_t> multi_page_requests_{0};
};

class ChaosSoak {
 public:
  explicit ChaosSoak(uint64_t seed) : seed_(seed), faults_(seed), ipc_faults_(seed ^ 0x19C0'FA17) {
    // Fault plan: transient backing-disk errors plus a lossy, jittery,
    // duplicating link — with the fragment-level points armed too, so the
    // selective-repeat transport sees dropped fragments, dropped SACKs and
    // reorders on every seed. Rates are high enough to fire constantly but
    // low enough that the retransmit budget below effectively never
    // exhausts.
    faults_.SetProbability(SimDisk::kFaultRead, 0.05);
    faults_.SetProbability(SimDisk::kFaultWrite, 0.05);
    faults_.SetProbability(NetLink::kFaultDrop, 0.15);
    faults_.SetProbability(NetLink::kFaultDuplicate, 0.05);
    faults_.SetProbability(NetLink::kFaultDelay, 0.2);
    faults_.SetProbability(NetLink::kFaultFragDrop, 0.05);
    faults_.SetProbability(NetLink::kFaultAckDrop, 0.05);
    faults_.SetProbability(NetLink::kFaultReorder, 0.05);
    // Suppress a random 30% of shadow-chain collapse opportunities: denial
    // must be purely a performance event, never a correctness one.
    faults_.SetProbability(VmSystem::kFaultCollapse, 0.3);
    // Sharded shm directory faults: hint repairs lost at ownership transfer
    // (the next forward chases through the stale hint) and forwards eaten
    // on the wire (the virtual-time deadline retries them).
    faults_.SetProbability(ShmDirectory::kFaultStaleHint, 0.3);
    faults_.SetProbability(ShmDirectory::kFaultForwardDrop, 0.1);

    Kernel::Config config;
    config.name = "chaos-a";
    config.frames = 48;  // Small pool: the workload below forces pageout.
    config.page_size = kPage;
    config.disk_latency = DiskLatencyModel{0, 0};
    // Injected backing faults degrade to zero-filled pages, not errors, so
    // the workload keeps running through them (§6.2.1).
    config.vm.on_pager_timeout = VmSystem::Config::OnPagerTimeout::kZeroFill;
    config.fault_injector = &faults_;
    host_a_ = std::make_unique<Kernel>(config);

    config.name = "chaos-b";
    config.frames = 96;
    config.fault_injector = nullptr;  // Faults live on A's disk only.
    host_b_ = std::make_unique<Kernel>(config);

    NetFaultConfig net;
    net.injector = &faults_;
    net.reliable = true;
    // With frag/ack/reorder armed on top of net.drop, a transport round
    // fails with probability ~0.25; 8 retries push per-message loss below
    // 1e-5, so the soak's "nothing reliable is ever lost" asserts hold.
    net.max_retransmits = 8;
    // The failure detector must only fire on real partitions, not on an
    // unlucky run of injected drops: 14 consecutive timeouts is ~1e-9 by
    // chance at these rates.
    net.failure_detector = true;
    net.degraded_after_timeouts = 6;
    net.dead_after_timeouts = 14;
    link_ = std::make_unique<NetLink>(&host_a_->vm(), &host_b_->vm(), &net_clock_,
                                      kNormaLatency, net);
  }

  void Run() {
    // Runs first, while the hosts are idle: its leak check compares the
    // process-wide live-port count before and after the churn.
    PortChurnUnderIpcFaults();
    PagingUnderDiskFaults();
    ForkChurnUnderCollapseFaults();
    RpcOverLossyLink();
    PartitionAndHeal();
    ShardedShmShardHostDeathAndHeal();
    ManagerDeathMidFault();
    FaultAheadScanOverLossyLink();
    MigrationOverLossyLink();
    PartitionWithMigrationInFlight();
    MidMigrationHostCrash();
    CamelotCrashPointsUnderDataDiskFaults();
    NoLeaksAfterTeardown();
    SetIpcFaultInjector(nullptr);  // Belt and braces: never leak the arm.

    // The faults were real: every layer saw injections.
    EXPECT_GT(faults_.Injected(SimDisk::kFaultRead) + faults_.Injected(SimDisk::kFaultWrite), 0u)
        << "disk faults never fired";
    EXPECT_GT(faults_.Injected(NetLink::kFaultDrop), 0u) << "link drops never fired";
    EXPECT_GT(faults_.Evaluations(NetLink::kFaultFragDrop), 0u)
        << "net.frag_drop never consulted";
    EXPECT_GT(faults_.Evaluations(NetLink::kFaultAckDrop), 0u)
        << "net.ack_drop never consulted";
    EXPECT_GT(faults_.Evaluations(NetLink::kFaultReorder), 0u)
        << "net.reorder never consulted";
    EXPECT_GT(faults_.Evaluations(VmSystem::kFaultCollapse), 0u)
        << "no collapse opportunity ever reached the injector";
    EXPECT_GT(faults_.Evaluations(ShmDirectory::kFaultStaleHint), 0u)
        << "shm.stale_hint never consulted";
    EXPECT_GT(faults_.Evaluations(ShmDirectory::kFaultForwardDrop), 0u)
        << "shm.forward_drop never consulted";
    EXPECT_GT(ipc_faults_.Evaluations(kIpcFaultEnqueue), 0u) << "ipc.enqueue never consulted";
    EXPECT_GT(ipc_faults_.Evaluations(kIpcFaultRightTransfer), 0u)
        << "ipc.right_transfer never consulted";
    EXPECT_GT(ipc_faults_.Evaluations(kIpcFaultNotify), 0u) << "ipc.notify never consulted";
  }

 private:
  // Thrash 2x physical memory through a 48-frame pool while the backing
  // disk throws transient errors. Every page must come back as the written
  // stamp or as zeros — never garbage.
  void PagingUnderDiskFaults() {
    std::shared_ptr<Task> task = host_a_->CreateTask(nullptr, "thrash");
    const VmSize pages = 96;
    VmOffset base = task->VmAllocate(pages * kPage).value();
    for (VmOffset p = 0; p < pages; ++p) {
      uint64_t stamp = Stamp(seed_, p);
      ASSERT_EQ(task->Write(base + p * kPage, &stamp, sizeof(stamp)), KernReturn::kSuccess);
    }
    uint64_t zeroed = 0;
    for (VmOffset p = 0; p < pages; ++p) {
      uint64_t out = 0xDEAD;
      ASSERT_EQ(task->Read(base + p * kPage, &out, sizeof(out)), KernReturn::kSuccess);
      if (out == 0) {
        ++zeroed;  // Lost to an injected backing fault: allowed.
      } else {
        EXPECT_EQ(out, Stamp(seed_, p)) << "page " << p << " is torn";
      }
    }
    // The workload must have survived as a whole: zero-fill substitution is
    // the exception, not the rule.
    EXPECT_LT(zeroed, pages / 2);
  }

  // Fork/exit churn over an inherited region while collapse attempts are
  // randomly suppressed and the backing disk throws. A denied collapse must
  // leave the chain walkable; a granted one must migrate pages correctly —
  // the survivor's view never depends on which way the coin landed.
  void ForkChurnUnderCollapseFaults() {
    std::shared_ptr<Task> task = host_a_->CreateTask(nullptr, "churn0");
    const VmSize pages = 8;
    VmOffset base = task->VmAllocate(pages * kPage).value();
    std::vector<uint64_t> model(pages);
    for (VmOffset p = 0; p < pages; ++p) {
      model[p] = Stamp(seed_, 2000 + p);
      ASSERT_EQ(task->Write(base + p * kPage, &model[p], sizeof(uint64_t)),
                KernReturn::kSuccess);
    }
    for (int g = 1; g <= 24; ++g) {
      std::shared_ptr<Task> child = host_a_->CreateTask(task, "churn");
      VmOffset p = g % pages;
      model[p] = Stamp(seed_, 3000 + g);
      ASSERT_EQ(child->Write(base + p * kPage, &model[p], sizeof(uint64_t)),
                KernReturn::kSuccess);
      task = child;  // The parent dies: a collapse opportunity, maybe denied.
    }
    for (VmOffset p = 0; p < pages; ++p) {
      uint64_t out = 0xDEAD;
      ASSERT_EQ(task->Read(base + p * kPage, &out, sizeof(out)), KernReturn::kSuccess);
      // An injected backing fault may zero-fill an evicted page; collapse —
      // granted or denied — must never tear or mis-migrate one.
      EXPECT_TRUE(out == model[p] || out == 0) << "churn page " << p;
    }
  }

  // A request/reply workload across the faulty link. Reliable mode must
  // deliver every RPC despite drops, duplicates, and delay jitter.
  void RpcOverLossyLink() {
    PortPair service = PortAllocate("chaos-echo");
    std::atomic<bool> stop{false};
    std::thread server([&] {
      while (!stop.load(std::memory_order_acquire)) {
        Result<Message> req = MsgReceive(service.receive, std::chrono::milliseconds(100));
        if (!req.ok()) {
          continue;
        }
        Message reply(req.value().id() + 1);
        reply.PushU64(req.value().TakeU64().value() * 3);
        MsgSend(req.value().reply_port(), std::move(reply));
      }
    });
    SendRight proxy = link_->ProxyForA(service.send);
    for (uint64_t i = 0; i < 50; ++i) {
      Message request(100 + i);
      request.PushU64(i);
      Result<Message> reply =
          MsgRpc(proxy, std::move(request), kWaitForever, std::chrono::seconds(10));
      ASSERT_TRUE(reply.ok()) << "rpc " << i << " lost on a reliable link";
      EXPECT_EQ(reply.value().id(), 101 + i);
      EXPECT_EQ(reply.value().TakeU64().value(), i * 3);
    }
    stop.store(true, std::memory_order_release);
    server.join();
    EXPECT_EQ(link_->messages_lost(), 0u);
  }

  // A partitioned link loses even reliable traffic (after burning its
  // retransmit budget), the failure detector declares the peer dead and
  // kills the proxies; healing re-enters kUp and fresh proxies carry
  // traffic again.
  void PartitionAndHeal() {
    PortPair sink = PortAllocate("chaos-partition-sink");
    SendRight proxy = link_->ProxyForA(sink.send);
    uint64_t lost_before = link_->messages_lost();
    uint64_t dead_before = link_->peer_dead_events();
    link_->SetPartitioned(true);
    ASSERT_EQ(MsgSend(proxy, Message(7)), KernReturn::kSuccess);  // Into the void.
    // Transport timeouts plus heartbeats push both directions to kPeerDead.
    auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while ((link_->a_to_b_status().health != LinkHealth::kPeerDead ||
            link_->messages_lost() <= lost_before) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_EQ(link_->a_to_b_status().health, LinkHealth::kPeerDead);
    EXPECT_GT(link_->messages_lost(), lost_before);
    EXPECT_GT(link_->peer_dead_events(), dead_before);
    // The old proxy died with the peer; senders observe port death.
    EXPECT_EQ(MsgSend(proxy, Message(9), kPoll), KernReturn::kPortDead);

    link_->SetPartitioned(false);
    while ((link_->a_to_b_status().health != LinkHealth::kUp ||
            link_->b_to_a_status().health != LinkHealth::kUp) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_EQ(link_->a_to_b_status().health, LinkHealth::kUp);
    SendRight fresh = link_->ProxyForA(sink.send);
    ASSERT_EQ(MsgSend(fresh, Message(8)), KernReturn::kSuccess);
    Result<Message> got = MsgReceive(sink.receive, std::chrono::seconds(10));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value().id(), 8u);
  }

  // Two hosts write-share a sharded region with the shm.* points armed and
  // all of B's coherence traffic on the lossy reliable wire: stale hints
  // chase, dropped forwards retry on the virtual-time deadline, and every
  // transition still converges. Then the link partitions — the shard host
  // is dead from B's point of view — and a faulter parked on the wire must
  // resolve via the peer-dead proxy kill in a fraction of the 5 s pager
  // timeout. After the heal, B re-resolves the region through fresh proxies
  // and sharing resumes.
  void ShardedShmShardHostDeathAndHeal() {
    ShmOptions options;
    options.injector = &faults_;
    ShmBroker broker("chaos-shm", 4, options);
    broker.Start();
    const VmSize pages = 5;  // Pages 0-3 ping-pong; page 4 stays unfetched.
    ShmRegionInfoArgs local = broker.GetRegion("chaos-region", pages * kPage);
    std::shared_ptr<Task> task_a = host_a_->CreateTask(nullptr, "shm-a");
    VmOffset a = ShmBroker::MapRegion(*task_a, local).value();
    Result<ShmRegionInfoArgs> remote = ShmBroker::GetRegionVia(
        link_->ProxyForB(broker.service_port()), "chaos-region", pages * kPage);
    ASSERT_TRUE(remote.ok()) << KernReturnName(remote.status());
    std::shared_ptr<Task> task_b = host_b_->CreateTask(nullptr, "shm-b");
    VmOffset b = ShmBroker::MapRegion(*task_b, remote.value()).value();

    auto sees = [](Task& task, VmOffset addr, uint64_t expect) {
      auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(15);
      while (std::chrono::steady_clock::now() < deadline) {
        uint64_t v = ~0ull;
        if (IsOk(task.Read(addr, &v, sizeof(v))) && v == expect) {
          return true;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      return false;
    };
    for (uint64_t round = 0; round < 3; ++round) {
      for (VmOffset p = 0; p + 1 < pages; ++p) {
        uint64_t va = Stamp(seed_, 7000 + round * 16 + p);
        ASSERT_EQ(task_a->Write(a + p * kPage, &va, sizeof(va)), KernReturn::kSuccess);
        ASSERT_TRUE(sees(*task_b, b + p * kPage, va)) << "round " << round << " page " << p;
        uint64_t vb = va ^ 0xFFFF;
        ASSERT_EQ(task_b->Write(b + p * kPage, &vb, sizeof(vb)), KernReturn::kSuccess);
        ASSERT_TRUE(sees(*task_a, a + p * kPage, vb)) << "round " << round << " page " << p;
      }
    }
    ShmCounters c = broker.aggregate_counters();
    EXPECT_GT(c.forwards, 0u);
    EXPECT_GT(c.ownership_transfers, 0u);
    EXPECT_GT(c.hint_hits, 0u) << "no forward was ever answered by the hinted owner";

    // The "shard host death": B's proxies die with the partition. A fault
    // parked on the dead wire (page 4 was never fetched) must resolve by
    // B's zero-fill policy via the proxy kill, not the 5 s timeout.
    uint64_t dead_before = link_->peer_dead_events();
    link_->SetPartitioned(true);
    auto start = std::chrono::steady_clock::now();
    uint64_t out = ~0ull;
    ASSERT_EQ(task_b->Read(b + 4 * kPage, &out, sizeof(out)), KernReturn::kSuccess);
    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    EXPECT_EQ(out, 0u);
    EXPECT_LT(elapsed.count(), 4000) << "parked shm faulter burned the pager timeout";
    EXPECT_GT(link_->peer_dead_events(), dead_before);
    task_b.reset();

    // Heal: fresh proxies, fresh mapping, sharing resumes against the
    // directory's authoritative state.
    link_->SetPartitioned(false);
    auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while ((link_->a_to_b_status().health != LinkHealth::kUp ||
            link_->b_to_a_status().health != LinkHealth::kUp) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_EQ(link_->a_to_b_status().health, LinkHealth::kUp);
    ASSERT_EQ(link_->b_to_a_status().health, LinkHealth::kUp);
    Result<ShmRegionInfoArgs> fresh = ShmBroker::GetRegionVia(
        link_->ProxyForB(broker.service_port()), "chaos-region", pages * kPage);
    ASSERT_TRUE(fresh.ok()) << KernReturnName(fresh.status());
    std::shared_ptr<Task> task_b2 = host_b_->CreateTask(nullptr, "shm-b2");
    VmOffset b2 = ShmBroker::MapRegion(*task_b2, fresh.value()).value();
    uint64_t heal_v = Stamp(seed_, 7999);
    ASSERT_EQ(task_a->Write(a + kPage, &heal_v, sizeof(heal_v)), KernReturn::kSuccess);
    ASSERT_TRUE(sees(*task_b2, b2 + kPage, heal_v)) << "post-heal sharing never converged";
    task_b2.reset();
    task_a.reset();
    broker.Stop();
  }

  // Kill a manager while a fault is parked on it: the faulter must resolve
  // (zero-filled, per A's policy) in a small fraction of the 5 s timeout.
  void ManagerDeathMidFault() {
    std::shared_ptr<Task> task = host_a_->CreateTask(nullptr, "victim");
    SilentPager pager;
    pager.Start();
    SendRight object = pager.NewObject();
    VmOffset addr = task->VmAllocateWithPager(kPage, object, 0).value();
    std::atomic<KernReturn> result{KernReturn::kFailure};
    uint64_t out = 0xFFFF;
    std::thread faulter([&] { result.store(task->Read(addr, &out, sizeof(out))); });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    auto death_time = std::chrono::steady_clock::now();
    pager.DestroyMemoryObject(object);
    faulter.join();
    auto resolved_in = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - death_time);
    EXPECT_EQ(result.load(), KernReturn::kSuccess);
    EXPECT_EQ(out, 0u);
    EXPECT_LT(resolved_in.count(), 2000) << "faulter burned the pager timeout";
    EXPECT_GE(host_a_->vm().Statistics().manager_deaths, 1u);
    pager.Stop();
  }

  // A fault-ahead-heavy sequential scan whose pager sits across the lossy
  // link: the batched multi-page data requests and their multi-page provides
  // (up to 64 KB — many fragments) ride the SACK transport under frag, ack
  // and reorder drops. Halfway through, the manager dies with a run's worth
  // of speculative placeholders outstanding; every parked page must settle
  // by the death fast path (zero fill on B), never the 5 s pager timeout.
  void FaultAheadScanOverLossyLink() {
    RunStampPager pager;
    pager.Start();
    SendRight object = pager.NewObject();
    std::shared_ptr<Task> task = host_b_->CreateTask(nullptr, "scan-remote");
    const VmSize pages = 64;
    VmOffset base =
        task->VmAllocateWithPager(pages * kPage, link_->ProxyForB(object), 0).value();
    for (VmOffset p = 0; p < pages / 2; ++p) {
      uint64_t out = 0xDEAD;
      ASSERT_EQ(task->Read(base + p * kPage, &out, sizeof(out)), KernReturn::kSuccess);
      EXPECT_EQ(out, Stamp(0xFA, p)) << "page " << p << " lost on the reliable link";
    }
    EXPECT_GT(pager.multi_page_requests(), 0u)
        << "the sequential scan never batched a request across the wire";

    pager.Silence();                    // Later faults park on the wire...
    pager.DestroyMemoryObject(object);  // ...and the manager dies.
    auto death_time = std::chrono::steady_clock::now();
    for (VmOffset p = pages / 2; p < pages; ++p) {
      uint64_t out = 0xDEAD;
      ASSERT_EQ(task->Read(base + p * kPage, &out, sizeof(out)), KernReturn::kSuccess);
      // Answered earlier by a speculative run, or zero-filled by the death
      // fast path — never torn, never an error.
      EXPECT_TRUE(out == Stamp(0xFA, p) || out == 0) << "page " << p;
    }
    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - death_time);
    EXPECT_LT(elapsed.count(), 4000) << "parked fault-ahead run burned the pager timeout";
    EXPECT_GT(host_b_->vm().Statistics().fault_ahead_requests, 0u);
    task.reset();
    pager.Stop();
  }

  // Migrate a task from the faulty host to the healthy one with its paging
  // traffic on the lossy (reliable) wire.
  void MigrationOverLossyLink() {
    std::shared_ptr<Task> source = host_a_->CreateTask(nullptr, "migrant");
    const VmSize pages = 8;
    VmOffset base = source->VmAllocate(pages * kPage).value();
    for (VmOffset p = 0; p < pages; ++p) {
      uint64_t stamp = Stamp(seed_, 1000 + p);
      ASSERT_EQ(source->Write(base + p * kPage, &stamp, sizeof(stamp)), KernReturn::kSuccess);
    }
    MigrationManager manager;
    manager.Start();
    MigrationManager::Options options;
    options.export_port = [&](SendRight object) { return link_->ProxyForB(std::move(object)); };
    Result<std::shared_ptr<Task>> migrated = manager.Migrate(source, host_b_.get(), options);
    ASSERT_TRUE(migrated.ok());
    for (VmOffset p = 0; p < pages; ++p) {
      uint64_t out = 0xDEAD;
      ASSERT_EQ(migrated.value()->Read(base + p * kPage, &out, sizeof(out)),
                KernReturn::kSuccess);
      // Source pages may have been zero-filled by A's faulty disk before
      // the migration; they must never arrive torn.
      EXPECT_TRUE(out == Stamp(seed_, 1000 + p) || out == 0) << "page " << p;
    }
    migrated.value().reset();
    source.reset();
    manager.Stop();
  }

  // Partition the link while a copy-on-reference migration has pages still
  // to pull: a faulter parked on the dead wire must resolve via the
  // peer-dead proxy kill (zero-fill on B) in a fraction of the 5 s pager
  // timeout, and once the link heals the migration can be redone.
  void PartitionWithMigrationInFlight() {
    std::shared_ptr<Task> source = host_a_->CreateTask(nullptr, "partition-migrant");
    const VmSize pages = 8;
    VmOffset base = source->VmAllocate(pages * kPage).value();
    for (VmOffset p = 0; p < pages; ++p) {
      uint64_t stamp = Stamp(seed_, 6000 + p);
      ASSERT_EQ(source->Write(base + p * kPage, &stamp, sizeof(stamp)), KernReturn::kSuccess);
    }
    MigrationManager manager;
    manager.Start();
    MigrationManager::Options options;
    options.export_port = [&](SendRight object) { return link_->ProxyForB(std::move(object)); };
    Result<std::shared_ptr<Task>> migrated = manager.Migrate(source, host_b_.get(), options);
    ASSERT_TRUE(migrated.ok());
    for (VmOffset p = 0; p < 2; ++p) {  // Pull a couple of pages while healthy.
      uint64_t out = 0xDEAD;
      ASSERT_EQ(migrated.value()->Read(base + p * kPage, &out, sizeof(out)),
                KernReturn::kSuccess);
      EXPECT_TRUE(out == Stamp(seed_, 6000 + p) || out == 0) << "page " << p;
    }

    uint64_t dead_before = link_->peer_dead_events();
    link_->SetPartitioned(true);
    auto start = std::chrono::steady_clock::now();
    uint64_t out = 0xDEAD;
    // This fault's data request dies on the wire; the read parks until the
    // failure detector kills the exported proxy and B's kernel zero-fills.
    ASSERT_EQ(migrated.value()->Read(base + 5 * kPage, &out, sizeof(out)),
              KernReturn::kSuccess);
    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    EXPECT_TRUE(out == Stamp(seed_, 6005) || out == 0);
    EXPECT_LT(elapsed.count(), 4000) << "parked faulter burned the pager timeout";
    EXPECT_GT(link_->peer_dead_events(), dead_before);
    migrated.value().reset();

    // Heal and redo the migration over fresh proxies.
    link_->SetPartitioned(false);
    auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while ((link_->a_to_b_status().health != LinkHealth::kUp ||
            link_->b_to_a_status().health != LinkHealth::kUp) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_EQ(link_->a_to_b_status().health, LinkHealth::kUp);
    ASSERT_EQ(link_->b_to_a_status().health, LinkHealth::kUp);
    Result<std::shared_ptr<Task>> redo = manager.Migrate(source, host_b_.get(), options);
    ASSERT_TRUE(redo.ok()) << KernReturnName(redo.status());
    for (VmOffset p = 0; p < pages; ++p) {
      uint64_t v = 0xDEAD;
      ASSERT_EQ(redo.value()->Read(base + p * kPage, &v, sizeof(v)), KernReturn::kSuccess);
      EXPECT_TRUE(v == Stamp(seed_, 6000 + p) || v == 0) << "page " << p;
    }
    redo.value().reset();
    source.reset();
    manager.Stop();
  }

  // Seeded port churn — allocations, rights moving through messages, kills —
  // with every ipc.* point armed: sends fail spuriously, in-transit rights
  // get duplicated or dropped, notifications arrive late. Whatever the
  // schedule does, disarming plus one GC pass must return the process to its
  // starting live-port count.
  void PortChurnUnderIpcFaults() {
    PortGcCollect();
    const size_t baseline = PortGcLivePortCount();
    ipc_faults_.SetProbability(kIpcFaultEnqueue, 0.05);
    ipc_faults_.SetProbability(kIpcFaultRightTransfer, 0.05);
    ipc_faults_.SetProbability(kIpcFaultNotify, 0.3);
    SetIpcFaultInjector(&ipc_faults_);

    std::mt19937_64 rng(seed_ * 31 + 7);
    PortPair notify = PortAllocate("chaos-ipc-notify");
    notify.receive.port()->SetBacklog(1024);
    std::vector<SendRight> rights;
    std::vector<ReceiveRight> receives;
    for (int op = 0; op < 400; ++op) {
      switch (rng() % 6) {
        case 0: {
          if (receives.size() >= 32) break;
          PortPair pair = PortAllocate("chaos-churn");
          pair.receive.port()->RequestNoSendersNotification(notify.send);
          rights.push_back(std::move(pair.send));
          receives.push_back(std::move(pair.receive));
          break;
        }
        case 1: {
          if (rights.empty()) break;
          rights.push_back(rights[rng() % rights.size()]);
          break;
        }
        case 2: {
          if (rights.empty()) break;
          size_t i = rng() % rights.size();
          rights[i] = std::move(rights.back());
          rights.pop_back();
          break;
        }
        case 3: {  // Send a message carrying 0-2 rights.
          if (rights.empty()) break;
          SendRight dest = rights[rng() % rights.size()];
          Message msg(0x99);
          for (size_t c = rng() % 3; c > 0 && !rights.empty(); --c) {
            size_t i = rng() % rights.size();
            msg.PushPort(std::move(rights[i]));
            rights[i] = std::move(rights.back());
            rights.pop_back();
          }
          MsgSend(dest, std::move(msg), kPoll);
          break;
        }
        case 4: {  // Receive from a random port, re-homing carried rights.
          if (receives.empty()) break;
          Result<Message> got = MsgReceive(receives[rng() % receives.size()], kPoll);
          if (!got.ok()) break;
          Message msg = std::move(got).value();
          while (!msg.AtEnd()) {
            Result<SendRight> r = msg.TakePort();
            if (!r.ok()) break;
            if (r.value().valid()) {
              rights.push_back(std::move(r).value());
            }
          }
          break;
        }
        case 5: {  // Port death with whatever is still queued.
          if (receives.empty()) break;
          size_t i = rng() % receives.size();
          receives[i] = std::move(receives.back());
          receives.pop_back();
          break;
        }
      }
      if (op % 50 == 49) {
        IpcDrainDelayedNotifications();
      }
    }
    rights.clear();
    receives.clear();
    SetIpcFaultInjector(nullptr);  // Drains every deferred notification.
    EXPECT_EQ(IpcPendingDelayedNotificationCount(), 0u);
    notify = PortPair();
    PortGcCollect();
    EXPECT_EQ(PortGcLivePortCount(), baseline) << "ports leaked through the ipc fault schedule";
  }

  // Crash the source host's side of a live copy-on-reference migration: the
  // migration manager and source task die with residual dependencies
  // outstanding, and — with ipc.notify fully armed — the death notices that
  // resolve the orphaned faults sit on the deferred list until pumped. The
  // migrated task's remaining reads must still complete quickly (death fast
  // path + zero fill on host B), never hang, never tear.
  void MidMigrationHostCrash() {
    ipc_faults_.SetProbability(kIpcFaultEnqueue, 0.0);
    ipc_faults_.SetProbability(kIpcFaultRightTransfer, 0.0);
    ipc_faults_.SetProbability(kIpcFaultNotify, 1.0);
    SetIpcFaultInjector(&ipc_faults_);

    std::shared_ptr<Task> source = host_a_->CreateTask(nullptr, "crash-migrant");
    const VmSize pages = 8;
    VmOffset base = source->VmAllocate(pages * kPage).value();
    for (VmOffset p = 0; p < pages; ++p) {
      uint64_t stamp = Stamp(seed_, 4000 + p);
      ASSERT_EQ(source->Write(base + p * kPage, &stamp, sizeof(stamp)), KernReturn::kSuccess);
    }
    auto manager = std::make_unique<MigrationManager>();
    manager->Start();
    MigrationManager::Options options;
    options.strategy = MigrationManager::Strategy::kCopyOnReference;
    options.export_port = [&](SendRight object) { return link_->ProxyForB(std::move(object)); };
    Result<std::shared_ptr<Task>> migrated = manager->Migrate(source, host_b_.get(), options);
    ASSERT_TRUE(migrated.ok());
    for (VmOffset p = 0; p < 4; ++p) {  // Resident before the crash.
      uint64_t out = 0xDEAD;
      ASSERT_EQ(migrated.value()->Read(base + p * kPage, &out, sizeof(out)),
                KernReturn::kSuccess);
      EXPECT_TRUE(out == Stamp(seed_, 4000 + p) || out == 0) << "page " << p;
    }

    manager.reset();  // The "host crash": exporter objects die mid-stream.
    source.reset();

    std::atomic<bool> done{false};
    std::thread pump([&] {
      while (!done.load(std::memory_order_acquire)) {
        IpcDrainDelayedNotifications();
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    });
    auto start = std::chrono::steady_clock::now();
    for (VmOffset p = 4; p < pages; ++p) {
      uint64_t out = 0xDEAD;
      ASSERT_EQ(migrated.value()->Read(base + p * kPage, &out, sizeof(out)),
                KernReturn::kSuccess);
      // The source is gone: either the page made it across earlier or B
      // zero-fills. 0xDEAD would mean a torn/unresolved read.
      EXPECT_TRUE(out == Stamp(seed_, 4000 + p) || out == 0) << "page " << p;
    }
    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    done.store(true, std::memory_order_release);
    pump.join();
    EXPECT_LT(elapsed.count(), 4000) << "orphaned faults burned the pager timeout";
    migrated.value().reset();
    SetIpcFaultInjector(nullptr);
    EXPECT_GT(ipc_faults_.Injected(kIpcFaultNotify), 0u);
  }

  // A Camelot transaction stream on the faulty host with injected write
  // faults on the DATA disk (the log disk stays clean, so commit durability
  // is well-defined) and delayed IPC notifications, crashed at a seeded
  // point. Recovery on clean hardware must yield exactly the committed
  // effects: losers rolled back, winners present.
  void CamelotCrashPointsUnderDataDiskFaults() {
    FaultInjector disk_faults(seed_ ^ 0xCA3E107);
    disk_faults.SetProbability(SimDisk::kFaultWrite, 0.15);
    SimDisk data_disk(512, kPage, nullptr, DiskLatencyModel{0, 0}, &disk_faults);
    SimDisk log_disk(4096, 512, nullptr, DiskLatencyModel{0, 0});
    auto rm = std::make_unique<RecoveryManager>(&data_disk, &log_disk, kPage);
    rm->Start();

    ipc_faults_.SetProbability(kIpcFaultNotify, 0.5);
    SetIpcFaultInjector(&ipc_faults_);

    // 96 pages against host A's 48 frames: ballast writes force evictions,
    // so the injected data-disk faults hit real pageout traffic (deferred
    // stash + retry), not just the recovery path.
    std::shared_ptr<Task> client = host_a_->CreateTask(nullptr, "camelot-chaos");
    const VmSize seg_pages = 96;
    RecoverableSegment seg =
        RecoverableSegment::Map(rm.get(), client.get(), "chaos-seg", seg_pages * kPage).value();

    std::mt19937_64 rng(seed_ * 131 + 17);
    std::vector<uint64_t> committed(8, 0);
    int crash_after = static_cast<int>(rng() % 6);
    for (int t = 0; t <= crash_after; ++t) {
      Transaction txn(rm.get());
      std::vector<std::pair<size_t, uint64_t>> writes;
      for (int w = 0; w < 3; ++w) {
        size_t slot = rng() % 8;
        uint64_t value = rng();
        writes.emplace_back(slot, value);
        ASSERT_EQ(txn.Write(seg, slot * 64, &value, sizeof(value)), KernReturn::kSuccess);
      }
      if (rng() % 2 == 0) {
        ASSERT_EQ(txn.Commit(), KernReturn::kSuccess);
        for (auto& [slot, value] : writes) {
          committed[slot] = value;
        }
      } else {
        ASSERT_EQ(txn.Abort(), KernReturn::kSuccess);
      }
      // Non-transactional ballast across the whole segment, churning the
      // frame pool so dirty recoverable pages page out mid-stream.
      for (VmOffset p = 1; p < seg_pages; p += 3) {
        uint64_t v = Stamp(seed_, 5000 + p);
        ASSERT_EQ(client->Write(seg.base() + p * kPage, &v, sizeof(v)), KernReturn::kSuccess);
      }
      IpcDrainDelayedNotifications();
    }
    EXPECT_GT(disk_faults.Evaluations(SimDisk::kFaultWrite), 0u)
        << "no pageout ever reached the faulty data disk";

    rm->SimulateCrash();  // Volatile log tail and deferred stash vanish.
    data_disk.set_fault_injector(nullptr);  // Recovery runs on clean hardware.
    rm->Recover();
    client->VmDeallocate(seg.base(), seg.size());
    client.reset();
    SetIpcFaultInjector(nullptr);  // Drains the teardown's deferred notices.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    rm->Recover();  // Idempotent; re-applies after any late writebacks.

    std::shared_ptr<Task> checker = host_a_->CreateTask(nullptr, "camelot-checker");
    RecoverableSegment check =
        RecoverableSegment::Map(rm.get(), checker.get(), "chaos-seg", seg_pages * kPage).value();
    for (size_t slot = 0; slot < 8; ++slot) {
      uint64_t v = checker->ReadValue<uint64_t>(check.base() + slot * 64).value_or(~0ull);
      EXPECT_EQ(v, committed[slot]) << "slot " << slot;
    }
    checker.reset();
    rm->Stop();
  }

  // With every task gone, the faulty host's frames drain back to the free
  // pool (no stuck busy pages, no leaked placeholder frames).
  void NoLeaksAfterTeardown() {
    auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    uint64_t free = 0;
    while (std::chrono::steady_clock::now() < deadline) {
      free = host_a_->phys().free_frames();
      if (free >= 48 - 4) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_GE(free, 48u - 4u) << "frames leaked after teardown";
  }

  const uint64_t seed_;
  FaultInjector faults_;
  FaultInjector ipc_faults_;
  SimClock net_clock_;
  std::unique_ptr<Kernel> host_a_;
  std::unique_ptr<Kernel> host_b_;
  std::unique_ptr<NetLink> link_;
};

// The E15 tenant-serving workload in miniature: two hosts, four tenants,
// chaos armed (data-disk + wire + shm faults, mid-run manager crash and
// link partition/heal), ten seeds. Per seed the driver's built-in oracle
// must hold — every committed transaction survives the final crash+recover
// exactly once, every abort leaves no trace — and teardown must return to
// baseline on both frames and ports.
TEST(TenantServingSoakTest, TenSeedsCommitExactlyOnceAndTearDownClean) {
  for (uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    TenantWorkloadOptions options;
    options.hosts = 2;
    options.tenants = 4;
    options.txns_per_tenant = 8;
    options.server_frames = 48;  // Small pool: clustering pageout runs fire.
    options.chaos = true;
    options.seed = seed;
    TenantWorkloadResult r = RunTenantWorkload(options);
    EXPECT_GT(r.committed, 0u) << "no transaction ever committed";
    EXPECT_TRUE(r.oracle_ok) << r.slot_mismatches
                             << " ledger slots diverged from the committed model";
    EXPECT_GT(r.camelot_recover_ns, 0u) << "the mid-run crash never recovered";
    EXPECT_TRUE(r.frames_drained) << "server frames leaked after teardown";
    EXPECT_EQ(r.ports_leaked, 0) << "ports leaked across the workload";
  }
}

TEST(ChaosSoakTest, TenSeedsSurviveDiskLinkAndPagerFaults) {
  for (uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ChaosSoak soak(seed);
    soak.Run();
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

}  // namespace
}  // namespace mach
